/**
 * @file
 * Fig. 11: estimated program fidelity for each NISQ benchmark on each
 * device topology, Qplacer vs Classic, averaged over QP_SUBSETS
 * (default 50) connected device subsets -- the paper's main result.
 *
 * Expected shape: Qplacer sustains fidelity close to the crosstalk-free
 * ceiling; the frequency-blind Classic engine collapses (often <1e-4)
 * because active programs keep landing on frequency hotspots.
 */

#include "bench_common.hpp"

using namespace qplacer;

int
main()
{
    bench::banner("Fig. 11: per-benchmark fidelity, Qplacer vs Classic");
    std::printf("(%d mappings per cell; QP_SUBSETS overrides)\n\n",
                bench::numSubsets());

    bench::FlowCache cache;
    const Evaluator evaluator = bench::makeEvaluator();
    CsvWriter csv("fig11_fidelity.csv");
    csv.header({"topology", "benchmark", "placer", "mean_fidelity",
                "min_fidelity", "max_fidelity"});

    for (const auto &topo_name : paperTopologyNames()) {
        const Topology topo = makeTopology(topo_name);
        TextTable table;
        table.header({"benchmark", "Qplacer", "Classic"});
        for (const auto &bench_name : paperBenchmarkNames()) {
            const Circuit circuit = makeBenchmark(bench_name);
            std::vector<std::string> row{bench_name};
            for (const PlacerMode mode :
                 {PlacerMode::Qplacer, PlacerMode::Classic}) {
                const FlowResult &flow = cache.get(topo_name, mode);
                const BenchmarkResult r =
                    evaluator.evaluate(topo, flow.netlist, circuit);
                row.push_back(TextTable::fidelity(r.meanFidelity));
                csv.row({topo_name, bench_name, placerModeName(mode),
                         CsvWriter::cell(r.meanFidelity),
                         CsvWriter::cell(r.minFidelity),
                         CsvWriter::cell(r.maxFidelity)});
            }
            table.row(row);
        }
        std::printf("-- %s --\n%s\n", topo_name.c_str(),
                    table.render().c_str());
    }
    std::printf("wrote fig11_fidelity.csv\n");
    return 0;
}
