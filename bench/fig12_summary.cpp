/**
 * @file
 * Fig. 12: per-topology summary of the three placement schemes --
 * average benchmark fidelity, number of hotspot-impacted qubits, and
 * the frequency hotspot proportion P_h.
 *
 * Expected shape: P_h(Qplacer) << P_h(Classic) (paper: 0.46% vs 5.87%,
 * a 12.76x reduction), impacted qubits grow super-linearly with P_h
 * (Eagle/Classic impacts >90% of the chip), Human is hotspot-free and
 * Qplacer's fidelity approaches it.
 */

#include "bench_common.hpp"
#include "math/stats.hpp"

using namespace qplacer;

int
main()
{
    bench::banner("Fig. 12: fidelity / impacted qubits / Ph summary");

    bench::FlowCache cache;
    const Evaluator evaluator = bench::makeEvaluator();
    CsvWriter csv("fig12_summary.csv");
    csv.header({"topology", "placer", "avg_fidelity", "impacted_qubits",
                "ph_percent"});

    const PlacerMode modes[] = {PlacerMode::Qplacer, PlacerMode::Classic,
                                PlacerMode::Human};

    TextTable table;
    table.header({"topology", "placer", "avg fidelity",
                  "impacted qubits", "Ph (%)"});
    std::map<PlacerMode, std::vector<double>> ph_all;
    std::map<PlacerMode, std::vector<double>> fid_all;
    std::map<PlacerMode, std::vector<double>> imp_all;

    for (const auto &topo_name : paperTopologyNames()) {
        const Topology topo = makeTopology(topo_name);
        for (const PlacerMode mode : modes) {
            const FlowResult &flow = cache.get(topo_name, mode);
            std::vector<double> fidelities;
            for (const auto &bench_name : paperBenchmarkNames()) {
                fidelities.push_back(
                    evaluator
                        .evaluate(topo, flow.netlist,
                                  makeBenchmark(bench_name))
                        .meanFidelity);
            }
            const double avg_f = mean(fidelities);
            const auto impacted = flow.hotspots.impactedQubits.size();
            table.row({topo_name, placerModeName(mode),
                       TextTable::fidelity(avg_f),
                       std::to_string(impacted),
                       TextTable::num(flow.hotspots.phPercent, 2)});
            csv.row({topo_name, placerModeName(mode),
                     CsvWriter::cell(avg_f),
                     CsvWriter::cell(static_cast<long long>(impacted)),
                     CsvWriter::cell(flow.hotspots.phPercent)});
            ph_all[mode].push_back(flow.hotspots.phPercent);
            fid_all[mode].push_back(avg_f);
            imp_all[mode].push_back(static_cast<double>(impacted));
        }
    }
    std::printf("%s\n", table.render().c_str());

    std::printf("means: ");
    for (const PlacerMode mode : modes) {
        std::printf("%s: fid %.4f, impacted %.1f, Ph %.2f%%   ",
                    placerModeName(mode), mean(fid_all[mode]),
                    mean(imp_all[mode]), mean(ph_all[mode]));
    }
    const double ratio =
        mean(ph_all[PlacerMode::Qplacer]) > 1e-9
            ? mean(ph_all[PlacerMode::Classic]) /
                  mean(ph_all[PlacerMode::Qplacer])
            : 0.0;
    std::printf("\nPh reduction Classic/Qplacer: %.1fx (paper: 12.76x; "
                "0 means Qplacer eliminated all hotspots)\n",
                ratio);
    std::printf("wrote fig12_summary.csv\n");
    return 0;
}
