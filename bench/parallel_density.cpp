/**
 * @file
 * Serial vs. threaded Poisson/DCT density engine on Eagle-127 and a
 * 1000+ qubit parametric grid.
 *
 * For each topology the driver splats the real netlist density once,
 * then times PoissonSolver::solve and the full DensityModel::evaluate
 * at 1, 2, 4, and 8 threads, verifying that every threaded solution
 * matches the serial one within 1e-9. Results go to stdout and a CSV
 * (first argv, default parallel_density.csv) for the nightly CI
 * artifact trail.
 *
 * Environment overrides:
 *   QP_BENCH_REPS  solves per timing sample (default 20)
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/density.hpp"
#include "core/poisson.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

using namespace qplacer;

namespace {

double
maxAbsDiff(const std::vector<double> &a, const std::vector<double> &b)
{
    double m = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::abs(a[i] - b[i]));
    return m;
}

double
maxAbsValue(const std::vector<double> &v)
{
    double m = 0.0;
    for (double x : v)
        m = std::max(m, std::abs(x));
    return m;
}

/** Max abs difference normalized by the reference magnitude. */
double
solutionDiff(const PoissonSolver::Solution &a,
             const PoissonSolver::Solution &b)
{
    const double scale = std::max(
        1.0, std::max({maxAbsValue(b.potential), maxAbsValue(b.fieldX),
                       maxAbsValue(b.fieldY)}));
    return std::max({maxAbsDiff(a.potential, b.potential),
                     maxAbsDiff(a.fieldX, b.fieldX),
                     maxAbsDiff(a.fieldY, b.fieldY)}) /
           scale;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string csv_path =
        argc > 1 ? argv[1] : "parallel_density.csv";
    const int reps =
        static_cast<int>(Config::envInt("QP_BENCH_REPS", 20));

    CsvWriter csv(csv_path);
    csv.header({"topology", "qubits", "instances", "bins", "threads",
                "reps", "solve_ms", "solve_speedup", "solve_rel_diff",
                "evaluate_ms", "evaluate_speedup"});

    bench::banner("parallel density engine: serial vs. threaded");
    for (const bench::SpectralWorkload &wl : bench::spectralWorkloads()) {
        const bench::SpectralInstance prepared = bench::prepare(wl);
        const Netlist &netlist = prepared.netlist;
        const std::vector<Vec2> &positions = prepared.positions;
        const std::vector<double> &density = prepared.density;

        std::printf("-- %s: %d qubits, %d instances, %dx%d bins\n",
                    wl.name.c_str(), wl.topo.numQubits(),
                    netlist.numInstances(), wl.bins, wl.bins);

        // Serial reference (thread count 1, no pool at all).
        const PoissonSolver serial_solver(
            wl.bins, wl.bins, netlist.region().width(),
            netlist.region().height());
        const PoissonSolver::Solution reference =
            serial_solver.solve(density);

        double serial_solve_ms = 0.0;
        double serial_eval_ms = 0.0;
        for (const int threads : {1, 2, 4, 8}) {
            ThreadPool pool(threads);
            ThreadPool *pool_ptr = threads > 1 ? &pool : nullptr;
            const PoissonSolver solver(wl.bins, wl.bins,
                                       netlist.region().width(),
                                       netlist.region().height(),
                                       pool_ptr);

            const double diff =
                solutionDiff(solver.solve(density), reference);

            Timer solve_timer;
            for (int r = 0; r < reps; ++r) {
                const PoissonSolver::Solution sol =
                    solver.solve(density);
                // Defeat over-eager optimizers.
                if (sol.potential.empty())
                    std::printf("impossible\n");
            }
            const double solve_ms = solve_timer.millis() / reps;

            DensityModel model(netlist, wl.bins, 0.9, pool_ptr);
            std::vector<Vec2> gradient;
            model.evaluate(positions, gradient); // warm-up
            Timer eval_timer;
            for (int r = 0; r < reps; ++r)
                model.evaluate(positions, gradient);
            const double eval_ms = eval_timer.millis() / reps;

            if (threads == 1) {
                serial_solve_ms = solve_ms;
                serial_eval_ms = eval_ms;
            }
            const double solve_speedup = serial_solve_ms / solve_ms;
            const double eval_speedup = serial_eval_ms / eval_ms;

            std::printf("   %d thread%s: solve %8.3f ms (%.2fx)  "
                        "evaluate %8.3f ms (%.2fx)  rel|diff| %.3g\n",
                        threads, threads == 1 ? " " : "s", solve_ms,
                        solve_speedup, eval_ms, eval_speedup, diff);
            if (diff > 1e-9) {
                std::printf("FAIL: threaded solve diverged (%g > 1e-9)\n",
                            diff);
                return 1;
            }

            csv.row({CsvWriter::cell(wl.name),
                     CsvWriter::cell(
                         static_cast<long long>(wl.topo.numQubits())),
                     CsvWriter::cell(static_cast<long long>(
                         netlist.numInstances())),
                     CsvWriter::cell(static_cast<long long>(wl.bins)),
                     CsvWriter::cell(static_cast<long long>(threads)),
                     CsvWriter::cell(static_cast<long long>(reps)),
                     CsvWriter::cell(solve_ms),
                     CsvWriter::cell(solve_speedup),
                     CsvWriter::cell(diff),
                     CsvWriter::cell(eval_ms),
                     CsvWriter::cell(eval_speedup)});
        }
    }
    std::printf("CSV written to %s\n", csv_path.c_str());
    return 0;
}
