/**
 * @file
 * Fig. 6: resonator-resonator coupling versus frequency detuning (b)
 * and versus separation distance (c). The coupling escalates from
 * g^2/Delta to g as the detuning narrows, and parasitic capacitance
 * grows as meanders approach.
 */

#include "bench_common.hpp"
#include "physics/capacitance.hpp"
#include "physics/coupling.hpp"

using namespace qplacer;

int
main()
{
    bench::banner("Fig. 6: resonator-resonator coupling");

    const CapacitanceModel cp_model =
        CapacitanceModel::resonatorResonator();
    const double f1 = 6.5e9;

    std::printf("-- (b) coupling vs detuning at fixed spacing 400 um --\n");
    TextTable by_freq;
    by_freq.header(
        {"omega_r2 (GHz)", "Delta (MHz)", "g_eff (MHz)", "amplitude"});
    CsvWriter csv_f("fig06_resonator_vs_detuning.csv");
    csv_f.header({"omega2_ghz", "delta_mhz", "geff_mhz", "amplitude"});
    const double cp_near = cp_model.cp(400.0);
    for (double f2 = 6.0e9; f2 <= 7.00001e9; f2 += 0.05e9) {
        const double g = couplingStrength(f1, f2, cp_near,
                                          kResonatorCapFf,
                                          kResonatorCapFf);
        const double delta = f2 - f1;
        by_freq.row({TextTable::num(f2 / 1e9, 2),
                     TextTable::num(delta / 1e6, 0),
                     TextTable::num(effectiveCoupling(g, delta) / 1e6, 3),
                     TextTable::num(rabiAmplitude(g, delta), 4)});
        csv_f.row({CsvWriter::cell(f2 / 1e9),
                   CsvWriter::cell(delta / 1e6),
                   CsvWriter::cell(effectiveCoupling(g, delta) / 1e6),
                   CsvWriter::cell(rabiAmplitude(g, delta))});
    }
    std::printf("%s\n", by_freq.render().c_str());

    std::printf("-- (c) coupling vs distance at resonance --\n");
    TextTable by_dist;
    by_dist.header({"d (um)", "Cp (fF)", "g (MHz)"});
    CsvWriter csv_d("fig06_resonator_vs_distance.csv");
    csv_d.header({"d_um", "cp_ff", "g_mhz"});
    for (double d = 200.0; d <= 2400.0; d += 200.0) {
        const double cp = cp_model.cp(d);
        const double g = couplingStrength(f1, f1, cp, kResonatorCapFf,
                                          kResonatorCapFf);
        by_dist.row({TextTable::num(d, 0), TextTable::num(cp, 5),
                     TextTable::num(g / 1e6, 4)});
        csv_d.row({CsvWriter::cell(d), CsvWriter::cell(cp),
                   CsvWriter::cell(g / 1e6)});
    }
    std::printf("%s\nwrote fig06_resonator_vs_detuning.csv, "
                "fig06_resonator_vs_distance.csv\n",
                by_dist.render().c_str());
    return 0;
}
