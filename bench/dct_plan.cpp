/**
 * @file
 * Planned vs. unplanned spectral engine on Eagle-127 and a 1000+ qubit
 * parametric grid.
 *
 * For each topology the driver splats the real netlist density once,
 * then times PoissonSolver::solve and the full DensityModel::evaluate
 * on both DCT execution paths (cached DctPlan + reusable scratch vs.
 * the plan-free PR-2 kernels) at 1, 2, 4, and 8 threads. The two paths
 * must agree *bitwise* — any nonzero difference fails the run. Results
 * go to stdout and a CSV (first argv, default dct_plan.csv) for the
 * nightly CI artifact trail; plan_speedup >= 1 is the acceptance bar
 * for the plan rework.
 *
 * Environment overrides:
 *   QP_BENCH_REPS  solves per timing sample (default 20)
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/density.hpp"
#include "core/poisson.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

using namespace qplacer;

namespace {

/** True iff @p a and @p b hold exactly the same bits (memcmp). */
bool
identical(const std::vector<double> &a, const std::vector<double> &b)
{
    return a.size() == b.size() &&
           (a.empty() || std::memcmp(a.data(), b.data(),
                                     a.size() * sizeof(double)) == 0);
}

bool
identical(const PoissonSolver::Solution &a,
          const PoissonSolver::Solution &b)
{
    return identical(a.potential, b.potential) &&
           identical(a.fieldX, b.fieldX) && identical(a.fieldY, b.fieldY);
}

double
timeSolve(const PoissonSolver &solver, const std::vector<double> &density,
          int reps)
{
    solver.solve(density); // warm-up (plan scratch, page faults)
    Timer timer;
    for (int r = 0; r < reps; ++r) {
        const PoissonSolver::Solution sol = solver.solve(density);
        // Defeat over-eager optimizers.
        if (sol.potential.empty())
            std::printf("impossible\n");
    }
    return timer.millis() / reps;
}

double
timeEvaluate(DensityModel &model, const std::vector<Vec2> &positions,
             int reps)
{
    std::vector<Vec2> gradient;
    model.evaluate(positions, gradient); // warm-up
    Timer timer;
    for (int r = 0; r < reps; ++r)
        model.evaluate(positions, gradient);
    return timer.millis() / reps;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string csv_path = argc > 1 ? argv[1] : "dct_plan.csv";
    const int reps =
        static_cast<int>(Config::envInt("QP_BENCH_REPS", 20));

    CsvWriter csv(csv_path);
    csv.header({"topology", "qubits", "instances", "bins", "threads",
                "reps", "unplanned_solve_ms", "planned_solve_ms",
                "solve_plan_speedup", "unplanned_evaluate_ms",
                "planned_evaluate_ms", "evaluate_plan_speedup"});

    bench::banner("spectral engine: unplanned vs. planned DCT path");
    for (const bench::SpectralWorkload &wl : bench::spectralWorkloads()) {
        const bench::SpectralInstance prepared = bench::prepare(wl);
        const Netlist &netlist = prepared.netlist;
        const std::vector<Vec2> &positions = prepared.positions;
        const std::vector<double> &density = prepared.density;

        std::printf("-- %s: %d qubits, %d instances, %dx%d bins\n",
                    wl.name.c_str(), wl.topo.numQubits(),
                    netlist.numInstances(), wl.bins, wl.bins);

        for (const int threads : {1, 2, 4, 8}) {
            ThreadPool pool(threads);
            ThreadPool *pool_ptr = threads > 1 ? &pool : nullptr;
            const double w = netlist.region().width();
            const double h = netlist.region().height();
            const PoissonSolver unplanned(
                wl.bins, wl.bins, w, h, pool_ptr,
                PoissonSolver::Path::Unplanned);
            const PoissonSolver planned(wl.bins, wl.bins, w, h, pool_ptr,
                                        PoissonSolver::Path::Planned);

            // The planned path must not move a single bit.
            if (!identical(planned.solve(density),
                           unplanned.solve(density))) {
                std::printf(
                    "FAIL: planned solve diverged from unplanned\n");
                return 1;
            }

            const double unplanned_ms =
                timeSolve(unplanned, density, reps);
            const double planned_ms = timeSolve(planned, density, reps);

            DensityModel unplanned_model(
                netlist, wl.bins, 0.9, pool_ptr,
                PoissonSolver::Path::Unplanned);
            DensityModel planned_model(netlist, wl.bins, 0.9, pool_ptr,
                                       PoissonSolver::Path::Planned);
            const double unplanned_eval_ms =
                timeEvaluate(unplanned_model, positions, reps);
            const double planned_eval_ms =
                timeEvaluate(planned_model, positions, reps);

            const double solve_speedup = unplanned_ms / planned_ms;
            const double eval_speedup =
                unplanned_eval_ms / planned_eval_ms;
            std::printf("   %d thread%s: solve %8.3f -> %8.3f ms "
                        "(%.2fx)  evaluate %8.3f -> %8.3f ms (%.2fx)\n",
                        threads, threads == 1 ? " " : "s", unplanned_ms,
                        planned_ms, solve_speedup, unplanned_eval_ms,
                        planned_eval_ms, eval_speedup);

            csv.row({CsvWriter::cell(wl.name),
                     CsvWriter::cell(
                         static_cast<long long>(wl.topo.numQubits())),
                     CsvWriter::cell(static_cast<long long>(
                         netlist.numInstances())),
                     CsvWriter::cell(static_cast<long long>(wl.bins)),
                     CsvWriter::cell(static_cast<long long>(threads)),
                     CsvWriter::cell(static_cast<long long>(reps)),
                     CsvWriter::cell(unplanned_ms),
                     CsvWriter::cell(planned_ms),
                     CsvWriter::cell(solve_speedup),
                     CsvWriter::cell(unplanned_eval_ms),
                     CsvWriter::cell(planned_eval_ms),
                     CsvWriter::cell(eval_speedup)});
        }
    }
    std::printf("CSV written to %s\n", csv_path.c_str());
    return 0;
}
