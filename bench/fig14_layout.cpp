/**
 * @file
 * Fig. 14: the Falcon layout prototype. Prints the input spectra and
 * layout statistics and writes SVG renderings (the GDS-export
 * substitute; see DESIGN.md) of the optimized layout.
 */

#include <algorithm>
#include <set>

#include "bench_common.hpp"

using namespace qplacer;

int
main()
{
    bench::banner("Fig. 14: Falcon layout prototype");

    bench::FlowCache cache;
    const FlowResult &flow = cache.get("Falcon", PlacerMode::Qplacer);

    // (a) input spectra.
    std::set<double> qubit_freqs(flow.freqs.qubitFreqHz.begin(),
                                 flow.freqs.qubitFreqHz.end());
    std::set<double> res_freqs(flow.freqs.resonatorFreqHz.begin(),
                               flow.freqs.resonatorFreqHz.end());
    std::printf("qubit spectrum (%zu slots): ", qubit_freqs.size());
    for (double f : qubit_freqs)
        std::printf("%.2f ", f / 1e9);
    std::printf("GHz\nresonator spectrum (%zu slots): ",
                res_freqs.size());
    for (double f : res_freqs)
        std::printf("%.2f ", f / 1e9);
    std::printf("GHz\n\n");

    // (b) layout statistics.
    std::printf("layout: %.1f x %.1f mm, utilization %.1f%%, "
                "Ph %.2f%%, %zu hotspot pairs\n",
                flow.area.enclosingRect.width() / 1e3,
                flow.area.enclosingRect.height() / 1e3,
                100.0 * flow.area.utilization, flow.hotspots.phPercent,
                flow.hotspots.pairs.size());
    std::printf("global placement: %d iterations, final overflow %.3f\n",
                flow.place.iterations, flow.place.finalOverflow);

    // (c) physical meander routing (Fig. 8-e): verify every resonator
    // wire fits its reserved blocks.
    int routed = 0;
    double worst_slack = 1e18;
    for (const Resonator &res : flow.netlist.resonators()) {
        const MeanderPath path = routeMeander(flow.netlist, res.id);
        routed += path.fits();
        worst_slack =
            std::min(worst_slack, path.lengthUm - path.targetUm);
    }
    std::printf("meander routing: %d/%zu resonators fit their reserved "
                "blocks (worst slack %+.0f um)\n",
                routed, flow.netlist.resonators().size(), worst_slack);

    // (d) renderings.
    writeLayoutSvg(flow.netlist, "fig14_falcon_layout.svg");
    SvgOptions chip;
    chip.drawPadding = false;
    chip.drawLabels = false;
    writeLayoutSvg(flow.netlist, "fig14_falcon_chip.svg", chip);
    saveLayout(flow.netlist, "fig14_falcon_layout.txt");
    std::printf("wrote fig14_falcon_layout.svg (annotated), "
                "fig14_falcon_chip.svg (chip view),\n"
                "      fig14_falcon_layout.txt (positions)\n");
    return 0;
}
