/**
 * @file
 * Fig. 5: parasitic capacitance Cp, direct coupling g (resonant pair)
 * and effective coupling g^2/Delta (detuned pair) versus the separation
 * distance between two transmons. All three decay sharply with
 * distance, which is what makes spatial isolation effective.
 */

#include "bench_common.hpp"
#include "physics/capacitance.hpp"
#include "physics/coupling.hpp"

using namespace qplacer;

int
main()
{
    bench::banner("Fig. 5: parasitic coupling vs qubit separation");

    const CapacitanceModel cp_model = CapacitanceModel::qubitQubit();
    const double f = 5.0e9;
    const double detuning = 0.2e9;

    TextTable table;
    table.header({"d (um)", "Cp (fF)", "g resonant (kHz)",
                  "g_eff detuned (kHz)"});
    CsvWriter csv("fig05_parasitic_distance.csv");
    csv.header({"d_um", "cp_ff", "g_khz", "geff_khz"});

    for (double d = 200.0; d <= 3200.0; d += 200.0) {
        const double cp = cp_model.cp(d);
        const double g =
            couplingStrength(f, f, cp, kQubitCapFf, kQubitCapFf);
        const double geff = effectiveCoupling(g, detuning);
        table.row({TextTable::num(d, 0), TextTable::num(cp, 5),
                   TextTable::num(g / 1e3, 2),
                   TextTable::num(geff / 1e3, 4)});
        csv.row({CsvWriter::cell(d), CsvWriter::cell(cp),
                 CsvWriter::cell(g / 1e3), CsvWriter::cell(geff / 1e3)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("note: padded footprints abut at d = 800 um; the paper's "
                "minimum spacing d_q keeps detuned\npairs weakly coupled "
                "while resonant pairs remain dangerous -- hence the "
                "frequency force.\nwrote fig05_parasitic_distance.csv\n");
    return 0;
}
