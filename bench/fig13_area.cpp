/**
 * @file
 * Fig. 13: minimum enclosing rectangle area (A_mer) of each placement
 * scheme relative to Qplacer's.
 *
 * Expected shape: Classic ~ 1.0x (same engine, same density target);
 * Human >> 1x (paper: 2.14x mean) because manual designs reserve a full
 * meander channel between every qubit pair.
 */

#include "bench_common.hpp"
#include "math/stats.hpp"

using namespace qplacer;

int
main()
{
    bench::banner("Fig. 13: A_mer ratios relative to Qplacer");

    bench::FlowCache cache;
    CsvWriter csv("fig13_area.csv");
    csv.header({"topology", "placer", "amer_mm2", "ratio_vs_qplacer",
                "utilization"});

    TextTable table;
    table.header({"topology", "Qplacer (mm^2)", "Classic ratio",
                  "Human ratio"});
    std::vector<double> classic_ratios;
    std::vector<double> human_ratios;

    for (const auto &topo_name : paperTopologyNames()) {
        const double base =
            cache.get(topo_name, PlacerMode::Qplacer).area.amerUm2;
        std::vector<std::string> row{topo_name,
                                     TextTable::num(base / 1e6, 1)};
        for (const PlacerMode mode :
             {PlacerMode::Qplacer, PlacerMode::Classic,
              PlacerMode::Human}) {
            const FlowResult &flow = cache.get(topo_name, mode);
            const double ratio = flow.area.amerUm2 / base;
            if (mode == PlacerMode::Classic) {
                row.push_back(TextTable::num(ratio, 3));
                classic_ratios.push_back(ratio);
            } else if (mode == PlacerMode::Human) {
                row.push_back(TextTable::num(ratio, 3));
                human_ratios.push_back(ratio);
            }
            csv.row({topo_name, placerModeName(mode),
                     CsvWriter::cell(flow.area.amerUm2 / 1e6),
                     CsvWriter::cell(ratio),
                     CsvWriter::cell(flow.area.utilization)});
        }
        table.row(row);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("mean ratios: Classic %.3f (paper: 0.951), Human %.3f "
                "(paper: 2.137)\n",
                mean(classic_ratios), mean(human_ratios));
    std::printf("wrote fig13_area.csv\n");
    return 0;
}
