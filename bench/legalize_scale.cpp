/**
 * @file
 * Legalizer scaling: wall-time and displacement of the full
 * legalization stack on octagon and grid devices up to 1000+ qubits,
 * comparing the reference occupancy probes (pre-bitset per-cell scans)
 * against the fast path (word-packed bitset + summary blocks +
 * skip-cursor spiral), and the dense exact min-cost-flow refinement
 * against the sparse k-nearest formulation.
 *
 * The probe comparison *gates* the determinism contract: both engines
 * must produce bitwise-identical layouts (exit 1 otherwise) -- the
 * speedup itself is gated in nightly CI from the CSV on the 1000+
 * qubit instances. The dense-vs-sparse flow comparison is reported
 * (runtime + displacement overhead) but not bitwise-gated: sparse is
 * an approximation by design.
 *
 * Environment overrides:
 *   QP_SEED  jitter seed for the synthetic global-placement input
 *            (default 1)
 *
 * Usage: bench_legalize_scale [out.csv]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace qplacer::bench {
namespace {

struct Workload
{
    std::string name;
    Topology topo;
};

/**
 * Synthetic legalization input: the built netlist's warm start with a
 * deterministic gaussian jitter, reproducing the local overlaps a
 * converged global placement hands the legalizer.
 */
Netlist
jitteredInstance(const Topology &topo, std::uint64_t seed)
{
    FlowParams params;
    const FrequencyAssigner assigner(params.assigner);
    const auto freqs = assigner.assign(topo);
    const NetlistBuilder builder(params.partition);
    Netlist nl = builder.build(topo, freqs, params.targetUtil);

    Rng rng(seed);
    const double spread = 0.02 * nl.region().width();
    for (Instance &inst : nl.instances()) {
        inst.pos.x = rng.gaussian(inst.pos.x, spread);
        inst.pos.y = rng.gaussian(inst.pos.y, spread);
    }
    nl.clampIntoRegion();
    return nl;
}

struct TimedRun
{
    Netlist netlist;
    LegalizeResult result;
    double seconds = 0.0;
};

TimedRun
runLegalizer(const Netlist &input, const LegalizerParams &params)
{
    TimedRun run;
    run.netlist = input;
    Timer timer;
    run.result = Legalizer(params).legalize(run.netlist);
    run.seconds = timer.seconds();
    return run;
}

int
run(int argc, char **argv)
{
    const std::uint64_t seed = placementSeed();

    std::vector<Workload> workloads;
    workloads.push_back({"octagon6x6", makeOctagon(6, 6)});
    workloads.push_back({"grid32x32", makeGrid(32, 32)});
    workloads.push_back({"octagon12x12", makeOctagon(12, 12)});

    banner("legalizer scaling: reference vs. bitset probes, "
           "dense vs. sparse flow refine");

    std::vector<std::vector<std::string>> rows;
    bool all_identical = true;

    for (const Workload &wl : workloads) {
        const Netlist input = jitteredInstance(wl.topo, seed);
        std::printf("%s: %d qubits, %d cells\n", wl.name.c_str(),
                    input.numQubits(), input.numInstances());

        // --- Probe engines: bitwise-identical layouts, faster walls. ---
        LegalizerParams ref_params;
        ref_params.probeEngine = ProbeEngine::Reference;
        const TimedRun ref = runLegalizer(input, ref_params);

        LegalizerParams fast_params;
        fast_params.probeEngine = ProbeEngine::Fast;
        const TimedRun fast = runLegalizer(input, fast_params);

        const bool identical =
            bitwiseSameLayout(ref.netlist, fast.netlist) &&
            ref.result.qubitDisplacementUm ==
                fast.result.qubitDisplacementUm &&
            ref.result.segmentDisplacementUm ==
                fast.result.segmentDisplacementUm;
        all_identical = all_identical && identical;
        const double speedup =
            fast.seconds > 0.0 ? ref.seconds / fast.seconds : 0.0;

        std::printf("  probes: reference %7.2fs  fast %7.2fs  "
                    "%.2fx  bitwise-identical: %s\n",
                    ref.seconds, fast.seconds, speedup,
                    identical ? "yes" : "NO");
        std::printf("  fast sub-stages: spiral %.2fs  flow %.2fs  "
                    "tetris %.2fs  integration %.2fs\n",
                    fast.result.spiralSeconds,
                    fast.result.flowRefineSeconds,
                    fast.result.tetrisSeconds,
                    fast.result.integrationSeconds);

        // --- Flow refine: dense exact vs. sparse k-nearest (fast
        // probes both ways; displacement overhead is the price of the
        // sparse approximation). ---
        LegalizerParams dense_params = fast_params;
        dense_params.flowSparseThreshold = 1 << 30;
        const TimedRun dense = runLegalizer(input, dense_params);

        LegalizerParams sparse_params = fast_params;
        sparse_params.flowSparseThreshold = 0;
        const TimedRun sparse = runLegalizer(input, sparse_params);

        std::printf("  flow refine: dense %7.2fs  sparse %7.2fs  "
                    "(qubit disp %.0f -> %.0f um)\n",
                    dense.result.flowRefineSeconds,
                    sparse.result.flowRefineSeconds,
                    dense.result.qubitDisplacementUm,
                    sparse.result.qubitDisplacementUm);

        rows.push_back(
            {CsvWriter::cell(wl.name),
             CsvWriter::cell(
                 static_cast<long long>(input.numQubits())),
             CsvWriter::cell(
                 static_cast<long long>(input.numInstances())),
             CsvWriter::cell(ref.seconds), CsvWriter::cell(fast.seconds),
             CsvWriter::cell(speedup),
             CsvWriter::cell(static_cast<long long>(identical)),
             CsvWriter::cell(fast.result.qubitDisplacementUm),
             CsvWriter::cell(fast.result.segmentDisplacementUm),
             CsvWriter::cell(fast.result.spiralSeconds),
             CsvWriter::cell(fast.result.flowRefineSeconds),
             CsvWriter::cell(fast.result.tetrisSeconds),
             CsvWriter::cell(fast.result.integrationSeconds),
             CsvWriter::cell(ref.result.spiralSeconds),
             CsvWriter::cell(ref.result.tetrisSeconds),
             CsvWriter::cell(dense.result.flowRefineSeconds),
             CsvWriter::cell(sparse.result.flowRefineSeconds),
             CsvWriter::cell(dense.result.qubitDisplacementUm),
             CsvWriter::cell(sparse.result.qubitDisplacementUm)});
    }

    if (argc > 1) {
        CsvWriter csv(argv[1]);
        csv.header({"workload", "qubits", "cells", "ref_s", "fast_s",
                    "speedup", "identical", "qubit_disp_um",
                    "segment_disp_um", "spiral_s", "flow_refine_s",
                    "tetris_s", "integration_s", "ref_spiral_s",
                    "ref_tetris_s", "flow_dense_s", "flow_sparse_s",
                    "dense_qubit_disp_um", "sparse_qubit_disp_um"});
        for (const auto &row : rows)
            csv.row(row);
        std::printf("wrote %s\n", argv[1]);
    }

    if (!all_identical) {
        std::fprintf(stderr, "FAIL: fast-probe layouts diverged from "
                             "the reference engine\n");
        return 1;
    }
    return 0;
}

} // namespace
} // namespace qplacer::bench

int
main(int argc, char **argv)
{
    return qplacer::bench::run(argc, argv);
}
