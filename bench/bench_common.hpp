/**
 * @file
 * Shared helpers for the experiment harness binaries (one per table or
 * figure of the paper; see DESIGN.md section 3).
 *
 * Environment overrides:
 *   QP_SUBSETS   mappings per benchmark (default 50, the paper's count)
 *   QP_SEED      placement seed (default 1)
 */

#ifndef QPLACER_BENCH_COMMON_HPP
#define QPLACER_BENCH_COMMON_HPP

#include <cstdio>
#include <map>
#include <string>

#include "qplacer.hpp"
#include "util/config.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace qplacer::bench {

/** Number of device subsets per benchmark evaluation. */
inline int
numSubsets()
{
    return static_cast<int>(Config::envInt("QP_SUBSETS", 50));
}

/** Placement seed. */
inline std::uint64_t
placementSeed()
{
    return static_cast<std::uint64_t>(Config::envInt("QP_SEED", 1));
}

/** Cache of flow results keyed by (topology, mode, l_b). */
class FlowCache
{
  public:
    const FlowResult &
    get(const std::string &topo_name, PlacerMode mode,
        double segment_um = 300.0)
    {
        const std::string key =
            topo_name + "/" + placerModeName(mode) + "/" +
            std::to_string(static_cast<int>(segment_um));
        auto it = cache_.find(key);
        if (it == cache_.end()) {
            const Topology topo = makeTopology(topo_name);
            it = cache_
                     .emplace(key,
                              QplacerFlow::runMode(topo, mode, segment_um,
                                                   placementSeed()))
                     .first;
        }
        return it->second;
    }

  private:
    std::map<std::string, FlowResult> cache_;
};

/** Evaluator configured from the environment. */
inline Evaluator
makeEvaluator()
{
    EvaluatorParams params;
    params.numSubsets = numSubsets();
    return Evaluator(params);
}

/** Print a header naming the experiment. */
inline void
banner(const char *what)
{
    std::printf("== %s ==\n", what);
}

} // namespace qplacer::bench

#endif // QPLACER_BENCH_COMMON_HPP
