/**
 * @file
 * Shared helpers for the experiment harness binaries (one per table or
 * figure of the paper; see DESIGN.md section 3).
 *
 * Environment overrides:
 *   QP_SUBSETS   mappings per benchmark (default 50, the paper's count)
 *   QP_SEED      placement seed (default 1)
 */

#ifndef QPLACER_BENCH_COMMON_HPP
#define QPLACER_BENCH_COMMON_HPP

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "geometry/bin_grid.hpp"
#include "qplacer.hpp"
#include "util/config.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace qplacer::bench {

/** Number of device subsets per benchmark evaluation. */
inline int
numSubsets()
{
    return static_cast<int>(Config::envInt("QP_SUBSETS", 50));
}

/** Placement seed. */
inline std::uint64_t
placementSeed()
{
    return static_cast<std::uint64_t>(Config::envInt("QP_SEED", 1));
}

/** Cache of flow results keyed by (topology, mode, l_b). */
class FlowCache
{
  public:
    const FlowResult &
    get(const std::string &topo_name, PlacerMode mode,
        double segment_um = 300.0)
    {
        const std::string key =
            topo_name + "/" + placerModeName(mode) + "/" +
            std::to_string(static_cast<int>(segment_um));
        auto it = cache_.find(key);
        if (it == cache_.end()) {
            const Topology topo = makeTopology(topo_name);
            it = cache_
                     .emplace(key,
                              QplacerFlow::runMode(topo, mode, segment_um,
                                                   placementSeed()))
                     .first;
        }
        return it->second;
    }

  private:
    std::map<std::string, FlowResult> cache_;
};

/** Evaluator configured from the environment. */
inline Evaluator
makeEvaluator()
{
    EvaluatorParams params;
    params.numSubsets = numSubsets();
    return Evaluator(params);
}

/** Print a header naming the experiment. */
inline void
banner(const char *what)
{
    std::printf("== %s ==\n", what);
}

/** One density-engine benchmark instance (see spectralWorkloads). */
struct SpectralWorkload
{
    std::string name;
    Topology topo;
    int bins;
};

/**
 * The workloads the density/spectral engine drivers time: the largest
 * paper device and a 1024-qubit parametric grid (past every paper
 * device, the north-star scale). Shared so parallel_density and
 * dct_plan always bench the same instances.
 */
inline std::vector<SpectralWorkload>
spectralWorkloads()
{
    std::vector<SpectralWorkload> workloads;
    workloads.push_back({"Eagle", makeTopology("Eagle"), 128});
    workloads.push_back({"grid32x32", makeGrid(32, 32), 256});
    return workloads;
}

/**
 * Charge-density map of the netlist's current (warm-start) layout:
 * padded footprints splatted onto a bins x bins grid, normalized to
 * charge per unit area — exactly what DensityModel::evaluate feeds
 * the Poisson solver.
 */
inline std::vector<double>
densityMap(const Netlist &netlist, int bins)
{
    BinGrid grid(netlist.region(), bins, bins);
    for (const Instance &inst : netlist.instances()) {
        grid.splat(Rect::fromCenter(inst.pos, inst.paddedWidth(),
                                    inst.paddedHeight()),
                   inst.paddedArea());
    }
    std::vector<double> density = grid.data();
    const double inv_bin_area = 1.0 / grid.binArea();
    for (double &d : density)
        d *= inv_bin_area;
    return density;
}

/** Everything a density-engine driver times against (see prepare). */
struct SpectralInstance
{
    Netlist netlist;
    std::vector<Vec2> positions; ///< Warm-start instance centers.
    std::vector<double> density; ///< densityMap of that layout.
};

/**
 * Build the netlist, warm-start position snapshot, and density map
 * for one workload with default flow parameters — shared so the
 * density-engine drivers cannot drift onto different instances.
 */
inline SpectralInstance
prepare(const SpectralWorkload &wl)
{
    FlowParams params;
    const FrequencyAssigner assigner(params.assigner);
    const auto freqs = assigner.assign(wl.topo);
    const NetlistBuilder builder(params.partition);
    SpectralInstance inst;
    inst.netlist = builder.build(wl.topo, freqs, params.targetUtil);
    inst.positions.resize(inst.netlist.instances().size());
    for (std::size_t i = 0; i < inst.positions.size(); ++i)
        inst.positions[i] = inst.netlist.instances()[i].pos;
    inst.density = densityMap(inst.netlist, wl.bins);
    return inst;
}

} // namespace qplacer::bench

#endif // QPLACER_BENCH_COMMON_HPP
