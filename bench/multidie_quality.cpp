/**
 * @file
 * Multi-die cut-penalty quality: the same 2-die device placed with the
 * cut-crossing penalty off (multidie.cutWeight = 0) and on. Reports
 * crossing-coupler count, cut-crossing wirelength, and HPWL for both
 * runs, and *gates* the contract in-driver: both layouts must be
 * legal and the penalized run must produce strictly fewer crossing
 * couplers (exit 1 otherwise). The flow is single-threaded and
 * fixed-seed, so this is a deterministic guarantee; nightly CI
 * re-gates it from the CSV.
 *
 * Environment overrides:
 *   QP_MULTIDIE_TOPO  topology spec (default grid8x8@dies=2x1)
 *   QP_CUT_WEIGHT     penalty weight for the "on" run (default 2)
 *   QP_SEED           placement seed (default 1)
 *
 * Usage: bench_multidie_quality [out.csv]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_common.hpp"
#include "legal/anneal.hpp"
#include "util/timer.hpp"

namespace qplacer::bench {
namespace {

struct Run
{
    FlowResult result;
    double seconds = 0.0;
    double hpwl = 0.0;
};

Run
place(const Topology &topo, double cut_weight)
{
    FlowParams params;
    params.mode = PlacerMode::Qplacer;
    params.partition.segmentUm = 300.0;
    params.placer.seed = placementSeed();
    params.placer.threads = 1;
    params.placer.cutWeight = cut_weight;

    Run run;
    Timer timer;
    run.result = QplacerFlow(params).run(topo);
    run.seconds = timer.seconds();
    if (run.result.status.ok())
        run.hpwl = layoutHpwl(run.result.netlist);
    return run;
}

int
run(int argc, char **argv)
{
    const char *spec_env = std::getenv("QP_MULTIDIE_TOPO");
    const std::string spec =
        spec_env != nullptr ? spec_env : "grid8x8@dies=2x1";
    const double cut_weight = Config::envDouble("QP_CUT_WEIGHT", 2.0);

    banner("multidie quality: cut penalty off vs. on");
    std::printf("%s, cutWeight %g, seed %llu\n", spec.c_str(), cut_weight,
                static_cast<unsigned long long>(placementSeed()));

    Topology topo;
    std::string error;
    if (!resolveTopologySpec(spec, topo, &error)) {
        std::fprintf(stderr, "FAIL: %s\n", error.c_str());
        return 1;
    }

    const Run off = place(topo, 0.0);
    const Run on = place(topo, cut_weight);
    if (!off.result.status.ok() || !on.result.status.ok()) {
        std::fprintf(stderr, "FAIL: flow error: %s / %s\n",
                     off.result.status.message.c_str(),
                     on.result.status.message.c_str());
        return 1;
    }

    const CrossCutMetrics &moff = off.result.multidie;
    const CrossCutMetrics &mon = on.result.multidie;
    const bool legal = off.result.legal.legal && on.result.legal.legal;
    const bool improves = mon.crossingCouplers < moff.crossingCouplers;

    std::printf("cut penalty off: %3d crossings | %10.1f um cut wl | "
                "hpwl %10.1f um | %6.2fs\n",
                moff.crossingCouplers, moff.crossingWirelengthUm, off.hpwl,
                off.seconds);
    std::printf("cut penalty on:  %3d crossings | %10.1f um cut wl | "
                "hpwl %10.1f um | %6.2fs\n",
                mon.crossingCouplers, mon.crossingWirelengthUm, on.hpwl,
                on.seconds);
    std::printf("legal %s | crossings %d -> %d (%s)\n", legal ? "yes" : "NO",
                moff.crossingCouplers, mon.crossingCouplers,
                improves ? "improves" : "NO IMPROVEMENT");

    if (argc > 1) {
        CsvWriter csv(argv[1]);
        csv.header({"topology", "cut_weight", "off_crossings",
                    "on_crossings", "off_cut_wl_um", "on_cut_wl_um",
                    "off_hpwl_um", "on_hpwl_um", "off_s", "on_s", "legal",
                    "improves"});
        csv.row({CsvWriter::cell(spec), CsvWriter::cell(cut_weight),
                 CsvWriter::cell(
                     static_cast<long long>(moff.crossingCouplers)),
                 CsvWriter::cell(
                     static_cast<long long>(mon.crossingCouplers)),
                 CsvWriter::cell(moff.crossingWirelengthUm),
                 CsvWriter::cell(mon.crossingWirelengthUm),
                 CsvWriter::cell(off.hpwl), CsvWriter::cell(on.hpwl),
                 CsvWriter::cell(off.seconds), CsvWriter::cell(on.seconds),
                 CsvWriter::cell(static_cast<long long>(legal)),
                 CsvWriter::cell(static_cast<long long>(improves))});
        std::printf("wrote %s\n", argv[1]);
    }

    if (!legal) {
        std::fprintf(stderr, "FAIL: a multi-die layout is not legal\n");
        return 1;
    }
    if (!improves) {
        std::fprintf(stderr, "FAIL: cut penalty did not strictly reduce "
                             "crossing couplers\n");
        return 1;
    }
    return 0;
}

} // namespace
} // namespace qplacer::bench

int
main(int argc, char **argv)
{
    return qplacer::bench::run(argc, argv);
}
