/**
 * @file
 * Placement-as-a-service throughput: a stream of jobs through a warm
 * PlacementServer, cold runs vs. incremental re-places of a shared
 * base layout (small per-job deltas, the design-iteration workload the
 * service exists for). Reports placements/sec for both and the
 * incremental speedup, and *gates* two contracts (exit 1 otherwise):
 * every cold result must be bitwise-identical to a serial QplacerFlow
 * run with the same seed, and an empty-delta re-place must reproduce
 * the base layout exactly. The speedup itself is gated in nightly CI
 * from the CSV.
 *
 * Environment overrides:
 *   QP_JOBS           jobs per phase (default 8)
 *   QP_SERVE_WORKERS  server workers (default 2)
 *   QP_MAX_ITERS      cold placer iteration budget (default 300)
 *   QP_SEED           cold-phase base seed; job i runs seed + i
 *
 * Usage: bench_serve_throughput [out.csv]
 */

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "service/server.hpp"
#include "util/timer.hpp"

namespace qplacer::bench {
namespace {

/** Collects result layouts by job id (the sink runs on pool threads). */
class ResultStore
{
  public:
    void
    operator()(const JsonValue &response)
    {
        const JsonValue *type = response.find("type");
        if (!type || type->asString() != "result")
            return;
        const JsonValue *layout = response.find("layout");
        std::lock_guard<std::mutex> lock(mu_);
        layouts_[response.find("id")->asString()] =
            layout ? layout->serialize() : std::string();
    }

    std::string
    layout(const std::string &id) const
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = layouts_.find(id);
        return it == layouts_.end() ? std::string() : it->second;
    }

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::string> layouts_;
};

int
run(int argc, char **argv)
{
    const int jobs = static_cast<int>(Config::envInt("QP_JOBS", 8));
    const int workers =
        static_cast<int>(Config::envInt("QP_SERVE_WORKERS", 2));
    const int max_iters =
        static_cast<int>(Config::envInt("QP_MAX_ITERS", 300));
    const std::uint64_t seed = placementSeed();

    const Topology topo = makeGrid(16, 16);
    banner("serve throughput: cold jobs vs. incremental re-place");
    std::printf("device %s: %d qubits, %d jobs/phase, %d workers, "
                "%d max iters\n",
                topo.name.c_str(), topo.numQubits(), jobs, workers,
                max_iters);

    ServerOptions options;
    options.workers = workers;
    PlacementServer server(options);
    ResultStore store;
    const ResponseSink sink = [&store](const JsonValue &r) { store(r); };

    // The server resolves specs, not Topology objects; register the
    // device under a parametric name it can rebuild.
    const std::string spec = "grid16x16";

    // --- Cold phase: independent jobs, per-job seeds. ---
    Timer cold_timer;
    for (int j = 0; j < jobs; ++j) {
        SubmitRequest req;
        req.id = "cold" + std::to_string(j);
        req.topology = spec;
        req.seed = seed + static_cast<std::uint64_t>(j);
        req.set.set("placer.maxIters", std::to_string(max_iters));
        req.wantLayout = true;
        server.submit(req, sink);
    }
    server.drain();
    const double cold_s = cold_timer.seconds();

    // --- Incremental phase: re-place cold0 with one dirty qubit. ---
    Timer incr_timer;
    for (int j = 0; j < jobs; ++j) {
        SubmitRequest req;
        req.id = "incr" + std::to_string(j);
        req.topology = spec;
        req.seed = seed;
        req.set.set("placer.maxIters", std::to_string(max_iters));
        req.wantLayout = true;
        req.baseId = "cold0";
        req.dirtyQubits = {j % topo.numQubits()};
        server.submit(req, sink);
    }
    server.drain();
    const double incr_s = incr_timer.seconds();

    // --- Gate 1: cold results match serial QplacerFlow bitwise. ---
    bool identical = true;
    for (int j = 0; j < jobs && identical; ++j) {
        FlowParams params;
        params.placer.maxIters = max_iters;
        params.placer.threads = 1; // The server's concurrent-job mode.
        params.placer.seed = seed + static_cast<std::uint64_t>(j);
        const FlowResult serial = QplacerFlow(params).run(topo);
        identical = store.layout("cold" + std::to_string(j)) ==
                    layoutJson(serial.netlist).serialize();
    }

    // --- Gate 2: an empty delta reproduces the base bitwise. ---
    {
        SubmitRequest req;
        req.id = "replay";
        req.topology = spec;
        req.seed = seed;
        req.set.set("placer.maxIters", std::to_string(max_iters));
        req.wantLayout = true;
        req.baseId = "cold0";
        server.submit(req, sink);
        server.drain();
        identical = identical &&
                    !store.layout("replay").empty() &&
                    store.layout("replay") == store.layout("cold0");
    }

    const double cold_pps =
        cold_s > 0.0 ? static_cast<double>(jobs) / cold_s : 0.0;
    const double incr_pps =
        incr_s > 0.0 ? static_cast<double>(jobs) / incr_s : 0.0;
    const double speedup = incr_s > 0.0 ? cold_s / incr_s : 0.0;

    std::printf("cold        : %8.2fs  (%.3f placements/sec)\n", cold_s,
                cold_pps);
    std::printf("incremental : %8.2fs  (%.3f placements/sec)\n", incr_s,
                incr_pps);
    std::printf("speedup     : %8.2fx  bitwise gates: %s\n", speedup,
                identical ? "pass" : "FAIL");

    if (argc > 1) {
        CsvWriter csv(argv[1]);
        csv.header({"topology", "jobs", "workers", "max_iters", "cold_s",
                    "incr_s", "cold_pps", "incr_pps", "speedup",
                    "identical"});
        csv.row({CsvWriter::cell(topo.name),
                 CsvWriter::cell(static_cast<long long>(jobs)),
                 CsvWriter::cell(static_cast<long long>(server.workers())),
                 CsvWriter::cell(static_cast<long long>(max_iters)),
                 CsvWriter::cell(cold_s), CsvWriter::cell(incr_s),
                 CsvWriter::cell(cold_pps), CsvWriter::cell(incr_pps),
                 CsvWriter::cell(speedup),
                 CsvWriter::cell(static_cast<long long>(identical))});
        std::printf("wrote %s\n", argv[1]);
    }

    if (!identical) {
        std::fprintf(stderr, "FAIL: service results diverged from the "
                             "serial / prior reference\n");
        return 1;
    }
    return 0;
}

} // namespace
} // namespace qplacer::bench

int
main(int argc, char **argv)
{
    return qplacer::bench::run(argc, argv);
}
