/**
 * @file
 * Fig. 15: substrate area utilization and hotspot proportion P_h for
 * Qplacer with resonator segment sizes l_b in {0.2, 0.3, 0.4} mm.
 *
 * Expected shape: l_b = 0.3 mm gives the best hotspot/utilization
 * trade-off (the paper's chosen operating point); 0.2 mm multiplies the
 * cell count without paying off.
 */

#include "bench_common.hpp"
#include "math/stats.hpp"

using namespace qplacer;

int
main()
{
    bench::banner("Fig. 15: segment-size (l_b) sweep");

    bench::FlowCache cache;
    CsvWriter csv("fig15_lb_sweep.csv");
    csv.header({"topology", "lb_mm", "cells", "utilization_percent",
                "ph_percent"});

    TextTable table;
    table.header({"topology", "lb (mm)", "#cells", "util (%)", "Ph (%)"});
    std::map<double, std::vector<double>> util_by_lb;
    std::map<double, std::vector<double>> ph_by_lb;

    for (const auto &topo_name : paperTopologyNames()) {
        for (const double lb_mm : {0.2, 0.3, 0.4}) {
            const FlowResult &flow =
                cache.get(topo_name, PlacerMode::Qplacer, lb_mm * 1000.0);
            table.row({topo_name, TextTable::num(lb_mm, 1),
                       std::to_string(flow.netlist.numInstances()),
                       TextTable::num(100.0 * flow.area.utilization, 1),
                       TextTable::num(flow.hotspots.phPercent, 2)});
            csv.row({topo_name, CsvWriter::cell(lb_mm),
                     CsvWriter::cell(static_cast<long long>(
                         flow.netlist.numInstances())),
                     CsvWriter::cell(100.0 * flow.area.utilization),
                     CsvWriter::cell(flow.hotspots.phPercent)});
            util_by_lb[lb_mm].push_back(flow.area.utilization);
            ph_by_lb[lb_mm].push_back(flow.hotspots.phPercent);
        }
    }
    std::printf("%s\n", table.render().c_str());
    for (const double lb_mm : {0.2, 0.3, 0.4}) {
        std::printf("lb=%.1f mean: util %.1f%% Ph %.2f%%\n", lb_mm,
                    100.0 * mean(util_by_lb[lb_mm]),
                    mean(ph_by_lb[lb_mm]));
    }
    std::printf("wrote fig15_lb_sweep.csv\n");
    return 0;
}
