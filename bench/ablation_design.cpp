/**
 * @file
 * Ablation study of QPlacer's design choices (the knobs DESIGN.md calls
 * out). Each variant disables one frequency-aware ingredient on Falcon
 * and reports hotspot proportion, impacted qubits, substrate box-mode
 * margin, and bv-4 fidelity.
 *
 * Finding (recorded in EXPERIMENTS.md): in this implementation the
 * tau-checked legalization is the decisive ingredient -- the global
 * frequency force pre-separates resonant groups, but without the tau
 * checks the packing legalizer erases that separation (and the force's
 * boundary equilibria then sit exactly at the violation threshold,
 * scoring *worse* than Classic). Distance-2 colouring reduces the
 * number of resonant pairs the spatial machinery must handle.
 */

#include "bench_common.hpp"
#include "physics/boxmode.hpp"

using namespace qplacer;

namespace {

struct Variant
{
    const char *name;
    bool freqForce;
    bool tauLegal;
    bool distance2;
    bool flowRefine;
};

} // namespace

int
main()
{
    bench::banner("Ablation: QPlacer design choices (Aspen-M)");

    const Variant variants[] = {
        {"full Qplacer", true, true, true, true},
        {"- tau legalization", true, false, true, true},
        {"- frequency force", false, true, true, true},
        {"- distance-2 colours", true, true, false, true},
        {"- flow refinement", true, true, true, false},
        {"Classic (no freq awareness)", false, false, true, true},
    };

    const Topology topo = makeTopology("Aspen-M");
    const Evaluator evaluator = bench::makeEvaluator();
    const Circuit bv = makeBenchmark("bv-4");

    TextTable table;
    table.header({"variant", "Ph (%)", "pairs", "impacted",
                  "bv-4 fidelity", "TM110 margin (GHz)"});
    CsvWriter csv("ablation_design.csv");
    csv.header({"variant", "ph_percent", "pairs", "impacted_qubits",
                "bv4_fidelity", "tm110_margin_ghz"});

    for (const Variant &v : variants) {
        FlowParams params;
        params.placer.seed = bench::placementSeed();
        params.placer.freqForce = v.freqForce;
        params.legalizer.integrationParams.resonanceCheck = v.tauLegal;
        params.assigner.distance2 = v.distance2;
        params.legalizer.flowRefine = v.flowRefine;

        const FlowResult r = QplacerFlow(params).run(topo);
        const double fidelity =
            evaluator.evaluate(topo, r.netlist, bv).meanFidelity;
        const double margin =
            substrateModeMarginHz(r.area.enclosingRect) / 1e9;

        table.row({v.name, TextTable::num(r.hotspots.phPercent, 2),
                   std::to_string(r.hotspots.pairs.size()),
                   std::to_string(r.hotspots.impactedQubits.size()),
                   TextTable::fidelity(fidelity),
                   TextTable::num(margin, 2)});
        csv.row({v.name, CsvWriter::cell(r.hotspots.phPercent),
                 CsvWriter::cell(
                     static_cast<long long>(r.hotspots.pairs.size())),
                 CsvWriter::cell(static_cast<long long>(
                     r.hotspots.impactedQubits.size())),
                 CsvWriter::cell(fidelity), CsvWriter::cell(margin)});
    }
    std::printf("%s\nwrote ablation_design.csv\n",
                table.render().c_str());
    return 0;
}
