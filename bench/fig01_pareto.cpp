/**
 * @file
 * Fig. 1: the motivating infidelity-versus-area picture. For one
 * device, each placement scheme becomes a point: Human (low infidelity,
 * large area), Classic (small area, high infidelity), Qplacer (small
 * area AND low infidelity).
 */

#include "bench_common.hpp"
#include "math/stats.hpp"

using namespace qplacer;

int
main()
{
    bench::banner("Fig. 1: infidelity vs area (Falcon)");

    bench::FlowCache cache;
    const Evaluator evaluator = bench::makeEvaluator();
    const Topology topo = makeTopology("Falcon");

    CsvWriter csv("fig01_pareto.csv");
    csv.header({"placer", "area_mm2", "avg_infidelity"});
    TextTable table;
    table.header({"placer", "area (mm^2)", "avg infidelity"});

    for (const PlacerMode mode : {PlacerMode::Human, PlacerMode::Classic,
                                  PlacerMode::Qplacer}) {
        const FlowResult &flow = cache.get("Falcon", mode);
        std::vector<double> fidelities;
        for (const auto &name : paperBenchmarkNames()) {
            fidelities.push_back(
                evaluator
                    .evaluate(topo, flow.netlist, makeBenchmark(name))
                    .meanFidelity);
        }
        const double infidelity = 1.0 - mean(fidelities);
        table.row({placerModeName(mode),
                   TextTable::num(flow.area.amerUm2 / 1e6, 1),
                   TextTable::num(infidelity, 4)});
        csv.row({placerModeName(mode),
                 CsvWriter::cell(flow.area.amerUm2 / 1e6),
                 CsvWriter::cell(infidelity)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Qplacer should sit near Human's infidelity at roughly "
                "half the area.\nwrote fig01_pareto.csv\n");
    return 0;
}
