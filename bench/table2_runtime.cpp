/**
 * @file
 * Table II: placement runtime, average per-iteration time, and cell
 * count per topology for each segment size l_b, measured with
 * google-benchmark (one measured iteration per configuration: the
 * placement itself already averages hundreds of solver iterations).
 */

#include <benchmark/benchmark.h>

#include "qplacer.hpp"

using namespace qplacer;

namespace {

struct RunStats
{
    int cells = 0;
    int iterations = 0;
};

RunStats
runPlacement(const std::string &topo_name, double lb_um)
{
    const Topology topo = makeTopology(topo_name);
    FlowParams params;
    params.partition.segmentUm = lb_um;
    const FrequencyAssigner assigner(params.assigner);
    const auto freqs = assigner.assign(topo);
    const NetlistBuilder builder(params.partition);
    Netlist netlist = builder.build(topo, freqs, params.targetUtil);

    const GlobalPlacer placer(params.placer);
    const PlaceResult r = placer.place(netlist);

    RunStats stats;
    stats.cells = netlist.numInstances();
    stats.iterations = std::max(1, r.iterations);
    return stats;
}

void
placementBenchmark(benchmark::State &state, const std::string &topo_name,
                   double lb_um)
{
    RunStats stats;
    for (auto _ : state)
        stats = runPlacement(topo_name, lb_um);
    state.counters["cells"] = stats.cells;
    state.counters["iters"] = stats.iterations;
    // Average runtime per solver iteration (the paper's "Avg" column).
    state.counters["s_per_iter"] = benchmark::Counter(
        static_cast<double>(stats.iterations),
        benchmark::Counter::kIsIterationInvariantRate |
            benchmark::Counter::kInvert);
}

} // namespace

int
main(int argc, char **argv)
{
    for (const auto &topo_name :
         {"Grid", "Xtree", "Falcon", "Eagle", "Aspen-11", "Aspen-M"}) {
        for (const double lb : {200.0, 300.0, 400.0}) {
            const std::string name = std::string("TableII/") + topo_name +
                                     "/lb=" +
                                     std::to_string(static_cast<int>(lb));
            benchmark::RegisterBenchmark(
                name.c_str(),
                [topo_name, lb](benchmark::State &state) {
                    placementBenchmark(state, topo_name, lb);
                })
                ->Unit(benchmark::kMillisecond)
                ->Iterations(1);
        }
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
