/**
 * @file
 * Batch placement throughput: N independent jobs on one grid16x16
 * device, a serial QplacerFlow loop vs. PlacementSession::runBatch on
 * a shared worker pool. Reports placements/sec for both and the
 * aggregate speedup, and *gates* the determinism contract: every batch
 * layout must be bitwise-identical to its serial counterpart (exit 1
 * otherwise). The speedup itself is gated in nightly CI from the CSV
 * (a 1-core box legitimately reports ~1x).
 *
 * Environment overrides:
 *   QP_JOBS           jobs in the batch (default 8)
 *   QP_BATCH_WORKERS  concurrent jobs (default 8)
 *   QP_MAX_ITERS      placer iteration budget (default 300)
 *   QP_SEED           base seed; job i runs with seed + i (default 1)
 *
 * Usage: bench_batch_throughput [out.csv]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "util/timer.hpp"

namespace qplacer::bench {
namespace {

int
run(int argc, char **argv)
{
    const int jobs = static_cast<int>(Config::envInt("QP_JOBS", 8));
    const int workers =
        static_cast<int>(Config::envInt("QP_BATCH_WORKERS", 8));
    const int max_iters =
        static_cast<int>(Config::envInt("QP_MAX_ITERS", 300));
    const std::uint64_t seed = placementSeed();

    const Topology topo = makeGrid(16, 16);
    banner("batch throughput: PlacementSession vs. serial flow loop");
    std::printf("device %s: %d qubits, %d jobs, %d workers, "
                "%d max iters\n",
                topo.name.c_str(), topo.numQubits(), jobs, workers,
                max_iters);

    // Per-job parameters: single-threaded placement (the batch
    // contract) with per-job seeds.
    const auto jobParams = [&](int j) {
        FlowParams params;
        params.placer.maxIters = max_iters;
        params.placer.threads = 1;
        params.placer.seed = seed + static_cast<std::uint64_t>(j);
        return params;
    };

    // --- Serial reference: one QplacerFlow::run per job. ---
    Timer serial_timer;
    std::vector<FlowResult> serial;
    serial.reserve(static_cast<std::size_t>(jobs));
    for (int j = 0; j < jobs; ++j)
        serial.push_back(QplacerFlow(jobParams(j)).run(topo));
    const double serial_s = serial_timer.seconds();

    // --- Batch: same jobs, concurrently, on one shared pool. ---
    SessionParams sparams;
    sparams.workers = workers;
    PlacementSession session(sparams);
    std::vector<FlowParams> batch;
    batch.reserve(static_cast<std::size_t>(jobs));
    for (int j = 0; j < jobs; ++j)
        batch.push_back(jobParams(j));
    Timer batch_timer;
    const std::vector<FlowResult> batched = session.runBatch(topo, batch);
    const double batch_s = batch_timer.seconds();

    // --- Bitwise gate: batch == serial, job by job. ---
    bool identical = batched.size() == serial.size();
    for (std::size_t j = 0; identical && j < batched.size(); ++j) {
        identical = batched[j].status.ok() &&
                    bitwiseSameLayout(serial[j].netlist,
                                      batched[j].netlist) &&
                    serial[j].place.finalHpwl ==
                        batched[j].place.finalHpwl;
    }

    const double serial_pps =
        serial_s > 0.0 ? static_cast<double>(jobs) / serial_s : 0.0;
    const double batch_pps =
        batch_s > 0.0 ? static_cast<double>(jobs) / batch_s : 0.0;
    const double speedup = batch_s > 0.0 ? serial_s / batch_s : 0.0;

    std::printf("serial loop : %8.2fs  (%.3f placements/sec)\n",
                serial_s, serial_pps);
    std::printf("batch       : %8.2fs  (%.3f placements/sec)\n", batch_s,
                batch_pps);
    std::printf("speedup     : %8.2fx  bitwise-identical: %s\n", speedup,
                identical ? "yes" : "NO");

    if (argc > 1) {
        CsvWriter csv(argv[1]);
        csv.header({"topology", "jobs", "workers", "max_iters",
                    "serial_s", "batch_s", "serial_pps", "batch_pps",
                    "speedup", "identical"});
        csv.row({CsvWriter::cell(topo.name),
                 CsvWriter::cell(static_cast<long long>(jobs)),
                 CsvWriter::cell(static_cast<long long>(workers)),
                 CsvWriter::cell(static_cast<long long>(max_iters)),
                 CsvWriter::cell(serial_s), CsvWriter::cell(batch_s),
                 CsvWriter::cell(serial_pps), CsvWriter::cell(batch_pps),
                 CsvWriter::cell(speedup),
                 CsvWriter::cell(static_cast<long long>(identical))});
        std::printf("wrote %s\n", argv[1]);
    }

    if (!identical) {
        std::fprintf(stderr, "FAIL: batch layouts diverged from the "
                             "serial reference\n");
        return 1;
    }
    return 0;
}

} // namespace
} // namespace qplacer::bench

int
main(int argc, char **argv)
{
    return qplacer::bench::run(argc, argv);
}
