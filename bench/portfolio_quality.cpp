/**
 * @file
 * Portfolio placement quality: the plain single-seed flow vs. a
 * multi-start portfolio with annealing detailed placement on the
 * golden topologies (grid8x8, heavyhex3x5). Reports HPWL and wall
 * time for both and *gates* the dominance contract in-driver: the
 * portfolio layout must be legal and its HPWL no worse than the
 * single-seed flow's (exit 1 otherwise). The base seed is exempt from
 * pruning and the annealer never worsens HPWL, so this is a
 * deterministic guarantee, not a statistical one; nightly CI re-gates
 * it from the CSV.
 *
 * Environment overrides:
 *   QP_PORTFOLIO_SEEDS  candidates per portfolio (default 4)
 *   QP_DETAILED_ITERS   annealing sweeps on the winner (default 30)
 *   QP_MAX_ITERS        placer iteration budget (default 400)
 *   QP_SEED             base seed (default 1)
 *
 * Usage: bench_portfolio_quality [out.csv]
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "legal/anneal.hpp"
#include "pipeline/session.hpp"
#include "util/timer.hpp"

namespace qplacer::bench {
namespace {

int
run(int argc, char **argv)
{
    const int seeds =
        static_cast<int>(Config::envInt("QP_PORTFOLIO_SEEDS", 4));
    const int detailed_iters =
        static_cast<int>(Config::envInt("QP_DETAILED_ITERS", 30));
    const int max_iters =
        static_cast<int>(Config::envInt("QP_MAX_ITERS", 400));
    const std::uint64_t seed = placementSeed();

    banner("portfolio quality: single seed vs. portfolio + detailed");
    std::printf("%d candidate seeds, %d detailed sweeps, %d max iters\n",
                seeds, detailed_iters, max_iters);

    std::vector<Topology> topologies;
    topologies.push_back(makeGrid(8, 8));
    topologies.push_back(makeHeavyHex(3, 5));

    std::unique_ptr<CsvWriter> csv;
    if (argc > 1) {
        csv = std::make_unique<CsvWriter>(argv[1]);
        csv->header({"topology", "seeds", "detailed_iters", "max_iters",
                     "single_s", "portfolio_s", "single_hpwl_um",
                     "portfolio_hpwl_um", "improvement_pct", "winner_seed",
                     "legal", "dominates"});
    }

    bool all_dominate = true;
    for (const Topology &topo : topologies) {
        FlowParams params;
        params.placer.maxIters = max_iters;
        params.placer.threads = 1;
        params.placer.seed = seed;

        // --- Single-seed reference flow. ---
        PlacementSession session;
        Timer single_timer;
        const FlowResult single = session.run(topo, params);
        const double single_s = single_timer.seconds();

        // --- Portfolio + detailed on the same budget per candidate. ---
        FlowParams folio_params = params;
        folio_params.detailed.enabled = true;
        folio_params.detailed.iters = detailed_iters;
        Timer folio_timer;
        const FlowResult folio =
            session.runPortfolio(topo, folio_params, seeds);
        const double folio_s = folio_timer.seconds();

        const bool ok = single.status.ok() && folio.status.ok();
        const double single_hpwl =
            ok ? layoutHpwl(single.netlist) : 0.0;
        const double folio_hpwl = ok ? layoutHpwl(folio.netlist) : 0.0;
        const bool dominates =
            ok && folio.legal.legal && folio_hpwl <= single_hpwl;
        all_dominate = all_dominate && dominates;
        const double improvement_pct =
            single_hpwl > 0.0
                ? 100.0 * (single_hpwl - folio_hpwl) / single_hpwl
                : 0.0;

        std::printf("%-12s single %10.1f um (%6.2fs) | portfolio "
                    "%10.1f um (%6.2fs) | %+5.2f%% | winner seed %llu | "
                    "%s\n",
                    topo.name.c_str(), single_hpwl, single_s, folio_hpwl,
                    folio_s, improvement_pct,
                    static_cast<unsigned long long>(
                        folio.portfolioStats.winnerSeed),
                    dominates ? "ok" : "WORSE");

        if (csv) {
            csv->row({CsvWriter::cell(topo.name),
                      CsvWriter::cell(static_cast<long long>(seeds)),
                      CsvWriter::cell(
                          static_cast<long long>(detailed_iters)),
                      CsvWriter::cell(static_cast<long long>(max_iters)),
                      CsvWriter::cell(single_s), CsvWriter::cell(folio_s),
                      CsvWriter::cell(single_hpwl),
                      CsvWriter::cell(folio_hpwl),
                      CsvWriter::cell(improvement_pct),
                      CsvWriter::cell(std::to_string(
                          folio.portfolioStats.winnerSeed)),
                      CsvWriter::cell(
                          static_cast<long long>(folio.legal.legal)),
                      CsvWriter::cell(
                          static_cast<long long>(dominates))});
        }
    }
    if (csv)
        std::printf("wrote %s\n", argv[1]);

    if (!all_dominate) {
        std::fprintf(stderr, "FAIL: portfolio + detailed lost to the "
                             "single-seed flow\n");
        return 1;
    }
    return 0;
}

} // namespace
} // namespace qplacer::bench

int
main(int argc, char **argv)
{
    return qplacer::bench::run(argc, argv);
}
