/**
 * @file
 * Fig. 4: coupling strength between two directly connected transmons as
 * the second qubit's frequency sweeps across the first. The peak sits
 * at resonance (omega_1 = omega_2) and the residual coupling decays as
 * g^2/Delta away from it; designed couplings are ~20-30 MHz.
 */

#include "bench_common.hpp"
#include "physics/coupling.hpp"

using namespace qplacer;

int
main()
{
    bench::banner("Fig. 4: qubit-qubit coupling vs detuning");

    const double f1 = 5.0e9;
    const double cp_designed = 1.0; // fF, a designed coupling capacitor
    const double g0 =
        couplingStrength(f1, f1, cp_designed, kQubitCapFf, kQubitCapFf);
    std::printf("bare coupling g at resonance: %.1f MHz "
                "(paper: 20-30 MHz)\n\n",
                g0 / 1e6);

    TextTable table;
    table.header({"omega2 (GHz)", "Delta (MHz)", "g_eff (MHz)",
                  "exchange amplitude"});
    CsvWriter csv("fig04_qubit_coupling.csv");
    csv.header({"omega2_ghz", "delta_mhz", "geff_mhz", "amplitude"});

    for (double f2 = 4.80e9; f2 <= 5.20001e9; f2 += 0.02e9) {
        const double g =
            couplingStrength(f1, f2, cp_designed, kQubitCapFf,
                             kQubitCapFf);
        const double delta = f2 - f1;
        const double geff = effectiveCoupling(g, delta);
        const double amp = rabiAmplitude(g, delta);
        table.row({TextTable::num(f2 / 1e9, 2),
                   TextTable::num(delta / 1e6, 0),
                   TextTable::num(geff / 1e6, 3),
                   TextTable::num(amp, 4)});
        csv.row({CsvWriter::cell(f2 / 1e9), CsvWriter::cell(delta / 1e6),
                 CsvWriter::cell(geff / 1e6), CsvWriter::cell(amp)});
    }
    std::printf("%s\nwrote fig04_qubit_coupling.csv\n",
                table.render().c_str());
    return 0;
}
