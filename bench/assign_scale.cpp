/**
 * @file
 * Assign/build scaling: wall-time of frequency assignment and netlist
 * construction on grid, octagon, and heavy-hex devices from 1k to 10k
 * qubits, comparing the retained reference engines (linear-scan DSATUR,
 * all-pairs resonator loops, sequential append-order builder) against
 * the fast paths (saturation-heap DSATUR with colour bitsets, incident-
 * list resonator graph, prefix-summed parallel builder).
 *
 * The comparison *gates* the equivalence contract: both assigners must
 * produce identical colourings, bitwise-identical frequency vectors and
 * agreeing violation counts, and both builders bitwise-identical
 * netlists (exit 1 otherwise) -- the speedup itself is gated in nightly
 * CI from the CSV on the 1000+ qubit instances.
 *
 * Environment overrides:
 *   QP_THREADS  builder worker threads (default 0 = hardware)
 *
 * Usage: bench_assign_scale [out.csv]
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace qplacer::bench {
namespace {

struct Workload
{
    std::string name;
    Topology topo;
};

/** Element-wise bitwise comparison (NaN-safe, unlike operator==). */
bool
sameBits(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size())
        return false;
    return a.empty() ||
           std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

struct AssignRun
{
    FrequencyAssignment freqs;
    AssignStats stats;
    int violations = 0;
    double seconds = 0.0;
};

AssignRun
runAssign(const Topology &topo, AssignEngine engine)
{
    AssignerParams params;
    params.engine = engine;
    const FrequencyAssigner assigner(params);
    AssignRun run;
    Timer timer;
    run.freqs = assigner.assign(topo, &run.stats);
    run.seconds = timer.seconds();
    run.violations = assigner.countDomainViolations(topo, run.freqs);
    return run;
}

struct BuildRun
{
    Netlist netlist;
    BuildStats stats;
    double seconds = 0.0;
};

BuildRun
runBuild(const Topology &topo, const FrequencyAssignment &freqs,
         BuildEngine engine, ThreadPool *pool)
{
    PartitionParams params;
    params.buildEngine = engine;
    const NetlistBuilder builder(params);
    BuildRun run;
    Timer timer;
    run.netlist = builder.build(topo, freqs, 0.72, pool, &run.stats);
    run.seconds = timer.seconds();
    return run;
}

int
run(int argc, char **argv)
{
    const int threads = static_cast<int>(Config::envInt("QP_THREADS", 0));
    ThreadPool pool(threads);

    std::vector<Workload> workloads;
    workloads.push_back({"grid32x32", makeGrid(32, 32)});
    workloads.push_back({"octagon12x12", makeOctagon(12, 12)});
    workloads.push_back({"heavyhex40x60", makeHeavyHex(40, 60)});
    workloads.push_back({"grid64x64", makeGrid(64, 64)});
    workloads.push_back({"grid100x100", makeGrid(100, 100)});

    banner("assign/build scaling: reference vs. fast engines");
    std::printf("builder pool: %d threads\n", pool.threads());

    std::vector<std::vector<std::string>> rows;
    bool all_identical = true;

    for (const Workload &wl : workloads) {
        const AssignRun aref = runAssign(wl.topo, AssignEngine::Reference);
        const AssignRun afast = runAssign(wl.topo, AssignEngine::Fast);

        const BuildRun bref = runBuild(wl.topo, afast.freqs,
                                       BuildEngine::Reference, nullptr);
        const BuildRun bfast =
            runBuild(wl.topo, afast.freqs, BuildEngine::Fast, &pool);

        const bool assign_identical =
            aref.freqs.qubitColor == afast.freqs.qubitColor &&
            aref.freqs.resonatorColor == afast.freqs.resonatorColor &&
            sameBits(aref.freqs.qubitFreqHz, afast.freqs.qubitFreqHz) &&
            sameBits(aref.freqs.resonatorFreqHz,
                     afast.freqs.resonatorFreqHz) &&
            aref.freqs.numQubitSlots == afast.freqs.numQubitSlots &&
            aref.freqs.numResonatorSlots ==
                afast.freqs.numResonatorSlots &&
            aref.violations == afast.violations;
        const bool build_identical =
            bitwiseSameNetlist(bref.netlist, bfast.netlist);
        const bool identical = assign_identical && build_identical;
        all_identical = all_identical && identical;

        const double ref_s = aref.seconds + bref.seconds;
        const double fast_s = afast.seconds + bfast.seconds;
        const double speedup = fast_s > 0.0 ? ref_s / fast_s : 0.0;

        std::printf("%s: %d qubits, %d cells\n", wl.name.c_str(),
                    wl.topo.numQubits(), bfast.netlist.numInstances());
        std::printf("  assign: reference %7.3fs  fast %7.3fs  "
                    "(%d violations both)  identical: %s\n",
                    aref.seconds, afast.seconds, afast.violations,
                    assign_identical ? "yes" : "NO");
        std::printf("  build:  reference %7.3fs  fast %7.3fs @ %d "
                    "threads  bitwise-identical: %s\n",
                    bref.seconds, bfast.seconds, bfast.stats.threads,
                    build_identical ? "yes" : "NO");
        std::printf("  total:  reference %7.3fs  fast %7.3fs  %.2fx\n",
                    ref_s, fast_s, speedup);
        std::printf("  fast assign stages: interference %.3fs  "
                    "qubit_color %.3fs  res_graph %.3fs  "
                    "res_color %.3fs\n",
                    afast.stats.interferenceSeconds,
                    afast.stats.qubitColorSeconds,
                    afast.stats.resonatorGraphSeconds,
                    afast.stats.resonatorColorSeconds);
        std::printf("  fast build stages:  segments %.3fs  "
                    "instances %.3fs  warm_start %.3fs  finalize %.3fs\n",
                    bfast.stats.segmentsSeconds,
                    bfast.stats.instancesSeconds,
                    bfast.stats.warmStartSeconds,
                    bfast.stats.finalizeSeconds);

        rows.push_back(
            {CsvWriter::cell(wl.name),
             CsvWriter::cell(
                 static_cast<long long>(wl.topo.numQubits())),
             CsvWriter::cell(static_cast<long long>(
                 bfast.netlist.numInstances())),
             CsvWriter::cell(ref_s), CsvWriter::cell(fast_s),
             CsvWriter::cell(speedup),
             CsvWriter::cell(static_cast<long long>(identical)),
             CsvWriter::cell(aref.seconds), CsvWriter::cell(afast.seconds),
             CsvWriter::cell(bref.seconds), CsvWriter::cell(bfast.seconds),
             CsvWriter::cell(
                 static_cast<long long>(bfast.stats.threads)),
             CsvWriter::cell(afast.stats.interferenceSeconds),
             CsvWriter::cell(afast.stats.qubitColorSeconds),
             CsvWriter::cell(afast.stats.resonatorGraphSeconds),
             CsvWriter::cell(afast.stats.resonatorColorSeconds),
             CsvWriter::cell(bfast.stats.segmentsSeconds),
             CsvWriter::cell(bfast.stats.instancesSeconds),
             CsvWriter::cell(bfast.stats.warmStartSeconds),
             CsvWriter::cell(bfast.stats.finalizeSeconds)});
    }

    if (argc > 1) {
        CsvWriter csv(argv[1]);
        csv.header({"workload", "qubits", "cells", "ref_s", "fast_s",
                    "speedup", "identical", "assign_ref_s",
                    "assign_fast_s", "build_ref_s", "build_fast_s",
                    "build_threads", "interference_s", "qubit_color_s",
                    "resonator_graph_s", "resonator_color_s",
                    "segments_s", "instances_s", "warm_start_s",
                    "finalize_s"});
        for (const auto &row : rows)
            csv.row(row);
        std::printf("wrote %s\n", argv[1]);
    }

    if (!all_identical) {
        std::fprintf(stderr, "FAIL: fast assign/build outputs diverged "
                             "from the reference engines\n");
        return 1;
    }
    return 0;
}

} // namespace
} // namespace qplacer::bench

int
main(int argc, char **argv)
{
    return qplacer::bench::run(argc, argv);
}
