/**
 * @file
 * Equivalence of the fast assign/build engines against the retained
 * reference implementations: the saturation-heap DSATUR must colour
 * every graph exactly like the linear-scan reference, full assignments
 * must match on the paper topologies, the sparse violation counter must
 * agree with the all-pairs scan, and the prefix-summed parallel builder
 * must reproduce the sequential netlist bit for bit at any thread
 * count. ctest -L assign.
 */

#include <cstring>

#include <gtest/gtest.h>

#include "freq/assigner.hpp"
#include "netlist/builder.hpp"
#include "topology/generators.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace qplacer {
namespace {

Graph
randomGraph(int n, double edge_prob, Rng &rng)
{
    Graph g(n);
    for (int u = 0; u < n; ++u) {
        for (int v = u + 1; v < n; ++v) {
            if (rng.uniform() < edge_prob)
                g.addEdge(u, v);
        }
    }
    return g;
}

Graph
starGraph(int n, Rng &rng)
{
    Graph g(n);
    for (int v = 1; v < n; ++v)
        g.addEdge(0, v);
    // A few random chords so saturation ties actually occur.
    for (int u = 1; u < n; ++u) {
        for (int v = u + 1; v < n; ++v) {
            if (rng.uniform() < 0.05)
                g.addEdge(u, v);
        }
    }
    return g;
}

Graph
pathGraph(int n)
{
    Graph g(n);
    for (int v = 0; v + 1 < n; ++v)
        g.addEdge(v, v + 1);
    return g;
}

void
expectProperColoring(const Graph &g, const std::vector<int> &color)
{
    for (const auto &[u, v] : g.edges()) {
        EXPECT_GE(color[u], 0);
        EXPECT_NE(color[u], color[v]) << "edge " << u << "-" << v;
    }
}

bool
sameBits(const std::vector<double> &a, const std::vector<double> &b)
{
    return a.size() == b.size() &&
           (a.empty() || std::memcmp(a.data(), b.data(),
                                     a.size() * sizeof(double)) == 0);
}

void
expectSameAssignment(const FrequencyAssignment &ref,
                     const FrequencyAssignment &fast)
{
    EXPECT_EQ(ref.qubitColor, fast.qubitColor);
    EXPECT_EQ(ref.resonatorColor, fast.resonatorColor);
    EXPECT_TRUE(sameBits(ref.qubitFreqHz, fast.qubitFreqHz));
    EXPECT_TRUE(sameBits(ref.resonatorFreqHz, fast.resonatorFreqHz));
    EXPECT_EQ(ref.numQubitSlots, fast.numQubitSlots);
    EXPECT_EQ(ref.numResonatorSlots, fast.numResonatorSlots);
}

TEST(DsaturEquivalence, RandomDenseAndSparse)
{
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        for (const double p : {0.5, 0.08}) {
            Rng rng(seed);
            const Graph g = randomGraph(60, p, rng);
            const auto ref = FrequencyAssigner::dsaturReference(g);
            const auto fast = FrequencyAssigner::dsatur(g);
            EXPECT_EQ(ref, fast) << "seed " << seed << " p " << p;
            expectProperColoring(g, fast);
        }
    }
}

TEST(DsaturEquivalence, StarAndPath)
{
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        Rng rng(seed);
        const Graph star = starGraph(50, rng);
        EXPECT_EQ(FrequencyAssigner::dsaturReference(star),
                  FrequencyAssigner::dsatur(star));

        const Graph path = pathGraph(40 + static_cast<int>(seed));
        EXPECT_EQ(FrequencyAssigner::dsaturReference(path),
                  FrequencyAssigner::dsatur(path));
    }
}

TEST(DsaturEquivalence, EmptyAndIsolatedNodes)
{
    const Graph empty(0);
    EXPECT_TRUE(FrequencyAssigner::dsatur(empty).empty());

    Graph isolated(5); // no edges: everything gets colour 0
    const auto colors = FrequencyAssigner::dsatur(isolated);
    EXPECT_EQ(colors, FrequencyAssigner::dsaturReference(isolated));
    for (int c : colors)
        EXPECT_EQ(c, 0);
}

TEST(AssignEquivalence, PaperTopologies)
{
    for (const Topology &topo :
         {makeGrid(8, 8), makeHeavyHex(3, 5), makeOctagon(4, 4),
          makeEagle()}) {
        AssignerParams ref_params;
        ref_params.engine = AssignEngine::Reference;
        AssignerParams fast_params;
        fast_params.engine = AssignEngine::Fast;

        const FrequencyAssigner ref(ref_params);
        const FrequencyAssigner fast(fast_params);
        const auto ref_out = ref.assign(topo);
        const auto fast_out = fast.assign(topo);
        SCOPED_TRACE(topo.name);
        expectSameAssignment(ref_out, fast_out);
        EXPECT_EQ(ref.countDomainViolations(topo, ref_out),
                  fast.countDomainViolations(topo, fast_out));
    }
}

TEST(AssignEquivalence, ViolationCountersAgreeUnderCollisions)
{
    // Force resonances by sampling frequencies from a tiny slot pool,
    // then check the sparse incident-list counter matches the all-pairs
    // scan exactly.
    const Topology topo = makeGrid(6, 6);
    AssignerParams ref_params;
    ref_params.engine = AssignEngine::Reference;
    AssignerParams fast_params;
    fast_params.engine = AssignEngine::Fast;
    const FrequencyAssigner ref(ref_params);
    const FrequencyAssigner fast(fast_params);

    FrequencyAssignment assignment = fast.assign(topo);
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        Rng rng(seed);
        for (double &f : assignment.qubitFreqHz)
            f = 5.0e9 + 0.05e9 * static_cast<double>(rng.below(3));
        for (double &f : assignment.resonatorFreqHz)
            f = 6.5e9 + 0.05e9 * static_cast<double>(rng.below(3));
        const int ref_count = ref.countDomainViolations(topo, assignment);
        EXPECT_GT(ref_count, 0);
        EXPECT_EQ(ref_count, fast.countDomainViolations(topo, assignment));
    }
}

TEST(AssignEquivalence, CrowdedHardClassesAliasDeterministically)
{
    // A 6-clique needs 6 hard colour classes; a band with room for only
    // 3 slots forces the aliasing fallback. Classes alias slots
    // round-robin (c % used), so exactly the 3 coupled pairs whose
    // classes collide stay resonant -- identically on both engines.
    Topology topo;
    topo.name = "K6";
    topo.coupling = Graph(6);
    for (int u = 0; u < 6; ++u)
        for (int v = u + 1; v < 6; ++v)
            topo.coupling.addEdge(u, v);
    topo.embedding = {{0, 0}, {1, 0}, {2, 0}, {0, 1}, {1, 1}, {2, 1}};

    AssignerParams params;
    params.qubitBand =
        FrequencyBand(5.0e9, 5.0e9 + 2.0 * params.detuningThresholdHz);

    AssignerParams ref_params = params;
    ref_params.engine = AssignEngine::Reference;
    const FrequencyAssigner ref(ref_params);
    const FrequencyAssigner fast(params);

    const auto ref_out = ref.assign(topo);
    const auto fast_out = fast.assign(topo);
    expectSameAssignment(ref_out, fast_out);
    EXPECT_EQ(fast_out.numQubitSlots, 3);

    // 6 classes on 3 slots: pairs (0,3), (1,4), (2,5) alias.
    const int violations = fast.countDomainViolations(topo, fast_out);
    EXPECT_EQ(violations, ref.countDomainViolations(topo, ref_out));
    EXPECT_EQ(violations, 3);
}

TEST(BuildEquivalence, BitwiseIdenticalAcrossThreadCounts)
{
    for (const Topology &topo : {makeGrid(8, 8), makeOctagon(4, 4)}) {
        SCOPED_TRACE(topo.name);
        const FrequencyAssigner assigner;
        const auto freqs = assigner.assign(topo);

        PartitionParams ref_params;
        ref_params.buildEngine = BuildEngine::Reference;
        const Netlist ref =
            NetlistBuilder(ref_params).build(topo, freqs, 0.72);

        PartitionParams fast_params;
        fast_params.buildEngine = BuildEngine::Fast;
        fast_params.buildSerialBelow = 0; // exercise the chunked paths
        const NetlistBuilder builder(fast_params);

        for (const int threads : {1, 2, 8}) {
            ThreadPool pool(threads);
            BuildStats stats;
            const Netlist fast =
                builder.build(topo, freqs, 0.72, &pool, &stats);
            EXPECT_TRUE(bitwiseSameNetlist(ref, fast))
                << threads << " threads";
            EXPECT_EQ(stats.threads, threads);
        }
    }
}

} // namespace
} // namespace qplacer
