#include <gtest/gtest.h>

#include "freq/spectrum.hpp"

namespace qplacer {
namespace {

TEST(Spectrum, BandBasics)
{
    const FrequencyBand band(4.8e9, 5.2e9);
    EXPECT_DOUBLE_EQ(band.span(), 0.4e9);
    EXPECT_TRUE(band.contains(5.0e9));
    EXPECT_TRUE(band.contains(4.8e9));
    EXPECT_FALSE(band.contains(5.3e9));
    EXPECT_THROW(FrequencyBand(5e9, 5e9), std::runtime_error);
}

TEST(Spectrum, PaperBands)
{
    EXPECT_DOUBLE_EQ(FrequencyBand::qubitBand().loHz, 4.8e9);
    EXPECT_DOUBLE_EQ(FrequencyBand::qubitBand().hiHz, 5.2e9);
    EXPECT_DOUBLE_EQ(FrequencyBand::resonatorBand().loHz, 6.0e9);
    EXPECT_DOUBLE_EQ(FrequencyBand::resonatorBand().hiHz, 7.0e9);
}

TEST(Spectrum, MaxSlotsAtThresholdSpacing)
{
    // 0.4 GHz span / 0.1 GHz spacing -> 5 slots (Section III-B).
    EXPECT_EQ(FrequencyBand::qubitBand().maxSlots(0.1e9), 5);
    // 1.0 GHz resonator band -> 11 slots.
    EXPECT_EQ(FrequencyBand::resonatorBand().maxSlots(0.1e9), 11);
}

TEST(Spectrum, SlotsAreEvenlySpacedAndInBand)
{
    const FrequencyBand band(6.0e9, 7.0e9);
    const auto slots = band.slots(11);
    EXPECT_EQ(slots.size(), 11u);
    EXPECT_DOUBLE_EQ(slots.front(), 6.0e9);
    EXPECT_DOUBLE_EQ(slots.back(), 7.0e9);
    for (std::size_t i = 0; i + 1 < slots.size(); ++i)
        EXPECT_NEAR(slots[i + 1] - slots[i], 0.1e9, 1.0);
    for (double s : slots)
        EXPECT_TRUE(band.contains(s));
}

TEST(Spectrum, SingleSlotIsBandCenter)
{
    const FrequencyBand band(4.8e9, 5.2e9);
    const auto slots = band.slots(1);
    EXPECT_DOUBLE_EQ(slots[0], 5.0e9);
}

TEST(Spectrum, ResonanceIndicatorIsStrict)
{
    // tau activates strictly below the threshold: slots spaced exactly
    // at Delta_c count as detuned.
    EXPECT_TRUE(isResonant(5.0e9, 5.0e9));
    EXPECT_TRUE(isResonant(5.0e9, 5.05e9));
    EXPECT_FALSE(isResonant(5.0e9, 5.1e9));
    EXPECT_FALSE(isResonant(5.0e9, 5.2e9));
}

TEST(Spectrum, QubitNeverResonantWithResonatorBand)
{
    // The bands are disjoint by more than the threshold.
    EXPECT_FALSE(isResonant(5.2e9, 6.0e9));
}

} // namespace
} // namespace qplacer
