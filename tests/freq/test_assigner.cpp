#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "freq/assigner.hpp"
#include "topology/factory.hpp"
#include "topology/generators.hpp"

namespace qplacer {
namespace {

TEST(Dsatur, ColorsPathWithTwo)
{
    Graph g(4);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 3);
    const auto colors = FrequencyAssigner::dsatur(g);
    int max_color = 0;
    for (int c : colors)
        max_color = std::max(max_color, c);
    EXPECT_EQ(max_color, 1);
    for (const auto &[u, v] : g.edges())
        EXPECT_NE(colors[u], colors[v]);
}

TEST(Dsatur, CliqueNeedsAllColors)
{
    Graph g(4);
    for (int i = 0; i < 4; ++i)
        for (int j = i + 1; j < 4; ++j)
            g.addEdge(i, j);
    const auto colors = FrequencyAssigner::dsatur(g);
    std::set<int> unique(colors.begin(), colors.end());
    EXPECT_EQ(unique.size(), 4u);
}

TEST(Dsatur, ProperColoringOnAllPaperTopologies)
{
    for (const auto &name : paperTopologyNames()) {
        const Topology topo = makeTopology(name);
        const auto colors = FrequencyAssigner::dsatur(topo.coupling);
        for (const auto &[u, v] : topo.coupling.edges())
            EXPECT_NE(colors[u], colors[v]) << name;
    }
}

class AssignerOnTopology
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(AssignerOnTopology, NoCoupledPairResonant)
{
    const Topology topo = makeTopology(GetParam());
    const FrequencyAssigner assigner;
    const auto freqs = assigner.assign(topo);
    EXPECT_EQ(assigner.countDomainViolations(topo, freqs), 0);
}

TEST_P(AssignerOnTopology, FrequenciesInsideBands)
{
    const Topology topo = makeTopology(GetParam());
    const auto freqs = FrequencyAssigner().assign(topo);
    for (double f : freqs.qubitFreqHz)
        EXPECT_TRUE(FrequencyBand::qubitBand().contains(f));
    for (double f : freqs.resonatorFreqHz)
        EXPECT_TRUE(FrequencyBand::resonatorBand().contains(f));
}

TEST_P(AssignerOnTopology, SlotCountsWithinCapacity)
{
    const Topology topo = makeTopology(GetParam());
    const auto freqs = FrequencyAssigner().assign(topo);
    EXPECT_LE(freqs.numQubitSlots, 5);
    EXPECT_LE(freqs.numResonatorSlots, 11);
    EXPECT_GE(freqs.numQubitSlots, 2);
    EXPECT_GE(freqs.numResonatorSlots, 2);
}

INSTANTIATE_TEST_SUITE_P(Paper, AssignerOnTopology,
                         ::testing::Values("Grid", "Xtree", "Falcon",
                                           "Eagle", "Aspen-11",
                                           "Aspen-M"),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (char &c : n)
                                 if (c == '-')
                                     c = '_';
                             return n;
                         });

TEST(Assigner, FrequencyReuseIsInevitableOnLargeDevices)
{
    // 127 qubits cannot fit in 5 mutually detuned slots: same-frequency
    // qubits must exist (the placement engine's workload).
    const Topology topo = makeEagle();
    const auto freqs = FrequencyAssigner().assign(topo);
    std::set<double> unique(freqs.qubitFreqHz.begin(),
                            freqs.qubitFreqHz.end());
    EXPECT_LT(unique.size(), freqs.qubitFreqHz.size());
}

TEST(Assigner, Distance2SeparatesSpectators)
{
    // With distance-2 coloring on, qubits two hops apart on a path get
    // distinct frequencies (when the band allows).
    Topology topo;
    topo.name = "path";
    topo.coupling = Graph(3);
    topo.coupling.addEdge(0, 1);
    topo.coupling.addEdge(1, 2);
    topo.embedding = {{0, 0}, {1, 0}, {2, 0}};

    AssignerParams params;
    params.distance2 = true;
    const auto freqs = FrequencyAssigner(params).assign(topo);
    EXPECT_NE(freqs.qubitFreqHz[0], freqs.qubitFreqHz[2]);

    params.distance2 = false;
    const auto freqs2 = FrequencyAssigner(params).assign(topo);
    EXPECT_EQ(freqs2.qubitFreqHz[0], freqs2.qubitFreqHz[2]);
}

TEST(Assigner, ResonatorsSharingAQubitDetuned)
{
    const Topology topo = makeGrid(3, 3);
    const auto freqs = FrequencyAssigner().assign(topo);
    const auto &edges = topo.coupling.edges();
    for (std::size_t a = 0; a < edges.size(); ++a) {
        for (std::size_t b = a + 1; b < edges.size(); ++b) {
            const bool share = edges[a].first == edges[b].first ||
                               edges[a].first == edges[b].second ||
                               edges[a].second == edges[b].first ||
                               edges[a].second == edges[b].second;
            if (share) {
                EXPECT_FALSE(isResonant(freqs.resonatorFreqHz[a],
                                        freqs.resonatorFreqHz[b]));
            }
        }
    }
}

} // namespace
} // namespace qplacer
