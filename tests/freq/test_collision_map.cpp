#include <gtest/gtest.h>

#include "freq/collision_map.hpp"

namespace qplacer {
namespace {

TEST(CollisionMap, DetectsNearResonantPairs)
{
    const std::vector<double> freqs{5.00e9, 5.05e9, 5.30e9};
    const std::vector<int> group{-1, -1, -1};
    const CollisionMap map(freqs, group);
    EXPECT_TRUE(map.collides(0, 1));
    EXPECT_FALSE(map.collides(0, 2));
    EXPECT_FALSE(map.collides(1, 2));
    EXPECT_EQ(map.numPairs(), 1u);
}

TEST(CollisionMap, ThresholdIsStrict)
{
    const std::vector<double> freqs{5.0e9, 5.1e9};
    const CollisionMap map(freqs, {-1, -1});
    EXPECT_FALSE(map.collides(0, 1)); // exactly Delta_c apart
}

TEST(CollisionMap, SameResonatorExcluded)
{
    // Eq. 10's (1 - delta) term: segments of one resonator never repel.
    const std::vector<double> freqs{6.5e9, 6.5e9, 6.5e9};
    const std::vector<int> group{3, 3, 7};
    const CollisionMap map(freqs, group);
    EXPECT_FALSE(map.collides(0, 1)); // same resonator
    EXPECT_TRUE(map.collides(0, 2));
    EXPECT_TRUE(map.collides(1, 2));
    EXPECT_EQ(map.numPairs(), 2u);
}

TEST(CollisionMap, SymmetricLists)
{
    const std::vector<double> freqs{5.0e9, 5.01e9, 5.02e9};
    const CollisionMap map(freqs, {-1, -1, -1});
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::int32_t j : map.partners(i))
            EXPECT_TRUE(map.collides(static_cast<std::size_t>(j), i));
    }
    EXPECT_EQ(map.numPairs(), 3u); // all three mutually resonant
}

TEST(CollisionMap, QubitAndResonatorBandsNeverCollide)
{
    const std::vector<double> freqs{5.2e9, 6.0e9};
    const CollisionMap map(freqs, {-1, 0});
    EXPECT_EQ(map.numPairs(), 0u);
}

TEST(CollisionMap, CustomThreshold)
{
    const std::vector<double> freqs{5.0e9, 5.3e9};
    const CollisionMap wide(freqs, {-1, -1}, 0.5e9);
    EXPECT_TRUE(wide.collides(0, 1));
    const CollisionMap narrow(freqs, {-1, -1}, 0.2e9);
    EXPECT_FALSE(narrow.collides(0, 1));
}

TEST(CollisionMap, SizeMismatchPanics)
{
    EXPECT_THROW(CollisionMap({5.0e9}, {-1, -1}), std::logic_error);
}

TEST(CollisionMap, LargeSlotGroups)
{
    // 30 instances on 3 slots: pairs only within slots.
    std::vector<double> freqs;
    std::vector<int> group;
    for (int i = 0; i < 30; ++i) {
        freqs.push_back(5.0e9 + (i % 3) * 0.15e9);
        group.push_back(-1);
    }
    const CollisionMap map(freqs, group);
    // Each slot has 10 members -> C(10,2)=45 pairs per slot.
    EXPECT_EQ(map.numPairs(), 3u * 45u);
}

} // namespace
} // namespace qplacer
