#include <gtest/gtest.h>

#include "baseline/human_placer.hpp"
#include "eval/area.hpp"
#include "eval/hotspot.hpp"
#include "freq/assigner.hpp"
#include "topology/factory.hpp"

namespace qplacer {
namespace {

TEST(HumanPlacer, PitchFollowsPaperFormula)
{
    const Topology topo = makeTopology("Falcon");
    const auto freqs = FrequencyAssigner().assign(topo);
    const HumanPlacer human;
    // D = L * d_r / (L_q + 2 d_q) with L ~ 10 mm -> D ~ 0.83 mm; pitch
    // = (L_q + 2 d_q) + D ~ 2.03 mm.
    const double pitch = human.pitchUm(freqs);
    EXPECT_GT(pitch, 1900.0);
    EXPECT_LT(pitch, 2200.0);
}

TEST(HumanPlacer, LayoutIsHotspotFree)
{
    // The whole point of the manual reference design (Section V-B).
    for (const char *name : {"Grid", "Falcon", "Aspen-11"}) {
        const Topology topo = makeTopology(name);
        const auto freqs = FrequencyAssigner().assign(topo);
        const Netlist layout = HumanPlacer().place(topo, freqs);
        const HotspotReport report = analyzeHotspots(layout);
        EXPECT_EQ(report.pairs.size(), 0u) << name;
    }
}

TEST(HumanPlacer, QubitsOnScaledEmbedding)
{
    const Topology topo = makeTopology("Grid");
    const auto freqs = FrequencyAssigner().assign(topo);
    const HumanPlacer human;
    const Netlist layout = human.place(topo, freqs);
    const double pitch = human.pitchUm(freqs);
    // Adjacent grid qubits sit exactly one pitch apart.
    EXPECT_NEAR(layout.instance(0).pos.dist(layout.instance(1).pos),
                pitch, 1e-6);
}

TEST(HumanPlacer, ForeignShapesNeverOverlap)
{
    // Blocks of one resonator are a single physical wire and may pack
    // arbitrarily tight inside their own channel; *different* components
    // must never overlap.
    const Topology topo = makeTopology("Falcon");
    const auto freqs = FrequencyAssigner().assign(topo);
    const Netlist layout = HumanPlacer().place(topo, freqs);
    const auto &instances = layout.instances();
    for (std::size_t i = 0; i < instances.size(); ++i) {
        for (std::size_t j = i + 1; j < instances.size(); ++j) {
            if (instances[i].resonator >= 0 &&
                instances[i].resonator == instances[j].resonator)
                continue;
            const Rect a = instances[i].rect();
            const Rect b = instances[j].rect();
            const Rect inter = a.intersect(b);
            EXPECT_FALSE(!inter.empty() && inter.width() > 1.0 &&
                         inter.height() > 1.0)
                << "instances " << i << " and " << j;
        }
    }
}

TEST(HumanPlacer, RegionIsLayoutBoundingBox)
{
    const Topology topo = makeTopology("Grid");
    const auto freqs = FrequencyAssigner().assign(topo);
    const Netlist layout = HumanPlacer().place(topo, freqs);
    const AreaMetrics m = computeArea(layout);
    EXPECT_NEAR(m.amerUm2, layout.region().area(), 1.0);
}

TEST(HumanPlacer, SegmentsStayNearTheirEdge)
{
    const Topology topo = makeTopology("Grid");
    const auto freqs = FrequencyAssigner().assign(topo);
    const HumanPlacer human;
    const Netlist layout = human.place(topo, freqs);
    const double pitch = human.pitchUm(freqs);
    for (const Resonator &res : layout.resonators()) {
        const Vec2 a = layout.instance(res.qubitA).pos;
        const Vec2 b = layout.instance(res.qubitB).pos;
        const Vec2 mid = (a + b) / 2.0;
        for (int seg : res.segments) {
            EXPECT_LT(layout.instance(seg).pos.dist(mid), pitch)
                << "resonator " << res.id;
        }
    }
}

} // namespace
} // namespace qplacer
