#include <gtest/gtest.h>

#include "physics/resonator.hpp"
#include "physics/transmon.hpp"

namespace qplacer {
namespace {

TEST(Resonator, LengthMatchesHalfWaveFormula)
{
    // L = v0 / (2 f): 6.5 GHz -> 10 mm exactly with v0 = 1.3e8 m/s.
    EXPECT_NEAR(resonatorLengthUm(6.5e9), 10000.0, 1e-6);
}

TEST(Resonator, PaperBandGivesPaperLengths)
{
    // Section V-C: 6.0-7.0 GHz corresponds to 10.8 down to 9.3 mm.
    EXPECT_NEAR(resonatorLengthUm(6.0e9), 10833.3, 0.1);
    EXPECT_NEAR(resonatorLengthUm(7.0e9), 9285.7, 0.1);
}

TEST(Resonator, FreqAndLengthAreInverses)
{
    for (double f : {6.0e9, 6.5e9, 7.0e9})
        EXPECT_NEAR(resonatorFreqHz(resonatorLengthUm(f)), f, 1.0);
}

TEST(Resonator, AreaIsLengthTimesWireWidth)
{
    ResonatorParams p;
    p.freqHz = 6.5e9;
    EXPECT_NEAR(p.areaUm2(), 10000.0 * kResonatorWireWidthUm, 1e-3);
}

TEST(Resonator, ValidateRejectsBadParams)
{
    ResonatorParams p;
    p.freqHz = -1.0;
    EXPECT_THROW(p.validate(), std::runtime_error);
    EXPECT_THROW(resonatorLengthUm(0.0), std::runtime_error);
    EXPECT_THROW(resonatorFreqHz(-5.0), std::runtime_error);
}

TEST(Transmon, DefaultsAreValid)
{
    TransmonParams p;
    EXPECT_NO_THROW(p.validate());
    EXPECT_DOUBLE_EQ(p.sizeUm, 400.0);
}

TEST(Transmon, Freq12UsesAnharmonicity)
{
    TransmonParams p;
    p.freqHz = 5.0e9;
    p.anharmonicityHz = 310e6;
    EXPECT_DOUBLE_EQ(p.freq12Hz(), 5.0e9 - 310e6);
}

TEST(Transmon, ValidateRejectsBadParams)
{
    TransmonParams p;
    p.t1 = 0.0;
    EXPECT_THROW(p.validate(), std::runtime_error);

    TransmonParams q;
    q.anharmonicityHz = q.freqHz * 2;
    EXPECT_THROW(q.validate(), std::runtime_error);
}

} // namespace
} // namespace qplacer
