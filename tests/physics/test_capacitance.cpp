#include <gtest/gtest.h>

#include "physics/capacitance.hpp"

namespace qplacer {
namespace {

TEST(Capacitance, MonotonicallyDecreasing)
{
    const CapacitanceModel m = CapacitanceModel::qubitQubit();
    double prev = m.cp(0.0);
    for (double d = 50.0; d <= 5000.0; d += 50.0) {
        const double c = m.cp(d);
        EXPECT_LT(c, prev) << "at d=" << d;
        prev = c;
    }
}

TEST(Capacitance, ContactLimit)
{
    const CapacitanceModel m(50.0, 150.0, 4.0);
    EXPECT_DOUBLE_EQ(m.cp(0.0), 50.0);
    EXPECT_DOUBLE_EQ(m.c0(), 50.0);
}

TEST(Capacitance, KneeAtD0)
{
    const CapacitanceModel m(80.0, 200.0, 4.0);
    EXPECT_NEAR(m.cp(200.0), 40.0, 1e-9); // half the contact value
}

TEST(Capacitance, SharpFalloffBeyondPitch)
{
    // The quartic decay confines crosstalk to adjacent components: one
    // extra pitch reduces Cp by more than 10x.
    const CapacitanceModel m = CapacitanceModel::qubitQubit();
    EXPECT_GT(m.cp(800.0) / m.cp(1600.0), 10.0);
}

TEST(Capacitance, InvalidParametersAreFatal)
{
    EXPECT_THROW(CapacitanceModel(0.0, 1.0, 1.0), std::runtime_error);
    EXPECT_THROW(CapacitanceModel(1.0, -1.0, 1.0), std::runtime_error);
    EXPECT_THROW(CapacitanceModel(1.0, 1.0, 0.0), std::runtime_error);
}

TEST(Capacitance, NegativeDistancePanics)
{
    const CapacitanceModel m = CapacitanceModel::qubitQubit();
    EXPECT_THROW(m.cp(-1.0), std::logic_error);
}

TEST(Capacitance, ResonatorModelHasLongerReach)
{
    const CapacitanceModel q = CapacitanceModel::qubitQubit();
    const CapacitanceModel r = CapacitanceModel::resonatorResonator();
    EXPECT_GT(r.cp(500.0), q.cp(500.0));
}

} // namespace
} // namespace qplacer
