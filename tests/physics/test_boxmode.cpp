#include <gtest/gtest.h>

#include "physics/boxmode.hpp"

namespace qplacer {
namespace {

TEST(BoxMode, MatchesPaperReferencePoints)
{
    // Section III-C: TM110 drops from 12.41 GHz (5x5 mm^2) to 6.20 GHz
    // (10x10 mm^2).
    EXPECT_NEAR(tm110FrequencyHz(5000.0, 5000.0) / 1e9, 12.41, 0.03);
    EXPECT_NEAR(tm110FrequencyHz(10000.0, 10000.0) / 1e9, 6.20, 0.015);
}

TEST(BoxMode, LargerSubstrateLowerMode)
{
    double prev = tm110FrequencyHz(4000.0, 4000.0);
    for (double side = 6000.0; side <= 20000.0; side += 2000.0) {
        const double f = tm110FrequencyHz(side, side);
        EXPECT_LT(f, prev);
        prev = f;
    }
}

TEST(BoxMode, AspectRatioMatters)
{
    // A long thin substrate keeps its mode higher than a square of
    // equal area.
    const double square = tm110FrequencyHz(10000.0, 10000.0);
    const double thin = tm110FrequencyHz(20000.0, 5000.0);
    EXPECT_GT(thin, square);
}

TEST(BoxMode, MarginSignConveysSafety)
{
    // A compact Falcon-sized chip (~10x10 mm) sits right at the edge of
    // the 7 GHz resonator band; a 2x-larger Human-style chip is unsafe.
    EXPECT_LT(substrateModeMarginHz(Rect(0, 0, 14000, 14000)), 0.0);
    EXPECT_GT(substrateModeMarginHz(Rect(0, 0, 8000, 8000)), 0.0);
}

TEST(BoxMode, InvalidInputsAreFatal)
{
    EXPECT_THROW(tm110FrequencyHz(0.0, 100.0), std::runtime_error);
    EXPECT_THROW(tm110FrequencyHz(100.0, 100.0, 0.5),
                 std::runtime_error);
}

} // namespace
} // namespace qplacer
