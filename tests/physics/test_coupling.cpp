#include <gtest/gtest.h>

#include <cmath>

#include "physics/capacitance.hpp"
#include "physics/constants.hpp"
#include "physics/coupling.hpp"

namespace qplacer {
namespace {

TEST(Coupling, Eq6Formula)
{
    // g = 0.5 sqrt(f1 f2) Cp / sqrt((C1+Cp)(C2+Cp))
    const double g = couplingStrength(5e9, 5e9, 1.0, 65.0, 65.0);
    EXPECT_NEAR(g, 0.5 * 5e9 * 1.0 / 66.0, 1e3);
}

TEST(Coupling, GrowsWithParasiticCapacitance)
{
    const double g1 = couplingStrength(5e9, 5e9, 0.5, 65.0, 65.0);
    const double g2 = couplingStrength(5e9, 5e9, 2.0, 65.0, 65.0);
    EXPECT_GT(g2, g1);
}

TEST(Coupling, ConnectedQubitScaleIsTensOfMHz)
{
    // Fig. 4: designed couplings are ~20-30 MHz; a ~1 fF coupler between
    // transmons gives that order of magnitude.
    const double g =
        couplingStrength(5e9, 5e9, 1.0, kQubitCapFf, kQubitCapFf);
    EXPECT_GT(g, 10e6);
    EXPECT_LT(g, 100e6);
}

TEST(Coupling, EffectiveCouplingDispersive)
{
    // g_eff = g^2 / Delta in the dispersive regime (Eq. 5).
    EXPECT_NEAR(effectiveCoupling(1e6, 100e6), 1e4, 1.0);
    // Resonant regime returns g itself.
    EXPECT_DOUBLE_EQ(effectiveCoupling(1e6, 0.0), 1e6);
    EXPECT_DOUBLE_EQ(effectiveCoupling(1e6, 0.5e6), 1e6);
}

TEST(Coupling, RabiAmplitudePeaksAtResonance)
{
    // Fig. 4's shape: maximum exchange at Delta = 0, decaying with
    // detuning.
    const double g = 5e6;
    EXPECT_DOUBLE_EQ(rabiAmplitude(g, 0.0), 1.0);
    double prev = 1.0;
    for (double delta = 1e6; delta <= 200e6; delta *= 2.0) {
        const double a = rabiAmplitude(g, delta);
        EXPECT_LT(a, prev);
        prev = a;
    }
    EXPECT_LT(rabiAmplitude(g, 100e6), 0.02);
}

TEST(Coupling, RabiTransitionBounds)
{
    for (double t : {1e-9, 1e-7, 1e-6, 1e-5}) {
        for (double delta : {0.0, 1e6, 50e6}) {
            const double p = rabiTransitionProb(2e6, delta, t);
            EXPECT_GE(p, 0.0);
            EXPECT_LE(p, 1.0);
        }
    }
}

TEST(Coupling, TransitionProbOscillates)
{
    const double g = 1e6; // full Rabi period = 1 us
    EXPECT_NEAR(rabiTransitionProb(g, 0.0, 0.25e-6), 1.0, 1e-9);
    EXPECT_NEAR(rabiTransitionProb(g, 0.0, 0.5e-6), 0.0, 1e-9);
}

TEST(Coupling, WorstCaseIsEnvelope)
{
    const double g = 1e6;
    // Past the first Rabi peak the worst case is the full amplitude.
    EXPECT_DOUBLE_EQ(worstCaseTransition(g, 0.0, 1e-6), 1.0);
    // Before the peak it matches the instantaneous probability.
    EXPECT_NEAR(worstCaseTransition(g, 0.0, 0.05e-6),
                rabiTransitionProb(g, 0.0, 0.05e-6), 1e-12);
    // Monotone in t.
    EXPECT_LE(worstCaseTransition(g, 50e6, 1e-8),
              worstCaseTransition(g, 50e6, 1e-5));
}

TEST(Coupling, DispersiveShiftSigned)
{
    EXPECT_GT(dispersiveShift(1e6, 100e6), 0.0);
    EXPECT_LT(dispersiveShift(1e6, -100e6), 0.0);
    EXPECT_THROW(dispersiveShift(1e6, 0.0), std::logic_error);
}

TEST(Coupling, DistanceChainBehavesLikeFig5)
{
    // Composing the capacitance model with Eq. 6: resonant coupling at
    // padded adjacency (~800 um centers) is strong enough to matter on
    // program time scales, two pitches out it is far weaker.
    const CapacitanceModel cp = CapacitanceModel::qubitQubit();
    const double g_adjacent = couplingStrength(
        5e9, 5e9, cp.cp(800.0), kQubitCapFf, kQubitCapFf);
    const double g_far = couplingStrength(5e9, 5e9, cp.cp(2400.0),
                                          kQubitCapFf, kQubitCapFf);
    EXPECT_GT(g_adjacent, 0.5e6);
    EXPECT_LT(g_far, 0.05e6);
}

TEST(Coupling, InvalidInputsPanic)
{
    EXPECT_THROW(couplingStrength(-1.0, 5e9, 1.0, 65.0, 65.0),
                 std::logic_error);
    EXPECT_THROW(couplingStrength(5e9, 5e9, -1.0, 65.0, 65.0),
                 std::logic_error);
    EXPECT_THROW(rabiTransitionProb(1e6, 0.0, -1.0), std::logic_error);
}

} // namespace
} // namespace qplacer
