#include <gtest/gtest.h>

#include <cmath>

#include "physics/decoherence.hpp"

namespace qplacer {
namespace {

TEST(Decoherence, ZeroDurationZeroError)
{
    const DecoherenceModel m;
    EXPECT_DOUBLE_EQ(m.errorOver(0.0), 0.0);
    EXPECT_DOUBLE_EQ(m.fidelityOver(0.0), 1.0);
}

TEST(Decoherence, MonotoneInDuration)
{
    const DecoherenceModel m;
    double prev = 0.0;
    for (double t = 1e-6; t <= 1e-3; t *= 2.0) {
        const double e = m.errorOver(t);
        EXPECT_GT(e, prev);
        EXPECT_LE(e, 1.0);
        prev = e;
    }
}

TEST(Decoherence, MatchesClosedForm)
{
    const DecoherenceModel m(100e-6, 80e-6);
    const double rate = 1.0 / (2 * 100e-6) + 1.0 / (2 * 80e-6);
    const double t = 5e-6;
    EXPECT_NEAR(m.errorOver(t), 1.0 - std::exp(-t * rate), 1e-12);
}

TEST(Decoherence, LongerCoherenceLowersError)
{
    const DecoherenceModel good(200e-6, 150e-6);
    const DecoherenceModel bad(20e-6, 15e-6);
    EXPECT_LT(good.errorOver(1e-5), bad.errorOver(1e-5));
}

TEST(Decoherence, InvalidParamsFatal)
{
    EXPECT_THROW(DecoherenceModel(0.0, 1e-6), std::runtime_error);
    EXPECT_THROW(DecoherenceModel(1e-6, -1.0), std::runtime_error);
}

TEST(Decoherence, NegativeDurationPanics)
{
    const DecoherenceModel m;
    EXPECT_THROW(m.errorOver(-1.0), std::logic_error);
}

} // namespace
} // namespace qplacer
