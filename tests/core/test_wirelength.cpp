#include <gtest/gtest.h>

#include <cmath>

#include "core/wirelength.hpp"
#include "util/rng.hpp"

namespace qplacer {
namespace {

Netlist
twoPinNetlist(int n, int nets, std::uint64_t seed)
{
    Rng rng(seed);
    Netlist nl;
    for (int i = 0; i < n; ++i) {
        Instance q;
        q.kind = InstanceKind::Qubit;
        q.width = 400;
        q.height = 400;
        q.pad = 400;
        nl.addInstance(q);
    }
    for (int e = 0; e < nets; ++e) {
        const int a = static_cast<int>(rng.below(n));
        int b = static_cast<int>(rng.below(n));
        while (b == a)
            b = static_cast<int>(rng.below(n));
        nl.addNet(a, b, rng.uniform(0.5, 2.0));
    }
    nl.setRegion(Rect(0, 0, 10000, 10000));
    return nl;
}

std::vector<Vec2>
randomPositions(int n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Vec2> pos(n);
    for (auto &p : pos)
        p = Vec2(rng.uniform(0, 10000), rng.uniform(0, 10000));
    return pos;
}

TEST(Wirelength, ApproachesHpwlAsGammaShrinks)
{
    const Netlist nl = twoPinNetlist(10, 15, 1);
    const auto pos = randomPositions(10, 2);
    std::vector<Vec2> grad;

    const WirelengthModel coarse(nl, 500.0);
    const WirelengthModel fine(nl, 1.0);
    const double hpwl = coarse.hpwl(pos);
    // Smooth WL upper-bounds HPWL and tightens as gamma -> 0.
    const double v_coarse =
        const_cast<WirelengthModel &>(coarse).evaluate(pos, grad);
    const double v_fine =
        const_cast<WirelengthModel &>(fine).evaluate(pos, grad);
    EXPECT_GE(v_coarse, hpwl);
    EXPECT_GE(v_fine, hpwl);
    EXPECT_LT(v_fine - hpwl, v_coarse - hpwl);
    EXPECT_NEAR(v_fine, hpwl, 0.01 * hpwl + 50.0);
}

TEST(Wirelength, GradientMatchesFiniteDifference)
{
    const Netlist nl = twoPinNetlist(8, 12, 3);
    WirelengthModel model(nl, 200.0);
    auto pos = randomPositions(8, 4);
    std::vector<Vec2> grad;
    model.evaluate(pos, grad);

    const double h = 1e-4;
    for (int i = 0; i < 8; ++i) {
        auto plus = pos;
        auto minus = pos;
        plus[i].x += h;
        minus[i].x -= h;
        std::vector<Vec2> dummy;
        const double fd =
            (model.evaluate(plus, dummy) - model.evaluate(minus, dummy)) /
            (2 * h);
        EXPECT_NEAR(grad[i].x, fd, 1e-5 * (1 + std::abs(fd)))
            << "instance " << i;

        plus = pos;
        minus = pos;
        plus[i].y += h;
        minus[i].y -= h;
        const double fdy =
            (model.evaluate(plus, dummy) - model.evaluate(minus, dummy)) /
            (2 * h);
        EXPECT_NEAR(grad[i].y, fdy, 1e-5 * (1 + std::abs(fdy)));
    }
}

TEST(Wirelength, GradientIsZeroSum)
{
    // Wirelength is translation invariant, so gradients sum to zero.
    const Netlist nl = twoPinNetlist(12, 20, 5);
    WirelengthModel model(nl, 150.0);
    const auto pos = randomPositions(12, 6);
    std::vector<Vec2> grad;
    model.evaluate(pos, grad);
    Vec2 sum;
    for (const Vec2 &g : grad)
        sum += g;
    EXPECT_NEAR(sum.x, 0.0, 1e-9);
    EXPECT_NEAR(sum.y, 0.0, 1e-9);
}

TEST(Wirelength, CoincidentPinsGiveSmoothMinimum)
{
    Netlist nl = twoPinNetlist(2, 0, 7);
    nl.addNet(0, 1);
    WirelengthModel model(nl, 100.0);
    std::vector<Vec2> pos{{500, 500}, {500, 500}};
    std::vector<Vec2> grad;
    const double v = model.evaluate(pos, grad);
    EXPECT_GT(v, 0.0); // smooth overestimate at coincidence
    EXPECT_NEAR(grad[0].x, 0.0, 1e-12);
    EXPECT_DOUBLE_EQ(model.hpwl(pos), 0.0);
}

TEST(Wirelength, WeightsScaleContribution)
{
    Netlist nl;
    for (int i = 0; i < 2; ++i) {
        Instance q;
        q.kind = InstanceKind::Qubit;
        q.width = q.height = 400;
        nl.addInstance(q);
    }
    nl.addNet(0, 1, 3.0);
    nl.setRegion(Rect(0, 0, 1000, 1000));
    WirelengthModel model(nl, 10.0);
    const std::vector<Vec2> pos{{0, 0}, {500, 0}};
    EXPECT_NEAR(model.hpwl(pos), 1500.0, 1e-9);
}

TEST(Wirelength, InvalidGammaIsFatal)
{
    const Netlist nl = twoPinNetlist(2, 1, 8);
    EXPECT_THROW(WirelengthModel(nl, 0.0), std::runtime_error);
    WirelengthModel model(nl, 1.0);
    EXPECT_THROW(model.setGamma(-1.0), std::runtime_error);
}

} // namespace
} // namespace qplacer
