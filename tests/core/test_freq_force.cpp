#include <gtest/gtest.h>

#include <cmath>

#include "core/freq_force.hpp"

namespace qplacer {
namespace {

Netlist
freqNetlist(const std::vector<double> &freqs,
            const std::vector<int> &groups)
{
    Netlist nl;
    int qubits = 0;
    for (std::size_t i = 0; i < freqs.size(); ++i) {
        Instance inst;
        if (groups[i] < 0) {
            inst.kind = InstanceKind::Qubit;
            inst.width = inst.height = 400;
            inst.pad = 400;
            ++qubits;
        } else {
            inst.kind = InstanceKind::ResonatorSegment;
            inst.resonator = groups[i];
            inst.segment = 0;
            inst.width = inst.height = 300;
            inst.pad = 100;
        }
        inst.freqHz = freqs[i];
        if (groups[i] >= 0 && qubits == 0) {
            // netlist requires qubits first; tests below always pass
            // qubit groups first, so this branch is unused.
        }
        nl.addInstance(inst);
    }
    nl.setRegion(Rect(0, 0, 20000, 20000));
    return nl;
}

TEST(FreqForce, ResonantPairsRepel)
{
    const Netlist nl =
        freqNetlist({5.0e9, 5.0e9}, {-1, -1});
    const FreqForceModel model(nl, 0.1e9);
    std::vector<Vec2> pos{{1000, 1000}, {1500, 1000}};
    std::vector<Vec2> grad;
    const double u = model.evaluate(pos, grad);
    EXPECT_GT(u, 0.0);
    // Descending the gradient pushes them apart along x.
    EXPECT_GT(grad[0].x, 0.0);
    EXPECT_LT(grad[1].x, 0.0);
    EXPECT_NEAR(grad[0].y, 0.0, 1e-12);
}

TEST(FreqForce, DetunedPairsIgnoreEachOther)
{
    const Netlist nl = freqNetlist({5.0e9, 5.2e9}, {-1, -1});
    const FreqForceModel model(nl, 0.1e9);
    std::vector<Vec2> pos{{1000, 1000}, {1200, 1000}};
    std::vector<Vec2> grad;
    EXPECT_DOUBLE_EQ(model.evaluate(pos, grad), 0.0);
    EXPECT_EQ(grad[0].x, 0.0);
}

TEST(FreqForce, TruncatedBeyondCutoff)
{
    const Netlist nl = freqNetlist({5.0e9, 5.0e9}, {-1, -1});
    const FreqForceModel model(nl, 0.1e9, 0.8);
    // charge = 800 each -> cutoff radius 0.8 * 1600 = 1280 um.
    std::vector<Vec2> far{{1000, 1000}, {3000, 1000}};
    std::vector<Vec2> grad;
    EXPECT_DOUBLE_EQ(model.evaluate(far, grad), 0.0);

    std::vector<Vec2> near{{1000, 1000}, {2000, 1000}};
    EXPECT_GT(model.evaluate(near, grad), 0.0);
}

TEST(FreqForce, PotentialContinuousAtCutoff)
{
    const Netlist nl = freqNetlist({5.0e9, 5.0e9}, {-1, -1});
    const FreqForceModel model(nl, 0.1e9, 0.8);
    std::vector<Vec2> grad;
    std::vector<Vec2> pos{{0, 0}, {1279.9, 0}};
    const double just_inside = model.evaluate(pos, grad);
    EXPECT_NEAR(just_inside, 0.0, 1.0); // ~0 at the boundary
}

TEST(FreqForce, GradientMatchesFiniteDifference)
{
    const Netlist nl =
        freqNetlist({5.0e9, 5.05e9, 5.02e9}, {-1, -1, -1});
    const FreqForceModel model(nl, 0.1e9);
    std::vector<Vec2> pos{{900, 1000}, {1500, 1100}, {1100, 1600}};
    std::vector<Vec2> grad;
    model.evaluate(pos, grad);

    const double h = 1e-3;
    std::vector<Vec2> dummy;
    for (std::size_t i = 0; i < pos.size(); ++i) {
        auto plus = pos;
        auto minus = pos;
        plus[i].x += h;
        minus[i].x -= h;
        const double fd =
            (model.evaluate(plus, dummy) - model.evaluate(minus, dummy)) /
            (2 * h);
        EXPECT_NEAR(grad[i].x, fd, 1e-4 * (1.0 + std::abs(fd)));
    }
}

TEST(FreqForce, CoincidentInstancesGetFinitePush)
{
    const Netlist nl = freqNetlist({5.0e9, 5.0e9}, {-1, -1});
    const FreqForceModel model(nl, 0.1e9);
    std::vector<Vec2> pos{{1000, 1000}, {1000, 1000}};
    std::vector<Vec2> grad;
    const double u = model.evaluate(pos, grad);
    EXPECT_TRUE(std::isfinite(u));
    EXPECT_GT(grad[0].norm(), 0.0);
    EXPECT_TRUE(std::isfinite(grad[0].x));
}

TEST(FreqForce, SameResonatorSegmentsExcluded)
{
    Netlist nl;
    for (int i = 0; i < 2; ++i) {
        Instance seg;
        seg.kind = InstanceKind::ResonatorSegment;
        seg.resonator = 0;
        seg.segment = i;
        seg.width = seg.height = 300;
        seg.pad = 100;
        seg.freqHz = 6.5e9;
        nl.addInstance(seg);
    }
    nl.setRegion(Rect(0, 0, 10000, 10000));
    const FreqForceModel model(nl, 0.1e9);
    std::vector<Vec2> pos{{1000, 1000}, {1100, 1000}};
    std::vector<Vec2> grad;
    EXPECT_DOUBLE_EQ(model.evaluate(pos, grad), 0.0);
    EXPECT_EQ(model.collisionMap().numPairs(), 0u);
}

} // namespace
} // namespace qplacer
