#include <gtest/gtest.h>

#include "core/density.hpp"
#include "util/rng.hpp"

namespace qplacer {
namespace {

Netlist
blockNetlist(int n, double size, double region_side)
{
    Netlist nl;
    for (int i = 0; i < n; ++i) {
        Instance q;
        q.kind = InstanceKind::Qubit;
        q.width = q.height = size;
        q.pad = 0.0;
        nl.addInstance(q);
    }
    nl.setRegion(Rect(0, 0, region_side, region_side));
    return nl;
}

TEST(Density, OverflowHighWhenStacked)
{
    Netlist nl = blockNetlist(16, 400, 8000);
    std::vector<Vec2> pos(16, Vec2(4000, 4000)); // all stacked
    DensityModel model(nl, 32, 0.9);
    std::vector<Vec2> grad;
    model.evaluate(pos, grad);
    EXPECT_GT(model.overflow(), 0.5);
}

TEST(Density, OverflowLowWhenSpread)
{
    Netlist nl = blockNetlist(16, 400, 8000);
    std::vector<Vec2> pos;
    for (int i = 0; i < 16; ++i) {
        pos.emplace_back(1000.0 + (i % 4) * 2000.0,
                         1000.0 + (i / 4) * 2000.0);
    }
    DensityModel model(nl, 32, 0.9);
    std::vector<Vec2> grad;
    model.evaluate(pos, grad);
    EXPECT_LT(model.overflow(), 0.05);
}

TEST(Density, GradientPushesApartStackedInstances)
{
    Netlist nl = blockNetlist(2, 400, 4000);
    DensityModel model(nl, 32, 0.9);
    // Two instances slightly offset: the gradient should separate them.
    std::vector<Vec2> pos{{1900, 2000}, {2100, 2000}};
    std::vector<Vec2> grad;
    model.evaluate(pos, grad);
    // Descending the gradient moves the left instance further left.
    EXPECT_GT(grad[0].x, 0.0);
    EXPECT_LT(grad[1].x, 0.0);
}

TEST(Density, EnergyDropsWhenSpreading)
{
    Netlist nl = blockNetlist(4, 400, 4000);
    DensityModel model(nl, 32, 0.9);
    std::vector<Vec2> grad;
    const std::vector<Vec2> stacked(4, Vec2(2000, 2000));
    const double e_stacked = model.evaluate(stacked, grad);
    const std::vector<Vec2> spread{
        {800, 800}, {3200, 800}, {800, 3200}, {3200, 3200}};
    const double e_spread = model.evaluate(spread, grad);
    EXPECT_LT(e_spread, e_stacked);
}

TEST(Density, AutoBinCountIsPowerOfTwoInRange)
{
    EXPECT_EQ(DensityModel::autoBinCount(10), 32);
    EXPECT_EQ(DensityModel::autoBinCount(1500), 64);
    EXPECT_EQ(DensityModel::autoBinCount(5000), 128);
    EXPECT_EQ(DensityModel::autoBinCount(1000000), 256);
}

TEST(Density, ChargeEqualsPaddedArea)
{
    Netlist nl = blockNetlist(1, 400, 2000);
    nl.instances()[0].pad = 400; // padded -> 800x800
    DensityModel model(nl, 32, 0.9);
    std::vector<Vec2> grad;
    std::vector<Vec2> pos{{1000, 1000}};
    model.evaluate(pos, grad);
    EXPECT_NEAR(model.grid().total(), 800.0 * 800.0, 1.0);
}

TEST(Density, InvalidTargetIsFatal)
{
    Netlist nl = blockNetlist(1, 400, 2000);
    EXPECT_THROW(DensityModel(nl, 32, 0.0), std::runtime_error);
    EXPECT_THROW(DensityModel(nl, 32, 1.5), std::runtime_error);
}

} // namespace
} // namespace qplacer
