#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/poisson.hpp"

namespace qplacer {
namespace {

TEST(Poisson, UniformDensityGivesZeroField)
{
    PoissonSolver solver(32, 32, 1000, 1000);
    const std::vector<double> rho(32 * 32, 2.5);
    const auto sol = solver.solve(rho);
    for (double v : sol.fieldX)
        EXPECT_NEAR(v, 0.0, 1e-9);
    for (double v : sol.fieldY)
        EXPECT_NEAR(v, 0.0, 1e-9);
    for (double v : sol.potential)
        EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(Poisson, SolutionSatisfiesDiscreteLaplacian)
{
    // Verify -laplacian(psi) ~ rho - mean(rho) for a smooth density.
    const int n = 64;
    const double size = 1000.0;
    PoissonSolver solver(n, n, size, size);
    std::vector<double> rho(n * n);
    const double h = size / n;
    for (int y = 0; y < n; ++y) {
        for (int x = 0; x < n; ++x) {
            // A smooth cosine bump (satisfies Neumann BCs).
            rho[y * n + x] =
                std::cos(std::numbers::pi * (x + 0.5) / n) *
                std::cos(2 * std::numbers::pi * (y + 0.5) / n);
        }
    }
    const auto sol = solver.solve(rho);

    double max_err = 0.0;
    for (int y = 1; y + 1 < n; ++y) {
        for (int x = 1; x + 1 < n; ++x) {
            const double lap =
                (sol.potential[y * n + x + 1] +
                 sol.potential[y * n + x - 1] +
                 sol.potential[(y + 1) * n + x] +
                 sol.potential[(y - 1) * n + x] -
                 4 * sol.potential[y * n + x]) /
                (h * h);
            max_err = std::max(max_err,
                               std::abs(-lap - rho[y * n + x]));
        }
    }
    // Second-order finite-difference agreement with the spectral answer.
    EXPECT_LT(max_err, 5e-3);
}

TEST(Poisson, FieldIsNegativeGradientOfPotential)
{
    const int n = 64;
    const double size = 2000.0;
    PoissonSolver solver(n, n, size, size);
    std::vector<double> rho(n * n, 0.0);
    // Central blob.
    for (int y = 28; y < 36; ++y)
        for (int x = 28; x < 36; ++x)
            rho[y * n + x] = 1.0;
    const auto sol = solver.solve(rho);

    const double h = size / n;
    double max_err = 0.0;
    double max_field = 0.0;
    for (int y = 1; y + 1 < n; ++y) {
        for (int x = 1; x + 1 < n; ++x) {
            const double gx = (sol.potential[y * n + x + 1] -
                               sol.potential[y * n + x - 1]) /
                              (2 * h);
            max_err =
                std::max(max_err, std::abs(sol.fieldX[y * n + x] + gx));
            max_field =
                std::max(max_field, std::abs(sol.fieldX[y * n + x]));
        }
    }
    EXPECT_LT(max_err, 0.05 * max_field);
}

TEST(Poisson, FieldPointsAwayFromCharge)
{
    const int n = 32;
    PoissonSolver solver(n, n, 1000, 1000);
    std::vector<double> rho(n * n, 0.0);
    rho[(n / 2) * n + n / 2] = 1.0;
    const auto sol = solver.solve(rho);
    // Right of the charge the x-field is positive (repulsive).
    EXPECT_GT(sol.fieldX[(n / 2) * n + n / 2 + 4], 0.0);
    EXPECT_LT(sol.fieldX[(n / 2) * n + n / 2 - 4], 0.0);
    EXPECT_GT(sol.fieldY[(n / 2 + 4) * n + n / 2], 0.0);
    EXPECT_LT(sol.fieldY[(n / 2 - 4) * n + n / 2], 0.0);
}

TEST(Poisson, PotentialHighestAtCharge)
{
    const int n = 32;
    PoissonSolver solver(n, n, 1000, 1000);
    std::vector<double> rho(n * n, 0.0);
    rho[(n / 2) * n + n / 2] = 1.0;
    const auto sol = solver.solve(rho);
    const double center = sol.potential[(n / 2) * n + n / 2];
    for (double v : sol.potential)
        EXPECT_LE(v, center + 1e-12);
}

TEST(Poisson, RejectsBadInputs)
{
    EXPECT_THROW(PoissonSolver(12, 32, 100, 100), std::logic_error);
    PoissonSolver solver(16, 16, 100, 100);
    EXPECT_THROW(solver.solve(std::vector<double>(10, 0.0)),
                 std::logic_error);
}

} // namespace
} // namespace qplacer
