#include <gtest/gtest.h>

#include "core/nesterov.hpp"

namespace qplacer {
namespace {

TEST(Nesterov, MinimizesQuadraticBowl)
{
    // f = 0.5 * sum |p - target|^2; gradient = p - target.
    const Rect region(0, 0, 1000, 1000);
    const std::vector<Vec2> halves(3, Vec2(10, 10));
    NesterovOptimizer opt(region, halves);
    opt.reset({{100, 100}, {900, 100}, {500, 900}});
    const std::vector<Vec2> target{{400, 400}, {600, 400}, {500, 600}};

    for (int it = 0; it < 200; ++it) {
        std::vector<Vec2> grad(3);
        for (int i = 0; i < 3; ++i)
            grad[i] = opt.lookahead()[i] - target[i];
        opt.step(grad);
    }
    for (int i = 0; i < 3; ++i) {
        EXPECT_NEAR(opt.solution()[i].x, target[i].x, 1.0);
        EXPECT_NEAR(opt.solution()[i].y, target[i].y, 1.0);
    }
}

TEST(Nesterov, ClampsIntoRegion)
{
    const Rect region(0, 0, 100, 100);
    NesterovOptimizer opt(region, {{10, 10}});
    opt.reset({{500, -200}}); // way outside
    EXPECT_GE(opt.solution()[0].x, 10.0);
    EXPECT_LE(opt.solution()[0].x, 90.0);
    EXPECT_GE(opt.solution()[0].y, 10.0);

    // A huge gradient cannot push the solution out either.
    for (int it = 0; it < 5; ++it)
        opt.step({{-1e9, -1e9}});
    EXPECT_GE(opt.solution()[0].x, 10.0);
    EXPECT_LE(opt.solution()[0].y, 90.0);
}

TEST(Nesterov, StepLengthIsCapped)
{
    const Rect region(0, 0, 1000, 1000);
    NesterovOptimizer opt(region, {{1, 1}}, 0.01);
    opt.reset({{500, 500}});
    const Vec2 before = opt.solution()[0];
    opt.step({{1e12, 0}});
    const Vec2 after = opt.solution()[0];
    // Max step = 0.01 * diagonal ~ 14.1.
    EXPECT_LE(before.dist(after), 15.0);
}

TEST(Nesterov, ZeroGradientHolds)
{
    const Rect region(0, 0, 100, 100);
    NesterovOptimizer opt(region, {{5, 5}});
    opt.reset({{50, 50}});
    for (int i = 0; i < 10; ++i)
        opt.step({{0, 0}});
    EXPECT_NEAR(opt.solution()[0].x, 50.0, 1e-9);
}

TEST(Nesterov, SizeMismatchPanics)
{
    NesterovOptimizer opt(Rect(0, 0, 10, 10), {{1, 1}});
    EXPECT_THROW(opt.reset({{1, 1}, {2, 2}}), std::logic_error);
    opt.reset({{5, 5}});
    EXPECT_THROW(opt.step({{0, 0}, {0, 0}}), std::logic_error);
}

} // namespace
} // namespace qplacer
