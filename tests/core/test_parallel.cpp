/**
 * @file
 * Serial-vs-parallel equivalence of the threaded hot path: batched
 * DCT/IDCT passes, the Poisson solve, the density model, and full
 * placement determinism for a fixed seed + thread count.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/density.hpp"
#include "core/objective.hpp"
#include "core/placer.hpp"
#include "core/poisson.hpp"
#include "freq/assigner.hpp"
#include "math/dct.hpp"
#include "netlist/builder.hpp"
#include "topology/generators.hpp"
#include "util/thread_pool.hpp"

namespace qplacer {
namespace {

/** Reproducible pseudo-random map without <random> overhead. */
std::vector<double>
syntheticMap(std::size_t n, double scale)
{
    std::vector<double> map(n);
    for (std::size_t i = 0; i < n; ++i)
        map[i] = scale * std::sin(0.37 * static_cast<double>(i) + 1.1) +
                 0.5 * std::cos(1.93 * static_cast<double>(i));
    return map;
}

Netlist
gridNetlist(int rows, int cols)
{
    const Topology topo = makeGrid(rows, cols);
    const auto freqs = FrequencyAssigner().assign(topo);
    return NetlistBuilder().build(topo, freqs);
}

double
maxAbsDiff(const std::vector<double> &a, const std::vector<double> &b)
{
    EXPECT_EQ(a.size(), b.size());
    double m = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::abs(a[i] - b[i]));
    return m;
}

/**
 * Batched row/column passes against the serial reference for every
 * kernel kind. Row counts deliberately include odd batch sizes (the
 * transform length itself must stay a power of two) and sizes on both
 * sides of the kGrainCoarse serial cutoff.
 */
TEST(ParallelDct, BatchTransformsMatchSerialAcrossThreadCounts)
{
    const Dct::Kind kinds[] = {Dct::Kind::Dct2, Dct::Kind::Idct2,
                               Dct::Kind::CosSeries, Dct::Kind::SinSeries};
    struct Shape
    {
        int nx; ///< Transform length (power of two).
        int ny; ///< Batch rows (odd and even on purpose).
    };
    const Shape shapes[] = {{16, 5}, {16, 8}, {32, 7}, {16, 64},
                            {32, 65}, {64, 128}};
    static_assert(ThreadPool::kGrainCoarse <= 64,
                  "largest batches must exercise the threaded path");

    for (const Shape &shape : shapes) {
        const std::vector<double> input = syntheticMap(
            static_cast<std::size_t>(shape.nx) * shape.ny, 2.0);
        for (const Dct::Kind kind : kinds) {
            std::vector<double> serial = input;
            Dct::transformRows(serial, shape.nx, shape.ny, kind, nullptr);
            for (const int threads : {1, 2, 8}) {
                ThreadPool pool(threads);
                std::vector<double> parallel = input;
                Dct::transformRows(parallel, shape.nx, shape.ny, kind,
                                   &pool);
                // Rows are independent: any thread count must
                // reproduce the serial pass bit for bit.
                EXPECT_EQ(serial, parallel)
                    << shape.nx << "x" << shape.ny << " rows, "
                    << threads << " threads";
            }
        }
    }
}

TEST(ParallelDct, BatchColumnsMatchSerialAcrossThreadCounts)
{
    // Columns of length 16 over odd and even column counts, straddling
    // the serial cutoff.
    for (const int nx : {5, 8, 65, 128}) {
        const int ny = 16;
        const std::vector<double> input =
            syntheticMap(static_cast<std::size_t>(nx) * ny, 1.0);
        std::vector<double> serial = input;
        Dct::transformCols(serial, nx, ny, Dct::Kind::Dct2, nullptr);
        for (const int threads : {2, 8}) {
            ThreadPool pool(threads);
            std::vector<double> parallel = input;
            Dct::transformCols(parallel, nx, ny, Dct::Kind::Dct2, &pool);
            EXPECT_EQ(serial, parallel) << threads << " threads";
        }
    }
}

TEST(ParallelDct, RoundTripSurvivesThreading)
{
    ThreadPool pool(8);
    const int nx = 32;
    const int ny = 65;
    const std::vector<double> input =
        syntheticMap(static_cast<std::size_t>(nx) * ny, 3.0);
    std::vector<double> map = input;
    Dct::transformRows(map, nx, ny, Dct::Kind::Dct2, &pool);
    Dct::transformRows(map, nx, ny, Dct::Kind::Idct2, &pool);
    EXPECT_LT(maxAbsDiff(map, input), 1e-9);
}

TEST(ParallelPoisson, SolutionMatchesSerialAcrossThreadCounts)
{
    // Odd/even mix is impossible for the grid itself (powers of two
    // required), so cover square and non-square grids instead.
    struct Shape
    {
        int nx;
        int ny;
    };
    const Shape shapes[] = {{16, 16}, {32, 16}, {16, 32}, {64, 64}};

    for (const Shape &shape : shapes) {
        const std::vector<double> density = syntheticMap(
            static_cast<std::size_t>(shape.nx) * shape.ny, 4.0);
        const PoissonSolver serial(shape.nx, shape.ny, 1000.0, 800.0);
        const PoissonSolver::Solution ref = serial.solve(density);

        for (const int threads : {1, 2, 8}) {
            ThreadPool pool(threads);
            const PoissonSolver threaded(shape.nx, shape.ny, 1000.0,
                                         800.0, &pool);
            const PoissonSolver::Solution sol = threaded.solve(density);
            EXPECT_LT(maxAbsDiff(sol.potential, ref.potential), 1e-9)
                << shape.nx << "x" << shape.ny << " potential, "
                << threads << " threads";
            EXPECT_LT(maxAbsDiff(sol.fieldX, ref.fieldX), 1e-9)
                << shape.nx << "x" << shape.ny << " fieldX, " << threads
                << " threads";
            EXPECT_LT(maxAbsDiff(sol.fieldY, ref.fieldY), 1e-9)
                << shape.nx << "x" << shape.ny << " fieldY, " << threads
                << " threads";
        }
    }
}

TEST(ParallelPoisson, FixedThreadCountIsBitwiseDeterministic)
{
    // 64x64 sits above the serial grain, so the threaded path runs.
    const std::vector<double> density = syntheticMap(64 * 64, 4.0);
    for (const int threads : {2, 8}) {
        ThreadPool pool(threads);
        const PoissonSolver solver(64, 64, 500.0, 500.0, &pool);
        const PoissonSolver::Solution a = solver.solve(density);
        const PoissonSolver::Solution b = solver.solve(density);
        EXPECT_EQ(a.potential, b.potential) << threads << " threads";
        EXPECT_EQ(a.fieldX, b.fieldX) << threads << " threads";
        EXPECT_EQ(a.fieldY, b.fieldY) << threads << " threads";
    }
}

TEST(ParallelDensity, EnergyAndGradientMatchSerial)
{
    const Netlist netlist = gridNetlist(5, 5);
    // Large enough that the instance loops take the threaded path
    // instead of the serial-grain fallback.
    ASSERT_GE(netlist.instances().size(), ThreadPool::kGrainMedium);
    std::vector<Vec2> positions(netlist.instances().size());
    for (std::size_t i = 0; i < positions.size(); ++i)
        positions[i] = netlist.instances()[i].pos;

    DensityModel serial(netlist, 32, 0.9);
    std::vector<Vec2> ref_grad;
    const double ref_energy = serial.evaluate(positions, ref_grad);
    const double ref_overflow = serial.overflow();

    // Chunked splat/energy reductions reorder large-magnitude sums, so
    // compare relative to the gradient scale: 1e-9 of the largest
    // component (~1e-12 relative error in practice).
    double scale = std::abs(ref_energy);
    for (const Vec2 &g : ref_grad)
        scale = std::max({scale, std::abs(g.x), std::abs(g.y)});
    const double tol = 1e-9 * std::max(1.0, scale);

    for (const int threads : {2, 8}) {
        ThreadPool pool(threads);
        DensityModel threaded(netlist, 32, 0.9, &pool);
        std::vector<Vec2> grad;
        const double energy = threaded.evaluate(positions, grad);
        EXPECT_NEAR(energy, ref_energy, tol) << threads << " threads";
        EXPECT_NEAR(threaded.overflow(), ref_overflow, 1e-12);
        ASSERT_EQ(grad.size(), ref_grad.size());
        for (std::size_t i = 0; i < grad.size(); ++i) {
            EXPECT_NEAR(grad[i].x, ref_grad[i].x, tol)
                << threads << " threads, instance " << i;
            EXPECT_NEAR(grad[i].y, ref_grad[i].y, tol)
                << threads << " threads, instance " << i;
        }
    }
}

TEST(ParallelObjective, FullGradientMatchesSerial)
{
    // Exercises every threaded model at once: wirelength, density,
    // frequency force, and the preconditioned combine. The netlist must
    // exceed the serial grain or the chunked paths are never taken.
    const Netlist netlist = gridNetlist(5, 5);
    ASSERT_GE(netlist.instances().size(), ThreadPool::kGrainMedium);
    ASSERT_GE(netlist.nets().size(), ThreadPool::kGrainMedium);
    std::vector<Vec2> positions(netlist.instances().size());
    for (std::size_t i = 0; i < positions.size(); ++i)
        positions[i] = netlist.instances()[i].pos;

    PlacerParams params;
    PlacementObjective serial(netlist, params);
    serial.initPenalties(positions);
    std::vector<Vec2> ref_grad;
    const auto ref = serial.evaluate(positions, ref_grad);

    double scale = std::abs(ref.total);
    for (const Vec2 &g : ref_grad)
        scale = std::max({scale, std::abs(g.x), std::abs(g.y)});
    const double tol = 1e-9 * std::max(1.0, scale);

    for (const int threads : {2, 8}) {
        ThreadPool pool(threads);
        PlacementObjective threaded(netlist, params, &pool);
        threaded.initPenalties(positions);
        std::vector<Vec2> grad;
        const auto out = threaded.evaluate(positions, grad);
        EXPECT_NEAR(out.total, ref.total, tol) << threads << " threads";
        ASSERT_EQ(grad.size(), ref_grad.size());
        for (std::size_t i = 0; i < grad.size(); ++i) {
            EXPECT_NEAR(grad[i].x, ref_grad[i].x, tol)
                << threads << " threads, instance " << i;
            EXPECT_NEAR(grad[i].y, ref_grad[i].y, tol)
                << threads << " threads, instance " << i;
        }
    }
}

TEST(ParallelPlacement, SameSeedAndThreadCountReproducesBitwise)
{
    for (const int threads : {2, 4}) {
        PlacerParams params;
        params.seed = 7;
        params.threads = threads;
        // grid5x5 exceeds the serial grain, so the chunked model paths
        // really run.
        Netlist a = gridNetlist(5, 5);
        Netlist b = gridNetlist(5, 5);
        GlobalPlacer(params).place(a);
        GlobalPlacer(params).place(b);
        ASSERT_EQ(a.numInstances(), b.numInstances());
        for (int i = 0; i < a.numInstances(); ++i) {
            EXPECT_DOUBLE_EQ(a.instance(i).pos.x, b.instance(i).pos.x)
                << threads << " threads, instance " << i;
            EXPECT_DOUBLE_EQ(a.instance(i).pos.y, b.instance(i).pos.y)
                << threads << " threads, instance " << i;
        }
    }
}

TEST(ParallelPlacement, ThreadedRunStaysCloseToSerial)
{
    // Chunked reductions reorder floating-point sums, so thread counts
    // may diverge over hundreds of iterations; both engines must still
    // converge to a legal, spread-out layout of equivalent quality.
    PlacerParams serial_params;
    serial_params.seed = 11;
    serial_params.threads = 1;
    PlacerParams threaded_params = serial_params;
    threaded_params.threads = 4;

    Netlist serial_nl = gridNetlist(5, 5);
    Netlist threaded_nl = gridNetlist(5, 5);
    const PlaceResult serial_r =
        GlobalPlacer(serial_params).place(serial_nl);
    const PlaceResult threaded_r =
        GlobalPlacer(threaded_params).place(threaded_nl);

    EXPECT_TRUE(serial_r.converged);
    EXPECT_TRUE(threaded_r.converged);
    EXPECT_LT(threaded_r.finalOverflow, 0.08);
    EXPECT_NEAR(serial_r.finalHpwl, threaded_r.finalHpwl,
                0.25 * serial_r.finalHpwl);
}

} // namespace
} // namespace qplacer
