#include <gtest/gtest.h>

#include "core/placer.hpp"
#include "freq/assigner.hpp"
#include "netlist/builder.hpp"
#include "topology/generators.hpp"

namespace qplacer {
namespace {

Netlist
gridNetlist(int rows, int cols)
{
    const Topology topo = makeGrid(rows, cols);
    const auto freqs = FrequencyAssigner().assign(topo);
    return NetlistBuilder().build(topo, freqs);
}

TEST(GlobalPlacer, ConvergesOnSmallGrid)
{
    Netlist nl = gridNetlist(3, 3);
    GlobalPlacer placer;
    const PlaceResult r = placer.place(nl);
    EXPECT_TRUE(r.converged);
    EXPECT_LT(r.finalOverflow, 0.08);
    EXPECT_GT(r.iterations, 0);
    EXPECT_GT(r.finalHpwl, 0.0);
}

TEST(GlobalPlacer, AllInstancesStayInRegion)
{
    Netlist nl = gridNetlist(3, 3);
    GlobalPlacer().place(nl);
    for (const Instance &inst : nl.instances()) {
        EXPECT_TRUE(nl.region().inflated(1.0).containsRect(
            inst.paddedRect()))
            << "instance " << inst.id;
    }
}

TEST(GlobalPlacer, DeterministicForFixedSeed)
{
    PlacerParams params;
    params.seed = 99;
    Netlist a = gridNetlist(3, 3);
    Netlist b = gridNetlist(3, 3);
    GlobalPlacer(params).place(a);
    GlobalPlacer(params).place(b);
    for (int i = 0; i < a.numInstances(); ++i) {
        EXPECT_DOUBLE_EQ(a.instance(i).pos.x, b.instance(i).pos.x);
        EXPECT_DOUBLE_EQ(a.instance(i).pos.y, b.instance(i).pos.y);
    }
}

TEST(GlobalPlacer, SeedChangesLayout)
{
    PlacerParams pa;
    pa.seed = 1;
    PlacerParams pb;
    pb.seed = 2;
    Netlist a = gridNetlist(3, 3);
    Netlist b = gridNetlist(3, 3);
    GlobalPlacer(pa).place(a);
    GlobalPlacer(pb).place(b);
    double diff = 0.0;
    for (int i = 0; i < a.numInstances(); ++i)
        diff += a.instance(i).pos.dist(b.instance(i).pos);
    EXPECT_GT(diff, 1.0);
}

TEST(GlobalPlacer, FreqForceSeparatesResonantQubits)
{
    // Craft a netlist with two same-frequency qubits and nothing else
    // resonant: the engine must end with them farther apart than the
    // frequency-blind engine leaves them.
    const Topology topo = makeGrid(2, 2);
    FrequencyAssignment freqs;
    freqs.qubitFreqHz = {5.0e9, 5.0e9, 5.2e9, 4.8e9};
    freqs.resonatorFreqHz = {6.0e9, 6.3e9, 6.6e9, 6.9e9};
    freqs.qubitColor = {0, 0, 1, 2};
    freqs.resonatorColor = {0, 1, 2, 3};

    Netlist with_force = NetlistBuilder().build(topo, freqs);
    Netlist without_force = NetlistBuilder().build(topo, freqs);

    PlacerParams on;
    on.freqForce = true;
    PlacerParams off;
    off.freqForce = false;
    GlobalPlacer(on).place(with_force);
    GlobalPlacer(off).place(without_force);

    const double d_on =
        with_force.instance(0).pos.dist(with_force.instance(1).pos);
    // The resonant pair must be pushed beyond the force's cutoff.
    EXPECT_GT(d_on, 1200.0);
    (void)without_force; // baseline built to mirror the flow
}

TEST(GlobalPlacer, EmptyNetlistIsFatal)
{
    Netlist empty;
    empty.setRegion(Rect(0, 0, 100, 100));
    EXPECT_THROW(GlobalPlacer().place(empty), std::runtime_error);
}

TEST(GlobalPlacer, RespectsIterationCap)
{
    Netlist nl = gridNetlist(3, 3);
    PlacerParams params;
    params.maxIters = 5;
    params.minIters = 0;
    const PlaceResult r = GlobalPlacer(params).place(nl);
    EXPECT_LE(r.iterations, 5);
}

} // namespace
} // namespace qplacer
