#include <gtest/gtest.h>

#include "topology/factory.hpp"
#include "topology/generators.hpp"

namespace qplacer {
namespace {

struct TopoSpec
{
    const char *name;
    int qubits;
    int couplers;
};

// Table I qubit counts; coupler counts are the ones implied by the
// paper's Table II cell counts (see DESIGN.md section 5).
class PaperTopologies : public ::testing::TestWithParam<TopoSpec>
{
};

TEST_P(PaperTopologies, MatchesPaperInventory)
{
    const TopoSpec spec = GetParam();
    const Topology topo = makeTopology(spec.name);
    EXPECT_EQ(topo.numQubits(), spec.qubits) << spec.name;
    EXPECT_EQ(topo.numCouplers(), spec.couplers) << spec.name;
    EXPECT_TRUE(topo.coupling.isConnected()) << spec.name;
    EXPECT_EQ(topo.embedding.size(),
              static_cast<std::size_t>(spec.qubits));
}

INSTANTIATE_TEST_SUITE_P(
    TableI, PaperTopologies,
    ::testing::Values(TopoSpec{"Grid", 25, 40},
                      TopoSpec{"Xtree", 53, 52},
                      TopoSpec{"Falcon", 27, 28},
                      TopoSpec{"Eagle", 127, 144},
                      TopoSpec{"Aspen-11", 40, 48},
                      TopoSpec{"Aspen-M", 80, 106}),
    [](const auto &info) {
        std::string n = info.param.name;
        for (char &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

TEST(Topologies, GridStructure)
{
    const Topology g = makeGrid(3, 4);
    EXPECT_EQ(g.numQubits(), 12);
    EXPECT_EQ(g.numCouplers(), 2 * 12 - 3 - 4); // 17
    EXPECT_EQ(g.coupling.maxDegree(), 4);
    // Corner qubits have degree 2.
    EXPECT_EQ(g.coupling.degree(0), 2);
}

TEST(Topologies, FalconDegreesAreHeavyHex)
{
    const Topology f = makeFalcon();
    EXPECT_LE(f.coupling.maxDegree(), 3); // heavy-hex property
    int pendants = 0;
    for (int q = 0; q < f.numQubits(); ++q)
        pendants += f.coupling.degree(q) == 1;
    EXPECT_EQ(pendants, 6); // the six stub qubits of the Falcon map
}

TEST(Topologies, EagleDegreesAreHeavyHex)
{
    const Topology e = makeEagle();
    EXPECT_LE(e.coupling.maxDegree(), 3);
}

TEST(Topologies, EagleEmbeddingMatchesAdjacency)
{
    // Every coupled pair sits at unit grid distance in the embedding.
    const Topology e = makeEagle();
    for (const auto &[u, v] : e.coupling.edges()) {
        const double d = e.embedding[u].dist(e.embedding[v]);
        EXPECT_NEAR(d, 1.0, 1e-9);
    }
}

TEST(Topologies, FalconEmbeddingMatchesAdjacency)
{
    const Topology f = makeFalcon();
    for (const auto &[u, v] : f.coupling.edges()) {
        const double d = f.embedding[u].dist(f.embedding[v]);
        EXPECT_NEAR(d, 1.0, 1e-9);
    }
}

TEST(Topologies, OctagonRingDegrees)
{
    const Topology a = makeAspen11();
    // Every qubit has degree 2 (ring) plus at most 1 inter-ring link.
    for (int q = 0; q < a.numQubits(); ++q) {
        EXPECT_GE(a.coupling.degree(q), 2);
        EXPECT_LE(a.coupling.degree(q), 3);
    }
}

TEST(Topologies, XtreeIsATree)
{
    const Topology x = makeXtree();
    EXPECT_EQ(x.numCouplers(), x.numQubits() - 1);
    EXPECT_TRUE(x.coupling.isConnected());
}

TEST(Topologies, UnknownNameIsFatal)
{
    EXPECT_THROW(makeTopology("NotADevice"), std::runtime_error);
}

TEST(Topologies, PaperListHasSixEntries)
{
    EXPECT_EQ(paperTopologyNames().size(), 6u);
}

TEST(Topologies, MinEmbeddingSpacingPositive)
{
    for (const auto &name : paperTopologyNames()) {
        const Topology t = makeTopology(name);
        EXPECT_GT(t.minEmbeddingSpacing(), 0.0) << name;
    }
}

} // namespace
} // namespace qplacer
