#include <gtest/gtest.h>

#include "topology/graph.hpp"

namespace qplacer {
namespace {

Graph
pathGraph(int n)
{
    Graph g(n);
    for (int i = 0; i + 1 < n; ++i)
        g.addEdge(i, i + 1);
    return g;
}

TEST(Graph, EdgesAndDegrees)
{
    Graph g(4);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(1, 3);
    EXPECT_EQ(g.numNodes(), 4);
    EXPECT_EQ(g.numEdges(), 3);
    EXPECT_EQ(g.degree(1), 3);
    EXPECT_EQ(g.degree(0), 1);
    EXPECT_EQ(g.maxDegree(), 3);
    EXPECT_TRUE(g.hasEdge(1, 3));
    EXPECT_TRUE(g.hasEdge(3, 1));
    EXPECT_FALSE(g.hasEdge(0, 2));
}

TEST(Graph, RejectsSelfLoopsAndDuplicates)
{
    Graph g(3);
    g.addEdge(0, 1);
    EXPECT_THROW(g.addEdge(0, 0), std::logic_error);
    EXPECT_THROW(g.addEdge(1, 0), std::logic_error);
    EXPECT_THROW(g.addEdge(0, 5), std::logic_error);
}

TEST(Graph, BfsDistances)
{
    const Graph g = pathGraph(5);
    const auto d = g.bfsDistances(0);
    EXPECT_EQ(d, (std::vector<int>{0, 1, 2, 3, 4}));
    EXPECT_EQ(g.distance(0, 4), 4);
    EXPECT_EQ(g.distance(2, 2), 0);
}

TEST(Graph, Connectivity)
{
    Graph g(4);
    g.addEdge(0, 1);
    g.addEdge(2, 3);
    EXPECT_FALSE(g.isConnected());
    EXPECT_EQ(g.distance(0, 3), -1);
    g.addEdge(1, 2);
    EXPECT_TRUE(g.isConnected());
}

TEST(Graph, BallAround)
{
    const Graph g = pathGraph(7);
    const auto ball = g.ballAround(3, 2);
    EXPECT_EQ(ball, (std::vector<int>{1, 2, 4, 5}));
}

TEST(Graph, InducedSubgraph)
{
    Graph g(5);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 3);
    g.addEdge(3, 4);
    g.addEdge(0, 4);

    std::vector<int> mapping;
    const Graph sub = g.inducedSubgraph({1, 2, 3}, &mapping);
    EXPECT_EQ(sub.numNodes(), 3);
    EXPECT_EQ(sub.numEdges(), 2);
    EXPECT_EQ(mapping, (std::vector<int>{1, 2, 3}));
    EXPECT_TRUE(sub.hasEdge(0, 1)); // 1-2
    EXPECT_TRUE(sub.hasEdge(1, 2)); // 2-3
    EXPECT_FALSE(sub.hasEdge(0, 2));
}

TEST(Graph, InducedSubgraphRejectsDuplicates)
{
    Graph g(3);
    g.addEdge(0, 1);
    EXPECT_THROW(g.inducedSubgraph({0, 0}), std::logic_error);
}

} // namespace
} // namespace qplacer
