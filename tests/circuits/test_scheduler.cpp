#include <gtest/gtest.h>

#include "circuits/benchmarks.hpp"
#include "circuits/mapper.hpp"
#include "circuits/scheduler.hpp"
#include "circuits/subsets.hpp"
#include "topology/factory.hpp"

namespace qplacer {
namespace {

MappedCircuit
mapOnGrid(const Circuit &circuit, std::uint64_t seed,
          const Topology &topo)
{
    const Mapper mapper(topo.coupling);
    const auto subset =
        sampleConnectedSubset(topo.coupling, circuit.numQubits(), seed);
    return mapper.map(circuit, subset);
}

TEST(Scheduler, DurationAtLeastCriticalPath)
{
    const Topology topo = makeTopology("Grid");
    const auto mapped = mapOnGrid(makeBenchmark("bv-4"), 1, topo);
    const Schedule sched = scheduleAsap(mapped, topo.coupling);
    EXPECT_GT(sched.durationS, 0.0);
    // At least one 2q gate's worth of time.
    EXPECT_GE(sched.durationS, kGate2qSeconds);
    // No qubit is busy longer than the program.
    for (double b : sched.busyS)
        EXPECT_LE(b, sched.durationS + 1e-12);
}

TEST(Scheduler, BusyTimeMatchesGateCounts)
{
    const Topology topo = makeTopology("Grid");
    const auto mapped = mapOnGrid(makeBenchmark("qgan-4"), 3, topo);
    const Schedule sched = scheduleAsap(mapped, topo.coupling);
    for (int q = 0; q < topo.numQubits(); ++q) {
        const double expected = mapped.gates1q[q] * kGate1qSeconds +
                                mapped.gates2q[q] * kGate2qSeconds;
        EXPECT_NEAR(sched.busyS[q], expected, 1e-12) << "qubit " << q;
    }
}

TEST(Scheduler, EdgeBusyOnlyOnUsedCouplers)
{
    const Topology topo = makeTopology("Falcon");
    const auto mapped = mapOnGrid(makeBenchmark("ising-4"), 5, topo);
    const Schedule sched = scheduleAsap(mapped, topo.coupling);
    double total_edge = 0.0;
    int used_edges = 0;
    for (double t : sched.edgeBusyS) {
        total_edge += t;
        used_edges += t > 0.0;
    }
    EXPECT_GT(used_edges, 0);
    EXPECT_LE(used_edges, topo.numCouplers());
    // Edge time = per-gate durations summed once per gate.
    double expected = 0.0;
    for (const Gate &g : mapped.gates) {
        if (g.isTwoQubit()) {
            expected += (g.kind == GateKind::Swap) ? 3 * kGate2qSeconds
                                                   : kGate2qSeconds;
        }
    }
    EXPECT_NEAR(total_edge, expected, 1e-12);
}

TEST(Scheduler, ParallelGatesOverlap)
{
    Topology topo;
    topo.coupling = Graph(4);
    topo.coupling.addEdge(0, 1);
    topo.coupling.addEdge(2, 3);
    topo.coupling.addEdge(1, 2);
    topo.embedding = {{0, 0}, {1, 0}, {2, 0}, {3, 0}};

    MappedCircuit mapped;
    mapped.gates = {Gate{GateKind::CZ, 0, 1}, Gate{GateKind::CZ, 2, 3}};
    mapped.activeQubits = {0, 1, 2, 3};
    mapped.gates1q.assign(4, 0);
    mapped.gates2q.assign(4, 1);
    const Schedule sched = scheduleAsap(mapped, topo.coupling);
    // Disjoint gates run in parallel: makespan is one gate.
    EXPECT_NEAR(sched.durationS, kGate2qSeconds, 1e-15);
}

TEST(Scheduler, GateOnUncoupledPairPanics)
{
    Topology topo;
    topo.coupling = Graph(3);
    topo.coupling.addEdge(0, 1);
    MappedCircuit mapped;
    mapped.gates = {Gate{GateKind::CZ, 0, 2}};
    mapped.gates1q.assign(3, 0);
    mapped.gates2q.assign(3, 0);
    EXPECT_THROW(scheduleAsap(mapped, topo.coupling), std::logic_error);
}

} // namespace
} // namespace qplacer
