#include <gtest/gtest.h>

#include "circuits/circuit.hpp"

namespace qplacer {
namespace {

TEST(Circuit, GateClassification)
{
    EXPECT_TRUE((Gate{GateKind::CZ, 0, 1}).isTwoQubit());
    EXPECT_TRUE((Gate{GateKind::CX, 0, 1}).isTwoQubit());
    EXPECT_TRUE((Gate{GateKind::Swap, 0, 1}).isTwoQubit());
    EXPECT_FALSE((Gate{GateKind::H, 0}).isTwoQubit());
    EXPECT_FALSE((Gate{GateKind::RZ, 0}).isTwoQubit());
}

TEST(Circuit, CountsGates)
{
    Circuit c(3);
    c.add1q(GateKind::H, 0);
    c.add1q(GateKind::RX, 1, 0.5);
    c.add2q(GateKind::CX, 0, 1);
    c.add2q(GateKind::CZ, 1, 2);
    EXPECT_EQ(c.count1q(), 2);
    EXPECT_EQ(c.count2q(), 2);
    EXPECT_EQ(c.gates().size(), 4u);
}

TEST(Circuit, DepthTracksCriticalPath)
{
    Circuit c(3);
    c.add1q(GateKind::H, 0);   // q0 level 1
    c.add2q(GateKind::CX, 0, 1); // both level 2
    c.add2q(GateKind::CX, 1, 2); // both level 3
    c.add1q(GateKind::H, 0);   // q0 level 3
    EXPECT_EQ(c.depth(), 3);
}

TEST(Circuit, ParallelGatesShareDepth)
{
    Circuit c(4);
    c.add2q(GateKind::CZ, 0, 1);
    c.add2q(GateKind::CZ, 2, 3);
    EXPECT_EQ(c.depth(), 1);
}

TEST(Circuit, RejectsBadOperands)
{
    Circuit c(2);
    EXPECT_THROW(c.add1q(GateKind::H, 5), std::logic_error);
    EXPECT_THROW(c.add2q(GateKind::CX, 0, 0), std::logic_error);
    EXPECT_THROW(c.add2q(GateKind::CX, 0, 9), std::logic_error);
    EXPECT_THROW(c.add1q(GateKind::CX, 0), std::logic_error);
    EXPECT_THROW(c.add2q(GateKind::H, 0, 1), std::logic_error);
}

TEST(Circuit, GateNames)
{
    EXPECT_EQ((Gate{GateKind::H, 0}).name(), "h");
    EXPECT_EQ((Gate{GateKind::Swap, 0, 1}).name(), "swap");
    EXPECT_EQ((Gate{GateKind::CZ, 0, 1}).name(), "cz");
}

TEST(Circuit, NonPositiveWidthIsFatal)
{
    EXPECT_THROW(Circuit(0), std::runtime_error);
}

} // namespace
} // namespace qplacer
