#include <gtest/gtest.h>

#include <set>

#include "circuits/subsets.hpp"
#include "topology/factory.hpp"

namespace qplacer {
namespace {

TEST(Subsets, CorrectSizeAndDistinct)
{
    const Topology topo = makeTopology("Falcon");
    const auto subset = sampleConnectedSubset(topo.coupling, 9, 42);
    EXPECT_EQ(subset.size(), 9u);
    std::set<int> unique(subset.begin(), subset.end());
    EXPECT_EQ(unique.size(), 9u);
    for (int q : subset) {
        EXPECT_GE(q, 0);
        EXPECT_LT(q, topo.numQubits());
    }
}

TEST(Subsets, InducedSubgraphIsConnected)
{
    const Topology topo = makeTopology("Eagle");
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        const auto subset =
            sampleConnectedSubset(topo.coupling, 16, seed);
        const Graph sub = topo.coupling.inducedSubgraph(subset);
        EXPECT_TRUE(sub.isConnected()) << "seed " << seed;
    }
}

TEST(Subsets, DeterministicPerSeed)
{
    const Topology topo = makeTopology("Grid");
    const auto a = sampleConnectedSubset(topo.coupling, 9, 7);
    const auto b = sampleConnectedSubset(topo.coupling, 9, 7);
    EXPECT_EQ(a, b);
    const auto c = sampleConnectedSubset(topo.coupling, 9, 8);
    EXPECT_NE(a, c);
}

TEST(Subsets, BatchCoversDevice)
{
    // 50 subsets of 4 qubits should collectively touch most of the chip
    // (the paper's motivation for sampling many mappings).
    const Topology topo = makeTopology("Grid");
    const auto batch = sampleSubsets(topo.coupling, 4, 50, 3);
    EXPECT_EQ(batch.size(), 50u);
    std::set<int> touched;
    for (const auto &s : batch)
        touched.insert(s.begin(), s.end());
    EXPECT_GT(touched.size(), 20u);
}

TEST(Subsets, FullDeviceSubset)
{
    const Topology topo = makeTopology("Grid");
    const auto subset =
        sampleConnectedSubset(topo.coupling, topo.numQubits(), 1);
    EXPECT_EQ(static_cast<int>(subset.size()), topo.numQubits());
}

TEST(Subsets, InvalidSizeIsFatal)
{
    const Topology topo = makeTopology("Grid");
    EXPECT_THROW(sampleConnectedSubset(topo.coupling, 0, 1),
                 std::runtime_error);
    EXPECT_THROW(sampleConnectedSubset(topo.coupling, 26, 1),
                 std::runtime_error);
}

} // namespace
} // namespace qplacer
