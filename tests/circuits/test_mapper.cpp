#include <gtest/gtest.h>

#include <set>

#include "circuits/benchmarks.hpp"
#include "circuits/mapper.hpp"
#include "circuits/subsets.hpp"
#include "topology/factory.hpp"

namespace qplacer {
namespace {

TEST(Mapper, AllTwoQubitGatesOnCoupledPairs)
{
    const Topology topo = makeTopology("Falcon");
    const Mapper mapper(topo.coupling);
    const Circuit bv = makeBenchmark("bv-9");
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        const auto subset = sampleConnectedSubset(topo.coupling, 9, seed);
        const MappedCircuit mapped = mapper.map(bv, subset);
        for (const Gate &g : mapped.gates) {
            if (g.isTwoQubit()) {
                EXPECT_TRUE(topo.coupling.hasEdge(g.q0, g.q1))
                    << g.name() << " on " << g.q0 << "," << g.q1;
            }
        }
    }
}

TEST(Mapper, PreservesLogicalGateCount)
{
    const Topology topo = makeTopology("Grid");
    const Mapper mapper(topo.coupling);
    const Circuit qaoa = makeBenchmark("qaoa-4");
    const auto subset = sampleConnectedSubset(topo.coupling, 4, 5);
    const MappedCircuit mapped = mapper.map(qaoa, subset);

    int non_swap_2q = 0;
    int one_q = 0;
    for (const Gate &g : mapped.gates) {
        if (g.kind == GateKind::Swap)
            continue;
        if (g.isTwoQubit())
            ++non_swap_2q;
        else
            ++one_q;
    }
    EXPECT_EQ(non_swap_2q, qaoa.count2q());
    EXPECT_EQ(one_q, qaoa.count1q());
}

TEST(Mapper, ActiveQubitsWithinSubset)
{
    const Topology topo = makeTopology("Aspen-11");
    const Mapper mapper(topo.coupling);
    const Circuit qgan = makeBenchmark("qgan-9");
    const auto subset = sampleConnectedSubset(topo.coupling, 9, 11);
    const MappedCircuit mapped = mapper.map(qgan, subset);
    const std::set<int> allowed(subset.begin(), subset.end());
    for (int q : mapped.activeQubits)
        EXPECT_TRUE(allowed.count(q)) << "qubit " << q;
    EXPECT_GE(mapped.activeQubits.size(), 9u);
}

TEST(Mapper, LinearChainNeedsNoSwaps)
{
    // A line circuit mapped onto a line subset routes swap-free when the
    // initial mapping lines up.
    Topology topo;
    topo.name = "line";
    topo.coupling = Graph(4);
    topo.coupling.addEdge(0, 1);
    topo.coupling.addEdge(1, 2);
    topo.coupling.addEdge(2, 3);
    topo.embedding = {{0, 0}, {1, 0}, {2, 0}, {3, 0}};

    Circuit c(4);
    c.add2q(GateKind::CX, 0, 1);
    c.add2q(GateKind::CX, 1, 2);
    c.add2q(GateKind::CX, 2, 3);

    const Mapper mapper(topo.coupling);
    const MappedCircuit mapped = mapper.map(c, {0, 1, 2, 3});
    // BFS-order initial mapping on a path keeps neighbours adjacent,
    // possibly after a couple of swaps at worst.
    EXPECT_LE(mapped.numSwaps, 2);
}

TEST(Mapper, SwapCountsInGates2q)
{
    const Topology topo = makeTopology("Grid");
    const Mapper mapper(topo.coupling);
    const Circuit bv = makeBenchmark("bv-16");
    const auto subset = sampleConnectedSubset(topo.coupling, 16, 2);
    const MappedCircuit mapped = mapper.map(bv, subset);
    long long total_2q = 0;
    for (int q = 0; q < topo.numQubits(); ++q)
        total_2q += mapped.gates2q[q];
    // Each non-swap 2q gate contributes 2 (both operands), each swap 6.
    EXPECT_EQ(total_2q,
              2LL * bv.count2q() + 6LL * mapped.numSwaps);
}

TEST(Mapper, SubsetTooSmallIsFatal)
{
    const Topology topo = makeTopology("Grid");
    const Mapper mapper(topo.coupling);
    const Circuit bv = makeBenchmark("bv-9");
    EXPECT_THROW(mapper.map(bv, {0, 1, 2}), std::runtime_error);
}

} // namespace
} // namespace qplacer
