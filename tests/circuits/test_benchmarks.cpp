#include <gtest/gtest.h>

#include "circuits/benchmarks.hpp"

namespace qplacer {
namespace {

TEST(Benchmarks, BvStructure)
{
    const Circuit bv = makeBv(4);
    EXPECT_EQ(bv.numQubits(), 4);
    // X + 2n H + (n-1) CX for the all-ones secret.
    EXPECT_EQ(bv.count2q(), 3);
    EXPECT_EQ(bv.count1q(), 1 + 4 + 3); // X(anc) + H-all + H-data
    EXPECT_EQ(bv.name(), "bv-4");
}

TEST(Benchmarks, QaoaRingCost)
{
    const Circuit q = makeQaoa(9);
    // One ZZ (2 CX) per ring edge.
    EXPECT_EQ(q.count2q(), 2 * 9);
    EXPECT_EQ(q.numQubits(), 9);
}

TEST(Benchmarks, IsingTrotterSteps)
{
    const Circuit ising = makeIsing(4, 3);
    // Per step: 3 nearest-neighbour ZZ -> 6 CX.
    EXPECT_EQ(ising.count2q(), 3 * 6);
}

TEST(Benchmarks, QganLayers)
{
    const Circuit qgan = makeQgan(4, 2);
    // Per layer: a CX chain of n-1.
    EXPECT_EQ(qgan.count2q(), 2 * 3);
    // Rotations: 2 per qubit per layer + final RY.
    EXPECT_EQ(qgan.count1q(), 2 * 2 * 4 + 4);
}

TEST(Benchmarks, PaperNamesResolve)
{
    for (const auto &name : paperBenchmarkNames()) {
        const Circuit c = makeBenchmark(name);
        EXPECT_EQ(c.name(), name);
        EXPECT_GT(c.count2q(), 0) << name;
    }
    EXPECT_EQ(paperBenchmarkNames().size(), 8u);
}

TEST(Benchmarks, QubitCountsMatchNames)
{
    EXPECT_EQ(makeBenchmark("bv-16").numQubits(), 16);
    EXPECT_EQ(makeBenchmark("qaoa-9").numQubits(), 9);
    EXPECT_EQ(makeBenchmark("ising-4").numQubits(), 4);
    EXPECT_EQ(makeBenchmark("qgan-9").numQubits(), 9);
}

TEST(Benchmarks, UnknownNameIsFatal)
{
    EXPECT_THROW(makeBenchmark("shor-2048"), std::runtime_error);
}

TEST(Benchmarks, InvalidSizesAreFatal)
{
    EXPECT_THROW(makeBv(1), std::runtime_error);
    EXPECT_THROW(makeQaoa(2), std::runtime_error);
    EXPECT_THROW(makeIsing(4, 0), std::runtime_error);
    EXPECT_THROW(makeQgan(1, 2), std::runtime_error);
}

} // namespace
} // namespace qplacer
