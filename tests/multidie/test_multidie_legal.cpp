/**
 * @file
 * Per-die legalization: OccupancyGrid::block() keep-out semantics, and
 * the end-to-end property that no placed footprint ever straddles a
 * cut -- every instance lands wholly inside exactly one die.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "eval/crosscut.hpp"
#include "legal/legalizer.hpp"
#include "legal/occupancy.hpp"
#include "multidie/die_plan.hpp"
#include "pipeline/flow.hpp"
#include "topology/factory.hpp"

namespace qplacer {
namespace {

// ---------------------------------------------------------------------
// OccupancyGrid::block()

TEST(OccupancyBlock, BlockedCellsRejectPlacement)
{
    OccupancyGrid grid(Rect(0.0, 0.0, 1000.0, 1000.0), 100.0);
    const Rect band(400.0, 0.0, 600.0, 1000.0);
    grid.block(band);

    // Fully inside the band, partially overlapping, and clear of it.
    EXPECT_FALSE(grid.canPlace(Rect(400.0, 400.0, 600.0, 600.0)));
    EXPECT_FALSE(grid.canPlace(Rect(300.0, 0.0, 500.0, 200.0)));
    EXPECT_TRUE(grid.canPlace(Rect(0.0, 0.0, 400.0, 400.0)));
    EXPECT_TRUE(grid.canPlace(Rect(600.0, 600.0, 1000.0, 1000.0)));
}

TEST(OccupancyBlock, NoIgnoreIdFreesBlockedCells)
{
    OccupancyGrid grid(Rect(0.0, 0.0, 1000.0, 1000.0), 100.0);
    grid.block(Rect(400.0, 0.0, 600.0, 1000.0));
    const Rect probe(400.0, 100.0, 600.0, 300.0);
    EXPECT_FALSE(grid.canPlaceIgnoring(probe, 0));
    EXPECT_FALSE(grid.canPlaceIgnoring(probe, 7));
}

TEST(OccupancyBlock, OccupyIntoBlockedCellsPanics)
{
    OccupancyGrid grid(Rect(0.0, 0.0, 1000.0, 1000.0), 100.0);
    grid.block(Rect(400.0, 0.0, 600.0, 1000.0));
    EXPECT_THROW(grid.occupy(Rect(300.0, 0.0, 500.0, 200.0), 3),
                 std::logic_error);
}

TEST(OccupancyBlock, BlockOverOwnedCellsPanics)
{
    OccupancyGrid grid(Rect(0.0, 0.0, 1000.0, 1000.0), 100.0);
    grid.occupy(Rect(400.0, 400.0, 600.0, 600.0), 5);
    EXPECT_THROW(grid.block(Rect(300.0, 300.0, 700.0, 700.0)),
                 std::logic_error);
}

TEST(OccupancyBlock, OwnersInExcludesBlockedCells)
{
    OccupancyGrid grid(Rect(0.0, 0.0, 1000.0, 1000.0), 100.0);
    grid.block(Rect(400.0, 0.0, 600.0, 1000.0));
    grid.occupy(Rect(100.0, 100.0, 300.0, 300.0), 9);

    const Rect everything(0.0, 0.0, 1000.0, 1000.0);
    const std::vector<std::int32_t> scan = grid.ownersIn(everything);
    ASSERT_EQ(scan.size(), 1u);
    EXPECT_EQ(scan[0], 9);

    std::vector<std::int32_t> sorted;
    grid.ownersIn(everything, sorted);
    ASSERT_EQ(sorted.size(), 1u);
    EXPECT_EQ(sorted[0], 9);
}

TEST(OccupancyBlock, OutOfGridPartsAreClipped)
{
    OccupancyGrid grid(Rect(0.0, 0.0, 1000.0, 1000.0), 100.0);
    grid.block(Rect(-500.0, 800.0, 200.0, 1500.0));
    EXPECT_FALSE(grid.canPlace(Rect(0.0, 800.0, 200.0, 1000.0)));
    EXPECT_TRUE(grid.canPlace(Rect(200.0, 0.0, 600.0, 600.0)));
}

// ---------------------------------------------------------------------
// End-to-end: no footprint straddles a cut.

FlowResult
runFlow(const std::string &spec, bool detailed = false)
{
    Topology topo;
    std::string error;
    if (!resolveTopologySpec(spec, topo, &error))
        ADD_FAILURE() << spec << ": " << error;

    FlowParams params;
    params.mode = PlacerMode::Qplacer;
    params.partition.segmentUm = 300.0;
    params.placer.seed = 1;
    params.placer.threads = 1;
    if (detailed) {
        params.detailed.enabled = true;
        params.detailed.iters = 20;
    }
    return QplacerFlow(params).run(topo);
}

void
expectPartitioned(const FlowResult &r, const std::string &label)
{
    ASSERT_TRUE(r.status.ok()) << label << ": " << r.status.message;
    EXPECT_TRUE(r.legal.legal) << label;
    EXPECT_TRUE(Legalizer::isLegal(r.netlist)) << label;

    const Netlist &netlist = r.netlist;
    ASSERT_TRUE(netlist.dieSpec().active()) << label;
    const DiePlan plan =
        DiePlan::resolve(netlist.dieSpec(), netlist.region());
    const std::vector<Rect> bands = plan.gapBands();

    for (const Instance &inst : netlist.instances()) {
        const Rect fp = inst.paddedRect();
        int homes = 0;
        for (const Rect &die : plan.dies)
            if (die.inflated(1e-6).containsRect(fp))
                ++homes;
        EXPECT_EQ(homes, 1)
            << label << ": instance " << inst.id << " at (" << inst.pos.x
            << ", " << inst.pos.y << ") is inside " << homes << " dies";
        for (const Rect &band : bands)
            EXPECT_FALSE(band.inflated(-1e-6).overlaps(fp))
                << label << ": instance " << inst.id
                << " straddles a cut gap";
    }

    // The report's per-die census covers every instance exactly once.
    ASSERT_TRUE(r.multidie.active) << label;
    EXPECT_EQ(r.multidie.dies, plan.spec.numDies()) << label;
    ASSERT_EQ(r.multidie.dieInstances.size(), plan.dies.size()) << label;
    int census = 0;
    for (int count : r.multidie.dieInstances)
        census += count;
    EXPECT_EQ(census, netlist.numInstances()) << label;
}

TEST(MultidieLegal, TwoDieFlowKeepsFootprintsOffTheCut)
{
    expectPartitioned(runFlow("grid6x6@dies=2x1"), "grid6x6@dies=2x1");
}

TEST(MultidieLegal, FourDieFlowKeepsFootprintsOffTheCuts)
{
    expectPartitioned(runFlow("grid6x6@dies=2x2"), "grid6x6@dies=2x2");
}

TEST(MultidieLegal, AnnealStageRespectsDies)
{
    expectPartitioned(runFlow("grid6x6@dies=2x1", /*detailed=*/true),
                      "grid6x6@dies=2x1+anneal");
}

TEST(MultidieLegal, CrossCutMetricsMatchManualCount)
{
    const FlowResult r = runFlow("grid6x6@dies=2x1");
    ASSERT_TRUE(r.status.ok());
    const DiePlan plan =
        DiePlan::resolve(r.netlist.dieSpec(), r.netlist.region());
    const CrossCutMetrics metrics = computeCrossCut(r.netlist, plan);

    // Recount crossings straight off the resonator records.
    int crossings = 0;
    for (const Resonator &res : r.netlist.resonators()) {
        const Instance &qa =
            r.netlist.instance(r.netlist.qubitInstance(res.qubitA));
        const Instance &qb =
            r.netlist.instance(r.netlist.qubitInstance(res.qubitB));
        if (plan.dieAt(qa.pos) != plan.dieAt(qb.pos))
            ++crossings;
    }
    EXPECT_EQ(metrics.crossingCouplers, crossings);
    EXPECT_GE(metrics.crossingWirelengthUm, 0.0);
}

} // namespace
} // namespace qplacer
