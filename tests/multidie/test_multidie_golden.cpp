/**
 * @file
 * Single-die equivalence contract: a "@dies=1x1" suffix (with any cut
 * gap, and with multidie.cutWeight set) must reproduce the plain
 * single-die flow bitwise. The multi-die code paths gate on
 * DieSpec::active(), so an inactive spec may not perturb one bit of
 * the layout.
 */

#include <gtest/gtest.h>

#include <string>

#include "pipeline/flow.hpp"
#include "topology/factory.hpp"

namespace qplacer {
namespace {

FlowResult
runFlow(const std::string &spec, double cut_weight = 0.0)
{
    Topology topo;
    std::string error;
    if (!resolveTopologySpec(spec, topo, &error))
        ADD_FAILURE() << spec << ": " << error;

    FlowParams params;
    params.mode = PlacerMode::Qplacer;
    params.partition.segmentUm = 300.0;
    params.placer.seed = 1;
    params.placer.threads = 1;
    params.placer.cutWeight = cut_weight;
    return QplacerFlow(params).run(topo);
}

TEST(MultidieGolden, SingleDieSuffixIsBitwiseIdentical)
{
    const FlowResult plain = runFlow("grid6x6");
    const FlowResult suffixed = runFlow("grid6x6@dies=1x1");
    ASSERT_TRUE(plain.status.ok());
    ASSERT_TRUE(suffixed.status.ok());
    EXPECT_TRUE(bitwiseSameNetlist(plain.netlist, suffixed.netlist));
    EXPECT_TRUE(bitwiseSameLayout(plain.netlist, suffixed.netlist));
    EXPECT_FALSE(suffixed.multidie.active);
}

TEST(MultidieGolden, CutGapOptionIsInertOnSingleDie)
{
    const FlowResult plain = runFlow("grid6x6");
    const FlowResult gapped = runFlow("grid6x6@dies=1x1:cutGapUm=500");
    ASSERT_TRUE(plain.status.ok());
    ASSERT_TRUE(gapped.status.ok());
    EXPECT_TRUE(bitwiseSameLayout(plain.netlist, gapped.netlist));
}

TEST(MultidieGolden, CutWeightIsInertOnSingleDie)
{
    const FlowResult plain = runFlow("grid6x6");
    const FlowResult weighted = runFlow("grid6x6@dies=1x1", 4.0);
    ASSERT_TRUE(plain.status.ok());
    ASSERT_TRUE(weighted.status.ok());
    EXPECT_TRUE(bitwiseSameLayout(plain.netlist, weighted.netlist));

    // And without any suffix at all: cutWeight gates on an active die
    // spec, so setting it alone changes nothing.
    const FlowResult weighted_plain = runFlow("grid6x6", 4.0);
    ASSERT_TRUE(weighted_plain.status.ok());
    EXPECT_TRUE(bitwiseSameLayout(plain.netlist, weighted_plain.netlist));
}

TEST(MultidieGolden, MultiDieRunIsDeterministic)
{
    const FlowResult a = runFlow("grid6x6@dies=2x1", 2.0);
    const FlowResult b = runFlow("grid6x6@dies=2x1", 2.0);
    ASSERT_TRUE(a.status.ok());
    ASSERT_TRUE(b.status.ok());
    EXPECT_TRUE(bitwiseSameNetlist(a.netlist, b.netlist));
    EXPECT_TRUE(bitwiseSameLayout(a.netlist, b.netlist));
    EXPECT_TRUE(a.multidie.active);
    EXPECT_EQ(a.multidie.crossingCouplers, b.multidie.crossingCouplers);
}

} // namespace
} // namespace qplacer
