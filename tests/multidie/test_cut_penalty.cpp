/**
 * @file
 * CutPenaltyModel: zero on same-side nets, positive on crossings, and
 * an analytic gradient that matches central finite differences.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "multidie/cut_penalty.hpp"
#include "multidie/die_plan.hpp"
#include "netlist/netlist.hpp"

namespace qplacer {
namespace {

/** Four qubits in a 1x2 (one vertical cut) device. */
struct Fixture
{
    Netlist netlist;
    DiePlan plan;

    Fixture()
    {
        const Rect region(0.0, 0.0, 2200.0, 1000.0);
        netlist.setRegion(region);
        for (int q = 0; q < 4; ++q) {
            Instance inst;
            inst.kind = InstanceKind::Qubit;
            inst.qubit = q;
            inst.width = 50.0;
            inst.height = 50.0;
            inst.pad = 10.0;
            netlist.addInstance(inst);
        }
        netlist.addNet(0, 1, 1.0);
        netlist.addNet(2, 3, 2.5);

        DieSpec spec;
        spec.rows = 1;
        spec.cols = 2;
        spec.cutGapUm = 200.0; // Vertical cut at x = 1100.
        plan = DiePlan::resolve(spec, region);
    }
};

TEST(CutPenalty, ZeroWhenAllNetsOnOneSide)
{
    Fixture fx;
    const CutPenaltyModel model(fx.netlist, fx.plan);
    const std::vector<Vec2> positions = {
        Vec2(100.0, 200.0), Vec2(900.0, 800.0), // Net 0: both left.
        Vec2(1300.0, 300.0), Vec2(2100.0, 700.0), // Net 1: both right.
    };
    std::vector<Vec2> gradient;
    EXPECT_DOUBLE_EQ(model.evaluate(positions, gradient), 0.0);
    ASSERT_EQ(gradient.size(), positions.size());
    for (const Vec2 &g : gradient) {
        EXPECT_DOUBLE_EQ(g.x, 0.0);
        EXPECT_DOUBLE_EQ(g.y, 0.0);
    }
}

TEST(CutPenalty, CrossingNetPaysAndWeightScales)
{
    Fixture fx;
    const CutPenaltyModel model(fx.netlist, fx.plan);
    std::vector<Vec2> gradient;

    // Net 0 straddles the cut symmetrically; net 1 stays on one side.
    const std::vector<Vec2> one = {
        Vec2(1000.0, 500.0), Vec2(1200.0, 500.0),
        Vec2(100.0, 100.0),  Vec2(200.0, 200.0),
    };
    const double penalty_one = model.evaluate(one, gradient);
    EXPECT_GT(penalty_one, 0.0);
    // Expected: w * (c - a)(b - c) / W = 1 * 100 * 100 / 2200.
    EXPECT_NEAR(penalty_one, 100.0 * 100.0 / 2200.0, 1e-12);

    // Same straddle on net 1 (weight 2.5) costs 2.5x as much.
    const std::vector<Vec2> two = {
        Vec2(100.0, 100.0),  Vec2(200.0, 200.0),
        Vec2(1000.0, 500.0), Vec2(1200.0, 500.0),
    };
    const double penalty_two = model.evaluate(two, gradient);
    EXPECT_NEAR(penalty_two, 2.5 * penalty_one, 1e-12);
}

TEST(CutPenalty, GradientMatchesFiniteDifferences)
{
    Fixture fx;
    const CutPenaltyModel model(fx.netlist, fx.plan);

    // Both nets straddle the cut, at different depths, away from the
    // hinge kinks at x = 1100 so central differences are exact.
    std::vector<Vec2> positions = {
        Vec2(950.0, 420.0),  Vec2(1310.0, 610.0),
        Vec2(1040.0, 150.0), Vec2(1490.0, 880.0),
    };
    std::vector<Vec2> analytic;
    model.evaluate(positions, analytic);
    ASSERT_EQ(analytic.size(), positions.size());

    const double h = 1e-3;
    std::vector<Vec2> scratch;
    for (std::size_t i = 0; i < positions.size(); ++i) {
        for (int axis = 0; axis < 2; ++axis) {
            double &coord = axis == 0 ? positions[i].x : positions[i].y;
            const double saved = coord;
            coord = saved + h;
            const double up = model.evaluate(positions, scratch);
            coord = saved - h;
            const double down = model.evaluate(positions, scratch);
            coord = saved;
            const double numeric = (up - down) / (2.0 * h);
            const double exact =
                axis == 0 ? analytic[i].x : analytic[i].y;
            EXPECT_NEAR(exact, numeric, 1e-7)
                << "instance " << i << " axis " << axis;
        }
    }
}

TEST(CutPenalty, GradientPullsEndpointsTowardCut)
{
    Fixture fx;
    const CutPenaltyModel model(fx.netlist, fx.plan);
    const std::vector<Vec2> positions = {
        Vec2(900.0, 500.0), Vec2(1400.0, 500.0), // Straddles x = 1100.
        Vec2(100.0, 100.0), Vec2(200.0, 200.0),
    };
    std::vector<Vec2> gradient;
    model.evaluate(positions, gradient);
    // Descent (-gradient) moves the left endpoint right and the right
    // endpoint left -- both toward the cut.
    EXPECT_LT(gradient[0].x, 0.0);
    EXPECT_GT(gradient[1].x, 0.0);
    EXPECT_DOUBLE_EQ(gradient[0].y, 0.0);
    EXPECT_DOUBLE_EQ(gradient[2].x, 0.0);
}

TEST(CutPenalty, HorizontalCutUsesYAxis)
{
    Netlist netlist;
    const Rect region(0.0, 0.0, 1000.0, 2200.0);
    netlist.setRegion(region);
    for (int q = 0; q < 2; ++q) {
        Instance inst;
        inst.kind = InstanceKind::Qubit;
        inst.qubit = q;
        inst.width = 50.0;
        inst.height = 50.0;
        netlist.addInstance(inst);
    }
    netlist.addNet(0, 1);

    DieSpec spec;
    spec.rows = 2;
    spec.cols = 1;
    spec.cutGapUm = 200.0; // Horizontal cut at y = 1100.
    const DiePlan plan = DiePlan::resolve(spec, region);
    const CutPenaltyModel model(netlist, plan);

    const std::vector<Vec2> positions = {Vec2(500.0, 1000.0),
                                         Vec2(500.0, 1200.0)};
    std::vector<Vec2> gradient;
    const double penalty = model.evaluate(positions, gradient);
    EXPECT_NEAR(penalty, 100.0 * 100.0 / 2200.0, 1e-12);
    EXPECT_LT(gradient[0].y, 0.0);
    EXPECT_GT(gradient[1].y, 0.0);
    EXPECT_DOUBLE_EQ(gradient[0].x, 0.0);
}

} // namespace
} // namespace qplacer
