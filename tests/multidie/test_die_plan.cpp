/**
 * @file
 * DieSpec parsing (good and malformed), DiePlan geometry resolution,
 * die assignment, gap bands, and the "@dies=" topology-spec suffix.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "multidie/die_plan.hpp"
#include "topology/factory.hpp"

namespace qplacer {
namespace {

TEST(DieSpec, DefaultIsInactive)
{
    const DieSpec spec;
    EXPECT_FALSE(spec.active());
    EXPECT_EQ(spec.numDies(), 1);
}

TEST(DieSpec, ParsesDimensions)
{
    DieSpec spec;
    ASSERT_TRUE(parseDieSpec("2x1", spec));
    EXPECT_EQ(spec.rows, 2);
    EXPECT_EQ(spec.cols, 1);
    EXPECT_DOUBLE_EQ(spec.cutGapUm, 800.0);
    EXPECT_TRUE(spec.active());

    ASSERT_TRUE(parseDieSpec("1x1", spec));
    EXPECT_FALSE(spec.active());

    ASSERT_TRUE(parseDieSpec("3x4", spec));
    EXPECT_EQ(spec.numDies(), 12);
}

TEST(DieSpec, ParsesCutGapOption)
{
    DieSpec spec;
    ASSERT_TRUE(parseDieSpec("2x2:cutGapUm=512.5", spec));
    EXPECT_EQ(spec.rows, 2);
    EXPECT_EQ(spec.cols, 2);
    EXPECT_DOUBLE_EQ(spec.cutGapUm, 512.5);
}

TEST(DieSpec, RejectsMalformedSpecs)
{
    DieSpec spec;
    std::string error;
    const char *bad[] = {
        "",          "2",          "2x",          "x2",
        "0x2",       "2x0",        "-1x2",        "axb",
        "2x2x2",     "2x1:",       "2x1:gap=3",   "2x1:cutGapUm=",
        "2x1:cutGapUm=abc",        "2x1:cutGapUm=-5",
        "2x1:cutGapUm=0",          "2x1:cutGapUm=1e999",
        "99999x1",
    };
    for (const char *text : bad) {
        error.clear();
        EXPECT_FALSE(parseDieSpec(text, spec, &error)) << text;
        EXPECT_FALSE(error.empty()) << text;
    }
}

TEST(DiePlan, ResolvesTwoColumnGeometry)
{
    DieSpec spec;
    ASSERT_TRUE(parseDieSpec("1x2:cutGapUm=200", spec));
    const Rect region(0.0, 0.0, 2200.0, 1000.0);
    const DiePlan plan = DiePlan::resolve(spec, region);

    ASSERT_EQ(plan.dies.size(), 2u);
    // (2200 - 200) / 2 = 1000 um per die.
    EXPECT_DOUBLE_EQ(plan.dies[0].lo.x, 0.0);
    EXPECT_DOUBLE_EQ(plan.dies[0].hi.x, 1000.0);
    EXPECT_DOUBLE_EQ(plan.dies[1].lo.x, 1200.0);
    EXPECT_DOUBLE_EQ(plan.dies[1].hi.x, 2200.0);
    EXPECT_DOUBLE_EQ(plan.dies[0].lo.y, 0.0);
    EXPECT_DOUBLE_EQ(plan.dies[0].hi.y, 1000.0);

    ASSERT_EQ(plan.cuts.size(), 1u);
    EXPECT_TRUE(plan.cuts[0].vertical);
    EXPECT_DOUBLE_EQ(plan.cuts[0].coordUm, 1100.0);

    const auto bands = plan.gapBands();
    ASSERT_EQ(bands.size(), 1u);
    EXPECT_DOUBLE_EQ(bands[0].lo.x, 1000.0);
    EXPECT_DOUBLE_EQ(bands[0].hi.x, 1200.0);
    EXPECT_DOUBLE_EQ(bands[0].lo.y, 0.0);
    EXPECT_DOUBLE_EQ(bands[0].hi.y, 1000.0);
}

TEST(DiePlan, ResolvesGridGeometry)
{
    DieSpec spec;
    ASSERT_TRUE(parseDieSpec("2x2:cutGapUm=100", spec));
    const DiePlan plan =
        DiePlan::resolve(spec, Rect(0.0, 0.0, 2100.0, 2100.0));
    ASSERT_EQ(plan.dies.size(), 4u);
    ASSERT_EQ(plan.cuts.size(), 2u); // One vertical, one horizontal.
    EXPECT_EQ(plan.gapBands().size(), 2u);
    // Row-major: die 1 is row 0, col 1.
    EXPECT_DOUBLE_EQ(plan.dies[1].lo.x, 1100.0);
    EXPECT_DOUBLE_EQ(plan.dies[1].lo.y, 0.0);
    EXPECT_DOUBLE_EQ(plan.dies[2].lo.x, 0.0);
    EXPECT_DOUBLE_EQ(plan.dies[2].lo.y, 1100.0);
}

TEST(DiePlan, ResolvePanicsWhenGapsExceedRegion)
{
    DieSpec spec;
    ASSERT_TRUE(parseDieSpec("1x4:cutGapUm=400", spec));
    EXPECT_THROW(DiePlan::resolve(spec, Rect(0.0, 0.0, 1200.0, 1000.0)),
                 std::logic_error);
}

TEST(DiePlan, DieAtMapsGapPointsToNearestDie)
{
    DieSpec spec;
    ASSERT_TRUE(parseDieSpec("1x2:cutGapUm=200", spec));
    const DiePlan plan =
        DiePlan::resolve(spec, Rect(0.0, 0.0, 2200.0, 1000.0));

    EXPECT_EQ(plan.dieAt(Vec2(500.0, 500.0)), 0);
    EXPECT_EQ(plan.dieAt(Vec2(1700.0, 500.0)), 1);
    // Inside the gap band: nearest die wins.
    EXPECT_EQ(plan.dieAt(Vec2(1010.0, 500.0)), 0);
    EXPECT_EQ(plan.dieAt(Vec2(1190.0, 500.0)), 1);
    // Dead center ties toward the lower index.
    EXPECT_EQ(plan.dieAt(Vec2(1100.0, 500.0)), 0);
    // Out of region entirely: still mapped (clamped distance).
    EXPECT_EQ(plan.dieAt(Vec2(-50.0, 500.0)), 0);
    EXPECT_EQ(plan.dieAt(Vec2(9999.0, 500.0)), 1);
}

TEST(TopologySpec, DiesSuffixComposesWithGenerators)
{
    Topology topo;
    std::string error;
    ASSERT_TRUE(
        resolveTopologySpec("grid4x4@dies=2x1:cutGapUm=600", topo, &error))
        << error;
    EXPECT_EQ(topo.numQubits(), 16);
    EXPECT_EQ(topo.dies.rows, 2);
    EXPECT_EQ(topo.dies.cols, 1);
    EXPECT_DOUBLE_EQ(topo.dies.cutGapUm, 600.0);
}

TEST(TopologySpec, DiesSuffixComposesWithPaperDevices)
{
    Topology topo;
    ASSERT_TRUE(resolveTopologySpec("falcon@dies=1x2", topo, nullptr));
    EXPECT_TRUE(topo.dies.active());
    EXPECT_EQ(topo.dies.cols, 2);
}

TEST(TopologySpec, SingleDieSuffixIsInactive)
{
    Topology plain, suffixed;
    ASSERT_TRUE(resolveTopologySpec("grid4x4", plain, nullptr));
    ASSERT_TRUE(resolveTopologySpec("grid4x4@dies=1x1", suffixed, nullptr));
    EXPECT_FALSE(suffixed.dies.active());
    EXPECT_EQ(plain.name, suffixed.name);
}

TEST(TopologySpec, MalformedDiesSuffixIsAnError)
{
    Topology topo;
    std::string error;
    EXPECT_FALSE(resolveTopologySpec("grid4x4@dies=", topo, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(resolveTopologySpec("grid4x4@dies=2", topo, &error));
    EXPECT_FALSE(resolveTopologySpec("grid4x4@dies=0x2", topo, &error));
    EXPECT_FALSE(
        resolveTopologySpec("grid4x4@dies=2x1:cutGapUm=-1", topo, &error));
    EXPECT_FALSE(resolveTopologySpec("@dies=2x1", topo, &error));
}

} // namespace
} // namespace qplacer
