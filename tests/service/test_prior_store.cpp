/**
 * @file
 * PriorStore tests: the in-memory LRU contract, crash-safe journal +
 * snapshot persistence (bitwise round-trip of double coordinates),
 * torn-tail truncation, CRC rejection of corrupt records, snapshot
 * compaction, capacity enforcement across restarts, and graceful
 * degradation when loading fails.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "service/prior_store.hpp"
#include "util/failpoint.hpp"

namespace qplacer {
namespace {

/** A scratch state directory, deleted on scope exit. */
struct StateDir
{
    StateDir()
    {
        path = (std::filesystem::temp_directory_path() /
                ("qplacer_prior_store_" +
                 std::to_string(::testing::UnitTest::GetInstance()
                                    ->random_seed()) +
                 "_" + std::string(::testing::UnitTest::GetInstance()
                                       ->current_test_info()
                                       ->name())))
                   .string();
        std::filesystem::remove_all(path);
    }
    ~StateDir() { std::filesystem::remove_all(path); }

    std::string path;
};

/**
 * A synthetic layout with awkward doubles (non-terminating binary
 * fractions, huge frequencies) so the bitwise round-trip assertion has
 * teeth.
 */
std::shared_ptr<const PriorLayout>
makePrior(int salt)
{
    PriorLayout prior;
    prior.region = Rect(0.0, 0.0, 1000.0 / 3.0, 725.3 + salt * 0.1);
    prior.numInstances = 3 + salt;
    for (int q = 0; q < 3; ++q) {
        prior.qubitSites[q + salt] =
            PriorSite{Vec2(q * (1.0 / 3.0) + salt * 0.7,
                           q * 0.123456789 + 1e-9),
                      5.1e9 + q * 1.0e7 + salt};
    }
    prior.segmentSites[{salt, salt + 1, 0}] =
        PriorSite{Vec2(17.0 / 7.0, 42.0 / 13.0), 6.45e9 + salt};
    prior.segmentSites[{salt, salt + 1, 1}] =
        PriorSite{Vec2(-3.25, 99.999999999), 6.55e9 + salt};
    return std::make_shared<const PriorLayout>(std::move(prior));
}

/** Field-exact (bitwise for doubles) layout equality. */
void
expectSame(const PriorLayout &a, const PriorLayout &b)
{
    EXPECT_EQ(a.region.lo.x, b.region.lo.x);
    EXPECT_EQ(a.region.lo.y, b.region.lo.y);
    EXPECT_EQ(a.region.hi.x, b.region.hi.x);
    EXPECT_EQ(a.region.hi.y, b.region.hi.y);
    EXPECT_EQ(a.numInstances, b.numInstances);
    ASSERT_EQ(a.qubitSites.size(), b.qubitSites.size());
    for (const auto &[qubit, site] : a.qubitSites) {
        const auto it = b.qubitSites.find(qubit);
        ASSERT_NE(it, b.qubitSites.end()) << "qubit " << qubit;
        EXPECT_EQ(site.pos.x, it->second.pos.x);
        EXPECT_EQ(site.pos.y, it->second.pos.y);
        EXPECT_EQ(site.freqHz, it->second.freqHz);
    }
    ASSERT_EQ(a.segmentSites.size(), b.segmentSites.size());
    for (const auto &[key, site] : a.segmentSites) {
        const auto it = b.segmentSites.find(key);
        ASSERT_NE(it, b.segmentSites.end());
        EXPECT_EQ(site.pos.x, it->second.pos.x);
        EXPECT_EQ(site.pos.y, it->second.pos.y);
        EXPECT_EQ(site.freqHz, it->second.freqHz);
    }
}

TEST(PriorStore, MemoryOnlyLruEviction)
{
    PriorStoreOptions options;
    options.capacity = 2;
    PriorStore store(options);

    store.put("a", makePrior(1));
    store.put("b", makePrior(2));
    // Touch "a": it becomes most-recently-used, so "b" evicts next.
    EXPECT_NE(store.get("a"), nullptr);
    store.put("c", makePrior(3));

    EXPECT_EQ(store.size(), 2);
    EXPECT_NE(store.get("a"), nullptr);
    EXPECT_EQ(store.get("b"), nullptr);
    EXPECT_NE(store.get("c"), nullptr);
}

TEST(PriorStore, JsonRoundTripIsExact)
{
    const auto prior = makePrior(7);
    const JsonValue payload = PriorStore::priorToJson("job", *prior);

    std::string id;
    PriorLayout back;
    std::string error;
    ASSERT_TRUE(PriorStore::priorFromJson(payload, id, back, &error))
        << error;
    EXPECT_EQ(id, "job");
    expectSame(*prior, back);
}

TEST(PriorStore, PersistsAcrossRestartBitwise)
{
    StateDir dir;
    PriorStoreOptions options;
    options.stateDir = dir.path;
    const auto a = makePrior(1);
    const auto b = makePrior(2);
    {
        PriorStore store(options);
        EXPECT_EQ(store.loadedFromDisk(), 0);
        store.put("a", a);
        store.put("b", b);
    }
    PriorStore reopened(options);
    EXPECT_EQ(reopened.loadedFromDisk(), 2);
    const auto ra = reopened.get("a");
    const auto rb = reopened.get("b");
    ASSERT_NE(ra, nullptr);
    ASSERT_NE(rb, nullptr);
    expectSame(*a, *ra);
    expectSame(*b, *rb);
}

TEST(PriorStore, TornTailIsTruncatedNotFatal)
{
    StateDir dir;
    PriorStoreOptions options;
    options.stateDir = dir.path;
    {
        PriorStore store(options);
        store.put("a", makePrior(1));
        store.put("b", makePrior(2));
    }
    // Crash mid-append: a partial record with no newline.
    const std::string journal = dir.path + "/priors.journal";
    const auto before = std::filesystem::file_size(journal);
    {
        std::ofstream out(journal, std::ios::app | std::ios::binary);
        out << "{\"crc\":123,\"put\":{\"id\":\"torn";
    }
    {
        PriorStore reopened(options);
        EXPECT_EQ(reopened.loadedFromDisk(), 2);
        EXPECT_NE(reopened.get("a"), nullptr);
        EXPECT_NE(reopened.get("b"), nullptr);
        EXPECT_EQ(reopened.get("torn"), nullptr);
    }
    // The torn bytes are gone: the journal shrank back to the last
    // good record and a further restart loads cleanly.
    EXPECT_EQ(std::filesystem::file_size(journal), before);
    PriorStore again(options);
    EXPECT_EQ(again.loadedFromDisk(), 2);
}

TEST(PriorStore, CorruptCrcDropsTheRecord)
{
    StateDir dir;
    PriorStoreOptions options;
    options.stateDir = dir.path;
    {
        PriorStore store(options);
        store.put("good", makePrior(1));
        store.put("bad", makePrior(2));
    }
    // Flip payload bytes of the *last* record; its CRC no longer
    // matches, so replay keeps "good" and truncates at "bad".
    const std::string journal = dir.path + "/priors.journal";
    std::string content;
    {
        std::ifstream in(journal, std::ios::binary);
        content.assign(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
    }
    const std::size_t target = content.find("\"bad\"");
    ASSERT_NE(target, std::string::npos);
    content[target + 1] = 'x';
    {
        std::ofstream out(journal,
                          std::ios::trunc | std::ios::binary);
        out << content;
    }
    PriorStore reopened(options);
    EXPECT_EQ(reopened.loadedFromDisk(), 1);
    EXPECT_NE(reopened.get("good"), nullptr);
    EXPECT_EQ(reopened.get("bad"), nullptr);
}

TEST(PriorStore, SnapshotCompactsJournal)
{
    StateDir dir;
    PriorStoreOptions options;
    options.stateDir = dir.path;
    options.snapshotEvery = 2;
    {
        PriorStore store(options);
        store.put("a", makePrior(1));
        store.put("b", makePrior(2)); // Triggers the snapshot.
        store.put("c", makePrior(3));
    }
    EXPECT_TRUE(
        std::filesystem::exists(dir.path + "/priors.snapshot"));
    // After compaction the journal holds only post-snapshot appends
    // ("c"), not the whole history.
    std::ifstream journal(dir.path + "/priors.journal",
                          std::ios::binary);
    std::string content{std::istreambuf_iterator<char>(journal),
                        std::istreambuf_iterator<char>()};
    EXPECT_EQ(content.find("\"a\""), std::string::npos);
    EXPECT_NE(content.find("\"c\""), std::string::npos);

    PriorStore reopened(options);
    EXPECT_EQ(reopened.loadedFromDisk(), 3);
    EXPECT_NE(reopened.get("a"), nullptr);
    EXPECT_NE(reopened.get("b"), nullptr);
    EXPECT_NE(reopened.get("c"), nullptr);
}

TEST(PriorStore, CapacityHoldsAcrossRestart)
{
    StateDir dir;
    PriorStoreOptions options;
    options.stateDir = dir.path;
    options.capacity = 2;
    {
        PriorStore store(options);
        store.put("a", makePrior(1));
        store.put("b", makePrior(2));
        store.put("c", makePrior(3)); // Evicts "a" in memory.
        EXPECT_EQ(store.size(), 2);
    }
    // The journal still carries "a"'s record; replay re-applies the
    // LRU trim so the reopened store matches the pre-crash bound.
    PriorStore reopened(options);
    EXPECT_EQ(reopened.size(), 2);
    EXPECT_EQ(reopened.get("a"), nullptr);
    EXPECT_NE(reopened.get("b"), nullptr);
    EXPECT_NE(reopened.get("c"), nullptr);
}

TEST(PriorStore, InjectedLoadFailureStartsEmptyAndServes)
{
    StateDir dir;
    PriorStoreOptions options;
    options.stateDir = dir.path;
    {
        PriorStore store(options);
        store.put("a", makePrior(1));
    }
    ASSERT_TRUE(Failpoints::instance().arm("prior_store.load", "error"));
    {
        PriorStore degraded(options);
        Failpoints::instance().disarmAll();
        EXPECT_EQ(degraded.loadedFromDisk(), 0);
        EXPECT_EQ(degraded.get("a"), nullptr);
        // Still serving, still persisting.
        degraded.put("b", makePrior(2));
        EXPECT_NE(degraded.get("b"), nullptr);
    }
    PriorStore recovered(options);
    EXPECT_NE(recovered.get("b"), nullptr);
}

TEST(PriorStore, InjectedAppendFailureDegradesToMemory)
{
    StateDir dir;
    PriorStoreOptions options;
    options.stateDir = dir.path;
    {
        PriorStore store(options);
        ASSERT_TRUE(
            Failpoints::instance().arm("prior_store.append", "error"));
        store.put("lost", makePrior(1));
        Failpoints::instance().disarmAll();
        // In-memory serving is unaffected by the persistence failure.
        EXPECT_NE(store.get("lost"), nullptr);
        store.put("kept", makePrior(2));
    }
    PriorStore reopened(options);
    EXPECT_NE(reopened.get("kept"), nullptr);
}

} // namespace
} // namespace qplacer
