/**
 * @file
 * qplacer.serve/1 wire-format tests: the JSON layer round-trips the
 * literals the protocol depends on (64-bit seeds, %.17g coordinates),
 * request parsing accepts the documented shapes, and every malformed
 * input comes back as a descriptive error instead of a crash.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

#include "pipeline/flow.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"

namespace qplacer {
namespace {

JsonValue
parseOk(const std::string &text)
{
    JsonValue v;
    std::string error;
    EXPECT_TRUE(parseJson(text, v, &error)) << error;
    return v;
}

TEST(Json, ScalarRoundTrip)
{
    EXPECT_EQ(parseOk("null").serialize(), "null");
    EXPECT_EQ(parseOk("true").serialize(), "true");
    EXPECT_EQ(parseOk("false").serialize(), "false");
    EXPECT_EQ(parseOk("42").serialize(), "42");
    EXPECT_EQ(parseOk("-7").asInt(), -7);
    EXPECT_EQ(parseOk("\"hi\\n\\\"there\\\"\"").asString(), "hi\n\"there\"");
}

TEST(Json, NumberLiteralsSurviveVerbatim)
{
    // Values a double round-trip would mangle must re-emit exactly.
    EXPECT_EQ(parseOk("18446744073709551615").serialize(),
              "18446744073709551615");
    EXPECT_EQ(parseOk("0.1").serialize(), "0.1");
    EXPECT_EQ(parseOk("1e-3").serialize(), "1e-3");
    EXPECT_EQ(parseOk("543988.0396898662").serialize(), "543988.0396898662");
}

TEST(Json, DoubleSerializationRoundTrips)
{
    const double values[] = {0.0, 1.0 / 3.0, 543988.0396898662, -1e-300,
                             3.141592653589793};
    for (double v : values) {
        const std::string text = JsonValue::number(v).serialize();
        EXPECT_EQ(parseOk(text).asDouble(), v) << text;
    }
}

TEST(Json, NonFiniteDoublesSerializeAsNull)
{
    // NaN/inf would print as 'nan'/'inf' -- invalid JSON that breaks
    // NDJSON clients -- so number() collapses them to null.
    EXPECT_EQ(JsonValue::number(std::numeric_limits<double>::quiet_NaN())
                  .serialize(),
              "null");
    EXPECT_EQ(JsonValue::number(std::numeric_limits<double>::infinity())
                  .serialize(),
              "null");
    EXPECT_EQ(JsonValue::number(-std::numeric_limits<double>::infinity())
                  .serialize(),
              "null");
}

TEST(Json, NestedStructureRoundTrips)
{
    const std::string text =
        R"({"a":[1,2,{"b":null}],"c":{"d":"e"},"f":true})";
    EXPECT_EQ(parseOk(text).serialize(), text);
}

TEST(Json, ObjectOrderAndLookup)
{
    JsonValue v = parseOk(R"({"z":1,"a":2})");
    ASSERT_EQ(v.members().size(), 2u);
    EXPECT_EQ(v.members()[0].first, "z");
    ASSERT_NE(v.find("a"), nullptr);
    EXPECT_EQ(v.find("a")->asInt(), 2);
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, UnicodeEscapes)
{
    // \u00e9 = e-acute (2-byte UTF-8); surrogate pair = U+1F600.
    EXPECT_EQ(parseOk("\"\\u00e9\"").asString(), "\xc3\xa9");
    EXPECT_EQ(parseOk("\"\\ud83d\\ude00\"").asString(),
              "\xf0\x9f\x98\x80");
}

TEST(Json, RejectsMalformedDocuments)
{
    const char *bad[] = {
        "",           "{",           "[1,]",        "{\"a\":}",
        "{\"a\" 1}",  "\"unclosed",  "01",          "1 2",
        "nul",        "{\"a\":1,}",  "\"\\u12\"",   "\"\\ud83d\"",
    };
    for (const char *text : bad) {
        JsonValue v;
        std::string error;
        EXPECT_FALSE(parseJson(text, v, &error)) << text;
        EXPECT_FALSE(error.empty()) << text;
    }
}

TEST(Json, RejectsPathologicalNesting)
{
    std::string deep(200, '[');
    deep += std::string(200, ']');
    JsonValue v;
    std::string error;
    EXPECT_FALSE(parseJson(deep, v, &error));
}

TEST(Protocol, ParsesMinimalSubmit)
{
    Request req;
    std::string error;
    ASSERT_TRUE(parseRequest(
        R"({"type":"submit","id":"j1","topology":"Falcon"})", req, &error))
        << error;
    EXPECT_EQ(req.type, Request::Type::Submit);
    EXPECT_EQ(req.id, "j1");
    EXPECT_EQ(req.submit.topology, "Falcon");
    EXPECT_EQ(req.submit.mode, PlacerMode::Qplacer);
    EXPECT_EQ(req.submit.seed, 1u);
    EXPECT_EQ(req.submit.progressEvery, -1);
    EXPECT_FALSE(req.submit.wantLayout);
    EXPECT_FALSE(req.submit.isIncremental());
}

TEST(Protocol, ParsesFullSubmit)
{
    Request req;
    std::string error;
    ASSERT_TRUE(parseRequest(
        R"({"type":"submit","id":"j2","topology":"grid3x3",)"
        R"("mode":"classic","seed":18446744073709551615,"segment":250,)"
        R"("set":{"placer.maxIters":120,"legalizer.flowRefine":false},)"
        R"("progress":10,"layout":true,)"
        R"("base":"j1","dirty_qubits":[0,3]})",
        req, &error))
        << error;
    EXPECT_EQ(req.submit.mode, PlacerMode::Classic);
    EXPECT_EQ(req.submit.seed, UINT64_MAX);
    EXPECT_EQ(req.submit.segmentUm, 250.0);
    EXPECT_EQ(req.submit.set.getString("placer.maxIters", ""), "120");
    EXPECT_EQ(req.submit.set.getString("legalizer.flowRefine", ""), "0");
    EXPECT_EQ(req.submit.progressEvery, 10);
    EXPECT_TRUE(req.submit.wantLayout);
    EXPECT_TRUE(req.submit.isIncremental());
    EXPECT_EQ(req.submit.baseId, "j1");
    ASSERT_EQ(req.submit.dirtyQubits.size(), 2u);
    EXPECT_EQ(req.submit.dirtyQubits[1], 3);
}

TEST(Protocol, ParsesDirtyCouplers)
{
    Request req;
    std::string error;
    ASSERT_TRUE(parseRequest(
        R"({"type":"submit","id":"j3","topology":"grid3x3",)"
        R"("base":"j1","dirty_qubits":[7],)"
        R"("dirty_couplers":[[0,3],[4,5]]})",
        req, &error))
        << error;
    EXPECT_TRUE(req.submit.isIncremental());
    ASSERT_EQ(req.submit.dirtyQubits.size(), 1u);
    ASSERT_EQ(req.submit.dirtyCouplers.size(), 2u);
    EXPECT_EQ(req.submit.dirtyCouplers[0].first, 0);
    EXPECT_EQ(req.submit.dirtyCouplers[0].second, 3);
    EXPECT_EQ(req.submit.dirtyCouplers[1].first, 4);
    EXPECT_EQ(req.submit.dirtyCouplers[1].second, 5);
}

TEST(Protocol, ParsesControlRequests)
{
    Request req;
    std::string error;
    ASSERT_TRUE(parseRequest(R"({"type":"ping"})", req, &error)) << error;
    EXPECT_EQ(req.type, Request::Type::Ping);
    ASSERT_TRUE(
        parseRequest(R"({"type":"cancel","id":"j1"})", req, &error))
        << error;
    EXPECT_EQ(req.type, Request::Type::Cancel);
    EXPECT_EQ(req.id, "j1");
    ASSERT_TRUE(parseRequest(R"({"type":"shutdown"})", req, &error))
        << error;
    EXPECT_EQ(req.type, Request::Type::Shutdown);
}

TEST(Protocol, RejectsMalformedRequests)
{
    const char *bad[] = {
        "not json at all",
        R"([1,2,3])",
        R"({"id":"x"})",                                  // no type
        R"({"type":"levitate"})",                         // unknown type
        R"({"type":"submit","topology":"Falcon"})",       // no id
        R"({"type":"submit","id":"","topology":"g"})",    // empty id
        R"({"type":"submit","id":"x"})",                  // no topology
        R"({"type":"submit","id":"x","topology":7})",     // bad topology
        R"({"type":"submit","id":"x","topology":"g","mode":"warp"})",
        R"({"type":"submit","id":"x","topology":"g","seed":-1})",
        R"({"type":"submit","id":"x","topology":"g","seed":1.5})",
        R"({"type":"submit","id":"x","topology":"g","segment":0})",
        R"({"type":"submit","id":"x","topology":"g","progress":-2})",
        R"({"type":"submit","id":"x","topology":"g","progress":1e10})",
        R"({"type":"submit","id":"x","topology":"g","progress":0.5})",
        R"({"type":"submit","id":"x","topology":"g","set":{"bogus":1}})",
        R"({"type":"submit","id":"x","topology":"g","set":{"placer.maxIters":[1]}})",
        R"({"type":"submit","id":"x","topology":"g","base":""})",
        R"({"type":"submit","id":"x","topology":"g","mode":"human","base":"y"})",
        R"({"type":"submit","id":"x","topology":"g","dirty_qubits":[1]})",
        R"({"type":"submit","id":"x","topology":"g","base":"y","dirty_qubits":[-1]})",
        R"({"type":"submit","id":"x","topology":"g","base":"y","dirty_qubits":[1e10]})",
        R"({"type":"submit","id":"x","topology":"g","dirty_couplers":[[0,1]]})",
        R"({"type":"submit","id":"x","topology":"g","base":"y","dirty_couplers":7})",
        R"({"type":"submit","id":"x","topology":"g","base":"y","dirty_couplers":[[0]]})",
        R"({"type":"submit","id":"x","topology":"g","base":"y","dirty_couplers":[[0,1,2]]})",
        R"({"type":"submit","id":"x","topology":"g","base":"y","dirty_couplers":[[0,-1]]})",
        R"({"type":"submit","id":"x","topology":"g","base":"y","dirty_couplers":[[0,1.5]]})",
        R"({"type":"cancel"})",                           // cancel w/o id
    };
    for (const char *line : bad) {
        Request req;
        std::string error;
        EXPECT_FALSE(parseRequest(line, req, &error)) << line;
        EXPECT_FALSE(error.empty()) << line;
    }
}

TEST(Protocol, ErrorKeepsJobIdWhenRecognizable)
{
    Request req;
    std::string error;
    EXPECT_FALSE(parseRequest(
        R"({"type":"submit","id":"j9","topology":7})", req, &error));
    EXPECT_EQ(req.id, "j9");
}

TEST(Protocol, ResponseBuildersProduceDocumentedShapes)
{
    EXPECT_EQ(makeHello(4).serialize(),
              R"({"type":"hello","schema":"qplacer.serve/1","workers":4})");
    EXPECT_EQ(makeAck("a").serialize(), R"({"type":"ack","id":"a"})");
    EXPECT_EQ(makePong().serialize(), R"({"type":"pong"})");
    EXPECT_EQ(makeBye(2).serialize(), R"({"type":"bye","jobs":2})");
    EXPECT_EQ(
        makeError("a", "boom").serialize(),
        R"({"type":"error","id":"a","message":"boom"})");
    EXPECT_EQ(makeStageBegin("a", "place").serialize(),
              R"({"type":"progress","id":"a","event":"stage_begin",)"
              R"("stage":"place"})");
}

TEST(Protocol, JobReportCarriesStatusAndIncremental)
{
    FlowResult result;
    result.status.code = FlowCode::Cancelled;
    result.status.stage = "place";
    result.status.message = "cancelled";
    result.incremental.incremental = true;
    result.incremental.reusedPrior = true;
    const JsonValue report = jobReportJson(result, 7);

    ASSERT_NE(report.find("status"), nullptr);
    EXPECT_EQ(report.find("status")->find("code")->asString(), "cancelled");
    EXPECT_EQ(report.find("seed")->asInt(), 7);
    ASSERT_NE(report.find("incremental"), nullptr);
    EXPECT_TRUE(report.find("incremental")->find("reused_prior")->asBool());
    // The CLI-only fidelity proxy is reported as null over the wire.
    ASSERT_NE(report.find("fidelity"), nullptr);
    EXPECT_TRUE(report.find("fidelity")->isNull());
    // Single-die: no multidie block at all.
    EXPECT_EQ(report.find("multidie"), nullptr);
}

TEST(Protocol, JobReportCarriesMultidieBlock)
{
    FlowResult result;
    result.multidie.active = true;
    result.multidie.dies = 2;
    result.multidie.crossingCouplers = 5;
    result.multidie.crossingWirelengthUm = 1234.5;
    result.multidie.dieInstances = {10, 12};
    result.multidie.dieUtilization = {0.5, 0.625};
    const JsonValue report = jobReportJson(result, 1);

    const JsonValue *multidie = report.find("multidie");
    ASSERT_NE(multidie, nullptr);
    EXPECT_EQ(multidie->find("dies")->asInt(), 2);
    EXPECT_EQ(multidie->find("crossing_couplers")->asInt(), 5);
    EXPECT_DOUBLE_EQ(multidie->find("crossing_wl_um")->asDouble(), 1234.5);
    const JsonValue *per_die = multidie->find("per_die");
    ASSERT_NE(per_die, nullptr);
    ASSERT_EQ(per_die->items().size(), 2u);
    EXPECT_EQ(per_die->items()[0].find("instances")->asInt(), 10);
    EXPECT_DOUBLE_EQ(
        per_die->items()[1].find("utilization")->asDouble(), 0.625);
}

} // namespace
} // namespace qplacer
