/**
 * @file
 * PlacementServer loopback tests: the in-process transport drives the
 * same handleLine() surface the daemon exposes, checking the service
 * contract end to end -- concurrent jobs bitwise-identical to serial
 * QplacerFlow runs, cancellation of queued and running jobs,
 * incremental re-place against a cached base, and the error paths a
 * long-lived daemon must answer instead of dying on.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "pipeline/flow.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "topology/generators.hpp"

namespace qplacer {
namespace {

/** In-process client: sends lines, collects every response. */
class Loopback
{
  public:
    explicit Loopback(ServerOptions options = {})
        : server_(std::move(options))
    {
    }

    PlacementServer &server() { return server_; }

    /** handleLine() with this client's collecting sink. */
    bool
    send(const std::string &line)
    {
        return server_.handleLine(line, [this](const JsonValue &response) {
            std::lock_guard<std::mutex> lock(mu_);
            responses_.push_back(response);
        });
    }

    /** Snapshot of everything received so far. */
    std::vector<JsonValue>
    responses() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return responses_;
    }

    /** The "result" response for @p id; fails the test when absent. */
    JsonValue
    resultFor(const std::string &id) const
    {
        for (const JsonValue &r : responses()) {
            const JsonValue *type = r.find("type");
            const JsonValue *rid = r.find("id");
            if (type && type->asString() == "result" && rid &&
                rid->asString() == id)
                return r;
        }
        ADD_FAILURE() << "no result for job '" << id << "'";
        return JsonValue::null();
    }

    /** Count of responses with the given type (and id, when set). */
    int
    count(const std::string &type, const std::string &id = "") const
    {
        int n = 0;
        for (const JsonValue &r : responses()) {
            const JsonValue *t = r.find("type");
            const JsonValue *rid = r.find("id");
            if (t && t->asString() == type &&
                (id.empty() || (rid && rid->asString() == id)))
                ++n;
        }
        return n;
    }

    /** Spin until @p pred on the response snapshot holds (or 30 s). */
    bool
    waitFor(const std::function<bool(const std::vector<JsonValue> &)> &pred)
    {
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(30);
        while (std::chrono::steady_clock::now() < deadline) {
            if (pred(responses()))
                return true;
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        return false;
    }

  private:
    PlacementServer server_;
    mutable std::mutex mu_;
    std::vector<JsonValue> responses_;
};

std::string
submitLine(const std::string &id, const std::string &topology,
           std::uint64_t seed, int max_iters,
           const std::string &extra = "")
{
    return "{\"type\":\"submit\",\"id\":\"" + id + "\",\"topology\":\"" +
           topology + "\",\"seed\":" + std::to_string(seed) +
           ",\"set\":{\"placer.maxIters\":" + std::to_string(max_iters) +
           "},\"layout\":true" + extra + "}";
}

/** Serial reference for the bitwise contract: one-shot, 1 thread. */
std::string
serialLayout(const Topology &topo, std::uint64_t seed, int max_iters)
{
    FlowParams params;
    params.placer.seed = seed;
    params.placer.maxIters = max_iters;
    params.placer.threads = 1;
    return layoutJson(QplacerFlow(params).run(topo).netlist).serialize();
}

TEST(Server, ConcurrentJobsBitwiseIdenticalToSerial)
{
    constexpr int kJobs = 8;
    constexpr int kIters = 60;

    ServerOptions options;
    options.workers = kJobs; // All jobs genuinely in flight at once.
    Loopback client(options);
    for (int j = 0; j < kJobs; ++j)
        EXPECT_TRUE(client.send(submitLine(
            "job" + std::to_string(j), "grid3x3",
            static_cast<std::uint64_t>(1 + j), kIters)));
    client.server().drain();

    const Topology topo = makeGrid(3, 3);
    for (int j = 0; j < kJobs; ++j) {
        const JsonValue result =
            client.resultFor("job" + std::to_string(j));
        const JsonValue *status = result.find("report")->find("status");
        ASSERT_EQ(status->find("code")->asString(), "ok");
        // Exact-literal serialization makes string equality bitwise
        // position equality.
        ASSERT_NE(result.find("layout"), nullptr);
        EXPECT_EQ(result.find("layout")->serialize(),
                  serialLayout(topo, static_cast<std::uint64_t>(1 + j),
                               kIters))
            << "job" << j;
    }
    EXPECT_EQ(client.server().jobsCompleted(), kJobs);
}

TEST(Server, SessionsStayWarmAcrossJobs)
{
    Loopback client; // One worker, reused for every job.
    for (int j = 0; j < 3; ++j)
        EXPECT_TRUE(client.send(
            submitLine("warm" + std::to_string(j), "grid3x3", 5, 40)));
    client.server().drain();

    // Same seed through the same warm session: identical layouts.
    const std::string first =
        client.resultFor("warm0").find("layout")->serialize();
    for (int j = 1; j < 3; ++j)
        EXPECT_EQ(client.resultFor("warm" + std::to_string(j))
                      .find("layout")
                      ->serialize(),
                  first);
}

TEST(Server, CancelRunningJob)
{
    Loopback client;
    // A job big enough to still be mid-placement when we cancel.
    EXPECT_TRUE(client.send(submitLine("slow", "grid5x5", 1, 4000,
                                       ",\"progress\":1")));
    ASSERT_TRUE(client.waitFor([](const std::vector<JsonValue> &rs) {
        for (const JsonValue &r : rs) {
            const JsonValue *e = r.find("event");
            if (e && e->asString() == "iteration")
                return true;
        }
        return false;
    }));
    EXPECT_TRUE(client.server().cancel("slow"));
    client.server().drain();

    const JsonValue result = client.resultFor("slow");
    EXPECT_EQ(result.find("report")
                  ->find("status")
                  ->find("code")
                  ->asString(),
              "cancelled");
    // A cancelled job produced no layout.
    EXPECT_EQ(result.find("layout"), nullptr);
}

TEST(Server, CancelQueuedJobNeverRuns)
{
    Loopback client; // One worker: the second job waits in the queue.
    EXPECT_TRUE(client.send(submitLine("first", "grid4x4", 1, 800)));
    EXPECT_TRUE(client.send(submitLine("second", "grid4x4", 2, 800)));
    EXPECT_TRUE(client.server().cancel("second"));
    client.server().drain();

    EXPECT_EQ(client.resultFor("second")
                  .find("report")
                  ->find("status")
                  ->find("code")
                  ->asString(),
              "cancelled");
    EXPECT_EQ(client.resultFor("first")
                  .find("report")
                  ->find("status")
                  ->find("code")
                  ->asString(),
              "ok");
    EXPECT_FALSE(client.server().cancel("second")); // Already gone.
}

TEST(Server, IncrementalEmptyDeltaReproducesPrior)
{
    Loopback client;
    EXPECT_TRUE(client.send(submitLine("base", "grid4x4", 3, 200)));
    client.server().drain();
    EXPECT_TRUE(client.send(submitLine("redo", "grid4x4", 3, 200,
                                       ",\"base\":\"base\"")));
    client.server().drain();

    const JsonValue redo = client.resultFor("redo");
    const JsonValue *report = redo.find("report");
    EXPECT_EQ(report->find("status")->find("code")->asString(), "ok");
    const JsonValue *inc = report->find("incremental");
    ASSERT_NE(inc, nullptr);
    EXPECT_TRUE(inc->find("reused_prior")->asBool());
    // Bitwise-identical to the base layout.
    EXPECT_EQ(redo.find("layout")->serialize(),
              client.resultFor("base").find("layout")->serialize());
}

TEST(Server, IncrementalSmallDeltaRelegalizes)
{
    Loopback client;
    EXPECT_TRUE(client.send(submitLine("base", "grid4x4", 3, 200)));
    client.server().drain();
    EXPECT_TRUE(client.send(
        submitLine("delta", "grid4x4", 3, 200,
                   ",\"base\":\"base\",\"dirty_qubits\":[0]")));
    client.server().drain();

    const JsonValue result = client.resultFor("delta");
    const JsonValue *report = result.find("report");
    EXPECT_EQ(report->find("status")->find("code")->asString(), "ok");
    EXPECT_TRUE(report->find("legal")->find("legal")->asBool());
    const JsonValue *inc = report->find("incremental");
    ASSERT_NE(inc, nullptr);
    EXPECT_FALSE(inc->find("reused_prior")->asBool());
    EXPECT_GT(inc->find("dirty")->asInt(), 0);
}

TEST(Server, UnknownBaseReportsError)
{
    Loopback client;
    EXPECT_TRUE(client.send(submitLine("orphan", "grid3x3", 1, 40,
                                       ",\"base\":\"never-ran\"")));
    client.server().drain();
    EXPECT_EQ(client.count("error", "orphan"), 1);
    EXPECT_EQ(client.count("result", "orphan"), 0);
}

TEST(Server, RejectsBadRequestsAndStaysUp)
{
    Loopback client;
    EXPECT_TRUE(client.send("this is not json"));
    EXPECT_TRUE(client.send(R"({"type":"submit","id":"x"})"));
    EXPECT_TRUE(client.send(
        R"({"type":"submit","id":"x","topology":"tesseract9"})"));
    EXPECT_EQ(client.count("error"), 3);

    // Still healthy: a real job goes through.
    EXPECT_TRUE(client.send(submitLine("ok", "grid3x3", 1, 40)));
    client.server().drain();
    EXPECT_EQ(client.count("result", "ok"), 1);
}

TEST(Server, RejectsDuplicateActiveJobId)
{
    Loopback client;
    EXPECT_TRUE(client.send(submitLine("dup", "grid4x4", 1, 800)));
    EXPECT_TRUE(client.send(submitLine("dup", "grid4x4", 1, 800)));
    client.server().drain();
    EXPECT_EQ(client.count("error", "dup"), 1);
    EXPECT_EQ(client.count("result", "dup"), 1);

    // A completed id may be reused; the new layout replaces the prior.
    EXPECT_TRUE(client.send(submitLine("dup", "grid4x4", 2, 800)));
    client.server().drain();
    EXPECT_EQ(client.count("result", "dup"), 2);
}

TEST(Server, PingCancelErrorsAndShutdown)
{
    Loopback client;
    EXPECT_TRUE(client.send(R"({"type":"ping"})"));
    EXPECT_EQ(client.count("pong"), 1);
    EXPECT_TRUE(client.send(R"({"type":"cancel","id":"ghost"})"));
    EXPECT_EQ(client.count("error"), 1);

    EXPECT_TRUE(client.send(submitLine("last", "grid3x3", 1, 40)));
    // shutdown drains, answers bye, and tells the transport to stop.
    EXPECT_FALSE(client.send(R"({"type":"shutdown"})"));
    EXPECT_EQ(client.count("bye"), 1);
    EXPECT_EQ(client.count("result", "last"), 1);
}

TEST(Server, PriorStoreIsLruNotFifo)
{
    ServerOptions options;
    options.resultCacheCap = 3;
    Loopback client(options); // One worker: strict queue order.

    EXPECT_TRUE(client.send(submitLine("base", "grid3x3", 3, 60)));
    // Churn rounds: every round captures two new priors (the unrelated
    // job and the incremental job itself) while re-using "base". Under
    // FIFO eviction the cap-3 store drops "base" in the second round
    // even though it is the hottest entry; promote-on-use (LRU) keeps
    // it resident through arbitrary churn.
    for (int round = 0; round < 4; ++round) {
        EXPECT_TRUE(client.send(submitLine(
            "churn" + std::to_string(round), "grid3x3",
            static_cast<std::uint64_t>(10 + round), 60)));
        EXPECT_TRUE(client.send(submitLine("use" + std::to_string(round),
                                           "grid3x3", 3, 60,
                                           ",\"base\":\"base\"")));
    }
    client.server().drain();

    EXPECT_EQ(client.count("error"), 0);
    for (int round = 0; round < 4; ++round) {
        const JsonValue result =
            client.resultFor("use" + std::to_string(round));
        const JsonValue *report = result.find("report");
        EXPECT_EQ(report->find("status")->find("code")->asString(), "ok");
        const JsonValue *inc = report->find("incremental");
        ASSERT_NE(inc, nullptr);
        EXPECT_TRUE(inc->find("reused_prior")->asBool())
            << "round " << round;
    }
}

TEST(Server, PortfolioSubmitReportsWinnerBitwise)
{
    constexpr int kIters = 100;
    Loopback client;
    EXPECT_TRUE(client.send(submitLine(
        "folio", "grid3x3", 1, kIters, ",\"portfolio\":{\"seeds\":3}")));
    client.server().drain();

    const JsonValue result = client.resultFor("folio");
    const JsonValue *report = result.find("report");
    ASSERT_EQ(report->find("status")->find("code")->asString(), "ok");
    const JsonValue *portfolio = report->find("portfolio");
    ASSERT_NE(portfolio, nullptr);
    EXPECT_EQ(portfolio->find("seeds")->asInt(), 3);
    const std::uint64_t winner_seed = static_cast<std::uint64_t>(
        portfolio->find("winner_seed")->asInt());
    EXPECT_GE(winner_seed, 1u);
    EXPECT_LE(winner_seed, 3u);

    // The served layout is the winning candidate's, bitwise-identical
    // to a serial run of that seed.
    ASSERT_NE(result.find("layout"), nullptr);
    EXPECT_EQ(result.find("layout")->serialize(),
              serialLayout(makeGrid(3, 3), winner_seed, kIters));
}

TEST(Server, PortfolioAndBaseAreMutuallyExclusive)
{
    Loopback client;
    EXPECT_TRUE(client.send(submitLine("base", "grid3x3", 1, 40)));
    client.server().drain();
    EXPECT_TRUE(client.send(submitLine(
        "both", "grid3x3", 1, 40,
        ",\"base\":\"base\",\"portfolio\":{\"seeds\":2}")));
    client.server().drain();
    EXPECT_EQ(client.count("error", "both"), 1);
    EXPECT_EQ(client.count("result", "both"), 0);
}

TEST(Server, ProgressStreamingHonorsProgressEvery)
{
    Loopback client;
    EXPECT_TRUE(client.send(submitLine("silent", "grid3x3", 1, 60)));
    EXPECT_TRUE(client.send(submitLine("stages", "grid3x3", 1, 60,
                                       ",\"progress\":0")));
    client.server().drain();

    EXPECT_EQ(client.count("progress", "silent"), 0);
    // Stage events only: begin+end per stage, no iteration events.
    EXPECT_GE(client.count("progress", "stages"), 2 * 5);
    for (const JsonValue &r : client.responses()) {
        const JsonValue *e = r.find("event");
        ASSERT_TRUE(!e || e->asString() != "iteration");
    }
}

} // namespace
} // namespace qplacer
