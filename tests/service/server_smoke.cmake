# CTest script: drive qplacer_server over stdin/stdout end to end.
# Invoked as:
#   cmake -DQPLACER_SERVER=<path> -DWORK_DIR=<dir> -P server_smoke.cmake
#
# Feeds a canned qplacer.serve/1 session -- ping, two jobs (the second
# an incremental re-place of the first), shutdown -- and validates the
# response stream: hello first, acks, both results ok, reused_prior on
# the incremental one, bye last, and nothing but JSON on stdout.

if(NOT QPLACER_SERVER OR NOT WORK_DIR)
    message(FATAL_ERROR "server_smoke.cmake needs -DQPLACER_SERVER and -DWORK_DIR")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(requests "${WORK_DIR}/requests.ndjson")
file(WRITE "${requests}" "\
{\"type\":\"ping\"}
{\"type\":\"submit\",\"id\":\"cold\",\"topology\":\"grid3x3\",\"seed\":3,\"set\":{\"placer.maxIters\":120},\"layout\":true}
{\"type\":\"submit\",\"id\":\"warm\",\"topology\":\"grid3x3\",\"seed\":3,\"set\":{\"placer.maxIters\":120},\"layout\":true,\"base\":\"cold\"}
{\"type\":\"shutdown\"}
")

# One worker keeps the stream strictly ordered: the incremental job
# cannot start before its base finished.
execute_process(
    COMMAND "${QPLACER_SERVER}" --workers 1 --quiet
    INPUT_FILE "${requests}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    TIMEOUT 240)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "qplacer_server exited ${rc}\nstdout:\n${out}\nstderr:\n${err}")
endif()

string(REPLACE "\n" ";" lines "${out}")
list(FILTER lines EXCLUDE REGEX "^$")
list(LENGTH lines line_count)
if(line_count LESS 6)
    message(FATAL_ERROR "expected >= 6 response lines, got ${line_count}:\n${out}")
endif()

# Every stdout line is a JSON object; no stray logging.
foreach(line IN LISTS lines)
    if(NOT line MATCHES "^\\{.*\\}$")
        message(FATAL_ERROR "non-JSON line on stdout: ${line}")
    endif()
endforeach()

list(GET lines 0 first)
if(NOT first MATCHES "\"type\":\"hello\"")
    message(FATAL_ERROR "stream does not open with hello: ${first}")
endif()
if(NOT first MATCHES "\"schema\":\"qplacer.serve/1\"")
    message(FATAL_ERROR "hello does not carry the schema id: ${first}")
endif()
list(GET lines -1 last)
if(NOT last MATCHES "\"type\":\"bye\"")
    message(FATAL_ERROR "stream does not close with bye: ${last}")
endif()
if(NOT last MATCHES "\"jobs\":2")
    message(FATAL_ERROR "bye does not report 2 drained jobs: ${last}")
endif()

if(NOT out MATCHES "\"type\":\"pong\"")
    message(FATAL_ERROR "ping was not answered:\n${out}")
endif()

# Both jobs succeeded; the incremental one reused the prior layout.
set(cold_result "")
set(warm_result "")
foreach(line IN LISTS lines)
    if(line MATCHES "\"type\":\"result\"" AND line MATCHES "\"id\":\"cold\"")
        set(cold_result "${line}")
    endif()
    if(line MATCHES "\"type\":\"result\"" AND line MATCHES "\"id\":\"warm\"")
        set(warm_result "${line}")
    endif()
endforeach()
foreach(result IN ITEMS "${cold_result}" "${warm_result}")
    if(NOT result MATCHES "\"code\":\"ok\"")
        message(FATAL_ERROR "job did not finish ok: ${result}\n${out}")
    endif()
    if(NOT result MATCHES "\"layout\":\\[")
        message(FATAL_ERROR "result carries no layout: ${result}")
    endif()
endforeach()
if(NOT warm_result MATCHES "\"reused_prior\":true")
    message(FATAL_ERROR "incremental job did not reuse the prior:\n${warm_result}")
endif()

# Empty delta: the warm layout must equal the cold one bitwise. The
# layout array is the final member of a result line, so a greedy tail
# match captures it whole.
string(REGEX MATCH "\"layout\":\\[.*$" cold_layout "${cold_result}")
string(REGEX MATCH "\"layout\":\\[.*$" warm_layout "${warm_result}")
if(NOT cold_layout STREQUAL warm_layout)
    message(FATAL_ERROR "incremental layout diverged from its base")
endif()

message(STATUS "server_smoke: OK")
