/**
 * @file
 * Production-hardening tests over the in-process loopback: overload
 * shedding with structured backoff, per-job and default deadlines
 * reporting "deadline_exceeded", the shutdown-vs-submit race, load
 * reporting in pong, failpoint request gating + injected admission
 * failures, and crash-safe prior persistence across a server restart.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/protocol.hpp"
#include "service/server.hpp"
#include "util/failpoint.hpp"

namespace qplacer {
namespace {

/** RAII teardown: no test may leak armed failpoints into the next. */
struct FailpointGuard
{
    FailpointGuard() { Failpoints::instance().disarmAll(); }
    ~FailpointGuard() { Failpoints::instance().disarmAll(); }
};

/** In-process client: sends lines, collects every response. */
class Loopback
{
  public:
    explicit Loopback(ServerOptions options = {})
        : server_(std::move(options))
    {
    }

    PlacementServer &server() { return server_; }

    bool
    send(const std::string &line)
    {
        return server_.handleLine(line, [this](const JsonValue &response) {
            std::lock_guard<std::mutex> lock(mu_);
            responses_.push_back(response);
        });
    }

    std::vector<JsonValue>
    responses() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return responses_;
    }

    /** The "result" response for @p id; fails the test when absent. */
    JsonValue
    resultFor(const std::string &id) const
    {
        for (const JsonValue &r : responses()) {
            const JsonValue *type = r.find("type");
            const JsonValue *rid = r.find("id");
            if (type && type->asString() == "result" && rid &&
                rid->asString() == id)
                return r;
        }
        ADD_FAILURE() << "no result for job '" << id << "'";
        return JsonValue::null();
    }

    /** First "error" response for @p id; null when absent. */
    JsonValue
    errorFor(const std::string &id) const
    {
        for (const JsonValue &r : responses()) {
            const JsonValue *type = r.find("type");
            const JsonValue *rid = r.find("id");
            if (type && type->asString() == "error" && rid &&
                rid->asString() == id)
                return r;
        }
        return JsonValue::null();
    }

    int
    count(const std::string &type, const std::string &id = "") const
    {
        int n = 0;
        for (const JsonValue &r : responses()) {
            const JsonValue *t = r.find("type");
            const JsonValue *rid = r.find("id");
            if (t && t->asString() == type &&
                (id.empty() || (rid && rid->asString() == id)))
                ++n;
        }
        return n;
    }

    /** Last "pong" response; fails the test when absent. */
    JsonValue
    lastPong() const
    {
        const auto all = responses();
        for (auto it = all.rbegin(); it != all.rend(); ++it) {
            const JsonValue *type = it->find("type");
            if (type && type->asString() == "pong")
                return *it;
        }
        ADD_FAILURE() << "no pong received";
        return JsonValue::null();
    }

  private:
    PlacementServer server_;
    mutable std::mutex mu_;
    std::vector<JsonValue> responses_;
};

std::string
submitLine(const std::string &id, const std::string &topology,
           std::uint64_t seed, int max_iters,
           const std::string &extra = "")
{
    return "{\"type\":\"submit\",\"id\":\"" + id + "\",\"topology\":\"" +
           topology + "\",\"seed\":" + std::to_string(seed) +
           ",\"set\":{\"placer.maxIters\":" + std::to_string(max_iters) +
           "},\"layout\":true" + extra + "}";
}

std::string
statusCode(const JsonValue &result)
{
    return result.find("report")
        ->find("status")
        ->find("code")
        ->asString();
}

/** A scratch state directory, deleted on scope exit. */
struct StateDir
{
    StateDir()
    {
        path = (std::filesystem::temp_directory_path() /
                ("qplacer_robust_" +
                 std::string(::testing::UnitTest::GetInstance()
                                 ->current_test_info()
                                 ->name())))
                   .string();
        std::filesystem::remove_all(path);
    }
    ~StateDir() { std::filesystem::remove_all(path); }

    std::string path;
};

TEST(Robustness, OverloadShedsWithStructuredBackoff)
{
    FailpointGuard guard;
    // Hold the single worker at pickup so the queue verifiably fills.
    ASSERT_TRUE(Failpoints::instance().arm("server.worker_pickup",
                                           "delay(400)"));
    ServerOptions options;
    options.workers = 1;
    options.maxQueue = 1;
    Loopback client(options);

    EXPECT_TRUE(client.send(submitLine("run", "grid3x3", 1, 40)));
    // Wait until the (delayed) worker owns "run" so the next submit
    // deterministically occupies the single queue slot.
    for (int i = 0; i < 200 && client.server().activeJobs() == 0; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_EQ(client.server().activeJobs(), 1);
    EXPECT_TRUE(client.send(submitLine("wait", "grid3x3", 2, 40)));
    EXPECT_TRUE(client.send(submitLine("shed", "grid3x3", 3, 40)));
    Failpoints::instance().disarmAll();

    const JsonValue rejection = client.errorFor("shed");
    ASSERT_FALSE(rejection.isNull()) << "submit was not shed";
    EXPECT_EQ(rejection.find("code")->asString(), "overloaded");
    EXPECT_GE(rejection.find("queue_depth")->asInt(), 1);
    ASSERT_NE(rejection.find("retry_after_ms"), nullptr);
    EXPECT_GT(rejection.find("retry_after_ms")->asDouble(), 0.0);

    // The accepted jobs are unaffected by the shed one.
    client.server().drain();
    EXPECT_EQ(statusCode(client.resultFor("run")), "ok");
    EXPECT_EQ(statusCode(client.resultFor("wait")), "ok");
    EXPECT_EQ(client.count("result", "shed"), 0);
}

TEST(Robustness, PerJobDeadlineReportsDeadlineExceeded)
{
    Loopback client;
    // A job far larger than its 25 ms execution budget.
    EXPECT_TRUE(client.send(submitLine("late", "grid5x5", 1, 4000,
                                       ",\"deadline_ms\":25")));
    client.server().drain();

    const JsonValue result = client.resultFor("late");
    EXPECT_EQ(statusCode(result), "deadline_exceeded");
    EXPECT_EQ(result.find("layout"), nullptr);
    // A deadline is not a client cancel: the code is distinct.
    EXPECT_NE(statusCode(result), "cancelled");
}

TEST(Robustness, DefaultDeadlineAppliesWhenJobCarriesNone)
{
    ServerOptions options;
    options.defaultDeadlineMs = 25.0;
    Loopback client(options);
    EXPECT_TRUE(client.send(submitLine("late", "grid5x5", 1, 4000)));
    // A job under its deadline still completes normally.
    EXPECT_TRUE(client.send(submitLine("fast", "grid3x3", 1, 10,
                                       ",\"deadline_ms\":60000")));
    client.server().drain();

    EXPECT_EQ(statusCode(client.resultFor("late")), "deadline_exceeded");
    EXPECT_EQ(statusCode(client.resultFor("fast")), "ok");
}

TEST(Robustness, ClientCancelStillReportsCancelled)
{
    // Regression guard for the deadline rewrite: a *user* cancel of a
    // deadlined job that never hit its deadline stays "cancelled".
    Loopback client;
    EXPECT_TRUE(client.send(submitLine("slow", "grid5x5", 1, 4000,
                                       ",\"deadline_ms\":600000")));
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_TRUE(client.server().cancel("slow"));
    client.server().drain();
    EXPECT_EQ(statusCode(client.resultFor("slow")), "cancelled");
}

TEST(Robustness, SubmitAfterShutdownIsSheddeterministically)
{
    Loopback client;
    EXPECT_TRUE(client.send(submitLine("before", "grid3x3", 1, 40)));
    EXPECT_FALSE(client.send(R"({"type":"shutdown"})"));
    EXPECT_EQ(client.count("bye"), 1);

    // The race fix: a submit landing after shutdown gets a structured
    // rejection, never a silently-dropped job.
    EXPECT_TRUE(client.send(submitLine("after", "grid3x3", 2, 40)));
    const JsonValue rejection = client.errorFor("after");
    ASSERT_FALSE(rejection.isNull());
    EXPECT_EQ(rejection.find("code")->asString(), "shutting_down");
    EXPECT_EQ(client.count("ack", "after"), 0);
    EXPECT_EQ(client.count("result", "after"), 0);
    EXPECT_EQ(client.count("result", "before"), 1);
}

TEST(Robustness, SubmitDuringShutdownDrainIsShed)
{
    FailpointGuard guard;
    ASSERT_TRUE(Failpoints::instance().arm("server.worker_pickup",
                                           "delay(300)"));
    Loopback client;
    EXPECT_TRUE(client.send(submitLine("busy", "grid3x3", 1, 40)));

    // Shutdown blocks in drain() while "busy" runs; a submit racing it
    // must shed, not enqueue behind the drain.
    std::thread closer(
        [&client] { client.send(R"({"type":"shutdown"})"); });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_TRUE(client.send(submitLine("racer", "grid3x3", 2, 40)));
    closer.join();
    Failpoints::instance().disarmAll();

    const JsonValue rejection = client.errorFor("racer");
    ASSERT_FALSE(rejection.isNull());
    EXPECT_EQ(rejection.find("code")->asString(), "shutting_down");
    EXPECT_EQ(client.count("result", "busy"), 1);
    EXPECT_EQ(client.count("bye"), 1);
}

TEST(Robustness, PongReportsQueueDepthAndActiveJobs)
{
    FailpointGuard guard;
    Loopback client;
    EXPECT_TRUE(client.send(R"({"type":"ping"})"));
    {
        const JsonValue pong = client.lastPong();
        EXPECT_EQ(pong.find("queue_depth")->asInt(), 0);
        EXPECT_EQ(pong.find("active_jobs")->asInt(), 0);
    }

    ASSERT_TRUE(Failpoints::instance().arm("server.worker_pickup",
                                           "delay(300)"));
    EXPECT_TRUE(client.send(submitLine("busy", "grid3x3", 1, 40)));
    EXPECT_TRUE(client.send(R"({"type":"ping"})"));
    {
        // The job is either still queued or held at pickup; either
        // way the load is visible.
        const JsonValue pong = client.lastPong();
        EXPECT_EQ(pong.find("queue_depth")->asInt() +
                      pong.find("active_jobs")->asInt(),
                  1);
    }
    Failpoints::instance().disarmAll();
    client.server().drain();
    EXPECT_TRUE(client.send(R"({"type":"ping"})"));
    const JsonValue pong = client.lastPong();
    EXPECT_EQ(pong.find("queue_depth")->asInt(), 0);
    EXPECT_EQ(pong.find("active_jobs")->asInt(), 0);
}

TEST(Robustness, FailpointRequestsAreGated)
{
    FailpointGuard guard;
    {
        Loopback client; // Default: failpoints disabled.
        EXPECT_TRUE(client.send(
            R"({"type":"failpoint","id":"f1","site":"server.queue_admission","action":"error"})"));
        const JsonValue rejection = client.errorFor("f1");
        ASSERT_FALSE(rejection.isNull());
        EXPECT_EQ(rejection.find("code")->asString(),
                  "failpoints_disabled");
        EXPECT_FALSE(Failpoints::anyArmed());
    }

    ServerOptions options;
    options.enableFailpoints = true;
    Loopback client(options);
    EXPECT_TRUE(client.send(
        R"({"type":"failpoint","id":"f2","site":"server.queue_admission","action":"error"})"));
    EXPECT_EQ(client.count("ack", "f2"), 1);

    // The armed site injects a structured admission failure.
    EXPECT_TRUE(client.send(submitLine("doomed", "grid3x3", 1, 40)));
    const JsonValue injected = client.errorFor("doomed");
    ASSERT_FALSE(injected.isNull());
    EXPECT_EQ(injected.find("code")->asString(), "injected");
    EXPECT_EQ(client.count("result", "doomed"), 0);

    // Disarming over the wire restores normal service.
    EXPECT_TRUE(client.send(
        R"({"type":"failpoint","id":"f3","site":"server.queue_admission","action":"off"})"));
    EXPECT_TRUE(client.send(submitLine("fine", "grid3x3", 1, 40)));
    client.server().drain();
    EXPECT_EQ(statusCode(client.resultFor("fine")), "ok");

    // A malformed action is rejected with a parse error.
    EXPECT_TRUE(client.send(
        R"({"type":"failpoint","id":"f4","site":"x","action":"delay"})"));
    EXPECT_EQ(client.count("ack", "f4"), 0);
}

TEST(Robustness, InjectedCaptureFailureDegradesGracefully)
{
    FailpointGuard guard;
    Loopback client;
    ASSERT_TRUE(
        Failpoints::instance().arm("prior_store.capture", "error"));
    EXPECT_TRUE(client.send(submitLine("base", "grid3x3", 1, 40)));
    client.server().drain();
    Failpoints::instance().disarmAll();

    // The job itself succeeded; only the cached prior is missing, so
    // an incremental follow-up reports the usual unknown-base error.
    EXPECT_EQ(statusCode(client.resultFor("base")), "ok");
    EXPECT_TRUE(client.send(submitLine("redo", "grid3x3", 1, 40,
                                       ",\"base\":\"base\"")));
    client.server().drain();
    ASSERT_FALSE(client.errorFor("redo").isNull());
    EXPECT_EQ(client.count("result", "redo"), 0);
}

TEST(Robustness, PriorsSurviveServerRestartBitwise)
{
    StateDir dir;
    ServerOptions options;
    options.stateDir = dir.path;
    std::string baseLayout;
    {
        Loopback client(options);
        EXPECT_TRUE(client.send(submitLine("base", "grid4x4", 3, 200)));
        client.server().drain();
        const JsonValue result = client.resultFor("base");
        ASSERT_EQ(statusCode(result), "ok");
        baseLayout = result.find("layout")->serialize();
    }

    // A new server process (fresh PlacementServer) over the same state
    // directory: the acked prior is recoverable and an empty-delta
    // re-place reproduces it bitwise.
    Loopback restarted(options);
    EXPECT_EQ(restarted.server().priorStore().loadedFromDisk(), 1);
    EXPECT_TRUE(restarted.send(submitLine("redo", "grid4x4", 3, 200,
                                          ",\"base\":\"base\"")));
    restarted.server().drain();
    const JsonValue redo = restarted.resultFor("redo");
    ASSERT_EQ(statusCode(redo), "ok");
    const JsonValue *inc = redo.find("report")->find("incremental");
    ASSERT_NE(inc, nullptr);
    EXPECT_TRUE(inc->find("reused_prior")->asBool());
    EXPECT_EQ(redo.find("layout")->serialize(), baseLayout);
}

TEST(Robustness, DeadlineParseRejectsBadValues)
{
    Loopback client;
    EXPECT_TRUE(client.send(submitLine("neg", "grid3x3", 1, 40,
                                       ",\"deadline_ms\":-5")));
    EXPECT_TRUE(client.send(submitLine("str", "grid3x3", 1, 40,
                                       ",\"deadline_ms\":\"soon\"")));
    EXPECT_EQ(client.count("error"), 2);
    EXPECT_EQ(client.count("ack"), 0);
}

} // namespace
} // namespace qplacer
