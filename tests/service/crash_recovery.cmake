# CTest script: the crash-recovery property, end to end on the real
# daemon. Invoked as:
#   cmake -DQPLACER_SERVER=<path> -DWORK_DIR=<dir> -P crash_recovery.cmake
#
# For each persistence failpoint site (the journal append and the
# snapshot write), three daemon runs over one --state-dir:
#
#   1. clean:   job "a" completes; its layout is the reference.
#   2. crash:   QPLACER_FAILPOINTS=<site>=crash kills the process
#               (std::_Exit, the kill -9 stand-in) while job "b"'s
#               layout is being persisted; the daemon must die hard.
#   3. recover: a fresh daemon replays the state directory and an
#               empty-delta re-place of "a" reproduces its layout
#               bitwise -- the acked-prior-survives-crash property.
#
# A final run checks the bounded transport: an oversized request line
# is answered with a structured "line_too_long" error and the daemon
# keeps serving.

if(NOT QPLACER_SERVER OR NOT WORK_DIR)
    message(FATAL_ERROR "crash_recovery.cmake needs -DQPLACER_SERVER and -DWORK_DIR")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(submit_a "{\"type\":\"submit\",\"id\":\"a\",\"topology\":\"grid3x3\",\"seed\":3,\"set\":{\"placer.maxIters\":120},\"layout\":true}")
set(submit_b "{\"type\":\"submit\",\"id\":\"b\",\"topology\":\"grid3x3\",\"seed\":4,\"set\":{\"placer.maxIters\":120},\"layout\":true}")
set(submit_redo "{\"type\":\"submit\",\"id\":\"redo\",\"topology\":\"grid3x3\",\"seed\":3,\"set\":{\"placer.maxIters\":120},\"layout\":true,\"base\":\"a\"}")
set(shutdown_req "{\"type\":\"shutdown\"}")

foreach(site IN ITEMS "prior_store.append" "prior_store.snapshot")
    string(REPLACE "." "_" tag "${site}")
    set(state "${WORK_DIR}/state_${tag}")
    set(extra_flags "")
    if(site STREQUAL "prior_store.snapshot")
        # Snapshot on every append so job "b" reaches the site.
        set(extra_flags --snapshot-every 1)
    endif()

    # --- Run 1: clean; job "a" is acked and durable. ---
    set(requests "${WORK_DIR}/run1_${tag}.ndjson")
    file(WRITE "${requests}" "${submit_a}\n${shutdown_req}\n")
    execute_process(
        COMMAND "${QPLACER_SERVER}" --workers 1 --quiet
                --state-dir "${state}" ${extra_flags}
        INPUT_FILE "${requests}"
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err
        TIMEOUT 240)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "[${site}] clean run exited ${rc}\n${out}\n${err}")
    endif()
    set(a_result "")
    string(REPLACE "\n" ";" lines "${out}")
    foreach(line IN LISTS lines)
        if(line MATCHES "\"type\":\"result\"" AND line MATCHES "\"id\":\"a\"")
            set(a_result "${line}")
        endif()
    endforeach()
    if(NOT a_result MATCHES "\"code\":\"ok\"")
        message(FATAL_ERROR "[${site}] job a did not finish ok:\n${out}")
    endif()
    string(REGEX MATCH "\"layout\":\\[.*$" a_layout "${a_result}")
    if(a_layout STREQUAL "")
        message(FATAL_ERROR "[${site}] job a carries no layout:\n${a_result}")
    endif()

    # --- Run 2: the crash. The daemon must die with a non-zero code
    # while persisting job "b", after "b"'s flow completed. ---
    set(requests "${WORK_DIR}/run2_${tag}.ndjson")
    file(WRITE "${requests}" "${submit_b}\n${shutdown_req}\n")
    execute_process(
        COMMAND "${CMAKE_COMMAND}" -E env "QPLACER_FAILPOINTS=${site}=crash"
                "${QPLACER_SERVER}" --workers 1 --quiet --enable-failpoints
                --state-dir "${state}" ${extra_flags}
        INPUT_FILE "${requests}"
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err
        TIMEOUT 240)
    if(rc EQUAL 0)
        message(FATAL_ERROR "[${site}] crash run exited cleanly; failpoint never fired\n${out}\n${err}")
    endif()
    if(NOT out MATCHES "\"type\":\"ack\".*\"id\":\"b\"" AND NOT out MATCHES "\"id\":\"b\".*\"type\":\"ack\"")
        if(NOT out MATCHES "\"type\":\"ack\"")
            message(FATAL_ERROR "[${site}] job b was never acked before the crash\n${out}")
        endif()
    endif()

    # --- Run 3: recovery. "a" must re-place bitwise from disk. ---
    set(requests "${WORK_DIR}/run3_${tag}.ndjson")
    file(WRITE "${requests}" "${submit_redo}\n${shutdown_req}\n")
    execute_process(
        COMMAND "${QPLACER_SERVER}" --workers 1 --quiet
                --state-dir "${state}" ${extra_flags}
        INPUT_FILE "${requests}"
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err
        TIMEOUT 240)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "[${site}] recovery run exited ${rc}\n${out}\n${err}")
    endif()
    set(redo_result "")
    string(REPLACE "\n" ";" lines "${out}")
    foreach(line IN LISTS lines)
        if(line MATCHES "\"type\":\"result\"" AND line MATCHES "\"id\":\"redo\"")
            set(redo_result "${line}")
        endif()
    endforeach()
    if(NOT redo_result MATCHES "\"code\":\"ok\"")
        message(FATAL_ERROR "[${site}] recovery re-place failed:\n${out}\n${err}")
    endif()
    if(NOT redo_result MATCHES "\"reused_prior\":true")
        message(FATAL_ERROR "[${site}] recovered prior was not reused:\n${redo_result}")
    endif()
    string(REGEX MATCH "\"layout\":\\[.*$" redo_layout "${redo_result}")
    if(NOT redo_layout STREQUAL a_layout)
        message(FATAL_ERROR "[${site}] recovered layout diverged from the acked one")
    endif()
    message(STATUS "crash_recovery[${site}]: OK")
endforeach()

# --- Bounded transport: an oversized line gets a structured error and
# the daemon keeps answering. ---
string(REPEAT "x" 300 oversized)
set(requests "${WORK_DIR}/oversized.ndjson")
file(WRITE "${requests}" "${oversized}\n{\"type\":\"ping\"}\n${shutdown_req}\n")
execute_process(
    COMMAND "${QPLACER_SERVER}" --workers 1 --quiet --max-line-bytes 200
    INPUT_FILE "${requests}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    TIMEOUT 240)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "oversized-line run exited ${rc}\n${out}\n${err}")
endif()
if(NOT out MATCHES "\"code\":\"line_too_long\"")
    message(FATAL_ERROR "oversized line produced no line_too_long error:\n${out}")
endif()
if(NOT out MATCHES "\"type\":\"pong\"")
    message(FATAL_ERROR "daemon stopped serving after the oversized line:\n${out}")
endif()
if(NOT out MATCHES "\"type\":\"bye\"")
    message(FATAL_ERROR "daemon did not shut down cleanly:\n${out}")
endif()
message(STATUS "crash_recovery[line_too_long]: OK")
