#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "freq/assigner.hpp"
#include "io/layout_io.hpp"
#include "netlist/builder.hpp"
#include "topology/generators.hpp"

namespace qplacer {
namespace {

class LayoutIoTest : public ::testing::Test
{
  protected:
    void TearDown() override { std::remove(path_.c_str()); }

    Netlist
    build()
    {
        const Topology topo = makeGrid(2, 3);
        const auto freqs = FrequencyAssigner().assign(topo);
        return NetlistBuilder().build(topo, freqs);
    }

    std::string path_ = "test_layout_io.txt";
};

TEST_F(LayoutIoTest, RoundTripsPositions)
{
    Netlist original = build();
    // Scramble positions to non-trivial values.
    for (int i = 0; i < original.numInstances(); ++i)
        original.instance(i).pos = Vec2(13.5 * i + 1, 7.25 * i + 2);
    saveLayout(original, path_);

    Netlist restored = build();
    loadLayout(restored, path_);
    for (int i = 0; i < original.numInstances(); ++i) {
        EXPECT_DOUBLE_EQ(restored.instance(i).pos.x,
                         original.instance(i).pos.x);
        EXPECT_DOUBLE_EQ(restored.instance(i).pos.y,
                         original.instance(i).pos.y);
    }
    EXPECT_NEAR(restored.region().area(), original.region().area(),
                1e-3 * original.region().area());
}

TEST_F(LayoutIoTest, MismatchedNetlistIsFatal)
{
    const Netlist original = build();
    saveLayout(original, path_);

    const Topology other = makeGrid(3, 3);
    const auto freqs = FrequencyAssigner().assign(other);
    Netlist wrong = NetlistBuilder().build(other, freqs);
    EXPECT_THROW(loadLayout(wrong, path_), std::runtime_error);
}

TEST_F(LayoutIoTest, MissingFileIsFatal)
{
    Netlist nl = build();
    EXPECT_THROW(loadLayout(nl, "no_such_file.txt"),
                 std::runtime_error);
}

TEST_F(LayoutIoTest, MalformedHeaderIsFatal)
{
    {
        std::ofstream out(path_);
        out << "bogus 1 2 3\n";
    }
    Netlist nl = build();
    EXPECT_THROW(loadLayout(nl, path_), std::runtime_error);
}

} // namespace
} // namespace qplacer
