#include <gtest/gtest.h>

#include "freq/assigner.hpp"
#include "io/meander.hpp"
#include "legal/legalizer.hpp"
#include "netlist/builder.hpp"
#include "pipeline/flow.hpp"
#include "topology/generators.hpp"

namespace qplacer {
namespace {

TEST(Meander, PathLengthHelper)
{
    EXPECT_DOUBLE_EQ(pathLength({}), 0.0);
    EXPECT_DOUBLE_EQ(pathLength({{0, 0}}), 0.0);
    EXPECT_DOUBLE_EQ(pathLength({{0, 0}, {3, 4}, {3, 14}}), 15.0);
}

class MeanderOnLayout : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        const Topology topo = makeGrid(3, 3);
        flow_ = new FlowResult(
            QplacerFlow::runMode(topo, PlacerMode::Qplacer));
    }

    static void TearDownTestSuite() { delete flow_; }

    static FlowResult *flow_;
};

FlowResult *MeanderOnLayout::flow_ = nullptr;

TEST_F(MeanderOnLayout, EveryResonatorWireFits)
{
    // The partitioning arithmetic guarantees each chain reserves at
    // least the half-wave wire length (Section IV-B2).
    for (const Resonator &res : flow_->netlist.resonators()) {
        const MeanderPath path = routeMeander(flow_->netlist, res.id);
        EXPECT_TRUE(path.fits())
            << "resonator " << res.id << ": " << path.lengthUm
            << " um routed < " << path.targetUm << " um needed";
    }
}

TEST_F(MeanderOnLayout, PathConnectsBothQubits)
{
    const Resonator &res = flow_->netlist.resonators().front();
    const MeanderPath path = routeMeander(flow_->netlist, res.id);
    ASSERT_GE(path.points.size(), 2u);
    EXPECT_EQ(path.points.front(),
              flow_->netlist.instance(res.qubitA).pos);
    EXPECT_EQ(path.points.back(),
              flow_->netlist.instance(res.qubitB).pos);
}

TEST_F(MeanderOnLayout, SerpentineStaysInsideItsBlocks)
{
    const Resonator &res = flow_->netlist.resonators().front();
    const MeanderPath path = routeMeander(flow_->netlist, res.id);
    // Every interior vertex lies inside some block of this resonator
    // (endpoints are the qubit pads).
    for (std::size_t i = 1; i + 1 < path.points.size(); ++i) {
        bool inside = false;
        for (int seg : res.segments) {
            const Rect block =
                flow_->netlist.instance(seg).rect().inflated(1.0);
            if (block.contains(path.points[i])) {
                inside = true;
                break;
            }
        }
        EXPECT_TRUE(inside) << "vertex " << i << " escaped its blocks";
    }
}

TEST_F(MeanderOnLayout, FinerPitchYieldsLongerWire)
{
    const Resonator &res = flow_->netlist.resonators().front();
    const double coarse =
        routeMeander(flow_->netlist, res.id, 150.0).lengthUm;
    const double fine =
        routeMeander(flow_->netlist, res.id, 50.0).lengthUm;
    EXPECT_GT(fine, coarse);
}

TEST(Meander, InvalidPitchIsFatal)
{
    const Topology topo = makeGrid(2, 2);
    const auto freqs = FrequencyAssigner().assign(topo);
    const Netlist nl = NetlistBuilder().build(topo, freqs);
    EXPECT_THROW(routeMeander(nl, 0, 0.0), std::runtime_error);
}

} // namespace
} // namespace qplacer
