#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "freq/assigner.hpp"
#include "io/svg.hpp"
#include "netlist/builder.hpp"
#include "topology/generators.hpp"

namespace qplacer {
namespace {

Netlist
smallLayout()
{
    const Topology topo = makeGrid(2, 2);
    const auto freqs = FrequencyAssigner().assign(topo);
    return NetlistBuilder().build(topo, freqs);
}

TEST(Svg, DocumentIsWellFormedish)
{
    const std::string svg = layoutSvg(smallLayout());
    EXPECT_EQ(svg.rfind("<svg", 0), 0u);
    EXPECT_NE(svg.find("</svg>"), std::string::npos);
    // One rect per instance (plus padding outlines and background).
    const Netlist nl = smallLayout();
    std::size_t rects = 0;
    for (std::size_t pos = svg.find("<rect"); pos != std::string::npos;
         pos = svg.find("<rect", pos + 1)) {
        ++rects;
    }
    EXPECT_GE(rects, static_cast<std::size_t>(nl.numInstances()));
}

TEST(Svg, MeanderPolylinesPerResonator)
{
    const Netlist nl = smallLayout();
    const std::string svg = layoutSvg(nl);
    std::size_t polylines = 0;
    for (std::size_t pos = svg.find("<polyline");
         pos != std::string::npos; pos = svg.find("<polyline", pos + 1)) {
        ++polylines;
    }
    EXPECT_EQ(polylines, nl.resonators().size());
}

TEST(Svg, OptionsToggleFeatures)
{
    const Netlist nl = smallLayout();
    SvgOptions opts;
    opts.drawMeander = false;
    opts.drawLabels = false;
    const std::string svg = layoutSvg(nl, opts);
    EXPECT_EQ(svg.find("<polyline"), std::string::npos);
    EXPECT_EQ(svg.find("<text"), std::string::npos);
}

TEST(Svg, WritesFile)
{
    const std::string path = "test_layout.svg";
    writeLayoutSvg(smallLayout(), path);
    std::ifstream in(path);
    EXPECT_TRUE(in.good());
    std::string first;
    std::getline(in, first);
    EXPECT_EQ(first.rfind("<svg", 0), 0u);
    in.close();
    std::remove(path.c_str());
}

TEST(Svg, UnwritablePathIsFatal)
{
    EXPECT_THROW(
        writeLayoutSvg(smallLayout(), "/nonexistent_dir_xyz/x.svg"),
        std::runtime_error);
}

} // namespace
} // namespace qplacer
