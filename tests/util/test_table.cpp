#include <gtest/gtest.h>

#include "util/table.hpp"

namespace qplacer {
namespace {

TEST(TextTable, AlignsColumns)
{
    TextTable t;
    t.header({"name", "v"});
    t.row({"a", "1"});
    t.row({"longer", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Every rendered line before the last newline has aligned columns;
    // just verify the separator exists and rows appear in order.
    EXPECT_LT(out.find("name"), out.find("a "));
    EXPECT_LT(out.find("a "), out.find("longer"));
}

TEST(TextTable, NumFormatsPrecision)
{
    EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(TextTable, FidelityMatchesPaperStyle)
{
    EXPECT_EQ(TextTable::fidelity(0.5), "0.5000");
    EXPECT_EQ(TextTable::fidelity(5e-5), "<1e-4");
    EXPECT_EQ(TextTable::fidelity(1e-4), "0.0001");
}

TEST(TextTable, EmptyTableRenders)
{
    TextTable t;
    EXPECT_EQ(t.render(), "");
}

TEST(TextTable, RaggedRowsTolerated)
{
    TextTable t;
    t.header({"a", "b", "c"});
    t.row({"1"});
    t.row({"1", "2", "3"});
    const std::string out = t.render();
    EXPECT_NE(out.find("3"), std::string::npos);
}

} // namespace
} // namespace qplacer
