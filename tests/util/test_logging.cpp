#include <gtest/gtest.h>

#include "util/logging.hpp"

namespace qplacer {
namespace {

TEST(Logging, FatalThrowsRuntimeError)
{
    EXPECT_THROW(fatal("user error"), std::runtime_error);
}

TEST(Logging, PanicThrowsLogicError)
{
    EXPECT_THROW(panic("bug"), std::logic_error);
}

TEST(Logging, FatalMessageIsPreserved)
{
    try {
        fatal("the message");
        FAIL() << "fatal did not throw";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("the message"),
                  std::string::npos);
    }
}

TEST(Logging, StrConcatenatesMixedTypes)
{
    EXPECT_EQ(str("a=", 1, " b=", 2.5), "a=1 b=2.5");
    EXPECT_EQ(str(), "");
}

TEST(Logging, LevelFiltering)
{
    Logger &logger = Logger::instance();
    const LogLevel saved = logger.level();
    logger.setLevel(LogLevel::Silent);
    EXPECT_EQ(logger.level(), LogLevel::Silent);
    // No crash emitting below threshold.
    inform("hidden");
    warn("hidden");
    debug("hidden");
    logger.setLevel(saved);
}

} // namespace
} // namespace qplacer
