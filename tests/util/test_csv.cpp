#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.hpp"

namespace qplacer {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

class CsvTest : public ::testing::Test
{
  protected:
    void TearDown() override { std::remove(path_.c_str()); }
    std::string path_ = "test_csv_output.csv";
};

TEST_F(CsvTest, WritesHeaderAndRows)
{
    {
        CsvWriter csv(path_);
        csv.header({"a", "b"});
        csv.row({"1", "2"});
        csv.row({"3", "4"});
    }
    EXPECT_EQ(slurp(path_), "a,b\n1,2\n3,4\n");
}

TEST_F(CsvTest, RowWidthMismatchIsFatal)
{
    CsvWriter csv(path_);
    csv.header({"a", "b"});
    EXPECT_THROW(csv.row({"only-one"}), std::runtime_error);
}

TEST_F(CsvTest, EscapesSpecialCharacters)
{
    EXPECT_EQ(CsvWriter::cell(std::string("plain")), "plain");
    EXPECT_EQ(CsvWriter::cell(std::string("a,b")), "\"a,b\"");
    EXPECT_EQ(CsvWriter::cell(std::string("say \"hi\"")),
              "\"say \"\"hi\"\"\"");
}

TEST_F(CsvTest, NumericFormatting)
{
    EXPECT_EQ(CsvWriter::cell(1.5), "1.5");
    EXPECT_EQ(CsvWriter::cell(static_cast<long long>(42)), "42");
}

TEST(Csv, UnwritablePathIsFatal)
{
    EXPECT_THROW(CsvWriter("/nonexistent_dir_xyz/file.csv"),
                 std::runtime_error);
}

} // namespace
} // namespace qplacer
