/**
 * @file
 * ThreadPool: chunking determinism, serial fallback, reductions, and
 * error propagation.
 */

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "util/thread_pool.hpp"

using namespace qplacer;

TEST(ThreadPool, ResolveThreadCountHonorsExplicitRequests)
{
    EXPECT_EQ(ThreadPool::resolveThreadCount(1), 1);
    EXPECT_EQ(ThreadPool::resolveThreadCount(4), 4);
    EXPECT_EQ(ThreadPool::resolveThreadCount(ThreadPool::kMaxThreads + 50),
              ThreadPool::kMaxThreads);
}

TEST(ThreadPool, ResolveThreadCountAutoIsCappedAndPositive)
{
    const int automatic = ThreadPool::resolveThreadCount(0);
    EXPECT_GE(automatic, 1);
    EXPECT_LE(automatic, ThreadPool::kAutoThreadCap);
    EXPECT_EQ(ThreadPool::resolveThreadCount(-3), automatic);
}

TEST(ThreadPool, ChunkBoundsCoverRangeInOrder)
{
    for (const int chunks : {1, 2, 3, 7, 8}) {
        for (const std::size_t n : {std::size_t(0), std::size_t(1),
                                    std::size_t(5), std::size_t(64),
                                    std::size_t(1000)}) {
            EXPECT_EQ(ThreadPool::chunkBegin(n, chunks, 0), 0u);
            EXPECT_EQ(ThreadPool::chunkBegin(n, chunks, chunks), n);
            for (int c = 0; c < chunks; ++c) {
                EXPECT_LE(ThreadPool::chunkBegin(n, chunks, c),
                          ThreadPool::chunkBegin(n, chunks, c + 1));
            }
        }
    }
}

TEST(ThreadPool, ForChunksVisitsEveryIndexExactlyOnce)
{
    for (const int threads : {1, 2, 8}) {
        ThreadPool pool(threads);
        EXPECT_EQ(pool.threads(), threads);
        const std::size_t n = 137;
        std::vector<std::atomic<int>> visits(n);
        pool.forChunks(n, [&](int, std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i)
                visits[i].fetch_add(1);
        });
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(visits[i].load(), 1) << "index " << i;
    }
}

TEST(ThreadPool, ForChunksHandlesFewerItemsThanThreads)
{
    ThreadPool pool(8);
    std::vector<std::atomic<int>> visits(3);
    pool.forChunks(3, [&](int, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i)
            visits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(visits[i].load(), 1);
}

TEST(ThreadPool, NullPoolRunsSerially)
{
    std::vector<int> order;
    parallelForChunks(nullptr, 10,
                      [&](int chunk, std::size_t begin, std::size_t end) {
                          EXPECT_EQ(chunk, 0);
                          for (std::size_t i = begin; i < end; ++i)
                              order.push_back(static_cast<int>(i));
                      });
    std::vector<int> expected(10);
    std::iota(expected.begin(), expected.end(), 0);
    EXPECT_EQ(order, expected);
}

TEST(ThreadPool, ReduceIsDeterministicPerThreadCount)
{
    // Sums ill-conditioned enough that accumulation order matters in
    // the last bits: identical runs must agree exactly.
    const std::size_t n = 10000;
    std::vector<double> values(n);
    for (std::size_t i = 0; i < n; ++i)
        values[i] = (i % 2 ? 1.0 : -1.0) * 1e12 / (1.0 + i);

    auto sum_with = [&](ThreadPool *pool) {
        return parallelReduce(pool, n,
                              [&](std::size_t begin, std::size_t end) {
                                  double acc = 0.0;
                                  for (std::size_t i = begin; i < end; ++i)
                                      acc += values[i];
                                  return acc;
                              });
    };

    const double serial = sum_with(nullptr);
    for (const int threads : {2, 8}) {
        ThreadPool pool(threads);
        const double first = sum_with(&pool);
        const double second = sum_with(&pool);
        EXPECT_EQ(first, second) << threads << " threads";
        EXPECT_NEAR(first, serial, 1e-3 * std::abs(serial) + 1e-9);
    }
}

TEST(ThreadPool, ReusableAcrossManyRegions)
{
    ThreadPool pool(4);
    for (int round = 0; round < 200; ++round) {
        const double sum = parallelReduce(
            &pool, 100, [&](std::size_t begin, std::size_t end) {
                double acc = 0.0;
                for (std::size_t i = begin; i < end; ++i)
                    acc += static_cast<double>(i);
                return acc;
            });
        EXPECT_DOUBLE_EQ(sum, 4950.0);
    }
}

TEST(ThreadPool, BodyExceptionPropagatesToCaller)
{
    for (const int threads : {1, 4}) {
        ThreadPool pool(threads);
        EXPECT_THROW(
            pool.forChunks(100,
                           [&](int, std::size_t begin, std::size_t) {
                               if (begin == 0)
                                   throw std::runtime_error("chunk 0");
                           }),
            std::runtime_error);
        // The pool must still be usable afterwards.
        const double sum = parallelReduce(
            &pool, 10, [](std::size_t begin, std::size_t end) {
                return static_cast<double>(end - begin);
            });
        EXPECT_DOUBLE_EQ(sum, 10.0);
    }
}

TEST(ThreadPool, EmptyRangeDoesNothing)
{
    ThreadPool pool(4);
    bool called = false;
    pool.forChunks(0, [&](int, std::size_t, std::size_t) {
        called = true;
    });
    EXPECT_FALSE(called);
    EXPECT_DOUBLE_EQ(parallelReduce(&pool, 0,
                                    [](std::size_t, std::size_t) {
                                        return 1.0;
                                    }),
                     0.0);
}
