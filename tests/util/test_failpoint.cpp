/**
 * @file
 * Failpoint registry tests: spec parsing, the arm/disarm lifecycle,
 * the zero-cost disarmed fast path, delay semantics, and the
 * all-or-nothing environment-list arming. The crash action is
 * exercised out-of-process by the crash-recovery suite
 * (tests/service/crash_recovery.cmake), never here.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "util/failpoint.hpp"

namespace qplacer {
namespace {

/** RAII teardown: no test may leak armed sites into the next. */
struct FailpointGuard
{
    FailpointGuard() { Failpoints::instance().disarmAll(); }
    ~FailpointGuard() { Failpoints::instance().disarmAll(); }
};

TEST(Failpoint, DisarmedByDefault)
{
    FailpointGuard guard;
    EXPECT_FALSE(Failpoints::anyArmed());
    EXPECT_FALSE(QPLACER_FAILPOINT("some.site"));
    EXPECT_TRUE(Failpoints::instance().armed().empty());
}

TEST(Failpoint, ErrorActionFiresOnlyAtItsSite)
{
    FailpointGuard guard;
    ASSERT_TRUE(Failpoints::instance().arm("a.site", "error"));
    EXPECT_TRUE(Failpoints::anyArmed());
    EXPECT_TRUE(QPLACER_FAILPOINT("a.site"));
    EXPECT_TRUE(QPLACER_FAILPOINT("a.site")); // Sticky, not one-shot.
    EXPECT_FALSE(QPLACER_FAILPOINT("b.site"));

    Failpoints::instance().disarm("a.site");
    EXPECT_FALSE(QPLACER_FAILPOINT("a.site"));
    EXPECT_FALSE(Failpoints::anyArmed());
}

TEST(Failpoint, OffSpecDisarms)
{
    FailpointGuard guard;
    ASSERT_TRUE(Failpoints::instance().arm("a.site", "error"));
    ASSERT_TRUE(Failpoints::instance().arm("a.site", "off"));
    EXPECT_FALSE(QPLACER_FAILPOINT("a.site"));
    EXPECT_FALSE(Failpoints::anyArmed());
}

TEST(Failpoint, DelaySleepsThenContinues)
{
    FailpointGuard guard;
    ASSERT_TRUE(Failpoints::instance().arm("slow.site", "delay(30)"));
    const auto start = std::chrono::steady_clock::now();
    // Delay is not a failure: the caller proceeds normally.
    EXPECT_FALSE(QPLACER_FAILPOINT("slow.site"));
    const auto elapsed = std::chrono::duration_cast<
        std::chrono::milliseconds>(std::chrono::steady_clock::now() -
                                   start);
    EXPECT_GE(elapsed.count(), 25);
}

TEST(Failpoint, RejectsMalformedSpecs)
{
    FailpointGuard guard;
    std::string error;
    EXPECT_FALSE(Failpoints::instance().arm("s", "boom", &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(Failpoints::instance().arm("s", "delay(", &error));
    EXPECT_FALSE(Failpoints::instance().arm("s", "delay()", &error));
    EXPECT_FALSE(Failpoints::instance().arm("s", "delay(-1)", &error));
    EXPECT_FALSE(Failpoints::instance().arm("s", "delay(12x)", &error));
    EXPECT_FALSE(
        Failpoints::instance().arm("s", "delay(99999999)", &error));
    EXPECT_FALSE(Failpoints::instance().arm("", "error", &error));
    EXPECT_FALSE(Failpoints::anyArmed());
}

TEST(Failpoint, ArmedSnapshotIsSorted)
{
    FailpointGuard guard;
    ASSERT_TRUE(Failpoints::instance().arm("z.site", "error"));
    ASSERT_TRUE(Failpoints::instance().arm("a.site", "delay(5)"));
    const auto armed = Failpoints::instance().armed();
    ASSERT_EQ(armed.size(), 2u);
    EXPECT_EQ(armed[0].site, "a.site");
    EXPECT_EQ(armed[0].action, FailAction::Delay);
    EXPECT_EQ(armed[0].delayMs, 5);
    EXPECT_EQ(armed[1].site, "z.site");
    EXPECT_EQ(armed[1].action, FailAction::Error);
}

TEST(Failpoint, ListArmingIsAllOrNothing)
{
    FailpointGuard guard;
    std::string error;
    EXPECT_FALSE(Failpoints::instance().armFromList(
        "a.site=error;b.site=bogus", &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(Failpoints::anyArmed()) << "partial arming leaked";

    EXPECT_TRUE(Failpoints::instance().armFromList(
        "a.site=error;;b.site=delay(5),c.site=off", &error))
        << error;
    EXPECT_TRUE(QPLACER_FAILPOINT("a.site"));
    EXPECT_EQ(Failpoints::instance().armed().size(), 2u);

    Failpoints::instance().disarmAll();
    EXPECT_FALSE(Failpoints::anyArmed());
}

} // namespace
} // namespace qplacer
