#include <gtest/gtest.h>

#include <cstdlib>

#include "util/config.hpp"

namespace qplacer {
namespace {

TEST(Config, StringRoundTrip)
{
    Config c;
    c.set("key", "value");
    EXPECT_TRUE(c.has("key"));
    EXPECT_EQ(c.getString("key"), "value");
    EXPECT_EQ(c.getString("missing", "fallback"), "fallback");
}

TEST(Config, IntParsing)
{
    Config c;
    c.set("n", "42");
    EXPECT_EQ(c.getInt("n", 0), 42);
    EXPECT_EQ(c.getInt("missing", 7), 7);
    c.set("bad", "notanumber");
    EXPECT_THROW(c.getInt("bad", 0), std::runtime_error);
}

TEST(Config, DoubleParsing)
{
    Config c;
    c.set("x", "2.5");
    EXPECT_DOUBLE_EQ(c.getDouble("x", 0.0), 2.5);
    EXPECT_DOUBLE_EQ(c.getDouble("missing", 1.5), 1.5);
}

TEST(Config, BoolParsing)
{
    Config c;
    c.set("t", "true");
    c.set("f", "0");
    EXPECT_TRUE(c.getBool("t", false));
    EXPECT_FALSE(c.getBool("f", true));
    EXPECT_TRUE(c.getBool("missing", true));
    c.set("bad", "maybe");
    EXPECT_THROW(c.getBool("bad", false), std::runtime_error);
}

TEST(Config, EnvOverrides)
{
    ::setenv("QP_TEST_ENV_INT", "123", 1);
    EXPECT_EQ(Config::envInt("QP_TEST_ENV_INT", 0), 123);
    ::unsetenv("QP_TEST_ENV_INT");
    EXPECT_EQ(Config::envInt("QP_TEST_ENV_INT", 55), 55);

    ::setenv("QP_TEST_ENV_DBL", "0.25", 1);
    EXPECT_DOUBLE_EQ(Config::envDouble("QP_TEST_ENV_DBL", 0.0), 0.25);
    ::unsetenv("QP_TEST_ENV_DBL");
}

TEST(Config, MalformedEnvFallsBack)
{
    ::setenv("QP_TEST_ENV_BAD", "zzz", 1);
    EXPECT_EQ(Config::envInt("QP_TEST_ENV_BAD", 9), 9);
    ::unsetenv("QP_TEST_ENV_BAD");
}

} // namespace
} // namespace qplacer
