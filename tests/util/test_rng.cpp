#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/rng.hpp"

namespace qplacer {
namespace {

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, BelowIsUnbiasedish)
{
    Rng rng(11);
    int counts[5] = {0};
    for (int i = 0; i < 50000; ++i)
        ++counts[rng.below(5)];
    for (int c : counts) {
        EXPECT_GT(c, 9000);
        EXPECT_LT(c, 11000);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng rng(3);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.range(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        saw_lo |= v == -2;
        saw_hi |= v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(5);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(9);
    std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    rng.shuffle(v);
    std::vector<int> sorted = v;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(sorted[i], i);
}

TEST(Rng, SampleIndicesDistinct)
{
    Rng rng(13);
    const auto sample = rng.sampleIndices(100, 30);
    EXPECT_EQ(sample.size(), 30u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 30u);
    for (auto i : sample)
        EXPECT_LT(i, 100u);
}

TEST(Rng, SampleIndicesFull)
{
    Rng rng(13);
    const auto sample = rng.sampleIndices(5, 5);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 5u);
}

TEST(Rng, BelowZeroPanics)
{
    Rng rng(1);
    EXPECT_THROW(rng.below(0), std::logic_error);
}

} // namespace
} // namespace qplacer
