#include <gtest/gtest.h>

#include <thread>

#include "util/timer.hpp"

namespace qplacer {
namespace {

TEST(Timer, MeasuresElapsedTime)
{
    Timer t;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_GE(t.millis(), 8.0);
    EXPECT_LT(t.seconds(), 5.0);
}

TEST(Timer, ResetRestarts)
{
    Timer t;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    t.reset();
    EXPECT_LT(t.millis(), 8.0);
}

TEST(AccumTimer, AccumulatesLaps)
{
    AccumTimer t;
    for (int i = 0; i < 3; ++i) {
        t.start();
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        t.stop();
    }
    EXPECT_EQ(t.laps(), 3);
    EXPECT_GE(t.seconds(), 0.012);
}

TEST(AccumTimer, DoubleStartPanics)
{
    AccumTimer t;
    t.start();
    EXPECT_THROW(t.start(), std::logic_error);
}

TEST(AccumTimer, StopWithoutStartPanics)
{
    AccumTimer t;
    EXPECT_THROW(t.stop(), std::logic_error);
}

} // namespace
} // namespace qplacer
