#include <gtest/gtest.h>

#include "legal/legalizer.hpp"
#include "pipeline/flow.hpp"
#include "topology/factory.hpp"

namespace qplacer {
namespace {

TEST(Flow, QplacerModeProducesLegalConvergedLayout)
{
    const Topology topo = makeTopology("Grid");
    const FlowResult r = QplacerFlow::runMode(topo, PlacerMode::Qplacer);
    EXPECT_TRUE(r.place.converged);
    EXPECT_TRUE(r.legal.legal);
    EXPECT_TRUE(Legalizer::isLegal(r.netlist));
    EXPECT_GT(r.area.utilization, 0.5);
    EXPECT_LT(r.area.utilization, 1.0);
}

TEST(Flow, ClassicModeDisablesFrequencyAwareness)
{
    FlowParams params;
    params.mode = PlacerMode::Classic;
    const QplacerFlow flow(params);
    const Topology topo = makeTopology("Grid");
    const FlowResult r = flow.run(topo);
    EXPECT_TRUE(r.legal.legal);
    // A frequency-blind layout of a crowded spectrum has hotspots.
    EXPECT_GT(r.hotspots.phPercent, 0.5);
}

TEST(Flow, HumanModeSkipsPlacement)
{
    const Topology topo = makeTopology("Grid");
    const FlowResult r = QplacerFlow::runMode(topo, PlacerMode::Human);
    EXPECT_EQ(r.place.iterations, 0);
    EXPECT_EQ(r.hotspots.pairs.size(), 0u);
}

TEST(Flow, ModeNames)
{
    EXPECT_STREQ(placerModeName(PlacerMode::Qplacer), "Qplacer");
    EXPECT_STREQ(placerModeName(PlacerMode::Classic), "Classic");
    EXPECT_STREQ(placerModeName(PlacerMode::Human), "Human");
}

TEST(Flow, SegmentSizeChangesCellCount)
{
    const Topology topo = makeTopology("Grid");
    const FlowResult coarse =
        QplacerFlow::runMode(topo, PlacerMode::Qplacer, 400.0);
    const FlowResult fine =
        QplacerFlow::runMode(topo, PlacerMode::Qplacer, 200.0);
    EXPECT_GT(fine.netlist.numInstances(),
              1.5 * coarse.netlist.numInstances());
}

TEST(Flow, ReportsWallClock)
{
    const Topology topo = makeTopology("Grid");
    const FlowResult r = QplacerFlow::runMode(topo, PlacerMode::Qplacer);
    EXPECT_GT(r.seconds, 0.0);
    EXPECT_LT(r.seconds, 120.0);
}

} // namespace
} // namespace qplacer
