# CTest script: run qplacer_cli end to end and validate its artifacts.
# Invoked as:
#   cmake -DQPLACER_CLI=<path> -DWORK_DIR=<dir> -P cli_smoke.cmake

if(NOT QPLACER_CLI OR NOT WORK_DIR)
    message(FATAL_ERROR "cli_smoke.cmake needs -DQPLACER_CLI and -DWORK_DIR")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(csv "${WORK_DIR}/smoke.csv")
set(svg "${WORK_DIR}/smoke.svg")

execute_process(
    COMMAND "${QPLACER_CLI}" --topology grid3x3 --mode qplacer --seed 3
            --csv "${csv}" --svg "${svg}" --quiet
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "qplacer_cli exited ${rc}\nstdout:\n${out}\nstderr:\n${err}")
endif()

# --- CSV: header + exactly one data row, with the key metric columns. ---
if(NOT EXISTS "${csv}")
    message(FATAL_ERROR "qplacer_cli did not write ${csv}")
endif()
file(STRINGS "${csv}" csv_lines)
list(LENGTH csv_lines csv_count)
if(NOT csv_count EQUAL 2)
    message(FATAL_ERROR "expected 2 CSV lines (header + row), got ${csv_count}")
endif()
list(GET csv_lines 0 csv_header)
foreach(column topology mode qubits cells ph_percent utilization seconds)
    string(FIND "${csv_header}" "${column}" found)
    if(found EQUAL -1)
        message(FATAL_ERROR "CSV header missing '${column}': ${csv_header}")
    endif()
endforeach()
list(GET csv_lines 1 csv_row)
if(NOT csv_row MATCHES "^Grid9,Qplacer,9,")
    message(FATAL_ERROR "unexpected CSV data row: ${csv_row}")
endif()

# --- SVG: well-formed document envelope. ---
if(NOT EXISTS "${svg}")
    message(FATAL_ERROR "qplacer_cli did not write ${svg}")
endif()
file(READ "${svg}" svg_text)
if(NOT svg_text MATCHES "^<svg ")
    message(FATAL_ERROR "SVG does not start with an <svg> element")
endif()
if(NOT svg_text MATCHES "</svg>")
    message(FATAL_ERROR "SVG is not closed with </svg>")
endif()

# --- Threaded run: --threads must work and reproduce the layout. ---
# grid8x8 (~1400 instances, 64 bins) sits above every serial-grain
# cutoff, so worker threads genuinely run; a capped iteration budget
# keeps the smoke fast while still exercising hundreds of regions.
set(layout_a "${WORK_DIR}/threads_a.txt")
set(layout_b "${WORK_DIR}/threads_b.txt")
foreach(layout IN ITEMS "${layout_a}" "${layout_b}")
    execute_process(
        COMMAND "${QPLACER_CLI}" --topology grid8x8 --seed 3 --threads 2
                --set placer.maxIters=120 --layout "${layout}" --quiet
        RESULT_VARIABLE rc
        OUTPUT_QUIET ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "qplacer_cli --threads 2 exited ${rc}\n${err}")
    endif()
endforeach()
file(READ "${layout_a}" text_a)
file(READ "${layout_b}" text_b)
if(NOT text_a STREQUAL text_b)
    message(FATAL_ERROR "--threads 2 runs with the same seed diverged")
endif()

# --- Seed wraparound: --jobs near UINT64_MAX wraps mod 2^64. ---
# Base seed 2^64 - 2 with 3 jobs must resolve to the deterministic
# sequence {2^64 - 2, 2^64 - 1, 0} -- full-precision in the CSV seed
# column (strings, not doubles) and every job ok.
set(wrap_csv "${WORK_DIR}/wrap.csv")
execute_process(
    COMMAND "${QPLACER_CLI}" --topology grid3x3
            --seed 18446744073709551614 --jobs 3 --workers 1
            --set placer.maxIters=60 --csv "${wrap_csv}" --quiet
    RESULT_VARIABLE rc
    OUTPUT_QUIET ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "qplacer_cli wraparound batch exited ${rc}\n${err}")
endif()
file(STRINGS "${wrap_csv}" wrap_lines)
list(LENGTH wrap_lines wrap_count)
if(NOT wrap_count EQUAL 4)
    message(FATAL_ERROR "expected 4 CSV lines (header + 3 rows), got ${wrap_count}")
endif()
foreach(seed 18446744073709551614 18446744073709551615 0)
    set(seen FALSE)
    foreach(row IN LISTS wrap_lines)
        if(row MATCHES ",${seed},ok$")
            set(seen TRUE)
        endif()
    endforeach()
    if(NOT seen)
        message(FATAL_ERROR "no ok row with wrapped seed ${seed} in:\n${wrap_lines}")
    endif()
endforeach()

# --- Portfolio: --portfolio picks a winner and rejects --jobs > 1. ---
set(folio_csv "${WORK_DIR}/folio.csv")
execute_process(
    COMMAND "${QPLACER_CLI}" --topology grid3x3 --seed 1 --portfolio 3
            --set placer.maxIters=80 --csv "${folio_csv}" --quiet
    RESULT_VARIABLE rc
    OUTPUT_QUIET ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "qplacer_cli --portfolio 3 exited ${rc}\n${err}")
endif()
file(STRINGS "${folio_csv}" folio_lines)
list(LENGTH folio_lines folio_count)
if(NOT folio_count EQUAL 2)
    message(FATAL_ERROR "portfolio run must emit one CSV row, got ${folio_count}")
endif()
list(GET folio_lines 1 folio_row)
if(NOT folio_row MATCHES ",ok$")
    message(FATAL_ERROR "portfolio run did not finish ok: ${folio_row}")
endif()
execute_process(
    COMMAND "${QPLACER_CLI}" --topology grid3x3 --portfolio 2 --jobs 2
            --quiet
    RESULT_VARIABLE bad_rc
    OUTPUT_QUIET ERROR_QUIET)
if(bad_rc EQUAL 0)
    message(FATAL_ERROR "qplacer_cli accepted --portfolio with --jobs > 1")
endif()

# --- Error path: unknown topology must fail cleanly. ---
execute_process(
    COMMAND "${QPLACER_CLI}" --topology no-such-device --quiet
    RESULT_VARIABLE bad_rc
    OUTPUT_QUIET ERROR_QUIET)
if(bad_rc EQUAL 0)
    message(FATAL_ERROR "qplacer_cli accepted an unknown topology")
endif()

message(STATUS "cli_smoke: OK")
