/**
 * @file
 * Staged-flow API contract: observer event ordering, cooperative
 * cancellation mid-placement, FlowParams::normalized() propagation and
 * validation, and the structured FlowStatus error paths.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "pipeline/context.hpp"
#include "pipeline/session.hpp"
#include "topology/generators.hpp"

namespace qplacer {
namespace {

FlowParams
quickParams(int max_iters = 120)
{
    FlowParams params;
    params.placer.maxIters = max_iters;
    params.placer.threads = 1;
    return params;
}

/** Records every event; optionally cancels at a given iteration. */
class RecordingObserver : public FlowObserver
{
  public:
    void onStageBegin(const FlowContext &, const std::string &stage) override
    {
        events.push_back("begin:" + stage);
    }

    void onStageEnd(const FlowContext &, const StageTiming &timing) override
    {
        events.push_back("end:" + timing.stage);
        EXPECT_GE(timing.seconds, 0.0);
    }

    void onIteration(const FlowContext &ctx,
                     const PlaceProgress &progress) override
    {
        iterations.push_back(progress.iteration);
        lastOverflow = progress.overflow;
        if (cancelAtIteration >= 0 &&
            progress.iteration >= cancelAtIteration && cancelTarget)
            cancelTarget->cancel();
        (void)ctx;
    }

    std::vector<std::string> events;
    std::vector<int> iterations;
    double lastOverflow = -1.0;
    int cancelAtIteration = -1;
    CancelToken *cancelTarget = nullptr;
};

TEST(FlowApi, ObserverSeesStagesInOrderWithIterationsInsidePlace)
{
    PlacementSession session;
    RecordingObserver observer;
    session.setObserver(&observer);

    const FlowResult r = session.run(makeGrid(3, 3), quickParams());
    ASSERT_TRUE(r.status.ok()) << r.status.message;

    const std::vector<std::string> expected = {
        "begin:assign",   "end:assign",   "begin:build",
        "end:build",      "begin:place",  "end:place",
        "begin:legalize", "end:legalize", "begin:metrics",
        "end:metrics",
    };
    EXPECT_EQ(observer.events, expected);

    // One progress event per Nesterov iteration, 0-based and strictly
    // increasing.
    ASSERT_EQ(observer.iterations.size(),
              static_cast<std::size_t>(r.place.iterations));
    for (std::size_t i = 0; i < observer.iterations.size(); ++i)
        EXPECT_EQ(observer.iterations[i], static_cast<int>(i));
    EXPECT_EQ(observer.lastOverflow, r.place.finalOverflow);

    // The result's stage timings mirror the event stream.
    ASSERT_EQ(r.stageTimings.size(), 5u);
    EXPECT_EQ(r.stageTimings[0].stage, "assign");
    EXPECT_EQ(r.stageTimings[2].stage, "place");
    EXPECT_EQ(r.stageTimings[4].stage, "metrics");
    double staged = 0.0;
    for (const StageTiming &t : r.stageTimings)
        staged += t.seconds;
    EXPECT_LE(staged, r.seconds + 0.05);
}

TEST(FlowApi, HumanModeRunsManualLayoutStage)
{
    PlacementSession session;
    RecordingObserver observer;
    session.setObserver(&observer);

    FlowParams params = quickParams();
    params.mode = PlacerMode::Human;
    const FlowResult r = session.run(makeGrid(3, 3), params);
    ASSERT_TRUE(r.status.ok());

    const std::vector<std::string> expected = {
        "begin:assign",      "end:assign",      "begin:human_place",
        "end:human_place",   "begin:metrics",   "end:metrics",
    };
    EXPECT_EQ(observer.events, expected);
    EXPECT_TRUE(observer.iterations.empty());
}

TEST(FlowApi, CancellationMidPlacementStopsTheFlow)
{
    PlacementSession session;
    RecordingObserver observer;
    observer.cancelAtIteration = 5;
    observer.cancelTarget = &session.cancelToken();
    session.setObserver(&observer);

    const FlowResult r = session.run(makeGrid(4, 4), quickParams(400));

    EXPECT_EQ(r.status.code, FlowCode::Cancelled);
    EXPECT_EQ(r.status.stage, "place");
    EXPECT_TRUE(r.place.cancelled);
    // The placer polls at the top of each iteration: one more evaluate
    // after the cancelling callback, then it stops.
    EXPECT_LE(r.place.iterations, 7);
    EXPECT_GE(observer.iterations.size(), 5u);

    // Legalization and metrics never ran.
    for (const std::string &event : observer.events) {
        EXPECT_NE(event, "begin:legalize");
        EXPECT_NE(event, "begin:metrics");
    }
    // The aborted stage still reports a timing (and fired its end
    // event) so dashboards account for the spent time.
    ASSERT_FALSE(r.stageTimings.empty());
    EXPECT_EQ(r.stageTimings.back().stage, "place");

    // A cancelled session stays cancelled until reset, then works.
    const FlowResult still = session.run(makeGrid(3, 3), quickParams());
    EXPECT_EQ(still.status.code, FlowCode::Cancelled);
    session.cancelToken().reset();
    observer.cancelAtIteration = -1;
    const FlowResult again = session.run(makeGrid(3, 3), quickParams());
    EXPECT_TRUE(again.status.ok());
}

TEST(FlowApi, CancelBeforeRunReportsCancelledWithoutRunning)
{
    PlacementSession session;
    session.cancelToken().cancel();
    const FlowResult r = session.run(makeGrid(3, 3), quickParams());
    EXPECT_EQ(r.status.code, FlowCode::Cancelled);
    EXPECT_EQ(r.status.stage, "assign");
    EXPECT_TRUE(r.stageTimings.empty());
    EXPECT_EQ(r.netlist.numInstances(), 0);
}

TEST(FlowApi, InvalidParamsAreStructuredErrorsInSessions)
{
    FlowParams params = quickParams();
    params.targetUtil = 1.5;

    PlacementSession session;
    const FlowResult r = session.run(makeGrid(3, 3), params);
    EXPECT_EQ(r.status.code, FlowCode::InvalidParams);
    EXPECT_NE(r.status.message.find("targetUtil"), std::string::npos);
    EXPECT_EQ(r.netlist.numInstances(), 0);
    EXPECT_TRUE(r.stageTimings.empty());

    // The one-shot wrapper keeps its throwing contract.
    EXPECT_THROW(QplacerFlow(params).run(makeGrid(3, 3)),
                 std::runtime_error);
}

TEST(FlowApi, InvalidJobDoesNotPoisonTheBatch)
{
    const Topology topo = makeGrid(3, 3);
    SessionParams sparams;
    sparams.workers = 2;
    PlacementSession session(sparams);

    std::vector<PlacementJob> jobs(3);
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        jobs[j].topo = topo;
        jobs[j].params = quickParams();
        jobs[j].params.placer.seed = j + 1;
    }
    jobs[1].params.placer.targetDensity = -1.0; // Invalid.

    const std::vector<FlowResult> results = session.runBatch(jobs);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_TRUE(results[0].status.ok());
    EXPECT_EQ(results[1].status.code, FlowCode::InvalidParams);
    EXPECT_NE(results[1].status.message.find("targetDensity"),
              std::string::npos);
    EXPECT_TRUE(results[2].status.ok());
    EXPECT_TRUE(results[0].legal.legal);
    EXPECT_TRUE(results[2].legal.legal);
}

TEST(FlowApi, NormalizedPropagatesDetuningEverywhere)
{
    FlowParams params;
    params.assigner.detuningThresholdHz = 0.123e9;
    // Stale hand-copies that normalized() must overwrite.
    params.placer.detuningThresholdHz = 1.0;
    params.legalizer.integrationParams.detuningThresholdHz = 2.0;
    params.hotspot.detuningThresholdHz = 3.0;
    params.targetUtil = 0.6;

    const FlowParams n = params.normalized();
    EXPECT_EQ(n.placer.detuningThresholdHz, 0.123e9);
    EXPECT_EQ(n.legalizer.integrationParams.detuningThresholdHz, 0.123e9);
    EXPECT_EQ(n.hotspot.detuningThresholdHz, 0.123e9);
    EXPECT_EQ(n.placer.targetUtil, 0.6);
    EXPECT_TRUE(n.placer.freqForce);
    EXPECT_TRUE(n.legalizer.integrationParams.resonanceCheck);
}

TEST(FlowApi, NormalizedClassicDisablesFrequencyAwareness)
{
    FlowParams params;
    params.mode = PlacerMode::Classic;
    const FlowParams n = params.normalized();
    EXPECT_FALSE(n.placer.freqForce);
    EXPECT_FALSE(n.legalizer.integrationParams.resonanceCheck);
}

TEST(FlowApi, NormalizedValidatesRanges)
{
    const auto firstError = [](FlowParams params) {
        std::string error;
        params.normalized(&error);
        return error;
    };

    FlowParams p;
    EXPECT_EQ(firstError(p), "");

    p = FlowParams{};
    p.targetUtil = 0.0;
    EXPECT_NE(firstError(p).find("targetUtil"), std::string::npos);

    p = FlowParams{};
    p.partition.segmentUm = -300.0;
    EXPECT_NE(firstError(p).find("segmentUm"), std::string::npos);

    // A budget below the minIters floor is a clamp, not an error:
    // quick runs lower only maxIters.
    p = FlowParams{};
    p.placer.maxIters = 10;
    EXPECT_EQ(firstError(p), "");
    EXPECT_EQ(p.normalized().placer.minIters, 10);

    p = FlowParams{};
    p.placer.minIters = -1;
    EXPECT_NE(firstError(p).find("minIters"), std::string::npos);

    p = FlowParams{};
    p.assigner.detuningThresholdHz = 0.0;
    EXPECT_NE(firstError(p).find("detuningThresholdHz"),
              std::string::npos);

    p = FlowParams{};
    p.legalizer.cellUm = 0.0;
    EXPECT_NE(firstError(p).find("cellUm"), std::string::npos);

    p = FlowParams{};
    p.legalizer.flowSparseThreshold = -1;
    EXPECT_NE(firstError(p).find("flowSparseThreshold"),
              std::string::npos);

    p = FlowParams{};
    p.legalizer.flowSparseNeighbors = 0;
    EXPECT_NE(firstError(p).find("flowSparseNeighbors"),
              std::string::npos);

    // Without the out-param the first violation throws (fatal()).
    p = FlowParams{};
    p.targetUtil = -1.0;
    EXPECT_THROW(p.normalized(), std::runtime_error);
}

TEST(FlowApi, FlowCodeNamesAreStable)
{
    EXPECT_STREQ(flowCodeName(FlowCode::Ok), "ok");
    EXPECT_STREQ(flowCodeName(FlowCode::InvalidParams), "invalid_params");
    EXPECT_STREQ(flowCodeName(FlowCode::Cancelled), "cancelled");
    EXPECT_STREQ(flowCodeName(FlowCode::StageError), "stage_error");
}

} // namespace
} // namespace qplacer
