/**
 * @file
 * Property-style sweeps: invariants that must hold for every seed and
 * every device, not just the defaults.
 */

#include <gtest/gtest.h>

#include "legal/legalizer.hpp"
#include "pipeline/flow.hpp"
#include "topology/factory.hpp"
#include "topology/generators.hpp"

namespace qplacer {
namespace {

class SeedSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SeedSweep, LayoutAlwaysLegalAndBeatsClassic)
{
    const Topology topo = makeGrid(4, 4);
    const FlowResult q = QplacerFlow::runMode(topo, PlacerMode::Qplacer,
                                              300.0, GetParam());
    const FlowResult c = QplacerFlow::runMode(topo, PlacerMode::Classic,
                                              300.0, GetParam());
    EXPECT_TRUE(Legalizer::isLegal(q.netlist));
    EXPECT_TRUE(Legalizer::isLegal(c.netlist));
    // The frequency-aware layout never has more hotspot pairs.
    EXPECT_LE(q.hotspots.pairs.size(), c.hotspots.pairs.size());
    // And stays in a sane utilization band.
    EXPECT_GT(q.area.utilization, 0.4);
    EXPECT_LE(q.area.utilization, 1.0);
}

TEST_P(SeedSweep, EveryInstanceInsideRegion)
{
    const Topology topo = makeGrid(4, 4);
    const FlowResult r = QplacerFlow::runMode(topo, PlacerMode::Qplacer,
                                              300.0, GetParam());
    const Rect region = r.netlist.region().inflated(1.0);
    for (const Instance &inst : r.netlist.instances())
        EXPECT_TRUE(region.containsRect(inst.paddedRect()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(2, 3, 5, 8, 13));

class DeviceSweep : public ::testing::TestWithParam<const char *>
{
};

TEST_P(DeviceSweep, FlowInvariantsHoldOnEveryDevice)
{
    const Topology topo = makeTopology(GetParam());
    const FlowResult r =
        QplacerFlow::runMode(topo, PlacerMode::Qplacer);
    // Legal layout.
    EXPECT_TRUE(Legalizer::isLegal(r.netlist)) << GetParam();
    // Every qubit instance corresponds to its topology qubit.
    for (int q = 0; q < topo.numQubits(); ++q)
        EXPECT_EQ(r.netlist.instance(q).qubit, q);
    // Frequencies stayed inside their bands.
    for (const Instance &inst : r.netlist.instances()) {
        if (inst.kind == InstanceKind::Qubit) {
            EXPECT_TRUE(FrequencyBand::qubitBand().contains(inst.freqHz));
        } else {
            EXPECT_TRUE(
                FrequencyBand::resonatorBand().contains(inst.freqHz));
        }
    }
    // The hotspot metric is consistent with its pair list.
    if (r.hotspots.pairs.empty())
        EXPECT_DOUBLE_EQ(r.hotspots.phPercent, 0.0);
    else
        EXPECT_GT(r.hotspots.phPercent, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Devices, DeviceSweep,
                         ::testing::Values("Grid", "Xtree", "Falcon",
                                           "Aspen-11"),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (char &c : n)
                                 if (c == '-')
                                     c = '_';
                             return n;
                         });

} // namespace
} // namespace qplacer
