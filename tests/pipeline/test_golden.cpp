/**
 * @file
 * Golden placement regressions: the full flow on two fixed-seed
 * devices must keep producing layouts of the checked-in quality.
 *
 * Wirelength, density overflow, and an evaluator fidelity proxy are
 * pinned against golden values with explicit tolerances, so an
 * optimization that silently degrades placement quality (rather than
 * crashing) fails here first. The bands are deliberately wider than
 * the run-to-run spread of a fixed seed (which is zero — the flow is
 * deterministic) to absorb benign cross-compiler floating-point
 * drift (e.g. FMA contraction differences between -O0 and -O2);
 * anything outside them is a real quality change and should be a
 * conscious decision, recorded by updating the golden.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "circuits/benchmarks.hpp"
#include "eval/evaluator.hpp"
#include "legal/legalizer.hpp"
#include "pipeline/flow.hpp"
#include "topology/generators.hpp"

namespace qplacer {
namespace {

/** Checked-in quality bar for one fixed-seed flow run. */
struct Golden
{
    const char *name;     ///< Human-readable device name.
    double hpwlUm;        ///< Final global-placement HPWL.
    double hpwlRelTol;    ///< Allowed relative HPWL drift.
    double overflowMax;   ///< Final density overflow ceiling.
    const char *circuit;  ///< Benchmark for the fidelity proxy.
    double fidelity;      ///< Mean evaluator fidelity (Eq. 15).
    double fidelityTol;   ///< Allowed absolute fidelity drift.
};

constexpr std::uint64_t kSeed = 1;

void
checkGolden(const Topology &topo, const Golden &g)
{
    FlowParams params;
    params.mode = PlacerMode::Qplacer;
    params.partition.segmentUm = 300.0;
    params.placer.seed = kSeed;
    // Pinned to one thread: the goldens were measured serially, and
    // auto thread counts would tie them to the runner's core count
    // (cross-thread-count results agree only within FP tolerance,
    // which the optimizer amplifies over hundreds of iterations).
    params.placer.threads = 1;
    const FlowResult r = QplacerFlow(params).run(topo);

    // Printed so a deliberate quality change can copy the new goldens
    // straight from the test log.
    std::printf("[golden] %s: hpwl=%.6g overflow=%.6g\n", g.name,
                r.place.finalHpwl, r.place.finalOverflow);

    // (Convergence itself is not asserted: on these devices the seed
    // engine exits on the plateau heuristic; the quality bands below
    // are the regression contract.)
    EXPECT_GT(r.place.iterations, 0) << g.name;
    EXPECT_TRUE(r.legal.legal) << g.name;
    EXPECT_TRUE(Legalizer::isLegal(r.netlist)) << g.name;

    EXPECT_NEAR(r.place.finalHpwl, g.hpwlUm, g.hpwlRelTol * g.hpwlUm)
        << g.name << ": global-placement wirelength drifted";
    EXPECT_GE(r.place.finalOverflow, 0.0) << g.name;
    EXPECT_LE(r.place.finalOverflow, g.overflowMax)
        << g.name << ": density overflow regressed";

    EvaluatorParams eparams;
    eparams.numSubsets = 8; // Fixed subsetSeed: same mappings forever.
    const Evaluator evaluator(eparams);
    const BenchmarkResult b =
        evaluator.evaluate(topo, r.netlist, makeBenchmark(g.circuit));
    std::printf("[golden] %s: %s fidelity=%.6g\n", g.name, g.circuit,
                b.meanFidelity);
    EXPECT_NEAR(b.meanFidelity, g.fidelity, g.fidelityTol)
        << g.name << ": " << g.circuit << " fidelity proxy drifted";
}

TEST(Golden, Grid8x8)
{
    // 64 qubits / ~1400 instances; the plateau exit leaves a sizeable
    // residual overflow on this crowded device — the ceiling pins it.
    const Golden golden = {
        "grid8x8",
        1.82686e7, // hpwlUm
        0.05,      // hpwlRelTol
        0.30,      // overflowMax (measured 0.2548)
        "bv-9",
        0.01338, // fidelity
        0.004,   // fidelityTol (~±30%)
    };
    checkGolden(makeGrid(8, 8), golden);
}

TEST(Golden, HeavyHex3x5)
{
    // The smallest 3-row heavy-hex the generator accepts (row width
    // has a floor of 5), giving a second, structurally different
    // device beside the grid.
    const Golden golden = {
        "heavyhex3x5",
        121273.0, // hpwlUm
        0.05,     // hpwlRelTol
        0.09,     // overflowMax (measured 0.0658)
        "bv-9",
        0.03954, // fidelity
        0.012,   // fidelityTol (~±30%)
    };
    checkGolden(makeHeavyHex(3, 5), golden);
}

} // namespace
} // namespace qplacer
