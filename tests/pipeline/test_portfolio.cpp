/**
 * @file
 * Multi-start portfolio contract (ctest -L anneal):
 *
 *  - portfolio.seeds = 1 degrades to the exact single-seed flow,
 *  - replaying the winning seed through a serial flow reproduces the
 *    portfolio's layout bit for bit,
 *  - portfolio + detailed placement never loses to the plain
 *    single-seed flow on the golden topologies (the base seed is
 *    exempt from pruning and the annealer never worsens HPWL, so this
 *    holds deterministically, not just in expectation),
 *  - disabling the detailed stage and running it with iters = 0 are
 *    the same flow, bitwise.
 */

#include <gtest/gtest.h>

#include "legal/anneal.hpp"
#include "pipeline/session.hpp"
#include "topology/generators.hpp"

namespace qplacer {
namespace {

FlowParams
quickParams(std::uint64_t seed, int max_iters)
{
    FlowParams params;
    params.placer.seed = seed;
    params.placer.maxIters = max_iters;
    params.placer.threads = 1;
    return params;
}

TEST(Portfolio, SeedsOneIsExactlyTheSingleSeedFlow)
{
    const Topology topo = makeGrid(4, 4);
    const FlowParams params = quickParams(5, 150);

    PlacementSession session;
    const FlowResult plain = session.run(topo, params);
    const FlowResult portfolio = session.runPortfolio(topo, params, 1);

    ASSERT_TRUE(plain.status.ok());
    ASSERT_TRUE(portfolio.status.ok());
    EXPECT_FALSE(portfolio.portfolioStats.portfolio);
    EXPECT_TRUE(bitwiseSameLayout(plain.netlist, portfolio.netlist));
    EXPECT_EQ(plain.place.finalHpwl, portfolio.place.finalHpwl);
    EXPECT_EQ(plain.hotspots.phPercent, portfolio.hotspots.phPercent);
}

TEST(Portfolio, WinnerReplayIsBitwiseIdenticalToSerialRun)
{
    const Topology topo = makeGrid(4, 4);
    FlowParams params = quickParams(1, 200);
    params.detailed.enabled = true;
    params.detailed.iters = 10;

    SessionParams sparams;
    sparams.workers = 2;
    PlacementSession session(sparams);
    const FlowResult result = session.runPortfolio(topo, params, 4);
    ASSERT_TRUE(result.status.ok());
    ASSERT_TRUE(result.portfolioStats.portfolio);

    // Replay the winning seed through an independent serial flow with
    // the same knobs: the portfolio's layout must reproduce bit for
    // bit (every candidate runs single-threaded for exactly this).
    FlowParams replay = params;
    replay.placer.seed = result.portfolioStats.winnerSeed;
    const FlowResult serial = QplacerFlow(replay).run(topo);
    ASSERT_TRUE(serial.status.ok());
    EXPECT_TRUE(bitwiseSameLayout(serial.netlist, result.netlist));
    EXPECT_EQ(serial.place.finalHpwl, result.place.finalHpwl);
}

TEST(Portfolio, StatsDescribeEveryCandidate)
{
    const Topology topo = makeGrid(4, 4);
    const FlowParams params = quickParams(1, 200);

    PlacementSession session;
    const FlowResult result = session.runPortfolio(topo, params, 4);
    ASSERT_TRUE(result.status.ok());

    const PortfolioStats &stats = result.portfolioStats;
    EXPECT_EQ(stats.seeds, 4);
    ASSERT_EQ(stats.candidates.size(), 4u);
    int winners = 0;
    for (std::size_t i = 0; i < stats.candidates.size(); ++i) {
        const PortfolioCandidate &cand = stats.candidates[i];
        EXPECT_EQ(cand.seed, 1 + static_cast<std::uint64_t>(i));
        if (cand.winner) {
            ++winners;
            EXPECT_TRUE(cand.ranFull);
            EXPECT_EQ(cand.seed, stats.winnerSeed);
        }
        if (!cand.ranFull) {
            EXPECT_GT(cand.prunedAtIters, 0);
        }
    }
    EXPECT_EQ(winners, 1);
    // The base seed never gets pruned: the portfolio dominance
    // guarantee rests on it always running to completion.
    EXPECT_TRUE(stats.candidates[0].ranFull);
}

void
checkPortfolioDominatesSingleSeed(const Topology &topo, int max_iters)
{
    const FlowParams single_params = quickParams(1, max_iters);
    PlacementSession session;
    const FlowResult single = session.run(topo, single_params);
    ASSERT_TRUE(single.status.ok());

    FlowParams portfolio_params = single_params;
    portfolio_params.detailed.enabled = true;
    portfolio_params.detailed.iters = 15;
    const FlowResult portfolio =
        session.runPortfolio(topo, portfolio_params, 3);
    ASSERT_TRUE(portfolio.status.ok());

    EXPECT_TRUE(portfolio.legal.legal);
    EXPECT_LE(layoutHpwl(portfolio.netlist), layoutHpwl(single.netlist));
}

TEST(Portfolio, DominatesSingleSeedOnGrid8x8)
{
    checkPortfolioDominatesSingleSeed(makeGrid(8, 8), /*max_iters=*/300);
}

TEST(Portfolio, DominatesSingleSeedOnHeavyHex3x5)
{
    checkPortfolioDominatesSingleSeed(makeHeavyHex(3, 5),
                                      /*max_iters=*/250);
}

TEST(Portfolio, DetailedDisabledEqualsZeroItersBitwise)
{
    // FlowParams::normalized contract: detailed.iters = 0 must be a
    // true no-op -- the same flow as detailed.enabled = false.
    const Topology topo = makeGrid(4, 4);
    FlowParams off = quickParams(9, 150);
    off.detailed.enabled = false;

    FlowParams zero = quickParams(9, 150);
    zero.detailed.enabled = true;
    zero.detailed.iters = 0;

    PlacementSession session;
    const FlowResult a = session.run(topo, off);
    const FlowResult b = session.run(topo, zero);
    ASSERT_TRUE(a.status.ok());
    ASSERT_TRUE(b.status.ok());
    EXPECT_TRUE(bitwiseSameLayout(a.netlist, b.netlist));
    EXPECT_FALSE(a.detailed.ran);
    EXPECT_FALSE(b.detailed.ran);
    EXPECT_EQ(a.place.finalHpwl, b.place.finalHpwl);
}

TEST(Portfolio, InvalidKnobsAreRejectedUpFront)
{
    const Topology topo = makeGrid(3, 3);
    PlacementSession session;

    FlowParams bad_frac = quickParams(1, 100);
    bad_frac.portfolio.seeds = 4;
    bad_frac.portfolio.keepFrac = 0.0;
    EXPECT_EQ(session.runPortfolio(topo, bad_frac).status.code,
              FlowCode::InvalidParams);

    FlowParams bad_decay = quickParams(1, 100);
    bad_decay.detailed.enabled = true;
    bad_decay.detailed.tempDecay = 1.5;
    EXPECT_EQ(session.run(topo, bad_decay).status.code,
              FlowCode::InvalidParams);
}

} // namespace
} // namespace qplacer
