/**
 * @file
 * PlacementSession determinism contract: a concurrent batch must be
 * bitwise-identical to serial QplacerFlow runs with the same seeds
 * (and placer.threads = 1, the batch's per-job configuration), and a
 * session reusing its pool across runs must reproduce the one-shot
 * flow exactly.
 */

#include <gtest/gtest.h>

#include "pipeline/session.hpp"
#include "topology/generators.hpp"

namespace qplacer {
namespace {

/** Flow parameters for a quick, deterministic serial placement. */
FlowParams
quickParams(std::uint64_t seed, int max_iters)
{
    FlowParams params;
    params.placer.seed = seed;
    params.placer.maxIters = max_iters;
    params.placer.threads = 1;
    return params;
}

void
expectBitwiseEqualResults(const FlowResult &serial, const FlowResult &batch)
{
    ASSERT_TRUE(batch.status.ok())
        << flowCodeName(batch.status.code) << ": " << batch.status.message;
    EXPECT_TRUE(bitwiseSameLayout(serial.netlist, batch.netlist));
    EXPECT_EQ(serial.place.iterations, batch.place.iterations);
    EXPECT_EQ(serial.place.finalOverflow, batch.place.finalOverflow);
    EXPECT_EQ(serial.place.finalHpwl, batch.place.finalHpwl);
    EXPECT_EQ(serial.legal.legal, batch.legal.legal);
    EXPECT_EQ(serial.hotspots.phPercent, batch.hotspots.phPercent);
}

void
checkBatchMatchesSerial(const Topology &topo, int max_iters, int jobs,
                        int workers)
{
    // Reference: independent one-shot flows, one per seed.
    std::vector<FlowResult> serial;
    for (int j = 0; j < jobs; ++j) {
        serial.push_back(
            QplacerFlow(quickParams(1 + static_cast<std::uint64_t>(j),
                                    max_iters))
                .run(topo));
    }

    SessionParams sparams;
    sparams.workers = workers;
    PlacementSession session(sparams);
    std::vector<PlacementJob> batch(static_cast<std::size_t>(jobs));
    for (int j = 0; j < jobs; ++j) {
        batch[static_cast<std::size_t>(j)].topo = topo;
        batch[static_cast<std::size_t>(j)].params =
            quickParams(1 + static_cast<std::uint64_t>(j), max_iters);
    }
    const std::vector<FlowResult> results = session.runBatch(batch);

    ASSERT_EQ(results.size(), serial.size());
    for (std::size_t j = 0; j < results.size(); ++j)
        expectBitwiseEqualResults(serial[j], results[j]);
}

TEST(Session, BatchMatchesSerialBitwiseOnGrid8x8)
{
    checkBatchMatchesSerial(makeGrid(8, 8), /*max_iters=*/120, /*jobs=*/2,
                            /*workers=*/2);
}

TEST(Session, BatchMatchesSerialBitwiseOnHeavyHex3x5)
{
    checkBatchMatchesSerial(makeHeavyHex(3, 5), /*max_iters=*/250,
                            /*jobs=*/3, /*workers=*/2);
}

TEST(Session, SerialBatchMatchesSerialToo)
{
    // workers=1 takes the in-order path (jobs keep their own thread
    // request); results must be identical to the concurrent contract.
    checkBatchMatchesSerial(makeGrid(4, 4), /*max_iters=*/120, /*jobs=*/2,
                            /*workers=*/1);
}

TEST(Session, RunReusesPoolAndMatchesOneShotFlow)
{
    const Topology topo = makeGrid(4, 4);
    FlowParams params = quickParams(7, 120);
    params.placer.threads = 2; // Exercise the shared inner pool.

    const FlowResult one_shot_a = QplacerFlow(params).run(topo);
    const FlowResult one_shot_b = QplacerFlow(params).run(topo);

    PlacementSession session;
    const FlowResult session_a = session.run(topo, params);
    // Second run reuses the pool built by the first.
    const FlowResult session_b = session.run(topo, params);

    expectBitwiseEqualResults(one_shot_a, session_a);
    expectBitwiseEqualResults(one_shot_b, session_b);
}

TEST(Session, RunUsesSessionDefaultParams)
{
    const Topology topo = makeGrid(3, 3);
    SessionParams sparams;
    sparams.flow = quickParams(5, 120);
    PlacementSession session(sparams);

    const FlowResult r = session.run(topo);
    ASSERT_TRUE(r.status.ok());
    expectBitwiseEqualResults(QplacerFlow(sparams.flow).run(topo), r);
}

TEST(Session, DifferentSeedsProduceDifferentLayouts)
{
    const Topology topo = makeGrid(3, 3);
    SessionParams sparams;
    sparams.workers = 2;
    PlacementSession session(sparams);

    std::vector<PlacementJob> jobs(2);
    jobs[0].topo = topo;
    jobs[0].params = quickParams(1, 120);
    jobs[1].topo = topo;
    jobs[1].params = quickParams(2, 120);
    const std::vector<FlowResult> results = session.runBatch(jobs);

    ASSERT_EQ(results.size(), 2u);
    ASSERT_TRUE(results[0].status.ok());
    ASSERT_TRUE(results[1].status.ok());
    EXPECT_FALSE(bitwiseSameLayout(results[0].netlist, results[1].netlist));
}

TEST(Session, HomogeneousBatchOverloadMatchesJobBatch)
{
    const Topology topo = makeGrid(3, 3);
    SessionParams sparams;
    sparams.workers = 2;

    std::vector<PlacementJob> jobs(2);
    std::vector<FlowParams> sweep(2);
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        jobs[j].topo = topo;
        jobs[j].params = quickParams(j + 1, 120);
        sweep[j] = jobs[j].params;
    }

    const std::vector<FlowResult> via_jobs =
        PlacementSession(sparams).runBatch(jobs);
    const std::vector<FlowResult> via_sweep =
        PlacementSession(sparams).runBatch(topo, sweep);

    ASSERT_EQ(via_jobs.size(), via_sweep.size());
    for (std::size_t j = 0; j < via_jobs.size(); ++j)
        expectBitwiseEqualResults(via_jobs[j], via_sweep[j]);
}

TEST(Session, EmptyBatchIsFine)
{
    PlacementSession session;
    EXPECT_TRUE(session.runBatch({}).empty());
}

} // namespace
} // namespace qplacer
