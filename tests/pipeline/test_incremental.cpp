/**
 * @file
 * Incremental re-place contract (pipeline/incremental.hpp): an empty
 * delta on an unchanged topology reproduces the prior layout bitwise
 * and skips the solve, a small delta re-legalizes only its closure,
 * and the path degrades safely (fresh instances, cancellation,
 * invalid parameters) instead of corrupting the layout.
 */

#include <gtest/gtest.h>

#include "pipeline/session.hpp"
#include "topology/generators.hpp"

namespace qplacer {
namespace {

FlowParams
quickParams(std::uint64_t seed, int max_iters)
{
    FlowParams params;
    params.placer.seed = seed;
    params.placer.maxIters = max_iters;
    params.placer.threads = 1;
    return params;
}

TEST(Incremental, EmptyDeltaReproducesPriorBitwise)
{
    const Topology topo = makeGrid(4, 4);
    const FlowParams params = quickParams(3, 200);
    PlacementSession session;

    const FlowResult cold = session.run(topo, params);
    ASSERT_TRUE(cold.status.ok());
    const PriorLayout prior = PriorLayout::capture(cold.netlist);
    EXPECT_EQ(prior.numInstances, cold.netlist.numInstances());

    const FlowResult warm = session.runIncremental(topo, params, prior);
    ASSERT_TRUE(warm.status.ok()) << warm.status.message;
    EXPECT_TRUE(warm.incremental.incremental);
    EXPECT_TRUE(warm.incremental.reusedPrior);
    EXPECT_EQ(warm.incremental.dirtyInstances, 0);
    EXPECT_EQ(warm.incremental.freshInstances, 0);
    EXPECT_TRUE(bitwiseSameLayout(cold.netlist, warm.netlist));
    EXPECT_TRUE(warm.legal.legal);
    // The solve was skipped outright, not merely shortened.
    EXPECT_EQ(warm.place.iterations, 0);
}

TEST(Incremental, SmallDeltaStaysLegalAndScopesWork)
{
    const Topology topo = makeGrid(5, 5);
    const FlowParams params = quickParams(1, 250);
    PlacementSession session;

    const FlowResult cold = session.run(topo, params);
    ASSERT_TRUE(cold.status.ok());
    const PriorLayout prior = PriorLayout::capture(cold.netlist);

    NetlistDelta delta;
    delta.dirtyQubits = {0, 7};
    const FlowResult warm =
        session.runIncremental(topo, params, prior, delta);
    ASSERT_TRUE(warm.status.ok()) << warm.status.message;
    EXPECT_FALSE(warm.incremental.reusedPrior);
    EXPECT_TRUE(warm.legal.legal);
    // The dirty closure covers the qubits plus their resonators, but
    // stays a strict subset of the chip.
    EXPECT_GT(warm.incremental.dirtyInstances, 2);
    EXPECT_LT(warm.incremental.dirtyInstances,
              warm.netlist.numInstances());
    EXPECT_GE(warm.incremental.movableInstances,
              warm.incremental.dirtyInstances);
    // The warm solve respects the reduced iteration budget.
    EXPECT_LE(warm.place.iterations, params.incremental.maxIters);
}

TEST(Incremental, DeltaRunsAreDeterministic)
{
    const Topology topo = makeGrid(4, 4);
    const FlowParams params = quickParams(9, 200);
    PlacementSession session;

    const FlowResult cold = session.run(topo, params);
    ASSERT_TRUE(cold.status.ok());
    const PriorLayout prior = PriorLayout::capture(cold.netlist);

    NetlistDelta delta;
    delta.dirtyQubits = {2};
    const FlowResult a = session.runIncremental(topo, params, prior, delta);
    const FlowResult b = session.runIncremental(topo, params, prior, delta);
    ASSERT_TRUE(a.status.ok());
    ASSERT_TRUE(b.status.ok());
    EXPECT_TRUE(bitwiseSameLayout(a.netlist, b.netlist));
}

TEST(Incremental, PriorFromLargerTopologyStillLegalizes)
{
    // Prior captured on a 3x3; re-place a 3x4: one column of fresh
    // instances placed among warm-started survivors.
    PlacementSession session;
    const FlowParams params = quickParams(4, 200);
    const FlowResult small = session.run(makeGrid(3, 3), params);
    ASSERT_TRUE(small.status.ok());
    const PriorLayout prior = PriorLayout::capture(small.netlist);

    const Topology bigger = makeGrid(3, 4);
    const FlowResult warm =
        session.runIncremental(bigger, params, prior);
    ASSERT_TRUE(warm.status.ok()) << warm.status.message;
    EXPECT_FALSE(warm.incremental.reusedPrior);
    EXPECT_GT(warm.incremental.freshInstances, 0);
    EXPECT_GT(warm.incremental.mappedInstances, 0);
    EXPECT_TRUE(warm.legal.legal);
}

TEST(Incremental, HumanModeRejectedViaStatus)
{
    const Topology topo = makeGrid(3, 3);
    PlacementSession session;
    const FlowResult cold = session.run(topo, quickParams(1, 60));
    ASSERT_TRUE(cold.status.ok());
    const PriorLayout prior = PriorLayout::capture(cold.netlist);

    FlowParams params = quickParams(1, 60);
    params.mode = PlacerMode::Human;
    const FlowResult warm = session.runIncremental(topo, params, prior);
    EXPECT_EQ(warm.status.code, FlowCode::InvalidParams);
}

TEST(Incremental, InvalidKnobsRejectedViaStatus)
{
    const Topology topo = makeGrid(3, 3);
    PlacementSession session;
    const FlowResult cold = session.run(topo, quickParams(1, 60));
    ASSERT_TRUE(cold.status.ok());
    const PriorLayout prior = PriorLayout::capture(cold.netlist);

    FlowParams params = quickParams(1, 60);
    params.incremental.maxIters = 0;
    EXPECT_EQ(session.runIncremental(topo, params, prior).status.code,
              FlowCode::InvalidParams);

    params = quickParams(1, 60);
    params.incremental.snapToleranceUm = -1.0;
    EXPECT_EQ(session.runIncremental(topo, params, prior).status.code,
              FlowCode::InvalidParams);
}

} // namespace
} // namespace qplacer
