/**
 * @file
 * End-to-end invariants: the paper's headline comparisons must hold on
 * at least a small device (Fig. 11-13 shapes).
 */

#include <gtest/gtest.h>

#include "circuits/benchmarks.hpp"
#include "eval/evaluator.hpp"
#include "pipeline/flow.hpp"
#include "topology/factory.hpp"

namespace qplacer {
namespace {

class EndToEnd : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        topo_ = new Topology(makeTopology("Falcon"));
        qplacer_ = new FlowResult(
            QplacerFlow::runMode(*topo_, PlacerMode::Qplacer));
        classic_ = new FlowResult(
            QplacerFlow::runMode(*topo_, PlacerMode::Classic));
        human_ = new FlowResult(
            QplacerFlow::runMode(*topo_, PlacerMode::Human));
    }

    static void
    TearDownTestSuite()
    {
        delete topo_;
        delete qplacer_;
        delete classic_;
        delete human_;
    }

    static Topology *topo_;
    static FlowResult *qplacer_;
    static FlowResult *classic_;
    static FlowResult *human_;
};

Topology *EndToEnd::topo_ = nullptr;
FlowResult *EndToEnd::qplacer_ = nullptr;
FlowResult *EndToEnd::classic_ = nullptr;
FlowResult *EndToEnd::human_ = nullptr;

TEST_F(EndToEnd, HotspotProportionOrdering)
{
    // Fig. 12: Ph(Qplacer) << Ph(Classic); Human is hotspot-free.
    EXPECT_LT(qplacer_->hotspots.phPercent,
              0.2 * classic_->hotspots.phPercent);
    EXPECT_DOUBLE_EQ(human_->hotspots.phPercent, 0.0);
}

TEST_F(EndToEnd, ImpactedQubitOrdering)
{
    EXPECT_LT(qplacer_->hotspots.impactedQubits.size(),
              classic_->hotspots.impactedQubits.size());
    EXPECT_EQ(human_->hotspots.impactedQubits.size(), 0u);
}

TEST_F(EndToEnd, AreaOrdering)
{
    // Fig. 13: Classic ~ Qplacer in area; Human is much larger.
    EXPECT_GT(human_->area.amerUm2, 1.5 * qplacer_->area.amerUm2);
    EXPECT_LT(classic_->area.amerUm2, 1.3 * qplacer_->area.amerUm2);
    EXPECT_GT(classic_->area.amerUm2, 0.7 * qplacer_->area.amerUm2);
}

TEST_F(EndToEnd, FidelityOrdering)
{
    // Fig. 11: the frequency-aware layout wins by a large factor.
    EvaluatorParams params;
    params.numSubsets = 15;
    const Evaluator evaluator(params);
    const Circuit bv = makeBenchmark("bv-4");
    const double f_qplacer =
        evaluator.evaluate(*topo_, qplacer_->netlist, bv).meanFidelity;
    const double f_classic =
        evaluator.evaluate(*topo_, classic_->netlist, bv).meanFidelity;
    const double f_human =
        evaluator.evaluate(*topo_, human_->netlist, bv).meanFidelity;
    EXPECT_GT(f_qplacer, 5.0 * f_classic);
    // Human is crosstalk-free so Qplacer can at best match it.
    EXPECT_LE(f_qplacer, f_human + 0.05);
    EXPECT_GT(f_qplacer, 0.3);
}

TEST_F(EndToEnd, QplacerKeepsResonatorsIntegrated)
{
    const int total = static_cast<int>(qplacer_->netlist.resonators().size());
    EXPECT_LT(qplacer_->legal.integration.unintegrated, total / 4);
}

TEST_F(EndToEnd, SameMappingsSeenByAllPlacers)
{
    // Subset sampling must not depend on the layout (Section VI-A).
    EvaluatorParams params;
    params.numSubsets = 5;
    const Evaluator evaluator(params);
    const Circuit bv = makeBenchmark("bv-4");
    const auto a = evaluator.evaluate(*topo_, qplacer_->netlist, bv);
    const auto b = evaluator.evaluate(*topo_, classic_->netlist, bv);
    EXPECT_EQ(a.meanSwaps, b.meanSwaps);
}

} // namespace
} // namespace qplacer
