#include <gtest/gtest.h>

#include "eval/hotspot.hpp"

namespace qplacer {
namespace {

/** Two qubits plus two single-segment resonators, hand-positioned. */
struct Layout
{
    Netlist nl;

    Layout(double fq0, double fq1, double fr0, double fr1)
    {
        for (int q = 0; q < 2; ++q) {
            Instance inst;
            inst.kind = InstanceKind::Qubit;
            inst.width = inst.height = 400;
            inst.pad = 400;
            inst.freqHz = q == 0 ? fq0 : fq1;
            nl.addInstance(inst);
        }
        for (int r = 0; r < 2; ++r) {
            Resonator res;
            res.qubitA = 0;
            res.qubitB = 1;
            res.freqHz = r == 0 ? fr0 : fr1;
            res.edge = r;
            Instance seg;
            seg.kind = InstanceKind::ResonatorSegment;
            seg.resonator = r;
            seg.segment = 0;
            seg.width = seg.height = 300;
            seg.pad = 100;
            seg.freqHz = res.freqHz;
            res.segments.push_back(nl.addInstance(seg));
            nl.addResonator(res);
        }
        nl.setRegion(Rect(0, 0, 20000, 20000));
        // Defaults: everything far apart.
        nl.instance(0).pos = {2000, 2000};
        nl.instance(1).pos = {8000, 2000};
        nl.instance(2).pos = {2000, 8000};
        nl.instance(3).pos = {8000, 8000};
    }
};

TEST(Hotspot, CleanLayoutHasNoPairs)
{
    Layout l(5.0e9, 5.0e9, 6.5e9, 6.5e9);
    const HotspotReport report = analyzeHotspots(l.nl);
    EXPECT_TRUE(report.pairs.empty());
    EXPECT_DOUBLE_EQ(report.phPercent, 0.0);
    EXPECT_TRUE(report.impactedQubits.empty());
}

TEST(Hotspot, AdjacentResonantQubitsViolate)
{
    Layout l(5.0e9, 5.0e9, 6.3e9, 6.7e9);
    // Padded 800-footprints abutting: centers 800 apart.
    l.nl.instance(1).pos = {2800, 2000};
    const HotspotReport report = analyzeHotspots(l.nl);
    ASSERT_EQ(report.pairs.size(), 1u);
    EXPECT_EQ(report.pairs[0].a, 0);
    EXPECT_EQ(report.pairs[0].b, 1);
    EXPECT_GT(report.phPercent, 0.0);
    EXPECT_EQ(report.impactedQubits.size(), 2u);
}

TEST(Hotspot, AdjacentDetunedQubitsDoNot)
{
    Layout l(4.8e9, 5.2e9, 6.3e9, 6.7e9);
    l.nl.instance(1).pos = {2800, 2000};
    EXPECT_TRUE(analyzeHotspots(l.nl).pairs.empty());
}

TEST(Hotspot, GapBeyondToleranceIsClean)
{
    Layout l(5.0e9, 5.0e9, 6.3e9, 6.7e9);
    l.nl.instance(1).pos = {2900, 2000}; // 100 um gap > 50 um tol
    EXPECT_TRUE(analyzeHotspots(l.nl).pairs.empty());
}

TEST(Hotspot, ResonantSegmentsImpactTheirQubits)
{
    Layout l(4.8e9, 5.2e9, 6.5e9, 6.5e9);
    // The two resonant segments abut (padded 400-footprints).
    l.nl.instance(2).pos = {5000, 8000};
    l.nl.instance(3).pos = {5400, 8000};
    const HotspotReport report = analyzeHotspots(l.nl);
    ASSERT_EQ(report.pairs.size(), 1u);
    // Crosstalk propagates through the couplers to both endpoint qubits.
    EXPECT_EQ(report.impactedQubits.size(), 2u);
}

TEST(Hotspot, SameResonatorSegmentsExcluded)
{
    Netlist nl;
    Instance q;
    q.kind = InstanceKind::Qubit;
    q.width = q.height = 400;
    q.pad = 400;
    q.freqHz = 5.0e9;
    nl.addInstance(q);
    Resonator res;
    res.qubitA = res.qubitB = 0;
    res.freqHz = 6.5e9;
    for (int s = 0; s < 2; ++s) {
        Instance seg;
        seg.kind = InstanceKind::ResonatorSegment;
        seg.resonator = 0;
        seg.segment = s;
        seg.width = seg.height = 300;
        seg.pad = 100;
        seg.freqHz = 6.5e9;
        res.segments.push_back(nl.addInstance(seg));
    }
    nl.addResonator(res);
    nl.instance(0).pos = {5000, 1000};
    nl.instance(1).pos = {1000, 1000};
    nl.instance(2).pos = {1400, 1000}; // abutting same-resonator blocks
    nl.setRegion(Rect(0, 0, 10000, 10000));
    EXPECT_TRUE(analyzeHotspots(nl).pairs.empty());
}

TEST(Hotspot, PhScalesWithViolationCount)
{
    Layout one(5.0e9, 5.0e9, 6.3e9, 6.7e9);
    one.nl.instance(1).pos = {2800, 2000};
    Layout two(5.0e9, 5.0e9, 6.5e9, 6.5e9);
    two.nl.instance(1).pos = {2800, 2000};
    two.nl.instance(3).pos = {2400, 8000};
    two.nl.instance(2).pos = {2000, 8000};
    EXPECT_GT(analyzeHotspots(two.nl).phPercent,
              analyzeHotspots(one.nl).phPercent);
}

TEST(Hotspot, CustomThreshold)
{
    Layout l(5.0e9, 5.15e9, 6.3e9, 6.7e9);
    l.nl.instance(1).pos = {2800, 2000};
    HotspotParams params;
    EXPECT_TRUE(analyzeHotspots(l.nl, params).pairs.empty());
    params.detuningThresholdHz = 0.2e9;
    EXPECT_EQ(analyzeHotspots(l.nl, params).pairs.size(), 1u);
}

} // namespace
} // namespace qplacer
