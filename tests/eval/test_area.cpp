#include <gtest/gtest.h>

#include "eval/area.hpp"

namespace qplacer {
namespace {

Netlist
twoQubitLayout(Vec2 a, Vec2 b)
{
    Netlist nl;
    for (int i = 0; i < 2; ++i) {
        Instance q;
        q.kind = InstanceKind::Qubit;
        q.width = q.height = 400;
        q.pad = 400;
        nl.addInstance(q);
    }
    nl.instance(0).pos = a;
    nl.instance(1).pos = b;
    nl.setRegion(Rect(0, 0, 10000, 10000));
    return nl;
}

TEST(Area, SingleInstanceIsFullyUtilized)
{
    Netlist nl;
    Instance q;
    q.kind = InstanceKind::Qubit;
    q.width = q.height = 400;
    q.pad = 400;
    nl.addInstance(q);
    nl.instance(0).pos = {1000, 1000};
    nl.setRegion(Rect(0, 0, 2000, 2000));
    const AreaMetrics m = computeArea(nl);
    EXPECT_DOUBLE_EQ(m.amerUm2, 640000.0);
    EXPECT_DOUBLE_EQ(m.apolyUm2, 640000.0);
    EXPECT_DOUBLE_EQ(m.utilization, 1.0);
}

TEST(Area, EnclosingRectSpansAllInstances)
{
    const Netlist nl = twoQubitLayout({1000, 1000}, {5000, 3000});
    const AreaMetrics m = computeArea(nl);
    EXPECT_DOUBLE_EQ(m.enclosingRect.lo.x, 600.0);
    EXPECT_DOUBLE_EQ(m.enclosingRect.hi.x, 5400.0);
    EXPECT_DOUBLE_EQ(m.enclosingRect.lo.y, 600.0);
    EXPECT_DOUBLE_EQ(m.enclosingRect.hi.y, 3400.0);
    EXPECT_DOUBLE_EQ(m.amerUm2, 4800.0 * 2800.0);
}

TEST(Area, UtilizationIsApolyOverAmer)
{
    const Netlist nl = twoQubitLayout({1000, 1000}, {5000, 1000});
    const AreaMetrics m = computeArea(nl);
    EXPECT_DOUBLE_EQ(m.apolyUm2, 2 * 640000.0);
    EXPECT_NEAR(m.utilization, 2 * 640000.0 / (4800.0 * 800.0), 1e-12);
}

TEST(Area, SpreadingIncreasesAmer)
{
    const AreaMetrics tight =
        computeArea(twoQubitLayout({1000, 1000}, {1800, 1000}));
    const AreaMetrics loose =
        computeArea(twoQubitLayout({1000, 1000}, {8000, 1000}));
    EXPECT_LT(tight.amerUm2, loose.amerUm2);
    EXPECT_GT(tight.utilization, loose.utilization);
}

TEST(Area, EmptyNetlistIsFatal)
{
    Netlist nl;
    EXPECT_THROW(computeArea(nl), std::runtime_error);
}

} // namespace
} // namespace qplacer
