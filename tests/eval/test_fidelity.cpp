#include <gtest/gtest.h>

#include "circuits/benchmarks.hpp"
#include "circuits/mapper.hpp"
#include "circuits/scheduler.hpp"
#include "circuits/subsets.hpp"
#include "eval/fidelity.hpp"
#include "freq/assigner.hpp"
#include "netlist/builder.hpp"
#include "topology/factory.hpp"

namespace qplacer {
namespace {

struct Harness
{
    Topology topo = makeTopology("Grid");
    Netlist nl;
    MappedCircuit mapped;
    Schedule schedule;

    explicit Harness(const char *bench = "bv-4")
    {
        const auto freqs = FrequencyAssigner().assign(topo);
        nl = NetlistBuilder().build(topo, freqs);
        const Circuit circuit = makeBenchmark(bench);
        const auto subset = sampleConnectedSubset(
            topo.coupling, circuit.numQubits(), 3);
        mapped = Mapper(topo.coupling).map(circuit, subset);
        schedule = scheduleAsap(mapped, topo.coupling);
    }
};

TEST(Fidelity, CleanLayoutDominatedByGatesAndDecoherence)
{
    Harness s;
    const HotspotReport no_hotspots; // empty
    const FidelityModel model;
    const FidelityBreakdown fb =
        model.evaluate(s.nl, no_hotspots, s.mapped, s.schedule);
    EXPECT_DOUBLE_EQ(fb.qubitCrosstalk, 1.0);
    EXPECT_DOUBLE_EQ(fb.resonatorCrosstalk, 1.0);
    EXPECT_LT(fb.gateFidelity, 1.0);
    EXPECT_LT(fb.decoherenceFidelity, 1.0);
    EXPECT_GT(fb.total, 0.3); // bv-4 is shallow
    EXPECT_NEAR(fb.total,
                fb.gateFidelity * fb.decoherenceFidelity, 1e-12);
}

TEST(Fidelity, ActiveViolationCrushesFidelity)
{
    Harness s;
    // Fabricate a violation between two active qubits, resonant and
    // adjacent.
    const int a = s.mapped.activeQubits[0];
    const int b = s.mapped.activeQubits[1];
    s.nl.instance(a).freqHz = 5.0e9;
    s.nl.instance(b).freqHz = 5.0e9;
    s.nl.instance(a).pos = {2000, 2000};
    s.nl.instance(b).pos = {2800, 2000};

    HotspotReport hs;
    HotspotPair pair;
    pair.a = a;
    pair.b = b;
    pair.distUm = 800.0;
    pair.gapUm = 0.0;
    pair.overlapLenUm = 800.0;
    hs.pairs.push_back(pair);

    const FidelityModel model;
    const FidelityBreakdown with_violation =
        model.evaluate(s.nl, hs, s.mapped, s.schedule);
    const FidelityBreakdown clean =
        model.evaluate(s.nl, HotspotReport{}, s.mapped, s.schedule);
    EXPECT_LT(with_violation.qubitCrosstalk, 0.1);
    EXPECT_LT(with_violation.total, 0.05 * clean.total);
    EXPECT_EQ(with_violation.violatedQubitPairs, 1);
}

TEST(Fidelity, InactiveViolationsAreFree)
{
    Harness s;
    // A violation between two qubits the program never touches.
    int a = -1;
    int b = -1;
    std::vector<char> active(s.topo.numQubits(), 0);
    for (int q : s.mapped.activeQubits)
        active[q] = 1;
    for (int q = 0; q < s.topo.numQubits() && b < 0; ++q) {
        if (!active[q]) {
            (a < 0 ? a : b) = q;
        }
    }
    ASSERT_GE(b, 0);
    HotspotReport hs;
    HotspotPair pair;
    pair.a = a;
    pair.b = b;
    pair.distUm = 800.0;
    pair.overlapLenUm = 800.0;
    hs.pairs.push_back(pair);

    const FidelityModel model;
    const FidelityBreakdown fb =
        model.evaluate(s.nl, hs, s.mapped, s.schedule);
    EXPECT_DOUBLE_EQ(fb.qubitCrosstalk, 1.0);
    EXPECT_EQ(fb.violatedQubitPairs, 0);
}

TEST(Fidelity, ResonatorViolationsDedupedPerPair)
{
    Harness s("ising-4");
    // Find an active resonator.
    int active_res = -1;
    for (const Resonator &res : s.nl.resonators()) {
        if (s.schedule.edgeBusyS[res.edge] > 0.0 &&
            res.segments.size() >= 2) {
            active_res = res.id;
            break;
        }
    }
    ASSERT_GE(active_res, 0);
    // Another resonator at the same frequency.
    int other = (active_res + 1) %
                static_cast<int>(s.nl.resonators().size());

    HotspotReport hs;
    // Two segment pairs witnessing the same resonator pair.
    for (int k = 0; k < 2; ++k) {
        HotspotPair pair;
        pair.a = s.nl.resonator(active_res).segments[k];
        pair.b = s.nl.resonator(other).segments[0];
        pair.distUm = 400.0;
        pair.overlapLenUm = 400.0;
        hs.pairs.push_back(pair);
    }
    const FidelityModel model;
    const FidelityBreakdown fb =
        model.evaluate(s.nl, hs, s.mapped, s.schedule);
    EXPECT_EQ(fb.violatedResonatorPairs, 1);
}

TEST(Fidelity, DeeperCircuitsLoseMoreFidelity)
{
    Harness shallow("bv-4");
    Harness deep("qaoa-9");
    const FidelityModel model;
    const double f_shallow =
        model
            .evaluate(shallow.nl, HotspotReport{}, shallow.mapped,
                      shallow.schedule)
            .total;
    const double f_deep =
        model.evaluate(deep.nl, HotspotReport{}, deep.mapped,
                       deep.schedule)
            .total;
    EXPECT_GT(f_shallow, f_deep);
}

TEST(Fidelity, CrosstalkCapKeepsFidelityPositive)
{
    Harness s;
    HotspotReport hs;
    // Pile up many fake violations among active qubits.
    for (std::size_t i = 0; i + 1 < s.mapped.activeQubits.size(); ++i) {
        HotspotPair pair;
        pair.a = s.mapped.activeQubits[i];
        pair.b = s.mapped.activeQubits[i + 1];
        s.nl.instance(pair.a).freqHz = 5.0e9;
        s.nl.instance(pair.b).freqHz = 5.0e9;
        pair.distUm = 800.0;
        pair.overlapLenUm = 800.0;
        hs.pairs.push_back(pair);
    }
    const FidelityModel model;
    const FidelityBreakdown fb =
        model.evaluate(s.nl, hs, s.mapped, s.schedule);
    EXPECT_GT(fb.total, 0.0);
}

} // namespace
} // namespace qplacer
