#include <gtest/gtest.h>

#include "eval/evaluator.hpp"
#include "circuits/benchmarks.hpp"
#include "pipeline/flow.hpp"
#include "topology/factory.hpp"

namespace qplacer {
namespace {

class EvaluatorTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        topo_ = new Topology(makeTopology("Grid"));
        qplacer_ = new FlowResult(
            QplacerFlow::runMode(*topo_, PlacerMode::Qplacer));
        classic_ = new FlowResult(
            QplacerFlow::runMode(*topo_, PlacerMode::Classic));
    }

    static void
    TearDownTestSuite()
    {
        delete topo_;
        delete qplacer_;
        delete classic_;
    }

    static Topology *topo_;
    static FlowResult *qplacer_;
    static FlowResult *classic_;
};

Topology *EvaluatorTest::topo_ = nullptr;
FlowResult *EvaluatorTest::qplacer_ = nullptr;
FlowResult *EvaluatorTest::classic_ = nullptr;

TEST_F(EvaluatorTest, FidelityInUnitInterval)
{
    EvaluatorParams params;
    params.numSubsets = 10;
    const Evaluator evaluator(params);
    const BenchmarkResult r = evaluator.evaluate(
        *topo_, qplacer_->netlist, makeBenchmark("bv-4"));
    EXPECT_EQ(r.perSubset.size(), 10u);
    for (double f : r.perSubset) {
        EXPECT_GE(f, 0.0);
        EXPECT_LE(f, 1.0);
    }
    EXPECT_LE(r.minFidelity, r.meanFidelity);
    EXPECT_GE(r.maxFidelity, r.meanFidelity);
}

TEST_F(EvaluatorTest, QplacerBeatsClassic)
{
    // The paper's headline (Fig. 11): the frequency-aware layout keeps
    // fidelity high while the frequency-blind one collapses.
    EvaluatorParams params;
    params.numSubsets = 20;
    const Evaluator evaluator(params);
    const Circuit bv = makeBenchmark("bv-4");
    const double f_qplacer =
        evaluator.evaluate(*topo_, qplacer_->netlist, bv).meanFidelity;
    const double f_classic =
        evaluator.evaluate(*topo_, classic_->netlist, bv).meanFidelity;
    EXPECT_GT(f_qplacer, 3.0 * f_classic);
}

TEST_F(EvaluatorTest, DeterministicAcrossRuns)
{
    EvaluatorParams params;
    params.numSubsets = 5;
    const Evaluator evaluator(params);
    const Circuit bv = makeBenchmark("bv-4");
    const auto a = evaluator.evaluate(*topo_, qplacer_->netlist, bv);
    const auto b = evaluator.evaluate(*topo_, qplacer_->netlist, bv);
    EXPECT_EQ(a.perSubset, b.perSubset);
}

TEST_F(EvaluatorTest, BenchmarkLargerThanDeviceIsFatal)
{
    const Evaluator evaluator;
    Circuit huge(26, "huge");
    huge.add2q(GateKind::CX, 0, 1);
    EXPECT_THROW(
        evaluator.evaluate(*topo_, qplacer_->netlist, huge),
        std::runtime_error);
}

TEST_F(EvaluatorTest, SwapsReportedForSparseTopologies)
{
    EvaluatorParams params;
    params.numSubsets = 10;
    const Evaluator evaluator(params);
    const BenchmarkResult r = evaluator.evaluate(
        *topo_, qplacer_->netlist, makeBenchmark("bv-9"));
    EXPECT_GE(r.meanSwaps, 0);
}

} // namespace
} // namespace qplacer
