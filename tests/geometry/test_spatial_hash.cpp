#include <gtest/gtest.h>

#include <algorithm>

#include "geometry/spatial_hash.hpp"
#include "util/rng.hpp"

namespace qplacer {
namespace {

TEST(SpatialHash, InsertAndQuery)
{
    SpatialHash hash(Rect(0, 0, 100, 100), 10);
    hash.insert(1, {50, 50});
    hash.insert(2, {52, 50});
    hash.insert(3, {90, 90});
    EXPECT_EQ(hash.size(), 3u);

    auto near = hash.query({50, 50}, 5.0);
    std::sort(near.begin(), near.end());
    EXPECT_EQ(near, (std::vector<std::int32_t>{1, 2}));

    const auto far = hash.query({10, 10}, 5.0);
    EXPECT_TRUE(far.empty());
}

TEST(SpatialHash, RadiusIsEuclidean)
{
    SpatialHash hash(Rect(0, 0, 100, 100), 10);
    hash.insert(1, {50, 50});
    hash.insert(2, {57, 57}); // ~9.9 away
    EXPECT_EQ(hash.query({50, 50}, 9.0).size(), 1u);
    EXPECT_EQ(hash.query({50, 50}, 10.0).size(), 2u);
}

TEST(SpatialHash, RemoveAndMove)
{
    SpatialHash hash(Rect(0, 0, 100, 100), 10);
    hash.insert(1, {20, 20});
    hash.remove(1, {20, 20});
    EXPECT_EQ(hash.size(), 0u);
    EXPECT_TRUE(hash.query({20, 20}, 5).empty());

    hash.insert(2, {20, 20});
    hash.move(2, {20, 20}, {80, 80});
    EXPECT_TRUE(hash.query({20, 20}, 5).empty());
    EXPECT_EQ(hash.query({80, 80}, 5).size(), 1u);
}

TEST(SpatialHash, QueryRect)
{
    SpatialHash hash(Rect(0, 0, 100, 100), 25);
    hash.insert(1, {10, 10});
    hash.insert(2, {60, 60});
    const auto in_box = hash.queryRect(Rect(0, 0, 30, 30));
    EXPECT_EQ(in_box, (std::vector<std::int32_t>{1}));
}

TEST(SpatialHash, MatchesBruteForce)
{
    Rng rng(17);
    SpatialHash hash(Rect(0, 0, 1000, 1000), 50);
    std::vector<Vec2> points;
    for (int i = 0; i < 300; ++i) {
        points.emplace_back(rng.uniform(0, 1000), rng.uniform(0, 1000));
        hash.insert(i, points.back());
    }
    for (int trial = 0; trial < 20; ++trial) {
        const Vec2 c(rng.uniform(0, 1000), rng.uniform(0, 1000));
        const double r = rng.uniform(10, 200);
        auto got = hash.query(c, r);
        std::sort(got.begin(), got.end());
        std::vector<std::int32_t> want;
        for (int i = 0; i < 300; ++i) {
            if ((points[i] - c).normSq() <= r * r)
                want.push_back(i);
        }
        EXPECT_EQ(got, want);
    }
}

TEST(SpatialHash, OutOfRegionPointsAreClamped)
{
    SpatialHash hash(Rect(0, 0, 100, 100), 10);
    hash.insert(1, {150, 150}); // clamped into the last bucket
    EXPECT_EQ(hash.query({150, 150}, 5).size(), 1u);
}

TEST(SpatialHash, KNearestMatchesBruteForce)
{
    Rng rng(29);
    SpatialHash hash(Rect(0, 0, 1000, 1000), 50);
    std::vector<Vec2> points;
    for (int i = 0; i < 250; ++i) {
        points.emplace_back(rng.uniform(0, 1000), rng.uniform(0, 1000));
        hash.insert(i, points.back());
    }
    for (int trial = 0; trial < 25; ++trial) {
        const Vec2 c(rng.uniform(0, 1000), rng.uniform(0, 1000));
        const int k = static_cast<int>(rng.range(1, 24));
        const auto got = hash.kNearest(c, k);

        std::vector<std::int32_t> want(250);
        for (int i = 0; i < 250; ++i)
            want[i] = i;
        std::sort(want.begin(), want.end(),
                  [&](std::int32_t a, std::int32_t b) {
                      const double da = (points[a] - c).normSq();
                      const double db = (points[b] - c).normSq();
                      if (da != db)
                          return da < db;
                      return a < b;
                  });
        want.resize(static_cast<std::size_t>(k));
        EXPECT_EQ(got, want) << "trial " << trial;
    }
}

TEST(SpatialHash, KNearestHandlesSmallSetsAndZeroK)
{
    SpatialHash hash(Rect(0, 0, 100, 100), 10);
    EXPECT_TRUE(hash.kNearest({50, 50}, 3).empty());
    hash.insert(4, {20, 20});
    hash.insert(9, {80, 80});
    EXPECT_TRUE(hash.kNearest({50, 50}, 0).empty());
    const auto got = hash.kNearest({25, 25}, 5);
    EXPECT_EQ(got, (std::vector<std::int32_t>{4, 9}));
}

} // namespace
} // namespace qplacer
