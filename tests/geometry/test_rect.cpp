#include <gtest/gtest.h>

#include "geometry/rect.hpp"

namespace qplacer {
namespace {

TEST(Rect, BasicProperties)
{
    const Rect r(0, 0, 4, 2);
    EXPECT_DOUBLE_EQ(r.width(), 4.0);
    EXPECT_DOUBLE_EQ(r.height(), 2.0);
    EXPECT_DOUBLE_EQ(r.area(), 8.0);
    EXPECT_EQ(r.center(), Vec2(2, 1));
    EXPECT_FALSE(r.empty());
    EXPECT_TRUE(Rect(1, 1, 1, 5).empty());
}

TEST(Rect, FromCenter)
{
    const Rect r = Rect::fromCenter({5, 5}, 4, 2);
    EXPECT_EQ(r.lo, Vec2(3, 4));
    EXPECT_EQ(r.hi, Vec2(7, 6));
}

TEST(Rect, Contains)
{
    const Rect r(0, 0, 2, 2);
    EXPECT_TRUE(r.contains({1, 1}));
    EXPECT_TRUE(r.contains({0, 0}));   // closed on lo
    EXPECT_FALSE(r.contains({2, 2}));  // open on hi
    EXPECT_FALSE(r.contains({-1, 1}));
    EXPECT_TRUE(r.containsRect(Rect(0.5, 0.5, 1.5, 1.5)));
    EXPECT_FALSE(r.containsRect(Rect(1, 1, 3, 1.5)));
}

TEST(Rect, OverlapAndIntersection)
{
    const Rect a(0, 0, 2, 2);
    const Rect b(1, 1, 3, 3);
    const Rect c(5, 5, 6, 6);
    EXPECT_TRUE(a.overlaps(b));
    EXPECT_FALSE(a.overlaps(c));
    EXPECT_DOUBLE_EQ(a.overlapArea(b), 1.0);
    EXPECT_DOUBLE_EQ(a.overlapArea(c), 0.0);
    const Rect i = a.intersect(b);
    EXPECT_EQ(i.lo, Vec2(1, 1));
    EXPECT_EQ(i.hi, Vec2(2, 2));
}

TEST(Rect, TouchingIsNotOverlapping)
{
    const Rect a(0, 0, 1, 1);
    const Rect b(1, 0, 2, 1);
    EXPECT_FALSE(a.overlaps(b));
    EXPECT_DOUBLE_EQ(a.gap(b), 0.0);
}

TEST(Rect, OverlapLength)
{
    // Side-by-side, sharing a unit edge: the shared boundary is 1 long.
    const Rect a(0, 0, 1, 1);
    const Rect b(1, 0, 2, 1);
    EXPECT_DOUBLE_EQ(a.overlapLength(b), 1.0);
    // Disjoint -> 0.
    EXPECT_DOUBLE_EQ(a.overlapLength(Rect(3, 3, 4, 4)), 0.0);
    // Overlapping: the longer side of the intersection.
    EXPECT_DOUBLE_EQ(Rect(0, 0, 4, 4).overlapLength(Rect(2, 1, 6, 2)),
                     2.0);
}

TEST(Rect, Gap)
{
    const Rect a(0, 0, 1, 1);
    EXPECT_DOUBLE_EQ(a.gap(Rect(3, 0, 4, 1)), 2.0);
    EXPECT_DOUBLE_EQ(a.gap(Rect(0, 4, 1, 5)), 3.0);
    // Diagonal separation is Euclidean.
    EXPECT_DOUBLE_EQ(a.gap(Rect(4, 5, 5, 6)), 5.0);
    // Overlapping -> 0.
    EXPECT_DOUBLE_EQ(a.gap(Rect(0.5, 0.5, 2, 2)), 0.0);
}

TEST(Rect, InflateAndTranslate)
{
    const Rect r(1, 1, 2, 2);
    const Rect big = r.inflated(0.5);
    EXPECT_EQ(big.lo, Vec2(0.5, 0.5));
    EXPECT_EQ(big.hi, Vec2(2.5, 2.5));
    const Rect moved = r.translated({1, -1});
    EXPECT_EQ(moved.lo, Vec2(2, 0));
}

TEST(Rect, UnionAndBoundingBox)
{
    const Rect a(0, 0, 1, 1);
    const Rect b(2, 3, 4, 5);
    const Rect u = a.unionWith(b);
    EXPECT_EQ(u.lo, Vec2(0, 0));
    EXPECT_EQ(u.hi, Vec2(4, 5));

    const Rect bb = boundingBox({a, b, Rect(-1, -1, 0, 0)});
    EXPECT_EQ(bb.lo, Vec2(-1, -1));
    EXPECT_EQ(bb.hi, Vec2(4, 5));
    EXPECT_THROW(boundingBox({}), std::runtime_error);
}

} // namespace
} // namespace qplacer
