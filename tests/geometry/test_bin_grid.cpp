#include <gtest/gtest.h>

#include "geometry/bin_grid.hpp"

namespace qplacer {
namespace {

TEST(BinGrid, Construction)
{
    BinGrid g(Rect(0, 0, 100, 50), 10, 5);
    EXPECT_EQ(g.nx(), 10);
    EXPECT_EQ(g.ny(), 5);
    EXPECT_DOUBLE_EQ(g.binWidth(), 10.0);
    EXPECT_DOUBLE_EQ(g.binHeight(), 10.0);
    EXPECT_DOUBLE_EQ(g.binArea(), 100.0);
    EXPECT_DOUBLE_EQ(g.total(), 0.0);
}

TEST(BinGrid, SplatConservesCharge)
{
    BinGrid g(Rect(0, 0, 100, 100), 10, 10);
    g.splat(Rect(15, 15, 45, 35), 7.0);
    EXPECT_NEAR(g.total(), 7.0, 1e-9);
}

TEST(BinGrid, SplatWithinOneBin)
{
    BinGrid g(Rect(0, 0, 100, 100), 10, 10);
    g.splat(Rect(12, 12, 18, 18), 3.0);
    EXPECT_NEAR(g.at(1, 1), 3.0, 1e-9);
    EXPECT_NEAR(g.total(), 3.0, 1e-9);
}

TEST(BinGrid, SplatSplitsProportionally)
{
    BinGrid g(Rect(0, 0, 20, 10), 2, 1);
    // Rect spans 25% in the left bin, 75% in the right bin.
    g.splat(Rect(7.5, 0, 17.5, 10), 4.0);
    EXPECT_NEAR(g.at(0, 0), 1.0, 1e-9);
    EXPECT_NEAR(g.at(1, 0), 3.0, 1e-9);
}

TEST(BinGrid, OutOfRegionChargeIsShiftedIn)
{
    BinGrid g(Rect(0, 0, 100, 100), 10, 10);
    g.splat(Rect(-20, 40, 0, 60), 5.0); // entirely left of the region
    EXPECT_NEAR(g.total(), 5.0, 1e-9);
}

TEST(BinGrid, ClampIndices)
{
    BinGrid g(Rect(0, 0, 100, 100), 10, 10);
    EXPECT_EQ(g.clampX(-5), 0);
    EXPECT_EQ(g.clampX(105), 9);
    EXPECT_EQ(g.clampY(55), 5);
}

TEST(BinGrid, SampleAveragesOverFootprint)
{
    BinGrid g(Rect(0, 0, 20, 10), 2, 1);
    g.at(0, 0) = 2.0;
    g.at(1, 0) = 6.0;
    // Rect centered on the boundary: equal-weight average.
    EXPECT_NEAR(g.sample(Rect(5, 0, 15, 10)), 4.0, 1e-9);
    // Rect inside one bin: that bin's value.
    EXPECT_NEAR(g.sample(Rect(1, 1, 5, 5)), 2.0, 1e-9);
}

TEST(BinGrid, ClearResets)
{
    BinGrid g(Rect(0, 0, 10, 10), 2, 2);
    g.splat(Rect(0, 0, 10, 10), 4.0);
    g.clear();
    EXPECT_DOUBLE_EQ(g.total(), 0.0);
}

TEST(BinGrid, AtOutOfRangePanics)
{
    BinGrid g(Rect(0, 0, 10, 10), 2, 2);
    EXPECT_THROW(g.at(2, 0), std::logic_error);
    EXPECT_THROW(g.at(0, -1), std::logic_error);
}

} // namespace
} // namespace qplacer
