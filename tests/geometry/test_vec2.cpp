#include <gtest/gtest.h>

#include "geometry/vec2.hpp"

namespace qplacer {
namespace {

TEST(Vec2, Arithmetic)
{
    const Vec2 a(1, 2);
    const Vec2 b(3, -1);
    EXPECT_EQ(a + b, Vec2(4, 1));
    EXPECT_EQ(a - b, Vec2(-2, 3));
    EXPECT_EQ(a * 2.0, Vec2(2, 4));
    EXPECT_EQ(2.0 * a, Vec2(2, 4));
    EXPECT_EQ(b / 2.0, Vec2(1.5, -0.5));
}

TEST(Vec2, CompoundAssignment)
{
    Vec2 v(1, 1);
    v += Vec2(2, 3);
    EXPECT_EQ(v, Vec2(3, 4));
    v -= Vec2(1, 1);
    EXPECT_EQ(v, Vec2(2, 3));
}

TEST(Vec2, Norms)
{
    const Vec2 v(3, 4);
    EXPECT_DOUBLE_EQ(v.norm(), 5.0);
    EXPECT_DOUBLE_EQ(v.normSq(), 25.0);
}

TEST(Vec2, DotAndDistances)
{
    const Vec2 a(1, 0);
    const Vec2 b(0, 1);
    EXPECT_DOUBLE_EQ(a.dot(b), 0.0);
    EXPECT_DOUBLE_EQ(a.dist(b), std::sqrt(2.0));
    EXPECT_DOUBLE_EQ(a.manhattan(b), 2.0);
}

} // namespace
} // namespace qplacer
