#include <gtest/gtest.h>

#include "legal/spiral.hpp"

namespace qplacer {
namespace {

TEST(Spiral, FindsDesiredWhenFree)
{
    OccupancyGrid grid(Rect(0, 0, 1000, 1000), 100);
    const auto spot = spiralSearch(grid, {500, 500}, 200, 200);
    ASSERT_TRUE(spot.has_value());
    EXPECT_NEAR(spot->x, 500.0, 1e-9);
    EXPECT_NEAR(spot->y, 500.0, 1e-9);
}

TEST(Spiral, FindsNearbyWhenBlocked)
{
    OccupancyGrid grid(Rect(0, 0, 1000, 1000), 100);
    grid.occupy(Rect(400, 400, 600, 600), 1);
    const auto spot = spiralSearch(grid, {500, 500}, 200, 200);
    ASSERT_TRUE(spot.has_value());
    EXPECT_TRUE(grid.canPlace(Rect::fromCenter(*spot, 200, 200)));
    // The found slot abuts the blocker (ring radius 2 cells).
    EXPECT_LE(spot->dist({500, 500}), 300.0);
}

TEST(Spiral, ReturnsNulloptWhenFull)
{
    OccupancyGrid grid(Rect(0, 0, 400, 400), 100);
    grid.occupy(Rect(0, 0, 400, 400), 1);
    EXPECT_FALSE(spiralSearch(grid, {200, 200}, 200, 200).has_value());
}

TEST(Spiral, RespectsMaxRadius)
{
    OccupancyGrid grid(Rect(0, 0, 2000, 2000), 100);
    grid.occupy(Rect(0, 0, 1200, 2000), 1); // left half + a bit
    // Desired deep inside the blocked zone, tiny search radius.
    EXPECT_FALSE(
        spiralSearch(grid, {200, 1000}, 200, 200, 3).has_value());
    EXPECT_TRUE(
        spiralSearch(grid, {200, 1000}, 200, 200, 15).has_value());
}

TEST(Spiral, FilteredSearchSkipsRejectedSlots)
{
    OccupancyGrid grid(Rect(0, 0, 1000, 1000), 100);
    // Accept only slots in the right half.
    const auto spot = spiralSearchFiltered(
        grid, {200, 500}, 200, 200,
        [](Vec2 c) { return c.x >= 600.0; });
    ASSERT_TRUE(spot.has_value());
    EXPECT_GE(spot->x, 600.0);
}

TEST(Spiral, FilteredSearchCanFail)
{
    OccupancyGrid grid(Rect(0, 0, 1000, 1000), 100);
    EXPECT_FALSE(spiralSearchFiltered(grid, {500, 500}, 200, 200,
                                      [](Vec2) { return false; })
                     .has_value());
}

} // namespace
} // namespace qplacer
