/**
 * @file
 * Property tests for the annealing detailed placer (ctest -L anneal):
 *
 *  - every accepted move leaves a legal layout (pairwise-disjoint,
 *    in-region padded footprints), checked per move via the accept
 *    hook, not just at the end;
 *  - at temperature 0 the combined objective is monotone
 *    non-increasing along the accepted trajectory;
 *  - the refinement never worsens HPWL or the collision count;
 *  - iters = 0 and non-legal inputs are exact no-ops;
 *  - the walk is deterministic per seed.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "freq/assigner.hpp"
#include "legal/anneal.hpp"
#include "legal/legalizer.hpp"
#include "netlist/builder.hpp"
#include "topology/generators.hpp"
#include "util/rng.hpp"

namespace qplacer {
namespace {

/** A built and legalized netlist ready for detailed placement. */
Netlist
legalizedNetlist(int rows, int cols, std::uint64_t scatter_seed)
{
    const Topology topo = makeGrid(rows, cols);
    const auto freqs = FrequencyAssigner().assign(topo);
    Netlist nl = NetlistBuilder().build(topo, freqs);
    // Scatter the warm-start positions so legalization (and the
    // annealer after it) has real work to do.
    Rng rng(scatter_seed);
    const Rect &region = nl.region();
    for (Instance &inst : nl.instances()) {
        inst.pos.x = region.lo.x + rng.uniform() * region.width();
        inst.pos.y = region.lo.y + rng.uniform() * region.height();
    }
    nl.clampIntoRegion();
    const LegalizeResult result = Legalizer().legalize(nl);
    EXPECT_TRUE(result.legal);
    return nl;
}

DetailedPlacer
placerWith(int iters, double temp_start)
{
    DetailedPlaceParams params;
    params.enabled = true;
    params.iters = iters;
    params.tempStart = temp_start;
    return DetailedPlacer(params, LegalizerParams(), HotspotParams());
}

class AnnealProperties : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(AnnealProperties, EveryAcceptedMovePreservesLegality)
{
    Netlist nl = legalizedNetlist(4, 4, GetParam());
    long long hook_calls = 0;
    const DetailedStats stats = placerWith(15, 75.0).refine(
        nl, GetParam(), nullptr, [&](const Netlist &state) {
            ++hook_calls;
            ASSERT_TRUE(Legalizer::isLegal(state))
                << "accepted move " << hook_calls << " broke legality";
        });
    ASSERT_TRUE(stats.ran);
    EXPECT_EQ(hook_calls, stats.accepted);
    EXPECT_TRUE(Legalizer::isLegal(nl));
}

TEST_P(AnnealProperties, ObjectiveIsMonotoneAtZeroTemperature)
{
    Netlist nl = legalizedNetlist(4, 4, GetParam() + 100);
    const HotspotParams hotspot;
    double prev = detailedObjective(nl, hotspot);
    const DetailedStats stats = placerWith(15, /*temp_start=*/0.0).refine(
        nl, GetParam(), nullptr, [&](const Netlist &state) {
            const double now = detailedObjective(state, hotspot);
            // Deltas are incremental; allow only FP noise uphill.
            EXPECT_LE(now, prev + 1e-6 * (1.0 + std::abs(prev)));
            prev = now;
        });
    ASSERT_TRUE(stats.ran);
}

TEST_P(AnnealProperties, NeverWorsensHpwlOrCollisions)
{
    Netlist nl = legalizedNetlist(5, 5, GetParam() + 200);
    const DetailedStats stats = placerWith(20, 75.0).refine(nl, GetParam());
    ASSERT_TRUE(stats.ran);
    EXPECT_LE(stats.hpwlAfter, stats.hpwlBefore);
    EXPECT_LE(stats.collisionsAfter, stats.collisionsBefore);
    // The reported after-HPWL is the exact HPWL of the returned layout.
    EXPECT_EQ(stats.hpwlAfter, layoutHpwl(nl));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnnealProperties,
                         ::testing::Values(11, 42, 137));

TEST(Anneal, DeterministicPerSeed)
{
    const Netlist base = legalizedNetlist(4, 4, 7);
    Netlist a = base;
    Netlist b = base;
    const DetailedStats sa = placerWith(12, 50.0).refine(a, 99);
    const DetailedStats sb = placerWith(12, 50.0).refine(b, 99);
    ASSERT_TRUE(sa.ran);
    ASSERT_TRUE(sb.ran);
    EXPECT_TRUE(bitwiseSameLayout(a, b));
    EXPECT_EQ(sa.accepted, sb.accepted);
    EXPECT_EQ(sa.proposed, sb.proposed);
    EXPECT_EQ(sa.hpwlAfter, sb.hpwlAfter);
}

TEST(Anneal, ZeroItersIsAnExactNoOp)
{
    const Netlist base = legalizedNetlist(4, 4, 3);
    Netlist nl = base;
    const DetailedStats stats = placerWith(0, 75.0).refine(nl, 1);
    EXPECT_FALSE(stats.ran);
    EXPECT_EQ(stats.proposed, 0);
    EXPECT_TRUE(bitwiseSameLayout(base, nl));
}

TEST(Anneal, NonLegalInputIsReturnedUntouched)
{
    const Topology topo = makeGrid(3, 3);
    const auto freqs = FrequencyAssigner().assign(topo);
    Netlist nl = NetlistBuilder().build(topo, freqs);
    // Pile everything onto one point: not a legal layout, so the
    // occupancy build must fail and the netlist must come back as-is.
    const Vec2 center(nl.region().lo.x + 0.5 * nl.region().width(),
                      nl.region().lo.y + 0.5 * nl.region().height());
    for (Instance &inst : nl.instances())
        inst.pos = center;
    const Netlist before = nl;
    const DetailedStats stats = placerWith(10, 75.0).refine(nl, 1);
    EXPECT_FALSE(stats.ran);
    EXPECT_TRUE(bitwiseSameLayout(before, nl));
}

TEST(Anneal, CancelStopsBetweenSweeps)
{
    Netlist nl = legalizedNetlist(4, 4, 5);
    CancelToken cancel;
    cancel.cancel();
    const DetailedStats stats =
        placerWith(40, 75.0).refine(nl, 1, &cancel);
    EXPECT_TRUE(stats.cancelled);
    EXPECT_EQ(stats.sweeps, 0);
    EXPECT_TRUE(Legalizer::isLegal(nl));
}

} // namespace
} // namespace qplacer
