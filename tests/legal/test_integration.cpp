#include <gtest/gtest.h>

#include "legal/integration.hpp"

namespace qplacer {
namespace {

/** Build a netlist with one 2-qubit coupler whose segments we position
 *  by hand, plus an optional foreign resonator. */
struct Fixture
{
    Netlist nl;
    int resA = -1;
    int resB = -1;

    explicit Fixture(int segments_a, int segments_b = 0)
    {
        for (int q = 0; q < 2; ++q) {
            Instance inst;
            inst.kind = InstanceKind::Qubit;
            inst.width = inst.height = 400;
            inst.pad = 400;
            inst.freqHz = 4.8e9 + q * 0.2e9;
            nl.addInstance(inst);
        }
        resA = addResonator(segments_a, 6.5e9);
        if (segments_b > 0)
            resB = addResonator(segments_b, 6.5e9);
        nl.setRegion(Rect(0, 0, 12000, 12000));
    }

    int
    addResonator(int count, double freq)
    {
        Resonator res;
        res.qubitA = 0;
        res.qubitB = 1;
        res.freqHz = freq;
        res.lengthUm = 10000;
        const int id = static_cast<int>(nl.resonators().size());
        for (int s = 0; s < count; ++s) {
            Instance seg;
            seg.kind = InstanceKind::ResonatorSegment;
            seg.resonator = id;
            seg.segment = s;
            seg.width = seg.height = 300;
            seg.pad = 100;
            seg.freqHz = freq;
            res.segments.push_back(nl.addInstance(seg));
        }
        nl.addResonator(res);
        return id;
    }

    void
    placeChain(int res_id, Vec2 start, double pitch)
    {
        const Resonator &res = nl.resonator(res_id);
        for (std::size_t s = 0; s < res.segments.size(); ++s) {
            nl.instance(res.segments[s]).pos =
                Vec2(start.x + pitch * static_cast<double>(s), start.y);
        }
    }
};

TEST(Integration, ContiguousChainIsLegal)
{
    Fixture f(5);
    f.placeChain(f.resA, {1000, 1000}, 400); // abutting blocks
    const IntegrationLegalizer legalizer;
    EXPECT_NO_THROW(f.nl.validate());
    EXPECT_TRUE(legalizer.integrationLegal(f.nl, f.resA));
    EXPECT_EQ(legalizer.clusters(f.nl, f.resA).size(), 1u);
}

TEST(Integration, SingletonBreaksLegality)
{
    Fixture f(5);
    f.placeChain(f.resA, {1000, 1000}, 400);
    // Strand the last segment far away.
    f.nl.instance(f.nl.resonator(f.resA).segments.back()).pos =
        Vec2(9000, 9000);
    const IntegrationLegalizer legalizer;
    EXPECT_FALSE(legalizer.integrationLegal(f.nl, f.resA));
    EXPECT_EQ(legalizer.clusters(f.nl, f.resA).size(), 2u);
}

TEST(Integration, TwoBlocksOfTwoPlusAreLegal)
{
    // rilc is the paper's buddy criterion: split blocks are routable as
    // long as no segment is isolated (Fig. 8-e).
    Fixture f(6);
    const auto &segments = f.nl.resonator(f.resA).segments;
    for (int s = 0; s < 3; ++s)
        f.nl.instance(segments[s]).pos = Vec2(1000 + 400 * s, 1000);
    for (int s = 3; s < 6; ++s)
        f.nl.instance(segments[s]).pos = Vec2(7000 + 400 * (s - 3), 7000);
    const IntegrationLegalizer legalizer;
    EXPECT_TRUE(legalizer.integrationLegal(f.nl, f.resA));
}

TEST(Integration, SingleSegmentResonatorIsLegal)
{
    Fixture f(1);
    f.placeChain(f.resA, {2000, 2000}, 400);
    const IntegrationLegalizer legalizer;
    EXPECT_TRUE(legalizer.integrationLegal(f.nl, f.resA));
}

TEST(Integration, RepairReattachesStrandedSegment)
{
    Fixture f(5);
    f.placeChain(f.resA, {2000, 2000}, 400);
    Instance &stray =
        f.nl.instance(f.nl.resonator(f.resA).segments.back());
    stray.pos = Vec2(9000, 9000);

    OccupancyGrid grid(f.nl.region(), 100);
    for (const Instance &inst : f.nl.instances()) {
        if (inst.kind == InstanceKind::ResonatorSegment) {
            grid.occupy(Rect::fromCenter(inst.pos, inst.paddedWidth(),
                                         inst.paddedHeight()),
                        inst.id);
        }
    }
    const IntegrationLegalizer legalizer;
    const auto result = legalizer.run(f.nl, grid);
    EXPECT_EQ(result.initiallyBroken, 1);
    EXPECT_EQ(result.unintegrated, 0);
    EXPECT_TRUE(legalizer.integrationLegal(f.nl, f.resA));
}

TEST(Integration, ResonanceCheckBlocksBadMoves)
{
    // Foreign resonator at the same frequency sits right next to the
    // core cluster; with the tau check on, the repair must not create a
    // resonant adjacency when re-attaching the stray segment.
    Fixture f(4, 3);
    f.placeChain(f.resA, {2000, 2000}, 400);
    f.placeChain(f.resB, {2000, 2800}, 400); // resonant neighbours above
    Instance &stray =
        f.nl.instance(f.nl.resonator(f.resA).segments.back());
    stray.pos = Vec2(9000, 9000);

    OccupancyGrid grid(f.nl.region(), 100);
    for (const Instance &inst : f.nl.instances()) {
        if (inst.kind == InstanceKind::ResonatorSegment) {
            grid.occupy(Rect::fromCenter(inst.pos, inst.paddedWidth(),
                                         inst.paddedHeight()),
                        inst.id);
        }
    }
    IntegrationParams params;
    params.resonanceCheck = true;
    const IntegrationLegalizer legalizer(params);
    legalizer.run(f.nl, grid);

    // Wherever the stray ended up, it must not be adjacent to the
    // foreign resonant chain.
    const Rect stray_fp = stray.paddedRect();
    for (int seg : f.nl.resonator(f.resB).segments) {
        const Rect other = f.nl.instance(seg).paddedRect();
        EXPECT_GT(stray_fp.gap(other), params.probeTolUm)
            << "stray re-attached next to a resonant foreign segment";
    }
}

} // namespace
} // namespace qplacer
