#include <gtest/gtest.h>

#include "freq/assigner.hpp"
#include "legal/tetris.hpp"
#include "netlist/builder.hpp"
#include "topology/generators.hpp"

namespace qplacer {
namespace {

Netlist
smallNetlist()
{
    const Topology topo = makeGrid(3, 3);
    const auto freqs = FrequencyAssigner().assign(topo);
    return NetlistBuilder().build(topo, freqs, 0.6);
}

TEST(Tetris, PlacesAllSegmentsWithoutOverlap)
{
    Netlist nl = smallNetlist();
    OccupancyGrid grid(nl.region(), 100);
    // Fix qubits on the grid first.
    for (int q = 0; q < nl.numQubits(); ++q) {
        Instance &inst = nl.instance(q);
        inst.pos = grid.snapCenter(inst.pos, inst.paddedWidth(),
                                   inst.paddedHeight());
        // Nudge until free (qubits may snap onto each other).
        while (!grid.canPlace(Rect::fromCenter(inst.pos,
                                               inst.paddedWidth(),
                                               inst.paddedHeight()))) {
            inst.pos.x += 800;
            inst.pos = grid.snapCenter(inst.pos, inst.paddedWidth(),
                                       inst.paddedHeight());
        }
        grid.occupy(Rect::fromCenter(inst.pos, inst.paddedWidth(),
                                     inst.paddedHeight()),
                    q);
    }

    double displacement = 0.0;
    IntegrationParams params;
    ASSERT_TRUE(tetrisLegalizeSegments(nl, grid, params, displacement));
    EXPECT_GE(displacement, 0.0);

    // No padded overlaps among all instances.
    for (int i = 0; i < nl.numInstances(); ++i) {
        for (int j = i + 1; j < nl.numInstances(); ++j) {
            const Rect a = nl.instance(i).paddedRect();
            const Rect b = nl.instance(j).paddedRect();
            const Rect inter = a.intersect(b);
            EXPECT_FALSE(!inter.empty() && inter.width() > 1.0 &&
                         inter.height() > 1.0)
                << "instances " << i << " and " << j << " overlap";
        }
    }
}

TEST(Tetris, ChainsStayContiguous)
{
    Netlist nl = smallNetlist();
    OccupancyGrid grid(nl.region(), 100);
    for (int q = 0; q < nl.numQubits(); ++q) {
        Instance &inst = nl.instance(q);
        inst.pos = grid.snapCenter(inst.pos, inst.paddedWidth(),
                                   inst.paddedHeight());
        while (!grid.canPlace(Rect::fromCenter(inst.pos,
                                               inst.paddedWidth(),
                                               inst.paddedHeight()))) {
            inst.pos.x += 800;
            inst.pos = grid.snapCenter(inst.pos, inst.paddedWidth(),
                                       inst.paddedHeight());
        }
        grid.occupy(Rect::fromCenter(inst.pos, inst.paddedWidth(),
                                     inst.paddedHeight()),
                    q);
    }
    double displacement = 0.0;
    IntegrationParams params;
    ASSERT_TRUE(tetrisLegalizeSegments(nl, grid, params, displacement));

    // Consecutive chain segments end up near each other (the anchor
    // policy): median consecutive distance is a small number of blocks.
    for (const Resonator &res : nl.resonators()) {
        int close = 0;
        int total = 0;
        for (std::size_t s = 0; s + 1 < res.segments.size(); ++s) {
            const Vec2 a = nl.instance(res.segments[s]).pos;
            const Vec2 b = nl.instance(res.segments[s + 1]).pos;
            close += a.dist(b) <= 900.0;
            ++total;
        }
        if (total > 0)
            EXPECT_GT(close * 2, total) << "resonator " << res.id;
    }
}

TEST(Tetris, FailsGracefullyWhenRegionTooSmall)
{
    Netlist nl = smallNetlist();
    nl.setRegion(Rect(0, 0, 3000, 3000)); // far too small
    nl.clampIntoRegion();
    OccupancyGrid grid(nl.region(), 100);
    double displacement = 0.0;
    IntegrationParams params;
    EXPECT_FALSE(tetrisLegalizeSegments(nl, grid, params, displacement));
}

} // namespace
} // namespace qplacer
