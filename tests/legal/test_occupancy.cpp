#include <gtest/gtest.h>

#include "legal/occupancy.hpp"

namespace qplacer {
namespace {

TEST(Occupancy, PlaceAndBlock)
{
    OccupancyGrid grid(Rect(0, 0, 1000, 1000), 100);
    const Rect a(100, 100, 500, 500);
    EXPECT_TRUE(grid.canPlace(a));
    grid.occupy(a, 1);
    EXPECT_FALSE(grid.canPlace(a));
    EXPECT_FALSE(grid.canPlace(Rect(400, 400, 600, 600)));
    EXPECT_TRUE(grid.canPlace(Rect(500, 500, 700, 700)));
}

TEST(Occupancy, IgnoreOwnCells)
{
    OccupancyGrid grid(Rect(0, 0, 1000, 1000), 100);
    grid.occupy(Rect(0, 0, 300, 300), 7);
    EXPECT_FALSE(grid.canPlace(Rect(100, 100, 400, 400)));
    EXPECT_TRUE(grid.canPlaceIgnoring(Rect(100, 100, 400, 400), 7));
    grid.occupy(Rect(500, 0, 700, 200), 8);
    EXPECT_FALSE(grid.canPlaceIgnoring(Rect(400, 0, 600, 200), 7));
}

TEST(Occupancy, ReleaseFreesOnlyOwnCells)
{
    OccupancyGrid grid(Rect(0, 0, 1000, 1000), 100);
    grid.occupy(Rect(0, 0, 200, 200), 1);
    grid.occupy(Rect(200, 0, 400, 200), 2);
    grid.release(Rect(0, 0, 400, 200), 1); // only id 1's cells freed
    EXPECT_TRUE(grid.canPlace(Rect(0, 0, 200, 200)));
    EXPECT_FALSE(grid.canPlace(Rect(200, 0, 400, 200)));
}

TEST(Occupancy, OutOfRegionRejected)
{
    OccupancyGrid grid(Rect(0, 0, 1000, 1000), 100);
    EXPECT_FALSE(grid.canPlace(Rect(-100, 0, 100, 100)));
    EXPECT_FALSE(grid.canPlace(Rect(900, 900, 1100, 1100)));
    EXPECT_THROW(grid.occupy(Rect(-100, 0, 100, 100), 1),
                 std::logic_error);
}

TEST(Occupancy, DoubleOccupyPanics)
{
    OccupancyGrid grid(Rect(0, 0, 1000, 1000), 100);
    grid.occupy(Rect(0, 0, 200, 200), 1);
    EXPECT_THROW(grid.occupy(Rect(100, 100, 300, 300), 2),
                 std::logic_error);
}

TEST(Occupancy, OwnerQueries)
{
    OccupancyGrid grid(Rect(0, 0, 1000, 1000), 100);
    grid.occupy(Rect(200, 200, 400, 400), 5);
    EXPECT_EQ(grid.ownerAt({250, 250}), 5);
    EXPECT_EQ(grid.ownerAt({50, 50}), -1);
    EXPECT_EQ(grid.ownerAt({5000, 50}), -1);

    grid.occupy(Rect(400, 200, 600, 400), 6);
    const auto owners = grid.ownersIn(Rect(100, 100, 700, 500));
    EXPECT_EQ(owners.size(), 2u);
}

TEST(Occupancy, SnapAlignsToLattice)
{
    OccupancyGrid grid(Rect(0, 0, 1000, 1000), 100);
    const Vec2 snapped = grid.snapCenter({333, 487}, 200, 200);
    // Lower-left corner lands on a multiple of 100.
    EXPECT_NEAR(std::fmod(snapped.x - 100.0, 100.0), 0.0, 1e-9);
    EXPECT_NEAR(std::fmod(snapped.y - 100.0, 100.0), 0.0, 1e-9);
    // Snapped center keeps the footprint in-region even at the edge.
    const Vec2 edge = grid.snapCenter({990, 990}, 200, 200);
    EXPECT_LE(edge.x + 100.0, 1000.0 + 1e-9);
}

} // namespace
} // namespace qplacer
