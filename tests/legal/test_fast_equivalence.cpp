/**
 * @file
 * Randomized equivalence suite for the bitset-backed occupancy grid
 * and the skip-cursor spiral search (ctest -L legal).
 *
 * A self-contained reference implementation -- the pre-bitset per-cell
 * scans, retained here verbatim -- is driven through the same mixed
 * occupy/release sequences as the production OccupancyGrid, and every
 * query (canPlace, canPlaceIgnoring, ownersIn, spiral searches, the
 * next-placeable scans) must agree exactly, including edge-of-region
 * rects and footprints larger than one summary block. The legalizer's
 * bitwise-layout guarantee rests on this equivalence.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <optional>
#include <vector>

#include "freq/assigner.hpp"
#include "legal/legalizer.hpp"
#include "legal/occupancy.hpp"
#include "legal/spiral.hpp"
#include "netlist/builder.hpp"
#include "topology/generators.hpp"
#include "util/rng.hpp"

namespace qplacer {
namespace {

/** The pre-bitset occupancy grid, kept as the equivalence baseline. */
class ReferenceGrid
{
  public:
    ReferenceGrid(Rect region, double cell_um)
        : region_(region), cellUm_(cell_um)
    {
        nx_ = static_cast<int>(
            std::floor(region.width() / cell_um + 1e-6));
        ny_ = static_cast<int>(
            std::floor(region.height() / cell_um + 1e-6));
        owner_.assign(static_cast<std::size_t>(nx_) * ny_, -1);
    }

    bool
    canPlaceIgnoring(const Rect &rect, std::int32_t ignore_id) const
    {
        if (!inRegion(rect))
            return false;
        const Span s = spanOf(rect);
        for (int iy = std::max(0, s.y0); iy <= std::min(ny_ - 1, s.y1);
             ++iy) {
            for (int ix = std::max(0, s.x0);
                 ix <= std::min(nx_ - 1, s.x1); ++ix) {
                const std::int32_t o =
                    owner_[static_cast<std::size_t>(iy) * nx_ + ix];
                if (o >= 0 && o != ignore_id)
                    return false;
            }
        }
        return true;
    }

    bool canPlace(const Rect &rect) const
    {
        return canPlaceIgnoring(rect, -2);
    }

    void
    occupy(const Rect &rect, std::int32_t id)
    {
        const Span s = spanOf(rect);
        for (int iy = s.y0; iy <= s.y1; ++iy) {
            for (int ix = s.x0; ix <= s.x1; ++ix) {
                if (ix < 0 || ix >= nx_ || iy < 0 || iy >= ny_)
                    continue;
                owner_[static_cast<std::size_t>(iy) * nx_ + ix] = id;
            }
        }
    }

    void
    release(const Rect &rect, std::int32_t id)
    {
        const Span s = spanOf(rect);
        for (int iy = std::max(0, s.y0); iy <= std::min(ny_ - 1, s.y1);
             ++iy) {
            for (int ix = std::max(0, s.x0);
                 ix <= std::min(nx_ - 1, s.x1); ++ix) {
                std::int32_t &o =
                    owner_[static_cast<std::size_t>(iy) * nx_ + ix];
                if (o == id)
                    o = -1;
            }
        }
    }

    /** First-encounter-order dedup, the original std::find version. */
    std::vector<std::int32_t>
    ownersIn(const Rect &rect) const
    {
        std::vector<std::int32_t> out;
        const Span s = spanOf(rect);
        for (int iy = std::max(0, s.y0); iy <= std::min(ny_ - 1, s.y1);
             ++iy) {
            for (int ix = std::max(0, s.x0);
                 ix <= std::min(nx_ - 1, s.x1); ++ix) {
                const std::int32_t o =
                    owner_[static_cast<std::size_t>(iy) * nx_ + ix];
                if (o >= 0 &&
                    std::find(out.begin(), out.end(), o) == out.end()) {
                    out.push_back(o);
                }
            }
        }
        return out;
    }

    int nx() const { return nx_; }
    int ny() const { return ny_; }

  private:
    struct Span
    {
        int x0, x1, y0, y1;
    };

    Span
    spanOf(const Rect &rect) const
    {
        Span s;
        s.x0 = static_cast<int>(
            std::floor((rect.lo.x - region_.lo.x) / cellUm_ + 1e-6));
        s.y0 = static_cast<int>(
            std::floor((rect.lo.y - region_.lo.y) / cellUm_ + 1e-6));
        s.x1 = static_cast<int>(std::ceil(
                   (rect.hi.x - region_.lo.x) / cellUm_ - 1e-6)) - 1;
        s.y1 = static_cast<int>(std::ceil(
                   (rect.hi.y - region_.lo.y) / cellUm_ - 1e-6)) - 1;
        return s;
    }

    bool
    inRegion(const Rect &rect) const
    {
        return rect.lo.x >= region_.lo.x - 1e-6 &&
               rect.lo.y >= region_.lo.y - 1e-6 &&
               rect.hi.x <= region_.hi.x + 1e-6 &&
               rect.hi.y <= region_.hi.y + 1e-6;
    }

    Rect region_;
    double cellUm_;
    int nx_;
    int ny_;
    std::vector<std::int32_t> owner_;
};

/** The pre-skip ring walk over the reference grid. */
std::optional<Vec2>
referenceSpiral(const ReferenceGrid &ref, const OccupancyGrid &snap,
                Vec2 desired, double w, double h,
                const std::function<bool(Vec2)> &acceptable,
                int max_radius)
{
    const double cell = 100.0;
    const Vec2 snapped = snap.snapCenter(desired, w, h);
    if (max_radius <= 0)
        max_radius = std::max(ref.nx(), ref.ny());
    auto try_at = [&](int dx, int dy) -> std::optional<Vec2> {
        const Vec2 center(snapped.x + dx * cell, snapped.y + dy * cell);
        const Rect rect = Rect::fromCenter(center, w, h);
        if (ref.canPlace(rect) && (!acceptable || acceptable(center)))
            return center;
        return std::nullopt;
    };
    if (auto hit = try_at(0, 0))
        return hit;
    for (int r = 1; r <= max_radius; ++r) {
        for (int dx = -r; dx <= r; ++dx) {
            if (auto hit = try_at(dx, -r))
                return hit;
            if (auto hit = try_at(dx, r))
                return hit;
        }
        for (int dy = -r + 1; dy <= r - 1; ++dy) {
            if (auto hit = try_at(-r, dy))
                return hit;
            if (auto hit = try_at(r, dy))
                return hit;
        }
    }
    return std::nullopt;
}

/**
 * Random cell-aligned rect; sizes span sub-word, word-straddling, and
 * multi-summary-block footprints, and positions deliberately run past
 * the region edge on all four sides.
 */
Rect
randomRect(Rng &rng, const Rect &region)
{
    const double cell = 100.0;
    const double w = cell * static_cast<double>(rng.range(1, 12));
    const double h = cell * static_cast<double>(rng.range(1, 12));
    const double x0 =
        region.lo.x + cell * static_cast<double>(rng.range(-3, 40));
    const double y0 =
        region.lo.y + cell * static_cast<double>(rng.range(-3, 33));
    return Rect(x0, y0, x0 + w, y0 + h);
}

class FastEquivalence : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FastEquivalence, MixedOccupyReleaseQueries)
{
    // 37 x 29 cells: ragged against both the 64-bit words and the 8x8
    // summary blocks.
    const Rect region(0, 0, 3700, 2900);
    OccupancyGrid fast(region, 100.0);
    ReferenceGrid ref(region, 100.0);
    Rng rng(GetParam());

    std::vector<std::pair<Rect, std::int32_t>> placed;
    std::vector<std::int32_t> scratch;
    std::int32_t next_id = 0;

    for (int step = 0; step < 4000; ++step) {
        const Rect rect = randomRect(rng, region);
        const int op = static_cast<int>(rng.below(5));
        if (op <= 1) {
            // Try to place.
            const bool can_fast = fast.canPlace(rect);
            ASSERT_EQ(can_fast, ref.canPlace(rect)) << "step " << step;
            if (can_fast) {
                fast.occupy(rect, next_id);
                ref.occupy(rect, next_id);
                placed.emplace_back(rect, next_id);
                ++next_id;
            }
        } else if (op == 2 && !placed.empty()) {
            // Release a random placed rect.
            const std::size_t pick = rng.below(placed.size());
            fast.release(placed[pick].first, placed[pick].second);
            ref.release(placed[pick].first, placed[pick].second);
            placed[pick] = placed.back();
            placed.pop_back();
        } else if (op == 3) {
            // canPlaceIgnoring with a live id.
            const std::int32_t ignore =
                placed.empty()
                    ? -2
                    : placed[rng.below(placed.size())].second;
            ASSERT_EQ(fast.canPlaceIgnoring(rect, ignore),
                      ref.canPlaceIgnoring(rect, ignore))
                << "step " << step;
        } else {
            // ownersIn: legacy overload preserves first-encounter
            // order; the scratch overload is the sorted set.
            const auto expect = ref.ownersIn(rect);
            ASSERT_EQ(fast.ownersIn(rect), expect) << "step " << step;
            fast.ownersIn(rect, scratch);
            auto sorted = expect;
            std::sort(sorted.begin(), sorted.end());
            ASSERT_EQ(scratch, sorted) << "step " << step;
        }
    }
}

TEST_P(FastEquivalence, NextPlaceableMatchesBruteForce)
{
    const Rect region(0, 0, 3700, 2900);
    OccupancyGrid fast(region, 100.0);
    ReferenceGrid ref(region, 100.0);
    Rng rng(GetParam() + 77);

    for (std::int32_t id = 0; id < 60; ++id) {
        const Rect rect = randomRect(rng, region);
        if (fast.canPlace(rect)) {
            fast.occupy(rect, id);
            ref.occupy(rect, id);
        }
    }

    auto span_blocked = [&](int x0, int x1, int y0, int y1) {
        for (int iy = y0; iy <= y1; ++iy)
            for (int ix = x0; ix <= x1; ++ix)
                if (ref.ownersIn(Rect(ix * 100.0, iy * 100.0,
                                      (ix + 1) * 100.0,
                                      (iy + 1) * 100.0))
                        .size() > 0)
                    return true;
        return false;
    };

    for (int trial = 0; trial < 300; ++trial) {
        const int span_w = static_cast<int>(rng.range(1, 10));
        const int span_h = static_cast<int>(rng.range(1, 10));
        const int y0 = static_cast<int>(rng.range(0, fast.ny() - 1));
        const int y1 =
            std::min(fast.ny() - 1,
                     y0 + static_cast<int>(rng.range(0, 9)));
        const int x_from = static_cast<int>(rng.range(0, fast.nx() - 1));

        int expect_x = fast.nx();
        for (int x = x_from; x + span_w <= fast.nx(); ++x) {
            if (!span_blocked(x, x + span_w - 1, y0, y1)) {
                expect_x = x;
                break;
            }
        }
        ASSERT_EQ(fast.nextPlaceableX(y0, y1, x_from, span_w), expect_x)
            << "trial " << trial;

        const int x0 = static_cast<int>(rng.range(0, fast.nx() - 1));
        const int x1 =
            std::min(fast.nx() - 1,
                     x0 + static_cast<int>(rng.range(0, 9)));
        const int y_from = static_cast<int>(rng.range(0, fast.ny() - 1));
        int expect_y = fast.ny();
        for (int y = y_from; y + span_h <= fast.ny(); ++y) {
            if (!span_blocked(x0, x1, y, y + span_h - 1)) {
                expect_y = y;
                break;
            }
        }
        ASSERT_EQ(fast.nextPlaceableY(x0, x1, y_from, span_h), expect_y)
            << "trial " << trial;
    }
}

TEST_P(FastEquivalence, SpiralFindsTheReferenceCandidate)
{
    const Rect region(0, 0, 3700, 2900);
    OccupancyGrid fast(region, 100.0);
    ReferenceGrid ref(region, 100.0);
    Rng rng(GetParam() + 555);

    // Congest the grid so rings genuinely skip occupied stretches.
    for (std::int32_t id = 0; id < 220; ++id) {
        const Rect rect = randomRect(rng, region);
        if (fast.canPlace(rect)) {
            fast.occupy(rect, id);
            ref.occupy(rect, id);
        }
    }

    // A pure center predicate, exercising the filtered search: reject
    // every other cell column.
    auto checker = [](Vec2 center) {
        return (static_cast<long long>(center.x / 100.0) & 1) == 0;
    };

    for (int trial = 0; trial < 150; ++trial) {
        const double w = 100.0 * static_cast<double>(rng.range(1, 8));
        const double h = 100.0 * static_cast<double>(rng.range(1, 8));
        const Vec2 desired(rng.uniform(-200.0, region.hi.x + 200.0),
                           rng.uniform(-200.0, region.hi.y + 200.0));
        const int radius = static_cast<int>(rng.range(0, 40));

        const auto got = spiralSearch(fast, desired, w, h, radius);
        const auto expect =
            referenceSpiral(ref, fast, desired, w, h, nullptr, radius);
        ASSERT_EQ(got.has_value(), expect.has_value()) << "trial "
                                                       << trial;
        if (got) {
            EXPECT_EQ(got->x, expect->x) << "trial " << trial;
            EXPECT_EQ(got->y, expect->y) << "trial " << trial;
        }

        const auto got_f =
            spiralSearchFiltered(fast, desired, w, h, checker, radius);
        const auto expect_f =
            referenceSpiral(ref, fast, desired, w, h, checker, radius);
        ASSERT_EQ(got_f.has_value(), expect_f.has_value())
            << "trial " << trial;
        if (got_f) {
            EXPECT_EQ(got_f->x, expect_f->x) << "trial " << trial;
            EXPECT_EQ(got_f->y, expect_f->y) << "trial " << trial;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastEquivalence,
                         ::testing::Values(3, 71, 404, 12345));

TEST(FastEquivalence, FullLegalizerFastMatchesReference)
{
    // End to end: the whole legalization stack (spiral + flow refine +
    // Tetris + integration) must produce bit-for-bit the same layout
    // through the fast probes as through the reference scans.
    const Topology topo = makeGrid(8, 8);
    const auto freqs = FrequencyAssigner().assign(topo);
    const Netlist built = NetlistBuilder().build(topo, freqs);

    Netlist fast_nl = built;
    Netlist ref_nl = built;

    LegalizerParams fast_params;
    fast_params.probeEngine = ProbeEngine::Fast;
    LegalizerParams ref_params;
    ref_params.probeEngine = ProbeEngine::Reference;

    const LegalizeResult fast_res =
        Legalizer(fast_params).legalize(fast_nl);
    const LegalizeResult ref_res = Legalizer(ref_params).legalize(ref_nl);

    EXPECT_TRUE(fast_res.legal);
    EXPECT_TRUE(ref_res.legal);
    EXPECT_TRUE(bitwiseSameLayout(fast_nl, ref_nl));
    EXPECT_EQ(fast_res.qubitDisplacementUm, ref_res.qubitDisplacementUm);
    EXPECT_EQ(fast_res.segmentDisplacementUm,
              ref_res.segmentDisplacementUm);
}

} // namespace
} // namespace qplacer
