#include <gtest/gtest.h>

#include <set>

#include "legal/flow_refine.hpp"
#include "util/rng.hpp"

namespace qplacer {
namespace {

double
totalCost(const std::vector<Vec2> &desired, const std::vector<Vec2> &sites,
          const std::vector<int> &assign)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < desired.size(); ++i)
        acc += desired[i].manhattan(sites[assign[i]]);
    return acc;
}

TEST(FlowRefine, IdentityWhenAlreadyOptimal)
{
    const std::vector<Vec2> desired{{0, 0}, {100, 0}, {200, 0}};
    const auto assign = refineAssignment(desired, desired);
    for (std::size_t i = 0; i < desired.size(); ++i)
        EXPECT_EQ(assign[i], static_cast<int>(i));
}

TEST(FlowRefine, FixesSwappedAssignment)
{
    const std::vector<Vec2> desired{{0, 0}, {1000, 0}};
    const std::vector<Vec2> sites{{1000, 0}, {0, 0}};
    const auto assign = refineAssignment(desired, sites);
    EXPECT_EQ(assign[0], 1);
    EXPECT_EQ(assign[1], 0);
}

TEST(FlowRefine, ResultIsAPermutation)
{
    Rng rng(21);
    std::vector<Vec2> desired;
    std::vector<Vec2> sites;
    for (int i = 0; i < 20; ++i) {
        desired.emplace_back(rng.uniform(0, 5000), rng.uniform(0, 5000));
        sites.emplace_back(rng.uniform(0, 5000), rng.uniform(0, 5000));
    }
    const auto assign = refineAssignment(desired, sites);
    std::set<int> unique(assign.begin(), assign.end());
    EXPECT_EQ(unique.size(), 20u);
}

TEST(FlowRefine, BeatsRandomAssignments)
{
    Rng rng(22);
    std::vector<Vec2> desired;
    std::vector<Vec2> sites;
    for (int i = 0; i < 12; ++i) {
        desired.emplace_back(rng.uniform(0, 3000), rng.uniform(0, 3000));
        sites.emplace_back(rng.uniform(0, 3000), rng.uniform(0, 3000));
    }
    const auto optimal = refineAssignment(desired, sites);
    const double best = totalCost(desired, sites, optimal);
    std::vector<int> perm(12);
    for (int i = 0; i < 12; ++i)
        perm[i] = i;
    for (int trial = 0; trial < 50; ++trial) {
        rng.shuffle(perm);
        EXPECT_LE(best, totalCost(desired, sites, perm) + 1e-9);
    }
}

TEST(FlowRefine, EmptyInput)
{
    EXPECT_TRUE(refineAssignment({}, {}).empty());
}

TEST(FlowRefine, SizeMismatchPanics)
{
    EXPECT_THROW(refineAssignment({{0, 0}}, {}), std::logic_error);
}

} // namespace
} // namespace qplacer
