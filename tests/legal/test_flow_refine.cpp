#include <gtest/gtest.h>

#include <set>

#include "legal/flow_refine.hpp"
#include "util/rng.hpp"

namespace qplacer {
namespace {

double
totalCost(const std::vector<Vec2> &desired, const std::vector<Vec2> &sites,
          const std::vector<int> &assign)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < desired.size(); ++i)
        acc += desired[i].manhattan(sites[assign[i]]);
    return acc;
}

TEST(FlowRefine, IdentityWhenAlreadyOptimal)
{
    const std::vector<Vec2> desired{{0, 0}, {100, 0}, {200, 0}};
    const auto assign = refineAssignment(desired, desired);
    for (std::size_t i = 0; i < desired.size(); ++i)
        EXPECT_EQ(assign[i], static_cast<int>(i));
}

TEST(FlowRefine, FixesSwappedAssignment)
{
    const std::vector<Vec2> desired{{0, 0}, {1000, 0}};
    const std::vector<Vec2> sites{{1000, 0}, {0, 0}};
    const auto assign = refineAssignment(desired, sites);
    EXPECT_EQ(assign[0], 1);
    EXPECT_EQ(assign[1], 0);
}

TEST(FlowRefine, ResultIsAPermutation)
{
    Rng rng(21);
    std::vector<Vec2> desired;
    std::vector<Vec2> sites;
    for (int i = 0; i < 20; ++i) {
        desired.emplace_back(rng.uniform(0, 5000), rng.uniform(0, 5000));
        sites.emplace_back(rng.uniform(0, 5000), rng.uniform(0, 5000));
    }
    const auto assign = refineAssignment(desired, sites);
    std::set<int> unique(assign.begin(), assign.end());
    EXPECT_EQ(unique.size(), 20u);
}

TEST(FlowRefine, BeatsRandomAssignments)
{
    Rng rng(22);
    std::vector<Vec2> desired;
    std::vector<Vec2> sites;
    for (int i = 0; i < 12; ++i) {
        desired.emplace_back(rng.uniform(0, 3000), rng.uniform(0, 3000));
        sites.emplace_back(rng.uniform(0, 3000), rng.uniform(0, 3000));
    }
    const auto optimal = refineAssignment(desired, sites);
    const double best = totalCost(desired, sites, optimal);
    std::vector<int> perm(12);
    for (int i = 0; i < 12; ++i)
        perm[i] = i;
    for (int trial = 0; trial < 50; ++trial) {
        rng.shuffle(perm);
        EXPECT_LE(best, totalCost(desired, sites, perm) + 1e-9);
    }
}

TEST(FlowRefine, SparsePathIsAValidNearOptimalPermutation)
{
    Rng rng(23);
    std::vector<Vec2> desired;
    std::vector<Vec2> sites;
    for (int i = 0; i < 40; ++i) {
        desired.emplace_back(rng.uniform(0, 8000), rng.uniform(0, 8000));
        sites.emplace_back(rng.uniform(0, 8000), rng.uniform(0, 8000));
    }

    FlowRefineOptions opts;
    opts.sparseThreshold = 0; // force the sparse path at any size
    opts.neighbors = 8;
    const auto sparse = refineAssignment(desired, sites, opts);
    const std::set<int> unique(sparse.begin(), sparse.end());
    EXPECT_EQ(unique.size(), 40u);

    // Restricted candidates can never beat the exact dense optimum.
    const auto dense = refineAssignment(desired, sites);
    EXPECT_GE(totalCost(desired, sites, sparse) + 1e-9,
              totalCost(desired, sites, dense));

    // ...and the sparse path is deterministic.
    EXPECT_EQ(sparse, refineAssignment(desired, sites, opts));

    // Asking for >= n neighbors collapses to the exact dense solve.
    opts.neighbors = 64;
    EXPECT_EQ(refineAssignment(desired, sites, opts), dense);
}

TEST(FlowRefine, SparseIdentityStaysZeroCost)
{
    // Items sitting exactly on their own site: the own-site candidate
    // arc keeps the sparse solve at zero displacement.
    std::vector<Vec2> pts;
    for (int i = 0; i < 24; ++i)
        pts.emplace_back(100.0 * i, 700.0 * (i % 5));
    FlowRefineOptions opts;
    opts.sparseThreshold = 0;
    opts.neighbors = 4;
    const auto assign = refineAssignment(pts, pts, opts);
    EXPECT_EQ(totalCost(pts, pts, assign), 0.0);
}

TEST(FlowRefine, EmptyInput)
{
    EXPECT_TRUE(refineAssignment({}, {}).empty());
}

TEST(FlowRefine, SizeMismatchPanics)
{
    EXPECT_THROW(refineAssignment({{0, 0}}, {}), std::logic_error);
}

} // namespace
} // namespace qplacer
