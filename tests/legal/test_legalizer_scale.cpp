/**
 * @file
 * 1000+ qubit legalizer smoke (ctest -L legal): the full legalization
 * stack must digest a grid32x32 instance (1024 qubits, ~24k cells) --
 * the scale the ROADMAP targets beyond the paper devices -- produce a
 * legal layout, and report populated sub-stage timings. The sparse
 * flow-refine path is active at this size (1024 > the default
 * threshold of 512), so this also smokes the k-nearest candidate
 * generation end to end.
 */

#include <gtest/gtest.h>

#include "freq/assigner.hpp"
#include "legal/legalizer.hpp"
#include "netlist/builder.hpp"
#include "topology/generators.hpp"
#include "util/rng.hpp"

namespace qplacer {
namespace {

TEST(LegalizerScale, Grid32x32SmokesThroughTheFastPath)
{
    const Topology topo = makeGrid(32, 32);
    const auto freqs = FrequencyAssigner().assign(topo);
    Netlist nl = NetlistBuilder().build(topo, freqs);
    ASSERT_GE(nl.numQubits(), 1000);

    // Jitter the warm start so footprints genuinely collide, like a
    // converged global placement's local overlaps.
    Rng rng(7);
    const double spread = 0.02 * nl.region().width();
    for (Instance &inst : nl.instances()) {
        inst.pos.x = rng.gaussian(inst.pos.x, spread);
        inst.pos.y = rng.gaussian(inst.pos.y, spread);
    }
    nl.clampIntoRegion();

    const LegalizeResult result = Legalizer().legalize(nl);

    EXPECT_TRUE(result.legal);
    EXPECT_TRUE(Legalizer::isLegal(nl));
    EXPECT_FALSE(result.cancelled);

    // Sub-stage timings must be populated and sane.
    EXPECT_GT(result.spiralSeconds, 0.0);
    EXPECT_GT(result.flowRefineSeconds, 0.0);
    EXPECT_GT(result.tetrisSeconds, 0.0);
    EXPECT_GE(result.integrationSeconds, 0.0);
}

} // namespace
} // namespace qplacer
