#include <gtest/gtest.h>

#include "core/placer.hpp"
#include "freq/assigner.hpp"
#include "legal/legalizer.hpp"
#include "netlist/builder.hpp"
#include "topology/generators.hpp"

namespace qplacer {
namespace {

Netlist
placedNetlist(int rows, int cols, bool freq_force = true)
{
    const Topology topo = makeGrid(rows, cols);
    const auto freqs = FrequencyAssigner().assign(topo);
    Netlist nl = NetlistBuilder().build(topo, freqs);
    PlacerParams params;
    params.freqForce = freq_force;
    GlobalPlacer(params).place(nl);
    return nl;
}

TEST(Legalizer, ProducesLegalLayout)
{
    Netlist nl = placedNetlist(4, 4);
    const LegalizeResult result = Legalizer().legalize(nl);
    EXPECT_TRUE(result.legal);
    EXPECT_TRUE(Legalizer::isLegal(nl));
}

TEST(Legalizer, AllInstancesOnCellLattice)
{
    Netlist nl = placedNetlist(3, 3);
    Legalizer().legalize(nl);
    for (const Instance &inst : nl.instances()) {
        const Rect fp = inst.paddedRect();
        const double fx = std::fmod(fp.lo.x - nl.region().lo.x, 100.0);
        const double fy = std::fmod(fp.lo.y - nl.region().lo.y, 100.0);
        EXPECT_NEAR(std::min(fx, 100.0 - fx), 0.0, 1e-6);
        EXPECT_NEAR(std::min(fy, 100.0 - fy), 0.0, 1e-6);
    }
}

TEST(Legalizer, DisplacementIsBounded)
{
    Netlist nl = placedNetlist(3, 3);
    const LegalizeResult result = Legalizer().legalize(nl);
    // Average displacement per instance stays within a few footprints.
    const double avg =
        (result.qubitDisplacementUm + result.segmentDisplacementUm) /
        nl.numInstances();
    EXPECT_LT(avg, 2500.0);
}

TEST(Legalizer, MostResonatorsIntegrated)
{
    Netlist nl = placedNetlist(4, 4);
    const LegalizeResult result = Legalizer().legalize(nl);
    const int total = static_cast<int>(nl.resonators().size());
    EXPECT_LE(result.integration.unintegrated, total / 5);
}

TEST(Legalizer, IsLegalDetectsOverlap)
{
    Netlist nl = placedNetlist(3, 3);
    Legalizer().legalize(nl);
    ASSERT_TRUE(Legalizer::isLegal(nl));
    // Force an overlap.
    nl.instance(1).pos = nl.instance(0).pos;
    EXPECT_FALSE(Legalizer::isLegal(nl));
}

TEST(Legalizer, IsLegalDetectsOutOfRegion)
{
    Netlist nl = placedNetlist(3, 3);
    Legalizer().legalize(nl);
    nl.instance(0).pos = Vec2(-5000, -5000);
    EXPECT_FALSE(Legalizer::isLegal(nl));
}

TEST(Legalizer, ExpandsRegionWhenTooTight)
{
    const Topology topo = makeGrid(3, 3);
    const auto freqs = FrequencyAssigner().assign(topo);
    Netlist nl = NetlistBuilder().build(topo, freqs, 0.95); // very tight
    GlobalPlacer().place(nl);
    const double before = nl.region().area();
    const LegalizeResult result = Legalizer().legalize(nl);
    EXPECT_TRUE(result.legal);
    EXPECT_GE(nl.region().area(), before); // may have grown
}

TEST(Legalizer, ClassicModeSkipsResonanceChecks)
{
    Netlist nl = placedNetlist(4, 4, /*freq_force=*/false);
    LegalizerParams params;
    params.integrationParams.resonanceCheck = false;
    const LegalizeResult result = Legalizer(params).legalize(nl);
    EXPECT_TRUE(result.legal);
}

} // namespace
} // namespace qplacer
