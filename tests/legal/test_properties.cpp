/**
 * @file
 * Property tests for the legalizer stack: invariants that must hold
 * for *any* input, exercised on randomized clustered layouts that are
 * far harsher than the gently-spread placements the example-based
 * tests feed it. After legalization:
 *
 *  - no two qubits occupy the same site (distinct, non-overlapping
 *    padded footprints),
 *  - every instance's padded footprint lies inside the region, and
 *  - the reported displacement is finite and non-negative.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "freq/assigner.hpp"
#include "legal/legalizer.hpp"
#include "netlist/builder.hpp"
#include "topology/generators.hpp"
#include "util/rng.hpp"

namespace qplacer {
namespace {

Netlist
builtNetlist(int rows, int cols)
{
    const Topology topo = makeGrid(rows, cols);
    const auto freqs = FrequencyAssigner().assign(topo);
    return NetlistBuilder().build(topo, freqs);
}

/**
 * Jam every instance into a gaussian blob around @p center_frac (as a
 * fraction of the region) — the pathological overlap-everything input
 * the global placer never quite produces but the legalizer must still
 * digest.
 */
void
clusterPositions(Netlist &nl, std::uint64_t seed, double center_frac_x,
                 double center_frac_y)
{
    Rng rng(seed);
    const Rect &region = nl.region();
    const Vec2 center(region.lo.x + center_frac_x * region.width(),
                      region.lo.y + center_frac_y * region.height());
    const double spread = 0.05 * std::min(region.width(),
                                          region.height());
    for (Instance &inst : nl.instances()) {
        inst.pos.x = rng.gaussian(center.x, spread);
        inst.pos.y = rng.gaussian(center.y, spread);
    }
    nl.clampIntoRegion();
}

void
expectLegalizedInvariants(const Netlist &nl, const LegalizeResult &result)
{
    // Invariant 1: no two qubits share a site. Padded qubit footprints
    // must be pairwise disjoint (checked directly, not via isLegal, so
    // a violation names the offending pair).
    const int nq = nl.numQubits();
    for (int i = 0; i < nq; ++i) {
        const Rect a = nl.instance(i).paddedRect();
        for (int j = i + 1; j < nq; ++j) {
            const Rect b = nl.instance(j).paddedRect();
            const double overlap_w =
                std::min(a.hi.x, b.hi.x) - std::max(a.lo.x, b.lo.x);
            const double overlap_h =
                std::min(a.hi.y, b.hi.y) - std::max(a.lo.y, b.lo.y);
            EXPECT_FALSE(overlap_w > 1.0 && overlap_h > 1.0)
                << "qubits " << i << " and " << j << " share a site";
        }
    }

    // Invariant 2: every padded footprint is in-bounds.
    const Rect &region = nl.region();
    for (const Instance &inst : nl.instances()) {
        const Rect fp = inst.paddedRect();
        EXPECT_GE(fp.lo.x, region.lo.x - 1e-6) << "instance " << inst.id;
        EXPECT_GE(fp.lo.y, region.lo.y - 1e-6) << "instance " << inst.id;
        EXPECT_LE(fp.hi.x, region.hi.x + 1e-6) << "instance " << inst.id;
        EXPECT_LE(fp.hi.y, region.hi.y + 1e-6) << "instance " << inst.id;
        EXPECT_TRUE(std::isfinite(inst.pos.x) &&
                    std::isfinite(inst.pos.y))
            << "instance " << inst.id;
    }

    // Invariant 3: displacement accounting is finite and sane.
    EXPECT_TRUE(std::isfinite(result.qubitDisplacementUm));
    EXPECT_TRUE(std::isfinite(result.segmentDisplacementUm));
    EXPECT_GE(result.qubitDisplacementUm, 0.0);
    EXPECT_GE(result.segmentDisplacementUm, 0.0);

    // And the stack's own verdict must agree.
    EXPECT_TRUE(Legalizer::isLegal(nl));
}

class LegalizerProperties : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(LegalizerProperties, CornerClusterIsLegalized)
{
    Netlist nl = builtNetlist(4, 4);
    clusterPositions(nl, GetParam(), 0.1, 0.1);
    const LegalizeResult result = Legalizer().legalize(nl);
    EXPECT_TRUE(result.legal);
    expectLegalizedInvariants(nl, result);
}

TEST_P(LegalizerProperties, CenterClusterIsLegalized)
{
    Netlist nl = builtNetlist(5, 5);
    clusterPositions(nl, GetParam() + 1000, 0.5, 0.5);
    const LegalizeResult result = Legalizer().legalize(nl);
    EXPECT_TRUE(result.legal);
    expectLegalizedInvariants(nl, result);
}

TEST_P(LegalizerProperties, EdgeClusterWithoutRefinePasses)
{
    // The spiral legalizer alone (flow refine and integration off)
    // must already establish the occupancy invariants.
    Netlist nl = builtNetlist(4, 4);
    clusterPositions(nl, GetParam() + 2000, 0.9, 0.2);
    LegalizerParams params;
    params.flowRefine = false;
    params.integration = false;
    const LegalizeResult result = Legalizer(params).legalize(nl);
    expectLegalizedInvariants(nl, result);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LegalizerProperties,
                         ::testing::Values(11, 42, 137, 9001));

TEST(LegalizerProperties, CoincidentPositionsAreSeparated)
{
    // Fully degenerate input: every instance at the exact same point.
    Netlist nl = builtNetlist(3, 3);
    const Vec2 center(nl.region().lo.x + 0.5 * nl.region().width(),
                      nl.region().lo.y + 0.5 * nl.region().height());
    for (Instance &inst : nl.instances())
        inst.pos = center;
    const LegalizeResult result = Legalizer().legalize(nl);
    EXPECT_TRUE(result.legal);
    expectLegalizedInvariants(nl, result);
}

} // namespace
} // namespace qplacer
