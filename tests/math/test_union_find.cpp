#include <gtest/gtest.h>

#include "math/union_find.hpp"

namespace qplacer {
namespace {

TEST(UnionFind, StartsAsSingletons)
{
    UnionFind uf(5);
    EXPECT_EQ(uf.numSets(), 5u);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(uf.setSize(i), 1u);
    EXPECT_FALSE(uf.connected(0, 1));
}

TEST(UnionFind, UniteMergesAndCounts)
{
    UnionFind uf(4);
    EXPECT_TRUE(uf.unite(0, 1));
    EXPECT_TRUE(uf.unite(2, 3));
    EXPECT_EQ(uf.numSets(), 2u);
    EXPECT_TRUE(uf.connected(0, 1));
    EXPECT_FALSE(uf.connected(0, 2));
    EXPECT_TRUE(uf.unite(1, 3));
    EXPECT_EQ(uf.numSets(), 1u);
    EXPECT_TRUE(uf.connected(0, 2));
    EXPECT_EQ(uf.setSize(3), 4u);
}

TEST(UnionFind, UniteSameSetReturnsFalse)
{
    UnionFind uf(3);
    uf.unite(0, 1);
    EXPECT_FALSE(uf.unite(1, 0));
    EXPECT_EQ(uf.numSets(), 2u);
}

TEST(UnionFind, ChainCompresses)
{
    UnionFind uf(100);
    for (std::size_t i = 0; i + 1 < 100; ++i)
        uf.unite(i, i + 1);
    EXPECT_EQ(uf.numSets(), 1u);
    EXPECT_EQ(uf.setSize(0), 100u);
    EXPECT_TRUE(uf.connected(0, 99));
}

} // namespace
} // namespace qplacer
