#include <gtest/gtest.h>

#include "math/dct.hpp"
#include "util/rng.hpp"

namespace qplacer {
namespace {

std::vector<double>
randomVector(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> v(n);
    for (auto &x : v)
        x = rng.uniform(-2.0, 2.0);
    return v;
}

class DctSizes : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(DctSizes, FastDct2MatchesDirect)
{
    const auto x = randomVector(GetParam(), 10 + GetParam());
    const auto fast = Dct::dct2(x);
    const auto ref = Dct::dct2Direct(x);
    ASSERT_EQ(fast.size(), ref.size());
    for (std::size_t i = 0; i < fast.size(); ++i)
        EXPECT_NEAR(fast[i], ref[i], 1e-8 * (1.0 + std::abs(ref[i])));
}

TEST_P(DctSizes, CosSeriesMatchesDirect)
{
    const auto c = randomVector(GetParam(), 20 + GetParam());
    const auto fast = Dct::cosSeries(c);
    const auto ref = Dct::cosSeriesDirect(c);
    for (std::size_t i = 0; i < fast.size(); ++i)
        EXPECT_NEAR(fast[i], ref[i], 1e-7 * (1.0 + std::abs(ref[i])));
}

TEST_P(DctSizes, SinSeriesMatchesDirect)
{
    const auto c = randomVector(GetParam(), 30 + GetParam());
    const auto fast = Dct::sinSeries(c);
    const auto ref = Dct::sinSeriesDirect(c);
    for (std::size_t i = 0; i < fast.size(); ++i)
        EXPECT_NEAR(fast[i], ref[i], 1e-7 * (1.0 + std::abs(ref[i])));
}

TEST_P(DctSizes, Idct2InvertsDct2)
{
    const auto x = randomVector(GetParam(), 40 + GetParam());
    const auto y = Dct::idct2(Dct::dct2(x));
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(y[i], x[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DctSizes,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128));

TEST(Dct, ConstantSignalHasOnlyDc)
{
    const std::vector<double> x(16, 3.0);
    const auto X = Dct::dct2(x);
    EXPECT_NEAR(X[0], 48.0, 1e-9); // sum of samples
    for (std::size_t k = 1; k < X.size(); ++k)
        EXPECT_NEAR(X[k], 0.0, 1e-9);
}

TEST(Dct, SinSeriesOfZeroIsZero)
{
    const std::vector<double> c(32, 0.0);
    for (double v : Dct::sinSeries(c))
        EXPECT_EQ(v, 0.0);
}

TEST(Dct, NonPowerOfTwoPanics)
{
    std::vector<double> x(10, 1.0);
    EXPECT_THROW(Dct::dct2(x), std::logic_error);
    EXPECT_THROW(Dct::idct2(x), std::logic_error);
}

} // namespace
} // namespace qplacer
