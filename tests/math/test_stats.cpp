#include <gtest/gtest.h>

#include <cmath>

#include "math/stats.hpp"

namespace qplacer {
namespace {

TEST(Stats, Mean)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, Geomean)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({8.0}), 8.0, 1e-12);
    EXPECT_THROW(geomean({1.0, 0.0}), std::runtime_error);
}

TEST(Stats, Stddev)
{
    EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
    EXPECT_NEAR(stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}),
                std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, MinMax)
{
    EXPECT_DOUBLE_EQ(minOf({3.0, 1.0, 2.0}), 1.0);
    EXPECT_DOUBLE_EQ(maxOf({3.0, 1.0, 2.0}), 3.0);
    EXPECT_THROW(minOf({}), std::runtime_error);
    EXPECT_THROW(maxOf({}), std::runtime_error);
}

TEST(Stats, Median)
{
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
    EXPECT_THROW(median({}), std::runtime_error);
}

} // namespace
} // namespace qplacer
