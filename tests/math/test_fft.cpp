#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "math/fft.hpp"
#include "util/rng.hpp"

namespace qplacer {
namespace {

using Complex = Fft::Complex;

TEST(Fft, PowerOfTwoDetection)
{
    EXPECT_TRUE(Fft::isPowerOfTwo(1));
    EXPECT_TRUE(Fft::isPowerOfTwo(64));
    EXPECT_FALSE(Fft::isPowerOfTwo(0));
    EXPECT_FALSE(Fft::isPowerOfTwo(3));
    EXPECT_FALSE(Fft::isPowerOfTwo(96));
}

TEST(Fft, ForwardMatchesDirectDft)
{
    Rng rng(1);
    const std::size_t n = 32;
    std::vector<Complex> x(n);
    for (auto &v : x)
        v = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));

    std::vector<Complex> ref(n);
    for (std::size_t k = 0; k < n; ++k) {
        Complex acc(0, 0);
        for (std::size_t m = 0; m < n; ++m) {
            const double ang = -2.0 * std::numbers::pi *
                               static_cast<double>(k * m) /
                               static_cast<double>(n);
            acc += x[m] * Complex(std::cos(ang), std::sin(ang));
        }
        ref[k] = acc;
    }

    std::vector<Complex> fast = x;
    Fft::forward(fast);
    for (std::size_t k = 0; k < n; ++k) {
        EXPECT_NEAR(fast[k].real(), ref[k].real(), 1e-9);
        EXPECT_NEAR(fast[k].imag(), ref[k].imag(), 1e-9);
    }
}

TEST(Fft, InverseRoundTrip)
{
    Rng rng(2);
    for (std::size_t n : {1u, 2u, 8u, 128u}) {
        std::vector<Complex> x(n);
        for (auto &v : x)
            v = Complex(rng.uniform(-5, 5), rng.uniform(-5, 5));
        std::vector<Complex> y = x;
        Fft::forward(y);
        Fft::inverse(y);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_NEAR(y[i].real(), x[i].real(), 1e-9);
            EXPECT_NEAR(y[i].imag(), x[i].imag(), 1e-9);
        }
    }
}

TEST(Fft, DeltaHasFlatSpectrum)
{
    std::vector<Complex> x(16, Complex(0, 0));
    x[0] = Complex(1, 0);
    Fft::forward(x);
    for (const auto &v : x) {
        EXPECT_NEAR(v.real(), 1.0, 1e-12);
        EXPECT_NEAR(v.imag(), 0.0, 1e-12);
    }
}

TEST(Fft, SingleToneLandsInOneBin)
{
    const std::size_t n = 64;
    const std::size_t tone = 5;
    std::vector<Complex> x(n);
    for (std::size_t m = 0; m < n; ++m) {
        const double ang = 2.0 * std::numbers::pi *
                           static_cast<double>(tone * m) /
                           static_cast<double>(n);
        x[m] = Complex(std::cos(ang), std::sin(ang));
    }
    Fft::forward(x);
    for (std::size_t k = 0; k < n; ++k) {
        const double expected = (k == tone) ? static_cast<double>(n) : 0.0;
        EXPECT_NEAR(std::abs(x[k]), expected, 1e-8);
    }
}

TEST(Fft, NonPowerOfTwoPanics)
{
    std::vector<Complex> x(12);
    EXPECT_THROW(Fft::forward(x), std::logic_error);
}

} // namespace
} // namespace qplacer
