/**
 * @file
 * Plan-equivalence suite: the precomputed DctPlan/FftPlan execution
 * path must be *bitwise*-identical (memcmp, not just EXPECT_DOUBLE_EQ)
 * to the plan-free reference kernels, over random inputs at every
 * power-of-two length from 2 to 1024 and across thread counts. This is
 * the contract that lets the Poisson solver switch to plans without
 * perturbing a single placement.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "core/poisson.hpp"
#include "math/dct.hpp"
#include "math/dct_plan.hpp"
#include "math/fft.hpp"
#include "math/fft_plan.hpp"
#include "math/plan_cache.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace qplacer {
namespace {

std::vector<double>
randomVector(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> v(n);
    for (auto &x : v)
        x = rng.uniform(-2.0, 2.0);
    return v;
}

/** memcmp equality: same bits, not merely same values. */
::testing::AssertionResult
bitwiseEqual(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size())
        return ::testing::AssertionFailure()
               << "size " << a.size() << " vs " << b.size();
    if (!a.empty() &&
        std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) != 0) {
        for (std::size_t i = 0; i < a.size(); ++i) {
            if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0)
                return ::testing::AssertionFailure()
                       << "first bit difference at index " << i << ": "
                       << a[i] << " vs " << b[i];
        }
    }
    return ::testing::AssertionSuccess();
}

constexpr Dct::Kind kKinds[] = {Dct::Kind::Dct2, Dct::Kind::Idct2,
                                Dct::Kind::CosSeries,
                                Dct::Kind::SinSeries};

class PlanSizes : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(PlanSizes, FftPlanMatchesFftBitwise)
{
    const std::size_t n = GetParam();
    const auto re = randomVector(n, 100 + n);
    const auto im = randomVector(n, 200 + n);
    std::vector<Fft::Complex> reference(n);
    for (std::size_t i = 0; i < n; ++i)
        reference[i] = Fft::Complex(re[i], im[i]);
    std::vector<Fft::Complex> planned = reference;

    const FftPlan plan(n);
    Fft::forward(reference);
    plan.forward(planned.data());
    ASSERT_EQ(0, std::memcmp(reference.data(), planned.data(),
                             n * sizeof(Fft::Complex)));

    Fft::inverse(reference);
    plan.inverse(planned.data());
    ASSERT_EQ(0, std::memcmp(reference.data(), planned.data(),
                             n * sizeof(Fft::Complex)));
}

TEST_P(PlanSizes, ApplyMatchesDctKernelsBitwise)
{
    const std::size_t n = GetParam();
    const DctPlan plan(n);
    DctScratch scratch;
    scratch.ensure(1);
    for (const Dct::Kind kind : kKinds) {
        const auto x =
            randomVector(n, 300 + n + static_cast<std::size_t>(kind));
        const std::vector<double> reference = Dct::apply(kind, x);
        std::vector<double> planned = x;
        plan.apply(kind, planned.data(), scratch.lane(0));
        EXPECT_TRUE(bitwiseEqual(reference, planned))
            << "kind " << static_cast<int>(kind) << " length " << n;
    }
}

TEST_P(PlanSizes, ScratchLaneReuseIsStateless)
{
    // Back-to-back transforms through one lane (as the batched passes
    // do) must not see stale state from the previous line.
    const std::size_t n = GetParam();
    const DctPlan plan(n);
    DctScratch scratch;
    scratch.ensure(1);
    for (int round = 0; round < 3; ++round) {
        for (const Dct::Kind kind : kKinds) {
            const auto x = randomVector(n, 400 + n + round);
            std::vector<double> planned = x;
            plan.apply(kind, planned.data(), scratch.lane(0));
            EXPECT_TRUE(bitwiseEqual(Dct::apply(kind, x), planned));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PlanSizes,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128, 256,
                                           512, 1024));

class PlanThreads : public ::testing::TestWithParam<int>
{
  protected:
    ThreadPool *
    pool()
    {
        if (GetParam() <= 1)
            return nullptr;
        if (!pool_)
            pool_ = std::make_unique<ThreadPool>(GetParam());
        return pool_.get();
    }

  private:
    std::unique_ptr<ThreadPool> pool_;
};

TEST_P(PlanThreads, TransformRowsMatchesUnplannedBitwise)
{
    const int nx = 64;
    const int ny = 128; // Above kGrainCoarse so the pool engages.
    for (const Dct::Kind kind : kKinds) {
        const auto map = randomVector(
            static_cast<std::size_t>(nx) * ny,
            500 + static_cast<std::size_t>(kind));
        std::vector<double> reference = map;
        std::vector<double> planned = map;
        Dct::transformRowsUnplanned(reference, nx, ny, kind, pool());
        Dct::transformRows(planned, nx, ny, kind, pool());
        EXPECT_TRUE(bitwiseEqual(reference, planned))
            << "kind " << static_cast<int>(kind) << " threads "
            << GetParam();
    }
}

TEST_P(PlanThreads, TransformColsMatchesUnplannedBitwise)
{
    const int nx = 128;
    const int ny = 64;
    for (const Dct::Kind kind : kKinds) {
        const auto map = randomVector(
            static_cast<std::size_t>(nx) * ny,
            600 + static_cast<std::size_t>(kind));
        std::vector<double> reference = map;
        std::vector<double> planned = map;
        Dct::transformColsUnplanned(reference, nx, ny, kind, pool());
        Dct::transformCols(planned, nx, ny, kind, pool());
        EXPECT_TRUE(bitwiseEqual(reference, planned))
            << "kind " << static_cast<int>(kind) << " threads "
            << GetParam();
    }
}

TEST_P(PlanThreads, PoissonSolveMatchesUnplannedBitwise)
{
    const int n = 128; // Above kGrainCoarse so the pool engages.
    const auto density =
        randomVector(static_cast<std::size_t>(n) * n, 700);
    const PoissonSolver planned(n, n, 4000.0, 4000.0, pool(),
                                PoissonSolver::Path::Planned);
    const PoissonSolver unplanned(n, n, 4000.0, 4000.0, pool(),
                                  PoissonSolver::Path::Unplanned);
    const PoissonSolver::Solution a = planned.solve(density);
    const PoissonSolver::Solution b = unplanned.solve(density);
    EXPECT_TRUE(bitwiseEqual(a.potential, b.potential));
    EXPECT_TRUE(bitwiseEqual(a.fieldX, b.fieldX));
    EXPECT_TRUE(bitwiseEqual(a.fieldY, b.fieldY));
}

TEST_P(PlanThreads, RepeatedSolvesReuseScratchBitwise)
{
    // The solver's internal scratch must carry no state between
    // solves: identical inputs give identical outputs, and a solve on
    // different data in between must not perturb that.
    const int n = 64;
    const auto density =
        randomVector(static_cast<std::size_t>(n) * n, 800);
    const auto other =
        randomVector(static_cast<std::size_t>(n) * n, 801);
    const PoissonSolver solver(n, n, 2000.0, 2000.0, pool());
    const PoissonSolver::Solution first = solver.solve(density);
    solver.solve(other);
    const PoissonSolver::Solution again = solver.solve(density);
    EXPECT_TRUE(bitwiseEqual(first.potential, again.potential));
    EXPECT_TRUE(bitwiseEqual(first.fieldX, again.fieldX));
    EXPECT_TRUE(bitwiseEqual(first.fieldY, again.fieldY));
}

INSTANTIATE_TEST_SUITE_P(Threads, PlanThreads,
                         ::testing::Values(1, 2, 8));

TEST(PlanCache, SharesOnePlanPerLength)
{
    const auto a = PlanCache::dct(64);
    const auto b = PlanCache::dct(64);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_NE(a.get(), PlanCache::dct(128).get());
    EXPECT_EQ(PlanCache::fft(64).get(), PlanCache::fft(64).get());
    EXPECT_GE(PlanCache::size(), 3u);
}

TEST(PlanCache, RectangularMapsUseBothLengths)
{
    // A non-square map exercises distinct row/column plans through one
    // shared scratch, mirroring a rectangular Poisson grid.
    const int nx = 32;
    const int ny = 256;
    const auto map =
        randomVector(static_cast<std::size_t>(nx) * ny, 900);
    std::vector<double> reference = map;
    std::vector<double> planned = map;
    Dct::transformRowsUnplanned(reference, nx, ny, Dct::Kind::Dct2,
                                nullptr);
    Dct::transformColsUnplanned(reference, nx, ny, Dct::Kind::CosSeries,
                                nullptr);
    DctScratch scratch;
    PlanCache::dct(nx)->transformRows(planned, nx, ny, Dct::Kind::Dct2,
                                      nullptr, scratch);
    PlanCache::dct(ny)->transformCols(planned, nx, ny,
                                      Dct::Kind::CosSeries, nullptr,
                                      scratch);
    EXPECT_TRUE(bitwiseEqual(reference, planned));
}

TEST(Plan, NonPowerOfTwoLengthPanics)
{
    EXPECT_THROW(FftPlan(12), std::logic_error);
    EXPECT_THROW(DctPlan(10), std::logic_error);
    EXPECT_THROW(PlanCache::dct(48), std::logic_error);
}

} // namespace
} // namespace qplacer
