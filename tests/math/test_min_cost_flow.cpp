#include <gtest/gtest.h>

#include "math/min_cost_flow.hpp"

namespace qplacer {
namespace {

TEST(MinCostFlow, SimplePath)
{
    MinCostFlow flow(3);
    flow.addEdge(0, 1, 5, 2);
    flow.addEdge(1, 2, 3, 1);
    const auto r = flow.solve(0, 2);
    EXPECT_EQ(r.flow, 3);
    EXPECT_EQ(r.cost, 3 * 3);
}

TEST(MinCostFlow, PrefersCheaperParallelEdge)
{
    MinCostFlow flow(2);
    const int cheap = flow.addEdge(0, 1, 2, 1);
    const int costly = flow.addEdge(0, 1, 2, 10);
    const auto r = flow.solve(0, 1, 3);
    EXPECT_EQ(r.flow, 3);
    EXPECT_EQ(r.cost, 2 * 1 + 1 * 10);
    EXPECT_EQ(flow.flowOn(cheap), 2);
    EXPECT_EQ(flow.flowOn(costly), 1);
}

TEST(MinCostFlow, AssignmentProblem)
{
    // 2 workers, 2 jobs: optimal assignment picks the off-diagonal.
    // cost(w0,j0)=9, cost(w0,j1)=1, cost(w1,j0)=2, cost(w1,j1)=8.
    MinCostFlow flow(6);
    const int s = 4;
    const int t = 5;
    flow.addEdge(s, 0, 1, 0);
    flow.addEdge(s, 1, 1, 0);
    flow.addEdge(2, t, 1, 0);
    flow.addEdge(3, t, 1, 0);
    const int e00 = flow.addEdge(0, 2, 1, 9);
    const int e01 = flow.addEdge(0, 3, 1, 1);
    const int e10 = flow.addEdge(1, 2, 1, 2);
    const int e11 = flow.addEdge(1, 3, 1, 8);
    const auto r = flow.solve(s, t);
    EXPECT_EQ(r.flow, 2);
    EXPECT_EQ(r.cost, 3);
    EXPECT_EQ(flow.flowOn(e01), 1);
    EXPECT_EQ(flow.flowOn(e10), 1);
    EXPECT_EQ(flow.flowOn(e00), 0);
    EXPECT_EQ(flow.flowOn(e11), 0);
}

TEST(MinCostFlow, RespectsMaxFlow)
{
    MinCostFlow flow(2);
    flow.addEdge(0, 1, 100, 1);
    const auto r = flow.solve(0, 1, 7);
    EXPECT_EQ(r.flow, 7);
    EXPECT_EQ(r.cost, 7);
}

TEST(MinCostFlow, DisconnectedGivesZeroFlow)
{
    MinCostFlow flow(4);
    flow.addEdge(0, 1, 1, 1);
    flow.addEdge(2, 3, 1, 1);
    const auto r = flow.solve(0, 3);
    EXPECT_EQ(r.flow, 0);
    EXPECT_EQ(r.cost, 0);
}

TEST(MinCostFlow, NegativeCostPanics)
{
    MinCostFlow flow(2);
    EXPECT_THROW(flow.addEdge(0, 1, 1, -5), std::logic_error);
}

TEST(MinCostFlow, BadNodePanics)
{
    MinCostFlow flow(2);
    EXPECT_THROW(flow.addEdge(0, 7, 1, 1), std::logic_error);
}

} // namespace
} // namespace qplacer
