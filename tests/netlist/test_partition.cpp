#include <gtest/gtest.h>

#include <cmath>

#include "netlist/partition.hpp"
#include "physics/resonator.hpp"

namespace qplacer {
namespace {

TEST(Partition, CeilOfAreaOverBlock)
{
    PartitionParams p;
    p.segmentUm = 300.0;
    p.wireWidthUm = 100.0;
    // 10 mm x 100 um = 1 mm^2; blocks of 0.09 mm^2 -> ceil(11.1) = 12.
    EXPECT_EQ(segmentCount(10000.0, p), 12);
}

TEST(Partition, ExactDivisionHasNoExtraBlock)
{
    PartitionParams p;
    p.segmentUm = 100.0;
    p.wireWidthUm = 100.0;
    EXPECT_EQ(segmentCount(500.0, p), 5);
}

TEST(Partition, AtLeastOneSegment)
{
    PartitionParams p;
    p.segmentUm = 5000.0;
    EXPECT_EQ(segmentCount(100.0, p), 1);
}

TEST(Partition, InvalidInputsFatal)
{
    PartitionParams p;
    EXPECT_THROW(segmentCount(0.0, p), std::runtime_error);
    p.segmentUm = -1.0;
    EXPECT_THROW(segmentCount(100.0, p), std::runtime_error);
}

class SegmentCountsPerLb
    : public ::testing::TestWithParam<std::pair<double, std::pair<int, int>>>
{
};

TEST_P(SegmentCountsPerLb, PaperBandSegmentRange)
{
    // Table II consistency: per-resonator segment counts for the paper's
    // frequency band at each block size l_b.
    const auto [lb, range] = GetParam();
    PartitionParams p;
    p.segmentUm = lb;
    const int hi_f = segmentCount(resonatorLengthUm(7.0e9), p);
    const int lo_f = segmentCount(resonatorLengthUm(6.0e9), p);
    EXPECT_EQ(hi_f, range.first);  // shortest resonator
    EXPECT_EQ(lo_f, range.second); // longest resonator
}

INSTANTIATE_TEST_SUITE_P(
    TableII, SegmentCountsPerLb,
    ::testing::Values(std::make_pair(200.0, std::make_pair(24, 28)),
                      std::make_pair(300.0, std::make_pair(11, 13)),
                      std::make_pair(400.0, std::make_pair(6, 7))));

} // namespace
} // namespace qplacer
