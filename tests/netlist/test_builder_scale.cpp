/**
 * @file
 * 1024-qubit smoke for the prefix-summed threaded netlist builder: the
 * parallel fill must land every instance, net, and resonator at the
 * exact offset the sequential reference builder appends it to, pass
 * validate(), and populate the build.stages sub-timings the flow
 * surfaces. ctest -L assign.
 */

#include <gtest/gtest.h>

#include "freq/assigner.hpp"
#include "netlist/builder.hpp"
#include "pipeline/flow.hpp"
#include "topology/generators.hpp"
#include "util/thread_pool.hpp"

namespace qplacer {
namespace {

TEST(BuilderScale, Grid32x32MatchesReferenceAppendOrder)
{
    const Topology topo = makeGrid(32, 32);
    const FrequencyAssigner assigner;
    const auto freqs = assigner.assign(topo);

    PartitionParams ref_params;
    ref_params.buildEngine = BuildEngine::Reference;
    const Netlist ref =
        NetlistBuilder(ref_params).build(topo, freqs, 0.72);

    PartitionParams fast_params;
    fast_params.buildEngine = BuildEngine::Fast;
    fast_params.buildSerialBelow = 0;
    ThreadPool pool(8);
    BuildStats stats;
    const Netlist fast = NetlistBuilder(fast_params)
                             .build(topo, freqs, 0.72, &pool, &stats);

    ASSERT_EQ(fast.numQubits(), 1024);
    EXPECT_GT(fast.numInstances(), fast.numQubits());
    EXPECT_TRUE(bitwiseSameNetlist(ref, fast));
    EXPECT_NO_THROW(fast.validate());

    // The prefix-summed offsets must reproduce the sequential append
    // order: qubits first, then each coupler's segment chain
    // contiguously, with the qubit--chain--qubit nets in chain order.
    int next_instance = fast.numQubits();
    std::size_t next_net = 0;
    for (const Resonator &res : fast.resonators()) {
        ASSERT_FALSE(res.segments.empty());
        EXPECT_EQ(res.segments.front(), next_instance);
        for (std::size_t s = 0; s + 1 < res.segments.size(); ++s)
            EXPECT_EQ(res.segments[s + 1], res.segments[s] + 1);
        next_instance = res.segments.back() + 1;

        ASSERT_LT(next_net + res.segments.size(), fast.nets().size() + 1);
        EXPECT_EQ(fast.nets()[next_net].a, res.qubitA);
        EXPECT_EQ(fast.nets()[next_net].b, res.segments.front());
        EXPECT_EQ(fast.nets()[next_net + res.segments.size()].a,
                  res.segments.back());
        EXPECT_EQ(fast.nets()[next_net + res.segments.size()].b,
                  res.qubitB);
        next_net += res.segments.size() + 1;
    }
    EXPECT_EQ(next_instance, fast.numInstances());
    EXPECT_EQ(next_net, fast.nets().size());

    EXPECT_EQ(stats.threads, 8);
    EXPECT_GE(stats.segmentsSeconds, 0.0);
    EXPECT_GE(stats.instancesSeconds, 0.0);
    EXPECT_GE(stats.warmStartSeconds, 0.0);
    EXPECT_GE(stats.finalizeSeconds, 0.0);
    EXPECT_GT(stats.segmentsSeconds + stats.instancesSeconds +
                  stats.warmStartSeconds + stats.finalizeSeconds,
              0.0);
}

TEST(BuilderScale, FlowSurfacesAssignAndBuildStageTimings)
{
    FlowParams params;
    params.placer.maxIters = 30;
    const FlowResult result =
        QplacerFlow(params).run(makeGrid(4, 4));

    ASSERT_TRUE(result.status.ok());
    EXPECT_GE(result.buildStats.threads, 1);
    EXPECT_GT(result.assignStats.interferenceSeconds +
                  result.assignStats.qubitColorSeconds +
                  result.assignStats.resonatorGraphSeconds +
                  result.assignStats.resonatorColorSeconds,
              0.0);
    EXPECT_GT(result.buildStats.segmentsSeconds +
                  result.buildStats.instancesSeconds +
                  result.buildStats.warmStartSeconds +
                  result.buildStats.finalizeSeconds,
              0.0);
}

} // namespace
} // namespace qplacer
