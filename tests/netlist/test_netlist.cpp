#include <gtest/gtest.h>

#include "netlist/netlist.hpp"

namespace qplacer {
namespace {

Instance
makeQubit(double freq = 5.0e9, int qubit_id = 0)
{
    Instance q;
    q.kind = InstanceKind::Qubit;
    q.qubit = qubit_id;
    q.width = 400;
    q.height = 400;
    q.pad = 400;
    q.freqHz = freq;
    return q;
}

Instance
makeSegment(int resonator, int ordinal, double freq = 6.5e9)
{
    Instance s;
    s.kind = InstanceKind::ResonatorSegment;
    s.resonator = resonator;
    s.segment = ordinal;
    s.width = 300;
    s.height = 300;
    s.pad = 100;
    s.freqHz = freq;
    return s;
}

TEST(Instance, SharedPaddingSemantics)
{
    const Instance q = makeQubit();
    // pad/2 per side: 400 + 400 = 800 wide; touching footprints leave
    // the d_q = 400 um bare gap.
    EXPECT_DOUBLE_EQ(q.paddedWidth(), 800.0);
    EXPECT_DOUBLE_EQ(q.paddedArea(), 640000.0);

    const Instance s = makeSegment(0, 0);
    EXPECT_DOUBLE_EQ(s.paddedWidth(), 400.0);
}

TEST(Instance, RectsFollowPosition)
{
    Instance q = makeQubit();
    q.pos = {1000, 2000};
    EXPECT_EQ(q.rect().center(), Vec2(1000, 2000));
    EXPECT_DOUBLE_EQ(q.rect().width(), 400.0);
    EXPECT_DOUBLE_EQ(q.paddedRect().width(), 800.0);
}

TEST(Netlist, BuildsAndValidates)
{
    Netlist nl;
    nl.addInstance(makeQubit(5.0e9, 0));
    nl.addInstance(makeQubit(5.1e9, 1));
    Resonator res;
    res.qubitA = 0;
    res.qubitB = 1;
    res.freqHz = 6.5e9;
    res.segments.push_back(nl.addInstance(makeSegment(0, 0)));
    res.segments.push_back(nl.addInstance(makeSegment(0, 1)));
    nl.addResonator(res);
    nl.addNet(0, 2);
    nl.addNet(2, 3);
    nl.addNet(3, 1);
    nl.sizeRegion(0.7);

    EXPECT_EQ(nl.numQubits(), 2);
    EXPECT_EQ(nl.numInstances(), 4);
    EXPECT_NO_THROW(nl.validate());
    EXPECT_EQ(nl.qubitInstance(0), 0);
}

TEST(Netlist, QubitsMustComeFirst)
{
    Netlist nl;
    nl.addInstance(makeQubit());
    nl.addInstance(makeSegment(0, 0));
    EXPECT_THROW(nl.addInstance(makeQubit()), std::logic_error);
}

TEST(Netlist, RegionSizing)
{
    Netlist nl;
    nl.addInstance(makeQubit());
    nl.sizeRegion(0.5);
    // One 800x800 padded qubit at 50% utilization.
    EXPECT_NEAR(nl.region().area(), 640000.0 / 0.5, 1.0);
    EXPECT_THROW(nl.sizeRegion(0.0), std::runtime_error);
    EXPECT_THROW(nl.sizeRegion(1.5), std::runtime_error);
}

TEST(Netlist, TotalPaddedArea)
{
    Netlist nl;
    nl.addInstance(makeQubit());
    nl.addInstance(makeQubit());
    EXPECT_DOUBLE_EQ(nl.totalPaddedArea(), 2 * 640000.0);
}

TEST(Netlist, FrequencyAndGroupViews)
{
    Netlist nl;
    nl.addInstance(makeQubit(4.9e9));
    nl.addInstance(makeSegment(2, 0, 6.1e9));
    EXPECT_EQ(nl.frequencies(), (std::vector<double>{4.9e9, 6.1e9}));
    EXPECT_EQ(nl.resonatorGroups(), (std::vector<int>{-1, 2}));
}

TEST(Netlist, ClampIntoRegion)
{
    Netlist nl;
    nl.addInstance(makeQubit());
    nl.setRegion(Rect(0, 0, 2000, 2000));
    nl.instance(0).pos = {-500, 5000};
    nl.clampIntoRegion();
    const Rect fp = nl.instance(0).paddedRect();
    EXPECT_GE(fp.lo.x, 0.0);
    EXPECT_LE(fp.hi.y, 2000.0);
}

TEST(Netlist, DegenerateNetPanics)
{
    Netlist nl;
    nl.addInstance(makeQubit());
    EXPECT_THROW(nl.addNet(0, 0), std::logic_error);
    EXPECT_THROW(nl.addNet(0, 5), std::logic_error);
}

TEST(Netlist, BrokenSegmentChainFailsValidation)
{
    Netlist nl;
    nl.addInstance(makeQubit());
    Resonator res;
    res.qubitA = 0;
    res.qubitB = 0;
    res.segments.push_back(nl.addInstance(makeSegment(0, 1))); // bad ord
    nl.addResonator(res);
    EXPECT_THROW(nl.validate(), std::logic_error);
}

} // namespace
} // namespace qplacer
