#include <gtest/gtest.h>

#include "freq/assigner.hpp"
#include "netlist/builder.hpp"
#include "topology/factory.hpp"

namespace qplacer {
namespace {

Netlist
buildFor(const std::string &topo_name, double lb = 300.0)
{
    const Topology topo = makeTopology(topo_name);
    const auto freqs = FrequencyAssigner().assign(topo);
    PartitionParams p;
    p.segmentUm = lb;
    return NetlistBuilder(p).build(topo, freqs);
}

TEST(Builder, QubitInstancesMatchTopology)
{
    const Netlist nl = buildFor("Falcon");
    EXPECT_EQ(nl.numQubits(), 27);
    for (int q = 0; q < 27; ++q) {
        EXPECT_EQ(nl.instance(q).kind, InstanceKind::Qubit);
        EXPECT_EQ(nl.instance(q).qubit, q);
        EXPECT_DOUBLE_EQ(nl.instance(q).width, kQubitSizeUm);
        EXPECT_DOUBLE_EQ(nl.instance(q).pad, kQubitPadUm);
    }
}

TEST(Builder, OneResonatorPerCoupler)
{
    const Netlist nl = buildFor("Falcon");
    EXPECT_EQ(nl.resonators().size(), 28u);
    for (const Resonator &res : nl.resonators()) {
        EXPECT_GE(res.segments.size(), 1u);
        EXPECT_GT(res.lengthUm, 9000.0);
        EXPECT_LT(res.lengthUm, 11000.0);
    }
}

struct CellSpec
{
    const char *name;
    double lb;
    int paper_cells;
};

class TableIICells : public ::testing::TestWithParam<CellSpec>
{
};

TEST_P(TableIICells, CellCountNearPaper)
{
    // Table II reports #cells per (topology, l_b); our counts should be
    // within 6% (resonator frequencies differ slightly from theirs).
    const CellSpec spec = GetParam();
    const Netlist nl = buildFor(spec.name, spec.lb);
    const double rel =
        std::abs(nl.numInstances() - spec.paper_cells) /
        static_cast<double>(spec.paper_cells);
    EXPECT_LT(rel, 0.06) << spec.name << " lb=" << spec.lb << " got "
                         << nl.numInstances() << " want ~"
                         << spec.paper_cells;
}

INSTANTIATE_TEST_SUITE_P(
    TableII, TableIICells,
    ::testing::Values(CellSpec{"Grid", 200, 1050},
                      CellSpec{"Grid", 300, 490},
                      CellSpec{"Grid", 400, 299},
                      CellSpec{"Xtree", 300, 660},
                      CellSpec{"Falcon", 200, 744},
                      CellSpec{"Falcon", 300, 354},
                      CellSpec{"Falcon", 400, 218},
                      CellSpec{"Eagle", 300, 1801},
                      CellSpec{"Aspen-11", 300, 598},
                      CellSpec{"Aspen-M", 300, 1310}),
    [](const auto &info) {
        std::string n = info.param.name;
        for (char &c : n)
            if (c == '-')
                c = '_';
        return n + "_lb" + std::to_string(static_cast<int>(info.param.lb));
    });

TEST(Builder, NetsChainSegmentsBetweenQubits)
{
    const Netlist nl = buildFor("Grid");
    // Every resonator with k segments contributes k+1 nets.
    std::size_t expected = 0;
    for (const Resonator &res : nl.resonators())
        expected += res.segments.size() + 1;
    EXPECT_EQ(nl.nets().size(), expected);
}

TEST(Builder, WarmStartInsideRegion)
{
    const Netlist nl = buildFor("Aspen-11");
    for (const Instance &inst : nl.instances()) {
        EXPECT_TRUE(
            nl.region().inflated(1.0).containsRect(inst.paddedRect()))
            << "instance " << inst.id;
    }
}

TEST(Builder, SegmentsInheritResonatorFrequency)
{
    const Netlist nl = buildFor("Grid");
    for (const Resonator &res : nl.resonators()) {
        for (int seg : res.segments)
            EXPECT_DOUBLE_EQ(nl.instance(seg).freqHz, res.freqHz);
    }
}

TEST(Builder, MismatchedAssignmentIsFatal)
{
    const Topology grid = makeTopology("Grid");
    const Topology falcon = makeTopology("Falcon");
    const auto freqs = FrequencyAssigner().assign(falcon);
    EXPECT_THROW(NetlistBuilder().build(grid, freqs),
                 std::runtime_error);
}

} // namespace
} // namespace qplacer
