/**
 * @file
 * qplacer_cli: command-line driver for the Fig. 7 end-to-end flow.
 *
 * Builds a topology (paper device or parametric spec), runs the chosen
 * placement mode, and emits metrics (stdout + optional CSV) and artifacts
 * (SVG schematic, plain-text layout).
 *
 * Examples:
 *   qplacer_cli --topology Falcon --csv falcon.csv --svg falcon.svg
 *   qplacer_cli --topology grid3x3 --mode classic --seed 7
 *   qplacer_cli --topology heavyhex3x9 --set placer.maxIters=300
 *   qplacer_cli --topology grid8x8 --jobs 8 --report json --quiet
 */

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "qplacer.hpp"
#include "util/config.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace qplacer {
namespace {

/** Output format selected with --report. */
enum class ReportFormat { Table, Json };

struct CliOptions
{
    std::string topology = "Falcon";
    PlacerMode mode = PlacerMode::Qplacer;
    std::uint64_t seed = 1;
    int threads = 0;
    int jobs = 1;
    int workers = 0;
    int portfolioSeeds = 1;
    double segmentUm = 300.0;
    Config overrides;
    std::string csvPath;
    std::string svgPath;
    std::string layoutPath;
    double svgScale = 0.05;
    ReportFormat report = ReportFormat::Table;
    bool listTopologies = false;
    bool quiet = false;
    bool help = false;
};

const char *kUsage =
    R"(qplacer_cli - frequency-aware quantum-chip placement driver

Usage: qplacer_cli [options]

Options:
  --topology SPEC     Device topology (default: Falcon). SPEC is either a
                      paper device (Grid, Xtree, Falcon, Eagle, Aspen-11,
                      Aspen-M) or a parametric spec: gridRxC (e.g. grid3x3),
                      heavyhexRxW, octagonRxC.
  --mode MODE         qplacer | classic | human (default: qplacer).
  --seed N            RNG seed for the placer (default: 1).
  --threads N         Worker threads for the placement hot path
                      (default 0 = hardware concurrency, capped; 1 =
                      serial). Same seed + thread count reproduces the
                      placement bit for bit.
  --jobs N            Place the topology N times with seeds seed..seed+N-1
                      through one PlacementSession (default: 1). Per-job
                      seeds wrap modulo 2^64: a base seed near
                      UINT64_MAX deterministically continues at 0, 1,
                      ... Jobs run concurrently (see --workers); each
                      job is placed single-threaded when jobs run
                      concurrently, so a batch reproduces N serial
                      --threads 1 runs bit for bit.
  --workers M         Concurrent jobs for --jobs (default 0 = hardware
                      concurrency, capped; 1 = serial batch).
  --portfolio N       Multi-start portfolio: race N candidates seeded
                      seed..seed+N-1 (wrapping mod 2^64), prune the
                      weak half at doubling checkpoints, and keep the
                      winner's layout (default: 1 = plain single-seed
                      flow). Tune with --set portfolio.pruneAt /
                      portfolio.keepFrac; add --set detailed.enabled=1
                      for an annealing polish of the winner.
                      Incompatible with --jobs > 1.
  --segment UM        Resonator segment size l_b in um (default: 300).
  --set KEY=VALUE     Override a flow parameter; repeatable. Keys:
                      targetUtil, placer.maxIters, placer.minIters,
                      placer.targetDensity, placer.bins,
                      placer.stopOverflow, placer.freqForce,
                      placer.freqWeight, placer.freqCutoffFactor,
                      placer.threads,
                      assigner.distance2, assigner.detuningThresholdGHz,
                      assigner.referenceEngine,
                      builder.reference, builder.serialBelow,
                      legalizer.cellUm, legalizer.flowRefine,
                      legalizer.flowSparseThreshold,
                      legalizer.flowSparseNeighbors,
                      legalizer.referenceProbes,
                      legalizer.integration, hotspot.adjacencyTolUm,
                      incremental.maxIters, incremental.snapToleranceUm,
                      detailed.enabled, detailed.iters,
                      detailed.tempStart, detailed.tempDecay,
                      portfolio.seeds, portfolio.pruneAt,
                      portfolio.keepFrac.
  --csv PATH          Write a metrics CSV to PATH (one row per job).
  --svg PATH          Render the placed layout to PATH as SVG (--jobs 1).
  --layout PATH       Save instance positions ("id kind x y freq") to PATH
                      (--jobs 1).
  --svg-scale X       SVG pixels per um (default: 0.05).
  --report FORMAT     table (default) or json. json prints a machine-
                      readable FlowResult report (status, per-stage
                      seconds, HPWL, overflow, Ph%, area, fidelity) to
                      stdout; combine with --quiet for pure-JSON output.
  --list-topologies   Print the known topology names and exit.
  --quiet             Suppress status logging (errors still shown).
  --help              Show this message.
)";

/** std::stod with a CLI-grade error message; rejects nan/inf. */
double
parseDouble(const std::string &value, const std::string &flag)
{
    try {
        std::size_t consumed = 0;
        const double v = std::stod(value, &consumed);
        if (consumed != value.size() || !std::isfinite(v))
            throw std::invalid_argument(value);
        return v;
    } catch (const std::exception &) {
        fatal("expected a finite number for " + flag + ", got '" + value +
              "'");
    }
}

/** parseDouble, additionally requiring a strictly positive value. */
double
parsePositiveDouble(const std::string &value, const std::string &flag)
{
    const double v = parseDouble(value, flag);
    if (v <= 0.0)
        fatal("expected a positive number for " + flag + ", got '" + value +
              "'");
    return v;
}

/** std::stoull with a CLI-grade error message. */
std::uint64_t
parseUint(const std::string &value, const std::string &flag)
{
    try {
        // std::stoull accepts and wraps a leading minus sign; reject it.
        if (value.empty() ||
            !std::isdigit(static_cast<unsigned char>(value[0])))
            throw std::invalid_argument(value);
        std::size_t consumed = 0;
        const std::uint64_t v = std::stoull(value, &consumed);
        if (consumed != value.size())
            throw std::invalid_argument(value);
        return v;
    } catch (const std::exception &) {
        fatal("expected a non-negative integer for " + flag + ", got '" +
              value + "'");
    }
}

std::string
toLower(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

/**
 * Resolve a topology spec through the shared factory helper
 * (resolveTopologySpec); unknown or malformed specs are a CLI error.
 */
Topology
resolveTopology(const std::string &spec)
{
    Topology topo;
    std::string error;
    if (!resolveTopologySpec(spec, topo, &error))
        fatal(error + " (see --list-topologies)");
    return topo;
}

PlacerMode
parseMode(const std::string &value)
{
    const std::string lower = toLower(value);
    if (lower == "qplacer")
        return PlacerMode::Qplacer;
    if (lower == "classic")
        return PlacerMode::Classic;
    if (lower == "human")
        return PlacerMode::Human;
    fatal("unknown mode '" + value + "' (expected qplacer|classic|human)");
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions opts;
    auto need = [&](int &i, const std::string &flag) -> std::string {
        if (i + 1 >= argc)
            fatal("missing value for " + flag);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--topology") {
            opts.topology = need(i, arg);
        } else if (arg == "--mode") {
            opts.mode = parseMode(need(i, arg));
        } else if (arg == "--seed") {
            opts.seed = parseUint(need(i, arg), arg);
        } else if (arg == "--threads") {
            opts.threads = static_cast<int>(std::min<std::uint64_t>(
                parseUint(need(i, arg), arg), ThreadPool::kMaxThreads));
        } else if (arg == "--jobs") {
            const std::uint64_t jobs = parseUint(need(i, arg), arg);
            if (jobs == 0)
                fatal("--jobs must be at least 1");
            if (jobs > 100000)
                fatal("--jobs capped at 100000, got " +
                      std::to_string(jobs));
            opts.jobs = static_cast<int>(jobs);
        } else if (arg == "--workers") {
            opts.workers = static_cast<int>(std::min<std::uint64_t>(
                parseUint(need(i, arg), arg), ThreadPool::kMaxThreads));
        } else if (arg == "--portfolio") {
            const std::uint64_t seeds = parseUint(need(i, arg), arg);
            if (seeds == 0)
                fatal("--portfolio must be at least 1");
            if (seeds > 1024)
                fatal("--portfolio capped at 1024, got " +
                      std::to_string(seeds));
            opts.portfolioSeeds = static_cast<int>(seeds);
        } else if (arg == "--report") {
            const std::string format = toLower(need(i, arg));
            if (format == "table")
                opts.report = ReportFormat::Table;
            else if (format == "json")
                opts.report = ReportFormat::Json;
            else
                fatal("unknown --report format '" + format +
                      "' (expected table|json)");
        } else if (arg == "--segment") {
            opts.segmentUm = parsePositiveDouble(need(i, arg), arg);
        } else if (arg == "--set") {
            const std::string kv = need(i, arg);
            const auto eq = kv.find('=');
            if (eq == std::string::npos || eq == 0)
                fatal("--set expects KEY=VALUE, got '" + kv + "'");
            const std::string key = kv.substr(0, eq);
            if (!isKnownSetKey(key))
                fatal("unknown --set key '" + key + "' (see --help)");
            opts.overrides.set(key, kv.substr(eq + 1));
        } else if (arg == "--csv") {
            opts.csvPath = need(i, arg);
        } else if (arg == "--svg") {
            opts.svgPath = need(i, arg);
        } else if (arg == "--layout") {
            opts.layoutPath = need(i, arg);
        } else if (arg == "--svg-scale") {
            opts.svgScale = parsePositiveDouble(need(i, arg), arg);
        } else if (arg == "--list-topologies") {
            opts.listTopologies = true;
        } else if (arg == "--quiet") {
            opts.quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            opts.help = true;
        } else {
            fatal("unknown option '" + arg + "' (see --help)");
        }
    }
    return opts;
}

/**
 * Per-job seed: job i of a batch runs with base seed + i, wrapping
 * modulo 2^64. Unsigned overflow is well-defined, so a base seed near
 * UINT64_MAX deterministically continues at 0, 1, ... rather than
 * being implementation-defined; the boundary is covered by a smoke
 * test. Resolved seeds are pairwise distinct for any --jobs value the
 * cap admits (wrapping collides only after 2^64 jobs); run() still
 * rejects duplicates defensively rather than assuming the invariant.
 */
std::uint64_t
jobSeed(const CliOptions &opts, std::size_t job)
{
    return opts.seed + static_cast<std::uint64_t>(job);
}

/**
 * Reject batches whose resolved per-job seeds collide -- duplicate
 * seeds would silently place the same layout twice and skew any
 * statistic derived from the batch. Unreachable under the current
 * --jobs cap (see jobSeed), but checked, not assumed.
 */
void
rejectDuplicateSeeds(const CliOptions &opts)
{
    std::vector<std::uint64_t> seeds;
    seeds.reserve(static_cast<std::size_t>(opts.jobs));
    for (std::size_t job = 0; job < static_cast<std::size_t>(opts.jobs);
         ++job)
        seeds.push_back(jobSeed(opts, job));
    std::sort(seeds.begin(), seeds.end());
    const auto dup = std::adjacent_find(seeds.begin(), seeds.end());
    if (dup != seeds.end())
        fatal("duplicate resolved seed " + std::to_string(*dup) +
              " in --jobs batch (base seed " + std::to_string(opts.seed) +
              ", " + std::to_string(opts.jobs) + " jobs)");
}

/**
 * The seed a report row names for a result: the winning candidate's
 * seed when a portfolio ran (the layout is that candidate's), the
 * batch job seed otherwise.
 */
std::uint64_t
reportSeed(const CliOptions &opts, std::size_t job, const FlowResult &r)
{
    return r.portfolioStats.portfolio ? r.portfolioStats.winnerSeed
                                      : jobSeed(opts, job);
}

void
writeMetricsCsv(const std::string &path, const Topology &topo,
                const CliOptions &opts,
                const std::vector<FlowResult> &results)
{
    CsvWriter csv(path);
    csv.header({"topology", "mode", "qubits", "couplers", "cells",
                "freq_slots", "iterations", "converged", "overflow", "hpwl_um",
                "legal", "qubit_disp_um", "segment_disp_um", "ph_percent",
                "impacted_qubits", "utilization", "amer_um2", "apoly_um2",
                "seconds", "seed", "status"});
    for (std::size_t job = 0; job < results.size(); ++job) {
        const FlowResult &result = results[job];
        csv.row(
            {CsvWriter::cell(topo.name),
             CsvWriter::cell(std::string(placerModeName(opts.mode))),
             CsvWriter::cell(static_cast<long long>(topo.numQubits())),
             CsvWriter::cell(static_cast<long long>(topo.numCouplers())),
             CsvWriter::cell(
                 static_cast<long long>(result.netlist.numInstances())),
             CsvWriter::cell(
                 static_cast<long long>(result.freqs.numQubitSlots)),
             CsvWriter::cell(static_cast<long long>(result.place.iterations)),
             CsvWriter::cell(static_cast<long long>(result.place.converged)),
             CsvWriter::cell(result.place.finalOverflow),
             CsvWriter::cell(result.place.finalHpwl),
             CsvWriter::cell(static_cast<long long>(result.legal.legal)),
             CsvWriter::cell(result.legal.qubitDisplacementUm),
             CsvWriter::cell(result.legal.segmentDisplacementUm),
             CsvWriter::cell(result.hotspots.phPercent),
             CsvWriter::cell(static_cast<long long>(
                 result.hotspots.impactedQubits.size())),
             CsvWriter::cell(result.area.utilization),
             CsvWriter::cell(result.area.amerUm2),
             CsvWriter::cell(result.area.apolyUm2),
             CsvWriter::cell(result.seconds),
             // As a string: uint64 seeds overflow long long and lose
             // precision through double.
             CsvWriter::cell(std::to_string(reportSeed(opts, job, result))),
             CsvWriter::cell(
                 std::string(flowCodeName(result.status.code)))});
    }
}

/**
 * The fidelity proxy for --report json: the largest Bernstein-Vazirani
 * benchmark the device fits, averaged over a small fixed subset count
 * (matching the golden regressions). Devices under 4 qubits report
 * none.
 */
const char *
fidelityBenchmarkFor(const Topology &topo)
{
    if (topo.numQubits() >= 16)
        return "bv-16";
    if (topo.numQubits() >= 9)
        return "bv-9";
    if (topo.numQubits() >= 4)
        return "bv-4";
    return nullptr;
}

/** Minimal JSON string escaping (quotes, backslashes, control chars). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNum(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

/**
 * Machine-readable flow report (--report json): one object per job
 * with the structured status, per-stage seconds, and the headline
 * metrics, plus a batch aggregate. Schema is versioned so service/CI
 * consumers can detect changes.
 */
void
printReportJson(std::ostream &os, const Topology &topo,
                const CliOptions &opts,
                const std::vector<FlowResult> &results,
                double wall_seconds)
{
    const char *benchmark = fidelityBenchmarkFor(topo);
    EvaluatorParams eparams;
    eparams.numSubsets = 8;
    const Evaluator evaluator(eparams);
    // One circuit for the whole batch; only the mapping differs per
    // job (the placeholder is never evaluated).
    const Circuit circuit = benchmark != nullptr ? makeBenchmark(benchmark)
                                                 : Circuit(1, "none");

    os << "{\n";
    os << "  \"schema\": \"qplacer.flow_report/1\",\n";
    os << "  \"topology\": \"" << jsonEscape(topo.name) << "\",\n";
    os << "  \"mode\": \"" << placerModeName(opts.mode) << "\",\n";
    os << "  \"qubits\": " << topo.numQubits() << ",\n";
    os << "  \"jobs\": [\n";
    int ok_jobs = 0;
    for (std::size_t job = 0; job < results.size(); ++job) {
        const FlowResult &r = results[job];
        ok_jobs += r.status.ok() ? 1 : 0;
        os << "    {\n";
        os << "      \"seed\": " << reportSeed(opts, job, r) << ",\n";
        os << "      \"status\": {\"code\": \""
           << flowCodeName(r.status.code) << "\", \"stage\": \""
           << jsonEscape(r.status.stage) << "\", \"message\": \""
           << jsonEscape(r.status.message) << "\"},\n";
        os << "      \"stages\": [";
        for (std::size_t s = 0; s < r.stageTimings.size(); ++s) {
            os << (s ? ", " : "") << "{\"stage\": \""
               << jsonEscape(r.stageTimings[s].stage)
               << "\", \"seconds\": " << jsonNum(r.stageTimings[s].seconds)
               << "}";
        }
        os << "],\n";
        os << "      \"cells\": " << r.netlist.numInstances() << ",\n";
        os << "      \"freq_slots\": " << r.freqs.numQubitSlots << ",\n";
        os << "      \"assign\": {\"stages\": {\"interference\": "
           << jsonNum(r.assignStats.interferenceSeconds)
           << ", \"qubit_color\": "
           << jsonNum(r.assignStats.qubitColorSeconds)
           << ", \"resonator_graph\": "
           << jsonNum(r.assignStats.resonatorGraphSeconds)
           << ", \"resonator_color\": "
           << jsonNum(r.assignStats.resonatorColorSeconds) << "}},\n";
        os << "      \"build\": {\"threads\": " << r.buildStats.threads
           << ", \"stages\": {\"segments\": "
           << jsonNum(r.buildStats.segmentsSeconds)
           << ", \"instances\": "
           << jsonNum(r.buildStats.instancesSeconds)
           << ", \"warm_start\": "
           << jsonNum(r.buildStats.warmStartSeconds)
           << ", \"finalize\": " << jsonNum(r.buildStats.finalizeSeconds)
           << "}},\n";
        os << "      \"place\": {\"iterations\": " << r.place.iterations
           << ", \"converged\": " << (r.place.converged ? "true" : "false")
           << ", \"cancelled\": " << (r.place.cancelled ? "true" : "false")
           << ", \"overflow\": " << jsonNum(r.place.finalOverflow)
           << ", \"hpwl_um\": " << jsonNum(r.place.finalHpwl) << "},\n";
        os << "      \"legal\": {\"legal\": "
           << (r.legal.legal ? "true" : "false")
           << ", \"qubit_disp_um\": "
           << jsonNum(r.legal.qubitDisplacementUm)
           << ", \"segment_disp_um\": "
           << jsonNum(r.legal.segmentDisplacementUm)
           << ", \"unintegrated\": " << r.legal.integration.unintegrated
           << ", \"stages\": {\"spiral\": "
           << jsonNum(r.legal.spiralSeconds)
           << ", \"flow_refine\": " << jsonNum(r.legal.flowRefineSeconds)
           << ", \"tetris\": " << jsonNum(r.legal.tetrisSeconds)
           << ", \"integration\": "
           << jsonNum(r.legal.integrationSeconds) << "}},\n";
        os << "      \"area\": {\"amer_um2\": " << jsonNum(r.area.amerUm2)
           << ", \"apoly_um2\": " << jsonNum(r.area.apolyUm2)
           << ", \"utilization\": " << jsonNum(r.area.utilization)
           << "},\n";
        os << "      \"hotspots\": {\"ph_percent\": "
           << jsonNum(r.hotspots.phPercent)
           << ", \"pairs\": " << r.hotspots.pairs.size()
           << ", \"impacted_qubits\": " << r.hotspots.impactedQubits.size()
           << "},\n";
        // Additive members, mirroring jobReportJson: present only when
        // the corresponding stage actually ran.
        if (r.multidie.active) {
            os << "      \"multidie\": {\"dies\": " << r.multidie.dies
               << ", \"crossing_couplers\": "
               << r.multidie.crossingCouplers << ", \"crossing_wl_um\": "
               << jsonNum(r.multidie.crossingWirelengthUm)
               << ", \"per_die\": [";
            for (std::size_t d = 0; d < r.multidie.dieInstances.size();
                 ++d) {
                os << (d ? ", " : "") << "{\"instances\": "
                   << r.multidie.dieInstances[d] << ", \"utilization\": "
                   << jsonNum(r.multidie.dieUtilization[d]) << "}";
            }
            os << "]},\n";
        }
        if (r.detailed.ran) {
            os << "      \"detailed\": {\"sweeps\": " << r.detailed.sweeps
               << ", \"proposed\": " << r.detailed.proposed
               << ", \"accepted\": " << r.detailed.accepted
               << ", \"swaps\": " << r.detailed.swaps
               << ", \"relocates\": " << r.detailed.relocates
               << ", \"hpwl_before_um\": " << jsonNum(r.detailed.hpwlBefore)
               << ", \"hpwl_after_um\": " << jsonNum(r.detailed.hpwlAfter)
               << ", \"collisions_before\": "
               << r.detailed.collisionsBefore
               << ", \"collisions_after\": " << r.detailed.collisionsAfter
               << ", \"seconds\": " << jsonNum(r.detailed.seconds)
               << "},\n";
        }
        if (r.portfolioStats.portfolio) {
            const PortfolioStats &p = r.portfolioStats;
            os << "      \"portfolio\": {\"seeds\": " << p.seeds
               << ", \"rungs\": " << p.rungs << ", \"winner_seed\": "
               << p.winnerSeed << ", \"candidates\": [";
            for (std::size_t c = 0; c < p.candidates.size(); ++c) {
                const PortfolioCandidate &cand = p.candidates[c];
                os << (c ? ", " : "") << "{\"seed\": " << cand.seed
                   << ", \"pruned_at\": " << cand.prunedAtIters
                   << ", \"probe_overflow\": "
                   << jsonNum(cand.probeOverflow)
                   << ", \"probe_hpwl_um\": " << jsonNum(cand.probeHpwl)
                   << ", \"ran_full\": "
                   << (cand.ranFull ? "true" : "false")
                   << ", \"final_hpwl_um\": " << jsonNum(cand.finalHpwl)
                   << ", \"winner\": " << (cand.winner ? "true" : "false")
                   << "}";
            }
            os << "]},\n";
        }
        if (benchmark != nullptr && r.status.ok()) {
            const BenchmarkResult b =
                evaluator.evaluate(topo, r.netlist, circuit);
            os << "      \"fidelity\": {\"benchmark\": \"" << benchmark
               << "\", \"mean\": " << jsonNum(b.meanFidelity)
               << ", \"min\": " << jsonNum(b.minFidelity)
               << ", \"max\": " << jsonNum(b.maxFidelity) << "},\n";
        } else {
            os << "      \"fidelity\": null,\n";
        }
        os << "      \"seconds\": " << jsonNum(r.seconds) << "\n";
        os << "    }" << (job + 1 < results.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"aggregate\": {\"jobs\": " << results.size()
       << ", \"ok\": " << ok_jobs
       << ", \"wall_seconds\": " << jsonNum(wall_seconds)
       << ", \"placements_per_sec\": "
       << jsonNum(wall_seconds > 0.0
                      ? static_cast<double>(results.size()) / wall_seconds
                      : 0.0)
       << "}\n";
    os << "}\n";
}

/** Compact one-row-per-job table for batch runs. */
void
printBatchSummary(const Topology &topo, const CliOptions &opts,
                  const std::vector<FlowResult> &results,
                  double wall_seconds)
{
    TextTable table;
    table.header({"seed", "status", "iters", "overflow", "HPWL (um)",
                  "legal", "Ph (%)", "util", "seconds"});
    for (std::size_t job = 0; job < results.size(); ++job) {
        const FlowResult &r = results[job];
        table.row({std::to_string(jobSeed(opts, job)),
                   flowCodeName(r.status.code),
                   TextTable::num(r.place.iterations, 0),
                   TextTable::num(r.place.finalOverflow, 4),
                   TextTable::num(r.place.finalHpwl, 1),
                   r.legal.legal ? "yes" : "no",
                   TextTable::num(r.hotspots.phPercent, 2),
                   TextTable::num(r.area.utilization, 4),
                   TextTable::num(r.seconds, 2)});
    }
    std::cout << table.render();
    std::printf("%s: %zu jobs in %.2fs (%.2f placements/sec)\n",
                topo.name.c_str(), results.size(), wall_seconds,
                wall_seconds > 0.0
                    ? static_cast<double>(results.size()) / wall_seconds
                    : 0.0);
}

void
printSummary(const Topology &topo, const CliOptions &opts,
             const FlowResult &result)
{
    TextTable table;
    table.header({"metric", "value"});
    table.row({"topology", topo.name});
    table.row({"mode", placerModeName(opts.mode)});
    table.row({"qubits", TextTable::num(topo.numQubits(), 0)});
    table.row({"couplers", TextTable::num(topo.numCouplers(), 0)});
    table.row({"cells", TextTable::num(result.netlist.numInstances(), 0)});
    table.row({"freq slots", TextTable::num(result.freqs.numQubitSlots, 0)});
    if (opts.mode != PlacerMode::Human) {
        table.row({"iterations", TextTable::num(result.place.iterations, 0)});
        table.row({"overflow", TextTable::num(result.place.finalOverflow, 4)});
        table.row({"HPWL (um)", TextTable::num(result.place.finalHpwl, 1)});
        table.row({"legal", result.legal.legal ? "yes" : "no"});
        if (result.portfolioStats.portfolio) {
            table.row({"portfolio seeds",
                       TextTable::num(result.portfolioStats.seeds, 0)});
            table.row({"winner seed",
                       std::to_string(result.portfolioStats.winnerSeed)});
        }
        if (result.detailed.ran) {
            table.row({"detailed sweeps",
                       TextTable::num(result.detailed.sweeps, 0)});
            table.row({"detailed HPWL (um)",
                       TextTable::num(result.detailed.hpwlAfter, 1)});
        }
    }
    table.row({"P_h (%)", TextTable::num(result.hotspots.phPercent, 2)});
    table.row({"utilization", TextTable::num(result.area.utilization, 4)});
    table.row({"A_mer (um^2)", TextTable::num(result.area.amerUm2, 0)});
    table.row({"wall clock (s)", TextTable::num(result.seconds, 2)});
    std::cout << table.render();
}

int
run(int argc, char **argv)
{
    const CliOptions opts = parseArgs(argc, argv);
    if (opts.help) {
        std::cout << kUsage;
        return 0;
    }
    if (opts.listTopologies) {
        for (const std::string &name : paperTopologyNames())
            std::cout << name << "\n";
        std::cout << "gridRxC heavyhexRxW octagonRxC (parametric)\n";
        return 0;
    }
    if (opts.quiet)
        Logger::instance().setLevel(LogLevel::Warn);

    const Topology topo = resolveTopology(opts.topology);
    topo.validate();

    FlowParams params;
    params.mode = opts.mode;
    params.partition.segmentUm = opts.segmentUm;
    params.placer.seed = opts.seed;
    params.placer.threads = opts.threads;
    applyOverrides(opts.overrides, params);

    // Surface bad --set combinations as a CLI error up front instead
    // of a per-job status after the (possibly long) run started.
    std::string params_error;
    params.normalized(&params_error);
    if (!params_error.empty())
        fatal(params_error);

    if (opts.jobs > 1 &&
        (!opts.svgPath.empty() || !opts.layoutPath.empty()))
        fatal("--svg/--layout need a single layout; use --jobs 1");
    if (opts.portfolioSeeds > 1 && opts.jobs > 1)
        fatal("--portfolio races seeds inside one job; use --jobs 1");
    if (opts.jobs > 1)
        rejectDuplicateSeeds(opts);

    SessionParams session_params;
    session_params.flow = params;
    session_params.workers = opts.workers;
    PlacementSession session(session_params);

    Timer wall;
    std::vector<FlowResult> results;
    if (opts.portfolioSeeds > 1) {
        results.push_back(
            session.runPortfolio(topo, params, opts.portfolioSeeds));
    } else if (opts.jobs <= 1) {
        results.push_back(session.run(topo, params));
    } else {
        std::vector<FlowParams> batch(static_cast<std::size_t>(opts.jobs),
                                      params);
        for (std::size_t job = 0; job < batch.size(); ++job)
            batch[job].placer.seed = jobSeed(opts, job);
        results = session.runBatch(topo, batch);
    }
    const double wall_seconds = wall.seconds();

    // The CSV is a per-job report and carries a status column, so
    // failed jobs stay visible there; the layout artifacts, however,
    // must never materialize from a failed or cancelled run (a
    // file-existence check downstream would pick up a bogus layout).
    if (!opts.csvPath.empty())
        writeMetricsCsv(opts.csvPath, topo, opts, results);
    if (results.front().status.ok()) {
        if (!opts.svgPath.empty()) {
            SvgOptions svg;
            svg.scale = opts.svgScale;
            writeLayoutSvg(results.front().netlist, opts.svgPath, svg);
        }
        if (!opts.layoutPath.empty())
            saveLayout(results.front().netlist, opts.layoutPath);
    }

    if (opts.report == ReportFormat::Json) {
        printReportJson(std::cout, topo, opts, results, wall_seconds);
    } else if (!opts.quiet) {
        if (results.size() == 1)
            printSummary(topo, opts, results.front());
        else
            printBatchSummary(topo, opts, results, wall_seconds);
    }

    int rc = 0;
    for (std::size_t job = 0; job < results.size(); ++job) {
        const FlowStatus &status = results[job].status;
        if (!status.ok()) {
            std::cerr << "qplacer_cli: job " << job << " (seed "
                      << reportSeed(opts, job, results[job]) << ") "
                      << flowCodeName(status.code)
                      << (status.stage.empty() ? "" : " in stage ")
                      << status.stage << ": " << status.message << "\n";
            rc = 1;
        }
    }
    return rc;
}

} // namespace
} // namespace qplacer

int
main(int argc, char **argv)
{
    try {
        return qplacer::run(argc, argv);
    } catch (const std::exception &e) {
        std::cerr << "qplacer_cli: " << e.what() << "\n";
        return 1;
    }
}
