/**
 * @file
 * qplacer_server: the placement-as-a-service daemon.
 *
 * Speaks the qplacer.serve/1 newline-delimited JSON protocol
 * (docs/PROTOCOL.md) over stdin/stdout by default, or over a Unix
 * domain socket with --socket. All engine logic lives in
 * PlacementServer (src/service/server.hpp); this file is transport
 * only: read lines, hand them to the server, serialize the responses.
 *
 * Transport hardening: request lines are bounded (--max-line-bytes,
 * default 8 MiB) -- an oversized line is discarded up to its newline
 * and answered with a structured "line_too_long" error instead of
 * ballooning memory; every socket syscall retries EINTR
 * (util/net_retry.hpp) so stray signals cannot tear down a healthy
 * connection.
 *
 * Examples:
 *   echo '{"type":"submit","id":"a","topology":"Falcon"}' \
 *     | qplacer_server --workers 2
 *   qplacer_server --socket /tmp/qplacer.sock &
 *   printf '%s\n' '{"type":"ping"}' | nc -U /tmp/qplacer.sock
 *
 * Logging goes to stderr (util/logging.hpp), so stdout stays pure
 * NDJSON even with --workers > 1.
 */

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <string>

#include "qplacer.hpp"
#include "util/failpoint.hpp"
#include "util/logging.hpp"

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/net_retry.hpp"
#endif

namespace qplacer {
namespace {

struct ServerCliOptions
{
    int workers = 0;        ///< 0 = hardware concurrency, capped.
    std::string socketPath; ///< Empty = stdin/stdout transport.
    std::string stateDir;   ///< Empty = memory-only prior store.
    int maxQueue = 0;       ///< 0 = unbounded queue.
    int snapshotEvery = 32;
    double defaultDeadlineMs = 0.0; ///< 0 = no default deadline.
    long maxLineBytes = 8L * 1024 * 1024;
    bool enableFailpoints = false;
    bool quiet = false;
    bool help = false;
};

const char *kUsage =
    R"(qplacer_server - placement-as-a-service daemon (qplacer.serve/1)

Reads newline-delimited JSON requests and writes one JSON response per
line; see docs/PROTOCOL.md for the wire format. A warm PlacementSession
per worker keeps thread pools and plan caches alive across jobs, and
submit requests with a "base" field re-place incrementally from a prior
job's layout.

Usage: qplacer_server [options]

Options:
  --workers N    Concurrent jobs (default 0 = hardware concurrency,
                 capped; 1 = strictly ordered). With N > 1 each job is
                 placed single-threaded, so results stay bitwise-
                 identical to serial runs.
  --socket PATH  Serve on a Unix domain socket instead of stdin/stdout
                 (one protocol session per connection; POSIX only).
  --state-dir PATH
                 Persist finished layouts (the incremental-re-place
                 prior store) in PATH: an fsynced, CRC-checked journal
                 plus periodic snapshots, replayed on startup. Acked
                 results survive crashes and kill -9.
  --snapshot-every N
                 Journal appends between snapshot compactions under
                 --state-dir (default 32).
  --max-queue N  Reject submits once N jobs are waiting, with a
                 structured "overloaded" error carrying queue_depth and
                 a retry_after_ms backoff hint (default 0 = unbounded).
  --default-deadline-ms MS
                 Deadline for jobs that do not carry their own
                 "deadline_ms", in milliseconds of execution time;
                 expired jobs report status "deadline_exceeded"
                 (default 0 = none).
  --max-line-bytes N
                 Longest accepted request line; longer lines are
                 discarded and answered with a "line_too_long" error
                 (default 8388608 = 8 MiB).
  --enable-failpoints
                 Honor "failpoint" protocol requests and the
                 QPLACER_FAILPOINTS environment variable
                 ("site=error;site2=delay(50);site3=crash") for fault
                 injection. Never enable in production.
  --quiet        Suppress status logging (errors still shown).
  --help         Show this message.
)";

ServerCliOptions
parseArgs(int argc, char **argv)
{
    ServerCliOptions opts;
    auto need = [&](int &i, const std::string &flag) -> std::string {
        if (i + 1 >= argc)
            fatal("missing value for " + flag);
        return argv[++i];
    };
    auto needInt = [&](int &i, const std::string &flag) -> long {
        try {
            return std::stol(need(i, flag));
        } catch (const std::exception &) {
            fatal("expected an integer for " + flag);
        }
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--workers") {
            opts.workers = static_cast<int>(needInt(i, arg));
            if (opts.workers < 0)
                fatal("--workers must be non-negative");
        } else if (arg == "--socket") {
            opts.socketPath = need(i, arg);
        } else if (arg == "--state-dir") {
            opts.stateDir = need(i, arg);
        } else if (arg == "--snapshot-every") {
            opts.snapshotEvery = static_cast<int>(needInt(i, arg));
            if (opts.snapshotEvery < 1)
                fatal("--snapshot-every must be positive");
        } else if (arg == "--max-queue") {
            opts.maxQueue = static_cast<int>(needInt(i, arg));
            if (opts.maxQueue < 0)
                fatal("--max-queue must be non-negative");
        } else if (arg == "--default-deadline-ms") {
            try {
                opts.defaultDeadlineMs = std::stod(need(i, arg));
            } catch (const std::exception &) {
                fatal("expected a number for --default-deadline-ms");
            }
            if (opts.defaultDeadlineMs < 0.0)
                fatal("--default-deadline-ms must be non-negative");
        } else if (arg == "--max-line-bytes") {
            opts.maxLineBytes = needInt(i, arg);
            if (opts.maxLineBytes < 1)
                fatal("--max-line-bytes must be positive");
        } else if (arg == "--enable-failpoints") {
            opts.enableFailpoints = true;
        } else if (arg == "--quiet") {
            opts.quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            opts.help = true;
        } else {
            fatal("unknown option '" + arg + "' (see --help)");
        }
    }
    return opts;
}

ServerOptions
engineOptions(const ServerCliOptions &opts)
{
    ServerOptions options;
    options.workers = opts.workers;
    options.stateDir = opts.stateDir;
    options.snapshotEvery = opts.snapshotEvery;
    options.maxQueue = opts.maxQueue;
    options.defaultDeadlineMs = opts.defaultDeadlineMs;
    options.enableFailpoints = opts.enableFailpoints;
    options.logging = !opts.quiet;
    return options;
}

/** The structured rejection for a request line past the bound. */
JsonValue
lineTooLong(long max_line_bytes)
{
    return makeErrorCode("", "line_too_long",
                         str("request line exceeds --max-line-bytes (",
                             max_line_bytes, " bytes); line discarded"));
}

/** One bounded line read off @p in. */
enum class LineRead
{
    Ok,      ///< A line (possibly empty) is in the buffer.
    TooLong, ///< Line exceeded the bound; discarded to its newline.
    Eof,     ///< Stream ended with no pending line.
};

/**
 * getline with a byte bound: an oversized line is consumed (up to and
 * including its newline) but never buffered whole, so a hostile or
 * corrupt producer cannot balloon daemon memory.
 */
LineRead
readLineBounded(std::istream &in, std::string &line, long max_bytes)
{
    line.clear();
    for (;;) {
        const int c = in.get();
        if (c == std::char_traits<char>::eof())
            return line.empty() ? LineRead::Eof : LineRead::Ok;
        if (c == '\n')
            return LineRead::Ok;
        if (static_cast<long>(line.size()) >= max_bytes) {
            for (;;) {
                const int d = in.get();
                if (d == std::char_traits<char>::eof() || d == '\n')
                    break;
            }
            return LineRead::TooLong;
        }
        line.push_back(static_cast<char>(c));
    }
}

/** Serve one request stream; returns when the peer closes or quits. */
void
serveStream(PlacementServer &server, std::istream &in,
            const ResponseSink &sink, long max_line_bytes)
{
    sink(makeHello(server.workers()));
    std::string line;
    for (;;) {
        const LineRead status = readLineBounded(in, line, max_line_bytes);
        if (status == LineRead::Eof)
            break;
        if (status == LineRead::TooLong) {
            sink(lineTooLong(max_line_bytes));
            continue;
        }
        if (line.empty())
            continue;
        if (!server.handleLine(line, sink))
            break; // Shutdown requested; bye already emitted.
    }
}

int
serveStdio(const ServerCliOptions &opts)
{
    PlacementServer server(engineOptions(opts));
    serveStream(
        server, std::cin,
        [](const JsonValue &response) {
            const std::string text = response.serialize();
            std::fwrite(text.data(), 1, text.size(), stdout);
            std::fputc('\n', stdout);
            std::fflush(stdout);
        },
        opts.maxLineBytes);
    server.drain();
    return 0;
}

#ifndef _WIN32

/** Write all of @p text + newline to @p fd; false on a broken peer. */
bool
writeLine(int fd, const std::string &text)
{
    std::string framed = text;
    framed.push_back('\n');
    return sendAll(fd, framed.data(), framed.size(),
#ifdef MSG_NOSIGNAL
                   MSG_NOSIGNAL
#else
                   0
#endif
    );
}

/**
 * Owns one connection's fd for writing. Job sinks hold this via
 * shared_ptr, so a sink can outlive the connection thread (queued
 * jobs finish after the peer hangs up): once close() ran, emits are
 * dropped instead of writing to a descriptor number the kernel may
 * already have recycled for another accept(). A failed send marks
 * the peer broken (later emits are dropped) but does NOT close the
 * fd -- the recv loop still owns it for reading.
 */
class ConnectionWriter
{
  public:
    explicit ConnectionWriter(int fd) : fd_(fd) {}

    /** The connection's fd; valid until close(), constant for life. */
    int fd() const { return fd_; }

    void
    emit(const JsonValue &response)
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (closed_ || broken_)
            return;
        if (!writeLine(fd_, response.serialize()))
            broken_ = true;
    }

    /** Unblocks a recv() on this fd (EOF) without closing it. */
    void
    shutdownRead()
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!closed_)
            ::shutdown(fd_, SHUT_RD);
    }

    void
    close()
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!closed_) {
            ::close(fd_);
            closed_ = true;
        }
    }

  private:
    std::mutex mu_;
    const int fd_;
    bool closed_ = false;
    bool broken_ = false;
};

/** One connection: bounded line-framed reads, shared PlacementServer. */
void
serveConnection(PlacementServer &server,
                const std::shared_ptr<ConnectionWriter> &writer,
                int listener, std::atomic<bool> &stop,
                long max_line_bytes)
{
    const int fd = writer->fd();
    const ResponseSink sink = [writer](const JsonValue &response) {
        writer->emit(response);
    };
    sink(makeHello(server.workers()));

    std::string buffer;
    char chunk[4096];
    bool open = true;
    // Oversized-line mode: the error was sent; bytes are dropped until
    // the line's terminating newline arrives.
    bool discarding = false;
    while (open) {
        const ssize_t n = retryRecv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0)
            break;
        buffer.append(chunk, static_cast<std::size_t>(n));
        std::size_t eol;
        while (open && (eol = buffer.find('\n')) != std::string::npos) {
            const std::string line = buffer.substr(0, eol);
            buffer.erase(0, eol + 1);
            if (discarding) {
                discarding = false; // Tail of the oversized line.
                continue;
            }
            if (static_cast<long>(line.size()) > max_line_bytes) {
                sink(lineTooLong(max_line_bytes));
                continue;
            }
            if (line.empty())
                continue;
            if (!server.handleLine(line, sink)) {
                stop.store(true);
                // accept() in serveSocket blocks with no one left to
                // connect; shut the listener down so it returns and
                // the daemon can drain and exit.
                ::shutdown(listener, SHUT_RDWR);
                open = false;
            }
        }
        // No newline yet: bound the partial line too, so a peer that
        // never sends '\n' cannot grow the buffer without limit.
        if (open && !discarding &&
            static_cast<long>(buffer.size()) > max_line_bytes) {
            sink(lineTooLong(max_line_bytes));
            discarding = true;
            buffer.clear();
        }
        if (discarding)
            buffer.clear();
    }
    // A peer may half-close its write side right after submitting
    // (the `printf | nc -U` pattern above): recv() sees EOF while its
    // jobs are still queued. Wait for outstanding jobs before closing
    // so their results reach the socket rather than a dead writer.
    server.drain();
    writer->close();
}

int
serveSocket(const ServerCliOptions &opts)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opts.socketPath.size() >= sizeof(addr.sun_path))
        fatal("--socket path too long");
    std::strncpy(addr.sun_path, opts.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);

    const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listener < 0)
        fatal("socket() failed");
    ::unlink(opts.socketPath.c_str());
    if (::bind(listener, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0)
        fatal("bind('" + opts.socketPath + "') failed");
    if (::listen(listener, 8) != 0)
        fatal("listen('" + opts.socketPath + "') failed");
    if (!opts.quiet)
        inform("qplacer_server: listening on " + opts.socketPath);

    PlacementServer server(engineOptions(opts));

    std::atomic<bool> stop{false};
    std::vector<std::thread> connections;
    std::vector<std::weak_ptr<ConnectionWriter>> writers;
    while (!stop.load()) {
        const int fd = retryAccept(listener, nullptr, nullptr);
        if (fd < 0)
            break;
        if (stop.load()) {
            ::close(fd);
            break;
        }
        auto writer = std::make_shared<ConnectionWriter>(fd);
        writers.push_back(writer);
        const long max_line = opts.maxLineBytes;
        connections.emplace_back(
            [&server, writer, listener, &stop, max_line] {
                serveConnection(server, writer, listener, stop, max_line);
            });
    }
    // Kick idle connections out of recv() so the join below cannot
    // hang on a client that stays connected across shutdown.
    for (const std::weak_ptr<ConnectionWriter> &entry : writers)
        if (const auto writer = entry.lock())
            writer->shutdownRead();
    for (std::thread &t : connections)
        if (t.joinable())
            t.join();
    ::close(listener);
    ::unlink(opts.socketPath.c_str());
    server.drain();
    return 0;
}

#endif // !_WIN32

int
serverMain(int argc, char **argv)
{
    const ServerCliOptions opts = parseArgs(argc, argv);
    if (opts.help) {
        std::fputs(kUsage, stdout);
        return 0;
    }
    if (opts.quiet)
        Logger::instance().setLevel(LogLevel::Warn);

    // Fault injection from the environment, same gate as the protocol
    // request. A malformed list is a hard error: silently running
    // without the faults a test asked for would pass vacuously.
    if (const char *env = std::getenv("QPLACER_FAILPOINTS")) {
        if (opts.enableFailpoints) {
            std::string error;
            if (!Failpoints::instance().armFromList(env, &error))
                fatal("QPLACER_FAILPOINTS: " + error);
            if (!opts.quiet)
                inform("qplacer_server: failpoints armed from "
                       "environment");
        } else if (env[0] != '\0') {
            warn("QPLACER_FAILPOINTS is set but --enable-failpoints "
                 "is not; ignoring it");
        }
    }

    if (!opts.socketPath.empty()) {
#ifndef _WIN32
        return serveSocket(opts);
#else
        fatal("--socket is not supported on this platform");
#endif
    }
    return serveStdio(opts);
}

} // namespace
} // namespace qplacer

int
main(int argc, char **argv)
{
    try {
        return qplacer::serverMain(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "qplacer_server: %s\n", e.what());
        return 1;
    }
}
