#!/usr/bin/env bash
# Crash-recovery smoke: a real SIGKILL (no failpoints) against a live
# qplacer_server with --state-dir, then a restart that re-places the
# killed run's job incrementally from the persisted prior.
#
#  1. Start the daemon on a FIFO, submit a job, wait for its result
#     (the ack + result imply the prior is journaled and fsync'd).
#  2. kill -9 the daemon: no shutdown handler runs, nothing flushes.
#  3. Restart over the same state dir, submit an empty-delta re-place
#     with base = the killed run's job, and require "reused_prior":true
#     plus a bitwise-identical layout.
#
# Usage: scripts/crash_recovery_smoke.sh <path-to-qplacer_server>

set -eu

server="${1:?usage: crash_recovery_smoke.sh <path-to-qplacer_server>}"

work="$(mktemp -d)"
state="$work/state"
fifo="$work/requests.fifo"
out1="$work/run1.ndjson"
out2="$work/run2.ndjson"
pid=""

cleanup() {
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
        kill -9 "$pid" 2>/dev/null || true
    fi
    rm -rf "$work"
}
trap cleanup EXIT

submit='{"type":"submit","id":"base","topology":"grid4x4","seed":7,"set":{"placer.maxIters":150},"layout":true}'
redo='{"type":"submit","id":"redo","topology":"grid4x4","seed":7,"set":{"placer.maxIters":150},"layout":true,"base":"base"}'

wait_for() { # wait_for <file> <pattern>
    for _ in $(seq 1 600); do
        if grep -q "$2" "$1" 2>/dev/null; then
            return 0
        fi
        sleep 0.1
    done
    echo "FAIL: timed out waiting for '$2' in $1" >&2
    cat "$1" >&2 || true
    return 1
}

# --- Run 1: serve one job, then die by SIGKILL. ---
mkfifo "$fifo"
"$server" --workers 1 --quiet --state-dir "$state" <"$fifo" >"$out1" &
pid=$!
# Hold the FIFO's write end open for the daemon's whole life.
exec 3>"$fifo"
printf '%s\n' "$submit" >&3
wait_for "$out1" '"type":"result".*"id":"base"'
if ! grep -q '"code":"ok"' "$out1"; then
    echo "FAIL: job did not finish ok" >&2
    cat "$out1" >&2
    exit 1
fi
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""
exec 3>&-
rm -f "$fifo"
echo "run 1: job served, daemon SIGKILLed"

base_layout="$(grep '"id":"base"' "$out1" | grep '"type":"result"' |
    sed 's/.*"layout"://')"
if [[ -z "$base_layout" ]]; then
    echo "FAIL: run 1 result carries no layout" >&2
    exit 1
fi

# --- Run 2: restart, re-place incrementally from the persisted prior. ---
printf '%s\n%s\n' "$redo" '{"type":"shutdown"}' |
    "$server" --workers 1 --quiet --state-dir "$state" >"$out2"
if ! grep -q '"reused_prior":true' "$out2"; then
    echo "FAIL: restarted daemon did not reuse the persisted prior" >&2
    cat "$out2" >&2
    exit 1
fi
redo_layout="$(grep '"id":"redo"' "$out2" | grep '"type":"result"' |
    sed 's/.*"layout"://')"
if [[ "$redo_layout" != "$base_layout" ]]; then
    echo "FAIL: recovered layout diverged from the pre-kill one" >&2
    exit 1
fi
echo "run 2: prior recovered after SIGKILL, layout bitwise identical"
echo "crash-recovery smoke OK"
