#!/usr/bin/env bash
# Doc lint: the --set knob surface and the service docs must stay in
# sync with the code.
#
#  1. Every key in kKnownSetKeys (src/pipeline/overrides.cpp, the
#     single source of truth for --set / request "set" keys) must
#     appear in BUILDING.md's knob table.
#  2. The service documentation set must exist and be linked from
#     BUILDING.md.
#
# Run from the repository root: scripts/check_knob_docs.sh

set -u
cd "$(dirname "$0")/.."

fail=0

overrides=src/pipeline/overrides.cpp
building=BUILDING.md

if [[ ! -f "$overrides" ]]; then
    echo "FAIL: $overrides not found" >&2
    exit 1
fi

# Extract the quoted keys of the kKnownSetKeys initializer.
keys=$(awk '/kKnownSetKeys\[\] = \{/,/^\};/' "$overrides" |
    sed -n 's/^[[:space:]]*"\([^"]*\)",*$/\1/p')
if [[ -z "$keys" ]]; then
    echo "FAIL: could not extract kKnownSetKeys from $overrides" >&2
    exit 1
fi

count=0
while IFS= read -r key; do
    count=$((count + 1))
    if ! grep -q -F "\`$key\`" "$building"; then
        echo "FAIL: --set key '$key' is not documented in $building" >&2
        fail=1
    fi
done <<<"$keys"
echo "checked $count --set keys against $building"

# Every qplacer_server CLI flag must be documented in BUILDING.md.
server_main=tools/qplacer_server.cpp
if [[ ! -f "$server_main" ]]; then
    echo "FAIL: $server_main not found" >&2
    exit 1
fi
flags=$(sed -n 's/.*arg == "\(--[a-z-]*\)".*/\1/p' "$server_main" |
    grep -v -e '^--help$' | sort -u)
if [[ -z "$flags" ]]; then
    echo "FAIL: could not extract server flags from $server_main" >&2
    exit 1
fi
count=0
while IFS= read -r flag; do
    count=$((count + 1))
    # Accept both bare `--flag` and `--flag ARG` spellings.
    if ! grep -q -F -e "\`$flag\`" -e "\`$flag " "$building"; then
        echo "FAIL: server flag '$flag' is not documented in $building" >&2
        fail=1
    fi
done <<<"$flags"
echo "checked $count server flags against $building"

# The documentation set itself, each linked from BUILDING.md.
for doc in docs/ARCHITECTURE.md docs/PROTOCOL.md docs/REPORT_SCHEMA.md; do
    if [[ ! -f "$doc" ]]; then
        echo "FAIL: $doc is missing" >&2
        fail=1
    elif ! grep -q -F "$doc" "$building"; then
        echo "FAIL: $doc is not linked from $building" >&2
        fail=1
    fi
done

if [[ "$fail" -ne 0 ]]; then
    echo "doc lint failed" >&2
    exit 1
fi
echo "doc lint OK"
