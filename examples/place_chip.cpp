/**
 * @file
 * Command-line front end for the flow: place any of the paper's devices
 * with any scheme and export the layout.
 *
 *   place_chip [topology] [mode] [lb_um] [seed] [out.svg]
 *   place_chip Eagle Qplacer 300 1 eagle.svg
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "physics/boxmode.hpp"
#include "qplacer.hpp"

using namespace qplacer;

int
main(int argc, char **argv)
{
    const std::string topo_name = argc > 1 ? argv[1] : "Falcon";
    const std::string mode_name = argc > 2 ? argv[2] : "Qplacer";
    const double lb = argc > 3 ? std::atof(argv[3]) : 300.0;
    const std::uint64_t seed =
        argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1;
    const std::string out = argc > 5 ? argv[5] : topo_name + ".svg";

    PlacerMode mode;
    if (mode_name == "Qplacer")
        mode = PlacerMode::Qplacer;
    else if (mode_name == "Classic")
        mode = PlacerMode::Classic;
    else if (mode_name == "Human")
        mode = PlacerMode::Human;
    else {
        std::fprintf(stderr,
                     "unknown mode '%s' (Qplacer|Classic|Human)\n",
                     mode_name.c_str());
        return 1;
    }

    try {
        const Topology topo = makeTopology(topo_name);
        const FlowResult r = QplacerFlow::runMode(topo, mode, lb, seed);

        std::printf("%s / %s / lb=%.0f um / seed %llu\n",
                    topo_name.c_str(), mode_name.c_str(), lb,
                    static_cast<unsigned long long>(seed));
        std::printf("  cells       %d\n", r.netlist.numInstances());
        std::printf("  substrate   %.1f x %.1f mm (util %.1f%%)\n",
                    r.area.enclosingRect.width() / 1e3,
                    r.area.enclosingRect.height() / 1e3,
                    100.0 * r.area.utilization);
        std::printf("  hotspots    Ph %.2f%%, %zu pairs, %zu impacted "
                    "qubits\n",
                    r.hotspots.phPercent, r.hotspots.pairs.size(),
                    r.hotspots.impactedQubits.size());
        std::printf("  TM110       %.2f GHz (margin %+.2f GHz over the "
                    "7 GHz band)\n",
                    tm110FrequencyHz(r.area.enclosingRect.width(),
                                     r.area.enclosingRect.height()) /
                        1e9,
                    substrateModeMarginHz(r.area.enclosingRect) / 1e9);
        writeLayoutSvg(r.netlist, out);
        std::printf("  wrote       %s\n", out.c_str());
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}
