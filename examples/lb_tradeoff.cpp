/**
 * @file
 * Segment-size trade-off (the Section VI-D study as an API example):
 * sweep the resonator block size l_b on one device and report cell
 * count, runtime, utilization, and hotspot proportion.
 */

#include <cstdio>

#include "qplacer.hpp"

int
main()
{
    using namespace qplacer;

    const Topology topo = makeXtree();
    std::printf("device: %s (%d qubits, %d couplers)\n\n",
                topo.name.c_str(), topo.numQubits(), topo.numCouplers());
    std::printf("%-8s %-8s %-10s %-8s %-8s\n", "lb(mm)", "#cells",
                "runtime(s)", "util(%)", "Ph(%)");

    for (const double lb_mm : {0.2, 0.3, 0.4}) {
        const FlowResult r = QplacerFlow::runMode(
            topo, PlacerMode::Qplacer, lb_mm * 1000.0);
        std::printf("%-8.1f %-8d %-10.2f %-8.1f %-8.2f\n", lb_mm,
                    r.netlist.numInstances(), r.seconds,
                    100.0 * r.area.utilization, r.hotspots.phPercent);
    }
    std::printf("\nSmaller blocks pack better but multiply the cell "
                "count (Table II).\n");
    return 0;
}
