/**
 * @file
 * Seed-sweep with PlacementSession: place one device under several
 * seeds concurrently, watch progress through a FlowObserver, and keep
 * the layout with the fewest frequency hotspots -- the service-style
 * usage of the staged flow API.
 *
 * Build & run:
 *   cmake -B build -DQPLACER_BUILD_EXAMPLES=ON && cmake --build build
 *   ./build/examples/example_batch_session
 */

#include <atomic>
#include <cstdio>

#include "qplacer.hpp"

using namespace qplacer;

namespace {

/** Counts stage events across concurrently running jobs. */
class ProgressCounter : public FlowObserver
{
  public:
    void onStageEnd(const FlowContext &ctx,
                    const StageTiming &timing) override
    {
        (void)ctx;
        (void)timing;
        stagesFinished.fetch_add(1, std::memory_order_relaxed);
    }

    std::atomic<int> stagesFinished{0};
};

} // namespace

int
main()
{
    const Topology topo = makeGrid(4, 4);
    std::printf("device: %s (%d qubits, %d couplers)\n", topo.name.c_str(),
                topo.numQubits(), topo.numCouplers());

    // One batch: the same device and knobs under 6 different seeds
    // (the homogeneous overload shares the one topology).
    FlowParams params;
    params.placer.maxIters = 300;
    std::vector<FlowParams> jobs(6, params);
    for (std::size_t j = 0; j < jobs.size(); ++j)
        jobs[j].placer.seed = j + 1;

    SessionParams sparams;
    sparams.workers = 0; // Auto: one job per core, capped.
    PlacementSession session(sparams);
    ProgressCounter progress;
    session.setObserver(&progress);

    const std::vector<FlowResult> results = session.runBatch(topo, jobs);

    std::printf("%-6s %-8s %-10s %-8s %-8s\n", "seed", "status", "HPWL",
                "Ph(%)", "legal");
    std::size_t best = results.size(); // "none succeeded" sentinel.
    for (std::size_t j = 0; j < results.size(); ++j) {
        const FlowResult &r = results[j];
        std::printf("%-6zu %-8s %-10.0f %-8.2f %s\n", j + 1,
                    flowCodeName(r.status.code), r.place.finalHpwl,
                    r.hotspots.phPercent, r.legal.legal ? "yes" : "no");
        if (r.status.ok() &&
            (best == results.size() ||
             r.hotspots.phPercent < results[best].hotspots.phPercent))
            best = j;
    }
    std::printf("\n%d stage completions observed across the batch\n",
                progress.stagesFinished.load());
    if (best == results.size()) {
        std::fprintf(stderr, "no job succeeded\n");
        return 1;
    }
    std::printf("best seed: %zu (Ph %.2f%%) -> batch_best.svg\n", best + 1,
                results[best].hotspots.phPercent);
    writeLayoutSvg(results[best].netlist, "batch_best.svg");
    return 0;
}
