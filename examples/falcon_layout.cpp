/**
 * @file
 * Reproduces the Fig. 14 scenario: run the full flow on the IBM Falcon
 * 27-qubit heavy-hex device, compare against the Classic and Human
 * layouts, and export SVG prototypes of all three.
 */

#include <cstdio>

#include "qplacer.hpp"

int
main()
{
    using namespace qplacer;

    const Topology topo = makeFalcon();
    std::printf("== %s: %d qubits, %d bus resonators ==\n",
                topo.name.c_str(), topo.numQubits(), topo.numCouplers());

    for (const PlacerMode mode :
         {PlacerMode::Qplacer, PlacerMode::Classic, PlacerMode::Human}) {
        const FlowResult r = QplacerFlow::runMode(topo, mode);
        std::printf("%-8s A_mer %6.1f mm^2  util %5.1f%%  Ph %5.2f%%  "
                    "impacted qubits %zu\n",
                    placerModeName(mode), r.area.amerUm2 / 1e6,
                    100.0 * r.area.utilization, r.hotspots.phPercent,
                    r.hotspots.impactedQubits.size());

        const std::string file =
            std::string("falcon_") + placerModeName(mode) + ".svg";
        writeLayoutSvg(r.netlist, file);
        std::printf("         wrote %s\n", file.c_str());
    }
    return 0;
}
