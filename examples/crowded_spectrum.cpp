/**
 * @file
 * Frequency-crowding study (the Section III-B motivation): shrink the
 * available qubit band and watch frequency reuse -- and therefore the
 * spatial-isolation workload and hotspot risk -- grow. Shows how to
 * drive the flow with custom spectra.
 */

#include <cstdio>

#include "qplacer.hpp"

int
main()
{
    using namespace qplacer;

    const Topology topo = makeAspen11();
    std::printf("device: %s (%d qubits)\n\n", topo.name.c_str(),
                topo.numQubits());
    std::printf("%-14s %-6s %-10s %-8s %-10s\n", "qubit band", "slots",
                "collisions", "Ph(%)", "impacted");

    for (const double span_ghz : {0.1, 0.2, 0.4, 0.8}) {
        FlowParams params;
        params.assigner.qubitBand =
            FrequencyBand(5.0e9 - span_ghz * 0.5e9,
                          5.0e9 + span_ghz * 0.5e9);
        params.placer.seed = 3;

        const QplacerFlow flow(params);
        const FlowResult r = flow.run(topo);

        // Count the qubit-qubit collision pairs the placement engine
        // had to separate spatially.
        const CollisionMap collisions(r.netlist.frequencies(),
                                      r.netlist.resonatorGroups());
        std::size_t qubit_pairs = 0;
        for (int q = 0; q < r.netlist.numQubits(); ++q) {
            for (std::int32_t j : collisions.partners(q)) {
                if (j > q && j < r.netlist.numQubits())
                    ++qubit_pairs;
            }
        }
        std::printf("%5.2f GHz      %-6d %-10zu %-8.2f %zu\n", span_ghz,
                    r.freqs.numQubitSlots, qubit_pairs,
                    r.hotspots.phPercent,
                    r.hotspots.impactedQubits.size());
    }
    std::printf("\nNarrower spectrum -> more frequency reuse -> more "
                "pairs to isolate spatially.\n");
    return 0;
}
