/**
 * @file
 * Quickstart: place a 5x5 grid device with QPlacer, report the layout
 * metrics, and export an SVG.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "qplacer.hpp"

int
main()
{
    using namespace qplacer;

    // 1. Pick a device topology (Table I of the paper).
    const Topology topo = makeGrid(5, 5);
    std::printf("device: %s (%d qubits, %d couplers)\n",
                topo.name.c_str(), topo.numQubits(), topo.numCouplers());

    // 2. Run the full frequency-aware flow: frequency assignment,
    //    padding + resonator partitioning, electrostatic placement,
    //    integration-aware legalization.
    const FlowResult result = QplacerFlow::runMode(topo,
                                                   PlacerMode::Qplacer);

    std::printf("placed %d instances in %.2fs (%d iterations)\n",
                result.netlist.numInstances(), result.seconds,
                result.place.iterations);
    std::printf("substrate: %.1f x %.1f mm, utilization %.1f%%\n",
                result.area.enclosingRect.width() / 1000.0,
                result.area.enclosingRect.height() / 1000.0,
                100.0 * result.area.utilization);
    std::printf("frequency hotspots: Ph = %.2f%% (%zu violating pairs, "
                "%zu impacted qubits)\n",
                result.hotspots.phPercent, result.hotspots.pairs.size(),
                result.hotspots.impactedQubits.size());

    // 3. Score a benchmark circuit on the layout.
    const Circuit bv = makeBenchmark("bv-4");
    Evaluator evaluator;
    const BenchmarkResult score =
        evaluator.evaluate(topo, result.netlist, bv);
    std::printf("bv-4 mean fidelity over %zu mappings: %.4f\n",
                score.perSubset.size(), score.meanFidelity);

    // 4. Export the layout.
    writeLayoutSvg(result.netlist, "quickstart_grid.svg");
    std::printf("wrote quickstart_grid.svg\n");
    return 0;
}
