#include "netlist/partition.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace qplacer {

int
segmentCount(double length_um, const PartitionParams &params)
{
    if (length_um <= 0.0)
        fatal("segmentCount: non-positive resonator length");
    if (params.segmentUm <= 0.0 || params.wireWidthUm <= 0.0)
        fatal("segmentCount: non-positive partition parameters");
    const double area = length_um * params.wireWidthUm;
    const double block = params.segmentUm * params.segmentUm;
    const int count = static_cast<int>(std::ceil(area / block - 1e-9));
    return count < 1 ? 1 : count;
}

} // namespace qplacer
