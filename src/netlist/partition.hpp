/**
 * @file
 * Resonator partitioning (Section IV-B2, Fig. 8).
 *
 * Each resonator's reserved area (wire length x effective wire width) is
 * reshaped into a compact rectangle and divided into square segments of
 * side l_b. Segments are placement placeholders only -- the physical
 * meander is re-routed through them after legalization.
 */

#ifndef QPLACER_NETLIST_PARTITION_HPP
#define QPLACER_NETLIST_PARTITION_HPP

#include "physics/constants.hpp"

namespace qplacer {

/** Which construction path NetlistBuilder::build runs. */
enum class BuildEngine
{
    /**
     * Prefix-summed instance/net offsets filled in parallel on the
     * flow's worker pool; bitwise-identical to Reference at any thread
     * count (gated in bench/assign_scale and ctest -L assign).
     */
    Fast,

    /** The original sequential append (A/B timing baseline). */
    Reference,
};

/** Parameters of the preprocessing step (padding + partitioning). */
struct PartitionParams
{
    double segmentUm = 300.0;            ///< Basic wire block size l_b.
    double wireWidthUm = kResonatorWireWidthUm;
    double qubitPadUm = kQubitPadUm;     ///< d_q.
    double resonatorPadUm = kResonatorPadUm; ///< d_r.

    /** Builder path (--set builder.reference=1 for the baseline). */
    BuildEngine buildEngine = BuildEngine::Fast;

    /**
     * Instance count below which the fast builder's fill loops stay
     * serial (waking the pool costs more than the loop). 0 forces the
     * parallel path at any size -- the equivalence suites use that.
     * Validated in FlowParams::normalized().
     */
    int buildSerialBelow = 256;
};

/**
 * Number of l_b x l_b segments needed to reserve area for a resonator
 * of length @p length_um: ceil(length * wire_width / l_b^2), at least 1.
 */
int segmentCount(double length_um, const PartitionParams &params);

} // namespace qplacer

#endif // QPLACER_NETLIST_PARTITION_HPP
