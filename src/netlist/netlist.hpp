/**
 * @file
 * Placement netlist: movable instances (qubits and resonator segments),
 * connectivity nets, and the placement region.
 *
 * This is the data structure the global placer, legalizers, and
 * evaluators all operate on. Positions are instance centers in um.
 */

#ifndef QPLACER_NETLIST_NETLIST_HPP
#define QPLACER_NETLIST_NETLIST_HPP

#include <string>
#include <vector>

#include "geometry/rect.hpp"
#include "multidie/die_plan.hpp"

namespace qplacer {

/** What a movable instance physically is. */
enum class InstanceKind { Qubit, ResonatorSegment };

/** One movable instance. */
struct Instance
{
    InstanceKind kind = InstanceKind::Qubit;
    int id = -1;        ///< Index in the netlist.
    int qubit = -1;     ///< Topology qubit id (kind == Qubit).
    int resonator = -1; ///< Resonator id (kind == ResonatorSegment).
    int segment = -1;   ///< Segment ordinal within its resonator.
    double freqHz = 0.0;
    double width = 0.0;  ///< Unpadded width (um).
    double height = 0.0; ///< Unpadded height (um).
    /**
     * Padding (um): the minimum spacing this instance demands from a
     * neighbour of the same kind (d_q or d_r). Each padded footprint
     * extends pad/2 per side, so two touching padded footprints leave
     * a (pad_i + pad_j)/2 gap between the bare shapes -- the shared-
     * padding reading of Section IV-B1 that reproduces the paper's
     * area numbers (see DESIGN.md).
     */
    double pad = 0.0;
    Vec2 pos; ///< Center position (um).

    /** Width including half the padding on each side. */
    double paddedWidth() const { return width + pad; }

    /** Height including half the padding on each side. */
    double paddedHeight() const { return height + pad; }

    /** Padded footprint area (the instance's electrostatic charge). */
    double paddedArea() const { return paddedWidth() * paddedHeight(); }

    /** Unpadded shape at the current position. */
    Rect rect() const { return Rect::fromCenter(pos, width, height); }

    /** Padded footprint at the current position. */
    Rect
    paddedRect() const
    {
        return Rect::fromCenter(pos, paddedWidth(), paddedHeight());
    }
};

/** A connection to be kept short (2-pin; stars are decomposed). */
struct Net
{
    int a = -1;
    int b = -1;
    double weight = 1.0;
};

/** A coupling resonator and its segments. */
struct Resonator
{
    int id = -1;
    int edge = -1;   ///< Topology coupler/edge id.
    int qubitA = -1; ///< Endpoint qubit (topology id).
    int qubitB = -1;
    double freqHz = 0.0;
    double lengthUm = 0.0; ///< Physical wire length.
    std::vector<int> segments; ///< Instance ids, in chain order.
};

/** The full placement problem instance. */
class Netlist
{
  public:
    Netlist() = default;

    /** Append an instance; returns its id. */
    int addInstance(Instance inst);

    /** Append a 2-pin net. */
    void addNet(int a, int b, double weight = 1.0);

    /** Append a resonator record; returns its id. */
    int addResonator(Resonator res);

    /**
     * Replace the netlist's contents wholesale with pre-assembled
     * vectors (the threaded builder's prefix-summed fill). The same
     * invariants addInstance/addNet enforce incrementally are checked
     * here: instance ids equal their indices, the @p num_qubits qubit
     * instances come first, resonator ids equal their indices, and net
     * pins are in-range and non-degenerate.
     */
    void adopt(std::vector<Instance> instances, std::vector<Net> nets,
               std::vector<Resonator> resonators, int num_qubits);

    const std::vector<Instance> &instances() const { return instances_; }
    std::vector<Instance> &instances() { return instances_; }
    const std::vector<Net> &nets() const { return nets_; }
    const std::vector<Resonator> &resonators() const { return resonators_; }

    const Instance &instance(int id) const;
    Instance &instance(int id);
    const Resonator &resonator(int id) const;

    /** Number of qubit instances (they are always ids 0..n-1). */
    int numQubits() const { return numQubits_; }

    /** Total number of movable instances (#cells of Table II). */
    int numInstances() const { return static_cast<int>(instances_.size()); }

    /** Sum of padded instance areas (A_poly of Eq. 17). */
    double totalPaddedArea() const;

    /** Placement region. */
    const Rect &region() const { return region_; }

    /**
     * Size the (square) placement region so that padded area fills
     * @p target_util of it, anchored at the origin.
     */
    void sizeRegion(double target_util);

    /** Set an explicit region. */
    void setRegion(const Rect &region) { region_ = region; }

    /**
     * Device partition this netlist is placed under (BuildStage copies
     * it from the topology). Symbolic on purpose: consumers resolve a
     * DiePlan against the *current* region so the geometry follows
     * legalizer region growth. The default 1x1 spec is inactive and
     * every multi-die code path is skipped outright.
     */
    const DieSpec &dieSpec() const { return dieSpec_; }
    void setDieSpec(const DieSpec &spec) { dieSpec_ = spec; }

    /** Instance id of topology qubit @p qubit_id. */
    int qubitInstance(int qubit_id) const;

    /** Frequencies of all instances, indexed by instance id. */
    std::vector<double> frequencies() const;

    /** Resonator id per instance (-1 for qubits). */
    std::vector<int> resonatorGroups() const;

    /** Clamp every instance center so its padded rect stays in-region. */
    void clampIntoRegion();

    /** Consistency checks (ids, segment chains); panics on violation. */
    void validate() const;

  private:
    std::vector<Instance> instances_;
    std::vector<Net> nets_;
    std::vector<Resonator> resonators_;
    Rect region_;
    DieSpec dieSpec_;
    int numQubits_ = 0;
};

/**
 * Bitwise instance-position equality (memcmp, not FP tolerance) --
 * the determinism contract the engine guarantees for a fixed seed and
 * thread count, and PlacementSession's batch-vs-serial gate.
 */
bool bitwiseSameLayout(const Netlist &a, const Netlist &b);

/**
 * Bitwise equality of the whole problem instance -- every instance
 * field (memcmp on the doubles), nets, resonator records, and the
 * region. The threaded builder's equivalence contract against the
 * sequential reference builder at any thread count.
 */
bool bitwiseSameNetlist(const Netlist &a, const Netlist &b);

} // namespace qplacer

#endif // QPLACER_NETLIST_NETLIST_HPP
