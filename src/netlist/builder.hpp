/**
 * @file
 * Netlist construction: topology + frequency assignment + preprocessing
 * parameters -> placement netlist (Fig. 7 a-b).
 */

#ifndef QPLACER_NETLIST_BUILDER_HPP
#define QPLACER_NETLIST_BUILDER_HPP

#include "freq/assigner.hpp"
#include "netlist/netlist.hpp"
#include "netlist/partition.hpp"
#include "topology/topology.hpp"

namespace qplacer {

/** Builds the placement netlist for a device. */
class NetlistBuilder
{
  public:
    explicit NetlistBuilder(PartitionParams params = {});

    /**
     * Build the netlist: one padded 400 um qubit instance per topology
     * qubit, one padded segment chain per coupler (resonator length from
     * its assigned frequency), 2-pin nets qubit--first-segment,
     * consecutive-segment, last-segment--qubit.
     *
     * The region is sized to @p target_util and instances are initialized
     * on the (scaled) topology embedding: qubits at their embedded spots,
     * segments spread along the straight line between their endpoints.
     */
    Netlist build(const Topology &topo,
                  const FrequencyAssignment &freqs,
                  double target_util = 0.72) const;

    const PartitionParams &params() const { return params_; }

  private:
    PartitionParams params_;
};

} // namespace qplacer

#endif // QPLACER_NETLIST_BUILDER_HPP
