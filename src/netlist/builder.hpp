/**
 * @file
 * Netlist construction: topology + frequency assignment + preprocessing
 * parameters -> placement netlist (Fig. 7 a-b).
 *
 * Scaling: the default engine precomputes per-coupler segment counts,
 * prefix-sums the instance and net offsets, and fills instances, nets,
 * resonator records, and warm-start positions in parallel on the
 * flow's worker pool with deterministic chunking -- the netlist is
 * bitwise-identical to the sequential-append reference path at any
 * thread count (gated in bench/assign_scale and ctest -L assign).
 */

#ifndef QPLACER_NETLIST_BUILDER_HPP
#define QPLACER_NETLIST_BUILDER_HPP

#include "freq/assigner.hpp"
#include "netlist/netlist.hpp"
#include "netlist/partition.hpp"
#include "topology/topology.hpp"

namespace qplacer {

class ThreadPool;

/**
 * Sub-stage wall clocks of one build() call, surfaced through
 * FlowResult as "build.stages" in qplacer_cli --report json.
 */
struct BuildStats
{
    double segmentsSeconds = 0.0;  ///< Lengths, counts, prefix sums.
    double instancesSeconds = 0.0; ///< Instance / net / resonator fill.
    double warmStartSeconds = 0.0; ///< Embedding scale + positions.
    double finalizeSeconds = 0.0;  ///< Region sizing, clamp, validate.
    int threads = 1;               ///< Worker threads the fill could use.
};

/** Builds the placement netlist for a device. */
class NetlistBuilder
{
  public:
    explicit NetlistBuilder(PartitionParams params = {});

    /**
     * Build the netlist: one padded 400 um qubit instance per topology
     * qubit, one padded segment chain per coupler (resonator length from
     * its assigned frequency), 2-pin nets qubit--first-segment,
     * consecutive-segment, last-segment--qubit.
     *
     * The region is sized to @p target_util and instances are initialized
     * on the (scaled) topology embedding: qubits at their embedded spots,
     * segments spread along the straight line between their endpoints.
     *
     * @p pool (optional, borrowed) parallelizes the fast engine's fill
     * loops; null or 1 thread runs serially with identical output.
     * @p stats (optional) receives the sub-stage wall clocks.
     */
    Netlist build(const Topology &topo,
                  const FrequencyAssignment &freqs,
                  double target_util = 0.72, ThreadPool *pool = nullptr,
                  BuildStats *stats = nullptr) const;

    const PartitionParams &params() const { return params_; }

  private:
    /** The original sequential append path (BuildEngine::Reference). */
    Netlist buildReference(const Topology &topo,
                           const FrequencyAssignment &freqs,
                           double target_util, BuildStats &stats) const;

    /** Prefix-summed offsets + pool-parallel fill (BuildEngine::Fast). */
    Netlist buildFast(const Topology &topo,
                      const FrequencyAssignment &freqs,
                      double target_util, ThreadPool *pool,
                      BuildStats &stats) const;

    PartitionParams params_;
};

} // namespace qplacer

#endif // QPLACER_NETLIST_BUILDER_HPP
