#include "netlist/builder.hpp"

#include <algorithm>
#include <limits>

#include "physics/resonator.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace qplacer {

NetlistBuilder::NetlistBuilder(PartitionParams params)
    : params_(params)
{
}

Netlist
NetlistBuilder::build(const Topology &topo, const FrequencyAssignment &freqs,
                      double target_util, ThreadPool *pool,
                      BuildStats *stats) const
{
    const int nq = topo.numQubits();
    if (static_cast<int>(freqs.qubitFreqHz.size()) != nq ||
        static_cast<int>(freqs.resonatorFreqHz.size()) !=
            topo.numCouplers()) {
        fatal("NetlistBuilder: frequency assignment does not match "
              "topology");
    }

    BuildStats local;
    local.threads = pool != nullptr ? pool->threads() : 1;
    Netlist netlist =
        params_.buildEngine == BuildEngine::Reference
            ? buildReference(topo, freqs, target_util, local)
            : buildFast(topo, freqs, target_util, pool, local);
    if (stats)
        *stats = local;
    return netlist;
}

Netlist
NetlistBuilder::buildReference(const Topology &topo,
                               const FrequencyAssignment &freqs,
                               double target_util, BuildStats &stats) const
{
    const int nq = topo.numQubits();
    Netlist netlist;

    // Qubit instances first (ids 0..nq-1 match topology qubit ids).
    Timer timer;
    for (int q = 0; q < nq; ++q) {
        Instance inst;
        inst.kind = InstanceKind::Qubit;
        inst.qubit = q;
        inst.freqHz = freqs.qubitFreqHz[q];
        inst.width = kQubitSizeUm;
        inst.height = kQubitSizeUm;
        inst.pad = params_.qubitPadUm;
        netlist.addInstance(inst);
    }

    // One segment chain per coupler.
    const auto &edges = topo.coupling.edges();
    for (int e = 0; e < topo.numCouplers(); ++e) {
        Resonator res;
        res.edge = e;
        res.qubitA = edges[e].first;
        res.qubitB = edges[e].second;
        res.freqHz = freqs.resonatorFreqHz[e];
        res.lengthUm = resonatorLengthUm(res.freqHz);

        const int nseg = segmentCount(res.lengthUm, params_);
        for (int s = 0; s < nseg; ++s) {
            Instance seg;
            seg.kind = InstanceKind::ResonatorSegment;
            seg.resonator = static_cast<int>(netlist.resonators().size());
            seg.segment = s;
            seg.freqHz = res.freqHz;
            seg.width = params_.segmentUm;
            seg.height = params_.segmentUm;
            seg.pad = params_.resonatorPadUm;
            res.segments.push_back(netlist.addInstance(seg));
        }
        netlist.addResonator(res);

        // Connectivity nets: qubit -- chain -- qubit.
        netlist.addNet(res.qubitA, res.segments.front());
        for (std::size_t s = 0; s + 1 < res.segments.size(); ++s)
            netlist.addNet(res.segments[s], res.segments[s + 1]);
        netlist.addNet(res.segments.back(), res.qubitB);
    }
    stats.instancesSeconds = timer.seconds();

    timer.reset();
    netlist.sizeRegion(target_util);

    // Warm-start positions from the topology embedding, scaled to fill
    // ~80% of the region, centered.
    Rect emb(std::numeric_limits<double>::max(),
             std::numeric_limits<double>::max(),
             std::numeric_limits<double>::lowest(),
             std::numeric_limits<double>::lowest());
    for (const Vec2 &p : topo.embedding) {
        emb.lo.x = std::min(emb.lo.x, p.x);
        emb.lo.y = std::min(emb.lo.y, p.y);
        emb.hi.x = std::max(emb.hi.x, p.x);
        emb.hi.y = std::max(emb.hi.y, p.y);
    }
    const Rect &region = netlist.region();
    const double emb_w = std::max(emb.width(), 1e-6);
    const double emb_h = std::max(emb.height(), 1e-6);
    const double scale =
        0.8 * std::min(region.width() / emb_w, region.height() / emb_h);
    const Vec2 emb_center = emb.center();
    const Vec2 region_center = region.center();

    auto place = [&](const Vec2 &p) {
        return region_center + (p - emb_center) * scale;
    };
    for (int q = 0; q < nq; ++q)
        netlist.instance(q).pos = place(topo.embedding[q]);
    for (const Resonator &res : netlist.resonators()) {
        const Vec2 a = netlist.instance(res.qubitA).pos;
        const Vec2 b = netlist.instance(res.qubitB).pos;
        const auto nseg = static_cast<double>(res.segments.size());
        for (std::size_t s = 0; s < res.segments.size(); ++s) {
            const double t =
                (static_cast<double>(s) + 1.0) / (nseg + 1.0);
            netlist.instance(res.segments[s]).pos = a + (b - a) * t;
        }
    }
    stats.warmStartSeconds = timer.seconds();

    timer.reset();
    netlist.clampIntoRegion();
    netlist.validate();
    stats.finalizeSeconds = timer.seconds();
    return netlist;
}

Netlist
NetlistBuilder::buildFast(const Topology &topo,
                          const FrequencyAssignment &freqs,
                          double target_util, ThreadPool *pool,
                          BuildStats &stats) const
{
    const int nq = topo.numQubits();
    const int nc = topo.numCouplers();
    const auto &edges = topo.coupling.edges();
    const auto grain =
        static_cast<std::size_t>(std::max(params_.buildSerialBelow, 0));

    // --- Per-coupler segment counts and prefix-summed offsets. ---
    Timer timer;
    std::vector<double> length_um(nc);
    std::vector<int> nseg(nc);
    parallelFor(
        pool, static_cast<std::size_t>(nc),
        [&](std::size_t begin, std::size_t end) {
            for (std::size_t e = begin; e < end; ++e) {
                length_um[e] = resonatorLengthUm(freqs.resonatorFreqHz[e]);
                nseg[e] = segmentCount(length_um[e], params_);
            }
        },
        grain);
    // seg_offset[e]: first segment-instance ordinal of coupler e;
    // net_offset[e]: its first net (nseg + 1 nets per coupler). Plain
    // serial prefix sums -- integer, O(nc), and the determinism anchor
    // for every fill below.
    std::vector<int> seg_offset(nc + 1, 0);
    std::vector<int> net_offset(nc + 1, 0);
    for (int e = 0; e < nc; ++e) {
        seg_offset[e + 1] = seg_offset[e] + nseg[e];
        net_offset[e + 1] = net_offset[e] + nseg[e] + 1;
    }
    const int total_segments = seg_offset[nc];
    stats.segmentsSeconds = timer.seconds();

    // --- Instance / net / resonator fill at precomputed offsets. ---
    // Every slot is written exactly once from per-item formulas, so
    // chunk boundaries cannot change a single bit of the result.
    timer.reset();
    std::vector<Instance> instances(
        static_cast<std::size_t>(nq) + total_segments);
    std::vector<Net> nets(static_cast<std::size_t>(net_offset[nc]));
    std::vector<Resonator> resonators(static_cast<std::size_t>(nc));
    parallelFor(
        pool, static_cast<std::size_t>(nq),
        [&](std::size_t begin, std::size_t end) {
            for (std::size_t q = begin; q < end; ++q) {
                Instance inst;
                inst.kind = InstanceKind::Qubit;
                inst.id = static_cast<int>(q);
                inst.qubit = static_cast<int>(q);
                inst.freqHz = freqs.qubitFreqHz[q];
                inst.width = kQubitSizeUm;
                inst.height = kQubitSizeUm;
                inst.pad = params_.qubitPadUm;
                instances[q] = inst;
            }
        },
        grain);
    parallelFor(
        pool, static_cast<std::size_t>(nc),
        [&](std::size_t begin, std::size_t end) {
            for (std::size_t e = begin; e < end; ++e) {
                Resonator res;
                res.id = static_cast<int>(e);
                res.edge = static_cast<int>(e);
                res.qubitA = edges[e].first;
                res.qubitB = edges[e].second;
                res.freqHz = freqs.resonatorFreqHz[e];
                res.lengthUm = length_um[e];
                const int base = nq + seg_offset[e];
                res.segments.resize(nseg[e]);
                for (int s = 0; s < nseg[e]; ++s) {
                    Instance seg;
                    seg.kind = InstanceKind::ResonatorSegment;
                    seg.id = base + s;
                    seg.resonator = static_cast<int>(e);
                    seg.segment = s;
                    seg.freqHz = res.freqHz;
                    seg.width = params_.segmentUm;
                    seg.height = params_.segmentUm;
                    seg.pad = params_.resonatorPadUm;
                    instances[seg.id] = seg;
                    res.segments[s] = seg.id;
                }
                Net *net = nets.data() + net_offset[e];
                *net++ = Net{res.qubitA, res.segments.front(), 1.0};
                for (int s = 0; s + 1 < nseg[e]; ++s)
                    *net++ = Net{res.segments[s], res.segments[s + 1],
                                 1.0};
                *net = Net{res.segments.back(), res.qubitB, 1.0};
                resonators[e] = std::move(res);
            }
        },
        grain);
    Netlist netlist;
    netlist.adopt(std::move(instances), std::move(nets),
                  std::move(resonators), nq);
    stats.instancesSeconds = timer.seconds();

    timer.reset();
    netlist.sizeRegion(target_util);
    stats.finalizeSeconds = timer.seconds();

    // --- Warm-start positions (same formulas as the reference path;
    // the bbox scan stays serial: min/max over nq points is cheap). ---
    timer.reset();
    Rect emb(std::numeric_limits<double>::max(),
             std::numeric_limits<double>::max(),
             std::numeric_limits<double>::lowest(),
             std::numeric_limits<double>::lowest());
    for (const Vec2 &p : topo.embedding) {
        emb.lo.x = std::min(emb.lo.x, p.x);
        emb.lo.y = std::min(emb.lo.y, p.y);
        emb.hi.x = std::max(emb.hi.x, p.x);
        emb.hi.y = std::max(emb.hi.y, p.y);
    }
    const Rect &region = netlist.region();
    const double emb_w = std::max(emb.width(), 1e-6);
    const double emb_h = std::max(emb.height(), 1e-6);
    const double scale =
        0.8 * std::min(region.width() / emb_w, region.height() / emb_h);
    const Vec2 emb_center = emb.center();
    const Vec2 region_center = region.center();

    std::vector<Instance> &insts = netlist.instances();
    parallelFor(
        pool, static_cast<std::size_t>(nq),
        [&](std::size_t begin, std::size_t end) {
            for (std::size_t q = begin; q < end; ++q) {
                insts[q].pos = region_center +
                               (topo.embedding[q] - emb_center) * scale;
            }
        },
        grain);
    // Qubit positions are complete before this region starts; each
    // coupler only reads its two endpoint qubits and writes its own
    // segment span.
    parallelFor(
        pool, static_cast<std::size_t>(nc),
        [&](std::size_t begin, std::size_t end) {
            for (std::size_t e = begin; e < end; ++e) {
                const Resonator &res = netlist.resonators()[e];
                const Vec2 a = insts[res.qubitA].pos;
                const Vec2 b = insts[res.qubitB].pos;
                const auto count =
                    static_cast<double>(res.segments.size());
                for (std::size_t s = 0; s < res.segments.size(); ++s) {
                    const double t =
                        (static_cast<double>(s) + 1.0) / (count + 1.0);
                    insts[res.segments[s]].pos = a + (b - a) * t;
                }
            }
        },
        grain);
    stats.warmStartSeconds = timer.seconds();

    timer.reset();
    netlist.clampIntoRegion();
    netlist.validate();
    stats.finalizeSeconds += timer.seconds();
    return netlist;
}

} // namespace qplacer
