#include "netlist/builder.hpp"

#include <algorithm>
#include <limits>

#include "physics/resonator.hpp"
#include "util/logging.hpp"

namespace qplacer {

NetlistBuilder::NetlistBuilder(PartitionParams params)
    : params_(params)
{
}

Netlist
NetlistBuilder::build(const Topology &topo, const FrequencyAssignment &freqs,
                      double target_util) const
{
    const int nq = topo.numQubits();
    if (static_cast<int>(freqs.qubitFreqHz.size()) != nq ||
        static_cast<int>(freqs.resonatorFreqHz.size()) !=
            topo.numCouplers()) {
        fatal("NetlistBuilder: frequency assignment does not match "
              "topology");
    }

    Netlist netlist;

    // Qubit instances first (ids 0..nq-1 match topology qubit ids).
    for (int q = 0; q < nq; ++q) {
        Instance inst;
        inst.kind = InstanceKind::Qubit;
        inst.qubit = q;
        inst.freqHz = freqs.qubitFreqHz[q];
        inst.width = kQubitSizeUm;
        inst.height = kQubitSizeUm;
        inst.pad = params_.qubitPadUm;
        netlist.addInstance(inst);
    }

    // One segment chain per coupler.
    const auto &edges = topo.coupling.edges();
    for (int e = 0; e < topo.numCouplers(); ++e) {
        Resonator res;
        res.edge = e;
        res.qubitA = edges[e].first;
        res.qubitB = edges[e].second;
        res.freqHz = freqs.resonatorFreqHz[e];
        res.lengthUm = resonatorLengthUm(res.freqHz);

        const int nseg = segmentCount(res.lengthUm, params_);
        for (int s = 0; s < nseg; ++s) {
            Instance seg;
            seg.kind = InstanceKind::ResonatorSegment;
            seg.resonator = static_cast<int>(netlist.resonators().size());
            seg.segment = s;
            seg.freqHz = res.freqHz;
            seg.width = params_.segmentUm;
            seg.height = params_.segmentUm;
            seg.pad = params_.resonatorPadUm;
            res.segments.push_back(netlist.addInstance(seg));
        }
        netlist.addResonator(res);

        // Connectivity nets: qubit -- chain -- qubit.
        netlist.addNet(res.qubitA, res.segments.front());
        for (std::size_t s = 0; s + 1 < res.segments.size(); ++s)
            netlist.addNet(res.segments[s], res.segments[s + 1]);
        netlist.addNet(res.segments.back(), res.qubitB);
    }

    netlist.sizeRegion(target_util);

    // Warm-start positions from the topology embedding, scaled to fill
    // ~80% of the region, centered.
    Rect emb(std::numeric_limits<double>::max(),
             std::numeric_limits<double>::max(),
             std::numeric_limits<double>::lowest(),
             std::numeric_limits<double>::lowest());
    for (const Vec2 &p : topo.embedding) {
        emb.lo.x = std::min(emb.lo.x, p.x);
        emb.lo.y = std::min(emb.lo.y, p.y);
        emb.hi.x = std::max(emb.hi.x, p.x);
        emb.hi.y = std::max(emb.hi.y, p.y);
    }
    const Rect &region = netlist.region();
    const double emb_w = std::max(emb.width(), 1e-6);
    const double emb_h = std::max(emb.height(), 1e-6);
    const double scale =
        0.8 * std::min(region.width() / emb_w, region.height() / emb_h);
    const Vec2 emb_center = emb.center();
    const Vec2 region_center = region.center();

    auto place = [&](const Vec2 &p) {
        return region_center + (p - emb_center) * scale;
    };
    for (int q = 0; q < nq; ++q)
        netlist.instance(q).pos = place(topo.embedding[q]);
    for (const Resonator &res : netlist.resonators()) {
        const Vec2 a = netlist.instance(res.qubitA).pos;
        const Vec2 b = netlist.instance(res.qubitB).pos;
        const auto nseg = static_cast<double>(res.segments.size());
        for (std::size_t s = 0; s < res.segments.size(); ++s) {
            const double t =
                (static_cast<double>(s) + 1.0) / (nseg + 1.0);
            netlist.instance(res.segments[s]).pos = a + (b - a) * t;
        }
    }
    netlist.clampIntoRegion();
    netlist.validate();
    return netlist;
}

} // namespace qplacer
