#include "netlist/netlist.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/logging.hpp"

namespace qplacer {

int
Netlist::addInstance(Instance inst)
{
    inst.id = numInstances();
    if (inst.kind == InstanceKind::Qubit) {
        if (inst.id != numQubits_)
            panic("Netlist: qubit instances must be added first");
        ++numQubits_;
    }
    instances_.push_back(inst);
    return inst.id;
}

void
Netlist::addNet(int a, int b, double weight)
{
    if (a < 0 || a >= numInstances() || b < 0 || b >= numInstances())
        panic(str("Netlist::addNet: pin out of range (", a, ", ", b, ")"));
    if (a == b)
        panic("Netlist::addNet: degenerate net");
    nets_.push_back(Net{a, b, weight});
}

int
Netlist::addResonator(Resonator res)
{
    res.id = static_cast<int>(resonators_.size());
    resonators_.push_back(std::move(res));
    return resonators_.back().id;
}

void
Netlist::adopt(std::vector<Instance> instances, std::vector<Net> nets,
               std::vector<Resonator> resonators, int num_qubits)
{
    if (num_qubits < 0 || num_qubits > static_cast<int>(instances.size()))
        panic(str("Netlist::adopt: bad qubit count ", num_qubits));
    const int n = static_cast<int>(instances.size());
    for (int i = 0; i < n; ++i) {
        const Instance &inst = instances[i];
        if (inst.id != i)
            panic(str("Netlist::adopt: instance ", i, " has id ",
                      inst.id));
        if ((inst.kind == InstanceKind::Qubit) != (i < num_qubits))
            panic("Netlist::adopt: qubit instances must come first");
    }
    for (std::size_t r = 0; r < resonators.size(); ++r) {
        if (resonators[r].id != static_cast<int>(r))
            panic(str("Netlist::adopt: resonator ", r, " has id ",
                      resonators[r].id));
    }
    for (const Net &net : nets) {
        if (net.a < 0 || net.a >= n || net.b < 0 || net.b >= n)
            panic(str("Netlist::adopt: pin out of range (", net.a, ", ",
                      net.b, ")"));
        if (net.a == net.b)
            panic("Netlist::adopt: degenerate net");
    }
    instances_ = std::move(instances);
    nets_ = std::move(nets);
    resonators_ = std::move(resonators);
    numQubits_ = num_qubits;
}

const Instance &
Netlist::instance(int id) const
{
    if (id < 0 || id >= numInstances())
        panic(str("Netlist::instance: id ", id, " out of range"));
    return instances_[id];
}

Instance &
Netlist::instance(int id)
{
    if (id < 0 || id >= numInstances())
        panic(str("Netlist::instance: id ", id, " out of range"));
    return instances_[id];
}

const Resonator &
Netlist::resonator(int id) const
{
    if (id < 0 || id >= static_cast<int>(resonators_.size()))
        panic(str("Netlist::resonator: id ", id, " out of range"));
    return resonators_[id];
}

double
Netlist::totalPaddedArea() const
{
    double acc = 0.0;
    for (const Instance &inst : instances_)
        acc += inst.paddedArea();
    return acc;
}

void
Netlist::sizeRegion(double target_util)
{
    if (target_util <= 0.0 || target_util > 1.0)
        fatal("Netlist::sizeRegion: utilization must be in (0, 1]");
    const double side = std::sqrt(totalPaddedArea() / target_util);
    region_ = Rect(0.0, 0.0, side, side);
}

int
Netlist::qubitInstance(int qubit_id) const
{
    for (int i = 0; i < numQubits_; ++i) {
        if (instances_[i].qubit == qubit_id)
            return i;
    }
    panic(str("Netlist::qubitInstance: qubit ", qubit_id, " not found"));
}

std::vector<double>
Netlist::frequencies() const
{
    std::vector<double> out(instances_.size());
    for (std::size_t i = 0; i < instances_.size(); ++i)
        out[i] = instances_[i].freqHz;
    return out;
}

std::vector<int>
Netlist::resonatorGroups() const
{
    std::vector<int> out(instances_.size());
    for (std::size_t i = 0; i < instances_.size(); ++i)
        out[i] = instances_[i].resonator;
    return out;
}

void
Netlist::clampIntoRegion()
{
    for (Instance &inst : instances_) {
        const double hw = inst.paddedWidth() / 2.0;
        const double hh = inst.paddedHeight() / 2.0;
        inst.pos.x =
            std::clamp(inst.pos.x, region_.lo.x + hw, region_.hi.x - hw);
        inst.pos.y =
            std::clamp(inst.pos.y, region_.lo.y + hh, region_.hi.y - hh);
    }
}

void
Netlist::validate() const
{
    for (int i = 0; i < numInstances(); ++i) {
        const Instance &inst = instances_[i];
        if (inst.id != i)
            panic(str("Netlist: instance ", i, " has id ", inst.id));
        if (inst.width <= 0.0 || inst.height <= 0.0)
            panic(str("Netlist: instance ", i, " has empty shape"));
        if (inst.pad < 0.0)
            panic(str("Netlist: instance ", i, " has negative padding"));
        if (inst.kind == InstanceKind::Qubit && i >= numQubits_)
            panic("Netlist: qubit instance after segment instances");
    }
    for (const Resonator &res : resonators_) {
        if (res.segments.empty())
            panic(str("Netlist: resonator ", res.id, " has no segments"));
        for (std::size_t s = 0; s < res.segments.size(); ++s) {
            const Instance &seg = instance(res.segments[s]);
            if (seg.kind != InstanceKind::ResonatorSegment ||
                seg.resonator != res.id ||
                seg.segment != static_cast<int>(s)) {
                panic(str("Netlist: resonator ", res.id,
                          " has an inconsistent segment chain"));
            }
        }
    }
}

namespace {

/** memcmp equality on a double (distinguishes -0.0, exact NaN bits). */
bool
sameBits(double x, double y)
{
    return std::memcmp(&x, &y, sizeof(double)) == 0;
}

} // namespace

bool
bitwiseSameNetlist(const Netlist &a, const Netlist &b)
{
    if (a.numInstances() != b.numInstances() ||
        a.numQubits() != b.numQubits() ||
        a.nets().size() != b.nets().size() ||
        a.resonators().size() != b.resonators().size())
        return false;
    if (a.dieSpec().rows != b.dieSpec().rows ||
        a.dieSpec().cols != b.dieSpec().cols ||
        !sameBits(a.dieSpec().cutGapUm, b.dieSpec().cutGapUm))
        return false;
    if (!sameBits(a.region().lo.x, b.region().lo.x) ||
        !sameBits(a.region().lo.y, b.region().lo.y) ||
        !sameBits(a.region().hi.x, b.region().hi.x) ||
        !sameBits(a.region().hi.y, b.region().hi.y))
        return false;
    for (int i = 0; i < a.numInstances(); ++i) {
        const Instance &ia = a.instances()[i];
        const Instance &ib = b.instances()[i];
        if (ia.kind != ib.kind || ia.id != ib.id ||
            ia.qubit != ib.qubit || ia.resonator != ib.resonator ||
            ia.segment != ib.segment ||
            !sameBits(ia.freqHz, ib.freqHz) ||
            !sameBits(ia.width, ib.width) ||
            !sameBits(ia.height, ib.height) ||
            !sameBits(ia.pad, ib.pad) || !sameBits(ia.pos.x, ib.pos.x) ||
            !sameBits(ia.pos.y, ib.pos.y))
            return false;
    }
    for (std::size_t i = 0; i < a.nets().size(); ++i) {
        const Net &na = a.nets()[i];
        const Net &nb = b.nets()[i];
        if (na.a != nb.a || na.b != nb.b ||
            !sameBits(na.weight, nb.weight))
            return false;
    }
    for (std::size_t i = 0; i < a.resonators().size(); ++i) {
        const Resonator &ra = a.resonators()[i];
        const Resonator &rb = b.resonators()[i];
        if (ra.id != rb.id || ra.edge != rb.edge ||
            ra.qubitA != rb.qubitA || ra.qubitB != rb.qubitB ||
            !sameBits(ra.freqHz, rb.freqHz) ||
            !sameBits(ra.lengthUm, rb.lengthUm) ||
            ra.segments != rb.segments)
            return false;
    }
    return true;
}

bool
bitwiseSameLayout(const Netlist &a, const Netlist &b)
{
    if (a.numInstances() != b.numInstances())
        return false;
    for (int i = 0; i < a.numInstances(); ++i) {
        const Vec2 pa = a.instances()[i].pos;
        const Vec2 pb = b.instances()[i].pos;
        if (std::memcmp(&pa.x, &pb.x, sizeof(double)) != 0 ||
            std::memcmp(&pa.y, &pb.y, sizeof(double)) != 0)
            return false;
    }
    return true;
}

} // namespace qplacer
