#include "netlist/netlist.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/logging.hpp"

namespace qplacer {

int
Netlist::addInstance(Instance inst)
{
    inst.id = numInstances();
    if (inst.kind == InstanceKind::Qubit) {
        if (inst.id != numQubits_)
            panic("Netlist: qubit instances must be added first");
        ++numQubits_;
    }
    instances_.push_back(inst);
    return inst.id;
}

void
Netlist::addNet(int a, int b, double weight)
{
    if (a < 0 || a >= numInstances() || b < 0 || b >= numInstances())
        panic(str("Netlist::addNet: pin out of range (", a, ", ", b, ")"));
    if (a == b)
        panic("Netlist::addNet: degenerate net");
    nets_.push_back(Net{a, b, weight});
}

int
Netlist::addResonator(Resonator res)
{
    res.id = static_cast<int>(resonators_.size());
    resonators_.push_back(std::move(res));
    return resonators_.back().id;
}

const Instance &
Netlist::instance(int id) const
{
    if (id < 0 || id >= numInstances())
        panic(str("Netlist::instance: id ", id, " out of range"));
    return instances_[id];
}

Instance &
Netlist::instance(int id)
{
    if (id < 0 || id >= numInstances())
        panic(str("Netlist::instance: id ", id, " out of range"));
    return instances_[id];
}

const Resonator &
Netlist::resonator(int id) const
{
    if (id < 0 || id >= static_cast<int>(resonators_.size()))
        panic(str("Netlist::resonator: id ", id, " out of range"));
    return resonators_[id];
}

double
Netlist::totalPaddedArea() const
{
    double acc = 0.0;
    for (const Instance &inst : instances_)
        acc += inst.paddedArea();
    return acc;
}

void
Netlist::sizeRegion(double target_util)
{
    if (target_util <= 0.0 || target_util > 1.0)
        fatal("Netlist::sizeRegion: utilization must be in (0, 1]");
    const double side = std::sqrt(totalPaddedArea() / target_util);
    region_ = Rect(0.0, 0.0, side, side);
}

int
Netlist::qubitInstance(int qubit_id) const
{
    for (int i = 0; i < numQubits_; ++i) {
        if (instances_[i].qubit == qubit_id)
            return i;
    }
    panic(str("Netlist::qubitInstance: qubit ", qubit_id, " not found"));
}

std::vector<double>
Netlist::frequencies() const
{
    std::vector<double> out(instances_.size());
    for (std::size_t i = 0; i < instances_.size(); ++i)
        out[i] = instances_[i].freqHz;
    return out;
}

std::vector<int>
Netlist::resonatorGroups() const
{
    std::vector<int> out(instances_.size());
    for (std::size_t i = 0; i < instances_.size(); ++i)
        out[i] = instances_[i].resonator;
    return out;
}

void
Netlist::clampIntoRegion()
{
    for (Instance &inst : instances_) {
        const double hw = inst.paddedWidth() / 2.0;
        const double hh = inst.paddedHeight() / 2.0;
        inst.pos.x =
            std::clamp(inst.pos.x, region_.lo.x + hw, region_.hi.x - hw);
        inst.pos.y =
            std::clamp(inst.pos.y, region_.lo.y + hh, region_.hi.y - hh);
    }
}

void
Netlist::validate() const
{
    for (int i = 0; i < numInstances(); ++i) {
        const Instance &inst = instances_[i];
        if (inst.id != i)
            panic(str("Netlist: instance ", i, " has id ", inst.id));
        if (inst.width <= 0.0 || inst.height <= 0.0)
            panic(str("Netlist: instance ", i, " has empty shape"));
        if (inst.pad < 0.0)
            panic(str("Netlist: instance ", i, " has negative padding"));
        if (inst.kind == InstanceKind::Qubit && i >= numQubits_)
            panic("Netlist: qubit instance after segment instances");
    }
    for (const Resonator &res : resonators_) {
        if (res.segments.empty())
            panic(str("Netlist: resonator ", res.id, " has no segments"));
        for (std::size_t s = 0; s < res.segments.size(); ++s) {
            const Instance &seg = instance(res.segments[s]);
            if (seg.kind != InstanceKind::ResonatorSegment ||
                seg.resonator != res.id ||
                seg.segment != static_cast<int>(s)) {
                panic(str("Netlist: resonator ", res.id,
                          " has an inconsistent segment chain"));
            }
        }
    }
}

bool
bitwiseSameLayout(const Netlist &a, const Netlist &b)
{
    if (a.numInstances() != b.numInstances())
        return false;
    for (int i = 0; i < a.numInstances(); ++i) {
        const Vec2 pa = a.instances()[i].pos;
        const Vec2 pb = b.instances()[i].pos;
        if (std::memcmp(&pa.x, &pb.x, sizeof(double)) != 0 ||
            std::memcmp(&pa.y, &pb.y, sizeof(double)) != 0)
            return false;
    }
    return true;
}

} // namespace qplacer
