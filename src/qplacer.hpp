/**
 * @file
 * Umbrella header: include this to get the whole QPlacer public API.
 */

#ifndef QPLACER_QPLACER_HPP
#define QPLACER_QPLACER_HPP

#include "baseline/human_placer.hpp"
#include "circuits/benchmarks.hpp"
#include "circuits/mapper.hpp"
#include "circuits/scheduler.hpp"
#include "circuits/subsets.hpp"
#include "core/placer.hpp"
#include "eval/area.hpp"
#include "eval/crosscut.hpp"
#include "eval/evaluator.hpp"
#include "eval/fidelity.hpp"
#include "eval/hotspot.hpp"
#include "freq/assigner.hpp"
#include "freq/collision_map.hpp"
#include "io/layout_io.hpp"
#include "io/meander.hpp"
#include "io/svg.hpp"
#include "legal/legalizer.hpp"
#include "multidie/cut_penalty.hpp"
#include "multidie/die_plan.hpp"
#include "netlist/builder.hpp"
#include "physics/boxmode.hpp"
#include "physics/capacitance.hpp"
#include "physics/coupling.hpp"
#include "physics/decoherence.hpp"
#include "physics/resonator.hpp"
#include "physics/transmon.hpp"
#include "pipeline/flow.hpp"
#include "pipeline/incremental.hpp"
#include "pipeline/overrides.hpp"
#include "pipeline/session.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "topology/factory.hpp"
#include "topology/generators.hpp"

#endif // QPLACER_QPLACER_HPP
