/**
 * @file
 * The "Human" baseline (Section V-B): the manually optimized,
 * crosstalk-free layout style of industrial devices. Qubits sit on the
 * topology's reference embedding at a pitch that reserves a full
 * resonator channel between neighbours:
 *     D = L * d_r / (L_q + 2 d_q)
 * and each coupler's segments are strung single-file along its edge.
 */

#ifndef QPLACER_BASELINE_HUMAN_PLACER_HPP
#define QPLACER_BASELINE_HUMAN_PLACER_HPP

#include "netlist/builder.hpp"
#include "netlist/netlist.hpp"
#include "topology/topology.hpp"

namespace qplacer {

/** Manual-design baseline layout generator. */
class HumanPlacer
{
  public:
    explicit HumanPlacer(PartitionParams params = {});

    /**
     * Build the Human layout: the netlist is constructed exactly as for
     * the analytical placers (same padding and partitioning), but
     * positions come from the scaled embedding instead of optimization.
     * The netlist's region is set to the layout's bounding box.
     */
    Netlist place(const Topology &topo,
                  const FrequencyAssignment &freqs) const;

    /** The grid pitch used (center-to-center), in um. */
    double pitchUm(const FrequencyAssignment &freqs) const;

  private:
    PartitionParams params_;
};

} // namespace qplacer

#endif // QPLACER_BASELINE_HUMAN_PLACER_HPP
