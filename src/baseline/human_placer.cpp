#include "baseline/human_placer.hpp"

#include <algorithm>

#include "math/stats.hpp"
#include "netlist/partition.hpp"
#include "physics/resonator.hpp"
#include "util/logging.hpp"

namespace qplacer {

HumanPlacer::HumanPlacer(PartitionParams params)
    : params_(params)
{
}

double
HumanPlacer::pitchUm(const FrequencyAssignment &freqs) const
{
    std::vector<double> lengths;
    lengths.reserve(freqs.resonatorFreqHz.size());
    for (double f : freqs.resonatorFreqHz)
        lengths.push_back(resonatorLengthUm(f));
    const double mean_len =
        lengths.empty() ? resonatorLengthUm(6.5e9) : mean(lengths);

    const double padded_qubit = kQubitSizeUm + 2.0 * params_.qubitPadUm;
    // D = L * d_r / (L_q + 2 d_q): the channel long enough to hold the
    // meandered resonator between two padded qubits (Section V-B).
    const double channel =
        mean_len * params_.resonatorPadUm / padded_qubit;

    return padded_qubit + channel;
}

Netlist
HumanPlacer::place(const Topology &topo,
                   const FrequencyAssignment &freqs) const
{
    NetlistBuilder builder(params_);
    Netlist netlist = builder.build(topo, freqs);

    const double pitch = pitchUm(freqs);
    const double spacing = topo.minEmbeddingSpacing();
    if (spacing <= 0.0)
        fatal("HumanPlacer: degenerate topology embedding");
    const double scale = pitch / spacing;

    // Qubits on the scaled embedding (shifted so everything is in the
    // positive quadrant with a half-pitch margin).
    double min_x = topo.embedding.front().x;
    double min_y = topo.embedding.front().y;
    for (const Vec2 &p : topo.embedding) {
        min_x = std::min(min_x, p.x);
        min_y = std::min(min_y, p.y);
    }
    const double margin = pitch / 2.0;
    for (int q = 0; q < topo.numQubits(); ++q) {
        netlist.instance(q).pos =
            Vec2((topo.embedding[q].x - min_x) * scale + margin,
                 (topo.embedding[q].y - min_y) * scale + margin);
    }

    // Segments raster-fill each coupler's channel: the rectangle of
    // width (L_q + 2 d_q) between the two padded qubit pockets, which is
    // exactly the area the pitch formula reserves for the meander.
    const double padded_qubit = kQubitSizeUm + 2.0 * params_.qubitPadUm;
    for (const Resonator &res : netlist.resonators()) {
        const Vec2 a = netlist.instance(res.qubitA).pos;
        const Vec2 b = netlist.instance(res.qubitB).pos;
        const double span = std::max(a.dist(b), 1e-9);
        const Vec2 dir = (b - a) / span;
        const Vec2 perp(-dir.y, dir.x);
        // Clearance covers the qubit pocket plus half a block so that
        // perpendicular channels meeting at a shared qubit never
        // overlap at the corner.
        const double clearance =
            (padded_qubit + params_.segmentUm) / 2.0;
        const double channel_len =
            std::max(span - 2.0 * clearance, params_.segmentUm);
        const Vec2 start = a + dir * clearance;

        const int across = std::max(
            1, static_cast<int>(padded_qubit / params_.segmentUm));
        const int nseg = static_cast<int>(res.segments.size());
        const int rows = (nseg + across - 1) / across;
        // The meander is squeezed into the reserved channel: rows are
        // spread over exactly the channel length, so a channel never
        // spills into a neighbouring one. Blocks of the *same* resonator
        // may compress onto each other -- they are one physical wire
        // snaking at d_r spacing inside its own channel.
        const double row_pitch = channel_len / rows;
        for (int s = 0; s < nseg; ++s) {
            const int row = s / across;
            const int col = s % across;
            // Snake ordering keeps consecutive segments adjacent.
            const int scol = (row % 2 == 0) ? col : (across - 1 - col);
            const double u = (row + 0.5) * row_pitch;
            const double v =
                (scol - (across - 1) / 2.0) * params_.segmentUm;
            netlist.instance(res.segments[s]).pos =
                start + dir * u + perp * v;
        }
    }

    // Region = bounding box of all padded footprints.
    std::vector<Rect> rects;
    rects.reserve(netlist.instances().size());
    for (const Instance &inst : netlist.instances())
        rects.push_back(inst.paddedRect());
    netlist.setRegion(boundingBox(rects));
    return netlist;
}

} // namespace qplacer
