#include "legal/spiral.hpp"

#include <algorithm>
#include <climits>
#include <cmath>

namespace qplacer {

namespace {

/**
 * Reference ring walk: probe every candidate of every ring through
 * canPlace. Kept verbatim as the baseline the fast path must match
 * bit for bit (equivalence suite + legalize_scale gate).
 */
template <typename TryAt>
std::optional<Vec2>
ringWalkReference(int max_radius, const TryAt &try_at)
{
    for (int r = 1; r <= max_radius; ++r) {
        for (int dx = -r; dx <= r; ++dx) {
            if (auto hit = try_at(dx, -r))
                return hit;
            if (auto hit = try_at(dx, r))
                return hit;
        }
        for (int dy = -r + 1; dy <= r - 1; ++dy) {
            if (auto hit = try_at(-r, dy))
                return hit;
            if (auto hit = try_at(r, dy))
                return hit;
        }
    }
    return std::nullopt;
}

/**
 * Fast ring walk: identical candidate order, but each ring side keeps
 * a "first free slot at or after" cursor (nextPlaceableX/Y over the
 * occupancy bitset), so probes inside a known-occupied stretch are
 * skipped without being tested. A probe is only ever skipped when its
 * cell span is fully on-grid and the cursor proves the span occupied
 * -- conditions under which canPlace() is guaranteed false -- so the
 * first accepted candidate is exactly the reference one.
 */
template <typename TryAt>
std::optional<Vec2>
ringWalkFast(const OccupancyGrid &grid, const OccupancyGrid::CellSpan &base,
             int max_radius, const TryAt &try_at)
{
    const int nx = grid.nx();
    const int ny = grid.ny();
    const int span_w = base.x1 - base.x0 + 1;
    const int span_h = base.y1 - base.y0 + 1;

    for (int r = 1; r <= max_radius; ++r) {
        // Top/bottom ring rows: x sweeps left to right in two fixed
        // row bands, one next-free-x cursor each.
        const int lo_y0 = base.y0 - r;
        const int hi_y0 = base.y0 + r;
        const bool lo_on_grid = lo_y0 >= 0 && lo_y0 + span_h <= ny;
        const bool hi_on_grid = hi_y0 >= 0 && hi_y0 + span_h <= ny;
        int next_lo = INT_MIN;
        int next_hi = INT_MIN;
        for (int dx = -r; dx <= r; ++dx) {
            const int x0 = base.x0 + dx;
            const bool x_on_grid = x0 >= 0 && x0 + span_w <= nx;
            if (!lo_on_grid || !x_on_grid) {
                if (auto hit = try_at(dx, -r))
                    return hit;
            } else if (x0 >= next_lo) {
                next_lo = grid.nextPlaceableX(lo_y0, lo_y0 + span_h - 1,
                                              x0, span_w);
                if (next_lo == x0) {
                    if (auto hit = try_at(dx, -r))
                        return hit;
                }
            }
            if (!hi_on_grid || !x_on_grid) {
                if (auto hit = try_at(dx, r))
                    return hit;
            } else if (x0 >= next_hi) {
                next_hi = grid.nextPlaceableX(hi_y0, hi_y0 + span_h - 1,
                                              x0, span_w);
                if (next_hi == x0) {
                    if (auto hit = try_at(dx, r))
                        return hit;
                }
            }
        }

        // Left/right ring columns: y sweeps bottom to top in two fixed
        // column bands, one next-free-y cursor each.
        const int left_x0 = base.x0 - r;
        const int right_x0 = base.x0 + r;
        const bool left_on_grid = left_x0 >= 0 && left_x0 + span_w <= nx;
        const bool right_on_grid =
            right_x0 >= 0 && right_x0 + span_w <= nx;
        int next_left = INT_MIN;
        int next_right = INT_MIN;
        for (int dy = -r + 1; dy <= r - 1; ++dy) {
            const int y0 = base.y0 + dy;
            const bool y_on_grid = y0 >= 0 && y0 + span_h <= ny;
            if (!left_on_grid || !y_on_grid) {
                if (auto hit = try_at(-r, dy))
                    return hit;
            } else if (y0 >= next_left) {
                next_left = grid.nextPlaceableY(
                    left_x0, left_x0 + span_w - 1, y0, span_h);
                if (next_left == y0) {
                    if (auto hit = try_at(-r, dy))
                        return hit;
                }
            }
            if (!right_on_grid || !y_on_grid) {
                if (auto hit = try_at(r, dy))
                    return hit;
            } else if (y0 >= next_right) {
                next_right = grid.nextPlaceableY(
                    right_x0, right_x0 + span_w - 1, y0, span_h);
                if (next_right == y0) {
                    if (auto hit = try_at(r, dy))
                        return hit;
                }
            }
        }
    }
    return std::nullopt;
}

} // namespace

std::optional<Vec2>
spiralSearch(const OccupancyGrid &grid, Vec2 desired, double w, double h,
             int max_radius)
{
    return spiralSearchFiltered(grid, desired, w, h, nullptr, max_radius);
}

std::optional<Vec2>
spiralSearchFiltered(const OccupancyGrid &grid, Vec2 desired, double w,
                     double h,
                     const std::function<bool(Vec2)> &acceptable,
                     int max_radius)
{
    const double cell = grid.cellUm();
    const Vec2 snapped = grid.snapCenter(desired, w, h);

    if (max_radius <= 0)
        max_radius = std::max(grid.nx(), grid.ny());

    auto try_at = [&](int dx, int dy) -> std::optional<Vec2> {
        const Vec2 center(snapped.x + dx * cell, snapped.y + dy * cell);
        const Rect rect = Rect::fromCenter(center, w, h);
        if (grid.canPlace(rect) && (!acceptable || acceptable(center)))
            return center;
        return std::nullopt;
    };

    if (auto hit = try_at(0, 0))
        return hit;

    if (grid.probeEngine() == ProbeEngine::Reference)
        return ringWalkReference(max_radius, try_at);

    const OccupancyGrid::CellSpan base =
        grid.cellSpanOf(Rect::fromCenter(snapped, w, h));
    return ringWalkFast(grid, base, max_radius, try_at);
}

} // namespace qplacer
