#include "legal/spiral.hpp"

#include <algorithm>
#include <cmath>

namespace qplacer {

std::optional<Vec2>
spiralSearch(const OccupancyGrid &grid, Vec2 desired, double w, double h,
             int max_radius)
{
    return spiralSearchFiltered(grid, desired, w, h, nullptr, max_radius);
}

std::optional<Vec2>
spiralSearchFiltered(const OccupancyGrid &grid, Vec2 desired, double w,
                     double h,
                     const std::function<bool(Vec2)> &acceptable,
                     int max_radius)
{
    const double cell = grid.cellUm();
    const Vec2 snapped = grid.snapCenter(desired, w, h);

    if (max_radius <= 0)
        max_radius = std::max(grid.nx(), grid.ny());

    auto try_at = [&](int dx, int dy) -> std::optional<Vec2> {
        const Vec2 center(snapped.x + dx * cell, snapped.y + dy * cell);
        const Rect rect = Rect::fromCenter(center, w, h);
        if (grid.canPlace(rect) && (!acceptable || acceptable(center)))
            return center;
        return std::nullopt;
    };

    if (auto hit = try_at(0, 0))
        return hit;

    for (int r = 1; r <= max_radius; ++r) {
        // Walk the ring of Chebyshev radius r, preferring positions
        // closest to the desired point first within the ring.
        for (int dx = -r; dx <= r; ++dx) {
            if (auto hit = try_at(dx, -r))
                return hit;
            if (auto hit = try_at(dx, r))
                return hit;
        }
        for (int dy = -r + 1; dy <= r - 1; ++dy) {
            if (auto hit = try_at(-r, dy))
                return hit;
            if (auto hit = try_at(r, dy))
                return hit;
        }
    }
    return std::nullopt;
}

} // namespace qplacer
