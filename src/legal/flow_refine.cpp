#include "legal/flow_refine.hpp"

#include <cmath>

#include "math/min_cost_flow.hpp"
#include "util/logging.hpp"

namespace qplacer {

std::vector<int>
refineAssignment(const std::vector<Vec2> &desired,
                 const std::vector<Vec2> &sites)
{
    const int n = static_cast<int>(desired.size());
    if (static_cast<int>(sites.size()) != n)
        panic("refineAssignment: item/site count mismatch");
    if (n == 0)
        return {};

    // Nodes: source, items, sites, sink.
    const int source = 0;
    const int sink = 2 * n + 1;
    MinCostFlow flow(2 * n + 2);

    std::vector<std::vector<int>> edge_id(
        n, std::vector<int>(n, -1));
    for (int i = 0; i < n; ++i)
        flow.addEdge(source, 1 + i, 1, 0);
    for (int i = 0; i < n; ++i) {
        for (int s = 0; s < n; ++s) {
            const double cost_um = desired[i].manhattan(sites[s]);
            edge_id[i][s] = flow.addEdge(
                1 + i, 1 + n + s, 1,
                static_cast<std::int64_t>(std::llround(cost_um)));
        }
    }
    for (int s = 0; s < n; ++s)
        flow.addEdge(1 + n + s, sink, 1, 0);

    const MinCostFlow::Result result = flow.solve(source, sink);
    if (result.flow != n)
        panic("refineAssignment: flow did not saturate");

    std::vector<int> assignment(n, -1);
    for (int i = 0; i < n; ++i) {
        for (int s = 0; s < n; ++s) {
            if (flow.flowOn(edge_id[i][s]) > 0) {
                assignment[i] = s;
                break;
            }
        }
        if (assignment[i] < 0)
            panic("refineAssignment: unassigned item");
    }
    return assignment;
}

} // namespace qplacer
