#include "legal/flow_refine.hpp"

#include <algorithm>
#include <cmath>

#include "geometry/spatial_hash.hpp"
#include "math/min_cost_flow.hpp"
#include "util/logging.hpp"

namespace qplacer {

namespace {

/** Exact dense assignment: every item connects to every site. */
std::vector<int>
refineDense(const std::vector<Vec2> &desired,
            const std::vector<Vec2> &sites)
{
    const int n = static_cast<int>(desired.size());

    // Nodes: source, items, sites, sink.
    const int source = 0;
    const int sink = 2 * n + 1;
    MinCostFlow flow(2 * n + 2);

    std::vector<std::vector<int>> edge_id(
        n, std::vector<int>(n, -1));
    for (int i = 0; i < n; ++i) {
        flow.reserveNode(1 + i, static_cast<std::size_t>(n) + 1);
        flow.reserveNode(1 + n + i, static_cast<std::size_t>(n) + 1);
    }
    for (int i = 0; i < n; ++i)
        flow.addEdge(source, 1 + i, 1, 0);
    for (int i = 0; i < n; ++i) {
        for (int s = 0; s < n; ++s) {
            const double cost_um = desired[i].manhattan(sites[s]);
            edge_id[i][s] = flow.addEdge(
                1 + i, 1 + n + s, 1,
                static_cast<std::int64_t>(std::llround(cost_um)));
        }
    }
    for (int s = 0; s < n; ++s)
        flow.addEdge(1 + n + s, sink, 1, 0);

    const MinCostFlow::Result result = flow.solve(source, sink);
    if (result.flow != n)
        panic("refineAssignment: flow did not saturate");

    std::vector<int> assignment(n, -1);
    for (int i = 0; i < n; ++i) {
        for (int s = 0; s < n; ++s) {
            if (flow.flowOn(edge_id[i][s]) > 0) {
                assignment[i] = s;
                break;
            }
        }
        if (assignment[i] < 0)
            panic("refineAssignment: unassigned item");
    }
    return assignment;
}

/**
 * Sparse assignment: item i connects to its own site plus its k
 * nearest sites. The own-site arc keeps the identity assignment
 * feasible, so the flow always saturates.
 */
std::vector<int>
refineSparse(const std::vector<Vec2> &desired,
             const std::vector<Vec2> &sites, int neighbors)
{
    const int n = static_cast<int>(desired.size());

    // Hash sized to cover every site *and* every desired point (the
    // query centers), so nothing is clamped into edge buckets and the
    // kNearest early-out bound stays valid. ~1 site per bucket.
    Rect bbox(sites[0], sites[0]);
    for (const Vec2 &p : sites)
        bbox = bbox.unionWith(Rect(p, p));
    for (const Vec2 &p : desired)
        bbox = bbox.unionWith(Rect(p, p));
    bbox = bbox.inflated(1.0);
    const double cell =
        std::max(1.0, std::max(bbox.width(), bbox.height()) /
                          std::sqrt(static_cast<double>(n)));
    SpatialHash hash(bbox, cell);
    for (int s = 0; s < n; ++s)
        hash.insert(s, sites[s]);

    const int source = 0;
    const int sink = 2 * n + 1;
    MinCostFlow flow(2 * n + 2);

    for (int i = 0; i < n; ++i)
        flow.addEdge(source, 1 + i, 1, 0);

    std::vector<std::vector<std::pair<int, int>>> arcs(n); // (site, edge)
    std::vector<std::int32_t> cand;
    for (int i = 0; i < n; ++i) {
        cand = hash.kNearest(desired[i], neighbors);
        // Own site first: the feasibility anchor (and, for an already
        // well-placed qubit, usually the cheapest arc anyway).
        if (std::find(cand.begin(), cand.end(), i) == cand.end())
            cand.push_back(i);
        arcs[i].reserve(cand.size());
        for (const std::int32_t s : cand) {
            const double cost_um = desired[i].manhattan(sites[s]);
            const int edge = flow.addEdge(
                1 + i, 1 + n + s, 1,
                static_cast<std::int64_t>(std::llround(cost_um)));
            arcs[i].emplace_back(s, edge);
        }
    }
    for (int s = 0; s < n; ++s)
        flow.addEdge(1 + n + s, sink, 1, 0);

    const MinCostFlow::Result result = flow.solve(source, sink);
    if (result.flow != n) {
        // Cannot happen (identity is feasible); exact fallback anyway
        // so a refinement bug degrades to slow, never to wrong.
        warn("refineAssignment: sparse flow did not saturate; "
             "falling back to the dense exact path");
        return refineDense(desired, sites);
    }

    std::vector<int> assignment(n, -1);
    for (int i = 0; i < n; ++i) {
        for (const auto &[s, edge] : arcs[i]) {
            if (flow.flowOn(edge) > 0) {
                assignment[i] = s;
                break;
            }
        }
        if (assignment[i] < 0)
            panic("refineAssignment: unassigned item");
    }
    return assignment;
}

} // namespace

std::vector<int>
refineAssignment(const std::vector<Vec2> &desired,
                 const std::vector<Vec2> &sites)
{
    const int n = static_cast<int>(desired.size());
    if (static_cast<int>(sites.size()) != n)
        panic("refineAssignment: item/site count mismatch");
    if (n == 0)
        return {};
    return refineDense(desired, sites);
}

std::vector<int>
refineAssignment(const std::vector<Vec2> &desired,
                 const std::vector<Vec2> &sites,
                 const FlowRefineOptions &options)
{
    const int n = static_cast<int>(desired.size());
    if (static_cast<int>(sites.size()) != n)
        panic("refineAssignment: item/site count mismatch");
    if (n == 0)
        return {};
    if (options.neighbors < 1)
        panic("refineAssignment: neighbors must be at least 1");

    if (n <= options.sparseThreshold || options.neighbors >= n)
        return refineDense(desired, sites);
    return refineSparse(desired, sites, options.neighbors);
}

} // namespace qplacer
