#include "legal/tetris.hpp"

#include <algorithm>
#include <numeric>

#include "freq/spectrum.hpp"
#include "legal/spiral.hpp"
#include "util/logging.hpp"

namespace qplacer {

bool
tetrisLegalizeSegments(Netlist &netlist, OccupancyGrid &grid,
                       const IntegrationParams &params,
                       double &displacement_um,
                       const std::vector<int> *only_resonators)
{
    displacement_um = 0.0;

    // Resonators are processed left to right (Tetris scan order), and
    // each resonator's segments are dropped in chain order, every
    // segment spiraling out from its predecessor. This preserves the
    // global placement's ordering while keeping chains contiguous, so
    // the integration pass only has to repair stragglers.
    std::vector<int> res_order;
    if (only_resonators) {
        res_order = *only_resonators;
    } else {
        res_order.resize(netlist.resonators().size());
        std::iota(res_order.begin(), res_order.end(), 0);
    }
    std::vector<double> centroid_x(netlist.resonators().size(), 0.0);
    for (const Resonator &res : netlist.resonators()) {
        double acc = 0.0;
        for (int seg : res.segments)
            acc += netlist.instance(seg).pos.x;
        centroid_x[res.id] = acc / static_cast<double>(res.segments.size());
    }
    std::sort(res_order.begin(), res_order.end(), [&](int a, int b) {
        if (centroid_x[a] != centroid_x[b])
            return centroid_x[a] < centroid_x[b];
        return a < b;
    });

    // Probe scratch shared across every tau_ok invocation: the
    // resonance check runs once per spiral candidate, so a per-probe
    // std::vector allocation used to dominate dense neighbourhoods.
    std::vector<std::int32_t> owner_scratch;

    for (int r : res_order) {
        const Resonator &res = netlist.resonator(r);
        Vec2 anchor;
        bool have_anchor = false;
        for (int id : res.segments) {
            Instance &seg = netlist.instance(id);
            const double w = seg.paddedWidth();
            const double h = seg.paddedHeight();
            // First segment drops near its global spot; the rest chain
            // off their predecessor.
            const Vec2 desired = have_anchor ? anchor : seg.pos;

            std::optional<Vec2> spot;
            if (params.resonanceCheck) {
                // tau-checked search first, within a bounded radius so
                // a hopeless neighbourhood degrades gracefully.
                auto tau_ok = [&](Vec2 center) {
                    const Rect probe =
                        Rect::fromCenter(center, w, h)
                            .inflated(params.probeTolUm);
                    grid.ownersIn(probe, owner_scratch);
                    for (std::int32_t other : owner_scratch) {
                        if (other == id)
                            continue;
                        const Instance &o = netlist.instance(other);
                        if (o.resonator == seg.resonator &&
                            o.resonator >= 0)
                            continue;
                        if (isResonant(seg.freqHz, o.freqHz,
                                       params.detuningThresholdHz)) {
                            return false;
                        }
                    }
                    return true;
                };
                const int radius = static_cast<int>(
                    12.0 * seg.paddedWidth() / grid.cellUm());
                spot = spiralSearchFiltered(grid, desired, w, h, tau_ok,
                                            radius);
            }
            if (!spot)
                spot = spiralSearch(grid, desired, w, h);
            if (!spot)
                return false; // region too fragmented; caller expands
            displacement_um += seg.pos.dist(*spot);
            seg.pos = *spot;
            grid.occupy(Rect::fromCenter(*spot, w, h), id);
            anchor = *spot;
            have_anchor = true;
        }
    }
    return true;
}

} // namespace qplacer
