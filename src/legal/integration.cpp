#include "legal/integration.hpp"

#include <algorithm>
#include <numeric>

#include "freq/spectrum.hpp"
#include "legal/spiral.hpp"
#include "math/union_find.hpp"
#include "util/logging.hpp"

namespace qplacer {

IntegrationLegalizer::IntegrationLegalizer(IntegrationParams params)
    : params_(params)
{
}

bool
IntegrationLegalizer::adjacent(const Instance &a, const Instance &b) const
{
    return a.paddedRect().gap(b.paddedRect()) <= params_.adjacencyTolUm;
}

std::vector<std::vector<int>>
IntegrationLegalizer::clusters(const Netlist &netlist,
                               int resonator_id) const
{
    const Resonator &res = netlist.resonator(resonator_id);
    const std::size_t n = res.segments.size();
    UnionFind uf(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            if (adjacent(netlist.instance(res.segments[i]),
                         netlist.instance(res.segments[j]))) {
                uf.unite(i, j);
            }
        }
    }
    std::vector<std::vector<int>> out;
    std::vector<int> root_to_cluster(n, -1);
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t root = uf.find(i);
        if (root_to_cluster[root] < 0) {
            root_to_cluster[root] = static_cast<int>(out.size());
            out.emplace_back();
        }
        out[root_to_cluster[root]].push_back(res.segments[i]);
    }
    std::sort(out.begin(), out.end(),
              [](const std::vector<int> &a, const std::vector<int> &b) {
                  return a.size() > b.size();
              });
    return out;
}

bool
IntegrationLegalizer::integrationLegal(const Netlist &netlist,
                                       int resonator_id) const
{
    const auto cls = clusters(netlist, resonator_id);
    if (netlist.resonator(resonator_id).segments.size() <= 1)
        return true;
    for (const auto &cluster : cls) {
        if (cluster.size() < 2)
            return false; // an isolated segment cannot be routed through
    }
    return true;
}

bool
IntegrationLegalizer::resonanceOk(const Netlist &netlist,
                                  const OccupancyGrid &grid,
                                  const Instance &inst, Vec2 pos,
                                  int ignore_a, int ignore_b) const
{
    if (!params_.resonanceCheck)
        return true;
    const Rect probe =
        Rect::fromCenter(pos, inst.paddedWidth(), inst.paddedHeight())
            .inflated(params_.probeTolUm);
    grid.ownersIn(probe, ownerScratch_);
    for (std::int32_t other : ownerScratch_) {
        if (other == inst.id || other == ignore_a || other == ignore_b)
            continue;
        const Instance &o = netlist.instance(other);
        if (inst.resonator >= 0 && o.resonator == inst.resonator)
            continue;
        if (isResonant(inst.freqHz, o.freqHz,
                       params_.detuningThresholdHz)) {
            return false;
        }
    }
    return true;
}

IntegrationLegalizer::Result
IntegrationLegalizer::run(Netlist &netlist, OccupancyGrid &grid,
                          const std::vector<int> *only) const
{
    Result result;
    std::vector<int> targets;
    if (only) {
        targets = *only;
    } else {
        targets.resize(netlist.resonators().size());
        std::iota(targets.begin(), targets.end(), 0);
    }

    for (int r : targets) {
        if (!integrationLegal(netlist, r))
            ++result.initiallyBroken;
    }
    if (result.initiallyBroken == 0)
        return result;

    const double cell = grid.cellUm();

    for (int round = 0; round < params_.maxRounds; ++round) {
        bool progress = false;
        for (int r : targets) {
            auto cls = clusters(netlist, r);
            if (cls.size() <= 1)
                continue;

            // Grow the largest cluster: bring every *singleton*
            // segment onto its frontier (multi-segment side clusters
            // already satisfy rilc).
            const std::vector<int> &core = cls.front();
            for (std::size_t c = 1; c < cls.size(); ++c) {
                if (cls[c].size() >= 2)
                    continue;
                for (int seg_id : cls[c]) {
                    Instance &seg = netlist.instance(seg_id);
                    const double w = seg.paddedWidth();
                    const double h = seg.paddedHeight();
                    bool placed = false;

                    // Candidate free slots adjacent to core members.
                    for (int member : core) {
                        const Instance &m = netlist.instance(member);
                        const Vec2 mp = m.pos;
                        const double step_x =
                            (m.paddedWidth() + w) / 2.0;
                        const double step_y =
                            (m.paddedHeight() + h) / 2.0;
                        const Vec2 cands[] = {
                            {mp.x + step_x, mp.y},
                            {mp.x - step_x, mp.y},
                            {mp.x, mp.y + step_y},
                            {mp.x, mp.y - step_y},
                        };
                        for (const Vec2 &cand : cands) {
                            const Vec2 snapped =
                                grid.snapCenter(cand, w, h);
                            // Snapping may push the slot off the
                            // frontier; verify adjacency survived.
                            Instance probe = seg;
                            probe.pos = snapped;
                            if (!adjacent(probe, m))
                                continue;
                            const Rect rect =
                                Rect::fromCenter(snapped, w, h);
                            if (!grid.canPlaceIgnoring(rect, seg_id))
                                continue;
                            if (!resonanceOk(netlist, grid, seg, snapped,
                                             -1, -1))
                                continue;
                            grid.release(
                                Rect::fromCenter(seg.pos, w, h), seg_id);
                            seg.pos = snapped;
                            grid.occupy(rect, seg_id);
                            ++result.moves;
                            placed = true;
                            break;
                        }
                        if (placed)
                            break;
                    }
                    if (placed) {
                        progress = true;
                        continue;
                    }

                    // Swap with a same-size foreign segment adjacent to
                    // the core.
                    for (int member : core) {
                        const Instance &m = netlist.instance(member);
                        const Rect frontier =
                            m.paddedRect().inflated(
                                params_.adjacencyTolUm + cell);
                        for (std::int32_t cand_id :
                             grid.ownersIn(frontier)) {
                            if (cand_id == seg_id || cand_id == member)
                                continue;
                            Instance &cand = netlist.instance(cand_id);
                            if (cand.kind !=
                                    InstanceKind::ResonatorSegment ||
                                cand.resonator == seg.resonator)
                                continue;
                            if (cand.width != seg.width ||
                                cand.height != seg.height)
                                continue;
                            // tau checks at both destinations.
                            if (!resonanceOk(netlist, grid, seg, cand.pos,
                                             cand_id, -1) ||
                                !resonanceOk(netlist, grid, cand, seg.pos,
                                             seg_id, -1)) {
                                continue;
                            }
                            // Swap must not break the partner's own
                            // integration: try it and revert on failure.
                            std::swap(seg.pos, cand.pos);
                            if (!integrationLegal(netlist,
                                                  cand.resonator)) {
                                std::swap(seg.pos, cand.pos);
                                continue;
                            }
                            // Occupancy: footprints are identical, so
                            // swap ownership in place.
                            grid.release(
                                Rect::fromCenter(cand.pos, w, h), seg_id);
                            grid.release(
                                Rect::fromCenter(seg.pos, w, h), cand_id);
                            grid.occupy(
                                Rect::fromCenter(seg.pos, w, h), seg_id);
                            grid.occupy(
                                Rect::fromCenter(cand.pos, w, h),
                                cand_id);
                            ++result.swaps;
                            placed = true;
                            break;
                        }
                        if (placed)
                            break;
                    }
                    if (placed)
                        progress = true;
                }
                if (integrationLegal(netlist, r))
                    break;
            }
        }
        if (!progress)
            break;
    }

    // Final repair: rip up and contiguously re-place any resonator the
    // local moves/swaps could not fix.
    if (params_.chainReplace) {
        for (int r : targets) {
            if (!integrationLegal(netlist, r))
                replaceChain(netlist, grid, r);
        }
    }

    for (int r : targets) {
        if (!integrationLegal(netlist, r))
            ++result.unintegrated;
    }
    result.repaired = result.initiallyBroken - result.unintegrated;
    return result;
}

bool
IntegrationLegalizer::replaceChain(Netlist &netlist, OccupancyGrid &grid,
                                   int r) const
{
    const Resonator &res = netlist.resonator(r);

    // Anchor at the largest surviving cluster's centroid.
    const auto cls = clusters(netlist, r);
    Vec2 anchor;
    for (int seg : cls.front())
        anchor += netlist.instance(seg).pos;
    anchor = anchor / static_cast<double>(cls.front().size());

    // Rip up.
    for (int id : res.segments) {
        const Instance &seg = netlist.instance(id);
        grid.release(Rect::fromCenter(seg.pos, seg.paddedWidth(),
                                      seg.paddedHeight()),
                     id);
    }

    // Re-place as one chain, each segment spiraling from its
    // predecessor; tau-checked first, plain-nearest fallback.
    Vec2 prev = anchor;
    for (int id : res.segments) {
        Instance &seg = netlist.instance(id);
        const double w = seg.paddedWidth();
        const double h = seg.paddedHeight();
        const bool first = (id == res.segments.front());
        auto near_prev = [&](Vec2 center) {
            if (first)
                return true;
            const Rect a = Rect::fromCenter(center, w, h);
            const Rect b = Rect::fromCenter(prev, w, h);
            return a.gap(b) <= params_.adjacencyTolUm;
        };
        auto tau_ok = [&](Vec2 center) {
            return resonanceOk(netlist, grid, seg, center, -1, -1);
        };
        const int radius =
            static_cast<int>(12.0 * w / grid.cellUm());
        // Prefer slots that are both chain-adjacent and tau-clean,
        // then tau-clean (never trade a hotspot for integration),
        // then anything nearby.
        std::optional<Vec2> spot = spiralSearchFiltered(
            grid, prev, w, h,
            [&](Vec2 c) { return near_prev(c) && tau_ok(c); }, radius);
        if (!spot && params_.resonanceCheck)
            spot = spiralSearchFiltered(grid, prev, w, h, tau_ok, radius);
        if (!spot)
            spot = spiralSearch(grid, prev, w, h);
        if (!spot) {
            // Region exhausted: put it back where it was.
            spot = seg.pos;
        }
        seg.pos = *spot;
        grid.occupy(Rect::fromCenter(*spot, w, h), id);
        prev = *spot;
    }
    return integrationLegal(netlist, r);
}

} // namespace qplacer
