#include "legal/occupancy.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace qplacer {

namespace {
constexpr double kEps = 1e-6;
} // namespace

OccupancyGrid::OccupancyGrid(Rect region, double cell_um)
    : region_(region), cellUm_(cell_um)
{
    if (cell_um <= 0.0)
        panic("OccupancyGrid: non-positive cell size");
    nx_ = static_cast<int>(std::floor(region.width() / cell_um + kEps));
    ny_ = static_cast<int>(std::floor(region.height() / cell_um + kEps));
    if (nx_ <= 0 || ny_ <= 0)
        panic("OccupancyGrid: region smaller than one cell");
    owner_.assign(static_cast<std::size_t>(nx_) * ny_, -1);
}

OccupancyGrid::Span
OccupancyGrid::spanOf(const Rect &rect) const
{
    Span s;
    s.x0 = static_cast<int>(
        std::floor((rect.lo.x - region_.lo.x) / cellUm_ + kEps));
    s.y0 = static_cast<int>(
        std::floor((rect.lo.y - region_.lo.y) / cellUm_ + kEps));
    s.x1 = static_cast<int>(
        std::ceil((rect.hi.x - region_.lo.x) / cellUm_ - kEps)) - 1;
    s.y1 = static_cast<int>(
        std::ceil((rect.hi.y - region_.lo.y) / cellUm_ - kEps)) - 1;
    return s;
}

bool
OccupancyGrid::inRegion(const Rect &rect) const
{
    return rect.lo.x >= region_.lo.x - kEps &&
           rect.lo.y >= region_.lo.y - kEps &&
           rect.hi.x <= region_.hi.x + kEps &&
           rect.hi.y <= region_.hi.y + kEps;
}

bool
OccupancyGrid::canPlace(const Rect &rect) const
{
    return canPlaceIgnoring(rect, -2);
}

bool
OccupancyGrid::canPlaceIgnoring(const Rect &rect,
                                std::int32_t ignore_id) const
{
    if (!inRegion(rect))
        return false;
    const Span s = spanOf(rect);
    for (int iy = std::max(0, s.y0); iy <= std::min(ny_ - 1, s.y1); ++iy) {
        for (int ix = std::max(0, s.x0); ix <= std::min(nx_ - 1, s.x1);
             ++ix) {
            const std::int32_t o =
                owner_[static_cast<std::size_t>(iy) * nx_ + ix];
            if (o >= 0 && o != ignore_id)
                return false;
        }
    }
    return true;
}

void
OccupancyGrid::occupy(const Rect &rect, std::int32_t id)
{
    if (!inRegion(rect))
        panic("OccupancyGrid::occupy: rect outside region");
    const Span s = spanOf(rect);
    for (int iy = s.y0; iy <= s.y1; ++iy) {
        for (int ix = s.x0; ix <= s.x1; ++ix) {
            if (ix < 0 || ix >= nx_ || iy < 0 || iy >= ny_)
                continue;
            std::int32_t &o =
                owner_[static_cast<std::size_t>(iy) * nx_ + ix];
            if (o >= 0)
                panic(str("OccupancyGrid::occupy: overlap at cell (", ix,
                          ", ", iy, ") owned by ", o));
            o = id;
        }
    }
}

void
OccupancyGrid::release(const Rect &rect, std::int32_t id)
{
    const Span s = spanOf(rect);
    for (int iy = std::max(0, s.y0); iy <= std::min(ny_ - 1, s.y1); ++iy) {
        for (int ix = std::max(0, s.x0); ix <= std::min(nx_ - 1, s.x1);
             ++ix) {
            std::int32_t &o =
                owner_[static_cast<std::size_t>(iy) * nx_ + ix];
            if (o == id)
                o = -1;
        }
    }
}

std::int32_t
OccupancyGrid::ownerAt(Vec2 p) const
{
    const int ix =
        static_cast<int>(std::floor((p.x - region_.lo.x) / cellUm_));
    const int iy =
        static_cast<int>(std::floor((p.y - region_.lo.y) / cellUm_));
    if (ix < 0 || ix >= nx_ || iy < 0 || iy >= ny_)
        return -1;
    return owner_[static_cast<std::size_t>(iy) * nx_ + ix];
}

std::vector<std::int32_t>
OccupancyGrid::ownersIn(const Rect &rect) const
{
    std::vector<std::int32_t> out;
    const Span s = spanOf(rect);
    for (int iy = std::max(0, s.y0); iy <= std::min(ny_ - 1, s.y1); ++iy) {
        for (int ix = std::max(0, s.x0); ix <= std::min(nx_ - 1, s.x1);
             ++ix) {
            const std::int32_t o =
                owner_[static_cast<std::size_t>(iy) * nx_ + ix];
            if (o >= 0 &&
                std::find(out.begin(), out.end(), o) == out.end()) {
                out.push_back(o);
            }
        }
    }
    return out;
}

Vec2
OccupancyGrid::snapCenter(Vec2 desired, double w, double h) const
{
    // Align the lower-left corner to the cell lattice.
    double lx = desired.x - w / 2.0;
    double ly = desired.y - h / 2.0;
    lx = region_.lo.x +
         std::round((lx - region_.lo.x) / cellUm_) * cellUm_;
    ly = region_.lo.y +
         std::round((ly - region_.lo.y) / cellUm_) * cellUm_;
    lx = std::clamp(lx, region_.lo.x, region_.hi.x - w);
    ly = std::clamp(ly, region_.lo.y, region_.hi.y - h);
    return Vec2(lx + w / 2.0, ly + h / 2.0);
}

} // namespace qplacer
