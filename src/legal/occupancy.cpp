#include "legal/occupancy.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <utility>

#include "util/logging.hpp"

namespace qplacer {

namespace {
constexpr double kEps = 1e-6;
constexpr std::uint64_t kAllOnes = ~std::uint64_t(0);

/** Bits [lo, hi] of a word (0 <= lo <= hi <= 63). */
std::uint64_t
bitRange(int lo, int hi)
{
    const std::uint64_t upto = hi == 63 ? kAllOnes
                                        : (std::uint64_t(1) << (hi + 1)) - 1;
    return upto & (kAllOnes << lo);
}
} // namespace

OccupancyGrid::OccupancyGrid(Rect region, double cell_um)
    : region_(region), cellUm_(cell_um)
{
    if (cell_um <= 0.0)
        panic("OccupancyGrid: non-positive cell size");
    nx_ = static_cast<int>(std::floor(region.width() / cell_um + kEps));
    ny_ = static_cast<int>(std::floor(region.height() / cell_um + kEps));
    if (nx_ <= 0 || ny_ <= 0)
        panic("OccupancyGrid: region smaller than one cell");
    owner_.assign(static_cast<std::size_t>(nx_) * ny_, -1);
    wordsPerRow_ = (nx_ + 63) / 64;
    occ_.assign(static_cast<std::size_t>(wordsPerRow_) * ny_, 0);
    nbx_ = (nx_ + 7) / 8;
    nby_ = (ny_ + 7) / 8;
    summaryWordsPerRow_ = (nbx_ + 63) / 64;
    full_.assign(static_cast<std::size_t>(summaryWordsPerRow_) * nby_, 0);
}

OccupancyGrid::CellSpan
OccupancyGrid::spanOf(const Rect &rect) const
{
    CellSpan s;
    s.x0 = static_cast<int>(
        std::floor((rect.lo.x - region_.lo.x) / cellUm_ + kEps));
    s.y0 = static_cast<int>(
        std::floor((rect.lo.y - region_.lo.y) / cellUm_ + kEps));
    s.x1 = static_cast<int>(
        std::ceil((rect.hi.x - region_.lo.x) / cellUm_ - kEps)) - 1;
    s.y1 = static_cast<int>(
        std::ceil((rect.hi.y - region_.lo.y) / cellUm_ - kEps)) - 1;
    return s;
}

OccupancyGrid::CellSpan
OccupancyGrid::cellSpanOf(const Rect &rect) const
{
    return spanOf(rect);
}

bool
OccupancyGrid::inRegion(const Rect &rect) const
{
    return rect.lo.x >= region_.lo.x - kEps &&
           rect.lo.y >= region_.lo.y - kEps &&
           rect.hi.x <= region_.hi.x + kEps &&
           rect.hi.y <= region_.hi.y + kEps;
}

bool
OccupancyGrid::canPlace(const Rect &rect) const
{
    // -1 as the "ignore nothing" sentinel: owner -1 cells are free
    // anyway, and it can never alias kBlockedOwner.
    return canPlaceIgnoring(rect, -1);
}

bool
OccupancyGrid::canPlaceIgnoring(const Rect &rect,
                                std::int32_t ignore_id) const
{
    if (!inRegion(rect))
        return false;
    CellSpan s = spanOf(rect);
    s.x0 = std::max(0, s.x0);
    s.y0 = std::max(0, s.y0);
    s.x1 = std::min(nx_ - 1, s.x1);
    s.y1 = std::min(ny_ - 1, s.y1);
    if (s.x0 > s.x1 || s.y0 > s.y1)
        return true;
    return engine_ == ProbeEngine::Fast ? spanFree(s, ignore_id)
                                        : spanFreeScan(s, ignore_id);
}

bool
OccupancyGrid::spanFree(const CellSpan &s, std::int32_t ignore_id) const
{
    // Summary reject: a fully-occupied 8x8 block intersecting the span
    // means some span cell is owned. Only valid without an ignore id
    // (a full block could be owned entirely by the ignored instance --
    // an 8x8-cell block is exactly one padded qubit footprint).
    if (ignore_id < 0) {
        const int by0 = s.y0 / 8;
        const int by1 = s.y1 / 8;
        const int bw0 = (s.x0 / 8) / 64;
        const int bw1 = (s.x1 / 8) / 64;
        for (int by = by0; by <= by1; ++by) {
            const std::uint64_t *row =
                full_.data() +
                static_cast<std::size_t>(by) * summaryWordsPerRow_;
            for (int w = bw0; w <= bw1; ++w) {
                std::uint64_t mask = kAllOnes;
                if (w == bw0 || w == bw1) {
                    const int lo = w == bw0 ? (s.x0 / 8) & 63 : 0;
                    const int hi = w == bw1 ? (s.x1 / 8) & 63 : 63;
                    mask = bitRange(lo, hi);
                }
                if (row[w] & mask)
                    return false;
            }
        }
    }

    const int w0 = s.x0 / 64;
    const int w1 = s.x1 / 64;
    for (int iy = s.y0; iy <= s.y1; ++iy) {
        const std::uint64_t *row =
            occ_.data() + static_cast<std::size_t>(iy) * wordsPerRow_;
        for (int w = w0; w <= w1; ++w) {
            std::uint64_t mask = kAllOnes;
            if (w == w0 || w == w1) {
                const int lo = w == w0 ? s.x0 & 63 : 0;
                const int hi = w == w1 ? s.x1 & 63 : 63;
                mask = bitRange(lo, hi);
            }
            std::uint64_t hit = row[w] & mask;
            if (!hit)
                continue;
            if (ignore_id < 0)
                return false;
            // Occupied cells: free only if every one is the ignored
            // instance (visit set bits only).
            while (hit) {
                const int b = std::countr_zero(hit);
                hit &= hit - 1;
                const std::int32_t o =
                    owner_[static_cast<std::size_t>(iy) * nx_ + w * 64 +
                           b];
                if (o != ignore_id)
                    return false;
            }
        }
    }
    return true;
}

bool
OccupancyGrid::spanFreeScan(const CellSpan &s, std::int32_t ignore_id) const
{
    for (int iy = s.y0; iy <= s.y1; ++iy) {
        for (int ix = s.x0; ix <= s.x1; ++ix) {
            const std::int32_t o =
                owner_[static_cast<std::size_t>(iy) * nx_ + ix];
            if (o != -1 && o != ignore_id)
                return false;
        }
    }
    return true;
}

void
OccupancyGrid::refreshSummary(const CellSpan &s)
{
    const int bx0 = std::max(0, s.x0) / 8;
    const int bx1 = std::min(nx_ - 1, s.x1) / 8;
    const int by0 = std::max(0, s.y0) / 8;
    const int by1 = std::min(ny_ - 1, s.y1) / 8;
    for (int by = by0; by <= by1; ++by) {
        const int cy0 = by * 8;
        const int cy1 = std::min(ny_ - 1, cy0 + 7);
        for (int bx = bx0; bx <= bx1; ++bx) {
            const int cx0 = bx * 8;
            const int cx1 = std::min(nx_ - 1, cx0 + 7);
            // An 8-cell block row always lies inside one word.
            const std::uint64_t mask = bitRange(cx0 & 63, cx1 & 63);
            const int w = cx0 / 64;
            bool block_full = true;
            for (int iy = cy0; block_full && iy <= cy1; ++iy) {
                block_full =
                    (occ_[static_cast<std::size_t>(iy) * wordsPerRow_ +
                          w] &
                     mask) == mask;
            }
            std::uint64_t &word =
                full_[static_cast<std::size_t>(by) * summaryWordsPerRow_ +
                      bx / 64];
            const std::uint64_t bit = std::uint64_t(1) << (bx & 63);
            if (block_full)
                word |= bit;
            else
                word &= ~bit;
        }
    }
}

void
OccupancyGrid::occupy(const Rect &rect, std::int32_t id)
{
    if (!inRegion(rect))
        panic("OccupancyGrid::occupy: rect outside region");
    const CellSpan s = spanOf(rect);
    for (int iy = s.y0; iy <= s.y1; ++iy) {
        for (int ix = s.x0; ix <= s.x1; ++ix) {
            if (ix < 0 || ix >= nx_ || iy < 0 || iy >= ny_)
                continue;
            std::int32_t &o =
                owner_[static_cast<std::size_t>(iy) * nx_ + ix];
            if (o != -1)
                panic(str("OccupancyGrid::occupy: overlap at cell (", ix,
                          ", ", iy, ") owned by ", o));
            o = id;
            occ_[static_cast<std::size_t>(iy) * wordsPerRow_ + ix / 64] |=
                std::uint64_t(1) << (ix & 63);
        }
    }
    refreshSummary(s);
}

void
OccupancyGrid::block(const Rect &rect)
{
    const CellSpan s = spanOf(rect);
    for (int iy = std::max(0, s.y0); iy <= std::min(ny_ - 1, s.y1); ++iy) {
        for (int ix = std::max(0, s.x0); ix <= std::min(nx_ - 1, s.x1);
             ++ix) {
            std::int32_t &o =
                owner_[static_cast<std::size_t>(iy) * nx_ + ix];
            if (o >= 0)
                panic(str("OccupancyGrid::block: cell (", ix, ", ", iy,
                          ") owned by instance ", o));
            o = kBlockedOwner;
            occ_[static_cast<std::size_t>(iy) * wordsPerRow_ + ix / 64] |=
                std::uint64_t(1) << (ix & 63);
        }
    }
    refreshSummary(s);
}

void
OccupancyGrid::release(const Rect &rect, std::int32_t id)
{
    const CellSpan s = spanOf(rect);
    for (int iy = std::max(0, s.y0); iy <= std::min(ny_ - 1, s.y1); ++iy) {
        for (int ix = std::max(0, s.x0); ix <= std::min(nx_ - 1, s.x1);
             ++ix) {
            std::int32_t &o =
                owner_[static_cast<std::size_t>(iy) * nx_ + ix];
            if (o == id) {
                o = -1;
                occ_[static_cast<std::size_t>(iy) * wordsPerRow_ +
                     ix / 64] &= ~(std::uint64_t(1) << (ix & 63));
            }
        }
    }
    refreshSummary(s);
}

std::int32_t
OccupancyGrid::ownerAt(Vec2 p) const
{
    const int ix =
        static_cast<int>(std::floor((p.x - region_.lo.x) / cellUm_));
    const int iy =
        static_cast<int>(std::floor((p.y - region_.lo.y) / cellUm_));
    if (ix < 0 || ix >= nx_ || iy < 0 || iy >= ny_)
        return -1;
    return owner_[static_cast<std::size_t>(iy) * nx_ + ix];
}

std::vector<std::int32_t>
OccupancyGrid::ownersIn(const Rect &rect) const
{
    // Set-bit walk in row-major order, then first-encounter dedup in
    // O(k log k) via sort+unique on (owner, position) pairs -- the
    // swap-candidate loop of the integration legalizer depends on the
    // scan order, so a plain sorted dedup would change layouts.
    std::vector<std::int32_t> out;
    const CellSpan s = spanOf(rect);
    const int x0 = std::max(0, s.x0);
    const int x1 = std::min(nx_ - 1, s.x1);
    const int y0 = std::max(0, s.y0);
    const int y1 = std::min(ny_ - 1, s.y1);
    if (x0 > x1 || y0 > y1)
        return out;
    for (int iy = y0; iy <= y1; ++iy) {
        const std::uint64_t *row =
            occ_.data() + static_cast<std::size_t>(iy) * wordsPerRow_;
        for (int w = x0 / 64; w <= x1 / 64; ++w) {
            std::uint64_t hit =
                row[w] & bitRange(w == x0 / 64 ? x0 & 63 : 0,
                                  w == x1 / 64 ? x1 & 63 : 63);
            while (hit) {
                const int b = std::countr_zero(hit);
                hit &= hit - 1;
                const std::int32_t o =
                    owner_[static_cast<std::size_t>(iy) * nx_ + w * 64 +
                           b];
                if (o >= 0 && (out.empty() || out.back() != o))
                    out.push_back(o);
            }
        }
    }
    std::vector<std::pair<std::int32_t, int>> keyed(out.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        keyed[i] = {out[i], static_cast<int>(i)};
    std::sort(keyed.begin(), keyed.end());
    keyed.erase(std::unique(keyed.begin(), keyed.end(),
                            [](const auto &a, const auto &b) {
                                return a.first == b.first;
                            }),
                keyed.end());
    std::sort(keyed.begin(), keyed.end(),
              [](const auto &a, const auto &b) {
                  return a.second < b.second;
              });
    out.resize(keyed.size());
    for (std::size_t i = 0; i < keyed.size(); ++i)
        out[i] = keyed[i].first;
    return out;
}

void
OccupancyGrid::ownersIn(const Rect &rect,
                        std::vector<std::int32_t> &out) const
{
    out.clear();
    const CellSpan s = spanOf(rect);
    const int x0 = std::max(0, s.x0);
    const int x1 = std::min(nx_ - 1, s.x1);
    const int y0 = std::max(0, s.y0);
    const int y1 = std::min(ny_ - 1, s.y1);
    if (x0 > x1 || y0 > y1)
        return;
    for (int iy = y0; iy <= y1; ++iy) {
        const std::uint64_t *row =
            occ_.data() + static_cast<std::size_t>(iy) * wordsPerRow_;
        for (int w = x0 / 64; w <= x1 / 64; ++w) {
            std::uint64_t hit =
                row[w] & bitRange(w == x0 / 64 ? x0 & 63 : 0,
                                  w == x1 / 64 ? x1 & 63 : 63);
            while (hit) {
                const int b = std::countr_zero(hit);
                hit &= hit - 1;
                const std::int32_t o =
                    owner_[static_cast<std::size_t>(iy) * nx_ + w * 64 +
                           b];
                if (o >= 0 && (out.empty() || out.back() != o))
                    out.push_back(o);
            }
        }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
}

int
OccupancyGrid::nextPlaceableX(int y0, int y1, int x_from, int span_w) const
{
    y0 = std::max(0, y0);
    y1 = std::min(ny_ - 1, y1);
    const int x = std::max(0, x_from);
    if (span_w <= 0 || y0 > y1 || x + span_w > nx_)
        return nx_;
    const int w_first = x / 64;
    const int w_last = (nx_ - 1) / 64;
    int run = 0;
    for (int w = w_first; w <= w_last; ++w) {
        std::uint64_t occ = 0;
        for (int iy = y0; iy <= y1; ++iy)
            occ |= occ_[static_cast<std::size_t>(iy) * wordsPerRow_ + w];
        if (w == w_first && (x & 63))
            occ |= (std::uint64_t(1) << (x & 63)) - 1;
        if (w == w_last && (nx_ & 63))
            occ |= kAllOnes << (nx_ & 63);
        int b = 0;
        while (b < 64) {
            const std::uint64_t shifted = occ >> b;
            const int zeros = shifted == 0
                                  ? 64 - b
                                  : std::countr_zero(shifted);
            run += zeros;
            b += zeros;
            if (run >= span_w)
                return w * 64 + b - run;
            if (b >= 64)
                break;
            b += std::countr_one(shifted >> zeros);
            run = 0;
        }
    }
    return nx_;
}

int
OccupancyGrid::nextPlaceableY(int x0, int x1, int y_from, int span_h) const
{
    x0 = std::max(0, x0);
    x1 = std::min(nx_ - 1, x1);
    const int y = std::max(0, y_from);
    if (span_h <= 0 || x0 > x1 || y + span_h > ny_)
        return ny_;
    const int w0 = x0 / 64;
    const int w1 = x1 / 64;
    int run = 0;
    for (int iy = y; iy < ny_; ++iy) {
        const std::uint64_t *row =
            occ_.data() + static_cast<std::size_t>(iy) * wordsPerRow_;
        bool free = true;
        for (int w = w0; free && w <= w1; ++w) {
            const std::uint64_t mask =
                bitRange(w == w0 ? x0 & 63 : 0, w == w1 ? x1 & 63 : 63);
            free = (row[w] & mask) == 0;
        }
        if (free) {
            if (++run >= span_h)
                return iy - span_h + 1;
        } else {
            run = 0;
        }
    }
    return ny_;
}

Vec2
OccupancyGrid::snapCenter(Vec2 desired, double w, double h) const
{
    // Align the lower-left corner to the cell lattice.
    double lx = desired.x - w / 2.0;
    double ly = desired.y - h / 2.0;
    lx = region_.lo.x +
         std::round((lx - region_.lo.x) / cellUm_) * cellUm_;
    ly = region_.lo.y +
         std::round((ly - region_.lo.y) / cellUm_) * cellUm_;
    lx = std::clamp(lx, region_.lo.x, region_.hi.x - w);
    ly = std::clamp(ly, region_.lo.y, region_.hi.y - h);
    return Vec2(lx + w / 2.0, ly + h / 2.0);
}

} // namespace qplacer
