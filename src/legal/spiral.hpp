/**
 * @file
 * Greedy spiral search (the paper's qubit legalization primitive [53]):
 * starting from a desired position, scan cell offsets ring by ring for
 * the nearest free slot.
 */

#ifndef QPLACER_LEGAL_SPIRAL_HPP
#define QPLACER_LEGAL_SPIRAL_HPP

#include <functional>
#include <optional>

#include "legal/occupancy.hpp"

namespace qplacer {

/**
 * Find the free, snapped center closest (in ring order) to @p desired
 * for a w x h footprint.
 *
 * @param grid       Occupancy state.
 * @param desired    Target center (um).
 * @param w, h       Footprint size (um).
 * @param max_radius Search cutoff in cells (0 = whole region).
 * @return a placeable center, or nullopt if the region is full.
 */
std::optional<Vec2> spiralSearch(const OccupancyGrid &grid, Vec2 desired,
                                 double w, double h, int max_radius = 0);

/**
 * Like spiralSearch(), but a candidate is accepted only when
 * @p acceptable(center) holds (e.g. the tau resonance check of the
 * frequency-aware legalizer). Returns nullopt if no acceptable free
 * slot exists within the radius.
 */
std::optional<Vec2>
spiralSearchFiltered(const OccupancyGrid &grid, Vec2 desired, double w,
                     double h,
                     const std::function<bool(Vec2)> &acceptable,
                     int max_radius = 0);

} // namespace qplacer

#endif // QPLACER_LEGAL_SPIRAL_HPP
