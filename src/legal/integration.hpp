/**
 * @file
 * Integration-aware legalization (Algorithm 1, Section IV-C2).
 *
 * After Tetris legalization the segments of a resonator may be
 * scattered. For each resonator, `rilc` checks that its segments form a
 * single adjacency-connected cluster; failing resonators grow their
 * largest cluster by relocating scattered segments into free slots on
 * the cluster frontier or by swapping them with frontier segments of
 * other resonators, each candidate validated by the resonance checker
 * tau (skipped in the frequency-blind Classic mode).
 */

#ifndef QPLACER_LEGAL_INTEGRATION_HPP
#define QPLACER_LEGAL_INTEGRATION_HPP

#include <vector>

#include "legal/occupancy.hpp"
#include "netlist/netlist.hpp"

namespace qplacer {

/** Knobs of the integration legalizer. */
struct IntegrationParams
{
    /**
     * Max gap (um) between padded rects that counts as adjacent for
     * cluster connectivity. Covers one occupancy cell plus diagonal
     * corner gaps, so snapped layouts cluster robustly.
     */
    double adjacencyTolUm = 150.0;

    /**
     * Probe inflation (um) for the tau resonance check; matches the
     * hotspot analyzer's adjacency threshold so the legalizer guards
     * exactly the pairs the metric would flag.
     */
    double probeTolUm = 50.0;

    /** Validate moves/swaps against the resonance checker tau. */
    bool resonanceCheck = true;

    /** Detuning threshold for tau. */
    double detuningThresholdHz = 0.1e9;

    /** Repair passes over all resonators. */
    int maxRounds = 8;

    /**
     * After move/swap rounds, rip up each still-broken resonator and
     * re-place its whole segment chain contiguously (tau-checked with
     * plain-nearest fallback).
     */
    bool chainReplace = true;
};

/** Runs Algorithm 1 on a legalized netlist. */
class IntegrationLegalizer
{
  public:
    explicit IntegrationLegalizer(IntegrationParams params = {});

    /** Outcome summary. */
    struct Result
    {
        int initiallyBroken = 0;  ///< Resonators failing rilc on entry.
        int repaired = 0;         ///< Fixed by moves/swaps.
        int unintegrated = 0;     ///< Still failing at exit.
        int moves = 0;
        int swaps = 0;
    };

    /**
     * Repair segment clustering in place. @p grid must reflect the
     * current positions (qubits + segments occupied). When @p only is
     * non-null, just those resonator ids are checked and repaired
     * (scoped re-legalization); swaps may still relocate same-size
     * foreign segments they trade places with.
     */
    Result run(Netlist &netlist, OccupancyGrid &grid,
               const std::vector<int> *only = nullptr) const;

    /**
     * rilc (Section IV-C2): every segment of the resonator must be in
     * close proximity to at least one other segment of the same
     * resonator -- i.e. no singleton clusters. Split blocks are fine;
     * the meander is re-routed through them (Fig. 8-e).
     */
    bool integrationLegal(const Netlist &netlist, int resonator_id) const;

    /** Segment clusters of a resonator (lists of instance ids). */
    std::vector<std::vector<int>>
    clusters(const Netlist &netlist, int resonator_id) const;

  private:
    /** True if two instances' padded rects are within the tolerance. */
    bool adjacent(const Instance &a, const Instance &b) const;

    /**
     * Rip up and contiguously re-place the full segment chain of
     * resonator @p r (the final repair of Algorithm 1 failures).
     * @return true if the resonator is integration-legal afterwards.
     */
    bool replaceChain(Netlist &netlist, OccupancyGrid &grid, int r) const;

    /**
     * tau check for placing instance @p inst (hypothetically centered at
     * @p pos) next to its neighbours: no near-resonant foreign instance
     * within the adjacency tolerance. Always passes when resonance
     * checking is disabled.
     */
    bool resonanceOk(const Netlist &netlist, const OccupancyGrid &grid,
                     const Instance &inst, Vec2 pos,
                     int ignore_a, int ignore_b) const;

    IntegrationParams params_;

    /**
     * ownersIn scratch for resonanceOk: the tau probe runs once per
     * candidate slot of every repair move, so it must not allocate.
     * The legalizer is single-threaded; mutable is safe here.
     */
    mutable std::vector<std::int32_t> ownerScratch_;
};

} // namespace qplacer

#endif // QPLACER_LEGAL_INTEGRATION_HPP
