/**
 * @file
 * Annealing-based detailed placement: a post-legalization refinement
 * stage that proposes swap / relocate moves on the legalized layout and
 * accepts them under a geometric temperature schedule.
 *
 * Moves are scored with incremental deltas of three terms:
 *
 *  - HPWL: weighted Manhattan half-perimeter over the nets incident to
 *    the moved instances (O(degree) per proposal);
 *  - collisions: the count of near-resonant adjacent pairs (the exact
 *    pair predicate of eval/hotspot.hpp) touching the moved instances.
 *    Any move that increases this count is rejected outright, so the
 *    refined layout never has more hotspot pairs than the input;
 *  - fidelity: a hinge sum of (adjacencyTol - gap) over the surviving
 *    near-resonant pairs, so the annealer also widens gaps it cannot
 *    eliminate.
 *
 * Legality is structural, not checked after the fact: moves are probed
 * against the same word-packed OccupancyGrid the legalizers use
 * (canPlaceIgnoring for relocations; swaps exchange identical padded
 * footprints), so every accepted move preserves a pairwise-disjoint,
 * in-region layout by construction. The walk is serial and driven by
 * one Rng stream, so a refinement is deterministic per seed. At the end
 * the best visited state -- ranked by (HPWL, collision count), with the
 * input layout as the initial best -- is restored. Together with the
 * hard rejection of collision increases this guarantees both
 * hpwlAfter <= hpwlBefore and collisionsAfter <= collisionsBefore.
 */

#ifndef QPLACER_LEGAL_ANNEAL_HPP
#define QPLACER_LEGAL_ANNEAL_HPP

#include <cstdint>
#include <functional>

#include "eval/hotspot.hpp"
#include "legal/legalizer.hpp"
#include "netlist/netlist.hpp"
#include "util/cancel.hpp"

namespace qplacer {

/** Knobs of the detailed-placement stage (off by default). */
struct DetailedPlaceParams
{
    /**
     * Insert the detailed stage between legalize and metrics. Off by
     * default: the analytic flow's golden layouts are the baseline
     * contract, and refinement is opt-in on top of them.
     */
    bool enabled = false;

    /**
     * Sweeps of the annealing walk (one sweep = numInstances move
     * proposals). 0 is an exact no-op: the stage is not inserted and
     * the legalized layout is returned untouched.
     */
    int iters = 40;

    /**
     * Initial temperature in cost units (um of HPWL). Uphill moves of
     * about this size are accepted with probability 1/e at the start.
     * 0 = pure descent (only non-worsening moves accepted).
     */
    double tempStart = 75.0;

    /** Geometric decay per sweep: T_k = tempStart * tempDecay^k. */
    double tempDecay = 0.92;
};

/** Diagnostics of one detailed-placement run (FlowResult::detailed). */
struct DetailedStats
{
    bool ran = false;       ///< The stage executed (iters > 0, valid input).
    bool cancelled = false; ///< Stopped early by a CancelToken.
    int sweeps = 0;         ///< Sweeps completed.
    long long proposed = 0; ///< Moves proposed.
    long long accepted = 0; ///< Moves accepted.
    long long swaps = 0;    ///< Accepted swaps.
    long long relocates = 0;    ///< Accepted relocations.
    double hpwlBefore = 0.0;    ///< Exact layout HPWL at entry.
    double hpwlAfter = 0.0;     ///< Exact layout HPWL of the result.
    int collisionsBefore = 0;   ///< Near-resonant adjacent pairs at entry.
    int collisionsAfter = 0;    ///< ... of the result (never larger).
    double seconds = 0.0;       ///< Wall clock of the refinement.
};

/** The annealing detailed placer; see the file header for the contract. */
class DetailedPlacer
{
  public:
    DetailedPlacer(DetailedPlaceParams params, LegalizerParams legal,
                   HotspotParams hotspot);

    /**
     * Test/diagnostic hook: invoked after every accepted move with the
     * netlist in its post-move state (the property suites assert
     * legality and objective monotonicity per move through this).
     */
    using AcceptHook = std::function<void(const Netlist &)>;

    /**
     * Refine @p netlist in place. The input must be a legalized layout
     * (pairwise-disjoint padded footprints on the legalizer's cell
     * grid); anything else is detected while building the occupancy
     * grid and returned untouched with ran = false. Deterministic per
     * @p seed.
     */
    DetailedStats refine(Netlist &netlist, std::uint64_t seed,
                         const CancelToken *cancel = nullptr,
                         const AcceptHook &on_accept = {}) const;

    const DetailedPlaceParams &params() const { return params_; }

  private:
    DetailedPlaceParams params_;
    LegalizerParams legal_;
    HotspotParams hotspot_;
};

/**
 * Exact weighted HPWL of a layout (serial, deterministic summation
 * order) -- the quantity the annealer minimizes and the portfolio
 * winner is ranked by. Matches WirelengthModel::hpwl on the instance
 * positions.
 */
double layoutHpwl(const Netlist &netlist);

/**
 * The annealer's combined move objective on a whole layout: HPWL plus
 * the weighted fidelity hinge over near-resonant adjacent pairs.
 * Collision-count increases are hard-rejected (not priced), so along
 * any accepted trajectory at temperature 0 this value is
 * non-increasing -- the property the anneal test suite checks.
 */
double detailedObjective(const Netlist &netlist,
                         const HotspotParams &hotspot);

} // namespace qplacer

#endif // QPLACER_LEGAL_ANNEAL_HPP
