/**
 * @file
 * Cell-based occupancy grid used by the legalizers.
 *
 * All component footprints in the flow (padded qubits: 800 um, padded
 * segments: l_b + 100 um) are multiples of 100 um, so a 100 um cell grid
 * represents any legal arrangement exactly.
 *
 * Scale: alongside the per-cell owner map the grid maintains a
 * word-packed occupancy bitset (one bit per cell) and a hierarchical
 * summary level (one bit per 8x8 block, set when the block is fully
 * occupied). canPlace() tests a footprint span with a handful of masked
 * word reads -- ~O(span/64) instead of O(span) -- and dense
 * neighbourhoods reject in O(1) off the summary bits. nextPlaceableX()/
 * nextPlaceableY() expose "first free slot at or after" scans so the
 * spiral legalizer can skip fully-occupied stretches of a ring
 * wholesale. Every fast query is exact: the bitsets mirror the owner
 * map bit for bit, so results are identical to the per-cell reference
 * scan (ProbeEngine::Reference keeps that scan alive for equivalence
 * tests and the legalize_scale benchmark).
 */

#ifndef QPLACER_LEGAL_OCCUPANCY_HPP
#define QPLACER_LEGAL_OCCUPANCY_HPP

#include <cstdint>
#include <vector>

#include "geometry/rect.hpp"

namespace qplacer {

/**
 * Which canPlace/spiral implementation to use. Fast (the default) runs
 * the bitset word probes and ring skips; Reference runs the original
 * per-cell owner scan. Both are exact and produce bitwise-identical
 * layouts -- Reference exists as the baseline for the equivalence
 * suite and the legalize_scale speedup gate.
 */
enum class ProbeEngine
{
    Fast,
    Reference,
};

/**
 * Owner id of cells reserved by block() (multi-die cut gaps). Distinct
 * from -1 (free) and from any instance id, and never matched by a
 * non-negative ignore id, so every placement probe rejects blocked
 * cells naturally.
 */
constexpr std::int32_t kBlockedOwner = -2;

/** Grid of ownership cells over the placement region. */
class OccupancyGrid
{
  public:
    /**
     * @param region  Placement region.
     * @param cell_um Cell edge (must divide all footprints used).
     */
    OccupancyGrid(Rect region, double cell_um);

    /** Inclusive cell index ranges of a footprint (may be off-grid). */
    struct CellSpan
    {
        int x0, x1, y0, y1;
    };

    /** True if @p rect lies in-region and covers only free cells. */
    bool canPlace(const Rect &rect) const;

    /**
     * Like canPlace() but cells owned by @p ignore_id count as free
     * (used when testing moves of an already-placed instance).
     */
    bool canPlaceIgnoring(const Rect &rect, std::int32_t ignore_id) const;

    /** Mark @p rect as owned by @p id. panics on overlap. */
    void occupy(const Rect &rect, std::int32_t id);

    /**
     * Reserve the cells of @p rect as kBlockedOwner (keep-out, e.g. a
     * multi-die cut gap). Cells already owned by an instance panic;
     * out-of-grid parts are clipped. Blocked cells are never returned
     * by ownersIn() and no ignore id frees them.
     */
    void block(const Rect &rect);

    /** Release cells of @p rect owned by @p id. */
    void release(const Rect &rect, std::int32_t id);

    /** Owner of the cell containing @p p (-1 if free/out of range). */
    std::int32_t ownerAt(Vec2 p) const;

    /**
     * Owners overlapping @p rect, deduplicated, in first-encountered
     * (row-major scan) order -- the order the integration legalizer's
     * swap-candidate loop depends on.
     */
    std::vector<std::int32_t> ownersIn(const Rect &rect) const;

    /**
     * Allocation-free ownersIn: @p out is cleared and receives the
     * owners overlapping @p rect, deduplicated via sort+unique, in
     * ascending id order. For order-insensitive set probes (the tau
     * resonance checks) on the hot path.
     */
    void ownersIn(const Rect &rect, std::vector<std::int32_t> &out) const;

    /**
     * Snap a desired center so that a w x h rect is cell-aligned and
     * inside the region.
     */
    Vec2 snapCenter(Vec2 desired, double w, double h) const;

    /** Cell index span of @p rect (unclamped; callers bound-check). */
    CellSpan cellSpanOf(const Rect &rect) const;

    /**
     * Smallest x0 >= @p x_from such that cells [x0, x0 + span_w) x
     * [y0, y1] are all free and x0 + span_w <= nx(); nx() if no such
     * start exists. Pure occupancy (no region or ignore-id semantics);
     * rows are clamped to the grid. Powers the spiral ring skip.
     */
    int nextPlaceableX(int y0, int y1, int x_from, int span_w) const;

    /** Vertical counterpart of nextPlaceableX (returns ny() if none). */
    int nextPlaceableY(int x0, int x1, int y_from, int span_h) const;

    /** Probe implementation used by canPlace and the spiral search. */
    ProbeEngine probeEngine() const { return engine_; }
    void setProbeEngine(ProbeEngine engine) { engine_ = engine; }

    double cellUm() const { return cellUm_; }
    const Rect &region() const { return region_; }
    int nx() const { return nx_; }
    int ny() const { return ny_; }

  private:
    CellSpan spanOf(const Rect &rect) const;
    bool inRegion(const Rect &rect) const;

    /** Fast span test: masked word reads + full-block summary reject. */
    bool spanFree(const CellSpan &s, std::int32_t ignore_id) const;

    /** Reference span test: the original per-cell owner scan. */
    bool spanFreeScan(const CellSpan &s, std::int32_t ignore_id) const;

    /** Recompute the full-block summary bits touching cell span @p s. */
    void refreshSummary(const CellSpan &s);

    Rect region_;
    double cellUm_;
    int nx_;
    int ny_;
    ProbeEngine engine_ = ProbeEngine::Fast;
    std::vector<std::int32_t> owner_;

    // Occupancy bitset: wordsPerRow_ words per row, bit ix%64 of word
    // (iy * wordsPerRow_ + ix/64) set iff the cell is owned.
    int wordsPerRow_;
    std::vector<std::uint64_t> occ_;

    // Summary level: one bit per 8x8 cell block, set iff every in-grid
    // cell of the block is owned. A set bit intersecting a probe span
    // rejects canPlace without reading the detail words; bits are only
    // ever conservatively cleared, never stale-set.
    int nbx_;
    int nby_;
    int summaryWordsPerRow_;
    std::vector<std::uint64_t> full_;
};

} // namespace qplacer

#endif // QPLACER_LEGAL_OCCUPANCY_HPP
