/**
 * @file
 * Cell-based occupancy grid used by the legalizers.
 *
 * All component footprints in the flow (padded qubits: 800 um, padded
 * segments: l_b + 100 um) are multiples of 100 um, so a 100 um cell grid
 * represents any legal arrangement exactly.
 */

#ifndef QPLACER_LEGAL_OCCUPANCY_HPP
#define QPLACER_LEGAL_OCCUPANCY_HPP

#include <cstdint>
#include <vector>

#include "geometry/rect.hpp"

namespace qplacer {

/** Grid of ownership cells over the placement region. */
class OccupancyGrid
{
  public:
    /**
     * @param region  Placement region.
     * @param cell_um Cell edge (must divide all footprints used).
     */
    OccupancyGrid(Rect region, double cell_um);

    /** True if @p rect lies in-region and covers only free cells. */
    bool canPlace(const Rect &rect) const;

    /**
     * Like canPlace() but cells owned by @p ignore_id count as free
     * (used when testing moves of an already-placed instance).
     */
    bool canPlaceIgnoring(const Rect &rect, std::int32_t ignore_id) const;

    /** Mark @p rect as owned by @p id. panics on overlap. */
    void occupy(const Rect &rect, std::int32_t id);

    /** Release cells of @p rect owned by @p id. */
    void release(const Rect &rect, std::int32_t id);

    /** Owner of the cell containing @p p (-1 if free/out of range). */
    std::int32_t ownerAt(Vec2 p) const;

    /** Owners overlapping @p rect (deduplicated). */
    std::vector<std::int32_t> ownersIn(const Rect &rect) const;

    /**
     * Snap a desired center so that a w x h rect is cell-aligned and
     * inside the region.
     */
    Vec2 snapCenter(Vec2 desired, double w, double h) const;

    double cellUm() const { return cellUm_; }
    const Rect &region() const { return region_; }
    int nx() const { return nx_; }
    int ny() const { return ny_; }

  private:
    struct Span
    {
        int x0, x1, y0, y1; // inclusive cell ranges
    };
    Span spanOf(const Rect &rect) const;
    bool inRegion(const Rect &rect) const;

    Rect region_;
    double cellUm_;
    int nx_;
    int ny_;
    std::vector<std::int32_t> owner_;
};

} // namespace qplacer

#endif // QPLACER_LEGAL_OCCUPANCY_HPP
