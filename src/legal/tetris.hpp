/**
 * @file
 * Tetris-style legalization of resonator segments ([17] in the paper):
 * segments are processed left to right and dropped into the nearest
 * free slot of the occupancy grid, minimizing displacement while
 * preserving the global placement's ordering.
 */

#ifndef QPLACER_LEGAL_TETRIS_HPP
#define QPLACER_LEGAL_TETRIS_HPP

#include <vector>

#include "legal/integration.hpp"
#include "legal/occupancy.hpp"
#include "netlist/netlist.hpp"

namespace qplacer {

/**
 * Legalize all resonator segments of @p netlist onto @p grid (which
 * already contains the fixed qubits). Updates instance positions and
 * occupies the grid.
 *
 * When @p params.resonanceCheck is set (Qplacer mode), candidate slots
 * adjacent to a near-resonant foreign instance are skipped within a
 * bounded search radius (falling back to the plain nearest slot when
 * no clean one exists), so the tau constraint survives legalization.
 *
 * When @p only_resonators is non-null, just those resonator ids are
 * processed (scoped re-legalization, Legalizer::legalizeScoped); all
 * other segments must already occupy @p grid and are treated as fixed
 * obstacles. The scan order among the subset matches the full scan.
 *
 * @param displacement_um Out: total displacement over all segments.
 * @return false if some segment found no free slot (caller should
 *         retry with a larger region).
 */
bool tetrisLegalizeSegments(Netlist &netlist, OccupancyGrid &grid,
                            const IntegrationParams &params,
                            double &displacement_um,
                            const std::vector<int> *only_resonators = nullptr);

} // namespace qplacer

#endif // QPLACER_LEGAL_TETRIS_HPP
