/** @file Annealing detailed placement; contract in anneal.hpp. */

#include "legal/anneal.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <utility>
#include <vector>

#include "freq/spectrum.hpp"
#include "legal/occupancy.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace qplacer {
namespace {

/**
 * Weight of the fidelity hinge (um of violation depth) against um of
 * HPWL in the move cost. Small on purpose: wirelength stays the primary
 * objective; the hinge only breaks ties toward wider detuning gaps.
 */
constexpr double kFidelityWeight = 4.0;

/** Relocation reach per axis, in occupancy cells. */
constexpr int kRelocateReachCells = 4;

/** Segments of one resonator are exempt, exactly like eval/hotspot. */
bool
sameResonator(const Instance &a, const Instance &b)
{
    return a.resonator >= 0 && a.resonator == b.resonator;
}

/** Collision count + fidelity hinge of a set of hotspot pairs. */
struct PairStats
{
    int count = 0;
    double hinge = 0.0;

    PairStats &
    operator+=(const PairStats &o)
    {
        count += o.count;
        hinge += o.hinge;
        return *this;
    }
};

/**
 * The near-resonant-adjacency predicate of eval/hotspot.hpp: true when
 * the pair is a spatial violation, with the hinge depth in @p hinge.
 */
bool
hotspotPair(const Instance &a, const Instance &b,
            const HotspotParams &hotspot, double &hinge)
{
    if (sameResonator(a, b))
        return false;
    if (!isResonant(a.freqHz, b.freqHz, hotspot.detuningThresholdHz))
        return false;
    const double gap = a.paddedRect().gap(b.paddedRect());
    if (gap > hotspot.adjacencyTolUm)
        return false;
    hinge = hotspot.adjacencyTolUm - gap;
    return true;
}

/** One proposed move: a relocation of i, or a swap when j >= 0. */
struct Proposal
{
    int i = -1;
    int j = -1;
    Vec2 newI;
    Vec2 newJ;
};

/** The annealing walk over one layout. */
class Walk
{
  public:
    Walk(Netlist &netlist, const DetailedPlaceParams &params,
         const HotspotParams &hotspot, double cell_um)
        : netlist_(netlist), params_(params), hotspot_(hotspot),
          grid_(netlist.region(), cell_um),
          multi_(netlist.dieSpec().active())
    {
        if (multi_)
            plan_ = DiePlan::resolve(netlist.dieSpec(), netlist.region());
    }

    /** Occupy every padded footprint; false if the input is not legal. */
    bool
    build()
    {
        // Cut gaps first: an input straddling a gap fails the canPlace
        // below exactly like any other illegality and we hand off.
        if (multi_)
            for (const Rect &band : plan_.gapBands())
                grid_.block(band);
        const auto &instances = netlist_.instances();
        for (const Instance &inst : instances) {
            if (!grid_.canPlace(inst.paddedRect()))
                return false;
            grid_.occupy(inst.paddedRect(), inst.id);
        }

        incident_.resize(instances.size());
        const auto &nets = netlist_.nets();
        for (std::size_t k = 0; k < nets.size(); ++k) {
            incident_[static_cast<std::size_t>(nets[k].a)].push_back(
                static_cast<int>(k));
            incident_[static_cast<std::size_t>(nets[k].b)].push_back(
                static_cast<int>(k));
        }

        // Swap partners must have identical padded footprints (that is
        // what makes a swap legal with no probing at all); group the
        // instances by footprint once.
        group_.resize(instances.size());
        std::vector<std::pair<double, double>> footprints;
        for (const Instance &inst : instances) {
            const std::pair<double, double> fp{inst.paddedWidth(),
                                               inst.paddedHeight()};
            std::size_t g = 0;
            while (g < footprints.size() && footprints[g] != fp)
                ++g;
            if (g == footprints.size()) {
                footprints.push_back(fp);
                groups_.emplace_back();
            }
            group_[static_cast<std::size_t>(inst.id)] = static_cast<int>(g);
            groups_[g].push_back(inst.id);
        }
        return true;
    }

    /** Total violation-pair stats of the current layout (each pair once). */
    PairStats
    totalPairs()
    {
        PairStats total;
        for (const Instance &inst : netlist_.instances()) {
            queryNeighbors(inst);
            for (const std::int32_t o : ownerScratch_) {
                if (o <= inst.id)
                    continue; // Count each unordered pair once.
                double hinge = 0.0;
                if (hotspotPair(inst, netlist_.instance(o), hotspot_,
                                hinge)) {
                    ++total.count;
                    total.hinge += hinge;
                }
            }
        }
        return total;
    }

    /**
     * Violation-pair stats of every pair involving @p m in the current
     * layout. @p exclude skips one partner id (the other endpoint of a
     * swap, whose scan already counted the shared pair).
     */
    PairStats
    around(int m, int exclude)
    {
        PairStats stats;
        const Instance &mine = netlist_.instance(m);
        queryNeighbors(mine);
        for (const std::int32_t o : ownerScratch_) {
            if (o == m || o == exclude)
                continue;
            double hinge = 0.0;
            if (hotspotPair(mine, netlist_.instance(o), hotspot_, hinge)) {
                ++stats.count;
                stats.hinge += hinge;
            }
        }
        return stats;
    }

    /** HPWL over the nets incident to the moved instances, each once. */
    double
    localHpwl(const Proposal &prop)
    {
        netScratch_.clear();
        const auto &inc_i = incident_[static_cast<std::size_t>(prop.i)];
        netScratch_.insert(netScratch_.end(), inc_i.begin(), inc_i.end());
        if (prop.j >= 0) {
            const auto &inc_j =
                incident_[static_cast<std::size_t>(prop.j)];
            netScratch_.insert(netScratch_.end(), inc_j.begin(),
                               inc_j.end());
            std::sort(netScratch_.begin(), netScratch_.end());
            netScratch_.erase(
                std::unique(netScratch_.begin(), netScratch_.end()),
                netScratch_.end());
        }
        const auto &nets = netlist_.nets();
        double sum = 0.0;
        for (const int k : netScratch_) {
            const Net &net = nets[static_cast<std::size_t>(k)];
            const Vec2 &pa = netlist_.instance(net.a).pos;
            const Vec2 &pb = netlist_.instance(net.b).pos;
            sum += net.weight *
                   (std::abs(pa.x - pb.x) + std::abs(pa.y - pb.y));
        }
        return sum;
    }

    /** Move the proposal's instances to their new positions. */
    void
    apply(const Proposal &prop)
    {
        Instance &a = netlist_.instance(prop.i);
        grid_.release(a.paddedRect(), prop.i);
        if (prop.j >= 0) {
            Instance &b = netlist_.instance(prop.j);
            grid_.release(b.paddedRect(), prop.j);
            a.pos = prop.newI;
            b.pos = prop.newJ;
            grid_.occupy(a.paddedRect(), prop.i);
            grid_.occupy(b.paddedRect(), prop.j);
        } else {
            a.pos = prop.newI;
            grid_.occupy(a.paddedRect(), prop.i);
        }
    }

    PairStats
    pairsOf(const Proposal &prop)
    {
        PairStats stats = around(prop.i, /*exclude=*/-1);
        if (prop.j >= 0)
            stats += around(prop.j, /*exclude=*/prop.i);
        return stats;
    }

    Netlist &netlist_;
    const DetailedPlaceParams &params_;
    const HotspotParams &hotspot_;
    OccupancyGrid grid_;
    bool multi_;   ///< Active multi-die partition?
    DiePlan plan_; ///< Resolved when multi_.
    std::vector<std::vector<int>> incident_; ///< Net ids per instance.
    std::vector<int> group_;                 ///< Footprint group id.
    std::vector<std::vector<int>> groups_;   ///< Members per group.

  private:
    void
    queryNeighbors(const Instance &inst)
    {
        // Padded rects live on the cell grid, so inflating the query by
        // tolerance + one cell over-covers every candidate with
        // gap <= tolerance; the exact gap predicate filters the rest.
        const Rect query = inst.paddedRect().inflated(
            hotspot_.adjacencyTolUm + grid_.cellUm());
        grid_.ownersIn(query, ownerScratch_);
    }

    std::vector<int> netScratch_;
    std::vector<std::int32_t> ownerScratch_;
};

} // namespace

double
layoutHpwl(const Netlist &netlist)
{
    double sum = 0.0;
    for (const Net &net : netlist.nets()) {
        const Vec2 &pa = netlist.instance(net.a).pos;
        const Vec2 &pb = netlist.instance(net.b).pos;
        sum += net.weight *
               (std::abs(pa.x - pb.x) + std::abs(pa.y - pb.y));
    }
    return sum;
}

double
detailedObjective(const Netlist &netlist, const HotspotParams &hotspot)
{
    double hinge_total = 0.0;
    const auto &instances = netlist.instances();
    for (std::size_t a = 0; a < instances.size(); ++a) {
        for (std::size_t b = a + 1; b < instances.size(); ++b) {
            double hinge = 0.0;
            if (hotspotPair(instances[a], instances[b], hotspot, hinge))
                hinge_total += hinge;
        }
    }
    return layoutHpwl(netlist) + kFidelityWeight * hinge_total;
}

DetailedPlacer::DetailedPlacer(DetailedPlaceParams params,
                               LegalizerParams legal, HotspotParams hotspot)
    : params_(params), legal_(legal), hotspot_(hotspot)
{
}

DetailedStats
DetailedPlacer::refine(Netlist &netlist, std::uint64_t seed,
                       const CancelToken *cancel,
                       const AcceptHook &on_accept) const
{
    Timer timer;
    DetailedStats stats;
    const std::size_t n = netlist.instances().size();
    if (params_.iters <= 0 || n < 2 || netlist.nets().empty())
        return stats; // ran = false: nothing to refine, layout untouched.

    Walk walk(netlist, params_, hotspot_, legal_.cellUm);
    if (!walk.build())
        return stats; // Input not legal on this cell grid; hands off.
    stats.ran = true;

    double cur_hpwl = layoutHpwl(netlist);
    int cur_collisions = walk.totalPairs().count;
    stats.hpwlBefore = cur_hpwl;
    stats.collisionsBefore = cur_collisions;

    // The input layout seeds the best snapshot, so the restore at the
    // bottom can only improve on it (or return it unchanged).
    std::vector<Vec2> best_positions(n);
    for (std::size_t i = 0; i < n; ++i)
        best_positions[i] = netlist.instances()[i].pos;
    double best_hpwl = cur_hpwl;
    int best_collisions = cur_collisions;

    Rng rng(seed);
    for (int sweep = 0; sweep < params_.iters; ++sweep) {
        if (cancel && cancel->cancelled()) {
            stats.cancelled = true;
            break;
        }
        const double temp =
            params_.tempStart * std::pow(params_.tempDecay, sweep);

        for (std::size_t p = 0; p < n; ++p) {
            ++stats.proposed;
            const int i = static_cast<int>(rng.below(n));
            const Instance &inst = netlist.instance(i);

            Proposal prop;
            prop.i = i;
            if (rng.uniform() < 0.5) {
                // Swap with a random same-footprint partner.
                const auto &members =
                    walk.groups_[static_cast<std::size_t>(
                        walk.group_[static_cast<std::size_t>(i)])];
                if (members.size() < 2)
                    continue;
                int j = members[rng.below(members.size() - 1)];
                if (j == i)
                    j = members.back();
                prop.j = j;
                prop.newI = netlist.instance(j).pos;
                prop.newJ = inst.pos;
            } else {
                // Relocate to a free cell-aligned site nearby.
                const double cell = walk.grid_.cellUm();
                const double dx = static_cast<double>(rng.range(
                                      -kRelocateReachCells,
                                      kRelocateReachCells)) *
                                  cell;
                const double dy = static_cast<double>(rng.range(
                                      -kRelocateReachCells,
                                      kRelocateReachCells)) *
                                  cell;
                if (dx == 0.0 && dy == 0.0)
                    continue;
                const double pw = inst.paddedWidth();
                const double ph = inst.paddedHeight();
                const Vec2 target = walk.grid_.snapCenter(
                    Vec2(inst.pos.x + dx, inst.pos.y + dy), pw, ph);
                if (target.x == inst.pos.x && target.y == inst.pos.y)
                    continue;
                // A relocation never changes a die assignment: reject
                // cross-die drifts (an explicit swap is the only move
                // that exchanges die membership).
                if (walk.multi_ && walk.plan_.dieAt(target) !=
                                       walk.plan_.dieAt(inst.pos))
                    continue;
                if (!walk.grid_.canPlaceIgnoring(
                        Rect::fromCenter(target, pw, ph), i))
                    continue;
                prop.newI = target;
            }

            // Incremental deltas: only the nets and violation pairs
            // touching the moved instances change.
            const double hpwl_before = walk.localHpwl(prop);
            const PairStats pairs_before = walk.pairsOf(prop);
            const Proposal undo{prop.i, prop.j, inst.pos,
                                prop.j >= 0 ? netlist.instance(prop.j).pos
                                            : Vec2()};
            walk.apply(prop);
            const double hpwl_after = walk.localHpwl(prop);
            const PairStats pairs_after = walk.pairsOf(prop);

            const int d_collisions = pairs_after.count - pairs_before.count;
            const double d_cost =
                (hpwl_after - hpwl_before) +
                kFidelityWeight * (pairs_after.hinge - pairs_before.hinge);

            // Collision increases are rejected outright (never priced);
            // otherwise Metropolis on the HPWL + fidelity cost.
            bool accept = d_collisions <= 0 && d_cost <= 0.0;
            if (!accept && d_collisions <= 0 && temp > 0.0)
                accept = rng.uniform() < std::exp(-d_cost / temp);
            if (!accept) {
                walk.apply(undo);
                continue;
            }

            ++stats.accepted;
            if (prop.j >= 0)
                ++stats.swaps;
            else
                ++stats.relocates;
            cur_hpwl += hpwl_after - hpwl_before;
            cur_collisions += d_collisions;
            if (cur_hpwl < best_hpwl ||
                (cur_hpwl == best_hpwl &&
                 cur_collisions < best_collisions)) {
                best_hpwl = cur_hpwl;
                best_collisions = cur_collisions;
                for (std::size_t k = 0; k < n; ++k)
                    best_positions[k] = netlist.instances()[k].pos;
            }
            if (on_accept)
                on_accept(netlist);
        }
        ++stats.sweeps;
    }

    // Restore the best visited state (possibly the input itself).
    for (std::size_t i = 0; i < n; ++i)
        netlist.instance(static_cast<int>(i)).pos = best_positions[i];
    stats.hpwlAfter = layoutHpwl(netlist);
    stats.collisionsAfter = best_collisions;
    stats.seconds = timer.seconds();
    return stats;
}

} // namespace qplacer
