#include "legal/legalizer.hpp"

#include <algorithm>
#include <numeric>

#include "geometry/spatial_hash.hpp"
#include "legal/flow_refine.hpp"
#include "legal/spiral.hpp"
#include "legal/tetris.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace qplacer {

Legalizer::Legalizer(LegalizerParams params)
    : params_(params)
{
}

bool
Legalizer::attempt(Netlist &netlist, LegalizeResult &result,
                   const CancelToken *cancel) const
{
    result = LegalizeResult{};
    OccupancyGrid grid(netlist.region(), params_.cellUm);
    grid.setProbeEngine(params_.probeEngine);

    // Multi-die: resolve the partition against the *current* region
    // (it may have grown between attempts) and reserve the cut gaps
    // before anything is placed -- no footprint can straddle a cut.
    DiePlan plan;
    const bool multi = netlist.dieSpec().active();
    if (multi) {
        plan = DiePlan::resolve(netlist.dieSpec(), netlist.region());
        for (const Rect &band : plan.gapBands())
            grid.block(band);
    }

    // --- Stage 1: qubits (greedy spiral, central-first order). ---
    Timer stage_timer;
    const Vec2 center = netlist.region().center();
    std::vector<int> qubit_order(netlist.numQubits());
    std::iota(qubit_order.begin(), qubit_order.end(), 0);
    // Center distances precomputed once: the comparator used to call
    // Vec2::dist twice per invocation, ~2 N log N sqrt's per sort.
    std::vector<double> center_dist(netlist.numQubits());
    for (int q = 0; q < netlist.numQubits(); ++q)
        center_dist[q] = netlist.instance(q).pos.dist(center);
    std::sort(qubit_order.begin(), qubit_order.end(), [&](int a, int b) {
        if (center_dist[a] != center_dist[b])
            return center_dist[a] < center_dist[b];
        return a < b;
    });

    std::vector<Vec2> desired(netlist.numQubits());
    for (int q = 0; q < netlist.numQubits(); ++q)
        desired[q] = netlist.instance(q).pos;

    // The qubit's die is decided by its global-placement position; the
    // spiral then never legalizes it across a cut.
    std::vector<int> die_of;
    if (multi) {
        die_of.resize(netlist.numQubits());
        for (int q = 0; q < netlist.numQubits(); ++q)
            die_of[q] = plan.dieAt(desired[q]);
    }

    for (int q : qubit_order) {
        Instance &inst = netlist.instance(q);
        const double w = inst.paddedWidth();
        const double h = inst.paddedHeight();
        std::optional<Vec2> spot;
        if (multi) {
            const Rect die = plan.dies[die_of[q]].inflated(1e-6);
            spot = spiralSearchFiltered(
                grid, inst.pos, w, h, [&](Vec2 c) {
                    return die.containsRect(Rect::fromCenter(c, w, h));
                });
        } else {
            spot = spiralSearch(grid, inst.pos, w, h);
        }
        if (!spot)
            return false;
        inst.pos = *spot;
        grid.occupy(Rect::fromCenter(*spot, w, h), q);
    }
    result.spiralSeconds = stage_timer.seconds();

    // --- Stage 1b: min-cost-flow refinement over the pooled sites. ---
    // Multi-die pools per die: sites and demands of the same die only,
    // so the assignment cannot migrate a qubit across a cut.
    stage_timer.reset();
    if (params_.flowRefine && netlist.numQubits() > 1) {
        FlowRefineOptions options;
        options.sparseThreshold = params_.flowSparseThreshold;
        options.neighbors = params_.flowSparseNeighbors;
        if (!multi) {
            std::vector<Vec2> sites(netlist.numQubits());
            for (int q = 0; q < netlist.numQubits(); ++q)
                sites[q] = netlist.instance(q).pos;
            const std::vector<int> assign =
                refineAssignment(desired, sites, options);
            for (int q = 0; q < netlist.numQubits(); ++q)
                netlist.instance(q).pos = sites[assign[q]];
        } else {
            for (int d = 0; d < plan.spec.numDies(); ++d) {
                std::vector<int> group;
                for (int q = 0; q < netlist.numQubits(); ++q)
                    if (die_of[q] == d)
                        group.push_back(q);
                if (group.size() < 2)
                    continue;
                std::vector<Vec2> want, sites;
                want.reserve(group.size());
                sites.reserve(group.size());
                for (int q : group) {
                    want.push_back(desired[q]);
                    sites.push_back(netlist.instance(q).pos);
                }
                const std::vector<int> assign =
                    refineAssignment(want, sites, options);
                for (std::size_t i = 0; i < group.size(); ++i)
                    netlist.instance(group[i]).pos = sites[assign[i]];
            }
        }
    }
    for (int q = 0; q < netlist.numQubits(); ++q) {
        result.qubitDisplacementUm +=
            desired[q].dist(netlist.instance(q).pos);
    }
    result.flowRefineSeconds = stage_timer.seconds();

    // --- Stage 2: segments (Tetris). ---
    if (cancel && cancel->cancelled()) {
        result.cancelled = true;
        return true;
    }
    stage_timer.reset();
    if (!tetrisLegalizeSegments(netlist, grid,
                                params_.integrationParams,
                                result.segmentDisplacementUm)) {
        return false;
    }
    result.tetrisSeconds = stage_timer.seconds();

    // --- Stage 3: integration-aware repair. ---
    if (cancel && cancel->cancelled()) {
        result.cancelled = true;
        return true;
    }
    stage_timer.reset();
    if (params_.integration) {
        IntegrationLegalizer integrator(params_.integrationParams);
        result.integration = integrator.run(netlist, grid);
    }
    result.integrationSeconds = stage_timer.seconds();
    return true;
}

bool
Legalizer::attemptScoped(Netlist &netlist,
                         const std::vector<char> &is_movable_in,
                         LegalizeResult &result,
                         const CancelToken *cancel) const
{
    result = LegalizeResult{};
    std::vector<char> is_movable = is_movable_in;

    // Fixed instances enter the grid as obstacles at their current --
    // already legal -- positions. A conflicting fixed footprint is
    // possible when the delta resized instances under a stale prior;
    // demote it to movable (whole resonator for segments, so chains
    // stay whole) and rebuild the occupancy. Conflicts are rare, so
    // the restart loop almost never iterates.
    // Multi-die: cut gaps are reserved before the fixed obstacles go
    // in. A stale-prior fixed instance overlapping a gap simply fails
    // canPlace below and is demoted to movable like any conflict.
    DiePlan plan;
    const bool multi = netlist.dieSpec().active();
    if (multi)
        plan = DiePlan::resolve(netlist.dieSpec(), netlist.region());

    OccupancyGrid grid(netlist.region(), params_.cellUm);
    for (int restart = 0;; ++restart) {
        grid = OccupancyGrid(netlist.region(), params_.cellUm);
        grid.setProbeEngine(params_.probeEngine);
        if (multi)
            for (const Rect &band : plan.gapBands())
                grid.block(band);
        int conflict = -1;
        for (int i = 0; i < netlist.numInstances(); ++i) {
            if (is_movable[i])
                continue;
            const Instance &inst = netlist.instance(i);
            const Rect rect = Rect::fromCenter(
                inst.pos, inst.paddedWidth(), inst.paddedHeight());
            if (!grid.canPlace(rect)) {
                conflict = i;
                break;
            }
            grid.occupy(rect, i);
        }
        if (conflict < 0)
            break;
        if (restart >= netlist.numInstances())
            return false; // every demotion shrinks the fixed set; bail
        const Instance &inst = netlist.instance(conflict);
        if (inst.kind == InstanceKind::ResonatorSegment &&
            inst.resonator >= 0) {
            for (int seg : netlist.resonator(inst.resonator).segments)
                is_movable[seg] = 1;
        } else {
            is_movable[conflict] = 1;
        }
    }

    // --- Stage 1: movable qubits (greedy spiral, central-first). ---
    Timer stage_timer;
    const Vec2 center = netlist.region().center();
    std::vector<int> movable_qubits;
    for (int q = 0; q < netlist.numQubits(); ++q)
        if (is_movable[q])
            movable_qubits.push_back(q);

    std::vector<double> center_dist(netlist.numQubits(), 0.0);
    for (int q : movable_qubits)
        center_dist[q] = netlist.instance(q).pos.dist(center);
    std::vector<int> qubit_order = movable_qubits;
    std::sort(qubit_order.begin(), qubit_order.end(), [&](int a, int b) {
        if (center_dist[a] != center_dist[b])
            return center_dist[a] < center_dist[b];
        return a < b;
    });

    std::vector<Vec2> desired;
    desired.reserve(movable_qubits.size());
    for (int q : movable_qubits)
        desired.push_back(netlist.instance(q).pos);

    // Die assignment of each movable qubit, from its warm position.
    std::vector<int> die_of;
    if (multi) {
        die_of.assign(netlist.numQubits(), 0);
        for (int q : movable_qubits)
            die_of[q] = plan.dieAt(netlist.instance(q).pos);
    }

    for (int q : qubit_order) {
        Instance &inst = netlist.instance(q);
        const double w = inst.paddedWidth();
        const double h = inst.paddedHeight();
        std::optional<Vec2> spot;
        if (multi) {
            const Rect die = plan.dies[die_of[q]].inflated(1e-6);
            spot = spiralSearchFiltered(
                grid, inst.pos, w, h, [&](Vec2 c) {
                    return die.containsRect(Rect::fromCenter(c, w, h));
                });
        } else {
            spot = spiralSearch(grid, inst.pos, w, h);
        }
        if (!spot)
            return false;
        inst.pos = *spot;
        grid.occupy(Rect::fromCenter(*spot, w, h), q);
    }
    result.spiralSeconds = stage_timer.seconds();

    // --- Stage 1b: flow refinement over the movable sites only. ---
    stage_timer.reset();
    if (params_.flowRefine && movable_qubits.size() > 1) {
        FlowRefineOptions options;
        options.sparseThreshold = params_.flowSparseThreshold;
        options.neighbors = params_.flowSparseNeighbors;
        if (!multi) {
            std::vector<Vec2> sites;
            sites.reserve(movable_qubits.size());
            for (int q : movable_qubits)
                sites.push_back(netlist.instance(q).pos);
            const std::vector<int> assign =
                refineAssignment(desired, sites, options);
            for (std::size_t i = 0; i < movable_qubits.size(); ++i)
                netlist.instance(movable_qubits[i]).pos =
                    sites[assign[i]];
        } else {
            for (int d = 0; d < plan.spec.numDies(); ++d) {
                std::vector<std::size_t> group;
                for (std::size_t i = 0; i < movable_qubits.size(); ++i)
                    if (die_of[movable_qubits[i]] == d)
                        group.push_back(i);
                if (group.size() < 2)
                    continue;
                std::vector<Vec2> want, sites;
                want.reserve(group.size());
                sites.reserve(group.size());
                for (std::size_t i : group) {
                    want.push_back(desired[i]);
                    sites.push_back(
                        netlist.instance(movable_qubits[i]).pos);
                }
                const std::vector<int> assign =
                    refineAssignment(want, sites, options);
                for (std::size_t i = 0; i < group.size(); ++i)
                    netlist.instance(movable_qubits[group[i]]).pos =
                        sites[assign[i]];
            }
        }
    }
    for (std::size_t i = 0; i < movable_qubits.size(); ++i) {
        result.qubitDisplacementUm +=
            desired[i].dist(netlist.instance(movable_qubits[i]).pos);
    }
    result.flowRefineSeconds = stage_timer.seconds();

    // --- Stage 2: movable segments (scoped Tetris). ---
    if (cancel && cancel->cancelled()) {
        result.cancelled = true;
        return true;
    }
    stage_timer.reset();
    std::vector<int> movable_res;
    for (const Resonator &res : netlist.resonators())
        if (!res.segments.empty() && is_movable[res.segments.front()])
            movable_res.push_back(res.id);
    if (!tetrisLegalizeSegments(netlist, grid, params_.integrationParams,
                                result.segmentDisplacementUm,
                                &movable_res)) {
        return false;
    }
    result.tetrisSeconds = stage_timer.seconds();

    // --- Stage 3: integration repair, scoped to the moved chains. ---
    if (cancel && cancel->cancelled()) {
        result.cancelled = true;
        return true;
    }
    stage_timer.reset();
    if (params_.integration && !movable_res.empty()) {
        IntegrationLegalizer integrator(params_.integrationParams);
        result.integration = integrator.run(netlist, grid, &movable_res);
    }
    result.integrationSeconds = stage_timer.seconds();
    return true;
}

LegalizeResult
Legalizer::legalizeScoped(Netlist &netlist, const std::vector<int> &movable,
                          const CancelToken *cancel) const
{
    // Closure: a resonator with any movable segment moves as a whole,
    // so the scoped Tetris scan re-drops complete chains.
    std::vector<char> is_movable(netlist.numInstances(), 0);
    for (int id : movable)
        if (id >= 0 && id < netlist.numInstances())
            is_movable[id] = 1;
    for (const Resonator &res : netlist.resonators()) {
        bool any = false;
        for (int seg : res.segments)
            any = any || (is_movable[seg] != 0);
        if (any)
            for (int seg : res.segments)
                is_movable[seg] = 1;
    }

    std::vector<Vec2> snapshot(netlist.numInstances());
    for (int i = 0; i < netlist.numInstances(); ++i)
        snapshot[i] = netlist.instance(i).pos;
    const Rect original_region = netlist.region();

    LegalizeResult result;
    for (int attempt_idx = 0; attempt_idx < 4; ++attempt_idx) {
        if (cancel && cancel->cancelled()) {
            result.cancelled = true;
            return result;
        }
        if (attempt_idx > 0) {
            const double grow =
                1.0 + 0.08 * static_cast<double>(attempt_idx);
            Rect region = original_region;
            region.hi.x = region.lo.x + original_region.width() * grow;
            region.hi.y = region.lo.y + original_region.height() * grow;
            netlist.setRegion(region);
            // Fixed instances keep their legal sites; only the movable
            // set restarts from the warm-placement input.
            for (int i = 0; i < netlist.numInstances(); ++i)
                if (is_movable[i])
                    netlist.instance(i).pos = snapshot[i];
            warn(str("Legalizer: scoped retry with region grown ",
                     (grow - 1.0) * 100.0, "%"));
        }
        if (attemptScoped(netlist, is_movable, result, cancel)) {
            if (result.cancelled)
                return result;
            result.legal = isLegal(netlist);
            if (!result.legal)
                warn("Legalizer: scoped layout has residual overlaps");
            return result;
        }
    }
    fatal("Legalizer: scoped legalization failed even after region "
          "expansion");
}

LegalizeResult
Legalizer::legalize(Netlist &netlist, const CancelToken *cancel) const
{
    // Snapshot the global-placement solution so retries with a larger
    // region restart from the same input.
    std::vector<Vec2> snapshot(netlist.numInstances());
    for (int i = 0; i < netlist.numInstances(); ++i)
        snapshot[i] = netlist.instance(i).pos;
    const Rect original_region = netlist.region();

    LegalizeResult result;
    for (int attempt_idx = 0; attempt_idx < 4; ++attempt_idx) {
        if (cancel && cancel->cancelled()) {
            result.cancelled = true;
            return result;
        }
        if (attempt_idx > 0) {
            // The region was too fragmented: grow it by 8% per retry
            // (A_mer is measured from the final bounding box, so slack
            // here does not inflate the reported area).
            const double grow =
                1.0 + 0.08 * static_cast<double>(attempt_idx);
            Rect region = original_region;
            region.hi.x =
                region.lo.x + original_region.width() * grow;
            region.hi.y =
                region.lo.y + original_region.height() * grow;
            netlist.setRegion(region);
            for (int i = 0; i < netlist.numInstances(); ++i)
                netlist.instance(i).pos = snapshot[i];
            warn(str("Legalizer: retrying with region grown ",
                     (grow - 1.0) * 100.0, "%"));
        }
        if (attempt(netlist, result, cancel)) {
            if (result.cancelled)
                return result;
            result.legal = isLegal(netlist);
            if (!result.legal)
                warn("Legalizer: layout has residual overlaps");
            return result;
        }
    }
    fatal("Legalizer: could not legalize even after region expansion");
}

bool
Legalizer::isLegal(const Netlist &netlist, double tol_um)
{
    const auto &instances = netlist.instances();
    const Rect region = netlist.region().inflated(tol_um);

    double max_extent = 0.0;
    for (const Instance &inst : instances) {
        max_extent = std::max(
            {max_extent, inst.paddedWidth(), inst.paddedHeight()});
    }
    SpatialHash hash(netlist.region(), std::max(max_extent, 1.0));
    for (const Instance &inst : instances) {
        if (!region.containsRect(inst.paddedRect()))
            return false;
        hash.insert(inst.id, inst.pos);
    }
    for (const Instance &inst : instances) {
        const Rect mine = inst.paddedRect();
        for (std::int32_t other :
             hash.query(inst.pos, max_extent + tol_um)) {
            if (other <= inst.id)
                continue;
            const Rect theirs = instances[other].paddedRect();
            const Rect overlap = mine.intersect(theirs);
            if (!overlap.empty() && overlap.width() > tol_um &&
                overlap.height() > tol_um) {
                return false;
            }
        }
    }
    return true;
}

} // namespace qplacer
