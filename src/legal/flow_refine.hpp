/**
 * @file
 * Min-cost-flow refinement of the qubit legalization ([88] in the
 * paper): all legalized qubit sites are pooled and qubits are
 * re-assigned to sites so the total displacement from their global-
 * placement positions is minimized. Qubits share one footprint, so any
 * permutation of sites stays legal.
 */

#ifndef QPLACER_LEGAL_FLOW_REFINE_HPP
#define QPLACER_LEGAL_FLOW_REFINE_HPP

#include <vector>

#include "geometry/vec2.hpp"

namespace qplacer {

/**
 * Optimal assignment of @p desired positions to @p sites (equal sizes)
 * minimizing total Manhattan displacement.
 *
 * @return site index per item.
 */
std::vector<int> refineAssignment(const std::vector<Vec2> &desired,
                                  const std::vector<Vec2> &sites);

} // namespace qplacer

#endif // QPLACER_LEGAL_FLOW_REFINE_HPP
