/**
 * @file
 * Min-cost-flow refinement of the qubit legalization ([88] in the
 * paper): all legalized qubit sites are pooled and qubits are
 * re-assigned to sites so the total displacement from their global-
 * placement positions is minimized. Qubits share one footprint, so any
 * permutation of sites stays legal.
 *
 * Scale: the exact formulation is dense (every qubit x every site,
 * n^2 arcs), which dominates legalization wall-time past a few hundred
 * qubits. Above FlowRefineOptions::sparseThreshold the candidate arcs
 * are restricted to each qubit's own spiral site plus its k nearest
 * pooled sites (SpatialHash::kNearest); the own-site arc guarantees a
 * perfect matching always exists, so the sparse solve never fails --
 * it is simply allowed to return a (near-optimal) assignment instead
 * of the exact optimum.
 */

#ifndef QPLACER_LEGAL_FLOW_REFINE_HPP
#define QPLACER_LEGAL_FLOW_REFINE_HPP

#include <vector>

#include "geometry/vec2.hpp"

namespace qplacer {

/** Scaling knobs of refineAssignment (see LegalizerParams). */
struct FlowRefineOptions
{
    /**
     * Problem size above which candidate arcs go sparse; sizes at or
     * below it solve the exact dense assignment. 0 = always sparse.
     */
    int sparseThreshold = 512;

    /** Nearest candidate sites per qubit on the sparse path. */
    int neighbors = 16;
};

/**
 * Optimal assignment of @p desired positions to @p sites (equal sizes)
 * minimizing total Manhattan displacement -- the exact dense
 * formulation.
 *
 * @return site index per item.
 */
std::vector<int> refineAssignment(const std::vector<Vec2> &desired,
                                  const std::vector<Vec2> &sites);

/**
 * Like the two-argument overload, but switches to sparse k-nearest
 * candidate arcs above @p options.sparseThreshold (exact dense below).
 * Item i's own site (index i) is always a candidate, so the flow
 * saturates for any input.
 */
std::vector<int> refineAssignment(const std::vector<Vec2> &desired,
                                  const std::vector<Vec2> &sites,
                                  const FlowRefineOptions &options);

} // namespace qplacer

#endif // QPLACER_LEGAL_FLOW_REFINE_HPP
