/**
 * @file
 * Full legalization pipeline (Fig. 7d):
 *   1. qubits: greedy spiral search, then min-cost-flow refinement;
 *   2. resonator segments: Tetris-style scan;
 *   3. integration-aware repair (Algorithm 1).
 */

#ifndef QPLACER_LEGAL_LEGALIZER_HPP
#define QPLACER_LEGAL_LEGALIZER_HPP

#include "legal/integration.hpp"
#include "legal/occupancy.hpp"
#include "netlist/netlist.hpp"
#include "util/cancel.hpp"

namespace qplacer {

/** Legalizer configuration. */
struct LegalizerParams
{
    /** Occupancy cell size; must divide all padded footprints. */
    double cellUm = 100.0;

    /** Run the min-cost-flow refinement after spiral legalization. */
    bool flowRefine = true;

    /** Run the integration-aware repair pass. */
    bool integration = true;

    /** Parameters forwarded to the integration legalizer. */
    IntegrationParams integrationParams;
};

/** Legalization outcome. */
struct LegalizeResult
{
    double qubitDisplacementUm = 0.0;
    double segmentDisplacementUm = 0.0;
    IntegrationLegalizer::Result integration;
    bool legal = false;     ///< No padded-footprint overlaps at exit.
    bool cancelled = false; ///< Stopped early by a CancelToken.
};

/** End-to-end legalizer. */
class Legalizer
{
  public:
    explicit Legalizer(LegalizerParams params = {});

    /**
     * Legalize @p netlist in place. If the region is too fragmented to
     * fit everything, it is grown by 8% steps (up to 3 retries) before
     * giving up with fatal(). @p cancel (optional) is polled at pass
     * boundaries; on cancellation the partially legalized layout is
     * left in place and the result carries cancelled = true.
     */
    LegalizeResult legalize(Netlist &netlist,
                            const CancelToken *cancel = nullptr) const;

    /**
     * Verify no two padded footprints overlap (with small tolerance)
     * and all instances are in-region.
     */
    static bool isLegal(const Netlist &netlist, double tol_um = 1.0);

  private:
    /** One legalization pass; false if the region ran out of room. */
    bool attempt(Netlist &netlist, LegalizeResult &result,
                 const CancelToken *cancel) const;

    LegalizerParams params_;
};

} // namespace qplacer

#endif // QPLACER_LEGAL_LEGALIZER_HPP
