/**
 * @file
 * Full legalization pipeline (Fig. 7d):
 *   1. qubits: greedy spiral search, then min-cost-flow refinement;
 *   2. resonator segments: Tetris-style scan;
 *   3. integration-aware repair (Algorithm 1).
 */

#ifndef QPLACER_LEGAL_LEGALIZER_HPP
#define QPLACER_LEGAL_LEGALIZER_HPP

#include "legal/integration.hpp"
#include "legal/occupancy.hpp"
#include "netlist/netlist.hpp"
#include "util/cancel.hpp"

namespace qplacer {

/** Legalizer configuration. */
struct LegalizerParams
{
    /** Occupancy cell size; must divide all padded footprints. */
    double cellUm = 100.0;

    /** Run the min-cost-flow refinement after spiral legalization. */
    bool flowRefine = true;

    /**
     * Qubit count above which the flow refinement switches from the
     * exact dense assignment (every qubit x every site) to sparse
     * candidate edges (own site + k nearest via a spatial hash). The
     * default keeps every paper device -- and the golden regression
     * instances -- on the exact path; 1000+ qubit parametric devices
     * go sparse. Validated in FlowParams::normalized().
     */
    int flowSparseThreshold = 512;

    /** Candidate sites per qubit on the sparse flow path. */
    int flowSparseNeighbors = 16;

    /**
     * Occupancy probe implementation (spiral + canPlace). Reference is
     * the pre-bitset per-cell scan, kept for the equivalence suite and
     * the legalize_scale speedup gate; results are bitwise-identical.
     */
    ProbeEngine probeEngine = ProbeEngine::Fast;

    /** Run the integration-aware repair pass. */
    bool integration = true;

    /** Parameters forwarded to the integration legalizer. */
    IntegrationParams integrationParams;
};

/** Legalization outcome. */
struct LegalizeResult
{
    double qubitDisplacementUm = 0.0;
    double segmentDisplacementUm = 0.0;
    IntegrationLegalizer::Result integration;
    bool legal = false;     ///< No padded-footprint overlaps at exit.
    bool cancelled = false; ///< Stopped early by a CancelToken.

    // Sub-stage wall clocks of the final legalization attempt (the
    // one whose layout survived), surfaced through FlowResult and the
    // CLI's --report json for profiling 1000+ qubit instances.
    double spiralSeconds = 0.0;      ///< Qubit spiral search.
    double flowRefineSeconds = 0.0;  ///< Min-cost-flow refinement.
    double tetrisSeconds = 0.0;      ///< Segment Tetris scan.
    double integrationSeconds = 0.0; ///< Integration-aware repair.
};

/** End-to-end legalizer. */
class Legalizer
{
  public:
    explicit Legalizer(LegalizerParams params = {});

    /**
     * Legalize @p netlist in place. If the region is too fragmented to
     * fit everything, it is grown by 8% steps (up to 3 retries) before
     * giving up with fatal(). @p cancel (optional) is polled at pass
     * boundaries; on cancellation the partially legalized layout is
     * left in place and the result carries cancelled = true.
     */
    LegalizeResult legalize(Netlist &netlist,
                            const CancelToken *cancel = nullptr) const;

    /**
     * Region-scoped legalization for incremental re-place: only the
     * instances in @p movable (plus closure) may move; every other
     * instance is treated as a fixed obstacle at its current -- already
     * legal -- position. The closure rules keep the invariants of the
     * full pass: any resonator with a movable segment becomes fully
     * movable (chains stay contiguous), and a fixed instance whose
     * footprint conflicts (stale prior site overlapping another fixed
     * instance) is demoted to movable rather than corrupting the grid.
     * Retries with region growth like legalize(), restoring only the
     * movable instances between attempts.
     */
    LegalizeResult legalizeScoped(Netlist &netlist,
                                  const std::vector<int> &movable,
                                  const CancelToken *cancel = nullptr) const;

    /**
     * Verify no two padded footprints overlap (with small tolerance)
     * and all instances are in-region.
     */
    static bool isLegal(const Netlist &netlist, double tol_um = 1.0);

  private:
    /** One legalization pass; false if the region ran out of room. */
    bool attempt(Netlist &netlist, LegalizeResult &result,
                 const CancelToken *cancel) const;

    /** One scoped pass over @p is_movable (per-instance flags). */
    bool attemptScoped(Netlist &netlist, const std::vector<char> &is_movable,
                       LegalizeResult &result,
                       const CancelToken *cancel) const;

    LegalizerParams params_;
};

} // namespace qplacer

#endif // QPLACER_LEGAL_LEGALIZER_HPP
