/**
 * @file
 * SVG rendering of placed layouts (the Fig. 14 artifact; see DESIGN.md
 * for the GDS -> SVG substitution). Components are colour-coded by
 * frequency and resonator meanders are drawn through their segment
 * chains.
 */

#ifndef QPLACER_IO_SVG_HPP
#define QPLACER_IO_SVG_HPP

#include <string>

#include "netlist/netlist.hpp"

namespace qplacer {

/** SVG renderer options. */
struct SvgOptions
{
    double scale = 0.05;     ///< Pixels per um.
    bool drawPadding = true; ///< Outline padded footprints.
    bool drawMeander = true; ///< Route the resonator wire via segments.
    bool drawLabels = true;  ///< Qubit indices.
};

/** Write the layout of @p netlist to @p path as an SVG document. */
void writeLayoutSvg(const Netlist &netlist, const std::string &path,
                    SvgOptions options = {});

/** Return the SVG document as a string (for tests). */
std::string layoutSvg(const Netlist &netlist, SvgOptions options = {});

} // namespace qplacer

#endif // QPLACER_IO_SVG_HPP
