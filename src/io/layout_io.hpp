/**
 * @file
 * Plain-text layout serialization: save/restore instance positions so
 * expensive placements can be cached and diffed.
 */

#ifndef QPLACER_IO_LAYOUT_IO_HPP
#define QPLACER_IO_LAYOUT_IO_HPP

#include <string>

#include "netlist/netlist.hpp"

namespace qplacer {

/**
 * Write "id kind x y freq" lines (one per instance) plus a region
 * header.
 */
void saveLayout(const Netlist &netlist, const std::string &path);

/**
 * Load positions from @p path into @p netlist. The netlist must have
 * been built identically (same instance count/order); fatal() otherwise.
 */
void loadLayout(Netlist &netlist, const std::string &path);

} // namespace qplacer

#endif // QPLACER_IO_LAYOUT_IO_HPP
