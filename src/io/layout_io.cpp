#include "io/layout_io.hpp"

#include <fstream>
#include <sstream>

#include "util/logging.hpp"

namespace qplacer {

void
saveLayout(const Netlist &netlist, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatal("saveLayout: cannot open '" + path + "'");
    const Rect &r = netlist.region();
    out << "region " << r.lo.x << " " << r.lo.y << " " << r.hi.x << " "
        << r.hi.y << "\n";
    out << "instances " << netlist.numInstances() << "\n";
    out.precision(12);
    for (const Instance &inst : netlist.instances()) {
        out << inst.id << " "
            << (inst.kind == InstanceKind::Qubit ? "q" : "s") << " "
            << inst.pos.x << " " << inst.pos.y << " " << inst.freqHz
            << "\n";
    }
}

void
loadLayout(Netlist &netlist, const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("loadLayout: cannot open '" + path + "'");

    std::string tag;
    Rect region;
    if (!(in >> tag >> region.lo.x >> region.lo.y >> region.hi.x >>
          region.hi.y) ||
        tag != "region") {
        fatal("loadLayout: malformed region header");
    }
    int count = 0;
    if (!(in >> tag >> count) || tag != "instances")
        fatal("loadLayout: malformed instance header");
    if (count != netlist.numInstances())
        fatal(str("loadLayout: file has ", count, " instances, netlist ",
                  netlist.numInstances()));

    netlist.setRegion(region);
    for (int i = 0; i < count; ++i) {
        int id;
        std::string kind;
        double x, y, freq;
        if (!(in >> id >> kind >> x >> y >> freq))
            fatal(str("loadLayout: truncated at instance ", i));
        if (id != i)
            fatal("loadLayout: instance ids out of order");
        Instance &inst = netlist.instance(id);
        const bool is_qubit = kind == "q";
        if (is_qubit != (inst.kind == InstanceKind::Qubit))
            fatal(str("loadLayout: kind mismatch at instance ", i));
        inst.pos = Vec2(x, y);
    }
}

} // namespace qplacer
