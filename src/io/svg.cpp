#include "io/svg.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "multidie/die_plan.hpp"
#include "util/logging.hpp"

namespace qplacer {

namespace {

/** Stable per-die tint (rotating hue, light so freq colours read). */
std::string
dieTint(int die)
{
    std::ostringstream oss;
    oss << "hsl(" << (die * 67) % 360 << ",45%,90%)";
    return oss.str();
}

/** Map a frequency to a stable colour (hue from position in band). */
std::string
freqColor(double freq_hz, double lo_hz, double hi_hz)
{
    const double t =
        std::clamp((freq_hz - lo_hz) / std::max(hi_hz - lo_hz, 1.0), 0.0,
                   1.0);
    const int hue = static_cast<int>(t * 300.0); // red .. magenta
    std::ostringstream oss;
    oss << "hsl(" << hue << ",70%,55%)";
    return oss.str();
}

} // namespace

std::string
layoutSvg(const Netlist &netlist, SvgOptions options)
{
    const Rect &region = netlist.region();
    const double s = options.scale;
    const double w = region.width() * s;
    const double h = region.height() * s;

    // Frequency extremes per kind, for colour scaling.
    double qlo = 1e18, qhi = 0, rlo = 1e18, rhi = 0;
    for (const Instance &inst : netlist.instances()) {
        if (inst.kind == InstanceKind::Qubit) {
            qlo = std::min(qlo, inst.freqHz);
            qhi = std::max(qhi, inst.freqHz);
        } else {
            rlo = std::min(rlo, inst.freqHz);
            rhi = std::max(rhi, inst.freqHz);
        }
    }

    auto px = [&](double x) { return (x - region.lo.x) * s; };
    auto py = [&](double y) { return h - (y - region.lo.y) * s; };

    std::ostringstream svg;
    svg << "<svg xmlns='http://www.w3.org/2000/svg' width='" << w
        << "' height='" << h << "' viewBox='0 0 " << w << " " << h
        << "'>\n";
    svg << "<rect x='0' y='0' width='" << w << "' height='" << h
        << "' fill='#fafafa' stroke='#333'/>\n";

    // Multi-die: tint each die region, outline it, and mark the cut
    // lines so crossing couplers are visible at a glance.
    DiePlan plan;
    const bool multi = netlist.dieSpec().active();
    if (multi) {
        plan = DiePlan::resolve(netlist.dieSpec(), region);
        for (std::size_t d = 0; d < plan.dies.size(); ++d) {
            const Rect &die = plan.dies[d];
            svg << "<rect x='" << px(die.lo.x) << "' y='" << py(die.hi.y)
                << "' width='" << die.width() * s << "' height='"
                << die.height() * s << "' fill='"
                << dieTint(static_cast<int>(d))
                << "' stroke='#666' stroke-dasharray='6,3'/>\n";
        }
        for (const CutLine &cut : plan.cuts) {
            if (cut.vertical) {
                svg << "<line x1='" << px(cut.coordUm) << "' y1='0' x2='"
                    << px(cut.coordUm) << "' y2='" << h
                    << "' stroke='#c22' stroke-width='1.5' "
                       "stroke-dasharray='8,4'/>\n";
            } else {
                svg << "<line x1='0' y1='" << py(cut.coordUm) << "' x2='"
                    << w << "' y2='" << py(cut.coordUm)
                    << "' stroke='#c22' stroke-width='1.5' "
                       "stroke-dasharray='8,4'/>\n";
            }
        }
    }

    for (const Instance &inst : netlist.instances()) {
        const Rect r = inst.rect();
        const bool qubit = inst.kind == InstanceKind::Qubit;
        const std::string color =
            qubit ? freqColor(inst.freqHz, qlo, qhi)
                  : freqColor(inst.freqHz, rlo, rhi);
        const std::string stroke =
            multi ? "hsl(" +
                        std::to_string((plan.dieAt(inst.pos) * 67) % 360) +
                        ",60%,35%)"
                  : std::string("#333");
        if (options.drawPadding) {
            const Rect p = inst.paddedRect();
            svg << "<rect x='" << px(p.lo.x) << "' y='" << py(p.hi.y)
                << "' width='" << p.width() * s << "' height='"
                << p.height() * s
                << "' fill='none' stroke='#bbb' stroke-dasharray='2,2'/>"
                << "\n";
        }
        svg << "<rect x='" << px(r.lo.x) << "' y='" << py(r.hi.y)
            << "' width='" << r.width() * s << "' height='"
            << r.height() * s << "' fill='" << color << "' fill-opacity='"
            << (qubit ? 0.9 : 0.55) << "' stroke='" << stroke
            << "' stroke-width='" << (qubit ? 1.0 : 0.5) << "'/>\n";
        if (qubit && options.drawLabels) {
            svg << "<text x='" << px(inst.pos.x) << "' y='"
                << py(inst.pos.y) << "' font-size='"
                << inst.width * s * 0.5
                << "' text-anchor='middle' dominant-baseline='middle'>"
                << inst.qubit << "</text>\n";
        }
    }

    if (options.drawMeander) {
        for (const Resonator &res : netlist.resonators()) {
            svg << "<polyline fill='none' stroke='#222' "
                   "stroke-width='1' points='";
            const Vec2 a = netlist.instance(res.qubitA).pos;
            svg << px(a.x) << "," << py(a.y) << " ";
            for (int seg : res.segments) {
                const Vec2 p = netlist.instance(seg).pos;
                svg << px(p.x) << "," << py(p.y) << " ";
            }
            const Vec2 b = netlist.instance(res.qubitB).pos;
            svg << px(b.x) << "," << py(b.y);
            svg << "'/>\n";
        }
    }

    svg << "</svg>\n";
    return svg.str();
}

void
writeLayoutSvg(const Netlist &netlist, const std::string &path,
               SvgOptions options)
{
    std::ofstream out(path);
    if (!out)
        fatal("writeLayoutSvg: cannot open '" + path + "'");
    out << layoutSvg(netlist, options);
}

} // namespace qplacer
