/**
 * @file
 * Physical meander routing (Fig. 8-e): after legalization, the actual
 * resonator wire is re-routed through its reserved segment blocks as a
 * serpentine at d_r pitch. Each l_b x l_b block holds
 * l_b^2 / wire_width of wire length, so the block count from the
 * partitioning step guarantees the full half-wave length fits.
 */

#ifndef QPLACER_IO_MEANDER_HPP
#define QPLACER_IO_MEANDER_HPP

#include <vector>

#include "geometry/vec2.hpp"
#include "netlist/netlist.hpp"

namespace qplacer {

/** A routed resonator wire. */
struct MeanderPath
{
    std::vector<Vec2> points; ///< Polyline vertices (um).
    double lengthUm = 0.0;    ///< Total polyline length.
    double targetUm = 0.0;    ///< The resonator's required wire length.

    /**
     * Routing succeeded: the serpentine provides at least the target
     * length (the wire is then trimmed/tuned within the last block).
     */
    bool fits() const { return lengthUm >= targetUm; }
};

/**
 * Route resonator @p resonator_id of @p netlist: serpentine passes at
 * @p pitch_um inside each segment block (in chain order), joined by
 * straight jumpers, ending at the two endpoint qubits.
 */
MeanderPath routeMeander(const Netlist &netlist, int resonator_id,
                         double pitch_um = 100.0);

/** Polyline length helper. */
double pathLength(const std::vector<Vec2> &points);

} // namespace qplacer

#endif // QPLACER_IO_MEANDER_HPP
