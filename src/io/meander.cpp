#include "io/meander.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace qplacer {

double
pathLength(const std::vector<Vec2> &points)
{
    double acc = 0.0;
    for (std::size_t i = 1; i < points.size(); ++i)
        acc += points[i].dist(points[i - 1]);
    return acc;
}

MeanderPath
routeMeander(const Netlist &netlist, int resonator_id, double pitch_um)
{
    if (pitch_um <= 0.0)
        fatal("routeMeander: non-positive pitch");
    const Resonator &res = netlist.resonator(resonator_id);

    MeanderPath path;
    path.targetUm = res.lengthUm;
    path.points.push_back(netlist.instance(res.qubitA).pos);

    for (int seg_id : res.segments) {
        const Instance &seg = netlist.instance(seg_id);
        const Rect block = seg.rect();

        // Serpentine: horizontal passes bottom-to-top at d_r pitch.
        // Enter on the side closest to the previous point so the
        // jumper stays short.
        const int passes = std::max(
            1, static_cast<int>(std::floor(block.height() / pitch_um)));
        const double dy =
            passes > 1 ? block.height() / (passes - 1 + 1) : 0.0;
        const bool enter_left =
            path.points.back().x <= block.center().x;

        for (int p = 0; p < passes; ++p) {
            const double y = block.lo.y + pitch_um / 2.0 + p * dy;
            const bool left_first = enter_left == (p % 2 == 0);
            const Vec2 a(left_first ? block.lo.x : block.hi.x, y);
            const Vec2 b(left_first ? block.hi.x : block.lo.x, y);
            path.points.push_back(a);
            path.points.push_back(b);
        }
    }

    path.points.push_back(netlist.instance(res.qubitB).pos);
    path.lengthUm = pathLength(path.points);
    return path;
}

} // namespace qplacer
