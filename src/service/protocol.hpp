/**
 * @file
 * The qplacer.serve/1 wire protocol: newline-delimited JSON requests
 * (submit / cancel / ping / shutdown) and responses (hello / ack /
 * progress / result / error / pong / bye). docs/PROTOCOL.md is the
 * field-by-field reference; this header is its implementation.
 *
 * Parsing is strict: unknown request types, missing ids, unknown
 * "set" keys, and malformed values are errors carried back to the
 * client -- a daemon fed garbage must answer, not die.
 */

#ifndef QPLACER_SERVICE_PROTOCOL_HPP
#define QPLACER_SERVICE_PROTOCOL_HPP

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "pipeline/flow.hpp"
#include "service/json.hpp"
#include "util/config.hpp"

namespace qplacer {

/** Protocol schema identifier, bumped on breaking changes. */
inline constexpr const char *kServeSchema = "qplacer.serve/1";

/** One placement job as requested over the wire. */
struct SubmitRequest
{
    std::string id;            ///< Client-chosen job id (echoed back).
    std::string topology;      ///< Device spec (name or parametric).
    PlacerMode mode = PlacerMode::Qplacer;
    std::uint64_t seed = 1;
    double segmentUm = 300.0;  ///< Resonator segment length.
    Config set;                ///< --set style knob overrides.

    /**
     * Progress streaming: -1 = none (default), 0 = stage events only,
     * N > 0 = stage events plus every Nth placement iteration.
     */
    int progressEvery = -1;

    /**
     * Job deadline in milliseconds of *execution* time (the clock
     * starts when a worker picks the job up, not while it queues).
     * 0 = no per-job deadline; the server's --default-deadline-ms
     * applies instead, when set. On expiry the server cancels the job
     * and its result reports status "deadline_exceeded".
     */
    double deadlineMs = 0.0;

    /** Include the placed instance positions in the result. */
    bool wantLayout = false;

    /** Incremental re-place: warm-start from this prior job's result. */
    std::string baseId;

    /** Delta for incremental runs: qubits whose neighbourhood changed. */
    std::vector<int> dirtyQubits;

    /**
     * Delta for incremental runs: couplers whose wiring changed, as
     * [qubit_a, qubit_b] endpoint pairs. The server folds both
     * endpoints into the dirty-qubit closure.
     */
    std::vector<std::pair<int, int>> dirtyCouplers;

    /**
     * Multi-start portfolio (the optional "portfolio" submit object):
     * candidate count, first pruning checkpoint, and keep fraction.
     * seeds <= 1 is the plain single-seed flow; pruneAt/keepFrac of
     * 0 keep the server defaults. Mutually exclusive with "base".
     */
    int portfolioSeeds = 1;
    int portfolioPruneAt = 0;
    double portfolioKeepFrac = 0.0;

    bool isIncremental() const { return !baseId.empty(); }
    bool isPortfolio() const { return portfolioSeeds > 1; }
};

/** Any parsed request. */
struct Request
{
    enum class Type { Submit, Cancel, Ping, Shutdown, Failpoint };

    Type type = Type::Ping;
    std::string id;       ///< Job id (submit / cancel).
    SubmitRequest submit; ///< Valid when type == Submit.

    /**
     * Fault-injection request (type == Failpoint): arm @p
     * failpointSite with @p failpointSpec ("off" | "error" | "crash" |
     * "delay(N)"). Honored only when the server runs with
     * --enable-failpoints; rejected with code "failpoints_disabled"
     * otherwise.
     */
    std::string failpointSite;
    std::string failpointSpec;
};

/**
 * Parse one request line. On failure returns false with a message in
 * @p error; when the line carried a recognizable job id it is left in
 * @p out.id so the error response can name the job.
 */
bool parseRequest(const std::string &line, Request &out, std::string *error);

/** {"type":"hello",...} greeting emitted once per connection. */
JsonValue makeHello(int workers);

/** {"type":"ack"} -- request accepted and queued. */
JsonValue makeAck(const std::string &id);

/** {"type":"error"} -- request rejected or job failed to start. */
JsonValue makeError(const std::string &id, const std::string &message);

/**
 * {"type":"error","code":...} -- a machine-readable error class on
 * top of makeError. Codes in use: "overloaded" (queue full),
 * "shutting_down" (submit after shutdown was accepted),
 * "line_too_long" (request exceeded --max-line-bytes),
 * "failpoints_disabled" (failpoint request without
 * --enable-failpoints), "injected" (a failpoint Error action fired).
 * See docs/PROTOCOL.md's error-code table.
 */
JsonValue makeErrorCode(const std::string &id, const std::string &code,
                        const std::string &message);

/**
 * The "overloaded" rejection for a bounded queue: a makeErrorCode
 * carrying "queue_depth" (jobs waiting) and "retry_after_ms" (an
 * EWMA-of-service-time estimate of when capacity frees up) so clients
 * can back off intelligently.
 */
JsonValue makeOverloaded(const std::string &id, int queue_depth,
                         double retry_after_ms);

/** {"type":"pong"} -- liveness answer. */
JsonValue makePong();

/**
 * {"type":"pong","queue_depth":...,"active_jobs":...} -- liveness
 * plus load: jobs waiting in the queue and jobs currently running,
 * so clients can back off before submitting into an overload.
 */
JsonValue makePong(int queue_depth, int active_jobs);

/** {"type":"bye"} -- shutdown complete after draining @p jobs jobs. */
JsonValue makeBye(int jobs);

/** {"type":"progress","event":"stage_begin"} */
JsonValue makeStageBegin(const std::string &id, const std::string &stage);

/** {"type":"progress","event":"stage_end"} */
JsonValue makeStageEnd(const std::string &id, const std::string &stage,
                       double seconds);

/**
 * {"type":"progress","event":"iteration"}. @p hpwl is the exact HPWL
 * of the evaluated iterate (PlaceProgress::hpwl), an additive field of
 * the progress event.
 */
JsonValue makeIteration(const std::string &id, int iteration,
                        double overflow, double hpwl);

/**
 * {"type":"result"}: the job outcome. @p report is the
 * qplacer.flow_report/1-shaped job object (jobReportJson); a layout
 * array is attached when the request asked for one.
 */
JsonValue makeResult(const std::string &id, JsonValue report);

/**
 * One job object in the qplacer.flow_report/1 shape the CLI's
 * --report json emits (docs/REPORT_SCHEMA.md), plus the additive
 * "incremental" member for warm-started runs, the additive "detailed"
 * member when the annealing stage ran, and the additive "portfolio"
 * member for portfolio runs. The CLI-only fidelity proxy is reported
 * as null.
 */
JsonValue jobReportJson(const FlowResult &result, std::uint64_t seed);

/**
 * Placed instance positions as [[id, kind, x, y], ...]. Coordinates
 * serialize with exact round-trip literals, so a client can compare
 * layouts bitwise across runs.
 */
JsonValue layoutJson(const Netlist &netlist);

} // namespace qplacer

#endif
