/**
 * @file
 * Minimal JSON value, parser, and writer for the server wire
 * protocol (docs/PROTOCOL.md). Self-contained on purpose: the
 * container ships no JSON dependency, and the subset here (UTF-8
 * strings with \uXXXX escapes, IEEE doubles that round-trip through
 * the original literal, order-preserving objects) is exactly what
 * newline-delimited protocol framing needs.
 *
 * Numbers keep their source literal alongside the parsed double so a
 * value can be re-emitted byte-for-byte (seeds near 2^63, %.17g
 * layout coordinates) instead of through a lossy double round-trip.
 */

#ifndef QPLACER_SERVICE_JSON_HPP
#define QPLACER_SERVICE_JSON_HPP

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace qplacer {

/** One parsed JSON value; a tree of these represents a document. */
class JsonValue
{
public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    /** Key/value member of an object, in source order. */
    using Member = std::pair<std::string, JsonValue>;

    JsonValue() = default;

    static JsonValue null();
    static JsonValue boolean(bool v);
    /** Finite doubles only: NaN/inf collapse to null (valid JSON). */
    static JsonValue number(double v);
    /** Integer helper: emits a plain integer literal, no exponent. */
    static JsonValue number(std::int64_t v);
    /** Number from a preformatted literal (kept verbatim on output). */
    static JsonValue numberLiteral(std::string literal);
    static JsonValue string(std::string v);
    static JsonValue array();
    static JsonValue object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Value accessors; panic (logic_error) on kind mismatch. */
    bool asBool() const;
    double asDouble() const;
    /** Integer view of a Number; panics if not integral / in range. */
    std::int64_t asInt() const;
    const std::string &asString() const;
    /** Source literal of a Number (e.g. "1e-3", "42"). */
    const std::string &numberText() const;

    /** Array items (panics unless array). */
    const std::vector<JsonValue> &items() const;
    std::vector<JsonValue> &items();
    void push(JsonValue v);

    /** Object members in insertion order (panics unless object). */
    const std::vector<Member> &members() const;
    /** Adds or replaces a member (panics unless object). */
    void set(const std::string &key, JsonValue v);
    /** Member lookup; nullptr when absent (panics unless object). */
    const JsonValue *find(const std::string &key) const;

    /** Compact single-line serialization (no trailing newline). */
    std::string serialize() const;

private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string text_; ///< String payload, or number literal.
    std::vector<JsonValue> items_;
    std::vector<Member> members_;
};

/**
 * Parses one JSON document from @p text (surrounding whitespace
 * allowed, trailing garbage rejected). On failure returns false and
 * describes the problem in @p error.
 */
bool parseJson(const std::string &text, JsonValue &out,
               std::string *error = nullptr);

/** Escapes @p text as the inside of a JSON string (no quotes). */
std::string jsonEscape(const std::string &text);

} // namespace qplacer

#endif
