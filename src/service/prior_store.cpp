/** @file PriorStore implementation; contract in prior_store.hpp. */

#include "service/prior_store.hpp"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <utility>

#include "util/crc32.hpp"
#include "util/failpoint.hpp"
#include "util/logging.hpp"

#ifndef _WIN32
#include <cerrno>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace qplacer {

namespace {

std::string
journalPath(const PriorStoreOptions &options)
{
    return options.stateDir + "/priors.journal";
}

std::string
snapshotPath(const PriorStoreOptions &options)
{
    return options.stateDir + "/priors.snapshot";
}

/** One journal/snapshot line for @p payload, CRC framed, newline'd. */
std::string
framedRecord(const JsonValue &payload)
{
    const std::string text = payload.serialize();
    JsonValue record = JsonValue::object();
    record.set("crc", JsonValue::number(
                          static_cast<std::int64_t>(crc32(text))));
    record.set("put", payload);
    return record.serialize() + "\n";
}

#ifndef _WIN32

/** write() the whole buffer, retrying EINTR and short writes. */
bool
writeAll(int fd, const char *data, std::size_t len)
{
    std::size_t done = 0;
    while (done < len) {
        const ssize_t n = ::write(fd, data + done, len - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        done += static_cast<std::size_t>(n);
    }
    return true;
}

/** fsync the directory itself so a rename within it is durable. */
void
syncDir(const std::string &dir)
{
    const int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
}

#endif // !_WIN32

/**
 * Integer from an untrusted Number: false unless integral and within
 * [lo, hi]. JsonValue::asInt panics on a non-integral literal, which a
 * corrupt journal record must never be able to trigger.
 */
bool
checkedInt(const JsonValue &v, double lo, double hi, long long &out)
{
    if (!v.isNumber())
        return false;
    const double d = v.asDouble();
    if (!(d >= lo && d <= hi) || d != static_cast<double>(
                                          static_cast<long long>(d)))
        return false;
    out = static_cast<long long>(d);
    return true;
}

} // namespace

JsonValue
PriorStore::priorToJson(const std::string &id, const PriorLayout &prior)
{
    JsonValue payload = JsonValue::object();
    payload.set("id", JsonValue::string(id));

    JsonValue region = JsonValue::array();
    region.push(JsonValue::number(prior.region.lo.x));
    region.push(JsonValue::number(prior.region.lo.y));
    region.push(JsonValue::number(prior.region.hi.x));
    region.push(JsonValue::number(prior.region.hi.y));
    payload.set("region", std::move(region));

    payload.set("n", JsonValue::number(
                         static_cast<std::int64_t>(prior.numInstances)));

    JsonValue qubits = JsonValue::array();
    for (const auto &[qubit, site] : prior.qubitSites) {
        JsonValue row = JsonValue::array();
        row.push(JsonValue::number(static_cast<std::int64_t>(qubit)));
        row.push(JsonValue::number(site.pos.x));
        row.push(JsonValue::number(site.pos.y));
        row.push(JsonValue::number(site.freqHz));
        qubits.push(std::move(row));
    }
    payload.set("qubits", std::move(qubits));

    JsonValue segments = JsonValue::array();
    for (const auto &[key, site] : prior.segmentSites) {
        JsonValue row = JsonValue::array();
        row.push(JsonValue::number(
            static_cast<std::int64_t>(std::get<0>(key))));
        row.push(JsonValue::number(
            static_cast<std::int64_t>(std::get<1>(key))));
        row.push(JsonValue::number(
            static_cast<std::int64_t>(std::get<2>(key))));
        row.push(JsonValue::number(site.pos.x));
        row.push(JsonValue::number(site.pos.y));
        row.push(JsonValue::number(site.freqHz));
        segments.push(std::move(row));
    }
    payload.set("segments", std::move(segments));
    return payload;
}

bool
PriorStore::priorFromJson(const JsonValue &payload, std::string &id,
                          PriorLayout &prior, std::string *error)
{
    const auto failRecord = [error](const char *message) {
        if (error != nullptr)
            *error = message;
        return false;
    };
    if (!payload.isObject())
        return failRecord("record payload is not an object");

    const JsonValue *idv = payload.find("id");
    if (!idv || !idv->isString() || idv->asString().empty())
        return failRecord("record has no id");
    id = idv->asString();

    const JsonValue *region = payload.find("region");
    if (!region || !region->isArray() || region->items().size() != 4)
        return failRecord("record has no [x0,y0,x1,y1] region");
    for (const JsonValue &c : region->items())
        if (!c.isNumber())
            return failRecord("region coordinate is not a number");
    prior = PriorLayout{};
    prior.region = Rect(region->items()[0].asDouble(),
                        region->items()[1].asDouble(),
                        region->items()[2].asDouble(),
                        region->items()[3].asDouble());

    long long count = 0;
    const JsonValue *n = payload.find("n");
    if (!n || !checkedInt(*n, 0, 2147483647.0, count))
        return failRecord("record has no instance count");
    prior.numInstances = static_cast<int>(count);

    const JsonValue *qubits = payload.find("qubits");
    if (!qubits || !qubits->isArray())
        return failRecord("record has no qubits array");
    for (const JsonValue &row : qubits->items()) {
        long long qubit = 0;
        if (!row.isArray() || row.items().size() != 4 ||
            !checkedInt(row.items()[0], 0, 2147483647.0, qubit) ||
            !row.items()[1].isNumber() || !row.items()[2].isNumber() ||
            !row.items()[3].isNumber())
            return failRecord("qubit row is not [id,x,y,freq]");
        prior.qubitSites[static_cast<int>(qubit)] =
            PriorSite{Vec2(row.items()[1].asDouble(),
                           row.items()[2].asDouble()),
                      row.items()[3].asDouble()};
    }

    const JsonValue *segments = payload.find("segments");
    if (!segments || !segments->isArray())
        return failRecord("record has no segments array");
    for (const JsonValue &row : segments->items()) {
        long long a = 0;
        long long b = 0;
        long long ord = 0;
        if (!row.isArray() || row.items().size() != 6 ||
            !checkedInt(row.items()[0], 0, 2147483647.0, a) ||
            !checkedInt(row.items()[1], 0, 2147483647.0, b) ||
            !checkedInt(row.items()[2], 0, 2147483647.0, ord) ||
            !row.items()[3].isNumber() || !row.items()[4].isNumber() ||
            !row.items()[5].isNumber())
            return failRecord("segment row is not [a,b,ord,x,y,freq]");
        const PriorLayout::SegmentKey key{static_cast<int>(a),
                                          static_cast<int>(b),
                                          static_cast<int>(ord)};
        prior.segmentSites[key] =
            PriorSite{Vec2(row.items()[3].asDouble(),
                           row.items()[4].asDouble()),
                      row.items()[5].asDouble()};
    }
    return true;
}

PriorStore::PriorStore(PriorStoreOptions options)
    : options_(std::move(options))
{
    if (options_.capacity < 1)
        options_.capacity = 1;
    if (options_.snapshotEvery < 1)
        options_.snapshotEvery = 1;
    if (options_.stateDir.empty())
        return;
#ifndef _WIN32
    std::error_code ec;
    std::filesystem::create_directories(options_.stateDir, ec);
    if (ec) {
        warn(str("prior store: cannot create state dir '",
                 options_.stateDir, "': ", ec.message(),
                 "; persistence disabled"));
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        loadLocked();
    }
    journalFd_ = ::open(journalPath(options_).c_str(),
                        O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (journalFd_ < 0)
        warn(str("prior store: cannot open journal in '", options_.stateDir,
                 "'; persistence disabled"));
#else
    warn("prior store: --state-dir persistence is POSIX-only; "
         "running memory-only");
#endif
}

PriorStore::~PriorStore()
{
#ifndef _WIN32
    if (journalFd_ >= 0)
        ::close(journalFd_);
#endif
}

void
PriorStore::put(const std::string &id,
                std::shared_ptr<const PriorLayout> prior)
{
    std::lock_guard<std::mutex> lock(mu_);
    // Durable before visible: once the caller proceeds (and emits the
    // job's result), the prior must survive a crash.
    const bool appended = appendJournalLocked(id, *prior);
    putLocked(id, std::move(prior));
    // Compact only after the record is in memory: the snapshot replaces
    // the journal wholesale, so it must include what it truncates.
    if (appended && ++appendsSinceSnapshot_ >= options_.snapshotEvery)
        snapshotLocked();
}

std::shared_ptr<const PriorLayout>
PriorStore::get(const std::string &id)
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = priors_.find(id);
    if (it == priors_.end())
        return nullptr;
    // Promote on use (LRU): a hot incremental base must not be evicted
    // by unrelated churn while still actively referenced.
    promoteLocked(id);
    return it->second;
}

int
PriorStore::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int>(priors_.size());
}

std::vector<std::string>
PriorStore::ids() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return {order_.begin(), order_.end()};
}

void
PriorStore::putLocked(const std::string &id,
                      std::shared_ptr<const PriorLayout> prior)
{
    if (priors_.find(id) == priors_.end())
        order_.push_back(id);
    else
        promoteLocked(id); // Re-capture counts as a use.
    priors_[id] = std::move(prior);
    while (static_cast<int>(order_.size()) > options_.capacity) {
        priors_.erase(order_.front());
        order_.pop_front();
    }
}

void
PriorStore::promoteLocked(const std::string &id)
{
    const auto it = std::find(order_.begin(), order_.end(), id);
    if (it != order_.end()) {
        order_.erase(it);
        order_.push_back(id);
    }
}

bool
PriorStore::appendJournalLocked(const std::string &id,
                                const PriorLayout &prior)
{
#ifndef _WIN32
    if (journalFd_ < 0)
        return false;
    const std::string line = framedRecord(priorToJson(id, prior));
    bool ok = writeAll(journalFd_, line.data(), line.size()) &&
              ::fsync(journalFd_) == 0;
    // Site semantics: the crash action fires *after* the record is
    // durable (crash-after-flush), modelling kill -9 right past the
    // append; the error action models a failing disk.
    if (QPLACER_FAILPOINT("prior_store.append"))
        ok = false;
    if (!ok) {
        if (!persistBroken_)
            warn(str("prior store: journal append failed for '", id,
                     "'; serving continues from memory"));
        persistBroken_ = true;
        return false;
    }
    persistBroken_ = false;
    return true;
#else
    (void)id;
    (void)prior;
    return false;
#endif
}

void
PriorStore::snapshotLocked()
{
#ifndef _WIN32
    appendsSinceSnapshot_ = 0;
    const std::string path = snapshotPath(options_);
    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        warn("prior store: cannot write snapshot temp file; "
             "keeping journal");
        return;
    }
    bool ok = true;
    for (const std::string &id : order_) {
        const std::string line =
            framedRecord(priorToJson(id, *priors_.at(id)));
        ok = ok && writeAll(fd, line.data(), line.size());
    }
    ok = ok && ::fsync(fd) == 0;
    ::close(fd);
    // Site semantics: temp file fully written and synced, rename not
    // yet performed -- a crash here must recover from the old
    // snapshot + the still-intact journal.
    if (QPLACER_FAILPOINT("prior_store.snapshot"))
        ok = false;
    if (!ok) {
        ::unlink(tmp.c_str());
        warn("prior store: snapshot write failed; keeping journal");
        return;
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        warn("prior store: snapshot rename failed; keeping journal");
        return;
    }
    syncDir(options_.stateDir);
    // The snapshot now owns every record; start the journal afresh.
    if (journalFd_ >= 0 &&
        ::ftruncate(journalFd_, 0) == 0)
        ::fsync(journalFd_);
#endif
}

long
PriorStore::replayFileLocked(const std::string &path, bool truncate_torn)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return 0;
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    in.close();

    long good = 0; ///< Bytes of the valid record prefix.
    std::size_t pos = 0;
    bool torn = false;
    while (pos < content.size()) {
        const std::size_t eol = content.find('\n', pos);
        if (eol == std::string::npos) {
            torn = true; // Partial line: crash mid-append.
            break;
        }
        const std::string line = content.substr(pos, eol - pos);
        JsonValue record;
        std::string error;
        std::string id;
        auto prior = std::make_shared<PriorLayout>();
        const JsonValue *crc = nullptr;
        const JsonValue *put = nullptr;
        long long crc_value = 0;
        bool ok = parseJson(line, record, &error) && record.isObject() &&
                  (crc = record.find("crc")) != nullptr &&
                  checkedInt(*crc, 0, 4294967295.0, crc_value) &&
                  (put = record.find("put")) != nullptr;
        // The CRC covers the serialized payload; JsonValue preserves
        // number literals, so re-serializing the parsed member
        // reproduces the written bytes exactly.
        ok = ok && crc32(put->serialize()) ==
                       static_cast<std::uint32_t>(crc_value);
        ok = ok && priorFromJson(*put, id, *prior, &error);
        if (!ok) {
            torn = true;
            break;
        }
        putLocked(id, std::move(prior));
        pos = eol + 1;
        good = static_cast<long>(pos);
    }

#ifndef _WIN32
    if (torn && truncate_torn) {
        warn(str("prior store: torn tail in ", path, " at byte ", good,
                 " (of ", content.size(), "); truncating"));
        if (::truncate(path.c_str(), good) != 0)
            warn(str("prior store: truncate(", path, ") failed"));
    }
#else
    (void)truncate_torn;
#endif
    return good;
}

void
PriorStore::loadLocked()
{
    if (QPLACER_FAILPOINT("prior_store.load")) {
        warn("prior store: load failed (injected); starting empty");
        return;
    }
    // Snapshot first (the compacted base), then the journal on top.
    // The snapshot is written via atomic rename so it should never be
    // torn; a corrupt record still just stops the replay early.
    replayFileLocked(snapshotPath(options_), false);
    replayFileLocked(journalPath(options_), true);
    loaded_ = static_cast<int>(priors_.size());
    if (loaded_ > 0)
        inform(str("prior store: recovered ", loaded_, " prior layout",
                   loaded_ == 1 ? "" : "s", " from ", options_.stateDir));
}

} // namespace qplacer
