/** @file PlacementServer implementation; contract in server.hpp. */

#include "service/server.hpp"

#include <algorithm>
#include <utility>

#include "pipeline/overrides.hpp"
#include "topology/factory.hpp"
#include "util/failpoint.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace qplacer {
namespace {

/** EWMA weight of the newest service-time sample. */
constexpr double kEwmaAlpha = 0.2;

/**
 * Streams FlowObserver events for one job as progress responses.
 * progressEvery: -1 = silent, 0 = stage events, N > 0 = stage events
 * plus every Nth placement iteration (see SubmitRequest). The stage /
 * iteration hooks feed the stuck-worker watchdog and fire regardless
 * of the progress level.
 */
class StreamObserver : public FlowObserver
{
  public:
    StreamObserver(std::string id, int progress_every,
                   std::function<void(const JsonValue &)> emit,
                   std::function<void(const std::string &)> on_stage,
                   std::function<void(int)> on_iteration)
        : id_(std::move(id)), progressEvery_(progress_every),
          emit_(std::move(emit)), onStage_(std::move(on_stage)),
          onIteration_(std::move(on_iteration))
    {
    }

    void
    onStageBegin(const FlowContext &, const std::string &stage) override
    {
        if (onStage_)
            onStage_(stage);
        if (progressEvery_ >= 0)
            emit_(makeStageBegin(id_, stage));
    }

    void
    onStageEnd(const FlowContext &, const StageTiming &timing) override
    {
        if (progressEvery_ >= 0)
            emit_(makeStageEnd(id_, timing.stage, timing.seconds));
    }

    void
    onIteration(const FlowContext &, const PlaceProgress &progress) override
    {
        if (onIteration_)
            onIteration_(progress.iteration);
        if (progressEvery_ > 0 && progress.iteration % progressEvery_ == 0)
            emit_(makeIteration(id_, progress.iteration, progress.overflow,
                                progress.hpwl));
    }

  private:
    std::string id_;
    int progressEvery_;
    std::function<void(const JsonValue &)> emit_;
    std::function<void(const std::string &)> onStage_;
    std::function<void(int)> onIteration_;
};

} // namespace

PlacementServer::PlacementServer(ServerOptions options)
    : options_(std::move(options))
{
    PriorStoreOptions store;
    store.capacity = options_.resultCacheCap;
    store.stateDir = options_.stateDir;
    store.snapshotEvery = options_.snapshotEvery;
    priors_ = std::make_unique<PriorStore>(store);

    const int n = ThreadPool::resolveThreadCount(options_.workers);
    workers_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        auto worker = std::make_unique<Worker>();
        SessionParams sp;
        sp.flow = options_.defaults;
        sp.workers = 1; // Concurrency lives at the server's job level.
        worker->session = std::make_unique<PlacementSession>(sp);
        workers_.push_back(std::move(worker));
    }
    for (int i = 0; i < n; ++i)
        workers_[static_cast<std::size_t>(i)]->thread =
            std::thread([this, i] { workerLoop(i); });
    monitor_ = std::thread([this] { monitorLoop(); });
}

PlacementServer::~PlacementServer()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    workAvailable_.notify_all();
    monitorCv_.notify_all();
    for (auto &worker : workers_)
        if (worker->thread.joinable())
            worker->thread.join();
    if (monitor_.joinable())
        monitor_.join();
}

bool
PlacementServer::handleLine(const std::string &line,
                            const ResponseSink &sink)
{
    Request req;
    std::string error;
    if (!parseRequest(line, req, &error)) {
        emit(sink, makeError(req.id, error));
        return true;
    }

    switch (req.type) {
    case Request::Type::Ping: {
        int depth = 0;
        int active = 0;
        {
            std::lock_guard<std::mutex> lock(mu_);
            depth = static_cast<int>(queue_.size());
            for (const auto &worker : workers_)
                if (!worker->runningId.empty())
                    ++active;
        }
        emit(sink, makePong(depth, active));
        return true;
    }

    case Request::Type::Cancel:
        if (cancel(req.id))
            emit(sink, makeAck(req.id));
        else
            emit(sink, makeError(req.id, "no queued or running job '" +
                                             req.id + "'"));
        return true;

    case Request::Type::Failpoint: {
        if (!options_.enableFailpoints) {
            emit(sink,
                 makeErrorCode(req.id, "failpoints_disabled",
                               "failpoint requests require the server "
                               "to run with --enable-failpoints"));
            return true;
        }
        std::string fperr;
        if (Failpoints::instance().arm(req.failpointSite,
                                       req.failpointSpec, &fperr))
            emit(sink, makeAck(req.id));
        else
            emit(sink, makeError(req.id, fperr));
        return true;
    }

    case Request::Type::Shutdown:
        // Stop accepting *before* draining: a submit racing this
        // shutdown gets a deterministic "shutting_down" rejection
        // instead of a job whose result may never be read.
        {
            std::lock_guard<std::mutex> lock(mu_);
            accepting_ = false;
        }
        drain();
        emit(sink, makeBye(jobsCompleted()));
        return false;

    case Request::Type::Submit:
        break;
    }

    // Reject specs that can never run before acking the job; the
    // base id is checked at run time instead (a queued base job may
    // finish before this one starts).
    {
        const Topology *topo = nullptr;
        if (!topologyFor(req.submit.topology, topo, error)) {
            emit(sink, makeError(req.id, error));
            return true;
        }
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        bool taken = false;
        for (const Job &job : queue_)
            taken = taken || job.request.id == req.id;
        for (const auto &worker : workers_)
            taken = taken || worker->runningId == req.id;
        if (taken) {
            emit(sink, makeError(req.id, "job id '" + req.id +
                                             "' is already queued or "
                                             "running"));
            return true;
        }
    }
    submit(req.submit, sink);
    return true;
}

bool
PlacementServer::submit(const SubmitRequest &request, ResponseSink sink)
{
    // The admission failpoint runs before any lock is held: a delay
    // action must stall only this submit, not the workers.
    if (QPLACER_FAILPOINT("server.queue_admission")) {
        emit(sink, makeErrorCode(request.id, "injected",
                                 "injected failure at failpoint "
                                 "'server.queue_admission'"));
        return false;
    }

    // Admission and its response happen under emitMu_, with mu_ nested
    // inside, so no worker can emit this job's result before the ack
    // is on the wire. The nesting order (emitMu_ -> mu_) is safe
    // because emit() is never called while holding mu_.
    bool accepted = false;
    {
        std::lock_guard<std::mutex> order(emitMu_);
        JsonValue response;
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (!accepting_) {
                response = makeErrorCode(request.id, "shutting_down",
                                         "server is shutting down; "
                                         "submit rejected");
            } else if (options_.maxQueue > 0 &&
                       static_cast<int>(queue_.size()) >=
                           options_.maxQueue) {
                response =
                    makeOverloaded(request.id,
                                   static_cast<int>(queue_.size()),
                                   retryAfterMsLocked());
            } else {
                accepted = true;
                queue_.push_back(Job{request, sink});
                response = makeAck(request.id);
            }
        }
        if (QPLACER_FAILPOINT("server.emit"))
            warn("server: response for job '" + request.id +
                 "' dropped at failpoint 'server.emit'");
        else
            sink(response);
    }
    if (accepted)
        workAvailable_.notify_one();
    return accepted;
}

bool
PlacementServer::cancel(const std::string &id)
{
    Job cancelled;
    bool queued = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            if (it->request.id == id) {
                cancelled = std::move(*it);
                queue_.erase(it);
                queued = true;
                break;
            }
        }
        if (!queued) {
            for (auto &worker : workers_) {
                if (worker->runningId == id) {
                    worker->session->cancelToken().cancel();
                    return true;
                }
            }
            return false;
        }
        ++completed_;
    }
    workDone_.notify_all();

    // Synthesize a cancelled result so the client still gets a
    // terminal response for the job.
    FlowResult result;
    result.status.code = FlowCode::Cancelled;
    result.status.message = "cancelled before start";
    emit(cancelled.sink,
         makeResult(id, jobReportJson(result, cancelled.request.seed)));
    return true;
}

void
PlacementServer::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    workDone_.wait(lock, [this] {
        if (!queue_.empty())
            return false;
        for (const auto &worker : workers_)
            if (!worker->runningId.empty())
                return false;
        return true;
    });
}

int
PlacementServer::jobsCompleted() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return completed_;
}

int
PlacementServer::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int>(queue_.size());
}

int
PlacementServer::activeJobs() const
{
    std::lock_guard<std::mutex> lock(mu_);
    int active = 0;
    for (const auto &worker : workers_)
        if (!worker->runningId.empty())
            ++active;
    return active;
}

double
PlacementServer::retryAfterMsLocked() const
{
    if (!hasServiceSample_)
        return 1000.0; // No history yet; a conservative default.
    const double depth = static_cast<double>(queue_.size());
    const double lanes =
        static_cast<double>(std::max<std::size_t>(1, workers_.size()));
    return ewmaServiceMs_ * (depth + 1.0) / lanes;
}

void
PlacementServer::workerLoop(int worker_index)
{
    Worker &self = *workers_[static_cast<std::size_t>(worker_index)];
    for (;;) {
        Job job;
        bool deadlined = false;
        {
            std::unique_lock<std::mutex> lock(mu_);
            workAvailable_.wait(
                lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping_ and nothing left to drain.
            job = std::move(queue_.front());
            queue_.pop_front();
            // Reset the token before publishing runningId, both under
            // mu_: once a cancel request can match this job, nothing
            // may wipe its token again (a late reset would turn an
            // acked cancel into a job that runs to completion).
            self.session->cancelToken().reset();
            self.runningId = job.request.id;
            // The deadline clock measures execution, not queueing:
            // it starts here, at pickup.
            const double deadline_ms = job.request.deadlineMs > 0.0
                                           ? job.request.deadlineMs
                                           : options_.defaultDeadlineMs;
            if (deadline_ms > 0.0) {
                deadlined = true;
                self.hasDeadline = true;
                self.deadlineFired = false;
                self.stuckLogged = false;
                self.deadline =
                    std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double, std::milli>(
                            deadline_ms));
            }
            self.lastStage.clear();
            self.lastIteration.store(-1, std::memory_order_relaxed);
        }
        if (deadlined)
            monitorCv_.notify_all();

        Timer timer;
        if (QPLACER_FAILPOINT("server.worker_pickup")) {
            emit(job.sink, makeErrorCode(job.request.id, "injected",
                                         "injected failure at failpoint "
                                         "'server.worker_pickup'"));
        } else {
            runJob(worker_index, job);
        }
        const double service_ms = timer.seconds() * 1000.0;
        {
            std::lock_guard<std::mutex> lock(mu_);
            self.runningId.clear();
            self.hasDeadline = false;
            ++completed_;
            ewmaServiceMs_ = hasServiceSample_
                                 ? kEwmaAlpha * service_ms +
                                       (1.0 - kEwmaAlpha) * ewmaServiceMs_
                                 : service_ms;
            hasServiceSample_ = true;
        }
        workDone_.notify_all();
        monitorCv_.notify_all();
    }
}

void
PlacementServer::monitorLoop()
{
    using Clock = std::chrono::steady_clock;
    const auto grace =
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double, std::milli>(
                std::max(0.0, options_.stuckGraceMs)));

    std::unique_lock<std::mutex> lock(mu_);
    while (!stopping_) {
        // Earliest pending event: a deadline not yet fired, or the
        // watchdog check of a fired deadline whose job is still
        // running.
        Clock::time_point next = Clock::time_point::max();
        for (const auto &worker : workers_) {
            if (!worker->hasDeadline)
                continue;
            if (!worker->deadlineFired)
                next = std::min(next, worker->deadline);
            else if (!worker->stuckLogged)
                next = std::min(next, worker->deadline + grace);
        }
        if (next == Clock::time_point::max()) {
            monitorCv_.wait(lock);
            continue;
        }
        monitorCv_.wait_until(lock, next);
        if (stopping_)
            break;

        const Clock::time_point now = Clock::now();
        for (const auto &worker : workers_) {
            if (!worker->hasDeadline || worker->runningId.empty())
                continue;
            if (!worker->deadlineFired && now >= worker->deadline) {
                worker->deadlineFired = true;
                worker->session->cancelToken().cancel();
                if (options_.logging)
                    inform("server: job '" + worker->runningId +
                           "' deadline expired; cancelling");
            } else if (worker->deadlineFired && !worker->stuckLogged &&
                       now >= worker->deadline + grace) {
                worker->stuckLogged = true;
                warn(str("server: job '", worker->runningId,
                         "' still running ", options_.stuckGraceMs,
                         " ms after its deadline fired (stage=",
                         worker->lastStage.empty() ? "?"
                                                   : worker->lastStage,
                         ", iteration=",
                         worker->lastIteration.load(
                             std::memory_order_relaxed),
                         "); stage may not poll its cancel token"));
            }
        }
    }
}

void
PlacementServer::runJob(int worker_index, Job &job)
{
    Worker &self = *workers_[static_cast<std::size_t>(worker_index)];
    PlacementSession &session = *self.session;
    const SubmitRequest &req = job.request;

    const Topology *topo = nullptr;
    std::string error;
    if (!topologyFor(req.topology, topo, error)) {
        emit(job.sink, makeError(req.id, error));
        return;
    }

    FlowParams params = options_.defaults;
    params.mode = req.mode;
    params.placer.seed = req.seed;
    params.partition.segmentUm = req.segmentUm;
    applyOverrides(req.set, params);
    // The bitwise contract: with concurrent workers every job places
    // single-threaded, exactly like PlacementSession::runBatch.
    if (workers() > 1)
        params.placer.threads = 1;

    std::shared_ptr<const PriorLayout> prior;
    if (req.isIncremental()) {
        // get() promotes on hit (LRU): a hot incremental base must not
        // be evicted by unrelated submits while still in active use.
        prior = priors_->get(req.baseId);
        if (!prior) {
            emit(job.sink,
                 makeError(req.id, "unknown base job '" + req.baseId +
                                       "' (evicted or never run)"));
            return;
        }
    }

    if (options_.logging)
        inform("server: job '" + req.id + "' starting on worker " +
               std::to_string(worker_index));

    StreamObserver observer(
        req.id, req.progressEvery,
        [this, &job](const JsonValue &v) { emit(job.sink, v); },
        [this, &self](const std::string &stage) {
            std::lock_guard<std::mutex> lock(mu_);
            self.lastStage = stage;
        },
        [&self](int iteration) {
            self.lastIteration.store(iteration,
                                     std::memory_order_relaxed);
        });
    session.setObserver(&observer); // Token was reset in workerLoop.
    FlowResult result;
    if (prior) {
        NetlistDelta delta;
        delta.dirtyQubits = req.dirtyQubits;
        // A dirtied coupler dirties both endpoint qubits; the delta
        // closure picks up the resonator chain between them.
        for (const auto &coupler : req.dirtyCouplers) {
            delta.dirtyQubits.push_back(coupler.first);
            delta.dirtyQubits.push_back(coupler.second);
        }
        result = session.runIncremental(*topo, params, *prior, delta);
    } else if (req.isPortfolio()) {
        if (req.portfolioPruneAt > 0)
            params.portfolio.pruneAt = req.portfolioPruneAt;
        if (req.portfolioKeepFrac > 0.0)
            params.portfolio.keepFrac = req.portfolioKeepFrac;
        result = session.runPortfolio(*topo, params, req.portfolioSeeds);
    } else {
        result = session.run(*topo, params);
    }
    session.setObserver(nullptr);

    // A cancel triggered by the deadline monitor reports distinctly
    // from a client cancel. A job that still finished Ok keeps its Ok
    // (the work is done; no reason to discard it).
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (self.deadlineFired &&
            result.status.code == FlowCode::Cancelled) {
            result.status.code = FlowCode::DeadlineExceeded;
            result.status.message =
                "deadline exceeded (" + result.status.message + ")";
        }
    }

    if (result.status.ok()) {
        if (QPLACER_FAILPOINT("prior_store.capture")) {
            warn("server: prior capture for job '" + req.id +
                 "' dropped at failpoint 'prior_store.capture'");
        } else {
            auto captured = std::make_shared<const PriorLayout>(
                PriorLayout::capture(result.netlist));
            // put() journals + fsyncs (when persistent) before it
            // returns, so the layout is durable before the result
            // below is emitted: an acked prior is always recoverable.
            priors_->put(req.id, std::move(captured));
        }
    }

    JsonValue response = makeResult(req.id, jobReportJson(result, req.seed));
    if (req.wantLayout && result.status.ok())
        response.set("layout", layoutJson(result.netlist));
    emit(job.sink, response);

    if (options_.logging)
        inform("server: job '" + req.id + "' finished (" +
               flowCodeName(result.status.code) + ")");
}

void
PlacementServer::emit(const ResponseSink &sink, const JsonValue &response)
{
    if (QPLACER_FAILPOINT("server.emit")) {
        warn("server: response dropped at failpoint 'server.emit'");
        return;
    }
    std::lock_guard<std::mutex> lock(emitMu_);
    sink(response);
}

bool
PlacementServer::topologyFor(const std::string &spec, const Topology *&out,
                             std::string &error)
{
    std::lock_guard<std::mutex> lock(topoMu_);
    auto it = topologies_.find(spec);
    if (it == topologies_.end()) {
        Topology topo;
        if (!resolveTopologySpec(spec, topo, &error))
            return false;
        it = topologies_
                 .emplace(spec,
                          std::make_unique<Topology>(std::move(topo)))
                 .first;
    }
    out = it->second.get();
    return true;
}

} // namespace qplacer
