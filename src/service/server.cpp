/** @file PlacementServer implementation; contract in server.hpp. */

#include "service/server.hpp"

#include <utility>

#include "pipeline/overrides.hpp"
#include "topology/factory.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace qplacer {
namespace {

/**
 * Streams FlowObserver events for one job as progress responses.
 * progressEvery: -1 = silent, 0 = stage events, N > 0 = stage events
 * plus every Nth placement iteration (see SubmitRequest).
 */
class StreamObserver : public FlowObserver
{
  public:
    StreamObserver(std::string id, int progress_every,
                   std::function<void(const JsonValue &)> emit)
        : id_(std::move(id)), progressEvery_(progress_every),
          emit_(std::move(emit))
    {
    }

    void
    onStageBegin(const FlowContext &, const std::string &stage) override
    {
        if (progressEvery_ >= 0)
            emit_(makeStageBegin(id_, stage));
    }

    void
    onStageEnd(const FlowContext &, const StageTiming &timing) override
    {
        if (progressEvery_ >= 0)
            emit_(makeStageEnd(id_, timing.stage, timing.seconds));
    }

    void
    onIteration(const FlowContext &, const PlaceProgress &progress) override
    {
        if (progressEvery_ > 0 && progress.iteration % progressEvery_ == 0)
            emit_(makeIteration(id_, progress.iteration, progress.overflow,
                                progress.hpwl));
    }

  private:
    std::string id_;
    int progressEvery_;
    std::function<void(const JsonValue &)> emit_;
};

} // namespace

PlacementServer::PlacementServer(ServerOptions options)
    : options_(std::move(options))
{
    const int n = ThreadPool::resolveThreadCount(options_.workers);
    workers_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        auto worker = std::make_unique<Worker>();
        SessionParams sp;
        sp.flow = options_.defaults;
        sp.workers = 1; // Concurrency lives at the server's job level.
        worker->session = std::make_unique<PlacementSession>(sp);
        workers_.push_back(std::move(worker));
    }
    for (int i = 0; i < n; ++i)
        workers_[static_cast<std::size_t>(i)]->thread =
            std::thread([this, i] { workerLoop(i); });
}

PlacementServer::~PlacementServer()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    workAvailable_.notify_all();
    for (auto &worker : workers_)
        if (worker->thread.joinable())
            worker->thread.join();
}

bool
PlacementServer::handleLine(const std::string &line,
                            const ResponseSink &sink)
{
    Request req;
    std::string error;
    if (!parseRequest(line, req, &error)) {
        emit(sink, makeError(req.id, error));
        return true;
    }

    switch (req.type) {
    case Request::Type::Ping:
        emit(sink, makePong());
        return true;

    case Request::Type::Cancel:
        if (cancel(req.id))
            emit(sink, makeAck(req.id));
        else
            emit(sink, makeError(req.id, "no queued or running job '" +
                                             req.id + "'"));
        return true;

    case Request::Type::Shutdown:
        drain();
        emit(sink, makeBye(jobsCompleted()));
        return false;

    case Request::Type::Submit:
        break;
    }

    // Reject specs that can never run before acking the job; the
    // base id is checked at run time instead (a queued base job may
    // finish before this one starts).
    {
        const Topology *topo = nullptr;
        if (!topologyFor(req.submit.topology, topo, error)) {
            emit(sink, makeError(req.id, error));
            return true;
        }
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        bool taken = false;
        for (const Job &job : queue_)
            taken = taken || job.request.id == req.id;
        for (const auto &worker : workers_)
            taken = taken || worker->runningId == req.id;
        if (taken) {
            emit(sink, makeError(req.id, "job id '" + req.id +
                                             "' is already queued or "
                                             "running"));
            return true;
        }
    }
    emit(sink, makeAck(req.id));
    submit(req.submit, sink);
    return true;
}

void
PlacementServer::submit(const SubmitRequest &request, ResponseSink sink)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.push_back(Job{request, std::move(sink)});
    }
    workAvailable_.notify_one();
}

bool
PlacementServer::cancel(const std::string &id)
{
    Job cancelled;
    bool queued = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            if (it->request.id == id) {
                cancelled = std::move(*it);
                queue_.erase(it);
                queued = true;
                break;
            }
        }
        if (!queued) {
            for (auto &worker : workers_) {
                if (worker->runningId == id) {
                    worker->session->cancelToken().cancel();
                    return true;
                }
            }
            return false;
        }
        ++completed_;
    }
    workDone_.notify_all();

    // Synthesize a cancelled result so the client still gets a
    // terminal response for the job.
    FlowResult result;
    result.status.code = FlowCode::Cancelled;
    result.status.message = "cancelled before start";
    emit(cancelled.sink,
         makeResult(id, jobReportJson(result, cancelled.request.seed)));
    return true;
}

void
PlacementServer::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    workDone_.wait(lock, [this] {
        if (!queue_.empty())
            return false;
        for (const auto &worker : workers_)
            if (!worker->runningId.empty())
                return false;
        return true;
    });
}

int
PlacementServer::jobsCompleted() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return completed_;
}

void
PlacementServer::workerLoop(int worker_index)
{
    Worker &self = *workers_[static_cast<std::size_t>(worker_index)];
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            workAvailable_.wait(
                lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping_ and nothing left to drain.
            job = std::move(queue_.front());
            queue_.pop_front();
            // Reset the token before publishing runningId, both under
            // mu_: once a cancel request can match this job, nothing
            // may wipe its token again (a late reset would turn an
            // acked cancel into a job that runs to completion).
            self.session->cancelToken().reset();
            self.runningId = job.request.id;
        }
        runJob(worker_index, job);
        {
            std::lock_guard<std::mutex> lock(mu_);
            self.runningId.clear();
            ++completed_;
        }
        workDone_.notify_all();
    }
}

void
PlacementServer::runJob(int worker_index, Job &job)
{
    Worker &self = *workers_[static_cast<std::size_t>(worker_index)];
    PlacementSession &session = *self.session;
    const SubmitRequest &req = job.request;

    const Topology *topo = nullptr;
    std::string error;
    if (!topologyFor(req.topology, topo, error)) {
        emit(job.sink, makeError(req.id, error));
        return;
    }

    FlowParams params = options_.defaults;
    params.mode = req.mode;
    params.placer.seed = req.seed;
    params.partition.segmentUm = req.segmentUm;
    applyOverrides(req.set, params);
    // The bitwise contract: with concurrent workers every job places
    // single-threaded, exactly like PlacementSession::runBatch.
    if (workers() > 1)
        params.placer.threads = 1;

    std::shared_ptr<const PriorLayout> prior;
    if (req.isIncremental()) {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = priors_.find(req.baseId);
        if (it != priors_.end()) {
            prior = it->second;
            // Promote on use (LRU): a hot incremental base must not be
            // evicted by unrelated submits while still in active use.
            promotePrior(req.baseId);
        }
    }
    if (req.isIncremental() && !prior) {
        emit(job.sink, makeError(req.id, "unknown base job '" + req.baseId +
                                             "' (evicted or never run)"));
        return;
    }

    if (options_.logging)
        inform("server: job '" + req.id + "' starting on worker " +
               std::to_string(worker_index));

    StreamObserver observer(
        req.id, req.progressEvery,
        [this, &job](const JsonValue &v) { emit(job.sink, v); });
    session.setObserver(&observer); // Token was reset in workerLoop.
    FlowResult result;
    if (prior) {
        NetlistDelta delta;
        delta.dirtyQubits = req.dirtyQubits;
        // A dirtied coupler dirties both endpoint qubits; the delta
        // closure picks up the resonator chain between them.
        for (const auto &coupler : req.dirtyCouplers) {
            delta.dirtyQubits.push_back(coupler.first);
            delta.dirtyQubits.push_back(coupler.second);
        }
        result = session.runIncremental(*topo, params, *prior, delta);
    } else if (req.isPortfolio()) {
        if (req.portfolioPruneAt > 0)
            params.portfolio.pruneAt = req.portfolioPruneAt;
        if (req.portfolioKeepFrac > 0.0)
            params.portfolio.keepFrac = req.portfolioKeepFrac;
        result = session.runPortfolio(*topo, params, req.portfolioSeeds);
    } else {
        result = session.run(*topo, params);
    }
    session.setObserver(nullptr);

    if (result.status.ok()) {
        auto captured = std::make_shared<const PriorLayout>(
            PriorLayout::capture(result.netlist));
        std::lock_guard<std::mutex> lock(mu_);
        if (priors_.find(req.id) == priors_.end())
            priorOrder_.push_back(req.id);
        else
            promotePrior(req.id); // Re-capture counts as a use.
        priors_[req.id] = std::move(captured);
        while (static_cast<int>(priorOrder_.size()) >
               options_.resultCacheCap) {
            priors_.erase(priorOrder_.front());
            priorOrder_.pop_front();
        }
    }

    JsonValue response = makeResult(req.id, jobReportJson(result, req.seed));
    if (req.wantLayout && result.status.ok())
        response.set("layout", layoutJson(result.netlist));
    emit(job.sink, response);

    if (options_.logging)
        inform("server: job '" + req.id + "' finished (" +
               flowCodeName(result.status.code) + ")");
}

void
PlacementServer::emit(const ResponseSink &sink, const JsonValue &response)
{
    std::lock_guard<std::mutex> lock(emitMu_);
    sink(response);
}

void
PlacementServer::promotePrior(const std::string &id)
{
    for (auto it = priorOrder_.begin(); it != priorOrder_.end(); ++it) {
        if (*it == id) {
            priorOrder_.erase(it);
            priorOrder_.push_back(id);
            return;
        }
    }
}

bool
PlacementServer::topologyFor(const std::string &spec, const Topology *&out,
                             std::string &error)
{
    std::lock_guard<std::mutex> lock(topoMu_);
    auto it = topologies_.find(spec);
    if (it == topologies_.end()) {
        Topology topo;
        if (!resolveTopologySpec(spec, topo, &error))
            return false;
        it = topologies_
                 .emplace(spec,
                          std::make_unique<Topology>(std::move(topo)))
                 .first;
    }
    out = it->second.get();
    return true;
}

} // namespace qplacer
