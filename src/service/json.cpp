#include "service/json.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/logging.hpp"

namespace qplacer {

namespace {

/** Shortest printf literal that parses back to exactly @p v. */
std::string
shortestDoubleLiteral(double v)
{
    char buf[64];
    for (int precision = 15; precision <= 17; ++precision) {
        std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

} // namespace

JsonValue
JsonValue::null()
{
    return JsonValue();
}

JsonValue
JsonValue::boolean(bool v)
{
    JsonValue j;
    j.kind_ = Kind::Bool;
    j.bool_ = v;
    return j;
}

JsonValue
JsonValue::number(double v)
{
    // NaN/inf have no JSON literal; emit null so a degenerate metric
    // cannot make a response line unparseable.
    if (!std::isfinite(v))
        return JsonValue();
    JsonValue j;
    j.kind_ = Kind::Number;
    j.number_ = v;
    j.text_ = shortestDoubleLiteral(v);
    return j;
}

JsonValue
JsonValue::number(std::int64_t v)
{
    JsonValue j;
    j.kind_ = Kind::Number;
    j.number_ = static_cast<double>(v);
    j.text_ = std::to_string(v);
    return j;
}

JsonValue
JsonValue::numberLiteral(std::string literal)
{
    JsonValue j;
    j.kind_ = Kind::Number;
    j.number_ = std::strtod(literal.c_str(), nullptr);
    j.text_ = std::move(literal);
    return j;
}

JsonValue
JsonValue::string(std::string v)
{
    JsonValue j;
    j.kind_ = Kind::String;
    j.text_ = std::move(v);
    return j;
}

JsonValue
JsonValue::array()
{
    JsonValue j;
    j.kind_ = Kind::Array;
    return j;
}

JsonValue
JsonValue::object()
{
    JsonValue j;
    j.kind_ = Kind::Object;
    return j;
}

bool
JsonValue::asBool() const
{
    if (kind_ != Kind::Bool)
        panic("JsonValue::asBool on non-bool");
    return bool_;
}

double
JsonValue::asDouble() const
{
    if (kind_ != Kind::Number)
        panic("JsonValue::asDouble on non-number");
    return number_;
}

std::int64_t
JsonValue::asInt() const
{
    if (kind_ != Kind::Number)
        panic("JsonValue::asInt on non-number");
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(text_.c_str(), &end, 10);
    if (errno != 0 || end == text_.c_str() || *end != '\0')
        panic(str("JsonValue::asInt on non-integer literal '", text_, "'"));
    return v;
}

const std::string &
JsonValue::asString() const
{
    if (kind_ != Kind::String)
        panic("JsonValue::asString on non-string");
    return text_;
}

const std::string &
JsonValue::numberText() const
{
    if (kind_ != Kind::Number)
        panic("JsonValue::numberText on non-number");
    return text_;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    if (kind_ != Kind::Array)
        panic("JsonValue::items on non-array");
    return items_;
}

std::vector<JsonValue> &
JsonValue::items()
{
    if (kind_ != Kind::Array)
        panic("JsonValue::items on non-array");
    return items_;
}

void
JsonValue::push(JsonValue v)
{
    if (kind_ != Kind::Array)
        panic("JsonValue::push on non-array");
    items_.push_back(std::move(v));
}

const std::vector<JsonValue::Member> &
JsonValue::members() const
{
    if (kind_ != Kind::Object)
        panic("JsonValue::members on non-object");
    return members_;
}

void
JsonValue::set(const std::string &key, JsonValue v)
{
    if (kind_ != Kind::Object)
        panic("JsonValue::set on non-object");
    for (Member &m : members_) {
        if (m.first == key) {
            m.second = std::move(v);
            return;
        }
    }
    members_.emplace_back(key, std::move(v));
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        panic("JsonValue::find on non-object");
    for (const Member &m : members_)
        if (m.first == key)
            return &m.second;
    return nullptr;
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

void
serializeInto(const JsonValue &v, std::string &out)
{
    switch (v.kind()) {
    case JsonValue::Kind::Null: out += "null"; break;
    case JsonValue::Kind::Bool: out += v.asBool() ? "true" : "false"; break;
    case JsonValue::Kind::Number: out += v.numberText(); break;
    case JsonValue::Kind::String:
        out += '"';
        out += jsonEscape(v.asString());
        out += '"';
        break;
    case JsonValue::Kind::Array: {
        out += '[';
        bool first = true;
        for (const JsonValue &item : v.items()) {
            if (!first)
                out += ',';
            first = false;
            serializeInto(item, out);
        }
        out += ']';
        break;
    }
    case JsonValue::Kind::Object: {
        out += '{';
        bool first = true;
        for (const JsonValue::Member &m : v.members()) {
            if (!first)
                out += ',';
            first = false;
            out += '"';
            out += jsonEscape(m.first);
            out += "\":";
            serializeInto(m.second, out);
        }
        out += '}';
        break;
    }
    }
}

/** Recursive-descent parser over a byte range with a depth cap. */
class Parser
{
public:
    Parser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool parse(JsonValue &out)
    {
        skipSpace();
        if (!parseValue(out, 0))
            return false;
        skipSpace();
        if (pos_ != text_.size())
            return fail("trailing characters after JSON document");
        return true;
    }

private:
    static constexpr int kMaxDepth = 64;

    bool fail(const std::string &what)
    {
        if (error_ != nullptr)
            *error_ = str(what, " at byte ", pos_);
        return false;
    }

    void skipSpace()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool literal(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (text_.compare(pos_, n, word) != 0)
            return fail(str("invalid literal, expected '", word, "'"));
        pos_ += n;
        return true;
    }

    bool parseValue(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
        case '{': return parseObject(out, depth);
        case '[': return parseArray(out, depth);
        case '"': return parseString(out);
        case 't':
            out = JsonValue::boolean(true);
            return literal("true");
        case 'f':
            out = JsonValue::boolean(false);
            return literal("false");
        case 'n':
            out = JsonValue::null();
            return literal("null");
        default: return parseNumber(out);
        }
    }

    bool parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        const std::size_t intStart = pos_;
        std::size_t digits = 0;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
            ++digits;
        }
        if (digits == 0)
            return fail("invalid number");
        if (digits > 1 && text_[intStart] == '0')
            return fail("leading zeros are not allowed");
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            digits = 0;
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
                ++digits;
            }
            if (digits == 0)
                return fail("digits required after decimal point");
        }
        if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            digits = 0;
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
                ++digits;
            }
            if (digits == 0)
                return fail("digits required in exponent");
        }
        out = JsonValue::numberLiteral(text_.substr(start, pos_ - start));
        return true;
    }

    bool parseHex4(unsigned &out)
    {
        if (pos_ + 4 > text_.size())
            return fail("truncated \\u escape");
        out = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_ + i];
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= static_cast<unsigned>(c - 'A' + 10);
            else
                return fail("invalid \\u escape digit");
        }
        pos_ += 4;
        return true;
    }

    void appendUtf8(std::string &s, unsigned cp)
    {
        if (cp < 0x80) {
            s += static_cast<char>(cp);
        } else if (cp < 0x800) {
            s += static_cast<char>(0xC0 | (cp >> 6));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            s += static_cast<char>(0xE0 | (cp >> 12));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            s += static_cast<char>(0xF0 | (cp >> 18));
            s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    bool parseString(JsonValue &out)
    {
        ++pos_; // opening quote
        std::string value;
        while (true) {
            if (pos_ >= text_.size())
                return fail("unterminated string");
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                out = JsonValue::string(std::move(value));
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("unescaped control character in string");
            if (c != '\\') {
                value += c;
                ++pos_;
                continue;
            }
            ++pos_;
            if (pos_ >= text_.size())
                return fail("truncated escape");
            const char esc = text_[pos_++];
            switch (esc) {
            case '"': value += '"'; break;
            case '\\': value += '\\'; break;
            case '/': value += '/'; break;
            case 'b': value += '\b'; break;
            case 'f': value += '\f'; break;
            case 'n': value += '\n'; break;
            case 'r': value += '\r'; break;
            case 't': value += '\t'; break;
            case 'u': {
                unsigned cp = 0;
                if (!parseHex4(cp))
                    return false;
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    // High surrogate: require the low half.
                    if (text_.compare(pos_, 2, "\\u") != 0)
                        return fail("lone high surrogate");
                    pos_ += 2;
                    unsigned low = 0;
                    if (!parseHex4(low))
                        return false;
                    if (low < 0xDC00 || low > 0xDFFF)
                        return fail("invalid low surrogate");
                    cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                    return fail("lone low surrogate");
                }
                appendUtf8(value, cp);
                break;
            }
            default: return fail("invalid escape character");
            }
        }
    }

    bool parseArray(JsonValue &out, int depth)
    {
        ++pos_; // '['
        out = JsonValue::array();
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue item;
            skipSpace();
            if (!parseValue(item, depth + 1))
                return false;
            out.push(std::move(item));
            skipSpace();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            const char c = text_[pos_++];
            if (c == ']')
                return true;
            if (c != ',')
                return fail("expected ',' or ']' in array");
        }
    }

    bool parseObject(JsonValue &out, int depth)
    {
        ++pos_; // '{'
        out = JsonValue::object();
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected string key in object");
            JsonValue key;
            if (!parseString(key))
                return false;
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_++] != ':')
                return fail("expected ':' after object key");
            JsonValue value;
            skipSpace();
            if (!parseValue(value, depth + 1))
                return false;
            out.set(key.asString(), std::move(value));
            skipSpace();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            const char c = text_[pos_++];
            if (c == '}')
                return true;
            if (c != ',')
                return fail("expected ',' or '}' in object");
        }
    }

    const std::string &text_;
    std::string *error_;
    std::size_t pos_ = 0;
};

} // namespace

std::string
JsonValue::serialize() const
{
    std::string out;
    serializeInto(*this, out);
    return out;
}

bool
parseJson(const std::string &text, JsonValue &out, std::string *error)
{
    Parser parser(text, error);
    return parser.parse(out);
}

} // namespace qplacer
