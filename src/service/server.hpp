/**
 * @file
 * PlacementServer: the long-lived placement-as-a-service job host.
 *
 * One server owns a pool of worker threads, each wrapping its own warm
 * PlacementSession (thread pools and spectral-plan caches stay alive
 * across jobs), a FIFO job queue, a parsed-topology cache, and a
 * bounded store of finished layouts (PriorLayout) that incremental
 * requests reference by job id. Transport is someone else's problem:
 * the server consumes request lines (handleLine) and emits response
 * JsonValues through a caller-supplied sink, so the same engine serves
 * stdin/stdout, a Unix socket (tools/qplacer_server.cpp), an
 * in-process loopback (tests), or a bench driver.
 *
 * Determinism contract: with workers > 1 every job is forced to
 * placer.threads = 1, exactly like PlacementSession::runBatch, so a
 * stream of concurrent jobs is bitwise-identical to running each
 * serially. Responses for one job arrive in order (ack -> progress* ->
 * result); responses of different jobs interleave.
 */

#ifndef QPLACER_SERVICE_SERVER_HPP
#define QPLACER_SERVICE_SERVER_HPP

#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "pipeline/session.hpp"
#include "service/protocol.hpp"
#include "topology/topology.hpp"

namespace qplacer {

/** Emits one response object (serialized by the transport). */
using ResponseSink = std::function<void(const JsonValue &)>;

/** Server configuration. */
struct ServerOptions
{
    /**
     * Concurrent job workers. 0 = hardware concurrency (capped like
     * ThreadPool's auto choice); 1 = strictly ordered execution.
     */
    int workers = 1;

    /**
     * Finished layouts kept for incremental re-place, evicted least-
     * recently-used (every lookup or re-capture of an id promotes it).
     * Every successful job's layout is captured (two position maps --
     * cheap), so any recent job id can serve as a "base".
     */
    int resultCacheCap = 64;

    /** Base flow parameters; per-request fields and "set" override. */
    FlowParams defaults;

    /** Emit inform() lines for job lifecycle events (stderr). */
    bool logging = false;
};

/** The job host; see the file header for the contract. */
class PlacementServer
{
  public:
    explicit PlacementServer(ServerOptions options = {});

    /** Joins the workers (drains the queue first). */
    ~PlacementServer();

    PlacementServer(const PlacementServer &) = delete;
    PlacementServer &operator=(const PlacementServer &) = delete;

    /**
     * Parse and dispatch one request line; every response (including
     * parse errors) goes through @p sink. Returns false once shutdown
     * was requested -- the transport should stop reading then.
     * Response emission is serialized internally, so sinks may write
     * to a shared stream without their own locking.
     */
    bool handleLine(const std::string &line, const ResponseSink &sink);

    /** Queue a parsed job; acks immediately, result arrives via sink. */
    void submit(const SubmitRequest &request, ResponseSink sink);

    /**
     * Cancel a queued or running job. Queued jobs report a cancelled
     * result without running; running jobs stop at their next poll.
     * False if no such job is queued or running.
     */
    bool cancel(const std::string &id);

    /** Block until the queue is empty and all workers are idle. */
    void drain();

    /** Jobs fully processed so far (including cancelled ones). */
    int jobsCompleted() const;

    /** Resolved worker count. */
    int workers() const { return static_cast<int>(workers_.size()); }

  private:
    struct Job
    {
        SubmitRequest request;
        ResponseSink sink;
    };

    /** One worker: a warm session plus its currently-running job id. */
    struct Worker
    {
        std::unique_ptr<PlacementSession> session;
        std::thread thread;
        std::string runningId; ///< Guarded by mu_.
    };

    void workerLoop(int worker_index);
    void runJob(int worker_index, Job &job);
    void emit(const ResponseSink &sink, const JsonValue &response);

    /** Cached parse of a topology spec; false + error on bad specs. */
    bool topologyFor(const std::string &spec, const Topology *&out,
                     std::string &error);

    /** Move @p id to the most-recent end of priorOrder_ (under mu_). */
    void promotePrior(const std::string &id);

    ServerOptions options_;

    mutable std::mutex mu_; ///< Queue, worker state, priors, counters.
    std::condition_variable workAvailable_;
    std::condition_variable workDone_;
    std::deque<Job> queue_;
    std::vector<std::unique_ptr<Worker>> workers_;
    bool stopping_ = false;
    int completed_ = 0;

    /** Finished layouts by job id, LRU-ordered for eviction. */
    std::map<std::string, std::shared_ptr<const PriorLayout>> priors_;
    std::deque<std::string> priorOrder_; ///< Front = evict next.

    std::mutex topoMu_;
    std::map<std::string, std::unique_ptr<Topology>> topologies_;

    std::mutex emitMu_; ///< Serializes response emission.
};

} // namespace qplacer

#endif
