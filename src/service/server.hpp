/**
 * @file
 * PlacementServer: the long-lived placement-as-a-service job host.
 *
 * One server owns a pool of worker threads, each wrapping its own warm
 * PlacementSession (thread pools and spectral-plan caches stay alive
 * across jobs), a FIFO job queue, a parsed-topology cache, and a
 * bounded store of finished layouts (PriorStore) that incremental
 * requests reference by job id. Transport is someone else's problem:
 * the server consumes request lines (handleLine) and emits response
 * JsonValues through a caller-supplied sink, so the same engine serves
 * stdin/stdout, a Unix socket (tools/qplacer_server.cpp), an
 * in-process loopback (tests), or a bench driver.
 *
 * Production hardening (all off by default; defaults reproduce the
 * original behaviour byte-for-byte):
 *
 *  - ServerOptions::stateDir makes the prior store crash-safe: acked
 *    layouts are journaled + fsynced before the result is emitted and
 *    replayed on restart (prior_store.hpp has the on-disk contract).
 *  - ServerOptions::maxQueue bounds the queue; beyond it submits are
 *    rejected with a structured "overloaded" error carrying the queue
 *    depth and an EWMA-of-service-time retry hint.
 *  - Per-job deadlines ("deadline_ms" on submit, or
 *    ServerOptions::defaultDeadlineMs): a monitor thread cancels the
 *    job when its *execution* clock expires and the result reports
 *    status "deadline_exceeded" (distinct from a client cancel). If
 *    the worker has not stopped stuckGraceMs after the deadline fired
 *    a watchdog logs the stage/iteration it is stuck in.
 *  - Shutdown flips the server to non-accepting first, so a submit
 *    racing a shutdown gets a deterministic "shutting_down" error
 *    instead of a job that may never report.
 *  - Failpoint sites (util/failpoint.hpp) at queue admission, worker
 *    pickup, prior capture, and response emission; armed only via
 *    QPLACER_FAILPOINTS / the "failpoint" request behind
 *    ServerOptions::enableFailpoints.
 *
 * Determinism contract: with workers > 1 every job is forced to
 * placer.threads = 1, exactly like PlacementSession::runBatch, so a
 * stream of concurrent jobs is bitwise-identical to running each
 * serially. Responses for one job arrive in order (ack -> progress* ->
 * result); responses of different jobs interleave.
 */

#ifndef QPLACER_SERVICE_SERVER_HPP
#define QPLACER_SERVICE_SERVER_HPP

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "pipeline/session.hpp"
#include "service/prior_store.hpp"
#include "service/protocol.hpp"
#include "topology/topology.hpp"

namespace qplacer {

/** Emits one response object (serialized by the transport). */
using ResponseSink = std::function<void(const JsonValue &)>;

/** Server configuration. */
struct ServerOptions
{
    /**
     * Concurrent job workers. 0 = hardware concurrency (capped like
     * ThreadPool's auto choice); 1 = strictly ordered execution.
     */
    int workers = 1;

    /**
     * Finished layouts kept for incremental re-place, evicted least-
     * recently-used (every lookup or re-capture of an id promotes it).
     * Every successful job's layout is captured (two position maps --
     * cheap), so any recent job id can serve as a "base".
     */
    int resultCacheCap = 64;

    /**
     * Crash-safe prior persistence: directory for the journal +
     * snapshot pair (created if missing), replayed on startup. Empty
     * (the default) keeps the store memory-only.
     */
    std::string stateDir;

    /** Journal appends between snapshot compactions (with stateDir). */
    int snapshotEvery = 32;

    /**
     * Queue bound: submits beyond this many waiting jobs are rejected
     * with the "overloaded" error. 0 (default) = unbounded.
     */
    int maxQueue = 0;

    /**
     * Deadline applied to jobs that do not carry their own
     * "deadline_ms", in milliseconds of execution time. 0 (default) =
     * none.
     */
    double defaultDeadlineMs = 0.0;

    /**
     * Watchdog grace: if a deadline-cancelled job is still running
     * this long after its token fired, log the stage/iteration it is
     * stuck in (a stage that does not poll its CancelToken).
     */
    double stuckGraceMs = 2000.0;

    /**
     * Honor "failpoint" protocol requests. Off by default; the
     * transport (qplacer_server --enable-failpoints) also gates the
     * QPLACER_FAILPOINTS environment variable on this.
     */
    bool enableFailpoints = false;

    /** Base flow parameters; per-request fields and "set" override. */
    FlowParams defaults;

    /** Emit inform() lines for job lifecycle events (stderr). */
    bool logging = false;
};

/** The job host; see the file header for the contract. */
class PlacementServer
{
  public:
    explicit PlacementServer(ServerOptions options = {});

    /** Joins the workers (drains the queue first). */
    ~PlacementServer();

    PlacementServer(const PlacementServer &) = delete;
    PlacementServer &operator=(const PlacementServer &) = delete;

    /**
     * Parse and dispatch one request line; every response (including
     * parse errors) goes through @p sink. Returns false once shutdown
     * was requested -- the transport should stop reading then.
     * Response emission is serialized internally, so sinks may write
     * to a shared stream without their own locking.
     */
    bool handleLine(const std::string &line, const ResponseSink &sink);

    /**
     * Admit a parsed job: on acceptance emits the ack and queues it
     * (the result arrives later via @p sink) and returns true; on
     * rejection emits a structured error ("overloaded" past maxQueue,
     * "shutting_down" after shutdown began, "injected" under the
     * queue-admission failpoint) and returns false. The ack is
     * guaranteed to precede every other response of the job.
     */
    bool submit(const SubmitRequest &request, ResponseSink sink);

    /**
     * Cancel a queued or running job. Queued jobs report a cancelled
     * result without running; running jobs stop at their next poll.
     * False if no such job is queued or running.
     */
    bool cancel(const std::string &id);

    /** Block until the queue is empty and all workers are idle. */
    void drain();

    /** Jobs fully processed so far (including cancelled ones). */
    int jobsCompleted() const;

    /** Jobs waiting in the queue right now. */
    int queueDepth() const;

    /** Jobs currently executing on workers. */
    int activeJobs() const;

    /** Resolved worker count. */
    int workers() const { return static_cast<int>(workers_.size()); }

    /** The layout store (tests inspect persistence state). */
    PriorStore &priorStore() { return *priors_; }

  private:
    struct Job
    {
        SubmitRequest request;
        ResponseSink sink;
    };

    /** One worker: a warm session plus its currently-running job id. */
    struct Worker
    {
        std::unique_ptr<PlacementSession> session;
        std::thread thread;
        std::string runningId; ///< Guarded by mu_.

        // Deadline + watchdog state, guarded by mu_ except where
        // noted. Valid while runningId is set and hasDeadline is true.
        bool hasDeadline = false;
        bool deadlineFired = false; ///< Monitor cancelled the job.
        bool stuckLogged = false;   ///< Watchdog warning emitted.
        std::chrono::steady_clock::time_point deadline{};
        std::string lastStage; ///< Last stage begun (mu_).
        std::atomic<int> lastIteration{-1}; ///< Last placer iteration.
    };

    void workerLoop(int worker_index);
    void monitorLoop();
    void runJob(int worker_index, Job &job);
    void emit(const ResponseSink &sink, const JsonValue &response);

    /** Cached parse of a topology spec; false + error on bad specs. */
    bool topologyFor(const std::string &spec, const Topology *&out,
                     std::string &error);

    /** Backoff hint for "overloaded" rejections (under mu_). */
    double retryAfterMsLocked() const;

    ServerOptions options_;

    mutable std::mutex mu_; ///< Queue, worker state, counters.
    std::condition_variable workAvailable_;
    std::condition_variable workDone_;
    std::condition_variable monitorCv_;
    std::deque<Job> queue_;
    std::vector<std::unique_ptr<Worker>> workers_;
    std::thread monitor_;
    bool stopping_ = false;
    bool accepting_ = true; ///< Cleared when shutdown is requested.
    int completed_ = 0;

    /** EWMA of job service time in ms (mu_); feeds retry_after_ms. */
    double ewmaServiceMs_ = 0.0;
    bool hasServiceSample_ = false;

    /** Finished layouts by job id (thread-safe; optionally on disk). */
    std::unique_ptr<PriorStore> priors_;

    std::mutex topoMu_;
    std::map<std::string, std::unique_ptr<Topology>> topologies_;

    std::mutex emitMu_; ///< Serializes response emission.
};

} // namespace qplacer

#endif
