/**
 * @file
 * PriorStore: the server's bounded LRU store of finished layouts
 * (PriorLayout), optionally made crash-safe on disk.
 *
 * In-memory behaviour is exactly what PlacementServer shipped with:
 * a capacity-bounded map keyed by job id where every get() or re-put()
 * promotes the id, and the least-recently-used entry is evicted first.
 *
 * With a state directory configured, the store survives daemon
 * restarts and `kill -9`:
 *
 *  - every put() appends one NDJSON record to `priors.journal`,
 *    carrying a CRC-32 of its payload, and fsyncs it before the caller
 *    proceeds -- so a layout is durable before the job's result is
 *    emitted (an *acked* prior is always recoverable);
 *  - every `snapshotEvery` appends, the journal is compacted: the full
 *    store is written to `priors.snapshot.tmp` (LRU order, oldest
 *    first), fsynced, atomically renamed over `priors.snapshot`, the
 *    directory fsynced, and the journal truncated;
 *  - on startup the snapshot is loaded first, then the journal is
 *    replayed on top. A torn tail -- a partial line from a crash
 *    mid-write, or a record whose CRC does not match -- truncates the
 *    journal at the last good record; everything before it loads.
 *
 * Record format (one JSON object per line):
 *
 *   {"crc":<crc32 of the serialized "put" object>,"put":{
 *     "id":"...","region":[x0,y0,x1,y1],"n":<instances>,
 *     "qubits":[[qubit,x,y,freqHz],...],
 *     "segments":[[qubitA,qubitB,ordinal,x,y,freqHz],...]}}
 *
 * Doubles serialize through JsonValue::number's shortest-round-trip
 * literal, so a reloaded layout is bitwise-identical to the captured
 * one -- the property the crash-recovery suite asserts.
 *
 * Failpoint sites (util/failpoint.hpp): `prior_store.append` after a
 * journal record is written+synced, `prior_store.snapshot` after the
 * snapshot temp file is written but *before* the atomic rename, and
 * `prior_store.load` at startup. Injected errors degrade gracefully
 * (the store keeps serving from memory); crashes exercise recovery.
 *
 * Thread-safe: all public methods lock internally.
 */

#ifndef QPLACER_SERVICE_PRIOR_STORE_HPP
#define QPLACER_SERVICE_PRIOR_STORE_HPP

#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "pipeline/incremental.hpp"
#include "service/json.hpp"

namespace qplacer {

/** PriorStore configuration. */
struct PriorStoreOptions
{
    /** Entries kept; least-recently-used evicted beyond this. */
    int capacity = 64;

    /**
     * Directory for the journal + snapshot pair; created if missing.
     * Empty keeps the store memory-only (the pre-existing behaviour).
     */
    std::string stateDir;

    /** Journal appends between snapshot compactions. */
    int snapshotEvery = 32;
};

/** Bounded LRU PriorLayout store; see the file header for contract. */
class PriorStore
{
  public:
    /** Opens (and replays) the state directory when one is set. */
    explicit PriorStore(PriorStoreOptions options = {});

    /** Closes the journal (already durable; nothing else to flush). */
    ~PriorStore();

    PriorStore(const PriorStore &) = delete;
    PriorStore &operator=(const PriorStore &) = delete;

    /**
     * Insert or update @p id (promoting it to most-recently-used) and,
     * when persistent, journal it durably before returning. A
     * persistence failure (injected or real) is logged and leaves the
     * in-memory store correct -- serving degrades, it does not stop.
     */
    void put(const std::string &id,
             std::shared_ptr<const PriorLayout> prior);

    /** Lookup by job id, promoting on hit; null when absent. */
    std::shared_ptr<const PriorLayout> get(const std::string &id);

    /** Entries currently held. */
    int size() const;

    /** Ids in LRU order, oldest (next to evict) first. */
    std::vector<std::string> ids() const;

    /** Records loaded from disk at construction (tests/logging). */
    int loadedFromDisk() const { return loaded_; }

    /** Serialize one prior as the "put" record payload (no CRC). */
    static JsonValue priorToJson(const std::string &id,
                                 const PriorLayout &prior);

    /**
     * Parse a "put" payload back into an id + layout; false with a
     * message on a malformed record.
     */
    static bool priorFromJson(const JsonValue &payload, std::string &id,
                              PriorLayout &prior, std::string *error);

  private:
    void putLocked(const std::string &id,
                   std::shared_ptr<const PriorLayout> prior);
    void promoteLocked(const std::string &id);
    /** Append one durable record; true once it is written + fsync'd. */
    bool appendJournalLocked(const std::string &id,
                             const PriorLayout &prior);
    void snapshotLocked();
    void loadLocked();

    /** Replay one NDJSON file; returns bytes of the valid prefix. */
    long replayFileLocked(const std::string &path, bool truncate_torn);

    PriorStoreOptions options_;

    mutable std::mutex mu_;
    std::map<std::string, std::shared_ptr<const PriorLayout>> priors_;
    std::deque<std::string> order_; ///< Front = evict next.
    int appendsSinceSnapshot_ = 0;
    int loaded_ = 0;
    int journalFd_ = -1;         ///< Open append fd; -1 = memory-only.
    bool persistBroken_ = false; ///< Persistence failed; warn once.
};

} // namespace qplacer

#endif // QPLACER_SERVICE_PRIOR_STORE_HPP
