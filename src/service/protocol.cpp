#include "service/protocol.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "pipeline/overrides.hpp"
#include "util/logging.hpp"

namespace qplacer {

namespace {

bool
failParse(std::string *error, const std::string &message)
{
    if (error != nullptr)
        *error = message;
    return false;
}

/**
 * True if @p v is an integer representable as int. The range check
 * runs before any cast: static_cast<int> of an out-of-range double
 * is undefined behavior, so untrusted values must be vetted first.
 */
bool
isSmallNonNegativeInt(double v)
{
    return v >= 0.0 && v <= 2147483647.0 && std::floor(v) == v;
}

/** Non-negative integer from a Number literal (uint64 seeds). */
bool
parseSeed(const JsonValue &v, std::uint64_t &out)
{
    if (!v.isNumber())
        return false;
    const std::string &text = v.numberText();
    if (text.empty() || text[0] == '-')
        return false;
    errno = 0;
    char *end = nullptr;
    out = std::strtoull(text.c_str(), &end, 10);
    return errno == 0 && end != text.c_str() && *end == '\0';
}

bool
parseSubmit(const JsonValue &doc, Request &out, std::string *error)
{
    SubmitRequest &req = out.submit;
    req.id = out.id;

    const JsonValue *topology = doc.find("topology");
    if (!topology || !topology->isString() || topology->asString().empty())
        return failParse(error, "submit requires a string 'topology'");
    req.topology = topology->asString();

    if (const JsonValue *mode = doc.find("mode")) {
        if (!mode->isString())
            return failParse(error, "'mode' must be a string");
        const std::string &name = mode->asString();
        if (name == "qplacer")
            req.mode = PlacerMode::Qplacer;
        else if (name == "classic")
            req.mode = PlacerMode::Classic;
        else if (name == "human")
            req.mode = PlacerMode::Human;
        else
            return failParse(error, str("unknown mode '", name,
                                        "' (expected qplacer|classic|"
                                        "human)"));
    }

    if (const JsonValue *seed = doc.find("seed")) {
        if (!parseSeed(*seed, req.seed))
            return failParse(error,
                             "'seed' must be a non-negative integer");
    }

    if (const JsonValue *segment = doc.find("segment")) {
        if (!segment->isNumber() || !(segment->asDouble() > 0.0))
            return failParse(error, "'segment' must be a positive number");
        req.segmentUm = segment->asDouble();
    }

    if (const JsonValue *set = doc.find("set")) {
        if (!set->isObject())
            return failParse(error, "'set' must be an object");
        for (const JsonValue::Member &m : set->members()) {
            if (!isKnownSetKey(m.first))
                return failParse(error, str("unknown set key '", m.first,
                                            "' (see docs/PROTOCOL.md)"));
            // Config re-parses from text, so every scalar flattens to
            // its literal; getBool accepts 0/1/true/false.
            switch (m.second.kind()) {
            case JsonValue::Kind::String:
                req.set.set(m.first, m.second.asString());
                break;
            case JsonValue::Kind::Number:
                req.set.set(m.first, m.second.numberText());
                break;
            case JsonValue::Kind::Bool:
                req.set.set(m.first, m.second.asBool() ? "1" : "0");
                break;
            default:
                return failParse(error, str("set key '", m.first,
                                            "' must be a scalar"));
            }
        }
    }

    if (const JsonValue *progress = doc.find("progress")) {
        if (!progress->isNumber())
            return failParse(error,
                             "'progress' must be a non-negative integer");
        const double v = progress->asDouble();
        if (!isSmallNonNegativeInt(v))
            return failParse(error,
                             "'progress' must be a non-negative integer");
        req.progressEvery = static_cast<int>(v);
    }

    if (const JsonValue *deadline = doc.find("deadline_ms")) {
        if (!deadline->isNumber() || !(deadline->asDouble() > 0.0) ||
            !(deadline->asDouble() <= 1e9))
            return failParse(error, "'deadline_ms' must be a positive "
                                    "number of milliseconds (<= 1e9)");
        req.deadlineMs = deadline->asDouble();
    }

    if (const JsonValue *layout = doc.find("layout")) {
        if (!layout->isBool())
            return failParse(error, "'layout' must be a boolean");
        req.wantLayout = layout->asBool();
    }

    if (const JsonValue *base = doc.find("base")) {
        if (!base->isString() || base->asString().empty())
            return failParse(error,
                             "'base' must be a non-empty job id string");
        req.baseId = base->asString();
        if (req.mode == PlacerMode::Human)
            return failParse(
                error, "incremental re-place requires qplacer|classic mode");
    }

    if (const JsonValue *portfolio = doc.find("portfolio")) {
        if (!portfolio->isObject())
            return failParse(error, "'portfolio' must be an object");
        const JsonValue *seeds = portfolio->find("seeds");
        if (!seeds || !seeds->isNumber() ||
            !isSmallNonNegativeInt(seeds->asDouble()) ||
            seeds->asDouble() < 1.0)
            return failParse(error,
                             "'portfolio.seeds' must be a positive integer");
        req.portfolioSeeds = static_cast<int>(seeds->asDouble());
        if (const JsonValue *prune = portfolio->find("prune_at")) {
            if (!prune->isNumber() ||
                !isSmallNonNegativeInt(prune->asDouble()) ||
                prune->asDouble() < 1.0)
                return failParse(
                    error,
                    "'portfolio.prune_at' must be a positive integer");
            req.portfolioPruneAt = static_cast<int>(prune->asDouble());
        }
        if (const JsonValue *keep = portfolio->find("keep_frac")) {
            if (!keep->isNumber() || !(keep->asDouble() > 0.0) ||
                keep->asDouble() > 1.0)
                return failParse(
                    error, "'portfolio.keep_frac' must be in (0, 1]");
            req.portfolioKeepFrac = keep->asDouble();
        }
        if (!req.baseId.empty() && req.portfolioSeeds > 1)
            return failParse(
                error, "'portfolio' and 'base' are mutually exclusive");
        if (req.mode == PlacerMode::Human && req.portfolioSeeds > 1)
            return failParse(
                error, "portfolio requires qplacer|classic mode");
    }

    if (const JsonValue *dirty = doc.find("dirty_qubits")) {
        if (req.baseId.empty())
            return failParse(error,
                             "'dirty_qubits' requires a 'base' job id");
        if (!dirty->isArray())
            return failParse(error,
                             "'dirty_qubits' must be an array of qubit ids");
        for (const JsonValue &item : dirty->items()) {
            if (!item.isNumber())
                return failParse(
                    error, "'dirty_qubits' must be an array of qubit ids");
            const double v = item.asDouble();
            if (!isSmallNonNegativeInt(v))
                return failParse(
                    error, "'dirty_qubits' entries must be non-negative "
                           "integers");
            req.dirtyQubits.push_back(static_cast<int>(v));
        }
    }

    if (const JsonValue *dirty = doc.find("dirty_couplers")) {
        if (req.baseId.empty())
            return failParse(error,
                             "'dirty_couplers' requires a 'base' job id");
        if (!dirty->isArray())
            return failParse(error, "'dirty_couplers' must be an array of "
                                    "[qubit_a, qubit_b] pairs");
        for (const JsonValue &item : dirty->items()) {
            if (!item.isArray() || item.items().size() != 2)
                return failParse(error,
                                 "'dirty_couplers' must be an array of "
                                 "[qubit_a, qubit_b] pairs");
            int pair[2];
            for (int k = 0; k < 2; ++k) {
                const JsonValue &endp = item.items()[static_cast<
                    std::size_t>(k)];
                if (!endp.isNumber() ||
                    !isSmallNonNegativeInt(endp.asDouble()))
                    return failParse(
                        error, "'dirty_couplers' endpoints must be "
                               "non-negative integers");
                pair[k] = static_cast<int>(endp.asDouble());
            }
            req.dirtyCouplers.emplace_back(pair[0], pair[1]);
        }
    }
    return true;
}

/** Parse {"type":"failpoint","site":...,"action":...[,"ms":N]}. */
bool
parseFailpoint(const JsonValue &doc, Request &out, std::string *error)
{
    const JsonValue *site = doc.find("site");
    if (!site || !site->isString() || site->asString().empty())
        return failParse(error, "failpoint requires a string 'site'");
    out.failpointSite = site->asString();

    const JsonValue *action = doc.find("action");
    if (!action || !action->isString())
        return failParse(error, "failpoint requires a string 'action' "
                                "(off|error|crash|delay)");
    const std::string &name = action->asString();
    if (name == "off" || name == "error" || name == "crash") {
        out.failpointSpec = name;
        return true;
    }
    if (name == "delay") {
        const JsonValue *ms = doc.find("ms");
        if (!ms || !ms->isNumber() || !isSmallNonNegativeInt(ms->asDouble()))
            return failParse(error, "failpoint action 'delay' requires a "
                                    "non-negative integer 'ms'");
        out.failpointSpec =
            "delay(" + std::to_string(static_cast<int>(ms->asDouble())) +
            ")";
        return true;
    }
    return failParse(error, str("unknown failpoint action '", name,
                                "' (expected off|error|crash|delay)"));
}

} // namespace

bool
parseRequest(const std::string &line, Request &out, std::string *error)
{
    out = Request{};

    JsonValue doc;
    std::string parse_error;
    if (!parseJson(line, doc, &parse_error))
        return failParse(error, str("invalid JSON: ", parse_error));
    if (!doc.isObject())
        return failParse(error, "request must be a JSON object");

    // The id is extracted before type validation so even a bogus
    // request can be answered with the job it named.
    if (const JsonValue *id = doc.find("id")) {
        if (id->isString())
            out.id = id->asString();
    }

    const JsonValue *type = doc.find("type");
    if (!type || !type->isString())
        return failParse(error, "request requires a string 'type'");
    const std::string &name = type->asString();

    if (name == "ping") {
        out.type = Request::Type::Ping;
        return true;
    }
    if (name == "shutdown") {
        out.type = Request::Type::Shutdown;
        return true;
    }
    if (name == "cancel") {
        out.type = Request::Type::Cancel;
        if (out.id.empty())
            return failParse(error, "cancel requires a string 'id'");
        return true;
    }
    if (name == "submit") {
        out.type = Request::Type::Submit;
        if (out.id.empty())
            return failParse(error, "submit requires a string 'id'");
        return parseSubmit(doc, out, error);
    }
    if (name == "failpoint") {
        out.type = Request::Type::Failpoint;
        return parseFailpoint(doc, out, error);
    }
    return failParse(error, str("unknown request type '", name,
                                "' (expected submit|cancel|ping|"
                                "shutdown|failpoint)"));
}

JsonValue
makeHello(int workers)
{
    JsonValue v = JsonValue::object();
    v.set("type", JsonValue::string("hello"));
    v.set("schema", JsonValue::string(kServeSchema));
    v.set("workers", JsonValue::number(static_cast<std::int64_t>(workers)));
    return v;
}

JsonValue
makeAck(const std::string &id)
{
    JsonValue v = JsonValue::object();
    v.set("type", JsonValue::string("ack"));
    v.set("id", JsonValue::string(id));
    return v;
}

JsonValue
makeError(const std::string &id, const std::string &message)
{
    JsonValue v = JsonValue::object();
    v.set("type", JsonValue::string("error"));
    if (!id.empty())
        v.set("id", JsonValue::string(id));
    v.set("message", JsonValue::string(message));
    return v;
}

JsonValue
makeErrorCode(const std::string &id, const std::string &code,
              const std::string &message)
{
    JsonValue v = makeError(id, message);
    v.set("code", JsonValue::string(code));
    return v;
}

JsonValue
makeOverloaded(const std::string &id, int queue_depth,
               double retry_after_ms)
{
    JsonValue v = makeErrorCode(
        id, "overloaded",
        str("queue is full (", queue_depth,
            " jobs waiting); retry after backoff"));
    v.set("queue_depth",
          JsonValue::number(static_cast<std::int64_t>(queue_depth)));
    v.set("retry_after_ms", JsonValue::number(retry_after_ms));
    return v;
}

JsonValue
makePong()
{
    JsonValue v = JsonValue::object();
    v.set("type", JsonValue::string("pong"));
    return v;
}

JsonValue
makePong(int queue_depth, int active_jobs)
{
    JsonValue v = makePong();
    v.set("queue_depth",
          JsonValue::number(static_cast<std::int64_t>(queue_depth)));
    v.set("active_jobs",
          JsonValue::number(static_cast<std::int64_t>(active_jobs)));
    return v;
}

JsonValue
makeBye(int jobs)
{
    JsonValue v = JsonValue::object();
    v.set("type", JsonValue::string("bye"));
    v.set("jobs", JsonValue::number(static_cast<std::int64_t>(jobs)));
    return v;
}

JsonValue
makeStageBegin(const std::string &id, const std::string &stage)
{
    JsonValue v = JsonValue::object();
    v.set("type", JsonValue::string("progress"));
    v.set("id", JsonValue::string(id));
    v.set("event", JsonValue::string("stage_begin"));
    v.set("stage", JsonValue::string(stage));
    return v;
}

JsonValue
makeStageEnd(const std::string &id, const std::string &stage,
             double seconds)
{
    JsonValue v = JsonValue::object();
    v.set("type", JsonValue::string("progress"));
    v.set("id", JsonValue::string(id));
    v.set("event", JsonValue::string("stage_end"));
    v.set("stage", JsonValue::string(stage));
    v.set("seconds", JsonValue::number(seconds));
    return v;
}

JsonValue
makeIteration(const std::string &id, int iteration, double overflow,
              double hpwl)
{
    JsonValue v = JsonValue::object();
    v.set("type", JsonValue::string("progress"));
    v.set("id", JsonValue::string(id));
    v.set("event", JsonValue::string("iteration"));
    v.set("iteration",
          JsonValue::number(static_cast<std::int64_t>(iteration)));
    v.set("overflow", JsonValue::number(overflow));
    v.set("hpwl_um", JsonValue::number(hpwl));
    return v;
}

JsonValue
makeResult(const std::string &id, JsonValue report)
{
    JsonValue v = JsonValue::object();
    v.set("type", JsonValue::string("result"));
    v.set("id", JsonValue::string(id));
    v.set("report", std::move(report));
    return v;
}

JsonValue
jobReportJson(const FlowResult &r, std::uint64_t seed)
{
    JsonValue job = JsonValue::object();
    job.set("seed", JsonValue::numberLiteral(std::to_string(seed)));

    JsonValue status = JsonValue::object();
    status.set("code", JsonValue::string(flowCodeName(r.status.code)));
    status.set("stage", JsonValue::string(r.status.stage));
    status.set("message", JsonValue::string(r.status.message));
    job.set("status", std::move(status));

    JsonValue stages = JsonValue::array();
    for (const StageTiming &timing : r.stageTimings) {
        JsonValue s = JsonValue::object();
        s.set("stage", JsonValue::string(timing.stage));
        s.set("seconds", JsonValue::number(timing.seconds));
        stages.push(std::move(s));
    }
    job.set("stages", std::move(stages));

    job.set("cells", JsonValue::number(
                         static_cast<std::int64_t>(r.netlist.numInstances())));
    job.set("freq_slots", JsonValue::number(static_cast<std::int64_t>(
                              r.freqs.numQubitSlots)));

    JsonValue assign_stages = JsonValue::object();
    assign_stages.set("interference",
                      JsonValue::number(r.assignStats.interferenceSeconds));
    assign_stages.set("qubit_color",
                      JsonValue::number(r.assignStats.qubitColorSeconds));
    assign_stages.set("resonator_graph",
                      JsonValue::number(r.assignStats.resonatorGraphSeconds));
    assign_stages.set("resonator_color",
                      JsonValue::number(r.assignStats.resonatorColorSeconds));
    JsonValue assign = JsonValue::object();
    assign.set("stages", std::move(assign_stages));
    job.set("assign", std::move(assign));

    JsonValue build_stages = JsonValue::object();
    build_stages.set("segments",
                     JsonValue::number(r.buildStats.segmentsSeconds));
    build_stages.set("instances",
                     JsonValue::number(r.buildStats.instancesSeconds));
    build_stages.set("warm_start",
                     JsonValue::number(r.buildStats.warmStartSeconds));
    build_stages.set("finalize",
                     JsonValue::number(r.buildStats.finalizeSeconds));
    JsonValue build = JsonValue::object();
    build.set("threads", JsonValue::number(static_cast<std::int64_t>(
                             r.buildStats.threads)));
    build.set("stages", std::move(build_stages));
    job.set("build", std::move(build));

    JsonValue place = JsonValue::object();
    place.set("iterations", JsonValue::number(static_cast<std::int64_t>(
                                r.place.iterations)));
    place.set("converged", JsonValue::boolean(r.place.converged));
    place.set("cancelled", JsonValue::boolean(r.place.cancelled));
    place.set("overflow", JsonValue::number(r.place.finalOverflow));
    place.set("hpwl_um", JsonValue::number(r.place.finalHpwl));
    job.set("place", std::move(place));

    JsonValue legal_stages = JsonValue::object();
    legal_stages.set("spiral", JsonValue::number(r.legal.spiralSeconds));
    legal_stages.set("flow_refine",
                     JsonValue::number(r.legal.flowRefineSeconds));
    legal_stages.set("tetris", JsonValue::number(r.legal.tetrisSeconds));
    legal_stages.set("integration",
                     JsonValue::number(r.legal.integrationSeconds));
    JsonValue legal = JsonValue::object();
    legal.set("legal", JsonValue::boolean(r.legal.legal));
    legal.set("qubit_disp_um",
              JsonValue::number(r.legal.qubitDisplacementUm));
    legal.set("segment_disp_um",
              JsonValue::number(r.legal.segmentDisplacementUm));
    legal.set("unintegrated", JsonValue::number(static_cast<std::int64_t>(
                                  r.legal.integration.unintegrated)));
    legal.set("stages", std::move(legal_stages));
    job.set("legal", std::move(legal));

    JsonValue area = JsonValue::object();
    area.set("amer_um2", JsonValue::number(r.area.amerUm2));
    area.set("apoly_um2", JsonValue::number(r.area.apolyUm2));
    area.set("utilization", JsonValue::number(r.area.utilization));
    job.set("area", std::move(area));

    JsonValue hotspots = JsonValue::object();
    hotspots.set("ph_percent", JsonValue::number(r.hotspots.phPercent));
    hotspots.set("pairs", JsonValue::number(static_cast<std::int64_t>(
                              r.hotspots.pairs.size())));
    hotspots.set("impacted_qubits",
                 JsonValue::number(static_cast<std::int64_t>(
                     r.hotspots.impactedQubits.size())));
    job.set("hotspots", std::move(hotspots));

    // The CLI's fidelity proxy needs circuit evaluation the service
    // does not run; null keeps the job shape compatible.
    job.set("fidelity", JsonValue::null());

    if (r.detailed.ran) {
        JsonValue det = JsonValue::object();
        det.set("sweeps", JsonValue::number(static_cast<std::int64_t>(
                              r.detailed.sweeps)));
        det.set("proposed", JsonValue::number(static_cast<std::int64_t>(
                                r.detailed.proposed)));
        det.set("accepted", JsonValue::number(static_cast<std::int64_t>(
                                r.detailed.accepted)));
        det.set("swaps", JsonValue::number(static_cast<std::int64_t>(
                             r.detailed.swaps)));
        det.set("relocates", JsonValue::number(static_cast<std::int64_t>(
                                 r.detailed.relocates)));
        det.set("hpwl_before_um", JsonValue::number(r.detailed.hpwlBefore));
        det.set("hpwl_after_um", JsonValue::number(r.detailed.hpwlAfter));
        det.set("collisions_before",
                JsonValue::number(static_cast<std::int64_t>(
                    r.detailed.collisionsBefore)));
        det.set("collisions_after",
                JsonValue::number(static_cast<std::int64_t>(
                    r.detailed.collisionsAfter)));
        det.set("seconds", JsonValue::number(r.detailed.seconds));
        job.set("detailed", std::move(det));
    }

    if (r.portfolioStats.portfolio) {
        const PortfolioStats &p = r.portfolioStats;
        JsonValue candidates = JsonValue::array();
        for (const PortfolioCandidate &c : p.candidates) {
            JsonValue cand = JsonValue::object();
            cand.set("seed",
                     JsonValue::numberLiteral(std::to_string(c.seed)));
            cand.set("pruned_at", JsonValue::number(static_cast<std::int64_t>(
                                      c.prunedAtIters)));
            cand.set("probe_overflow", JsonValue::number(c.probeOverflow));
            cand.set("probe_hpwl_um", JsonValue::number(c.probeHpwl));
            cand.set("ran_full", JsonValue::boolean(c.ranFull));
            cand.set("final_hpwl_um", JsonValue::number(c.finalHpwl));
            cand.set("winner", JsonValue::boolean(c.winner));
            candidates.push(std::move(cand));
        }
        JsonValue portfolio = JsonValue::object();
        portfolio.set("seeds", JsonValue::number(static_cast<std::int64_t>(
                                   p.seeds)));
        portfolio.set("rungs", JsonValue::number(static_cast<std::int64_t>(
                                   p.rungs)));
        portfolio.set("winner_seed",
                      JsonValue::numberLiteral(std::to_string(p.winnerSeed)));
        portfolio.set("candidates", std::move(candidates));
        job.set("portfolio", std::move(portfolio));
    }

    if (r.multidie.active) {
        const CrossCutMetrics &m = r.multidie;
        JsonValue dies = JsonValue::array();
        for (std::size_t d = 0; d < m.dieInstances.size(); ++d) {
            JsonValue die = JsonValue::object();
            die.set("instances", JsonValue::number(static_cast<
                                     std::int64_t>(m.dieInstances[d])));
            die.set("utilization", JsonValue::number(m.dieUtilization[d]));
            dies.push(std::move(die));
        }
        JsonValue multidie = JsonValue::object();
        multidie.set("dies",
                     JsonValue::number(static_cast<std::int64_t>(m.dies)));
        multidie.set("crossing_couplers",
                     JsonValue::number(static_cast<std::int64_t>(
                         m.crossingCouplers)));
        multidie.set("crossing_wl_um",
                     JsonValue::number(m.crossingWirelengthUm));
        multidie.set("per_die", std::move(dies));
        job.set("multidie", std::move(multidie));
    }

    if (r.incremental.incremental) {
        JsonValue inc = JsonValue::object();
        inc.set("reused_prior", JsonValue::boolean(r.incremental.reusedPrior));
        inc.set("mapped", JsonValue::number(static_cast<std::int64_t>(
                              r.incremental.mappedInstances)));
        inc.set("fresh", JsonValue::number(static_cast<std::int64_t>(
                             r.incremental.freshInstances)));
        inc.set("dirty", JsonValue::number(static_cast<std::int64_t>(
                             r.incremental.dirtyInstances)));
        inc.set("movable", JsonValue::number(static_cast<std::int64_t>(
                               r.incremental.movableInstances)));
        job.set("incremental", std::move(inc));
    }

    job.set("seconds", JsonValue::number(r.seconds));
    return job;
}

JsonValue
layoutJson(const Netlist &netlist)
{
    JsonValue out = JsonValue::array();
    for (const Instance &inst : netlist.instances()) {
        JsonValue row = JsonValue::array();
        row.push(JsonValue::number(static_cast<std::int64_t>(inst.id)));
        row.push(JsonValue::string(
            inst.kind == InstanceKind::Qubit ? "qubit" : "segment"));
        row.push(JsonValue::number(inst.pos.x));
        row.push(JsonValue::number(inst.pos.y));
        out.push(std::move(row));
    }
    return out;
}

} // namespace qplacer
