/**
 * @file
 * The default Fig. 7 stage implementations and the stage runner.
 */

#include <exception>

#include "pipeline/context.hpp"
#include "pipeline/stage.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace qplacer {

const char *
flowCodeName(FlowCode code)
{
    switch (code) {
      case FlowCode::Ok:
        return "ok";
      case FlowCode::InvalidParams:
        return "invalid_params";
      case FlowCode::Cancelled:
        return "cancelled";
      case FlowCode::StageError:
        return "stage_error";
      case FlowCode::DeadlineExceeded:
        return "deadline_exceeded";
    }
    return "?";
}

namespace {

/** Fig. 7a: graph-colouring frequency assignment. */
class AssignStage final : public FlowStage
{
  public:
    const char *name() const override { return "assign"; }

    void run(FlowContext &ctx) const override
    {
        const FrequencyAssigner assigner(ctx.params.assigner);
        ctx.result.freqs =
            assigner.assign(*ctx.topo, &ctx.result.assignStats);
    }
};

/** Fig. 7b: padding + partitioning into the placement netlist. */
class BuildStage final : public FlowStage
{
  public:
    const char *name() const override { return "build"; }

    void run(FlowContext &ctx) const override
    {
        const NetlistBuilder builder(ctx.params.partition);
        ctx.result.netlist =
            builder.build(*ctx.topo, ctx.result.freqs,
                          ctx.params.targetUtil, ctx.pool,
                          &ctx.result.buildStats);
        // Multi-die only: widen the region by the cut gaps (so per-die
        // usable area matches the single-die total) and record the
        // partition on the netlist. Inactive specs leave the netlist
        // bitwise-identical to the pre-multidie build.
        const DieSpec &dies = ctx.topo->dies;
        if (dies.active()) {
            Rect region = ctx.result.netlist.region();
            region.hi.x += (dies.cols - 1) * dies.cutGapUm;
            region.hi.y += (dies.rows - 1) * dies.cutGapUm;
            ctx.result.netlist.setRegion(region);
            ctx.result.netlist.setDieSpec(dies);
        }
    }
};

/** Human baseline: manual grid-style layout replaces build/place/legal. */
class HumanPlaceStage final : public FlowStage
{
  public:
    const char *name() const override { return "human_place"; }

    void run(FlowContext &ctx) const override
    {
        const HumanPlacer human(ctx.params.partition);
        ctx.result.netlist = human.place(*ctx.topo, ctx.result.freqs);
    }
};

/** Fig. 7c: frequency-aware electrostatic global placement. */
class GlobalPlaceStage final : public FlowStage
{
  public:
    const char *name() const override { return "place"; }

    void run(FlowContext &ctx) const override
    {
        if (ctx.logging && ctx.pool && ctx.pool->threads() > 1) {
            inform(str("global placement running on ",
                       ctx.pool->threads(), " threads"));
        }

        PlaceMonitor monitor;
        monitor.cancel = ctx.cancel;
        if (ctx.observer) {
            monitor.onIteration = [&ctx](const PlaceProgress &progress) {
                ctx.observer->onIteration(ctx, progress);
            };
        }

        const GlobalPlacer placer(ctx.params.placer);
        ctx.result.place =
            placer.place(ctx.result.netlist, ctx.pool, monitor);
        if (ctx.result.place.cancelled) {
            ctx.result.status = {FlowCode::Cancelled, name(),
                                 "cancelled during global placement"};
        }
    }
};

/** Fig. 7d: spiral + min-cost-flow + Tetris + integration repair. */
class LegalizeStage final : public FlowStage
{
  public:
    const char *name() const override { return "legalize"; }

    void run(FlowContext &ctx) const override
    {
        const Legalizer legalizer(ctx.params.legalizer);
        ctx.result.legal =
            legalizer.legalize(ctx.result.netlist, ctx.cancel);
        if (ctx.result.legal.cancelled) {
            ctx.result.status = {FlowCode::Cancelled, name(),
                                 "cancelled during legalization"};
        }
    }
};

/** Post-legalization annealing refinement (anneal.hpp), opt-in. */
class DetailedPlaceStage final : public FlowStage
{
  public:
    const char *name() const override { return "detailed"; }

    void run(FlowContext &ctx) const override
    {
        const DetailedPlacer placer(ctx.params.detailed,
                                    ctx.params.legalizer,
                                    ctx.params.hotspot);
        ctx.result.detailed = placer.refine(
            ctx.result.netlist, ctx.params.placer.seed, ctx.cancel);
        if (ctx.result.detailed.cancelled) {
            ctx.result.status = {FlowCode::Cancelled, name(),
                                 "cancelled during detailed placement"};
        }
    }
};

/** Fig. 7e: area + hotspot metrics and the end-of-flow summary line. */
class MetricsStage final : public FlowStage
{
  public:
    const char *name() const override { return "metrics"; }

    void run(FlowContext &ctx) const override
    {
        ctx.result.area = computeArea(ctx.result.netlist);
        ctx.result.hotspots =
            analyzeHotspots(ctx.result.netlist, ctx.params.hotspot);
        if (ctx.result.netlist.dieSpec().active()) {
            ctx.result.multidie = computeCrossCut(
                ctx.result.netlist,
                DiePlan::resolve(ctx.result.netlist.dieSpec(),
                                 ctx.result.netlist.region()));
        }
        if (ctx.logging) {
            inform(str(placerModeName(ctx.params.mode), " flow on ",
                       ctx.topo->name,
                       ": #cells=", ctx.result.netlist.numInstances(),
                       " Ph=", ctx.result.hotspots.phPercent,
                       "% util=", ctx.result.area.utilization));
        }
    }
};

} // namespace

std::unique_ptr<FlowStage>
makeAssignStage()
{
    return std::make_unique<AssignStage>();
}

std::unique_ptr<FlowStage>
makeBuildStage()
{
    return std::make_unique<BuildStage>();
}

std::unique_ptr<FlowStage>
makeGlobalPlaceStage()
{
    return std::make_unique<GlobalPlaceStage>();
}

std::unique_ptr<FlowStage>
makeMetricsStage()
{
    return std::make_unique<MetricsStage>();
}

std::vector<std::unique_ptr<FlowStage>>
makeDefaultStages(const FlowParams &params)
{
    std::vector<std::unique_ptr<FlowStage>> stages;
    stages.push_back(std::make_unique<AssignStage>());
    if (params.mode == PlacerMode::Human) {
        stages.push_back(std::make_unique<HumanPlaceStage>());
    } else {
        stages.push_back(std::make_unique<BuildStage>());
        stages.push_back(std::make_unique<GlobalPlaceStage>());
        stages.push_back(std::make_unique<LegalizeStage>());
        // detailed.iters == 0 is a contractual no-op: the stage is not
        // even inserted, so the stage list (and with it every timing
        // and observer event) is bitwise-identical to the pre-detailed
        // flow.
        if (params.detailed.enabled && params.detailed.iters > 0)
            stages.push_back(std::make_unique<DetailedPlaceStage>());
    }
    stages.push_back(std::make_unique<MetricsStage>());
    return stages;
}

void
runStages(FlowContext &ctx,
          const std::vector<std::unique_ptr<FlowStage>> &stages)
{
    Timer total;
    for (const auto &stage : stages) {
        if (ctx.cancelled()) {
            ctx.result.status = {FlowCode::Cancelled, stage->name(),
                                 "cancelled before stage"};
            break;
        }
        if (ctx.observer)
            ctx.observer->onStageBegin(ctx, stage->name());

        Timer timer;
        bool failed = false;
        try {
            stage->run(ctx);
        } catch (const std::exception &e) {
            ctx.result.status = {FlowCode::StageError, stage->name(),
                                 e.what()};
            failed = true;
        }

        const StageTiming timing{stage->name(), timer.seconds()};
        ctx.result.stageTimings.push_back(timing);
        if (ctx.observer)
            ctx.observer->onStageEnd(ctx, timing);

        // A stage either failed or flagged cancellation from within
        // (placer/legalizer polls); later stages must not run on the
        // partial result.
        if (failed || !ctx.result.status.ok())
            break;
    }
    ctx.result.seconds = total.seconds();
}

} // namespace qplacer
