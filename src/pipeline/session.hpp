/**
 * @file
 * PlacementSession: the reusable, batch-capable front end of the
 * staged flow (the production entry point the ROADMAP's north star
 * asks for).
 *
 * A session amortizes the expensive per-run machinery across many
 * placements: the worker pool survives between run() calls (no thread
 * spawn/join per placement) and the process-wide spectral-plan cache
 * stays warm. On top of that it adds what a service needs and the
 * one-shot QplacerFlow cannot give: non-throwing structured errors
 * (FlowResult::status), FlowObserver progress streaming, cooperative
 * cancellation, and concurrent execution of independent jobs.
 *
 *   PlacementSession session({.flow = params, .workers = 8});
 *   std::vector<PlacementJob> jobs = ...;   // one topology+params each
 *   auto results = session.runBatch(jobs);  // all jobs, concurrently
 *
 * Determinism contract: a batch job executes its placement single-
 * threaded whenever jobs run concurrently (workers > 1), so
 * runBatch(jobs) is **bitwise-identical** to running each job through
 * QplacerFlow::run with the same parameters and placer.threads = 1 --
 * parallelism across jobs instead of inside one, same numbers either
 * way. With workers <= 1 jobs run in order and keep their requested
 * intra-job thread count.
 */

#ifndef QPLACER_PIPELINE_SESSION_HPP
#define QPLACER_PIPELINE_SESSION_HPP

#include <memory>
#include <vector>

#include "pipeline/flow.hpp"
#include "pipeline/incremental.hpp"
#include "topology/topology.hpp"
#include "util/cancel.hpp"
#include "util/thread_pool.hpp"

namespace qplacer {

/** One independent placement: a device plus its full configuration. */
struct PlacementJob
{
    Topology topo;
    FlowParams params; ///< Seed lives in params.placer.seed.
};

/** Session-level configuration. */
struct SessionParams
{
    /** Default flow parameters, used by run(topo) without overrides. */
    FlowParams flow;

    /**
     * Concurrent jobs in runBatch (not intra-placement threads).
     * 0 = hardware concurrency, capped like ThreadPool's auto choice;
     * 1 = serial batches.
     */
    int workers = 0;
};

/** Reusable staged-flow engine; see the file header for the contract. */
class PlacementSession
{
  public:
    explicit PlacementSession(SessionParams params = {});

    /** Place @p topo with the session's default parameters. */
    FlowResult run(const Topology &topo);

    /**
     * Place @p topo with explicit parameters. Unlike QplacerFlow::run
     * this never throws for flow-level failures: invalid parameters,
     * stage errors, and cancellation all come back in
     * FlowResult::status.
     */
    FlowResult run(const Topology &topo, const FlowParams &params);

    /**
     * Execute independent placement jobs, `workers` at a time, on one
     * shared pool. Results arrive indexed like @p jobs; each job's
     * outcome (including per-job errors) is in its FlowResult::status.
     * Cancellation applies to the whole batch: jobs already running
     * stop at their next poll, jobs not yet started report Cancelled
     * without running.
     */
    std::vector<FlowResult> runBatch(const std::vector<PlacementJob> &jobs);

    /**
     * Homogeneous batch: one device under many parameter sets (a seed
     * sweep, a knob study). Same contract as the PlacementJob
     * overload, but every job borrows @p topo instead of carrying a
     * copy -- prefer this for large same-device batches.
     */
    std::vector<FlowResult> runBatch(const Topology &topo,
                                     const std::vector<FlowParams> &jobs);

    /**
     * Multi-start portfolio: place @p topo under seeds
     * placer.seed .. placer.seed + seeds - 1 (wrapping mod 2^64),
     * candidates running concurrently on the batch pool, each
     * single-threaded. Candidates first run truncated probe placements
     * (assign -> build -> place, budget params.portfolio.pruneAt
     * iterations, doubling per rung); at each checkpoint the ranking
     * on the recorded PlaceProgress trajectory tails (overflow, then
     * HPWL) drops the bottom 1 - keepFrac. Survivors then run the
     * complete flow -- including the detailed stage when enabled --
     * and the best final layout (legal first, then lowest HPWL, then
     * lowest seed offset) is returned with PortfolioStats attached.
     *
     * Determinism contract: every candidate's full run places
     * single-threaded with its own seed, so the winner is
     * bitwise-identical to a serial QplacerFlow::run of that seed with
     * placer.threads = 1 (and the same detailed knobs). The base seed
     * is exempt from pruning, so the portfolio result is never worse
     * than the single-seed flow. With seeds <= 1 (or Human mode) this
     * forwards to run() -- the exact single-seed path, bitwise.
     *
     * @p n_seeds > 0 overrides params.portfolio.seeds. The external
     * observer is detached while candidates run (per-candidate events
     * would interleave meaninglessly); it is restored on return.
     */
    FlowResult runPortfolio(const Topology &topo, const FlowParams &params,
                            int n_seeds = 0);

    /**
     * Incremental re-place (incremental.hpp): place @p topo warm-
     * started from @p prior, re-placing only the @p delta closure. An
     * empty delta on an unchanged topology reproduces the prior layout
     * exactly (bitwiseSameLayout); a small delta re-solves briefly
     * (params.incremental.maxIters) and re-legalizes just the movers.
     * Non-throwing like run(); Human mode is rejected via status.
     */
    FlowResult runIncremental(const Topology &topo, const FlowParams &params,
                              const PriorLayout &prior,
                              const NetlistDelta &delta = {});

    /**
     * Observe stage and iteration progress (borrowed; null to detach).
     * With workers > 1 callbacks fire concurrently from pool threads;
     * the observer must be thread-safe (FlowContext::jobIndex tells
     * jobs apart).
     */
    void setObserver(FlowObserver *observer) { observer_ = observer; }

    /**
     * The session's cancellation token. cancel() stops the current
     * run/batch at the next poll point; reset() re-arms the session
     * for further work.
     */
    CancelToken &cancelToken() { return cancel_; }

    const SessionParams &params() const { return params_; }

  private:
    /** One batch entry by reference (both borrowed for the call). */
    struct JobRef
    {
        const Topology *topo;
        const FlowParams *params;
    };

    /** Shared implementation of both runBatch overloads. */
    std::vector<FlowResult> runBatchRefs(const std::vector<JobRef> &jobs);

    /**
     * Execute one job on the calling thread. @p pool is the inner
     * (intra-placement) pool, null for serial; @p logging gates
     * inform() chatter.
     */
    FlowResult runJob(const Topology &topo, const FlowParams &params,
                      int job_index, ThreadPool *pool, bool logging);

    /**
     * The shared intra-placement pool for single runs and serial
     * batches, lazily (re)built to match the resolved thread request;
     * null when the request resolves to serial.
     */
    ThreadPool *innerPool(int threads);

    SessionParams params_;
    FlowObserver *observer_ = nullptr;
    CancelToken cancel_;
    std::unique_ptr<ThreadPool> inner_; ///< Intra-placement pool.
    std::unique_ptr<ThreadPool> batch_; ///< Job-level pool (runBatch).
};

} // namespace qplacer

#endif // QPLACER_PIPELINE_SESSION_HPP
