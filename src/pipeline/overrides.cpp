#include "pipeline/overrides.hpp"

namespace qplacer {

const char *const kKnownSetKeys[] = {
    "targetUtil",
    "placer.maxIters",
    "placer.minIters",
    "placer.bins",
    "placer.targetDensity",
    "placer.stopOverflow",
    "placer.freqForce",
    "placer.freqWeight",
    "placer.freqCutoffFactor",
    "placer.threads",
    "assigner.distance2",
    "assigner.detuningThresholdGHz",
    "assigner.referenceEngine",
    "builder.reference",
    "builder.serialBelow",
    "legalizer.cellUm",
    "legalizer.flowRefine",
    "legalizer.flowSparseThreshold",
    "legalizer.flowSparseNeighbors",
    "legalizer.referenceProbes",
    "legalizer.integration",
    "hotspot.adjacencyTolUm",
    "multidie.cutWeight",
    "incremental.maxIters",
    "incremental.snapToleranceUm",
    "detailed.enabled",
    "detailed.iters",
    "detailed.tempStart",
    "detailed.tempDecay",
    "portfolio.seeds",
    "portfolio.pruneAt",
    "portfolio.keepFrac",
};

std::size_t
numKnownSetKeys()
{
    return sizeof(kKnownSetKeys) / sizeof(kKnownSetKeys[0]);
}

bool
isKnownSetKey(const std::string &key)
{
    for (std::size_t i = 0; i < numKnownSetKeys(); ++i)
        if (key == kKnownSetKeys[i])
            return true;
    return false;
}

void
applyOverrides(const Config &cfg, FlowParams &params)
{
    params.targetUtil = cfg.getDouble("targetUtil", params.targetUtil);

    PlacerParams &pp = params.placer;
    pp.maxIters = static_cast<int>(cfg.getInt("placer.maxIters", pp.maxIters));
    pp.minIters = static_cast<int>(cfg.getInt("placer.minIters", pp.minIters));
    pp.bins = static_cast<int>(cfg.getInt("placer.bins", pp.bins));
    pp.targetDensity = cfg.getDouble("placer.targetDensity", pp.targetDensity);
    pp.stopOverflow = cfg.getDouble("placer.stopOverflow", pp.stopOverflow);
    pp.freqForce = cfg.getBool("placer.freqForce", pp.freqForce);
    pp.freqWeight = cfg.getDouble("placer.freqWeight", pp.freqWeight);
    pp.freqCutoffFactor =
        cfg.getDouble("placer.freqCutoffFactor", pp.freqCutoffFactor);
    pp.threads = static_cast<int>(cfg.getInt("placer.threads", pp.threads));
    pp.cutWeight = cfg.getDouble("multidie.cutWeight", pp.cutWeight);

    AssignerParams &ap = params.assigner;
    ap.distance2 = cfg.getBool("assigner.distance2", ap.distance2);
    ap.detuningThresholdHz =
        cfg.getDouble("assigner.detuningThresholdGHz",
                      ap.detuningThresholdHz / 1e9) *
        1e9;
    // The reference assigner/builder engines exist for A/B timing (see
    // bench/assign_scale); outputs are identical either way.
    ap.engine = cfg.getBool("assigner.referenceEngine",
                            ap.engine == AssignEngine::Reference)
                    ? AssignEngine::Reference
                    : AssignEngine::Fast;

    PartitionParams &bp = params.partition;
    bp.buildEngine = cfg.getBool("builder.reference",
                                 bp.buildEngine == BuildEngine::Reference)
                         ? BuildEngine::Reference
                         : BuildEngine::Fast;
    bp.buildSerialBelow = static_cast<int>(
        cfg.getInt("builder.serialBelow", bp.buildSerialBelow));

    LegalizerParams &lp = params.legalizer;
    lp.cellUm = cfg.getDouble("legalizer.cellUm", lp.cellUm);
    lp.flowRefine = cfg.getBool("legalizer.flowRefine", lp.flowRefine);
    lp.flowSparseThreshold = static_cast<int>(
        cfg.getInt("legalizer.flowSparseThreshold", lp.flowSparseThreshold));
    lp.flowSparseNeighbors = static_cast<int>(
        cfg.getInt("legalizer.flowSparseNeighbors", lp.flowSparseNeighbors));
    // The reference probe engine exists for A/B timing (see
    // bench/legalize_scale); layouts are identical either way.
    lp.probeEngine =
        cfg.getBool("legalizer.referenceProbes",
                    lp.probeEngine == ProbeEngine::Reference)
            ? ProbeEngine::Reference
            : ProbeEngine::Fast;
    lp.integration = cfg.getBool("legalizer.integration", lp.integration);

    params.hotspot.adjacencyTolUm =
        cfg.getDouble("hotspot.adjacencyTolUm", params.hotspot.adjacencyTolUm);

    IncrementalPlaceParams &ip = params.incremental;
    ip.maxIters =
        static_cast<int>(cfg.getInt("incremental.maxIters", ip.maxIters));
    ip.snapToleranceUm =
        cfg.getDouble("incremental.snapToleranceUm", ip.snapToleranceUm);

    DetailedPlaceParams &dp = params.detailed;
    dp.enabled = cfg.getBool("detailed.enabled", dp.enabled);
    dp.iters = static_cast<int>(cfg.getInt("detailed.iters", dp.iters));
    dp.tempStart = cfg.getDouble("detailed.tempStart", dp.tempStart);
    dp.tempDecay = cfg.getDouble("detailed.tempDecay", dp.tempDecay);

    PortfolioParams &fp = params.portfolio;
    fp.seeds = static_cast<int>(cfg.getInt("portfolio.seeds", fp.seeds));
    fp.pruneAt =
        static_cast<int>(cfg.getInt("portfolio.pruneAt", fp.pruneAt));
    fp.keepFrac = cfg.getDouble("portfolio.keepFrac", fp.keepFrac);
}

} // namespace qplacer
