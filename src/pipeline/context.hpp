/**
 * @file
 * FlowContext: the shared state one staged flow run threads through
 * its stages -- input topology and normalized parameters, the shared
 * worker pool, observer/cancellation hooks, and the FlowResult being
 * assembled. Stages communicate exclusively through this object.
 */

#ifndef QPLACER_PIPELINE_CONTEXT_HPP
#define QPLACER_PIPELINE_CONTEXT_HPP

#include "pipeline/flow.hpp"
#include "pipeline/stage.hpp"
#include "topology/topology.hpp"
#include "util/cancel.hpp"

namespace qplacer {

class ThreadPool;
struct IncrementalState;

/** Shared state of one flow run (one placement job). */
struct FlowContext
{
    /** Input device (borrowed; must outlive the run). */
    const Topology *topo = nullptr;

    /** Normalized parameters (FlowParams::normalized applied). */
    FlowParams params;

    /**
     * Position of this run in its batch (0 for single runs). Observer
     * callbacks use it to tell concurrent jobs apart.
     */
    int jobIndex = 0;

    /**
     * Worker pool for the placement hot path (borrowed; null = serial).
     * Sessions pass a long-lived pool so repeated runs never re-spawn
     * threads; results are bitwise-identical for a fixed pool size.
     */
    ThreadPool *pool = nullptr;

    /** Progress callbacks (borrowed; null = no events). */
    FlowObserver *observer = nullptr;

    /** Cooperative cancellation (borrowed; null = not cancellable). */
    const CancelToken *cancel = nullptr;

    /**
     * Emit inform() status lines. Off for concurrently executing batch
     * jobs, where interleaved per-stage chatter helps nobody; errors
     * still surface through FlowResult::status.
     */
    bool logging = true;

    /**
     * Incremental re-place state (borrowed; null = cold run). Set by
     * PlacementSession::runIncremental together with the warm-start
     * stage sequence (incremental.hpp); the default stages ignore it.
     */
    IncrementalState *incremental = nullptr;

    /** The result being assembled; stages fill in their slice. */
    FlowResult result;

    /** True once the run's CancelToken has fired. */
    bool cancelled() const { return cancel && cancel->cancelled(); }
};

} // namespace qplacer

#endif // QPLACER_PIPELINE_CONTEXT_HPP
