/**
 * @file
 * The incremental re-place stages (see incremental.hpp).
 */

#include "pipeline/incremental.hpp"

#include <algorithm>
#include <unordered_set>

#include "core/placer.hpp"
#include "legal/legalizer.hpp"
#include "pipeline/context.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace qplacer {

PriorLayout
PriorLayout::capture(const Netlist &netlist)
{
    PriorLayout prior;
    prior.region = netlist.region();
    prior.numInstances = netlist.numInstances();
    for (const Instance &inst : netlist.instances()) {
        if (inst.kind == InstanceKind::Qubit) {
            prior.qubitSites[inst.qubit] = {inst.pos, inst.freqHz};
        } else if (inst.resonator >= 0) {
            const Resonator &res = netlist.resonator(inst.resonator);
            const SegmentKey key{std::min(res.qubitA, res.qubitB),
                                 std::max(res.qubitA, res.qubitB),
                                 inst.segment};
            prior.segmentSites[key] = {inst.pos, inst.freqHz};
        }
    }
    return prior;
}

namespace {

IncrementalState &
incrementalState(FlowContext &ctx)
{
    if (!ctx.incremental || !ctx.incremental->prior)
        panic("incremental stages require FlowContext::incremental "
              "with a prior layout");
    return *ctx.incremental;
}

/**
 * Maps prior legal sites onto the freshly built netlist, computes the
 * dirty closure, and prepares the warm-start positions. An unchanged
 * netlist with an empty delta short-circuits the rest of the flow by
 * reproducing the prior layout exactly.
 */
class WarmStartStage final : public FlowStage
{
  public:
    const char *name() const override { return "warm_start"; }

    void run(FlowContext &ctx) const override
    {
        IncrementalState &st = incrementalState(ctx);
        const PriorLayout &prior = *st.prior;
        Netlist &netlist = ctx.result.netlist;
        const int n = netlist.numInstances();

        st.dirty.assign(n, 0);
        st.hasAnchor.assign(n, 0);
        st.anchors.assign(n, Vec2());
        st.reusedPrior = false;

        const std::unordered_set<int> delta_qubits(
            st.delta.dirtyQubits.begin(), st.delta.dirtyQubits.end());

        int mapped = 0;
        int fresh = 0;
        int dirty_count = 0;
        for (int i = 0; i < n; ++i) {
            Instance &inst = netlist.instance(i);
            const PriorSite *site = nullptr;
            bool delta_dirty = false;
            if (inst.kind == InstanceKind::Qubit) {
                const auto it = prior.qubitSites.find(inst.qubit);
                if (it != prior.qubitSites.end())
                    site = &it->second;
                delta_dirty = delta_qubits.count(inst.qubit) > 0;
            } else if (inst.resonator >= 0) {
                const Resonator &res = netlist.resonator(inst.resonator);
                const PriorLayout::SegmentKey key{
                    std::min(res.qubitA, res.qubitB),
                    std::max(res.qubitA, res.qubitB), inst.segment};
                const auto it = prior.segmentSites.find(key);
                if (it != prior.segmentSites.end())
                    site = &it->second;
                delta_dirty = delta_qubits.count(res.qubitA) > 0 ||
                              delta_qubits.count(res.qubitB) > 0;
            }
            if (site) {
                ++mapped;
                st.hasAnchor[i] = 1;
                st.anchors[i] = site->pos;
                // A drifted frequency means the assignment changed
                // around this instance even if the caller's delta
                // missed it; re-place it rather than trust the prior.
                if (site->freqHz != inst.freqHz)
                    delta_dirty = true;
                if (!delta_dirty)
                    inst.pos = site->pos;
            } else {
                ++fresh;
            }
            st.dirty[i] = (site == nullptr || delta_dirty) ? 1 : 0;
            dirty_count += st.dirty[i];
        }

        IncrementalStats &stats = ctx.result.incremental;
        stats.incremental = true;
        stats.mappedInstances = mapped;
        stats.freshInstances = fresh;
        stats.dirtyInstances = dirty_count;

        if (dirty_count == 0 && fresh == 0 &&
            n == prior.numInstances) {
            // Nothing changed: the prior layout is already the answer.
            netlist.setRegion(prior.region);
            st.reusedPrior = true;
            stats.reusedPrior = true;
            if (ctx.logging)
                inform("incremental: empty delta, reusing prior layout");
            return;
        }

        // Fixed prior sites must stay in-region; the freshly sized
        // region can be smaller than the prior's (both are anchored at
        // the origin, so the union preserves occupancy-cell alignment).
        netlist.setRegion(netlist.region().unionWith(prior.region));

        // Jitter the dirty set exactly like a cold run seeds its
        // start (same Rng stream over instance order), so stacked
        // fresh segments split; clean instances stay put and the warm
        // place below runs jitter-free.
        Rng rng(ctx.params.placer.seed);
        const double jitter =
            ctx.params.placer.jitterFrac * netlist.region().width();
        for (int i = 0; i < n; ++i) {
            const Vec2 off(rng.gaussian(0.0, jitter),
                           rng.gaussian(0.0, jitter));
            if (st.dirty[i])
                netlist.instance(i).pos += off;
        }

        if (ctx.logging) {
            inform(str("incremental: ", mapped, " warm-started, ", fresh,
                       " fresh, ", dirty_count, " dirty of ", n,
                       " instances"));
        }
    }
};

/**
 * Short jitter-free Nesterov re-solve from the warm start. The system
 * sits near a legalized optimum, so IncrementalPlaceParams::maxIters
 * (a fraction of the cold budget) suffices; clean instances barely
 * move and later snap back to their prior sites.
 */
class WarmPlaceStage final : public FlowStage
{
  public:
    const char *name() const override { return "place"; }

    void run(FlowContext &ctx) const override
    {
        IncrementalState &st = incrementalState(ctx);
        if (st.reusedPrior)
            return;

        PlaceMonitor monitor;
        monitor.cancel = ctx.cancel;
        if (ctx.observer) {
            monitor.onIteration = [&ctx](const PlaceProgress &progress) {
                ctx.observer->onIteration(ctx, progress);
            };
        }

        PlacerParams pp = ctx.params.placer;
        pp.maxIters = std::max(1, ctx.params.incremental.maxIters);
        pp.minIters = std::min(pp.minIters, pp.maxIters);
        pp.jitterFrac = 0.0; // the warm start already broke symmetry

        const GlobalPlacer placer(pp);
        ctx.result.place =
            placer.place(ctx.result.netlist, ctx.pool, monitor);
        if (ctx.result.place.cancelled) {
            ctx.result.status = {FlowCode::Cancelled, name(),
                                 "cancelled during global placement"};
        }
    }
};

/**
 * Scoped legalization: clean instances that stayed within
 * IncrementalPlaceParams::snapToleranceUm of their prior site snap
 * back and are held fixed; everything else (dirty closure + drifters)
 * goes through Legalizer::legalizeScoped.
 */
class ScopedLegalizeStage final : public FlowStage
{
  public:
    const char *name() const override { return "legalize"; }

    void run(FlowContext &ctx) const override
    {
        IncrementalState &st = incrementalState(ctx);
        Netlist &netlist = ctx.result.netlist;
        if (st.reusedPrior) {
            ctx.result.legal.legal = Legalizer::isLegal(netlist);
            return;
        }

        const double snap = ctx.params.incremental.snapToleranceUm;
        std::vector<int> movable;
        for (int i = 0; i < netlist.numInstances(); ++i) {
            if (st.dirty[i] || !st.hasAnchor[i]) {
                movable.push_back(i);
                continue;
            }
            Instance &inst = netlist.instance(i);
            if (inst.pos.dist(st.anchors[i]) > snap)
                movable.push_back(i);
            else
                inst.pos = st.anchors[i];
        }
        ctx.result.incremental.movableInstances =
            static_cast<int>(movable.size());

        const Legalizer legalizer(ctx.params.legalizer);
        ctx.result.legal =
            legalizer.legalizeScoped(netlist, movable, ctx.cancel);
        if (ctx.result.legal.cancelled) {
            ctx.result.status = {FlowCode::Cancelled, name(),
                                 "cancelled during legalization"};
        }
    }
};

} // namespace

std::vector<std::unique_ptr<FlowStage>>
makeIncrementalStages(const FlowParams &params)
{
    if (params.mode == PlacerMode::Human)
        fatal("incremental re-place supports Qplacer/Classic modes only");
    std::vector<std::unique_ptr<FlowStage>> stages;
    stages.push_back(makeAssignStage());
    stages.push_back(makeBuildStage());
    stages.push_back(std::make_unique<WarmStartStage>());
    stages.push_back(std::make_unique<WarmPlaceStage>());
    stages.push_back(std::make_unique<ScopedLegalizeStage>());
    stages.push_back(makeMetricsStage());
    return stages;
}

} // namespace qplacer
