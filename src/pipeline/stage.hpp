/**
 * @file
 * The staged flow API: the Fig. 7 pipeline decomposed into explicit,
 * individually timed stages running over a shared FlowContext.
 *
 * A flow is a sequence of FlowStage objects (frequency assignment ->
 * netlist build -> global placement -> legalization -> metrics; see
 * makeDefaultStages). runStages() drives them with structured error
 * reporting (FlowStatus instead of silent success), per-stage wall
 * clocks, FlowObserver callbacks (stage begin/end and optimizer
 * iteration progress), and cooperative cancellation.
 *
 * QplacerFlow::run() is a thin wrapper over this path; PlacementSession
 * (session.hpp) adds pool/plan reuse across runs and concurrent batch
 * execution on top of it.
 */

#ifndef QPLACER_PIPELINE_STAGE_HPP
#define QPLACER_PIPELINE_STAGE_HPP

#include <memory>
#include <string>
#include <vector>

namespace qplacer {

struct FlowContext;
struct FlowParams;
struct PlaceProgress;

/** How a flow run ended. */
enum class FlowCode
{
    Ok,            ///< All stages completed.
    InvalidParams, ///< FlowParams failed validation; nothing ran.
    Cancelled,     ///< A CancelToken stopped the run mid-flow.
    StageError,    ///< A stage failed (e.g. legalization ran out of room).

    /**
     * The job's deadline expired and the serving layer stopped it via
     * its CancelToken. Mechanically identical to Cancelled inside the
     * flow; reported distinctly so a client can tell an operator-
     * enforced timeout from its own cancel request.
     */
    DeadlineExceeded,
};

/** Human-readable FlowCode name. */
const char *flowCodeName(FlowCode code);

/** Structured outcome of a flow run (FlowResult::status). */
struct FlowStatus
{
    FlowCode code = FlowCode::Ok;
    std::string stage;   ///< Stage that ended the run ("" if none).
    std::string message; ///< Error / cancellation detail ("" when Ok).

    bool ok() const { return code == FlowCode::Ok; }
};

/** Wall-clock of one completed (or aborted) stage. */
struct StageTiming
{
    std::string stage;
    double seconds = 0.0;
};

/**
 * Callback surface over a flow run. Default implementations do
 * nothing; override what you need. In a concurrent batch
 * (PlacementSession::runBatch with workers > 1) callbacks fire on pool
 * worker threads, possibly concurrently for different jobs -- an
 * observer shared across jobs must be thread-safe. Use
 * FlowContext::jobIndex to tell jobs apart.
 */
class FlowObserver
{
  public:
    virtual ~FlowObserver() = default;

    /** A stage is about to run. */
    virtual void onStageBegin(const FlowContext &ctx,
                              const std::string &stage)
    {
        (void)ctx;
        (void)stage;
    }

    /** A stage finished (also fires for the stage that errored). */
    virtual void onStageEnd(const FlowContext &ctx,
                            const StageTiming &timing)
    {
        (void)ctx;
        (void)timing;
    }

    /**
     * Global-placement iteration progress (fires once per Nesterov
     * iteration, after the objective evaluation). Cancel mid-placement
     * by flipping the run's CancelToken from here.
     */
    virtual void onIteration(const FlowContext &ctx,
                             const PlaceProgress &progress)
    {
        (void)ctx;
        (void)progress;
    }
};

/**
 * One step of the flow. Stages communicate exclusively through the
 * FlowContext (read params/topology, fill in FlowContext::result), so
 * they compose: a custom pipeline is just a different stage vector.
 * Errors are reported by throwing (fatal()/panic() style); runStages
 * converts escaping exceptions into FlowStatus::StageError.
 */
class FlowStage
{
  public:
    virtual ~FlowStage() = default;

    /** Stable stage name (used in timings, status, and observer events). */
    virtual const char *name() const = 0;

    /** Execute the stage against @p ctx. */
    virtual void run(FlowContext &ctx) const = 0;
};

/**
 * The Fig. 7 stage sequence for @p params (which must already be
 * normalized): assign -> build -> place -> legalize -> metrics, with
 * build/place/legalize replaced by the manual layout stage in Human
 * mode. When params.detailed.enabled with a positive iteration budget
 * (and not in Human mode), the annealing detailed-placement stage is
 * inserted between legalize and metrics.
 */
std::vector<std::unique_ptr<FlowStage>>
makeDefaultStages(const FlowParams &params);

/**
 * Individual default stages, for composing custom pipelines (the
 * incremental re-place sequence in incremental.hpp reuses assign/build
 * and metrics around its own warm-start stages; the portfolio's probe
 * pipeline truncates after the global-place stage).
 */
std::unique_ptr<FlowStage> makeAssignStage();
std::unique_ptr<FlowStage> makeBuildStage();
std::unique_ptr<FlowStage> makeGlobalPlaceStage();
std::unique_ptr<FlowStage> makeMetricsStage();

/**
 * Drive @p stages over @p ctx in order: per-stage timing, observer
 * events, cancellation polling between stages, and exception ->
 * FlowStatus conversion. On return ctx.result holds everything the
 * run produced (status, stage timings, end-to-end seconds included).
 */
void runStages(FlowContext &ctx,
               const std::vector<std::unique_ptr<FlowStage>> &stages);

} // namespace qplacer

#endif // QPLACER_PIPELINE_STAGE_HPP
