/**
 * @file
 * Incremental re-place: warm-start a flow run from a prior job's
 * legalized layout and re-legalize only the dirtied region, instead
 * of running cold (the VTR-style dirty-region re-place from the
 * ROADMAP's placement-as-a-service item).
 *
 * The prior layout is captured as a PriorLayout keyed by *stable*
 * netlist identity -- topology qubit id for qubit instances,
 * (coupler endpoints, chain ordinal) for resonator segments -- so a
 * prior survives netlist rebuilds and small topology deltas: instances
 * that still exist warm-start at their prior legal sites, new or
 * delta-touched instances place from scratch.
 *
 * Stage sequence (makeIncrementalStages): assign -> build ->
 * warm_start -> place -> legalize -> metrics, where warm_start maps
 * prior positions onto the fresh netlist and computes the dirty set,
 * place runs a short jitter-free Nesterov re-solve
 * (IncrementalPlaceParams::maxIters), and legalize snaps undrifted
 * clean instances back to their prior sites and runs
 * Legalizer::legalizeScoped over the movers. An empty delta on an
 * unchanged topology short-circuits: the prior layout is reproduced
 * exactly (bitwiseSameLayout) and the place/legalize stages no-op.
 */

#ifndef QPLACER_PIPELINE_INCREMENTAL_HPP
#define QPLACER_PIPELINE_INCREMENTAL_HPP

#include <map>
#include <tuple>
#include <vector>

#include "geometry/rect.hpp"
#include "geometry/vec2.hpp"
#include "netlist/netlist.hpp"
#include "pipeline/stage.hpp"

namespace qplacer {

/** One remembered instance site of a prior layout. */
struct PriorSite
{
    Vec2 pos;            ///< Legalized center.
    double freqHz = 0.0; ///< Assigned frequency (drift marks dirty).
};

/**
 * A finished job's layout, keyed for re-identification across netlist
 * rebuilds. Cheap to keep per result (two position maps), so a server
 * can cache many.
 */
struct PriorLayout
{
    /** Segment key: (min endpoint qubit, max endpoint, chain ordinal). */
    using SegmentKey = std::tuple<int, int, int>;

    Rect region;                         ///< Legalized placement region.
    std::map<int, PriorSite> qubitSites; ///< By topology qubit id.
    std::map<SegmentKey, PriorSite> segmentSites;
    int numInstances = 0;

    /** Snapshot @p netlist (positions + frequencies) into a prior. */
    static PriorLayout capture(const Netlist &netlist);
};

/** What changed relative to the prior layout's netlist. */
struct NetlistDelta
{
    /**
     * Topology qubit ids whose neighbourhood changed (retuned,
     * re-coupled, added). The dirty closure is these qubits'
     * instances plus every segment of their incident resonators;
     * instances absent from the prior are always dirty.
     */
    std::vector<int> dirtyQubits;

    bool empty() const { return dirtyQubits.empty(); }
};

/**
 * Shared scratch of the incremental stages, pointed to by
 * FlowContext::incremental. Inputs (prior, delta) are set by the
 * caller; the rest is filled by the warm_start stage for the scoped
 * legalize stage.
 */
struct IncrementalState
{
    const PriorLayout *prior = nullptr; ///< Borrowed; required.
    NetlistDelta delta;

    // warm_start -> legalize handoff (indexed by instance id).
    std::vector<char> dirty;     ///< Re-placed from scratch.
    std::vector<char> hasAnchor; ///< Mapped to a prior legal site.
    std::vector<Vec2> anchors;   ///< That site (valid when hasAnchor).
    bool reusedPrior = false;    ///< Empty delta: layout reused as-is.
};

/**
 * The incremental stage sequence for @p params (already normalized).
 * FlowContext::incremental must point at an IncrementalState whose
 * prior is set; runStages drives it like any other pipeline.
 */
std::vector<std::unique_ptr<FlowStage>>
makeIncrementalStages(const FlowParams &params);

} // namespace qplacer

#endif
