/**
 * @file
 * End-to-end placement flow (Fig. 7): frequency assignment ->
 * preprocessing (padding + partitioning) -> frequency-aware global
 * placement -> integration-aware legalization -> metrics.
 *
 * This is the library's primary public entry point:
 *
 *   Topology topo = makeTopology("Falcon");
 *   FlowResult r = QplacerFlow().run(topo);
 *   writeLayoutSvg(r.netlist, "falcon.svg");
 */

#ifndef QPLACER_PIPELINE_FLOW_HPP
#define QPLACER_PIPELINE_FLOW_HPP

#include "baseline/human_placer.hpp"
#include "core/placer.hpp"
#include "eval/area.hpp"
#include "eval/hotspot.hpp"
#include "freq/assigner.hpp"
#include "legal/legalizer.hpp"
#include "netlist/builder.hpp"
#include "topology/topology.hpp"

namespace qplacer {

/** Which placement scheme to run (Section V-B). */
enum class PlacerMode
{
    Qplacer, ///< Frequency-aware engine + tau-checked legalization.
    Classic, ///< Same engine, frequency force and tau checks disabled.
    Human,   ///< Manual grid-style reference layout.
};

/** Full-flow configuration. */
struct FlowParams
{
    PlacerMode mode = PlacerMode::Qplacer;
    AssignerParams assigner;
    PartitionParams partition;
    PlacerParams placer;
    LegalizerParams legalizer;
    HotspotParams hotspot;
    double targetUtil = 0.72;
};

/** Everything a flow run produces. */
struct FlowResult
{
    Netlist netlist; ///< Placed + legalized layout.
    FrequencyAssignment freqs;
    PlaceResult place;       ///< Global-placement stats (not for Human).
    LegalizeResult legal;    ///< Legalization stats (not for Human).
    AreaMetrics area;
    HotspotReport hotspots;
    double seconds = 0.0; ///< End-to-end wall-clock.
};

/** The placement flow driver. */
class QplacerFlow
{
  public:
    explicit QplacerFlow(FlowParams params = {});

    /** Run the configured flow on @p topo. */
    FlowResult run(const Topology &topo) const;

    /** Convenience: run with a given mode, default everything else. */
    static FlowResult runMode(const Topology &topo, PlacerMode mode,
                              double segment_um = 300.0,
                              std::uint64_t seed = 1);

    const FlowParams &params() const { return params_; }

  private:
    FlowParams params_;
};

/** Human-readable mode name. */
const char *placerModeName(PlacerMode mode);

} // namespace qplacer

#endif // QPLACER_PIPELINE_FLOW_HPP
