/**
 * @file
 * End-to-end placement flow (Fig. 7): frequency assignment ->
 * preprocessing (padding + partitioning) -> frequency-aware global
 * placement -> integration-aware legalization -> metrics.
 *
 * One-shot entry point:
 *
 *   Topology topo = makeTopology("Falcon");
 *   FlowResult r = QplacerFlow().run(topo);
 *   writeLayoutSvg(r.netlist, "falcon.svg");
 *
 * QplacerFlow::run() is a thin wrapper over the staged pipeline
 * (stage.hpp): each run builds the default stage sequence and drives
 * it with a private worker pool. Services and batch workloads should
 * prefer PlacementSession (session.hpp), which reuses the pool and
 * spectral-plan cache across runs, streams FlowObserver progress
 * events, supports cooperative cancellation, and executes independent
 * jobs concurrently -- see the migration note on runMode() below.
 */

#ifndef QPLACER_PIPELINE_FLOW_HPP
#define QPLACER_PIPELINE_FLOW_HPP

#include "baseline/human_placer.hpp"
#include "core/placer.hpp"
#include "eval/area.hpp"
#include "eval/crosscut.hpp"
#include "eval/hotspot.hpp"
#include "freq/assigner.hpp"
#include "legal/anneal.hpp"
#include "legal/legalizer.hpp"
#include "netlist/builder.hpp"
#include "pipeline/stage.hpp"
#include "topology/topology.hpp"

namespace qplacer {

/** Which placement scheme to run (Section V-B). */
enum class PlacerMode
{
    Qplacer, ///< Frequency-aware engine + tau-checked legalization.
    Classic, ///< Same engine, frequency force and tau checks disabled.
    Human,   ///< Manual grid-style reference layout.
};

/**
 * Knobs of the incremental re-place path (incremental.hpp): warm-start
 * the global placer from a prior layout and re-legalize only the
 * dirtied region. Ignored by cold runs.
 */
struct IncrementalPlaceParams
{
    /**
     * Nesterov iteration budget for the warm re-solve. A warm start
     * sits near a legalized optimum already, so this is a fraction of
     * PlacerParams::maxIters.
     */
    int maxIters = 120;

    /**
     * Clean instances whose warm re-solve drift stays within this
     * distance (um) snap back to their prior legal sites and are held
     * fixed during scoped legalization; larger drifts make the
     * instance movable.
     */
    double snapToleranceUm = 50.0;
};

/**
 * Knobs of the multi-start portfolio (PlacementSession::runPortfolio).
 * With seeds <= 1 the portfolio degrades to the exact single-seed flow
 * (runPortfolio forwards to run(), bitwise-identical); ignored by the
 * plain run()/runBatch() paths.
 */
struct PortfolioParams
{
    /**
     * Candidate count: seeds placer.seed .. placer.seed + seeds - 1
     * (wrapping mod 2^64) run concurrently, each single-threaded.
     */
    int seeds = 1;

    /**
     * First pruning checkpoint, in global-placement iterations.
     * Candidates run truncated probe placements to the checkpoint, the
     * bottom (1 - keepFrac) is dropped, and the checkpoint doubles
     * until one survivor remains or the budget is reached. The base
     * seed is exempt from pruning, so the portfolio can never return a
     * worse layout than the single-seed flow.
     */
    int pruneAt = 60;

    /** Fraction of candidates kept at each checkpoint, in (0, 1]. */
    double keepFrac = 0.5;
};

/** Full-flow configuration. */
struct FlowParams
{
    PlacerMode mode = PlacerMode::Qplacer;
    AssignerParams assigner;
    PartitionParams partition;
    PlacerParams placer;
    LegalizerParams legalizer;
    HotspotParams hotspot;
    IncrementalPlaceParams incremental;
    DetailedPlaceParams detailed; ///< Post-legalization annealing stage.
    PortfolioParams portfolio;    ///< Multi-start knobs (runPortfolio).
    double targetUtil = 0.72;

    /**
     * Validated, self-consistent copy of these parameters -- the only
     * form the staged pipeline accepts. Normalization:
     *
     *  - assigner.detuningThresholdHz is the single source of truth
     *    for the detuning threshold; the copy in the placer, the
     *    integration legalizer, and the hotspot analyzer is
     *    overwritten with it (previously each caller hand-copied it,
     *    or forgot to);
     *  - targetUtil is mirrored into placer.targetUtil;
     *  - Classic mode disables the frequency force and the resonance
     *    check (Section V-B);
     *  - placer.minIters (a convergence floor) is clamped to the
     *    iteration budget, so lowering only maxIters stays valid.
     *
     * Out-of-range values (non-positive segment size, targetUtil
     * outside (0, 1], negative minIters, ...) are *errors*, caught
     * here instead of surfacing as UB downstream: with @p error null
     * the first violation fatal()s; otherwise *error receives the
     * message (empty on success) and the partially normalized copy is
     * returned for inspection.
     */
    FlowParams normalized(std::string *error = nullptr) const;
};

/** Diagnostics of an incremental re-place run (zero on cold runs). */
struct IncrementalStats
{
    bool incremental = false; ///< This run warm-started from a prior.
    bool reusedPrior = false; ///< Empty delta: prior layout returned as-is.
    int mappedInstances = 0;  ///< Instances warm-started from the prior.
    int freshInstances = 0;   ///< Instances with no prior position.
    int dirtyInstances = 0;   ///< Delta closure re-placed from scratch.
    int movableInstances = 0; ///< Instances legalization could move.
};

/** One candidate of a portfolio run (PortfolioStats::candidates). */
struct PortfolioCandidate
{
    std::uint64_t seed = 0;  ///< Resolved placer seed.
    int prunedAtIters = 0;   ///< Probe budget when dropped (0 = survived).
    double probeOverflow = 1.0; ///< Last probe overflow snapshot.
    double probeHpwl = 0.0;     ///< Last probe HPWL snapshot.
    bool ranFull = false;       ///< Survived pruning, ran the full flow.
    double finalHpwl = 0.0;     ///< Final layout HPWL (ranFull only).
    bool winner = false;        ///< This candidate's layout was returned.
};

/** Diagnostics of a portfolio run (zero/empty for single-seed runs). */
struct PortfolioStats
{
    bool portfolio = false; ///< This result came from runPortfolio.
    int seeds = 0;          ///< Candidates launched.
    int rungs = 0;          ///< Pruning checkpoints evaluated.
    std::uint64_t winnerSeed = 0;
    std::vector<PortfolioCandidate> candidates; ///< Indexed by offset.
};

/** Everything a flow run produces. */
struct FlowResult
{
    Netlist netlist; ///< Placed + legalized layout.
    FrequencyAssignment freqs;
    AssignStats assignStats; ///< assign sub-stage wall clocks.
    BuildStats buildStats;   ///< build sub-stage wall clocks (not Human).
    PlaceResult place;    ///< Global-placement stats (not for Human).
    LegalizeResult legal; ///< Legalization stats (not for Human).
    AreaMetrics area;
    HotspotReport hotspots;
    CrossCutMetrics multidie; ///< Cross-cut metrics (inactive on 1 die).
    FlowStatus status;    ///< Structured outcome (Ok / error / cancelled).
    IncrementalStats incremental; ///< Warm-start diagnostics, if any.
    DetailedStats detailed;       ///< Detailed-placement stats, if run.
    PortfolioStats portfolioStats; ///< Portfolio diagnostics, if any.
    std::vector<StageTiming> stageTimings; ///< Per-stage wall clocks.
    double seconds = 0.0; ///< End-to-end wall-clock.
};

/** The placement flow driver. */
class QplacerFlow
{
  public:
    explicit QplacerFlow(FlowParams params = {});

    /**
     * Run the configured flow on @p topo through the staged pipeline.
     * Kept exception-compatible with the pre-session API: invalid
     * parameters and stage failures throw (std::runtime_error via
     * fatal()). PlacementSession::run returns them as FlowResult::status
     * instead.
     */
    FlowResult run(const Topology &topo) const;

    /**
     * Convenience: run with a given mode, default everything else.
     *
     * Migration note: for anything beyond a one-shot run -- many
     * placements, progress observation, cancellation, or non-throwing
     * error handling -- use PlacementSession:
     *
     *   PlacementSession session;                 // pool reused across runs
     *   FlowResult r = session.run(topo, params); // errors in r.status
     *   auto results = session.runBatch(jobs);    // concurrent jobs
     */
    static FlowResult runMode(const Topology &topo, PlacerMode mode,
                              double segment_um = 300.0,
                              std::uint64_t seed = 1);

    const FlowParams &params() const { return params_; }

  private:
    FlowParams params_;
};

/** Human-readable mode name. */
const char *placerModeName(PlacerMode mode);

} // namespace qplacer

#endif // QPLACER_PIPELINE_FLOW_HPP
