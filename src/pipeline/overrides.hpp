/**
 * @file
 * The user-facing `--set KEY=VALUE` knob surface, shared by the CLI,
 * the server protocol ("set" maps in submit requests), and the doc
 * lint (scripts/check_knob_docs.sh greps kKnownSetKeys so BUILDING.md
 * cannot silently drop a knob). Only leaf-value mapping lives here;
 * cross-parameter consistency (detuning propagation, targetUtil
 * mirroring, range validation) stays in FlowParams::normalized().
 */

#ifndef QPLACER_PIPELINE_OVERRIDES_HPP
#define QPLACER_PIPELINE_OVERRIDES_HPP

#include <cstddef>
#include <string>

#include "pipeline/flow.hpp"
#include "util/config.hpp"

namespace qplacer {

/** Keys understood by --set / request "set"; anything else errors. */
extern const char *const kKnownSetKeys[];

/** Number of entries in kKnownSetKeys. */
std::size_t numKnownSetKeys();

/** True when @p key is one of kKnownSetKeys. */
bool isKnownSetKey(const std::string &key);

/**
 * Map override values from @p cfg onto the flow parameter tree.
 * Unknown keys in @p cfg are ignored here; reject them at intake with
 * isKnownSetKey() so the error names the offending key.
 */
void applyOverrides(const Config &cfg, FlowParams &params);

} // namespace qplacer

#endif
