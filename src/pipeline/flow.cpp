#include "pipeline/flow.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

#include "pipeline/context.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace qplacer {

QplacerFlow::QplacerFlow(FlowParams params)
    : params_(params)
{
}

const char *
placerModeName(PlacerMode mode)
{
    switch (mode) {
      case PlacerMode::Qplacer:
        return "Qplacer";
      case PlacerMode::Classic:
        return "Classic";
      case PlacerMode::Human:
        return "Human";
    }
    return "?";
}

FlowParams
FlowParams::normalized(std::string *error) const
{
    FlowParams p = *this;
    std::string first_error;
    const auto check = [&](bool ok, const char *msg) {
        if (!ok && first_error.empty())
            first_error = msg;
    };

    check(targetUtil > 0.0 && targetUtil <= 1.0,
          "FlowParams: targetUtil must be in (0, 1]");
    check(partition.segmentUm > 0.0,
          "FlowParams: partition.segmentUm must be positive");
    check(partition.wireWidthUm > 0.0,
          "FlowParams: partition.wireWidthUm must be positive");
    check(partition.qubitPadUm >= 0.0 && partition.resonatorPadUm >= 0.0,
          "FlowParams: partition pads must be non-negative");
    check(partition.buildSerialBelow >= 0,
          "FlowParams: partition.buildSerialBelow must be non-negative "
          "(0 = always parallel)");
    check(placer.targetDensity > 0.0 && placer.targetDensity <= 1.0,
          "FlowParams: placer.targetDensity must be in (0, 1]");
    check(placer.maxIters >= 1,
          "FlowParams: placer.maxIters must be at least 1");
    check(placer.minIters >= 0,
          "FlowParams: placer.minIters must be non-negative");
    check(placer.stopOverflow >= 0.0,
          "FlowParams: placer.stopOverflow must be non-negative");
    check(placer.gammaFrac > 0.0,
          "FlowParams: placer.gammaFrac must be positive");
    check(placer.lambdaGrowth >= 1.0 && placer.freqLambdaGrowth >= 1.0,
          "FlowParams: penalty growth factors must be >= 1");
    check(placer.bins >= 0, "FlowParams: placer.bins must be >= 0");
    check(placer.jitterFrac >= 0.0,
          "FlowParams: placer.jitterFrac must be non-negative");
    check(placer.cutWeight >= 0.0,
          "FlowParams: placer.cutWeight must be non-negative");
    check(assigner.detuningThresholdHz > 0.0,
          "FlowParams: assigner.detuningThresholdHz must be positive");
    check(assigner.qubitBand.span() > 0.0,
          "FlowParams: assigner.qubitBand must have positive span");
    check(assigner.resonatorBand.span() > 0.0,
          "FlowParams: assigner.resonatorBand must have positive span");
    check(legalizer.cellUm > 0.0,
          "FlowParams: legalizer.cellUm must be positive");
    check(legalizer.flowSparseThreshold >= 0,
          "FlowParams: legalizer.flowSparseThreshold must be "
          "non-negative (0 = always sparse)");
    check(legalizer.flowSparseNeighbors >= 1,
          "FlowParams: legalizer.flowSparseNeighbors must be at least 1");
    check(legalizer.integrationParams.maxRounds >= 0,
          "FlowParams: legalizer.integrationParams.maxRounds must be >= 0");
    check(legalizer.integrationParams.adjacencyTolUm >= 0.0 &&
              legalizer.integrationParams.probeTolUm >= 0.0,
          "FlowParams: integration tolerances must be non-negative");
    check(hotspot.adjacencyTolUm >= 0.0,
          "FlowParams: hotspot.adjacencyTolUm must be non-negative");
    check(incremental.maxIters >= 1,
          "FlowParams: incremental.maxIters must be at least 1");
    check(incremental.snapToleranceUm >= 0.0,
          "FlowParams: incremental.snapToleranceUm must be non-negative");
    check(detailed.iters >= 0,
          "FlowParams: detailed.iters must be non-negative (0 = no-op)");
    check(detailed.tempStart >= 0.0,
          "FlowParams: detailed.tempStart must be non-negative");
    check(detailed.tempDecay > 0.0 && detailed.tempDecay <= 1.0,
          "FlowParams: detailed.tempDecay must be in (0, 1]");
    check(portfolio.seeds >= 1,
          "FlowParams: portfolio.seeds must be at least 1");
    check(portfolio.pruneAt >= 1,
          "FlowParams: portfolio.pruneAt must be at least 1");
    check(portfolio.keepFrac > 0.0 && portfolio.keepFrac <= 1.0,
          "FlowParams: portfolio.keepFrac must be in (0, 1]");

    if (error)
        *error = first_error;
    else if (!first_error.empty())
        fatal(first_error);

    // The assigner's detuning threshold is the single source of truth:
    // the collision map the placer pushes apart, the tau check the
    // integration legalizer validates against, and the hotspot metric
    // must all judge resonance exactly like the frequencies were
    // assigned (flow.cpp and qplacer_cli used to hand-copy these).
    p.placer.detuningThresholdHz = assigner.detuningThresholdHz;
    p.legalizer.integrationParams.detuningThresholdHz =
        assigner.detuningThresholdHz;
    p.hotspot.detuningThresholdHz = assigner.detuningThresholdHz;

    // The region is sized once, from the flow-level utilization target.
    p.placer.targetUtil = targetUtil;

    // minIters is a convergence floor under the iteration budget;
    // callers routinely lower only maxIters (quick runs, sweeps), so a
    // budget below the default floor implies a lowered floor, not a
    // configuration error.
    p.placer.minIters = std::min(p.placer.minIters, p.placer.maxIters);

    if (mode == PlacerMode::Classic) {
        // Classic: the same engine and hyper-parameters, minus every
        // frequency-aware ingredient (Section V-B).
        p.placer.freqForce = false;
        p.legalizer.integrationParams.resonanceCheck = false;
    }
    return p;
}

FlowResult
QplacerFlow::run(const Topology &topo) const
{
    // No error out-param: invalid configuration fatal()s, matching the
    // pre-session API (PlacementSession reports via FlowResult::status).
    const FlowParams normalized = params_.normalized();

    FlowContext ctx;
    ctx.topo = &topo;
    ctx.params = normalized;

    // A private pool per run (Human mode has no parallel stage, so
    // skip the thread spawn entirely), sized exactly like the
    // pre-session flow so fixed-seed layouts stay bitwise-identical
    // to it. Sessions amortize this construction across runs.
    std::unique_ptr<ThreadPool> pool;
    if (normalized.mode != PlacerMode::Human) {
        pool = std::make_unique<ThreadPool>(normalized.placer.threads);
        ctx.pool = pool->threads() > 1 ? pool.get() : nullptr;
    }

    runStages(ctx, makeDefaultStages(normalized));

    // Exception compatibility: a failed stage used to surface as the
    // fatal() it threw; re-throw instead of returning a partial result.
    if (ctx.result.status.code == FlowCode::StageError)
        throw std::runtime_error(ctx.result.status.message);
    return std::move(ctx.result);
}

FlowResult
QplacerFlow::runMode(const Topology &topo, PlacerMode mode,
                     double segment_um, std::uint64_t seed)
{
    FlowParams params;
    params.mode = mode;
    params.partition.segmentUm = segment_um;
    params.placer.seed = seed;
    return QplacerFlow(params).run(topo);
}

} // namespace qplacer
