#include "pipeline/flow.hpp"

#include "util/logging.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace qplacer {

QplacerFlow::QplacerFlow(FlowParams params)
    : params_(params)
{
}

const char *
placerModeName(PlacerMode mode)
{
    switch (mode) {
      case PlacerMode::Qplacer:
        return "Qplacer";
      case PlacerMode::Classic:
        return "Classic";
      case PlacerMode::Human:
        return "Human";
    }
    return "?";
}

FlowResult
QplacerFlow::run(const Topology &topo) const
{
    Timer timer;
    FlowResult result;

    const FrequencyAssigner assigner(params_.assigner);
    result.freqs = assigner.assign(topo);

    if (params_.mode == PlacerMode::Human) {
        const HumanPlacer human(params_.partition);
        result.netlist = human.place(topo, result.freqs);
    } else {
        const NetlistBuilder builder(params_.partition);
        result.netlist =
            builder.build(topo, result.freqs, params_.targetUtil);

        PlacerParams pp = params_.placer;
        // Resolve the thread request once so the log reflects the
        // effective pool size (0 = auto-detect).
        pp.threads = ThreadPool::resolveThreadCount(pp.threads);
        if (pp.threads > 1)
            inform(str("global placement running on ", pp.threads,
                       " threads"));
        LegalizerParams lp = params_.legalizer;
        lp.integrationParams.detuningThresholdHz =
            params_.assigner.detuningThresholdHz;
        if (params_.mode == PlacerMode::Classic) {
            // Classic: the same engine and hyper-parameters, minus every
            // frequency-aware ingredient (Section V-B).
            pp.freqForce = false;
            lp.integrationParams.resonanceCheck = false;
        }

        const GlobalPlacer placer(pp);
        result.place = placer.place(result.netlist);

        const Legalizer legalizer(lp);
        result.legal = legalizer.legalize(result.netlist);
    }

    result.area = computeArea(result.netlist);
    result.hotspots = analyzeHotspots(result.netlist, params_.hotspot);
    result.seconds = timer.seconds();

    inform(str(placerModeName(params_.mode), " flow on ", topo.name,
               ": #cells=", result.netlist.numInstances(),
               " Ph=", result.hotspots.phPercent,
               "% util=", result.area.utilization));
    return result;
}

FlowResult
QplacerFlow::runMode(const Topology &topo, PlacerMode mode,
                     double segment_um, std::uint64_t seed)
{
    FlowParams params;
    params.mode = mode;
    params.partition.segmentUm = segment_um;
    params.placer.seed = seed;
    return QplacerFlow(params).run(topo);
}

} // namespace qplacer
