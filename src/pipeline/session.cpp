#include "pipeline/session.hpp"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <string>
#include <utility>

#include "pipeline/context.hpp"

namespace qplacer {

PlacementSession::PlacementSession(SessionParams params)
    : params_(params)
{
}

ThreadPool *
PlacementSession::innerPool(int threads)
{
    const int resolved = ThreadPool::resolveThreadCount(threads);
    if (resolved <= 1)
        return nullptr;
    // Reuse the live pool whenever the size matches -- this is the
    // amortization a session exists for. A changed request rebuilds it
    // (chunk boundaries depend on the pool size, so reusing a
    // wrong-sized pool would silently change results).
    if (!inner_ || inner_->threads() != resolved)
        inner_ = std::make_unique<ThreadPool>(resolved);
    return inner_.get();
}

FlowResult
PlacementSession::runJob(const Topology &topo, const FlowParams &params,
                         int job_index, ThreadPool *pool, bool logging)
{
    FlowContext ctx;
    ctx.topo = &topo;

    std::string error;
    ctx.params = params.normalized(&error);
    if (!error.empty()) {
        ctx.result.status = {FlowCode::InvalidParams, "", error};
        return std::move(ctx.result);
    }

    ctx.jobIndex = job_index;
    ctx.pool = pool;
    ctx.observer = observer_;
    ctx.cancel = &cancel_;
    ctx.logging = logging;
    runStages(ctx, makeDefaultStages(ctx.params));
    return std::move(ctx.result);
}

FlowResult
PlacementSession::run(const Topology &topo)
{
    return run(topo, params_.flow);
}

FlowResult
PlacementSession::runIncremental(const Topology &topo,
                                 const FlowParams &params,
                                 const PriorLayout &prior,
                                 const NetlistDelta &delta)
{
    FlowContext ctx;
    ctx.topo = &topo;

    std::string error;
    ctx.params = params.normalized(&error);
    if (error.empty() && params.mode == PlacerMode::Human)
        error = "incremental re-place supports Qplacer/Classic modes only";
    if (!error.empty()) {
        ctx.result.status = {FlowCode::InvalidParams, "", error};
        return std::move(ctx.result);
    }

    IncrementalState state;
    state.prior = &prior;
    state.delta = delta;

    ctx.pool = innerPool(params.placer.threads);
    ctx.observer = observer_;
    ctx.cancel = &cancel_;
    ctx.incremental = &state;
    runStages(ctx, makeIncrementalStages(ctx.params));
    return std::move(ctx.result);
}

FlowResult
PlacementSession::run(const Topology &topo, const FlowParams &params)
{
    // Human mode has no parallel stage; don't build (or keep alive) a
    // pool for it.
    ThreadPool *pool = params.mode == PlacerMode::Human
                           ? nullptr
                           : innerPool(params.placer.threads);
    return runJob(topo, params, /*job_index=*/0, pool, /*logging=*/true);
}

std::vector<FlowResult>
PlacementSession::runBatch(const std::vector<PlacementJob> &jobs)
{
    std::vector<JobRef> refs;
    refs.reserve(jobs.size());
    for (const PlacementJob &job : jobs)
        refs.push_back({&job.topo, &job.params});
    return runBatchRefs(refs);
}

std::vector<FlowResult>
PlacementSession::runBatch(const Topology &topo,
                           const std::vector<FlowParams> &jobs)
{
    std::vector<JobRef> refs;
    refs.reserve(jobs.size());
    for (const FlowParams &params : jobs)
        refs.push_back({&topo, &params});
    return runBatchRefs(refs);
}

std::vector<FlowResult>
PlacementSession::runBatchRefs(const std::vector<JobRef> &jobs)
{
    std::vector<FlowResult> results(jobs.size());
    if (jobs.empty())
        return results;

    const int workers =
        std::min<int>(ThreadPool::resolveThreadCount(params_.workers),
                      static_cast<int>(jobs.size()));

    if (workers <= 1) {
        // Serial batch: jobs run in order on this thread and keep
        // their requested intra-placement thread count.
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            ThreadPool *pool =
                jobs[i].params->mode == PlacerMode::Human
                    ? nullptr
                    : innerPool(jobs[i].params->placer.threads);
            results[i] = runJob(*jobs[i].topo, *jobs[i].params,
                                static_cast<int>(i), pool,
                                /*logging=*/true);
        }
        return results;
    }

    if (!batch_ || batch_->threads() != workers)
        batch_ = std::make_unique<ThreadPool>(workers);

    // Concurrent batch: every worker pulls the next unclaimed job
    // (dynamic scheduling -- placements vary wildly in cost, so a
    // static split would idle half the pool on the tail). Each job is
    // placed single-threaded (inner pool = null): nesting regions on
    // one pool is illegal, and the per-job serial path is exactly what
    // makes batch results bitwise-equal to placer.threads=1 serial
    // runs. runJob never throws (stage errors land in the per-job
    // status), so one failing job cannot take down the batch.
    std::atomic<std::size_t> next{0};
    batch_->forChunks(
        static_cast<std::size_t>(workers),
        [&](int, std::size_t, std::size_t) {
            for (std::size_t i = next.fetch_add(1); i < jobs.size();
                 i = next.fetch_add(1)) {
                FlowParams job_params = *jobs[i].params;
                job_params.placer.threads = 1;
                results[i] = runJob(*jobs[i].topo, job_params,
                                    static_cast<int>(i), nullptr,
                                    /*logging=*/false);
            }
        });
    return results;
}

} // namespace qplacer
