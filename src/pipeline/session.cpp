#include "pipeline/session.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <string>
#include <utility>

#include "legal/anneal.hpp"
#include "pipeline/context.hpp"

namespace qplacer {
namespace {

/**
 * Records per-job PlaceProgress trajectories (portfolio probe runs).
 * Thread-safe for the batch pattern: each job index is driven by
 * exactly one worker at a time and the outer vector is preallocated.
 */
class TrajectoryRecorder final : public FlowObserver
{
  public:
    explicit TrajectoryRecorder(std::size_t jobs) : traj_(jobs) {}

    void
    onIteration(const FlowContext &ctx,
                const PlaceProgress &progress) override
    {
        traj_[static_cast<std::size_t>(ctx.jobIndex)].push_back(progress);
    }

    const std::vector<PlaceProgress> &
    of(std::size_t job) const
    {
        return traj_[job];
    }

    void
    clear()
    {
        for (auto &t : traj_)
            t.clear();
    }

  private:
    std::vector<std::vector<PlaceProgress>> traj_;
};

/**
 * One truncated portfolio probe: assign -> build -> place only (no
 * legalization or metrics -- the ranking needs the optimizer
 * trajectory, nothing downstream), serial, quiet.
 */
FlowResult
runTruncatedProbe(const Topology &topo, const FlowParams &params,
                  int job_index, FlowObserver *observer,
                  const CancelToken *cancel)
{
    FlowContext ctx;
    ctx.topo = &topo;

    std::string error;
    ctx.params = params.normalized(&error);
    if (!error.empty()) {
        ctx.result.status = {FlowCode::InvalidParams, "", error};
        return std::move(ctx.result);
    }

    ctx.jobIndex = job_index;
    ctx.pool = nullptr;
    ctx.observer = observer;
    ctx.cancel = cancel;
    ctx.logging = false;

    std::vector<std::unique_ptr<FlowStage>> stages;
    stages.push_back(makeAssignStage());
    stages.push_back(makeBuildStage());
    stages.push_back(makeGlobalPlaceStage());
    runStages(ctx, stages);
    return std::move(ctx.result);
}

} // namespace

PlacementSession::PlacementSession(SessionParams params)
    : params_(params)
{
}

ThreadPool *
PlacementSession::innerPool(int threads)
{
    const int resolved = ThreadPool::resolveThreadCount(threads);
    if (resolved <= 1)
        return nullptr;
    // Reuse the live pool whenever the size matches -- this is the
    // amortization a session exists for. A changed request rebuilds it
    // (chunk boundaries depend on the pool size, so reusing a
    // wrong-sized pool would silently change results).
    if (!inner_ || inner_->threads() != resolved)
        inner_ = std::make_unique<ThreadPool>(resolved);
    return inner_.get();
}

FlowResult
PlacementSession::runJob(const Topology &topo, const FlowParams &params,
                         int job_index, ThreadPool *pool, bool logging)
{
    FlowContext ctx;
    ctx.topo = &topo;

    std::string error;
    ctx.params = params.normalized(&error);
    if (!error.empty()) {
        ctx.result.status = {FlowCode::InvalidParams, "", error};
        return std::move(ctx.result);
    }

    ctx.jobIndex = job_index;
    ctx.pool = pool;
    ctx.observer = observer_;
    ctx.cancel = &cancel_;
    ctx.logging = logging;
    runStages(ctx, makeDefaultStages(ctx.params));
    return std::move(ctx.result);
}

FlowResult
PlacementSession::run(const Topology &topo)
{
    return run(topo, params_.flow);
}

FlowResult
PlacementSession::runIncremental(const Topology &topo,
                                 const FlowParams &params,
                                 const PriorLayout &prior,
                                 const NetlistDelta &delta)
{
    FlowContext ctx;
    ctx.topo = &topo;

    std::string error;
    ctx.params = params.normalized(&error);
    if (error.empty() && params.mode == PlacerMode::Human)
        error = "incremental re-place supports Qplacer/Classic modes only";
    if (!error.empty()) {
        ctx.result.status = {FlowCode::InvalidParams, "", error};
        return std::move(ctx.result);
    }

    IncrementalState state;
    state.prior = &prior;
    state.delta = delta;

    ctx.pool = innerPool(params.placer.threads);
    ctx.observer = observer_;
    ctx.cancel = &cancel_;
    ctx.incremental = &state;
    runStages(ctx, makeIncrementalStages(ctx.params));
    return std::move(ctx.result);
}

FlowResult
PlacementSession::run(const Topology &topo, const FlowParams &params)
{
    // Human mode has no parallel stage; don't build (or keep alive) a
    // pool for it.
    ThreadPool *pool = params.mode == PlacerMode::Human
                           ? nullptr
                           : innerPool(params.placer.threads);
    return runJob(topo, params, /*job_index=*/0, pool, /*logging=*/true);
}

std::vector<FlowResult>
PlacementSession::runBatch(const std::vector<PlacementJob> &jobs)
{
    std::vector<JobRef> refs;
    refs.reserve(jobs.size());
    for (const PlacementJob &job : jobs)
        refs.push_back({&job.topo, &job.params});
    return runBatchRefs(refs);
}

std::vector<FlowResult>
PlacementSession::runBatch(const Topology &topo,
                           const std::vector<FlowParams> &jobs)
{
    std::vector<JobRef> refs;
    refs.reserve(jobs.size());
    for (const FlowParams &params : jobs)
        refs.push_back({&topo, &params});
    return runBatchRefs(refs);
}

std::vector<FlowResult>
PlacementSession::runBatchRefs(const std::vector<JobRef> &jobs)
{
    std::vector<FlowResult> results(jobs.size());
    if (jobs.empty())
        return results;

    const int workers =
        std::min<int>(ThreadPool::resolveThreadCount(params_.workers),
                      static_cast<int>(jobs.size()));

    if (workers <= 1) {
        // Serial batch: jobs run in order on this thread and keep
        // their requested intra-placement thread count.
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            ThreadPool *pool =
                jobs[i].params->mode == PlacerMode::Human
                    ? nullptr
                    : innerPool(jobs[i].params->placer.threads);
            results[i] = runJob(*jobs[i].topo, *jobs[i].params,
                                static_cast<int>(i), pool,
                                /*logging=*/true);
        }
        return results;
    }

    if (!batch_ || batch_->threads() != workers)
        batch_ = std::make_unique<ThreadPool>(workers);

    // Concurrent batch: every worker pulls the next unclaimed job
    // (dynamic scheduling -- placements vary wildly in cost, so a
    // static split would idle half the pool on the tail). Each job is
    // placed single-threaded (inner pool = null): nesting regions on
    // one pool is illegal, and the per-job serial path is exactly what
    // makes batch results bitwise-equal to placer.threads=1 serial
    // runs. runJob never throws (stage errors land in the per-job
    // status), so one failing job cannot take down the batch.
    std::atomic<std::size_t> next{0};
    batch_->forChunks(
        static_cast<std::size_t>(workers),
        [&](int, std::size_t, std::size_t) {
            for (std::size_t i = next.fetch_add(1); i < jobs.size();
                 i = next.fetch_add(1)) {
                FlowParams job_params = *jobs[i].params;
                job_params.placer.threads = 1;
                results[i] = runJob(*jobs[i].topo, job_params,
                                    static_cast<int>(i), nullptr,
                                    /*logging=*/false);
            }
        });
    return results;
}

FlowResult
PlacementSession::runPortfolio(const Topology &topo,
                               const FlowParams &params, int n_seeds)
{
    FlowParams base = params;
    if (n_seeds > 0)
        base.portfolio.seeds = n_seeds;

    std::string error;
    const FlowParams normalized = base.normalized(&error);
    if (!error.empty()) {
        FlowResult failed;
        failed.status = {FlowCode::InvalidParams, "", error};
        return failed;
    }

    // One seed is the exact single-seed path (bitwise); Human mode has
    // no seed sensitivity worth exploring.
    if (normalized.portfolio.seeds <= 1 || base.mode == PlacerMode::Human)
        return run(topo, base);

    const int n = normalized.portfolio.seeds;
    PortfolioStats stats;
    stats.portfolio = true;
    stats.seeds = n;
    stats.candidates.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        // Seed offsets wrap mod 2^64 (unsigned arithmetic is defined);
        // n consecutive values are always distinct.
        stats.candidates[static_cast<std::size_t>(i)].seed =
            base.placer.seed + static_cast<std::uint64_t>(i);
    }

    std::vector<int> alive(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        alive[static_cast<std::size_t>(i)] = i;
    std::vector<char> probe_ok(static_cast<std::size_t>(n), 1);
    TrajectoryRecorder recorder(static_cast<std::size_t>(n));

    // Successive-halving probe rungs: truncated placements at a
    // doubling iteration budget, ranked on the trajectory tails.
    long long checkpoint = normalized.portfolio.pruneAt;
    while (static_cast<int>(alive.size()) > 1 &&
           checkpoint < normalized.placer.maxIters &&
           !cancel_.cancelled()) {
        const int keep = std::max(
            1, static_cast<int>(std::ceil(
                   static_cast<double>(alive.size()) *
                   normalized.portfolio.keepFrac)));
        if (keep >= static_cast<int>(alive.size()))
            break; // keepFrac pins every candidate; probing buys nothing.

        recorder.clear();
        std::vector<FlowResult> probes(alive.size());
        const auto probe_job = [&](std::size_t k) {
            const int ci = alive[k];
            FlowParams probe = base;
            probe.placer.seed =
                stats.candidates[static_cast<std::size_t>(ci)].seed;
            probe.placer.maxIters = static_cast<int>(checkpoint);
            probe.placer.threads = 1;
            probes[k] = runTruncatedProbe(topo, probe, ci, &recorder,
                                          &cancel_);
        };
        const int workers = std::min<int>(
            ThreadPool::resolveThreadCount(params_.workers),
            static_cast<int>(alive.size()));
        if (workers <= 1) {
            for (std::size_t k = 0; k < alive.size(); ++k)
                probe_job(k);
        } else {
            if (!batch_ || batch_->threads() != workers)
                batch_ = std::make_unique<ThreadPool>(workers);
            std::atomic<std::size_t> next{0};
            batch_->forChunks(
                static_cast<std::size_t>(workers),
                [&](int, std::size_t, std::size_t) {
                    for (std::size_t k = next.fetch_add(1);
                         k < alive.size(); k = next.fetch_add(1))
                        probe_job(k);
                });
        }
        ++stats.rungs;

        for (std::size_t k = 0; k < alive.size(); ++k) {
            const std::size_t ci = static_cast<std::size_t>(alive[k]);
            probe_ok[ci] = probes[k].status.ok() ? 1 : 0;
            const auto &traj = recorder.of(ci);
            if (!traj.empty()) {
                stats.candidates[ci].probeOverflow = traj.back().overflow;
                stats.candidates[ci].probeHpwl = traj.back().hpwl;
            }
        }

        std::vector<int> order = alive;
        std::sort(order.begin(), order.end(), [&](int a, int b) {
            const auto &ca = stats.candidates[static_cast<std::size_t>(a)];
            const auto &cb = stats.candidates[static_cast<std::size_t>(b)];
            const std::size_t ia = static_cast<std::size_t>(a);
            const std::size_t ib = static_cast<std::size_t>(b);
            if (probe_ok[ia] != probe_ok[ib])
                return probe_ok[ia] > probe_ok[ib];
            if (ca.probeOverflow != cb.probeOverflow)
                return ca.probeOverflow < cb.probeOverflow;
            if (ca.probeHpwl != cb.probeHpwl)
                return ca.probeHpwl < cb.probeHpwl;
            return a < b;
        });
        std::vector<int> survivors(order.begin(), order.begin() + keep);
        // The base seed never gets pruned: its full run is exactly the
        // single-seed flow, so keeping it makes the portfolio's final
        // pick dominate single-seed quality by construction.
        if (std::find(survivors.begin(), survivors.end(), 0) ==
            survivors.end())
            survivors.push_back(0);
        std::sort(survivors.begin(), survivors.end());
        for (const int ci : alive) {
            if (std::find(survivors.begin(), survivors.end(), ci) ==
                survivors.end()) {
                stats.candidates[static_cast<std::size_t>(ci)]
                    .prunedAtIters = static_cast<int>(checkpoint);
            }
        }
        alive = std::move(survivors);
        checkpoint *= 2;
    }

    if (cancel_.cancelled()) {
        FlowResult cancelled;
        cancelled.status = {FlowCode::Cancelled, "portfolio",
                            "cancelled during portfolio probes"};
        cancelled.portfolioStats = std::move(stats);
        return cancelled;
    }

    // Survivors run the complete flow (detailed stage included when
    // enabled), each single-threaded so the winner is bitwise-identical
    // to a serial replay of its seed. The external observer stays
    // detached: per-candidate events would interleave meaninglessly.
    std::vector<FlowParams> fulls;
    fulls.reserve(alive.size());
    for (const int ci : alive) {
        FlowParams full = base;
        full.placer.seed =
            stats.candidates[static_cast<std::size_t>(ci)].seed;
        full.placer.threads = 1;
        fulls.push_back(full);
    }
    FlowObserver *const saved = observer_;
    observer_ = nullptr;
    std::vector<FlowResult> finals = runBatch(topo, fulls);
    observer_ = saved;

    std::size_t winner_k = 0;
    bool have_winner = false;
    for (std::size_t k = 0; k < alive.size(); ++k) {
        const std::size_t ci = static_cast<std::size_t>(alive[k]);
        stats.candidates[ci].ranFull = true;
        if (!finals[k].status.ok())
            continue;
        stats.candidates[ci].finalHpwl = layoutHpwl(finals[k].netlist);
        const auto better = [&](std::size_t a, std::size_t b) {
            // Prefer legal layouts, then lower HPWL, then lower offset.
            const FlowResult &ra = finals[a];
            const FlowResult &rb = finals[b];
            if (ra.legal.legal != rb.legal.legal)
                return ra.legal.legal;
            const double ha = stats.candidates[static_cast<std::size_t>(
                                                   alive[a])]
                                  .finalHpwl;
            const double hb = stats.candidates[static_cast<std::size_t>(
                                                   alive[b])]
                                  .finalHpwl;
            if (ha != hb)
                return ha < hb;
            return alive[a] < alive[b];
        };
        if (!have_winner || better(k, winner_k)) {
            winner_k = k;
            have_winner = true;
        }
    }
    // With no ok candidate the base seed's result (alive is sorted, so
    // k = 0 is the base) carries its own error status back.

    const std::size_t winner_ci =
        static_cast<std::size_t>(alive[winner_k]);
    stats.winnerSeed = stats.candidates[winner_ci].seed;
    stats.candidates[winner_ci].winner = true;
    FlowResult result = std::move(finals[winner_k]);
    result.portfolioStats = std::move(stats);
    return result;
}

} // namespace qplacer
