/**
 * @file
 * Cooperative cancellation token.
 *
 * A CancelToken is a shared flag a driver sets and long-running
 * library code polls at safe points (optimizer iterations,
 * legalization attempts). Cancellation is cooperative: work stops at
 * the next poll, partial results stay in a consistent state, and the
 * caller learns about the early exit through a `cancelled` flag on
 * the result rather than an exception.
 *
 * Thread-safe: cancel() may be called from any thread (e.g. an
 * observer callback or a signal-handling thread) while workers poll.
 */

#ifndef QPLACER_UTIL_CANCEL_HPP
#define QPLACER_UTIL_CANCEL_HPP

#include <atomic>

namespace qplacer {

/** Shared one-way cancellation flag (resettable between runs). */
class CancelToken
{
  public:
    CancelToken() = default;

    CancelToken(const CancelToken &) = delete;
    CancelToken &operator=(const CancelToken &) = delete;

    /** Request cancellation; all holders observe it at the next poll. */
    void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

    /** True once cancel() has been called (until reset()). */
    bool cancelled() const
    {
        return cancelled_.load(std::memory_order_relaxed);
    }

    /** Re-arm the token for another run. */
    void reset() { cancelled_.store(false, std::memory_order_relaxed); }

  private:
    std::atomic<bool> cancelled_{false};
};

} // namespace qplacer

#endif // QPLACER_UTIL_CANCEL_HPP
