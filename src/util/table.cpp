#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace qplacer {

void
TextTable::header(std::vector<std::string> columns)
{
    header_ = std::move(columns);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r);

    std::ostringstream oss;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i)
                oss << "  ";
            oss << cells[i];
            if (i + 1 < cells.size())
                oss << std::string(widths[i] - cells[i].size(), ' ');
        }
        oss << '\n';
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t i = 0; i < widths.size(); ++i)
            total += widths[i] + (i ? 2 : 0);
        oss << std::string(total, '-') << '\n';
    }
    for (const auto &r : rows_)
        emit(r);
    return oss.str();
}

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::fidelity(double f)
{
    if (f < 1e-4)
        return "<1e-4";
    return num(f, 4);
}

} // namespace qplacer
