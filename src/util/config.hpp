/**
 * @file
 * Lightweight key=value configuration with environment-variable override.
 *
 * Bench harnesses read QP_* environment variables (e.g. QP_SUBSETS=10) so
 * expensive sweeps can be shortened without recompiling.
 */

#ifndef QPLACER_UTIL_CONFIG_HPP
#define QPLACER_UTIL_CONFIG_HPP

#include <map>
#include <string>

namespace qplacer {

/** String-keyed configuration map with typed accessors. */
class Config
{
  public:
    Config() = default;

    /** Set a raw value. */
    void set(const std::string &key, const std::string &value);

    /** True if the key is present. */
    bool has(const std::string &key) const;

    /** Raw value or @p fallback. */
    std::string getString(const std::string &key,
                          const std::string &fallback = "") const;

    /** Integer value or @p fallback; fatal() on unparsable. */
    long long getInt(const std::string &key, long long fallback) const;

    /** Double value or @p fallback; fatal() on unparsable. */
    double getDouble(const std::string &key, double fallback) const;

    /** Boolean: accepts 0/1/true/false/yes/no. */
    bool getBool(const std::string &key, bool fallback) const;

    /**
     * Read an environment variable, falling back to @p fallback.
     * Used for QP_SUBSETS / QP_MAX_ITERS style overrides.
     */
    static long long envInt(const std::string &name, long long fallback);

    /** Environment double override. */
    static double envDouble(const std::string &name, double fallback);

  private:
    std::map<std::string, std::string> values_;
};

} // namespace qplacer

#endif // QPLACER_UTIL_CONFIG_HPP
