/**
 * @file
 * Logging and error-reporting primitives.
 *
 * Follows the gem5 convention: inform() for status, warn() for suspicious
 * but survivable conditions, fatal() for user errors (clean exit), and
 * panic() for internal invariant violations (abort).
 */

#ifndef QPLACER_UTIL_LOGGING_HPP
#define QPLACER_UTIL_LOGGING_HPP

#include <sstream>
#include <string>

namespace qplacer {

/** Verbosity levels for the global logger. */
enum class LogLevel { Silent = 0, Warn = 1, Info = 2, Debug = 3 };

/**
 * Minimal global logger. emit() serializes concurrent callers behind a
 * mutex so batch-session jobs running on worker threads can log safely;
 * setLevel() is still driver-thread-only (configure before spawning
 * work). Hot loops should stay log-free regardless -- the lock makes
 * concurrent logging safe, not cheap.
 */
class Logger
{
  public:
    /** Access the process-wide logger instance. */
    static Logger &instance();

    /** Set the verbosity threshold. */
    void setLevel(LogLevel level) { level_ = level; }

    /** Current verbosity threshold. */
    LogLevel level() const { return level_; }

    /** Emit a message at the given level (filtered by threshold). */
    void emit(LogLevel level, const std::string &msg);

  private:
    Logger();

    LogLevel level_;
};

/** Status message for the user; no connotation of misbehaviour. */
void inform(const std::string &msg);

/** Something may be wrong but execution continues. */
void warn(const std::string &msg);

/** Debug-level trace message. */
void debug(const std::string &msg);

/**
 * Unrecoverable *user* error (bad configuration, invalid arguments).
 * Throws std::runtime_error so tests and callers can observe it.
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Unrecoverable *internal* error: an invariant the library itself
 * guarantees has been violated. Throws std::logic_error.
 */
[[noreturn]] void panic(const std::string &msg);

/** printf-free formatting helper: str("a=", a, " b=", b). */
template <typename... Args>
std::string
str(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

} // namespace qplacer

#endif // QPLACER_UTIL_LOGGING_HPP
