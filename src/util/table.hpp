/**
 * @file
 * Aligned plain-text table printer. The bench binaries print the paper's
 * tables/figure series through this so their stdout is directly readable.
 */

#ifndef QPLACER_UTIL_TABLE_HPP
#define QPLACER_UTIL_TABLE_HPP

#include <string>
#include <vector>

namespace qplacer {

/** Collects rows of string cells and renders them column-aligned. */
class TextTable
{
  public:
    /** Set the column headers. */
    void header(std::vector<std::string> columns);

    /** Append a row (cell count may differ from header; padded). */
    void row(std::vector<std::string> cells);

    /** Render with aligned columns separated by two spaces. */
    std::string render() const;

    /** Format a double with the given precision. */
    static std::string num(double v, int precision = 4);

    /** Format a fidelity the way the paper does: "<1e-4" below 1e-4. */
    static std::string fidelity(double f);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace qplacer

#endif // QPLACER_UTIL_TABLE_HPP
