/**
 * @file
 * Fault-injection registry: named failpoint sites planted at the
 * critical seams of the serving path (queue admission, worker job
 * pickup, prior-store capture/load, snapshot write, socket emit).
 *
 * A site is a plain string the code passes to QPLACER_FAILPOINT();
 * nothing happens unless the site has been armed with an action:
 *
 *   off          - no-op (default for every site).
 *   error        - the macro returns true; the caller fails the
 *                  operation with an injected, clearly-labelled error.
 *   delay(N)     - sleep N milliseconds at the site, then continue.
 *   crash        - flush stdio and terminate the process immediately
 *                  (std::_Exit, no atexit handlers -- the closest
 *                  in-process stand-in for `kill -9`). Buffered
 *                  output is flushed first so every response the
 *                  daemon already emitted stays observable.
 *
 * Arming happens either programmatically (tests), from the
 * QPLACER_FAILPOINTS environment variable ("site=error;other=delay(50)",
 * read by qplacer_server under --enable-failpoints), or over the wire
 * via the protocol's "failpoint" request (same gate).
 *
 * Cost when disarmed: QPLACER_FAILPOINT() is a single relaxed atomic
 * load of a process-wide counter -- no lock, no map lookup, no string
 * work -- so planted sites are effectively free in production.
 */

#ifndef QPLACER_UTIL_FAILPOINT_HPP
#define QPLACER_UTIL_FAILPOINT_HPP

#include <atomic>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace qplacer {

/** What an armed failpoint does when its site is hit. */
enum class FailAction
{
    Off,   ///< Site disarmed; the macro is a no-op.
    Error, ///< Caller fails the operation with an injected error.
    Delay, ///< Sleep for delayMs, then continue normally.
    Crash, ///< Flush stdio and _Exit the process (kill -9 stand-in).
};

/** One armed site (Failpoints::armed() snapshot entry). */
struct FailpointSpec
{
    std::string site;
    FailAction action = FailAction::Off;
    int delayMs = 0;
};

/** The process-wide failpoint registry. */
class Failpoints
{
  public:
    static Failpoints &instance();

    /** True when any site is armed (the macro's fast-path gate). */
    static bool anyArmed()
    {
        return armedCount_.load(std::memory_order_relaxed) > 0;
    }

    /**
     * Arm @p site with @p spec: "off", "error", "crash", or
     * "delay(N)" with N in milliseconds. "off" disarms. Returns false
     * with a message in @p error on a malformed spec.
     */
    bool arm(const std::string &site, const std::string &spec,
             std::string *error = nullptr);

    /**
     * Arm sites from an environment-style list:
     * "site=spec;site2=spec2" (';' or ',' separated, empty entries
     * ignored). All-or-nothing: on a malformed entry nothing changes
     * and @p error describes the problem.
     */
    bool armFromList(const std::string &list, std::string *error = nullptr);

    /** Disarm one site (idempotent). */
    void disarm(const std::string &site);

    /** Disarm everything (test teardown). */
    void disarmAll();

    /** Snapshot of the armed sites, sorted by site name. */
    std::vector<FailpointSpec> armed() const;

    /**
     * Evaluate @p site: Delay sleeps here, Crash flushes stdio and
     * terminates the process here; returns true only for Error, in
     * which case the caller must fail the surrounding operation.
     * Callers use QPLACER_FAILPOINT() instead of calling this
     * directly so the disarmed path stays one atomic load.
     */
    bool shouldFail(const char *site);

  private:
    Failpoints() = default;

    static std::atomic<int> armedCount_;

    mutable std::mutex mu_;
    std::map<std::string, FailpointSpec> sites_;
};

/**
 * Hit a failpoint site. Evaluates to true when the caller must fail
 * the operation with an injected error; delay/crash actions happen
 * inside. One relaxed atomic load when nothing is armed.
 */
#define QPLACER_FAILPOINT(site)                                             \
    (::qplacer::Failpoints::anyArmed() &&                                   \
     ::qplacer::Failpoints::instance().shouldFail(site))

} // namespace qplacer

#endif // QPLACER_UTIL_FAILPOINT_HPP
