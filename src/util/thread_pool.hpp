/**
 * @file
 * Fixed-size worker pool with a deterministic parallel-for.
 *
 * The pool splits an index range [0, n) into exactly threads() chunks
 * with boundaries that depend only on (n, threads()), runs one chunk
 * per thread (chunk 0 on the caller), and lets the caller combine
 * per-chunk partial results in chunk-index order. This makes every
 * parallel region bitwise-deterministic for a fixed thread count and
 * reproducible within floating-point tolerance across thread counts.
 *
 * With threads() == 1 (or a null pool passed to the free helpers) the
 * range runs serially as a single chunk on the calling thread, which
 * is bitwise-identical to the pre-threading code paths.
 *
 * Usage notes:
 *  - parallelFor bodies must not throw for control flow; an escaping
 *    exception is captured and rethrown on the caller after the region
 *    completes, but the partial work is unspecified.
 *  - Regions are not reentrant: a body must not start another region
 *    on the same pool.
 *  - The global Logger serializes emits behind a mutex, so bodies may
 *    log when they must (batch-session jobs do) -- but a lock in a hot
 *    loop serializes the region, so keep per-chunk bodies log-free.
 */

#ifndef QPLACER_UTIL_THREAD_POOL_HPP
#define QPLACER_UTIL_THREAD_POOL_HPP

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qplacer {

/** Fixed pool of worker threads executing deterministic chunked loops. */
class ThreadPool
{
  public:
    /** Body of a chunked loop: (chunk index, begin, end). */
    using ChunkBody = std::function<void(int, std::size_t, std::size_t)>;

    /**
     * @param threads Worker count; <= 0 picks resolveThreadCount(0)
     *                (hardware concurrency, capped). A pool of size 1
     *                spawns no threads and runs everything inline.
     */
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of threads (and chunks per region); always >= 1. */
    int threads() const { return threads_; }

    /**
     * Map a requested thread count to an effective one: positive
     * requests are honored (capped at kMaxThreads), zero or negative
     * requests resolve to the hardware concurrency capped at
     * kAutoThreadCap. Always >= 1.
     */
    static int resolveThreadCount(int requested);

    /** Start of chunk @p chunk when [0, n) is split @p chunks ways. */
    static std::size_t chunkBegin(std::size_t n, int chunks, int chunk);

    /**
     * Run @p body over [0, n) split into threads() fixed chunks, one
     * per thread; chunk 0 runs on the calling thread. Returns after
     * every chunk has finished. Empty chunks are skipped.
     *
     * When n < @p serial_below the whole range runs inline as a single
     * chunk 0 instead: waking the workers costs more than the loop for
     * tiny ranges. The decision depends only on (n, serial_below), so
     * determinism for a fixed thread count is preserved.
     */
    void forChunks(std::size_t n, const ChunkBody &body,
                   std::size_t serial_below = 0);

    /** Hard cap on explicitly requested thread counts. */
    static constexpr int kMaxThreads = 256;

    /** Cap applied to the automatic (hardware concurrency) choice. */
    static constexpr int kAutoThreadCap = 16;

    /**
     * Suggested serial_below thresholds by per-item cost. Calibrated
     * against a region wake/join cost of ~10us: below these counts the
     * serial loop beats waking the pool.
     */
    static constexpr std::size_t kGrainFine = 4096;  ///< Elementwise ops.
    static constexpr std::size_t kGrainMedium = 256; ///< Per-instance/net.
    static constexpr std::size_t kGrainCoarse = 64;  ///< 1-D transforms.

  private:
    void workerLoop(int chunk);

    int threads_;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable workCv_;
    std::condition_variable doneCv_;
    const ChunkBody *job_ = nullptr; ///< Current region, valid in-region.
    std::size_t jobN_ = 0;           ///< Range length of the region.
    std::uint64_t generation_ = 0;   ///< Bumped once per region.
    int pending_ = 0;                ///< Workers still inside the region.
    std::exception_ptr firstError_;  ///< First body exception, if any.
    bool stop_ = false;
};

/**
 * Upper bound on the chunks a region over @p pool uses (1 for a null
 * pool). Size per-chunk scratch buffers with this.
 */
int parallelChunks(const ThreadPool *pool);

/**
 * Chunk count a region over [0, n) actually uses: 1 for a null pool
 * or when the serial_below cutoff applies, pool->threads() otherwise.
 */
int parallelChunkCount(const ThreadPool *pool, std::size_t n,
                       std::size_t serial_below);

/**
 * Chunked loop over [0, n): body(chunk, begin, end). Serial single
 * chunk when @p pool is null or n < @p serial_below; otherwise
 * pool->forChunks.
 */
void parallelForChunks(ThreadPool *pool, std::size_t n,
                       const ThreadPool::ChunkBody &body,
                       std::size_t serial_below = 0);

/** Plain parallel loop over [0, n): body(begin, end) per chunk. */
void parallelFor(ThreadPool *pool, std::size_t n,
                 const std::function<void(std::size_t, std::size_t)> &body,
                 std::size_t serial_below = 0);

/**
 * Sum of body(begin, end) over all chunks, accumulated in chunk-index
 * order so the result is deterministic for a fixed chunk count.
 */
double
parallelReduce(ThreadPool *pool, std::size_t n,
               const std::function<double(std::size_t, std::size_t)> &body,
               std::size_t serial_below = 0);

} // namespace qplacer

#endif // QPLACER_UTIL_THREAD_POOL_HPP
