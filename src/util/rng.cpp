#include "util/rng.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace qplacer {

namespace {

std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
    : hasSpare_(false), spare_(0.0)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::below(std::uint64_t n)
{
    if (n == 0)
        panic("Rng::below(0)");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
    std::uint64_t v = next();
    while (v >= limit)
        v = next();
    return v % n;
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    if (hi < lo)
        panic(str("Rng::range: hi < lo (", hi, " < ", lo, ")"));
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
}

double
Rng::gaussian()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spare_;
    }
    double u, v, s;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    hasSpare_ = true;
    return u * factor;
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

std::vector<std::size_t>
Rng::sampleIndices(std::size_t n, std::size_t k)
{
    if (k > n)
        panic(str("Rng::sampleIndices: k > n (", k, " > ", n, ")"));
    std::vector<std::size_t> pool(n);
    for (std::size_t i = 0; i < n; ++i)
        pool[i] = i;
    // Partial Fisher-Yates: first k entries are the sample.
    for (std::size_t i = 0; i < k; ++i) {
        const std::size_t j = i + below(n - i);
        std::swap(pool[i], pool[j]);
    }
    pool.resize(k);
    return pool;
}

} // namespace qplacer
