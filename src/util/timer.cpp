#include "util/timer.hpp"

#include "util/logging.hpp"

namespace qplacer {

void
Timer::reset()
{
    start_ = std::chrono::steady_clock::now();
}

double
Timer::seconds() const
{
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
}

void
AccumTimer::start()
{
    if (running_)
        panic("AccumTimer::start: already running");
    running_ = true;
    current_.reset();
}

void
AccumTimer::stop()
{
    if (!running_)
        panic("AccumTimer::stop: not running");
    running_ = false;
    total_ += current_.seconds();
    ++laps_;
}

} // namespace qplacer
