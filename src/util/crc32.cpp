/** @file CRC-32 implementation; contract in crc32.hpp. */

#include "util/crc32.hpp"

#include <array>

namespace qplacer {

namespace {

/** The reflected IEEE 802.3 table, generated once at first use. */
const std::array<std::uint32_t, 256> &
crcTable()
{
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t len, std::uint32_t seed)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    const auto &table = crcTable();
    std::uint32_t c = seed ^ 0xffffffffu;
    for (std::size_t i = 0; i < len; ++i)
        c = table[(c ^ bytes[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

} // namespace qplacer
