/**
 * @file
 * Wall-clock timing helpers used by the runtime benchmarks (Table II).
 */

#ifndef QPLACER_UTIL_TIMER_HPP
#define QPLACER_UTIL_TIMER_HPP

#include <chrono>

namespace qplacer {

/** Simple monotonic stopwatch. */
class Timer
{
  public:
    Timer() { reset(); }

    /** Restart the stopwatch. */
    void reset();

    /** Seconds elapsed since construction or the last reset(). */
    double seconds() const;

    /** Milliseconds elapsed. */
    double millis() const { return seconds() * 1e3; }

  private:
    std::chrono::steady_clock::time_point start_;
};

/**
 * Accumulates time across multiple start/stop windows; used to report
 * per-phase breakdowns of the placement flow.
 */
class AccumTimer
{
  public:
    AccumTimer() = default;

    /** Open a timing window. */
    void start();

    /** Close the current window, adding its duration to the total. */
    void stop();

    /** Total accumulated seconds over all closed windows. */
    double seconds() const { return total_; }

    /** Number of closed windows. */
    int laps() const { return laps_; }

  private:
    Timer current_;
    double total_ = 0.0;
    int laps_ = 0;
    bool running_ = false;
};

} // namespace qplacer

#endif // QPLACER_UTIL_TIMER_HPP
