#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace qplacer {

int
ThreadPool::resolveThreadCount(int requested)
{
    if (requested > 0)
        return std::min(requested, kMaxThreads);
    const unsigned hw = std::thread::hardware_concurrency();
    const int detected = hw > 0 ? static_cast<int>(hw) : 1;
    return std::clamp(detected, 1, kAutoThreadCap);
}

std::size_t
ThreadPool::chunkBegin(std::size_t n, int chunks, int chunk)
{
    // Boundaries depend only on (n, chunks): chunk i covers
    // [i*n/chunks, (i+1)*n/chunks), so sizes differ by at most one.
    return n * static_cast<std::size_t>(chunk) /
           static_cast<std::size_t>(chunks);
}

ThreadPool::ThreadPool(int threads)
    : threads_(resolveThreadCount(threads))
{
    workers_.reserve(static_cast<std::size_t>(threads_) - 1);
    for (int chunk = 1; chunk < threads_; ++chunk)
        workers_.emplace_back([this, chunk] { workerLoop(chunk); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::workerLoop(int chunk)
{
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        workCv_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_)
            return;
        seen = generation_;
        const ChunkBody *job = job_;
        const std::size_t n = jobN_;
        lock.unlock();

        std::exception_ptr error;
        const std::size_t begin = chunkBegin(n, threads_, chunk);
        const std::size_t end = chunkBegin(n, threads_, chunk + 1);
        if (begin < end) {
            try {
                (*job)(chunk, begin, end);
            } catch (...) {
                error = std::current_exception();
            }
        }

        lock.lock();
        if (error && !firstError_)
            firstError_ = error;
        if (--pending_ == 0)
            doneCv_.notify_one();
    }
}

void
ThreadPool::forChunks(std::size_t n, const ChunkBody &body,
                      std::size_t serial_below)
{
    if (n == 0)
        return;
    if (threads_ == 1 || n < serial_below) {
        body(0, 0, n);
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (job_)
            panic("ThreadPool::forChunks: nested parallel region");
        job_ = &body;
        jobN_ = n;
        pending_ = threads_ - 1;
        ++generation_;
    }
    workCv_.notify_all();

    // The caller owns chunk 0; failures still wait for the workers so
    // the job state stays valid until everyone is out of the region.
    std::exception_ptr error;
    const std::size_t end0 = chunkBegin(n, threads_, 1);
    if (end0 > 0) {
        try {
            body(0, 0, end0);
        } catch (...) {
            error = std::current_exception();
        }
    }

    std::unique_lock<std::mutex> lock(mutex_);
    doneCv_.wait(lock, [&] { return pending_ == 0; });
    job_ = nullptr;
    if (!error && firstError_)
        error = firstError_;
    firstError_ = nullptr;
    lock.unlock();
    if (error)
        std::rethrow_exception(error);
}

int
parallelChunks(const ThreadPool *pool)
{
    return pool ? pool->threads() : 1;
}

int
parallelChunkCount(const ThreadPool *pool, std::size_t n,
                   std::size_t serial_below)
{
    return pool && n >= serial_below ? pool->threads() : 1;
}

void
parallelForChunks(ThreadPool *pool, std::size_t n,
                  const ThreadPool::ChunkBody &body,
                  std::size_t serial_below)
{
    if (n == 0)
        return;
    if (!pool) {
        body(0, 0, n);
        return;
    }
    pool->forChunks(n, body, serial_below);
}

void
parallelFor(ThreadPool *pool, std::size_t n,
            const std::function<void(std::size_t, std::size_t)> &body,
            std::size_t serial_below)
{
    parallelForChunks(
        pool, n,
        [&](int, std::size_t begin, std::size_t end) {
            body(begin, end);
        },
        serial_below);
}

double
parallelReduce(ThreadPool *pool, std::size_t n,
               const std::function<double(std::size_t, std::size_t)> &body,
               std::size_t serial_below)
{
    if (n == 0)
        return 0.0;
    std::vector<double> partial(
        static_cast<std::size_t>(parallelChunks(pool)), 0.0);
    parallelForChunks(
        pool, n,
        [&](int chunk, std::size_t begin, std::size_t end) {
            partial[static_cast<std::size_t>(chunk)] = body(begin, end);
        },
        serial_below);
    double total = 0.0;
    for (double p : partial)
        total += p;
    return total;
}

} // namespace qplacer
