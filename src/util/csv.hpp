/**
 * @file
 * CSV writer for experiment output (bench harness dumps series here so
 * results can be re-plotted outside the repo).
 */

#ifndef QPLACER_UTIL_CSV_HPP
#define QPLACER_UTIL_CSV_HPP

#include <fstream>
#include <string>
#include <vector>

namespace qplacer {

/**
 * Streaming CSV writer. Values are quoted only when needed; numeric
 * values are formatted with enough precision to round-trip.
 */
class CsvWriter
{
  public:
    /** Open @p path for writing; throws via fatal() on failure. */
    explicit CsvWriter(const std::string &path);

    /** Write the header row. */
    void header(const std::vector<std::string> &columns);

    /** Append one data row of pre-formatted cells. */
    void row(const std::vector<std::string> &cells);

    /** Format a double for CSV (shortest round-trip-ish form). */
    static std::string cell(double v);

    /** Format an integer for CSV. */
    static std::string cell(long long v);

    /** Escape a string cell (quotes + commas). */
    static std::string cell(const std::string &v);

  private:
    void writeRow(const std::vector<std::string> &cells);

    std::ofstream out_;
    std::size_t columns_ = 0;
};

} // namespace qplacer

#endif // QPLACER_UTIL_CSV_HPP
