/**
 * @file
 * EINTR-retry wrappers for the socket syscalls the daemon's transport
 * loops on. A stray signal (SIGCHLD from a supervisor, a debugger
 * attach, a timer) interrupts recv/send/accept with EINTR; without
 * these wrappers that tears down a perfectly healthy connection
 * mid-job. Each wrapper simply retries while errno == EINTR and
 * otherwise behaves exactly like the underlying call.
 *
 * POSIX-only, like the socket transport itself (tools/qplacer_server).
 */

#ifndef QPLACER_UTIL_NET_RETRY_HPP
#define QPLACER_UTIL_NET_RETRY_HPP

#ifndef _WIN32

#include <cerrno>
#include <cstddef>

#include <sys/socket.h>
#include <sys/types.h>

namespace qplacer {

/** recv() that retries on EINTR; same return/errno contract. */
inline ssize_t
retryRecv(int fd, void *buf, std::size_t len, int flags)
{
    for (;;) {
        const ssize_t n = ::recv(fd, buf, len, flags);
        if (n >= 0 || errno != EINTR)
            return n;
    }
}

/** send() that retries on EINTR; same return/errno contract. */
inline ssize_t
retrySend(int fd, const void *buf, std::size_t len, int flags)
{
    for (;;) {
        const ssize_t n = ::send(fd, buf, len, flags);
        if (n >= 0 || errno != EINTR)
            return n;
    }
}

/** accept() that retries on EINTR; same return/errno contract. */
inline int
retryAccept(int fd, sockaddr *addr, socklen_t *addrlen)
{
    for (;;) {
        const int n = ::accept(fd, addr, addrlen);
        if (n >= 0 || errno != EINTR)
            return n;
    }
}

/**
 * Send all @p len bytes of @p data (retrying EINTR and short writes);
 * false once the peer is gone or the send fails for real.
 */
inline bool
sendAll(int fd, const char *data, std::size_t len, int flags)
{
    std::size_t sent = 0;
    while (sent < len) {
        const ssize_t n = retrySend(fd, data + sent, len - sent, flags);
        if (n <= 0)
            return false;
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace qplacer

#endif // !_WIN32

#endif // QPLACER_UTIL_NET_RETRY_HPP
