/**
 * @file
 * CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant): the checksum
 * guarding every record of the prior-store journal and snapshot files
 * (service/prior_store.hpp). Table-driven, byte-at-a-time -- these
 * records are small and written off the hot path, so simplicity wins
 * over a sliced implementation.
 */

#ifndef QPLACER_UTIL_CRC32_HPP
#define QPLACER_UTIL_CRC32_HPP

#include <cstddef>
#include <cstdint>
#include <string>

namespace qplacer {

/**
 * CRC-32 of @p len bytes at @p data, continuing from @p seed (0 for a
 * fresh checksum). crc32(crc32(a), b) == crc32(a concat b).
 */
std::uint32_t crc32(const void *data, std::size_t len,
                    std::uint32_t seed = 0);

/** Convenience overload for strings. */
inline std::uint32_t
crc32(const std::string &text, std::uint32_t seed = 0)
{
    return crc32(text.data(), text.size(), seed);
}

} // namespace qplacer

#endif // QPLACER_UTIL_CRC32_HPP
