/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic choices in the library (initial placement jitter, subset
 * sampling, tie-breaking) flow through Rng so runs are reproducible from a
 * single seed.
 */

#ifndef QPLACER_UTIL_RNG_HPP
#define QPLACER_UTIL_RNG_HPP

#include <cstdint>
#include <vector>

namespace qplacer {

/**
 * Deterministic RNG built on xoshiro256**. We implement the generator
 * ourselves (rather than std::mt19937) so the stream is identical across
 * standard libraries, which keeps golden test values portable.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t below(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Standard normal via Box-Muller. */
    double gaussian();

    /** Normal with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            const std::size_t j = below(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Sample k distinct indices from [0, n) (k <= n). */
    std::vector<std::size_t> sampleIndices(std::size_t n, std::size_t k);

  private:
    std::uint64_t s_[4];
    bool hasSpare_;
    double spare_;
};

} // namespace qplacer

#endif // QPLACER_UTIL_RNG_HPP
