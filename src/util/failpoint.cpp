/** @file Failpoint registry implementation; contract in failpoint.hpp. */

#include "util/failpoint.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "util/logging.hpp"

namespace qplacer {

std::atomic<int> Failpoints::armedCount_{0};

Failpoints &
Failpoints::instance()
{
    static Failpoints registry;
    return registry;
}

namespace {

/** Parse one action spec; false + message on malformed input. */
bool
parseSpec(const std::string &spec, FailAction &action, int &delay_ms,
          std::string *error)
{
    delay_ms = 0;
    if (spec == "off") {
        action = FailAction::Off;
        return true;
    }
    if (spec == "error") {
        action = FailAction::Error;
        return true;
    }
    if (spec == "crash") {
        action = FailAction::Crash;
        return true;
    }
    if (spec.rfind("delay(", 0) == 0 && spec.size() >= 8 &&
        spec.back() == ')') {
        const std::string digits = spec.substr(6, spec.size() - 7);
        bool numeric = !digits.empty() && digits.size() <= 7;
        for (char c : digits)
            numeric = numeric && c >= '0' && c <= '9';
        if (numeric) {
            action = FailAction::Delay;
            delay_ms = std::atoi(digits.c_str());
            return true;
        }
    }
    if (error != nullptr)
        *error = "bad failpoint action '" + spec +
                 "' (expected off|error|crash|delay(ms))";
    return false;
}

} // namespace

bool
Failpoints::arm(const std::string &site, const std::string &spec,
                std::string *error)
{
    if (site.empty()) {
        if (error != nullptr)
            *error = "failpoint site must be non-empty";
        return false;
    }
    FailAction action;
    int delay_ms;
    if (!parseSpec(spec, action, delay_ms, error))
        return false;

    std::lock_guard<std::mutex> lock(mu_);
    const auto it = sites_.find(site);
    if (action == FailAction::Off) {
        if (it != sites_.end()) {
            sites_.erase(it);
            armedCount_.fetch_sub(1, std::memory_order_relaxed);
        }
        return true;
    }
    if (it == sites_.end())
        armedCount_.fetch_add(1, std::memory_order_relaxed);
    sites_[site] = FailpointSpec{site, action, delay_ms};
    return true;
}

bool
Failpoints::armFromList(const std::string &list, std::string *error)
{
    // Validate every entry before arming any: a typo in the middle of
    // QPLACER_FAILPOINTS must not leave the registry half-armed.
    std::vector<std::pair<std::string, std::string>> entries;
    std::size_t start = 0;
    while (start <= list.size()) {
        std::size_t end = list.find_first_of(";,", start);
        if (end == std::string::npos)
            end = list.size();
        const std::string entry = list.substr(start, end - start);
        start = end + 1;
        if (entry.empty())
            continue;
        const std::size_t eq = entry.find('=');
        if (eq == std::string::npos || eq == 0) {
            if (error != nullptr)
                *error = "bad failpoint entry '" + entry +
                         "' (expected site=action)";
            return false;
        }
        FailAction action;
        int delay_ms;
        if (!parseSpec(entry.substr(eq + 1), action, delay_ms, error))
            return false;
        entries.emplace_back(entry.substr(0, eq), entry.substr(eq + 1));
    }
    for (const auto &[site, spec] : entries)
        if (!arm(site, spec, error))
            return false;
    return true;
}

void
Failpoints::disarm(const std::string &site)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (sites_.erase(site) > 0)
        armedCount_.fetch_sub(1, std::memory_order_relaxed);
}

void
Failpoints::disarmAll()
{
    std::lock_guard<std::mutex> lock(mu_);
    armedCount_.fetch_sub(static_cast<int>(sites_.size()),
                          std::memory_order_relaxed);
    sites_.clear();
}

std::vector<FailpointSpec>
Failpoints::armed() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<FailpointSpec> out;
    out.reserve(sites_.size());
    for (const auto &[site, spec] : sites_)
        out.push_back(spec);
    return out;
}

bool
Failpoints::shouldFail(const char *site)
{
    FailpointSpec spec;
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = sites_.find(site);
        if (it == sites_.end())
            return false;
        spec = it->second;
    }
    switch (spec.action) {
    case FailAction::Off:
        return false;
    case FailAction::Error:
        warn(str("failpoint '", site, "': injecting error"));
        return true;
    case FailAction::Delay:
        std::this_thread::sleep_for(std::chrono::milliseconds(spec.delayMs));
        return false;
    case FailAction::Crash:
        // The kill -9 stand-in: flush everything already written (an
        // acked response must stay observable), then terminate without
        // atexit handlers, destructors, or flushing anything further.
        std::fprintf(stderr, "failpoint '%s': crashing process\n", site);
        std::fflush(nullptr);
        std::_Exit(137);
    }
    return false;
}

} // namespace qplacer
