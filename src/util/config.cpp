#include "util/config.hpp"

#include <cstdlib>

#include "util/logging.hpp"

namespace qplacer {

void
Config::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

bool
Config::has(const std::string &key) const
{
    return values_.count(key) > 0;
}

std::string
Config::getString(const std::string &key, const std::string &fallback) const
{
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
}

long long
Config::getInt(const std::string &key, long long fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    char *end = nullptr;
    const long long v = std::strtoll(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0')
        fatal("Config: key '" + key + "' is not an integer: " + it->second);
    return v;
}

double
Config::getDouble(const std::string &key, double fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        fatal("Config: key '" + key + "' is not a number: " + it->second);
    return v;
}

bool
Config::getBool(const std::string &key, bool fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    const std::string &v = it->second;
    if (v == "1" || v == "true" || v == "yes")
        return true;
    if (v == "0" || v == "false" || v == "no")
        return false;
    fatal("Config: key '" + key + "' is not a boolean: " + v);
}

long long
Config::envInt(const std::string &name, long long fallback)
{
    const char *env = std::getenv(name.c_str());
    if (!env)
        return fallback;
    char *end = nullptr;
    const long long v = std::strtoll(env, &end, 10);
    if (end == env || *end != '\0')
        return fallback;
    return v;
}

double
Config::envDouble(const std::string &name, double fallback)
{
    const char *env = std::getenv(name.c_str());
    if (!env)
        return fallback;
    char *end = nullptr;
    const double v = std::strtod(env, &end);
    if (end == env || *end != '\0')
        return fallback;
    return v;
}

} // namespace qplacer
