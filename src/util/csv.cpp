#include "util/csv.hpp"

#include <cstdio>

#include "util/logging.hpp"

namespace qplacer {

CsvWriter::CsvWriter(const std::string &path)
    : out_(path)
{
    if (!out_)
        fatal("CsvWriter: cannot open '" + path + "' for writing");
}

void
CsvWriter::header(const std::vector<std::string> &columns)
{
    columns_ = columns.size();
    writeRow(columns);
}

void
CsvWriter::row(const std::vector<std::string> &cells)
{
    if (columns_ != 0 && cells.size() != columns_) {
        fatal(str("CsvWriter: row has ", cells.size(), " cells, header has ",
                  columns_));
    }
    writeRow(cells);
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            out_ << ',';
        out_ << cells[i];
    }
    out_ << '\n';
}

std::string
CsvWriter::cell(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

std::string
CsvWriter::cell(long long v)
{
    return std::to_string(v);
}

std::string
CsvWriter::cell(const std::string &v)
{
    bool needs_quotes = false;
    for (char c : v) {
        if (c == ',' || c == '"' || c == '\n') {
            needs_quotes = true;
            break;
        }
    }
    if (!needs_quotes)
        return v;
    std::string out = "\"";
    for (char c : v) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace qplacer
