#include "util/logging.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <stdexcept>

namespace qplacer {

Logger::Logger()
    : level_(LogLevel::Info)
{
    if (const char *env = std::getenv("QP_LOG_LEVEL")) {
        const int v = std::atoi(env);
        if (v >= 0 && v <= 3)
            level_ = static_cast<LogLevel>(v);
    }
}

Logger &
Logger::instance()
{
    static Logger logger;
    return logger;
}

void
Logger::emit(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) > static_cast<int>(level_))
        return;
    // Serialize concurrent emitters (batch jobs log from pool workers)
    // so lines never interleave mid-message.
    static std::mutex emit_mutex;
    const std::lock_guard<std::mutex> lock(emit_mutex);
    const char *tag = "";
    switch (level) {
      case LogLevel::Warn:
        tag = "warn: ";
        break;
      case LogLevel::Info:
        tag = "info: ";
        break;
      case LogLevel::Debug:
        tag = "debug: ";
        break;
      default:
        break;
    }
    std::fprintf(stderr, "%s%s\n", tag, msg.c_str());
}

void
inform(const std::string &msg)
{
    Logger::instance().emit(LogLevel::Info, msg);
}

void
warn(const std::string &msg)
{
    Logger::instance().emit(LogLevel::Warn, msg);
}

void
debug(const std::string &msg)
{
    Logger::instance().emit(LogLevel::Debug, msg);
}

void
fatal(const std::string &msg)
{
    throw std::runtime_error("fatal: " + msg);
}

void
panic(const std::string &msg)
{
    throw std::logic_error("panic: " + msg);
}

} // namespace qplacer
