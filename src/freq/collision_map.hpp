/**
 * @file
 * Frequency collision map (Section IV-C1).
 *
 * Before placement, each instance gets the list of instances it may
 * crosstalk with: those within the detuning threshold, excluding
 * segments of the same resonator (the Kronecker-delta term of Eq. 10).
 * The placement engine iterates only these lists, never all-to-all.
 */

#ifndef QPLACER_FREQ_COLLISION_MAP_HPP
#define QPLACER_FREQ_COLLISION_MAP_HPP

#include <cstdint>
#include <vector>

#include "physics/constants.hpp"

namespace qplacer {

/** Per-instance lists of potentially-resonant partner instances. */
class CollisionMap
{
  public:
    /**
     * Build the map.
     * @param freqs_hz Frequency per instance.
     * @param group    Resonator id per instance (-1 for qubits);
     *                 same-group pairs are excluded.
     * @param threshold_hz Detuning threshold Delta_c.
     */
    CollisionMap(const std::vector<double> &freqs_hz,
                 const std::vector<int> &group,
                 double threshold_hz = kDetuningThresholdHz);

    /** Number of instances. */
    std::size_t size() const { return lists_.size(); }

    /** Potentially-resonant partners of instance @p i. */
    const std::vector<std::int32_t> &partners(std::size_t i) const;

    /** Total number of unordered collision pairs. */
    std::size_t numPairs() const { return numPairs_; }

    /** True if i and j appear in each other's lists. */
    bool collides(std::size_t i, std::size_t j) const;

  private:
    std::vector<std::vector<std::int32_t>> lists_;
    std::size_t numPairs_ = 0;
};

} // namespace qplacer

#endif // QPLACER_FREQ_COLLISION_MAP_HPP
