/**
 * @file
 * Frequency assigner (Fig. 7a): allocates frequencies to qubits and
 * coupling resonators so that all *interconnected* components are
 * detuned by more than the threshold.
 *
 * Interference graph: coupled qubit pairs, optionally augmented with
 * distance-2 pairs (spectator collisions), coloured with DSATUR. Colours
 * map to slot frequencies; when the device needs more colours than the
 * band has slots, slots are reused round-robin -- the resulting same-
 * frequency components are graph-distant and become the placement
 * engine's spatial-isolation workload.
 */

#ifndef QPLACER_FREQ_ASSIGNER_HPP
#define QPLACER_FREQ_ASSIGNER_HPP

#include <vector>

#include "freq/spectrum.hpp"
#include "topology/topology.hpp"

namespace qplacer {

/** Frequencies chosen for one device. */
struct FrequencyAssignment
{
    /** Frequency per qubit (Hz), indexed by topology qubit id. */
    std::vector<double> qubitFreqHz;

    /** Frequency per coupler/resonator (Hz), indexed by edge id. */
    std::vector<double> resonatorFreqHz;

    /** Colour per qubit (diagnostic). */
    std::vector<int> qubitColor;

    /** Colour per resonator (diagnostic). */
    std::vector<int> resonatorColor;

    /** Number of distinct qubit frequencies used. */
    int numQubitSlots = 0;

    /** Number of distinct resonator frequencies used. */
    int numResonatorSlots = 0;
};

/** Parameters of the frequency assigner. */
struct AssignerParams
{
    FrequencyBand qubitBand = FrequencyBand::qubitBand();
    FrequencyBand resonatorBand = FrequencyBand::resonatorBand();
    double detuningThresholdHz = kDetuningThresholdHz;

    /** Also separate distance-2 qubit pairs in frequency when possible. */
    bool distance2 = true;
};

/** Graph-colouring frequency assigner. */
class FrequencyAssigner
{
  public:
    explicit FrequencyAssigner(AssignerParams params = {});

    /** Assign frequencies for @p topo. */
    FrequencyAssignment assign(const Topology &topo) const;

    /**
     * DSATUR greedy colouring of @p graph; returns colour per node.
     * Exposed for testing.
     */
    static std::vector<int> dsatur(const Graph &graph);

    /**
     * Verify that no *coupled* pair of qubits (and no two resonators
     * sharing a qubit) is resonant under @p assignment. Returns the
     * number of violations.
     */
    int countDomainViolations(const Topology &topo,
                              const FrequencyAssignment &assignment) const;

  private:
    /**
     * Map colours to slot frequencies. When the colour count exceeds
     * the band's slot capacity, slots are reused -- but never between
     * colour classes joined by a *hard* edge (direct couplings), so the
     * frequency-domain isolation of connected components survives
     * crowding.
     */
    std::vector<double>
    colorsToFrequencies(const std::vector<int> &colors,
                        const Graph &hard_edges,
                        const FrequencyBand &band, int *slots_used) const;

    AssignerParams params_;
};

} // namespace qplacer

#endif // QPLACER_FREQ_ASSIGNER_HPP
