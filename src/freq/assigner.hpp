/**
 * @file
 * Frequency assigner (Fig. 7a): allocates frequencies to qubits and
 * coupling resonators so that all *interconnected* components are
 * detuned by more than the threshold.
 *
 * Interference graph: coupled qubit pairs, optionally augmented with
 * distance-2 pairs (spectator collisions), coloured with DSATUR. Colours
 * map to slot frequencies; when the device needs more colours than the
 * band has slots, slots are reused round-robin -- the resulting same-
 * frequency components are graph-distant and become the placement
 * engine's spatial-isolation workload.
 *
 * Scaling: the default engine selects DSATUR candidates from an ordered
 * saturation heap with per-node colour bitsets (O((n + m) log n)) and
 * builds the resonator share graph from per-qubit incident-coupler
 * lists (O(sum deg^2)); the pre-scaling linear-scan / all-pairs code
 * survives as AssignEngine::Reference for A/B timing and the
 * equivalence suites -- both engines produce identical assignments
 * (gated in bench/assign_scale and ctest -L assign).
 */

#ifndef QPLACER_FREQ_ASSIGNER_HPP
#define QPLACER_FREQ_ASSIGNER_HPP

#include <vector>

#include "freq/spectrum.hpp"
#include "topology/topology.hpp"

namespace qplacer {

/** Frequencies chosen for one device. */
struct FrequencyAssignment
{
    /** Frequency per qubit (Hz), indexed by topology qubit id. */
    std::vector<double> qubitFreqHz;

    /** Frequency per coupler/resonator (Hz), indexed by edge id. */
    std::vector<double> resonatorFreqHz;

    /** Colour per qubit (diagnostic). */
    std::vector<int> qubitColor;

    /** Colour per resonator (diagnostic). */
    std::vector<int> resonatorColor;

    /** Number of distinct qubit frequencies used. */
    int numQubitSlots = 0;

    /** Number of distinct resonator frequencies used. */
    int numResonatorSlots = 0;
};

/** Which assigner implementation runs (identical outputs either way). */
enum class AssignEngine
{
    /** Saturation-heap DSATUR + sparse incident-list graph loops. */
    Fast,

    /**
     * The pre-scaling code: linear-scan-over-std::set DSATUR and
     * all-pairs resonator loops. Kept for the equivalence suites and
     * the bench/assign_scale speedup gate.
     */
    Reference,
};

/**
 * Sub-stage wall clocks of one assign() call, surfaced through
 * FlowResult as "assign.stages" in qplacer_cli --report json.
 */
struct AssignStats
{
    double interferenceSeconds = 0.0;   ///< Qubit interference graph.
    double qubitColorSeconds = 0.0;     ///< Qubit DSATUR + slot mapping.
    double resonatorGraphSeconds = 0.0; ///< Resonator share graph.
    double resonatorColorSeconds = 0.0; ///< Resonator DSATUR + slots.
};

/** Parameters of the frequency assigner. */
struct AssignerParams
{
    FrequencyBand qubitBand = FrequencyBand::qubitBand();
    FrequencyBand resonatorBand = FrequencyBand::resonatorBand();
    double detuningThresholdHz = kDetuningThresholdHz;

    /** Also separate distance-2 qubit pairs in frequency when possible. */
    bool distance2 = true;

    /** Implementation to run (--set assigner.referenceEngine=1). */
    AssignEngine engine = AssignEngine::Fast;
};

/** Graph-colouring frequency assigner. */
class FrequencyAssigner
{
  public:
    explicit FrequencyAssigner(AssignerParams params = {});

    /**
     * Assign frequencies for @p topo. @p stats (optional) receives the
     * sub-stage wall clocks of this call.
     */
    FrequencyAssignment assign(const Topology &topo,
                               AssignStats *stats = nullptr) const;

    /**
     * DSATUR greedy colouring of @p graph; returns colour per node.
     * Selection order -- maximum saturation, then maximum degree, then
     * smallest index -- is implemented with an ordered candidate set
     * and per-node colour bitsets; colourings are identical to
     * dsaturReference on every graph. Exposed for testing.
     */
    static std::vector<int> dsatur(const Graph &graph);

    /**
     * The pre-scaling DSATUR: O(n) linear scan per selection over
     * per-node std::set colour sets. Retained as the equivalence
     * baseline for dsatur() and the bench/assign_scale gate.
     */
    static std::vector<int> dsaturReference(const Graph &graph);

    /**
     * Verify that no *coupled* pair of qubits (and no two resonators
     * sharing a qubit) is resonant under @p assignment. Returns the
     * number of violations. The resonator pass follows the configured
     * engine: per-qubit incident-coupler lists (Fast) or the all-pairs
     * scan (Reference); counts agree.
     */
    int countDomainViolations(const Topology &topo,
                              const FrequencyAssignment &assignment) const;

  private:
    /**
     * Map colours to slot frequencies. When the colour count exceeds
     * the band's slot capacity, slots are reused -- but never between
     * colour classes joined by a *hard* edge (direct couplings), so the
     * frequency-domain isolation of connected components survives
     * crowding. When even the hard chromatic number exceeds the slot
     * count, hard classes alias slots round-robin (deterministically,
     * one slot per class) and the unavoidable still-resonant coupled
     * pairs are counted and reported once.
     */
    std::vector<double>
    colorsToFrequencies(const std::vector<int> &colors,
                        const Graph &hard_edges,
                        const FrequencyBand &band, int *slots_used) const;

    /** Engine-dispatched DSATUR. */
    std::vector<int> colorGraph(const Graph &graph) const;

    AssignerParams params_;
};

} // namespace qplacer

#endif // QPLACER_FREQ_ASSIGNER_HPP
