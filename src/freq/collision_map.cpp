#include "freq/collision_map.hpp"

#include <algorithm>
#include <numeric>

#include "util/logging.hpp"

namespace qplacer {

CollisionMap::CollisionMap(const std::vector<double> &freqs_hz,
                           const std::vector<int> &group,
                           double threshold_hz)
{
    if (freqs_hz.size() != group.size())
        panic("CollisionMap: freqs/group size mismatch");
    const std::size_t n = freqs_hz.size();
    lists_.resize(n);

    // Sort indices by frequency and sweep a window of width threshold;
    // this is O(n log n + pairs) instead of O(n^2).
    std::vector<std::int32_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::int32_t a, std::int32_t b) {
                  return freqs_hz[a] < freqs_hz[b];
              });

    std::size_t window_start = 0;
    for (std::size_t k = 0; k < n; ++k) {
        const std::int32_t i = order[k];
        while (freqs_hz[i] - freqs_hz[order[window_start]] >=
               threshold_hz) {
            ++window_start;
        }
        for (std::size_t m = window_start; m < k; ++m) {
            const std::int32_t j = order[m];
            if (group[i] >= 0 && group[i] == group[j])
                continue; // same resonator: excluded by (1 - delta)
            lists_[i].push_back(j);
            lists_[j].push_back(i);
            ++numPairs_;
        }
    }
    for (auto &list : lists_)
        std::sort(list.begin(), list.end());
}

const std::vector<std::int32_t> &
CollisionMap::partners(std::size_t i) const
{
    if (i >= lists_.size())
        panic(str("CollisionMap::partners: index ", i, " out of range"));
    return lists_[i];
}

bool
CollisionMap::collides(std::size_t i, std::size_t j) const
{
    const auto &list = partners(i);
    return std::binary_search(list.begin(), list.end(),
                              static_cast<std::int32_t>(j));
}

} // namespace qplacer
