#include "freq/assigner.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <set>
#include <tuple>

#include "util/logging.hpp"
#include "util/timer.hpp"

namespace qplacer {
namespace {

/**
 * Resonator interference graph: resonators sharing a qubit must be
 * mutually detuned (they hang off the same pad). Sparse build: two
 * couplers share at most one qubit (the coupling graph has no
 * duplicate edges), so enumerating pairs within each qubit's
 * incident-coupler list visits every sharing pair exactly once --
 * O(sum deg^2) instead of the all-pairs O(m^2).
 */
Graph
resonatorShareGraphSparse(const Graph &coupling)
{
    const int nr = coupling.numEdges();
    Graph res(nr);
    std::vector<std::vector<int>> incident(coupling.numNodes());
    for (int e = 0; e < nr; ++e) {
        const auto &[u, v] = coupling.edges()[e];
        incident[u].push_back(e);
        incident[v].push_back(e);
    }
    for (const auto &list : incident) {
        for (std::size_t i = 0; i < list.size(); ++i)
            for (std::size_t j = i + 1; j < list.size(); ++j)
                res.addEdge(list[i], list[j]);
    }
    return res;
}

/** The pre-scaling all-pairs share-graph build (Reference engine). */
Graph
resonatorShareGraphAllPairs(const Graph &coupling)
{
    const int nr = coupling.numEdges();
    Graph res(nr);
    for (int a = 0; a < nr; ++a) {
        const auto &[a1, a2] = coupling.edges()[a];
        for (int b = a + 1; b < nr; ++b) {
            const auto &[b1, b2] = coupling.edges()[b];
            const bool share =
                a1 == b1 || a1 == b2 || a2 == b1 || a2 == b2;
            if (share)
                res.addEdge(a, b);
        }
    }
    return res;
}

} // namespace

FrequencyAssigner::FrequencyAssigner(AssignerParams params)
    : params_(params)
{
}

std::vector<int>
FrequencyAssigner::dsatur(const Graph &graph)
{
    const int n = graph.numNodes();
    std::vector<int> color(n, -1);
    if (n == 0)
        return color;

    // A node's colour is at most its count of distinctly-coloured
    // neighbours, so every colour fits in maxDegree + 1 bits; the used
    // set per node is a flat bitset over that range.
    const int max_colors = graph.maxDegree() + 1;
    const int words = (max_colors + 63) / 64;
    std::vector<std::uint64_t> used(static_cast<std::size_t>(n) * words,
                                    0);
    std::vector<int> sat(n, 0);

    // Candidate order = the reference scan's selection: maximum
    // saturation, ties by maximum degree, then smallest index. A node
    // is re-keyed only when a neighbour's colouring grows its
    // saturation, so total maintenance is O((n + m) log n).
    using Key = std::tuple<int, int, int>; // (-sat, -degree, index)
    std::set<Key> candidates;
    for (int v = 0; v < n; ++v)
        candidates.insert({0, -graph.degree(v), v});

    for (int step = 0; step < n; ++step) {
        const auto [neg_sat, neg_deg, best] = *candidates.begin();
        candidates.erase(candidates.begin());

        // Smallest colour not used by neighbours: first zero bit. The
        // bitset always has one (colour <= saturation < max_colors).
        const std::uint64_t *row =
            used.data() + static_cast<std::size_t>(best) * words;
        int c = 0;
        for (int w = 0; w < words; ++w) {
            if (row[w] != ~std::uint64_t{0}) {
                c = w * 64 + std::countr_one(row[w]);
                break;
            }
        }
        color[best] = c;

        for (int u : graph.neighbors(best)) {
            if (color[u] >= 0)
                continue;
            std::uint64_t &word =
                used[static_cast<std::size_t>(u) * words + c / 64];
            const std::uint64_t bit = std::uint64_t{1} << (c % 64);
            if (word & bit)
                continue;
            word |= bit;
            candidates.erase({-sat[u], -graph.degree(u), u});
            ++sat[u];
            candidates.insert({-sat[u], -graph.degree(u), u});
        }
    }
    return color;
}

std::vector<int>
FrequencyAssigner::dsaturReference(const Graph &graph)
{
    const int n = graph.numNodes();
    std::vector<int> color(n, -1);
    std::vector<std::set<int>> neighbor_colors(n);

    for (int step = 0; step < n; ++step) {
        // Pick the uncoloured node with maximum saturation, breaking
        // ties by degree then by index (deterministic).
        int best = -1;
        for (int v = 0; v < n; ++v) {
            if (color[v] >= 0)
                continue;
            if (best < 0)
                best = v;
            const auto sat_v = neighbor_colors[v].size();
            const auto sat_b = neighbor_colors[best].size();
            if (sat_v > sat_b ||
                (sat_v == sat_b && graph.degree(v) > graph.degree(best))) {
                best = v;
            }
        }
        // Smallest colour not used by neighbours.
        int c = 0;
        while (neighbor_colors[best].count(c))
            ++c;
        color[best] = c;
        for (int u : graph.neighbors(best))
            neighbor_colors[u].insert(c);
    }
    return color;
}

std::vector<int>
FrequencyAssigner::colorGraph(const Graph &graph) const
{
    return params_.engine == AssignEngine::Reference
               ? dsaturReference(graph)
               : dsatur(graph);
}

std::vector<double>
FrequencyAssigner::colorsToFrequencies(const std::vector<int> &colors,
                                       const Graph &hard_edges,
                                       const FrequencyBand &band,
                                       int *slots_used) const
{
    int num_colors = 0;
    for (int c : colors)
        num_colors = std::max(num_colors, c + 1);

    const int capacity = band.maxSlots(params_.detuningThresholdHz);
    const int used = std::min(std::max(num_colors, 1), capacity);
    const std::vector<double> slot_freqs = band.slots(used);
    if (slots_used)
        *slots_used = used;

    std::vector<double> freqs(colors.size());
    if (num_colors <= capacity) {
        // Plenty of room: one slot per colour; full distance-2
        // separation in the frequency domain.
        for (std::size_t i = 0; i < colors.size(); ++i)
            freqs[i] = slot_freqs[colors[i]];
        return freqs;
    }

    // Frequency crowding: guarantee the *hard* constraint (no coupled
    // pair resonant) by colouring the hard graph and partitioning the
    // slots between those classes; the fine-grained interference
    // colours then spread instances over their class's slots. Strict
    // slot spacing (exactly Delta_c) keeps different classes detuned.
    warn(str("frequency assigner: ", num_colors, " colours exceed the ",
             capacity, " available slots; partitioning slots between "
                       "hard colour classes"));
    const std::vector<int> hard = colorGraph(hard_edges);
    int num_hard = 0;
    for (int c : hard)
        num_hard = std::max(num_hard, c + 1);
    const int classes = std::max(num_hard, 1);
    std::vector<std::vector<int>> class_slots(classes);
    if (classes <= used) {
        // Round-robin partition: every hard class owns a disjoint,
        // non-empty slot list, so no coupled pair can land on the same
        // slot.
        for (int s = 0; s < used; ++s)
            class_slots[s % classes].push_back(s);
    } else {
        // More hard classes than slots: some classes must alias the
        // same slot. Alias them round-robin -- one deterministic slot
        // per class -- instead of scattering the overflow classes over
        // slots owned by others via a per-instance fallback, and
        // report the coupled pairs that stay resonant once, with a
        // count, instead of silently re-creating them.
        for (int c = 0; c < classes; ++c)
            class_slots[c].push_back(c % used);
        int aliased = 0;
        for (const auto &[u, v] : hard_edges.edges()) {
            if (hard[u] % used == hard[v] % used)
                ++aliased;
        }
        warn(str("frequency assigner: ", num_hard,
                 " hard colour classes share ", used, " slots; ",
                 aliased,
                 " coupled pairs stay resonant (unavoidable)"));
    }

    for (std::size_t i = 0; i < colors.size(); ++i) {
        const auto &mine = class_slots[hard[i]];
        freqs[i] = slot_freqs[mine[colors[i] % mine.size()]];
    }
    return freqs;
}

FrequencyAssignment
FrequencyAssigner::assign(const Topology &topo, AssignStats *stats) const
{
    AssignStats local;
    FrequencyAssignment out;
    const Graph &coupling = topo.coupling;
    const int nq = coupling.numNodes();

    // Qubit interference graph: coupled pairs plus (optionally)
    // distance-2 pairs.
    Timer timer;
    Graph interference(nq);
    for (const auto &[u, v] : coupling.edges())
        interference.addEdge(u, v);
    if (params_.distance2) {
        for (int u = 0; u < nq; ++u) {
            for (int v : coupling.ballAround(u, 2)) {
                if (v > u && !interference.hasEdge(u, v))
                    interference.addEdge(u, v);
            }
        }
    }
    local.interferenceSeconds = timer.seconds();

    timer.reset();
    out.qubitColor = colorGraph(interference);
    out.qubitFreqHz =
        colorsToFrequencies(out.qubitColor, coupling, params_.qubitBand,
                            &out.numQubitSlots);
    local.qubitColorSeconds = timer.seconds();

    timer.reset();
    const Graph res_graph = params_.engine == AssignEngine::Reference
                                ? resonatorShareGraphAllPairs(coupling)
                                : resonatorShareGraphSparse(coupling);
    local.resonatorGraphSeconds = timer.seconds();

    timer.reset();
    out.resonatorColor = colorGraph(res_graph);
    out.resonatorFreqHz =
        colorsToFrequencies(out.resonatorColor, res_graph,
                            params_.resonatorBand,
                            &out.numResonatorSlots);
    local.resonatorColorSeconds = timer.seconds();

    if (stats)
        *stats = local;
    return out;
}

int
FrequencyAssigner::countDomainViolations(
    const Topology &topo, const FrequencyAssignment &assignment) const
{
    int violations = 0;
    for (const auto &[u, v] : topo.coupling.edges()) {
        if (isResonant(assignment.qubitFreqHz[u], assignment.qubitFreqHz[v],
                       params_.detuningThresholdHz)) {
            ++violations;
        }
    }
    const auto &edges = topo.coupling.edges();
    if (params_.engine == AssignEngine::Reference) {
        for (std::size_t a = 0; a < edges.size(); ++a) {
            for (std::size_t b = a + 1; b < edges.size(); ++b) {
                const bool share = edges[a].first == edges[b].first ||
                                   edges[a].first == edges[b].second ||
                                   edges[a].second == edges[b].first ||
                                   edges[a].second == edges[b].second;
                if (share &&
                    isResonant(assignment.resonatorFreqHz[a],
                               assignment.resonatorFreqHz[b],
                               params_.detuningThresholdHz)) {
                    ++violations;
                }
            }
        }
        return violations;
    }

    // Sparse pass: two couplers share at most one qubit, so each
    // sharing pair is seen exactly once across the incident lists --
    // the count matches the all-pairs scan above.
    std::vector<std::vector<int>> incident(topo.coupling.numNodes());
    for (std::size_t e = 0; e < edges.size(); ++e) {
        incident[edges[e].first].push_back(static_cast<int>(e));
        incident[edges[e].second].push_back(static_cast<int>(e));
    }
    for (const auto &list : incident) {
        for (std::size_t i = 0; i < list.size(); ++i) {
            for (std::size_t j = i + 1; j < list.size(); ++j) {
                if (isResonant(assignment.resonatorFreqHz[list[i]],
                               assignment.resonatorFreqHz[list[j]],
                               params_.detuningThresholdHz)) {
                    ++violations;
                }
            }
        }
    }
    return violations;
}

} // namespace qplacer
