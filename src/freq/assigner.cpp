#include "freq/assigner.hpp"

#include <algorithm>
#include <set>

#include "util/logging.hpp"

namespace qplacer {

FrequencyAssigner::FrequencyAssigner(AssignerParams params)
    : params_(params)
{
}

std::vector<int>
FrequencyAssigner::dsatur(const Graph &graph)
{
    const int n = graph.numNodes();
    std::vector<int> color(n, -1);
    std::vector<std::set<int>> neighbor_colors(n);

    for (int step = 0; step < n; ++step) {
        // Pick the uncoloured node with maximum saturation, breaking
        // ties by degree then by index (deterministic).
        int best = -1;
        for (int v = 0; v < n; ++v) {
            if (color[v] >= 0)
                continue;
            if (best < 0)
                best = v;
            const auto sat_v = neighbor_colors[v].size();
            const auto sat_b = neighbor_colors[best].size();
            if (sat_v > sat_b ||
                (sat_v == sat_b && graph.degree(v) > graph.degree(best))) {
                best = v;
            }
        }
        // Smallest colour not used by neighbours.
        int c = 0;
        while (neighbor_colors[best].count(c))
            ++c;
        color[best] = c;
        for (int u : graph.neighbors(best))
            neighbor_colors[u].insert(c);
    }
    return color;
}

std::vector<double>
FrequencyAssigner::colorsToFrequencies(const std::vector<int> &colors,
                                       const Graph &hard_edges,
                                       const FrequencyBand &band,
                                       int *slots_used) const
{
    int num_colors = 0;
    for (int c : colors)
        num_colors = std::max(num_colors, c + 1);

    const int capacity = band.maxSlots(params_.detuningThresholdHz);
    const int used = std::min(std::max(num_colors, 1), capacity);
    const std::vector<double> slot_freqs = band.slots(used);
    if (slots_used)
        *slots_used = used;

    std::vector<double> freqs(colors.size());
    if (num_colors <= capacity) {
        // Plenty of room: one slot per colour; full distance-2
        // separation in the frequency domain.
        for (std::size_t i = 0; i < colors.size(); ++i)
            freqs[i] = slot_freqs[colors[i]];
        return freqs;
    }

    // Frequency crowding: guarantee the *hard* constraint (no coupled
    // pair resonant) by colouring the hard graph and partitioning the
    // slots between those classes; the fine-grained interference
    // colours then spread instances over their class's slots. Strict
    // slot spacing (exactly Delta_c) keeps different classes detuned.
    warn(str("frequency assigner: ", num_colors, " colours exceed the ",
             capacity, " available slots; partitioning slots between "
                       "hard colour classes"));
    const std::vector<int> hard = dsatur(hard_edges);
    int num_hard = 0;
    for (int c : hard)
        num_hard = std::max(num_hard, c + 1);
    if (num_hard > used) {
        warn("frequency assigner: hard chromatic number exceeds slot "
             "capacity; coupled-pair resonances are unavoidable");
    }
    std::vector<std::vector<int>> class_slots(std::max(num_hard, 1));
    for (int s = 0; s < used; ++s)
        class_slots[s % std::max(num_hard, 1)].push_back(s);

    for (std::size_t i = 0; i < colors.size(); ++i) {
        const auto &mine = class_slots[hard[i] % class_slots.size()];
        const int pick = mine.empty()
                             ? colors[i] % used
                             : mine[colors[i] % mine.size()];
        freqs[i] = slot_freqs[pick];
    }
    return freqs;
}

FrequencyAssignment
FrequencyAssigner::assign(const Topology &topo) const
{
    FrequencyAssignment out;
    const Graph &coupling = topo.coupling;
    const int nq = coupling.numNodes();

    // Qubit interference graph: coupled pairs plus (optionally)
    // distance-2 pairs.
    Graph interference(nq);
    for (const auto &[u, v] : coupling.edges())
        interference.addEdge(u, v);
    if (params_.distance2) {
        for (int u = 0; u < nq; ++u) {
            for (int v : coupling.ballAround(u, 2)) {
                if (v > u && !interference.hasEdge(u, v))
                    interference.addEdge(u, v);
            }
        }
    }

    out.qubitColor = dsatur(interference);
    out.qubitFreqHz =
        colorsToFrequencies(out.qubitColor, coupling, params_.qubitBand,
                            &out.numQubitSlots);

    // Resonator interference graph: resonators sharing a qubit must be
    // mutually detuned (they hang off the same pad).
    const int nr = coupling.numEdges();
    Graph res_graph(nr);
    for (int a = 0; a < nr; ++a) {
        const auto &[a1, a2] = coupling.edges()[a];
        for (int b = a + 1; b < nr; ++b) {
            const auto &[b1, b2] = coupling.edges()[b];
            const bool share =
                a1 == b1 || a1 == b2 || a2 == b1 || a2 == b2;
            if (share)
                res_graph.addEdge(a, b);
        }
    }
    out.resonatorColor = dsatur(res_graph);
    out.resonatorFreqHz =
        colorsToFrequencies(out.resonatorColor, res_graph,
                            params_.resonatorBand,
                            &out.numResonatorSlots);

    return out;
}

int
FrequencyAssigner::countDomainViolations(
    const Topology &topo, const FrequencyAssignment &assignment) const
{
    int violations = 0;
    for (const auto &[u, v] : topo.coupling.edges()) {
        if (isResonant(assignment.qubitFreqHz[u], assignment.qubitFreqHz[v],
                       params_.detuningThresholdHz)) {
            ++violations;
        }
    }
    const auto &edges = topo.coupling.edges();
    for (std::size_t a = 0; a < edges.size(); ++a) {
        for (std::size_t b = a + 1; b < edges.size(); ++b) {
            const bool share = edges[a].first == edges[b].first ||
                               edges[a].first == edges[b].second ||
                               edges[a].second == edges[b].first ||
                               edges[a].second == edges[b].second;
            if (share &&
                isResonant(assignment.resonatorFreqHz[a],
                           assignment.resonatorFreqHz[b],
                           params_.detuningThresholdHz)) {
                ++violations;
            }
        }
    }
    return violations;
}

} // namespace qplacer
