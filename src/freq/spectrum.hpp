/**
 * @file
 * Frequency bands and slot quantization (Section IV-A inputs).
 *
 * The available spectrum is narrow (qubits: 4.8-5.2 GHz), so only a
 * handful of mutually-detuned slots exist; devices with more qubits than
 * slots inevitably reuse frequencies ("frequency crowding", Sec. III-B),
 * and those same-slot components are what the placement engine must
 * separate spatially.
 */

#ifndef QPLACER_FREQ_SPECTRUM_HPP
#define QPLACER_FREQ_SPECTRUM_HPP

#include <vector>

#include "physics/constants.hpp"

namespace qplacer {

/** A contiguous frequency band [loHz, hiHz]. */
struct FrequencyBand
{
    double loHz = 0.0;
    double hiHz = 0.0;

    FrequencyBand() = default;
    FrequencyBand(double lo, double hi);

    /** Band width in Hz. */
    double span() const { return hiHz - loHz; }

    /** True if @p f lies within the band (inclusive). */
    bool contains(double f) const { return f >= loHz && f <= hiHz; }

    /**
     * Maximum number of slots that fit with pairwise spacing >= @p
     * min_spacing (slots at both band edges included).
     */
    int maxSlots(double min_spacing) const;

    /**
     * @p count slot frequencies spread evenly across the band
     * (single slot sits at band center).
     */
    std::vector<double> slots(int count) const;

    /** The paper's qubit band, 4.8-5.2 GHz. */
    static FrequencyBand qubitBand();

    /** The paper's resonator band, 6.0-7.0 GHz. */
    static FrequencyBand resonatorBand();
};

/**
 * The resonance indicator tau of Eq. (9): true when two frequencies are
 * within the detuning threshold of each other. Strict comparison so that
 * slots spaced exactly at the threshold count as detuned.
 */
bool isResonant(double f1_hz, double f2_hz,
                double threshold_hz = kDetuningThresholdHz);

} // namespace qplacer

#endif // QPLACER_FREQ_SPECTRUM_HPP
