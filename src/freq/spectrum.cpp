#include "freq/spectrum.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace qplacer {

FrequencyBand::FrequencyBand(double lo, double hi)
    : loHz(lo), hiHz(hi)
{
    if (hi <= lo)
        fatal("FrequencyBand: hi must exceed lo");
}

int
FrequencyBand::maxSlots(double min_spacing) const
{
    if (min_spacing <= 0.0)
        fatal("FrequencyBand::maxSlots: non-positive spacing");
    return static_cast<int>(std::floor(span() / min_spacing + 1e-9)) + 1;
}

std::vector<double>
FrequencyBand::slots(int count) const
{
    if (count <= 0)
        fatal("FrequencyBand::slots: non-positive count");
    std::vector<double> out;
    out.reserve(count);
    if (count == 1) {
        out.push_back((loHz + hiHz) / 2.0);
        return out;
    }
    const double step = span() / (count - 1);
    for (int i = 0; i < count; ++i)
        out.push_back(loHz + step * i);
    return out;
}

FrequencyBand
FrequencyBand::qubitBand()
{
    return FrequencyBand(kQubitBandLoHz, kQubitBandHiHz);
}

FrequencyBand
FrequencyBand::resonatorBand()
{
    return FrequencyBand(kResonatorBandLoHz, kResonatorBandHiHz);
}

bool
isResonant(double f1_hz, double f2_hz, double threshold_hz)
{
    return std::abs(f1_hz - f2_hz) < threshold_hz;
}

} // namespace qplacer
