/**
 * @file
 * Min-cost max-flow via successive shortest paths with Johnson potentials.
 *
 * Used by the legalization stack to refine qubit positions: qubits are
 * matched to candidate sites minimizing total displacement (the min-cost
 * flow refinement of [88] in the paper).
 */

#ifndef QPLACER_MATH_MIN_COST_FLOW_HPP
#define QPLACER_MATH_MIN_COST_FLOW_HPP

#include <cstdint>
#include <vector>

namespace qplacer {

/**
 * Min-cost max-flow solver. Costs must be non-negative (which holds for
 * displacement costs); capacities are integral.
 */
class MinCostFlow
{
  public:
    /** Create a network with @p num_nodes nodes. */
    explicit MinCostFlow(int num_nodes);

    /**
     * Add a directed edge.
     * @return edge id usable with flowOn().
     */
    int addEdge(int from, int to, std::int64_t capacity, std::int64_t cost);

    /**
     * Pre-size @p node's adjacency for @p degree edge slots (forward
     * plus reverse). Purely a reallocation hint for bulk graph
     * construction -- the legalization refinement adds O(n) arcs per
     * item node -- with no effect on results.
     */
    void reserveNode(int node, std::size_t degree);

    /** Result of a solve: total flow pushed and its total cost. */
    struct Result
    {
        std::int64_t flow = 0;
        std::int64_t cost = 0;
    };

    /**
     * Push up to @p max_flow units from @p source to @p sink
     * (default: as much as possible).
     */
    Result solve(int source, int sink,
                 std::int64_t max_flow = kInfinite);

    /** Flow currently routed through edge @p edge_id. */
    std::int64_t flowOn(int edge_id) const;

    static constexpr std::int64_t kInfinite = INT64_MAX / 4;

  private:
    struct Edge
    {
        int to;
        std::int64_t capacity;
        std::int64_t cost;
        int reverse; // index of the reverse edge in graph_[to]
    };

    bool dijkstra(int source, int sink);

    int numNodes_;
    std::vector<std::vector<Edge>> graph_;
    std::vector<std::pair<int, int>> edgeIndex_; // edge id -> (node, slot)
    std::vector<std::int64_t> potential_;
    std::vector<std::int64_t> dist_;
    std::vector<std::pair<int, int>> parent_; // (node, edge slot)
};

} // namespace qplacer

#endif // QPLACER_MATH_MIN_COST_FLOW_HPP
