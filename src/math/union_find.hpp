/**
 * @file
 * Disjoint-set (union-find) with path compression and union by size.
 *
 * Used by the integration legalizer to track resonator segment clusters
 * (Algorithm 1's `rilc` connectivity check).
 */

#ifndef QPLACER_MATH_UNION_FIND_HPP
#define QPLACER_MATH_UNION_FIND_HPP

#include <numeric>
#include <vector>

namespace qplacer {

/** Classic disjoint-set forest. */
class UnionFind
{
  public:
    /** Create @p n singleton sets. */
    explicit UnionFind(std::size_t n)
        : parent_(n), size_(n, 1), numSets_(n)
    {
        std::iota(parent_.begin(), parent_.end(), std::size_t{0});
    }

    /** Representative of the set containing @p x. */
    std::size_t
    find(std::size_t x)
    {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]]; // path halving
            x = parent_[x];
        }
        return x;
    }

    /** Merge the sets of @p a and @p b; returns true if they were split. */
    bool
    unite(std::size_t a, std::size_t b)
    {
        a = find(a);
        b = find(b);
        if (a == b)
            return false;
        if (size_[a] < size_[b])
            std::swap(a, b);
        parent_[b] = a;
        size_[a] += size_[b];
        --numSets_;
        return true;
    }

    /** True if @p a and @p b are in the same set. */
    bool connected(std::size_t a, std::size_t b) { return find(a) == find(b); }

    /** Size of the set containing @p x. */
    std::size_t setSize(std::size_t x) { return size_[find(x)]; }

    /** Number of disjoint sets remaining. */
    std::size_t numSets() const { return numSets_; }

  private:
    std::vector<std::size_t> parent_;
    std::vector<std::size_t> size_;
    std::size_t numSets_;
};

} // namespace qplacer

#endif // QPLACER_MATH_UNION_FIND_HPP
