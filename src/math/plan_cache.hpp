/**
 * @file
 * Process-wide cache of spectral transform plans.
 *
 * Plan construction costs O(N) transcendental evaluations; the solver
 * grids that need them (one per bin-count in use) are few. The cache
 * hands out shared, immutable plans keyed by (length, plan kind) —
 * one DctPlan per length covers all four Dct kernels, since they
 * share the FFT tables and differ only in pre/post twiddles that the
 * plan also precomputes.
 *
 * Lookup takes a mutex, so hot paths should fetch their plans once
 * (e.g. PoissonSolver grabs both of its plans at construction) rather
 * than per solve. Cached plans live for the process lifetime; a plan
 * is a few N-entry tables, so even a sweep over every power of two up
 * to 4096 stays under a megabyte.
 */

#ifndef QPLACER_MATH_PLAN_CACHE_HPP
#define QPLACER_MATH_PLAN_CACHE_HPP

#include <cstddef>
#include <memory>

#include "math/dct_plan.hpp"
#include "math/fft_plan.hpp"

namespace qplacer {

/** Shared-plan factory (thread-safe). */
class PlanCache
{
  public:
    /** The DCT/DST plan for length @p n (built on first request). */
    static std::shared_ptr<const DctPlan> dct(std::size_t n);

    /** The bare-FFT plan for length @p n (built on first request). */
    static std::shared_ptr<const FftPlan> fft(std::size_t n);

    /** Number of distinct plans currently cached (for tests/stats). */
    static std::size_t size();
};

} // namespace qplacer

#endif // QPLACER_MATH_PLAN_CACHE_HPP
