/**
 * @file
 * Summary statistics used by the evaluation harness (mean fidelity over
 * device subsets, geometric means of ratios, etc.).
 */

#ifndef QPLACER_MATH_STATS_HPP
#define QPLACER_MATH_STATS_HPP

#include <vector>

namespace qplacer {

/** Arithmetic mean; 0 for empty input. */
double mean(const std::vector<double> &v);

/** Geometric mean; requires strictly positive entries. */
double geomean(const std::vector<double> &v);

/** Sample standard deviation; 0 for fewer than two entries. */
double stddev(const std::vector<double> &v);

/** Minimum; fatal on empty input. */
double minOf(const std::vector<double> &v);

/** Maximum; fatal on empty input. */
double maxOf(const std::vector<double> &v);

/** Median (average of middle two for even sizes); fatal on empty input. */
double median(std::vector<double> v);

} // namespace qplacer

#endif // QPLACER_MATH_STATS_HPP
