#include "math/fft.hpp"

#include <cmath>
#include <numbers>

#include "util/logging.hpp"

namespace qplacer {

bool
Fft::isPowerOfTwo(std::size_t n)
{
    return n > 0 && (n & (n - 1)) == 0;
}

void
Fft::transform(std::vector<Complex> &data, bool invert)
{
    const std::size_t n = data.size();
    if (!isPowerOfTwo(n))
        panic(str("Fft: length ", n, " is not a power of two"));
    if (n == 1)
        return;

    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(data[i], data[j]);
    }

    for (std::size_t len = 2; len <= n; len <<= 1) {
        const double ang =
            2.0 * std::numbers::pi / static_cast<double>(len) *
            (invert ? 1.0 : -1.0);
        const Complex wlen(std::cos(ang), std::sin(ang));
        for (std::size_t i = 0; i < n; i += len) {
            Complex w(1.0, 0.0);
            for (std::size_t k = 0; k < len / 2; ++k) {
                const Complex u = data[i + k];
                const Complex v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w *= wlen;
            }
        }
    }

    if (invert) {
        const double inv_n = 1.0 / static_cast<double>(n);
        for (auto &x : data)
            x *= inv_n;
    }
}

void
Fft::forward(std::vector<Complex> &data)
{
    transform(data, false);
}

void
Fft::inverse(std::vector<Complex> &data)
{
    transform(data, true);
}

} // namespace qplacer
