#include "math/dct.hpp"

#include <cmath>
#include <numbers>

#include "math/fft.hpp"
#include "math/plan_cache.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace qplacer {

namespace {

using Complex = Fft::Complex;

constexpr double kPi = std::numbers::pi;

} // namespace

std::vector<double>
Dct::dct2(const std::vector<double> &x)
{
    const std::size_t n = x.size();
    if (!Fft::isPowerOfTwo(n))
        panic(str("Dct::dct2: length ", n, " is not a power of two"));

    // Makhoul reordering: even samples ascending, odd samples descending.
    std::vector<Complex> v(n);
    const std::size_t half = (n + 1) / 2;
    for (std::size_t m = 0; m < half; ++m)
        v[m] = Complex(x[2 * m], 0.0);
    for (std::size_t m = 0; 2 * m + 1 < n; ++m)
        v[n - 1 - m] = Complex(x[2 * m + 1], 0.0);

    Fft::forward(v);

    std::vector<double> out(n);
    for (std::size_t k = 0; k < n; ++k) {
        const double ang = -kPi * static_cast<double>(k) /
                           (2.0 * static_cast<double>(n));
        const Complex tw(std::cos(ang), std::sin(ang));
        out[k] = (tw * v[k]).real();
    }
    return out;
}

std::vector<double>
Dct::idct2(const std::vector<double> &X)
{
    const std::size_t n = X.size();
    if (!Fft::isPowerOfTwo(n))
        panic(str("Dct::idct2: length ", n, " is not a power of two"));

    // Reconstruct the complex spectrum P[k] = X[k] - i*X[n-k]
    // (derived from the Hermitian symmetry of the Makhoul spectrum),
    // undo the twiddle, invert the FFT, and undo the reordering.
    std::vector<Complex> v(n);
    for (std::size_t k = 0; k < n; ++k) {
        const double re = X[k];
        const double im = (k == 0) ? 0.0 : -X[n - k];
        const double ang = kPi * static_cast<double>(k) /
                           (2.0 * static_cast<double>(n));
        const Complex tw(std::cos(ang), std::sin(ang));
        v[k] = tw * Complex(re, im);
    }

    Fft::inverse(v);

    std::vector<double> x(n);
    const std::size_t half = (n + 1) / 2;
    for (std::size_t m = 0; m < half; ++m)
        x[2 * m] = v[m].real();
    for (std::size_t m = 0; 2 * m + 1 < n; ++m)
        x[2 * m + 1] = v[n - 1 - m].real();
    return x;
}

std::vector<double>
Dct::cosSeries(const std::vector<double> &c)
{
    // y[n] = c[0] + 2*sum_{k>=1} c[k] cos(...) == N * idct2(c).
    const auto n = static_cast<double>(c.size());
    std::vector<double> y = idct2(c);
    for (auto &v : y)
        v *= n;
    return y;
}

std::vector<double>
Dct::sinSeries(const std::vector<double> &c)
{
    // sin(pi*(n+0.5)*k/N) == (-1)^n cos(pi*(n+0.5)*(N-k)/N), so the sine
    // series is a cosine series with reversed coefficients and an
    // alternating sign.
    const std::size_t n = c.size();
    std::vector<double> flipped(n, 0.0);
    for (std::size_t k = 1; k < n; ++k)
        flipped[k] = c[n - k];
    std::vector<double> y = cosSeries(flipped);
    for (std::size_t i = 1; i < n; i += 2)
        y[i] = -y[i];
    return y;
}

std::vector<double>
Dct::apply(Kind kind, const std::vector<double> &x)
{
    switch (kind) {
      case Kind::Dct2:
        return dct2(x);
      case Kind::Idct2:
        return idct2(x);
      case Kind::CosSeries:
        return cosSeries(x);
      case Kind::SinSeries:
        return sinSeries(x);
    }
    panic("Dct::apply: bad kind");
}

void
Dct::transformRows(std::vector<double> &map, int nx, int ny, Kind kind,
                   ThreadPool *pool)
{
    DctScratch scratch;
    PlanCache::dct(static_cast<std::size_t>(nx))
        ->transformRows(map, nx, ny, kind, pool, scratch);
}

void
Dct::transformCols(std::vector<double> &map, int nx, int ny, Kind kind,
                   ThreadPool *pool)
{
    DctScratch scratch;
    PlanCache::dct(static_cast<std::size_t>(ny))
        ->transformCols(map, nx, ny, kind, pool, scratch);
}

void
Dct::transformRowsUnplanned(std::vector<double> &map, int nx, int ny,
                            Kind kind, ThreadPool *pool)
{
    if (map.size() != static_cast<std::size_t>(nx) * ny)
        panic(str("Dct::transformRows: map size ", map.size(),
                  " != ", nx, "x", ny));
    parallelFor(
        pool, static_cast<std::size_t>(ny),
        [&](std::size_t begin, std::size_t end) {
            std::vector<double> row(static_cast<std::size_t>(nx));
            for (std::size_t iy = begin; iy < end; ++iy) {
                double *base = map.data() + iy * nx;
                row.assign(base, base + nx);
                const std::vector<double> out = apply(kind, row);
                for (int ix = 0; ix < nx; ++ix)
                    base[ix] = out[ix];
            }
        },
        ThreadPool::kGrainCoarse);
}

void
Dct::transformColsUnplanned(std::vector<double> &map, int nx, int ny,
                            Kind kind, ThreadPool *pool)
{
    if (map.size() != static_cast<std::size_t>(nx) * ny)
        panic(str("Dct::transformCols: map size ", map.size(),
                  " != ", nx, "x", ny));
    parallelFor(
        pool, static_cast<std::size_t>(nx),
        [&](std::size_t begin, std::size_t end) {
            std::vector<double> col(static_cast<std::size_t>(ny));
            for (std::size_t ix = begin; ix < end; ++ix) {
                for (int iy = 0; iy < ny; ++iy)
                    col[iy] =
                        map[static_cast<std::size_t>(iy) * nx + ix];
                const std::vector<double> out = apply(kind, col);
                for (int iy = 0; iy < ny; ++iy)
                    map[static_cast<std::size_t>(iy) * nx + ix] =
                        out[iy];
            }
        },
        ThreadPool::kGrainCoarse);
}

std::vector<double>
Dct::dct2Direct(const std::vector<double> &x)
{
    const std::size_t n = x.size();
    std::vector<double> out(n, 0.0);
    for (std::size_t k = 0; k < n; ++k) {
        double acc = 0.0;
        for (std::size_t m = 0; m < n; ++m) {
            acc += x[m] * std::cos(kPi * (static_cast<double>(m) + 0.5) *
                                   static_cast<double>(k) /
                                   static_cast<double>(n));
        }
        out[k] = acc;
    }
    return out;
}

std::vector<double>
Dct::cosSeriesDirect(const std::vector<double> &c)
{
    const std::size_t n = c.size();
    std::vector<double> out(n, 0.0);
    for (std::size_t m = 0; m < n; ++m) {
        double acc = c[0];
        for (std::size_t k = 1; k < n; ++k) {
            acc += 2.0 * c[k] *
                   std::cos(kPi * (static_cast<double>(m) + 0.5) *
                            static_cast<double>(k) / static_cast<double>(n));
        }
        out[m] = acc;
    }
    return out;
}

std::vector<double>
Dct::sinSeriesDirect(const std::vector<double> &c)
{
    const std::size_t n = c.size();
    std::vector<double> out(n, 0.0);
    for (std::size_t m = 0; m < n; ++m) {
        double acc = 0.0;
        for (std::size_t k = 1; k < n; ++k) {
            acc += 2.0 * c[k] *
                   std::sin(kPi * (static_cast<double>(m) + 0.5) *
                            static_cast<double>(k) / static_cast<double>(n));
        }
        out[m] = acc;
    }
    return out;
}

} // namespace qplacer
