/**
 * @file
 * 1-D cosine/sine transforms built on the radix-2 FFT (Makhoul's method).
 *
 * These are the kernels behind the spectral Poisson solver used by the
 * electrostatic density force (ePlace-style):
 *
 *  - dct2:      X[k] = sum_n x[n] cos(pi*(n+0.5)*k/N)          (DCT-II)
 *  - idct2:     exact inverse of dct2 (i.e. a scaled DCT-III)
 *  - cosSeries: y[n] = c[0] + 2*sum_{k>=1} c[k] cos(pi*(n+0.5)*k/N)
 *  - sinSeries: y[n] = 2*sum_{k>=1} c[k] sin(pi*(n+0.5)*k/N)
 *
 * cosSeries evaluates a Neumann-boundary eigenfunction expansion on the
 * half-sample grid; sinSeries is its x-derivative counterpart (used for
 * the electric field). All lengths must be powers of two.
 *
 * The 1-D kernels here allocate workspaces per call and serve as the
 * reference implementations; the batched row/column passes execute
 * through the cached DctPlan (math/dct_plan, math/plan_cache), which
 * is bitwise-identical but reuses precomputed tables and scratch.
 */

#ifndef QPLACER_MATH_DCT_HPP
#define QPLACER_MATH_DCT_HPP

#include <vector>

namespace qplacer {

class ThreadPool;

/** FFT-accelerated DCT/DST transform kit (static functions only). */
class Dct
{
  public:
    /** 1-D kernel selector for the batched 2-D row/column passes. */
    enum class Kind
    {
        Dct2,      ///< dct2()
        Idct2,     ///< idct2()
        CosSeries, ///< cosSeries()
        SinSeries, ///< sinSeries()
    };

    /** Forward DCT-II (unnormalized). */
    static std::vector<double> dct2(const std::vector<double> &x);

    /** Inverse of dct2: idct2(dct2(x)) == x. */
    static std::vector<double> idct2(const std::vector<double> &X);

    /** Cosine eigen-series evaluation (see file comment). */
    static std::vector<double> cosSeries(const std::vector<double> &c);

    /** Sine eigen-series evaluation (see file comment). */
    static std::vector<double> sinSeries(const std::vector<double> &c);

    /** Apply the 1-D kernel selected by @p kind to one vector. */
    static std::vector<double> apply(Kind kind, const std::vector<double> &x);

    /**
     * Apply @p kind along every length-@p nx row of the row-major
     * @p ny x @p nx map, rows chunked across @p pool (null = serial).
     * Rows are independent, so the result is bitwise-identical for any
     * thread count.
     *
     * Routed through the cached DctPlan for @p nx (see math/dct_plan);
     * callers in a hot loop should hold the plan and a DctScratch
     * themselves to also reuse the workspaces across calls.
     */
    static void transformRows(std::vector<double> &map, int nx, int ny,
                              Kind kind, ThreadPool *pool);

    /** Column-wise counterpart of transformRows (length-@p ny cols). */
    static void transformCols(std::vector<double> &map, int nx, int ny,
                              Kind kind, ThreadPool *pool);

    /**
     * Plan-free reference row pass: per-row apply() with per-call
     * workspaces (the pre-plan implementation). Kept for the
     * plan-equivalence tests and the planned-vs-unplanned benchmark;
     * bitwise-identical to transformRows.
     */
    static void transformRowsUnplanned(std::vector<double> &map, int nx,
                                       int ny, Kind kind,
                                       ThreadPool *pool);

    /** Plan-free reference column pass (see transformRowsUnplanned). */
    static void transformColsUnplanned(std::vector<double> &map, int nx,
                                       int ny, Kind kind,
                                       ThreadPool *pool);

    /** O(N^2) reference implementations used to validate the fast paths. */
    static std::vector<double> dct2Direct(const std::vector<double> &x);
    static std::vector<double> cosSeriesDirect(const std::vector<double> &c);
    static std::vector<double> sinSeriesDirect(const std::vector<double> &c);
};

} // namespace qplacer

#endif // QPLACER_MATH_DCT_HPP
